module A = Registers.Atomic_array

exception Overflow_bug of { value : int; bound : int }

(* Per-process counters live in strided plain arrays: each slot is written
   by exactly one domain and only read after the domains join, so no
   atomicity is needed; the stride keeps the slots on distinct cache
   lines. *)
let stride = 8

type t = {
  n : int;
  m : int;
  choosing : A.t;
  number : A.t;
  acquires : int array;
  resets : int array;
  gate_spins : int array;
  peaks : int array;
}

type snapshot = {
  acquires : int;
  resets : int;
  gate_spins : int;
  peak_ticket : int;
}

let name = "bakery_pp"

let create_lock ~nprocs ~bound =
  if nprocs < 1 then invalid_arg "Bakery_pp_lock.create: nprocs must be >= 1";
  if bound < 1 then invalid_arg "Bakery_pp_lock.create: bound must be >= 1";
  {
    n = nprocs;
    m = bound;
    choosing = A.create nprocs 0;
    number = A.create nprocs 0;
    acquires = Array.make (nprocs * stride) 0;
    resets = Array.make (nprocs * stride) 0;
    gate_spins = Array.make (nprocs * stride) 0;
    peaks = Array.make (nprocs * stride) 0;
  }

let create ~nprocs ~bound = create_lock ~nprocs ~bound

(* Every ticket store funnels through here: the paper's no-overflow
   theorem, checked rather than assumed. *)
let store_ticket t i v =
  if v > t.m then raise (Overflow_bug { value = v; bound = t.m });
  A.set t.number i v

let before a i b j = a < b || (a = b && i < j)

let gate_is_closed t =
  let rec scan q = q < t.n && (A.get t.number q >= t.m || scan (q + 1)) in
  scan 0

let acquire t i =
  let slot = i * stride in
  let rec attempt () =
    (* L1: wait while any register is at capacity. *)
    while gate_is_closed t do
      t.gate_spins.(slot) <- t.gate_spins.(slot) + 1;
      Registers.Spin.relax ()
    done;
    A.set t.choosing i 1;
    (* number[i] := maximum(number); safe, every cell is <= M. *)
    let mx = A.max_of t.number in
    store_ticket t i mx;
    if mx >= t.m then begin
      (* Algorithm 2's reset path: back off and retry from L1. *)
      store_ticket t i 0;
      A.set t.choosing i 0;
      t.resets.(slot) <- t.resets.(slot) + 1;
      attempt ()
    end
    else begin
      let ticket = mx + 1 in
      store_ticket t i ticket;
      A.set t.choosing i 0;
      if ticket > t.peaks.(slot) then t.peaks.(slot) <- ticket;
      for j = 0 to t.n - 1 do
        while A.get t.choosing j <> 0 do
          Registers.Spin.relax ()
        done;
        let rec wait () =
          let nj = A.get t.number j in
          if nj <> 0 && before nj j ticket i then begin
            Registers.Spin.relax ();
            wait ()
          end
        in
        wait ()
      done;
      t.acquires.(slot) <- t.acquires.(slot) + 1
    end
  in
  attempt ()

let release t i = store_ticket t i 0

let space_words t = A.words t.choosing + A.words t.number

let sum_slots t a =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    total := !total + a.(i * stride)
  done;
  !total

let snapshot t =
  let peak = ref 0 in
  for i = 0 to t.n - 1 do
    if t.peaks.(i * stride) > !peak then peak := t.peaks.(i * stride)
  done;
  {
    acquires = sum_slots t t.acquires;
    resets = sum_slots t t.resets;
    gate_spins = sum_slots t t.gate_spins;
    peak_ticket = !peak;
  }

let bound t = t.m
let nprocs t = t.n

let stats t =
  let s = snapshot t in
  [
    ("acquires", s.acquires);
    ("resets", s.resets);
    ("gate_spins", s.gate_spins);
    ("peak_ticket", s.peak_ticket);
  ]
