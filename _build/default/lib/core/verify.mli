(** One-call verification entry points — the paper's §6 results as
    functions.

    Each reproduces a specific claim:
    - {!check_bakery_pp}: the TLC result (mutex and no-overflow hold);
    - {!check_bakery_overflows}: the §3 problem (original Bakery violates
      no-overflow on bounded registers);
    - {!check_bakery_mutex}: Bakery still satisfies mutex (under a ticket
      cap closing the infinite state space);
    - {!refines_bakery}: §6.2's "every execution of Bakery++ is a valid
      execution of Bakery", as stutter-closed trace inclusion over
      protocol phases;
    - {!starvation_lasso}: §6.3's theoretical starvation at L1, found as
      a concrete cycle. *)

val system :
  ?granularity:Algorithms.Common.granularity ->
  nprocs:int ->
  bound:int ->
  unit ->
  Modelcheck.System.t
(** The Bakery++ transition system. *)

val check_bakery_pp :
  ?granularity:Algorithms.Common.granularity ->
  ?max_states:int ->
  nprocs:int ->
  bound:int ->
  unit ->
  Modelcheck.Explore.result
(** Exhaustively check mutual exclusion and overflow-freedom of
    Bakery++.  Expected outcome: [Pass]. *)

val check_bakery_overflows :
  ?granularity:Algorithms.Common.granularity ->
  ?max_states:int ->
  nprocs:int ->
  bound:int ->
  unit ->
  Modelcheck.Explore.result
(** Check the original Bakery against the no-overflow invariant.
    Expected outcome: [Violation] with a shortest trace driving a ticket
    past M. *)

val check_bakery_mutex :
  ?granularity:Algorithms.Common.granularity ->
  ?max_states:int ->
  ?ticket_cap:int ->
  nprocs:int ->
  bound:int ->
  unit ->
  Modelcheck.Explore.result
(** Check mutual exclusion of the original Bakery under a state
    constraint capping tickets at [ticket_cap] (default [bound + nprocs]),
    TLC's standard way to close the unbounded space. *)

val ticket_cap_constraint :
  cap:int -> Modelcheck.System.t -> Modelcheck.State.packed -> bool
(** The state constraint used above: all [number] cells [<= cap]. *)

val refines_bakery :
  ?granularity:Algorithms.Common.granularity ->
  ?ticket_cap:int ->
  ?max_pairs:int ->
  nprocs:int ->
  bound:int ->
  unit ->
  Modelcheck.Refine.result
(** Trace-inclusion check of Bakery++ against Bakery over the phase
    observation.  Expected: [included = true]. *)

(** Result of the full §6 battery (see {!verify_all}). *)
type battery = {
  invariants_hold : bool;  (** E1: mutex + no-overflow of Bakery++ *)
  bakery_overflows : bool;  (** E2: plain Bakery violates no-overflow *)
  refinement_holds : bool;  (** E3: Bakery++ ⊑ Bakery *)
  gate_lasso_exists : bool;  (** E9: §6.3 starvation cycle at L1 *)
  waiting_room_lasso_free : bool;  (** E9 control: FCFS room starvation-free *)
  report : string;  (** human-readable summary of all five *)
}

val verify_all :
  ?granularity:Algorithms.Common.granularity ->
  nprocs:int ->
  bound:int ->
  unit ->
  battery
(** Run the paper's entire §6 argument at one configuration.  All five
    fields are expected [true] for 2 <= N <= 3 and small M (the lasso
    needs N >= 3; at N = 2 [gate_lasso_exists] is reported but not
    required and the battery's [report] says so). *)

val starvation_lasso :
  ?granularity:Algorithms.Common.granularity ->
  ?max_states:int ->
  ?require_victim_disabled:bool ->
  ?victim:int ->
  nprocs:int ->
  bound:int ->
  unit ->
  Modelcheck.Lasso.result
(** Search for the §6.3 scenario: [victim] (default 0) parked at the L1
    gate while the others keep entering their critical sections.
    With [require_victim_disabled:true] the cycle must pass through a
    state where the gate is closed for the victim, making the starvation
    consistent with weak fairness.  Expected for small M and
    nprocs >= 3: a witness is found. *)
