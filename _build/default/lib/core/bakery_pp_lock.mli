(** Bakery++ as a production lock over OCaml 5 domains — the paper's
    Algorithm 2, instrumented.

    Guarantees (the paper's theorem, enforced at runtime): no value
    greater than [bound] is ever stored in a ticket register; if the
    implementation ever tried, {!Overflow_bug} would be raised.  Mutual
    exclusion and first-come-first-served order are inherited from
    Bakery.

    Usage: create one lock for a fixed group of [nprocs] participants and
    give each domain a distinct id in 0 .. nprocs-1.

    {[
      let lock = Bakery_pp_lock.create ~nprocs:4 ~bound:255 in
      (* in domain i: *)
      Bakery_pp_lock.acquire lock i;
      (* ... critical section ... *)
      Bakery_pp_lock.release lock i
    ]} *)

exception Overflow_bug of { value : int; bound : int }
(** Never raised if the implementation matches Algorithm 2; exists so the
    no-overflow theorem is checked on every store rather than trusted. *)

include Locks.Lock_intf.LOCK

val create_lock : nprocs:int -> bound:int -> t
(** Like [create] but with the argument contract documented: [nprocs >= 1]
    and [bound >= 1].  [bound] is the paper's M, the largest value a
    ticket register may hold.  A tiny [bound] (even smaller than
    [nprocs]) is legal; it only increases resets. *)

(** Cumulative instrumentation. *)
type snapshot = {
  acquires : int;  (** successful critical-section entries *)
  resets : int;  (** overflow-avoidance resets (the paper's goto L1 path) *)
  gate_spins : int;  (** iterations spent waiting at the L1 gate *)
  peak_ticket : int;  (** largest ticket ever taken; always <= bound *)
}

val snapshot : t -> snapshot
val bound : t -> int
val nprocs : t -> int
