(** Bakery++ (the paper's Algorithm 2) as a formal model.

    The two additions over Lamport's Bakery, both plain conditionals:

    - the overflow gate at [L1]: wait while any process's ticket is
      [>= M];
    - the pre-increment check: after [number[i] := maximum(number)], if
      the value is [>= M], reset [number[i]] and [choosing[i]] to 0 and
      restart at [L1] instead of incrementing.

    No new shared variables, no redefined operators, single-writer cells
    only — the properties the paper claims distinguish Bakery++ from all
    prior bounded bakery variants. *)

val program : ?granularity:Algorithms.Common.granularity -> unit -> Mxlang.Ast.program
(** [Coarse] (default) mirrors the PlusCal spec the paper checked with
    TLC: the maximum and the existential gate are single atomic steps.
    [Fine] computes the maximum one register read per step. *)

(** Ablation knobs (DESIGN.md §5, EXPERIMENTS.md "Ablations").  The
    paper's Algorithm 2 is {!paper_variant}. *)
type variant = {
  with_gate : bool;  (** keep the L1 overflow gate (A1 removes it) *)
  gate_exact : bool;
      (** compare tickets to M with [=] instead of [>=] — the paper's §5
          remark on what arbitrary reads would do to equality tests *)
  increment_first : bool;
      (** store [1 + maximum] before checking — the unsound order (A2);
          the checker finds the overflow this reintroduces *)
}

val paper_variant : variant

val program_variant :
  ?granularity:Algorithms.Common.granularity -> variant -> Mxlang.Ast.program

val gate_label : string
(** Name of the overflow-gate step ("L1"), for starvation searches. *)

val reset_label : string
(** Name of the reset step, for counting resets in simulations. *)
