open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let gate_label = "L1"
let reset_label = "reset"

type variant = {
  with_gate : bool;
  gate_exact : bool;
  increment_first : bool;
}

let paper_variant = { with_gate = true; gate_exact = false; increment_first = false }

let variant_title v granularity =
  let base =
    Printf.sprintf "bakery_pp_%s" (Algorithms.Common.granularity_name granularity)
  in
  let tags =
    (if v.with_gate then [] else [ "nogate" ])
    @ (if v.gate_exact then [ "eqgate" ] else [])
    @ if v.increment_first then [ "incrfirst" ] else []
  in
  match tags with [] -> base | t -> base ^ "_" ^ String.concat "_" t

let program_variant ?(granularity = Algorithms.Common.Coarse) v =
  let b = B.create ~title:(variant_title v granularity) in
  let choosing = B.shared_per_process b "choosing" () in
  let number = B.shared_per_process b "number" ~bounded:true () in
  let j = B.local b "j" in
  let ncs = B.fresh_label b "ncs" in
  let gate = B.fresh_label b gate_label in
  let set_choosing = B.fresh_label b "choose" in
  let check = B.fresh_label b "check" in
  let reset = B.fresh_label b reset_label in
  let incr = B.fresh_label b "incr" in
  let unset_choosing = B.fresh_label b "done_choosing" in
  let cs = B.fresh_label b "cs" in
  let cap_cmp = if v.gate_exact then Ceq else Cge in
  B.define b ncs ~kind:Noncritical [ B.goto gate ];
  (* L1: if exists q with number[q] >= M then goto L1 — i.e. wait until
     no register is at capacity.  The gateless ablation (A1) falls
     straight through. *)
  if v.with_gate then
    B.define b gate ~kind:Entry
      (B.await (not_ (exists number cap_cmp m)) set_choosing)
  else B.define b gate ~kind:Entry [ B.goto set_choosing ];
  B.define b set_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing one ] check ];
  let post_pick = B.fresh_label b "post_pick" in
  (* The picked value: the paper stores maximum(number) and increments
     only after the capacity check; the A2 ablation stores 1 + maximum
     immediately, which is the overflow site of the original Bakery. *)
  let picked e = if v.increment_first then e +: one else e in
  (match granularity with
  | Algorithms.Common.Coarse ->
      (* number[i] := maximum(number[1..N]) in one step, as in PlusCal;
         the store itself is safe because every cell is <= M. *)
      B.define b check ~kind:Doorway
        [ B.action ~effects:[ set_own number (picked (max_arr number)) ] post_pick ]
  | Algorithms.Common.Fine ->
      let acc = B.local b "mx" in
      let store = B.fresh_label b "store" in
      let head = Algorithms.Common.max_loop b ~number ~k:j ~acc ~done_:store in
      B.define b check ~kind:Doorway
        [ B.action ~effects:[ set_local j zero; set_local acc zero ] head ];
      B.define b store ~kind:Doorway
        [ B.action ~effects:[ set_own number (picked (lv acc)) ] post_pick ]);
  (* The paper's second conditional: reset instead of incrementing when
     the chosen maximum is at register capacity. *)
  let too_big =
    if v.increment_first then rd_own number >: m
    else Mxlang.Ast.Cmp (cap_cmp, rd_own number, m)
  in
  B.define b post_pick ~kind:Doorway (B.ite too_big reset incr);
  B.define b reset ~kind:Doorway
    [ B.action ~effects:[ set_own number zero; set_own choosing zero ] gate ];
  (if v.increment_first then B.define b incr ~kind:Doorway [ B.goto unset_choosing ]
   else
     B.define b incr ~kind:Doorway
       [ B.action ~effects:[ set_own number (rd_own number +: one) ] unset_choosing ]);
  let scan = Algorithms.Common.scan_loop b ~number ~choosing ~j ~cs in
  B.define b unset_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing zero; set_local j zero ] scan ];
  Algorithms.Common.cyclic_tail b ~number ~cs ~ncs;
  B.build b

let program ?granularity () = program_variant ?granularity paper_variant
