module MC = Modelcheck

let system ?granularity ~nprocs ~bound () =
  MC.System.make (Bakery_pp_model.program ?granularity ()) ~nprocs ~bound

let bakery_system ?granularity ~nprocs ~bound () =
  MC.System.make (Algorithms.Bakery.program ?granularity ()) ~nprocs ~bound

let check_bakery_pp ?granularity ?max_states ~nprocs ~bound () =
  MC.Explore.run
    ~invariants:[ MC.Invariant.mutex; MC.Invariant.no_overflow ]
    ?max_states
    (system ?granularity ~nprocs ~bound ())

let check_bakery_overflows ?granularity ?max_states ~nprocs ~bound () =
  MC.Explore.run
    ~invariants:[ MC.Invariant.no_overflow ]
    ?max_states
    (bakery_system ?granularity ~nprocs ~bound ())

let ticket_cap_constraint ~cap sys state =
  let program = MC.System.program sys in
  let lay = MC.System.layout sys in
  let number = Mxlang.Ast.var_by_name program "number" in
  let cells = Mxlang.Ast.cells_of ~nprocs:(MC.System.nprocs sys) program number in
  let rec ok i =
    i >= cells || (MC.State.shared_cell lay state number i <= cap && ok (i + 1))
  in
  ok 0

let check_bakery_mutex ?granularity ?max_states ?ticket_cap ~nprocs ~bound () =
  let cap = match ticket_cap with Some c -> c | None -> bound + nprocs in
  MC.Explore.run
    ~invariants:[ MC.Invariant.mutex ]
    ~constraint_:(ticket_cap_constraint ~cap)
    ?max_states
    (bakery_system ?granularity ~nprocs ~bound ())

let refines_bakery ?granularity ?ticket_cap ?max_pairs ~nprocs ~bound () =
  let cap = match ticket_cap with Some c -> c | None -> bound + nprocs in
  MC.Refine.check
    ~impl:(system ?granularity ~nprocs ~bound ())
    ~spec:(bakery_system ?granularity ~nprocs ~bound ())
    ~spec_constraint:(ticket_cap_constraint ~cap)
    ?max_pairs ()

let starvation_lasso ?granularity ?max_states ?require_victim_disabled
    ?(victim = 0) ~nprocs ~bound () =
  MC.Lasso.find ?max_states ?require_victim_disabled ~victim
    ~stuck_at:(MC.Lasso.stuck_at_label Bakery_pp_model.gate_label)
    (system ?granularity ~nprocs ~bound ())

type battery = {
  invariants_hold : bool;
  bakery_overflows : bool;
  refinement_holds : bool;
  gate_lasso_exists : bool;
  waiting_room_lasso_free : bool;
  report : string;
}

let verify_all ?granularity ~nprocs ~bound () =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  out "Bakery++ verification battery (N=%d, M=%d)" nprocs bound;
  let inv = check_bakery_pp ?granularity ~nprocs ~bound () in
  let invariants_hold = inv.outcome = MC.Explore.Pass in
  out "  [%s] mutual exclusion and no-overflow (paper 6.1-6.2): %d states"
    (if invariants_hold then "ok" else "FAIL")
    inv.stats.distinct;
  let bak = check_bakery_overflows ?granularity ~nprocs ~bound () in
  let bakery_overflows =
    match bak.outcome with MC.Explore.Violation _ -> true | _ -> false
  in
  out "  [%s] original Bakery overflows the same registers (paper 3)"
    (if bakery_overflows then "ok" else "FAIL");
  let refinement_holds =
    if nprocs <= 2 then begin
      let r = refines_bakery ?granularity ~nprocs ~bound () in
      out "  [%s] every Bakery++ execution is a Bakery execution (paper 6.2): %d pairs"
        (if r.included then "ok" else "FAIL")
        r.impl_pairs;
      r.included
    end
    else begin
      let r = refines_bakery ?granularity ~nprocs:2 ~bound () in
      out
        "  [%s] refinement (paper 6.2), checked at N=2 (subset construction \
         is exponential in N)"
        (if r.included then "ok" else "FAIL");
      r.included
    end
  in
  let lasso =
    starvation_lasso ?granularity ~require_victim_disabled:true ~nprocs ~bound ()
  in
  let gate_lasso_exists = lasso.witness <> None in
  out "  [%s] L1-gate starvation lasso (paper 6.3)%s"
    (if gate_lasso_exists then "found" else "none")
    (if nprocs < 3 then " — needs N >= 3, absence expected here" else "");
  let room =
    MC.Lasso.find ~victim:0
      ~stuck_at:(MC.Lasso.stuck_at_kind Mxlang.Ast.Waiting)
      (system ?granularity ~nprocs ~bound ())
  in
  let waiting_room_lasso_free = room.witness = None in
  out "  [%s] ticket-ordered waiting room is starvation-free (FCFS)"
    (if waiting_room_lasso_free then "ok" else "FAIL");
  {
    invariants_hold;
    bakery_overflows;
    refinement_holds;
    gate_lasso_exists;
    waiting_room_lasso_free;
    report = Buffer.contents buf;
  }
