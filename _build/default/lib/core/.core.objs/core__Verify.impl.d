lib/core/verify.ml: Algorithms Bakery_pp_model Buffer Modelcheck Mxlang Printf
