lib/core/bakery_pp_lock.ml: Array Registers
