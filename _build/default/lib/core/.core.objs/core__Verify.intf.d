lib/core/verify.mli: Algorithms Modelcheck
