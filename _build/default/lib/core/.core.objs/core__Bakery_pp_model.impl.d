lib/core/bakery_pp_model.ml: Algorithms Mxlang Printf String
