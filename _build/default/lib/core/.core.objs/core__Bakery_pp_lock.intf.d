lib/core/bakery_pp_lock.mli: Locks
