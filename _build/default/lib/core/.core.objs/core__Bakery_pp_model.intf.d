lib/core/bakery_pp_model.mli: Algorithms Mxlang
