(** Derived metrics over simulator results. *)

val throughput : Runner.result -> float
(** Total critical-section entries per simulated step. *)

val jain_fairness : Runner.result -> float
(** Jain's fairness index over per-process CS entries: 1.0 is perfectly
    fair, 1/N is maximally unfair.  Processes are cyclic and symmetric in
    the paper's system model, so a FCFS lock should score close to 1. *)

val label_count : Mxlang.Ast.program -> Runner.result -> string -> int
(** Total executions (all processes) of the step with the given label
    name; raises [Not_found] for an unknown label.  Used to count
    Bakery++'s overflow resets and L1 gate spins. *)

val cs_entry_times : Runner.result -> (int * int) list
(** [(time, pid)] of every CS entry, chronological; requires the run to
    have recorded events. *)

val max_waiting_time : Runner.result -> int
(** Longest doorway-completion-to-CS-entry span observed (steps);
    requires recorded events.  0 if no complete span was observed. *)

val max_overtakes : Runner.result -> int
(** Bounded overtaking: the largest number of critical-section entries by
    other processes between one process's doorway completion and its own
    entry.  Bakery-family FCFS implies this is at most N-1; unfair locks
    can exceed it without bound.  Requires recorded events; 0 if no
    complete span was observed. *)
