lib/schedsim/metrics.ml: Array Event List Mxlang Runner
