lib/schedsim/runner.mli: Event Mxlang Scheduler
