lib/schedsim/history.mli: Mxlang Runner
