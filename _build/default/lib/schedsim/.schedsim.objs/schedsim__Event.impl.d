lib/schedsim/event.ml: Array List Mxlang Printf String
