lib/schedsim/history.ml: Array Buffer Event List Mxlang Printf Runner String
