lib/schedsim/runner.ml: Array Event Fun List Mxlang Prng Scheduler
