lib/schedsim/scheduler.mli:
