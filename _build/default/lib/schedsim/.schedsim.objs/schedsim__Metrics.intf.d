lib/schedsim/metrics.mli: Mxlang Runner
