lib/schedsim/scheduler.ml: Array Printf Prng String
