(** Event-log utilities: textual and CSV export, and schedule extraction
    for deterministic replay.

    Replay contract: a crash-free, flicker-free run picks exactly one
    runnable process per step, so its [Step] events are its complete
    scheduling history; re-running the same program and configuration
    with [Scheduler.Replay (schedule_of result)] reproduces the run
    event-for-event.  Crashes and flicker consume scheduler decisions
    without emitting steps, so such runs are not replayable this way. *)

val schedule_of : Runner.result -> int array
(** The pid sequence of all executed steps (requires the run to have been
    made with [record_events = true]). *)

val to_text : Mxlang.Ast.program -> Runner.result -> string
(** One line per event, human-readable. *)

val to_csv : Mxlang.Ast.program -> Runner.result -> string
(** Columns: time, event, pid, detail. *)
