let throughput (r : Runner.result) =
  if r.steps = 0 then 0.0
  else float_of_int (Runner.total_cs r) /. float_of_int r.steps

let jain_fairness (r : Runner.result) =
  let xs = Array.map float_of_int r.cs_entries in
  let n = float_of_int (Array.length xs) in
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if sumsq = 0.0 then 1.0 else sum *. sum /. (n *. sumsq)

let label_count (p : Mxlang.Ast.program) (r : Runner.result) name =
  let pc = ref (-1) in
  Array.iteri (fun i (s : Mxlang.Ast.step) -> if s.step_name = name then pc := i) p.steps;
  if !pc < 0 then raise Not_found;
  Array.fold_left (fun acc per_pid -> acc + per_pid.(!pc)) 0 r.label_counts

let cs_entry_times (r : Runner.result) =
  List.filter_map
    (function Event.Cs_enter { time; pid } -> Some (time, pid) | _ -> None)
    r.events

let max_overtakes (r : Runner.result) =
  let nprocs = Array.length r.cs_entries in
  let overtaken = Array.make nprocs (-1) in
  (* overtaken.(p) >= 0 while p waits: entries by others since p's
     doorway completed *)
  let best = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Event.Doorway_done { pid; _ } -> overtaken.(pid) <- 0
      | Event.Cs_enter { pid; _ } ->
          if overtaken.(pid) >= 0 then begin
            if overtaken.(pid) > !best then best := overtaken.(pid);
            overtaken.(pid) <- -1
          end;
          for other = 0 to nprocs - 1 do
            if other <> pid && overtaken.(other) >= 0 then
              overtaken.(other) <- overtaken.(other) + 1
          done
      | Event.Crash { pid; _ } -> overtaken.(pid) <- -1
      | _ -> ())
    r.events;
  !best

let max_waiting_time (r : Runner.result) =
  let nprocs = Array.length r.cs_entries in
  let pending = Array.make nprocs (-1) in
  let best = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Event.Doorway_done { time; pid } -> pending.(pid) <- time
      | Event.Cs_enter { time; pid } ->
          if pending.(pid) >= 0 then begin
            if time - pending.(pid) > !best then best := time - pending.(pid);
            pending.(pid) <- -1
          end
      | Event.Crash { pid; _ } -> pending.(pid) <- -1
      | _ -> ())
    r.events;
  !best
