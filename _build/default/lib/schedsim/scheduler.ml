type strategy =
  | Round_robin
  | Uniform of int
  | Weighted of float array * int
  | Handicap of { victim : int; period : int; seed : int }
  | Replay of int array

type t = {
  nprocs : int;
  strategy : strategy;
  rng : Prng.Rng.t;
  mutable cursor : int; (* round-robin position *)
  mutable decisions : int; (* scheduling decisions made, for Handicap *)
  scratch : int array; (* candidate buffer, avoids per-step allocation *)
}

let make ~nprocs strategy =
  let seed =
    match strategy with
    | Round_robin | Replay _ -> 0
    | Uniform s | Weighted (_, s) | Handicap { seed = s; _ } -> s
  in
  (match strategy with
  | Weighted (w, _) ->
      if Array.length w <> nprocs then
        invalid_arg "Scheduler.make: weight vector length must equal nprocs";
      Array.iter
        (fun x -> if x < 0.0 then invalid_arg "Scheduler.make: negative weight")
        w
  | Handicap { victim; period; _ } ->
      if victim < 0 || victim >= nprocs then
        invalid_arg "Scheduler.make: victim out of range";
      if period < 1 then invalid_arg "Scheduler.make: period must be >= 1"
  | Replay pids ->
      Array.iter
        (fun p ->
          if p < 0 || p >= nprocs then
            invalid_arg "Scheduler.make: replayed pid out of range")
        pids
  | Round_robin | Uniform _ -> ());
  {
    nprocs;
    strategy;
    rng = Prng.Rng.create seed;
    cursor = 0;
    decisions = 0;
    scratch = Array.make nprocs 0;
  }

let candidates t ~runnable ~skip =
  let n = ref 0 in
  for i = 0 to t.nprocs - 1 do
    if runnable.(i) && i <> skip then begin
      t.scratch.(!n) <- i;
      incr n
    end
  done;
  !n

let pick t ~runnable =
  if Array.length runnable <> t.nprocs then
    invalid_arg "Scheduler.pick: runnable vector length must equal nprocs";
  t.decisions <- t.decisions + 1;
  match t.strategy with
  | Round_robin ->
      let rec scan tried =
        if tried >= t.nprocs then None
        else
          let i = (t.cursor + tried) mod t.nprocs in
          if runnable.(i) then begin
            t.cursor <- (i + 1) mod t.nprocs;
            Some i
          end
          else scan (tried + 1)
      in
      scan 0
  | Uniform _ ->
      let n = candidates t ~runnable ~skip:(-1) in
      if n = 0 then None else Some t.scratch.(Prng.Rng.int t.rng n)
  | Weighted (w, _) ->
      let n = candidates t ~runnable ~skip:(-1) in
      if n = 0 then None
      else begin
        let total = ref 0.0 in
        for k = 0 to n - 1 do
          total := !total +. w.(t.scratch.(k))
        done;
        if !total <= 0.0 then Some t.scratch.(Prng.Rng.int t.rng n)
        else begin
          let target = Prng.Rng.float t.rng !total in
          let rec find k acc =
            if k >= n - 1 then t.scratch.(n - 1)
            else
              let acc = acc +. w.(t.scratch.(k)) in
              if target < acc then t.scratch.(k) else find (k + 1) acc
          in
          Some (find 0 0.0)
        end
      end
  | Handicap { victim; period; _ } ->
      let victims_turn = t.decisions mod period = 0 in
      if victims_turn && runnable.(victim) then Some victim
      else
        let n = candidates t ~runnable ~skip:victim in
        if n > 0 then Some t.scratch.(Prng.Rng.int t.rng n)
        else if runnable.(victim) then Some victim
        else None
  | Replay pids ->
      (* [decisions] was already incremented for this call. *)
      let k = t.decisions - 1 in
      if k >= Array.length pids then None
      else
        let pid = pids.(k) in
        if runnable.(pid) then Some pid else None

let describe = function
  | Round_robin -> "round-robin"
  | Uniform seed -> Printf.sprintf "uniform(seed=%d)" seed
  | Weighted (w, seed) ->
      Printf.sprintf "weighted([%s], seed=%d)"
        (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.2f") w)))
        seed
  | Handicap { victim; period; seed } ->
      Printf.sprintf "handicap(victim=%d, period=%d, seed=%d)" victim period seed
  | Replay pids -> Printf.sprintf "replay(%d decisions)" (Array.length pids)
