(* Simulator events.  [time] is the global atomic-step counter. *)

type t =
  | Step of { time : int; pid : int; pc : int }
  | Cs_enter of { time : int; pid : int }
  | Cs_exit of { time : int; pid : int }
  | Doorway_done of { time : int; pid : int }
  | Overflow of { time : int; pid : int; var : int; cell : int; value : int }
  | Mutex_violation of { time : int; pids : int list }
  | Crash of { time : int; pid : int }
  | Restart of { time : int; pid : int }
  | Flicker of { time : int; pid : int; cell : int; value : int }

let time = function
  | Step { time; _ }
  | Cs_enter { time; _ }
  | Cs_exit { time; _ }
  | Doorway_done { time; _ }
  | Overflow { time; _ }
  | Mutex_violation { time; _ }
  | Crash { time; _ }
  | Restart { time; _ }
  | Flicker { time; _ } ->
      time

let to_string (p : Mxlang.Ast.program) = function
  | Step { time; pid; pc } ->
      Printf.sprintf "%8d p%d step %s" time pid p.steps.(pc).step_name
  | Cs_enter { time; pid } -> Printf.sprintf "%8d p%d ENTER CS" time pid
  | Cs_exit { time; pid } -> Printf.sprintf "%8d p%d exit CS" time pid
  | Doorway_done { time; pid } -> Printf.sprintf "%8d p%d doorway done" time pid
  | Overflow { time; pid; var; cell; value } ->
      Printf.sprintf "%8d p%d OVERFLOW %s[%d] = %d" time pid p.var_names.(var)
        cell value
  | Mutex_violation { time; pids } ->
      Printf.sprintf "%8d MUTEX VIOLATION: processes %s in CS" time
        (String.concat "," (List.map string_of_int pids))
  | Crash { time; pid } -> Printf.sprintf "%8d p%d crash" time pid
  | Restart { time; pid } -> Printf.sprintf "%8d p%d restart" time pid
  | Flicker { time; pid; cell; value } ->
      Printf.sprintf "%8d p%d flickered read cell %d -> %d" time pid cell value
