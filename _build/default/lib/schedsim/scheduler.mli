(** Scheduling strategies for the interleaving simulator.

    A scheduler picks which runnable process takes the next atomic step.
    All strategies are deterministic given their seed. *)

type t

type strategy =
  | Round_robin
  | Uniform of int  (** uniformly random runnable process; seeded *)
  | Weighted of float array * int
      (** per-process relative speeds (the paper's "no assumption about
          execution speeds" — this lets us create the §6.3 slow process);
          seeded *)
  | Handicap of { victim : int; period : int; seed : int }
      (** adversarial: the victim is runnable only every [period]-th
          scheduling decision, everyone else is picked uniformly *)
  | Replay of int array
      (** replay a recorded pid sequence (see {!History.schedule_of});
          once the recording is exhausted, or if the recorded process is
          not runnable, no process is picked *)

val make : nprocs:int -> strategy -> t

val pick : t -> runnable:bool array -> int option
(** Choose a process among those with [runnable.(i)]; [None] if no
    process is runnable. *)

val describe : strategy -> string
