type t = { mutable state : int }

let create seed = { state = seed lxor 0x1fe3779b97f4a7c1 }

let copy t = { state = t.state }

(* splitmix64 step, truncated to OCaml's 63-bit ints.  The constants are
   the reference ones with the top bit dropped, which preserves the
   generator's avalanche behaviour for our purposes. *)
let next t =
  t.state <- (t.state + 0x1e3779b97f4a7c15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14b603a9caa36d9b land max_int in
  (z lxor (z lsr 31)) land (max_int lsr 1)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t bound = float_of_int (next t) /. float_of_int (max_int lsr 1) *. bound

let bool t = next t land 1 = 1

let split t = create (next t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
