lib/prng/rng.mli:
