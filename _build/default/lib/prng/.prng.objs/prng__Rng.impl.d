lib/prng/rng.ml: Array
