(** Deterministic splitmix64 pseudo-random generator.

    Used instead of [Stdlib.Random] so that simulator schedules, workloads
    and property tests replay identically across runs and platforms. *)

type t

val create : int -> t
(** Seeded generator.  Equal seeds produce equal streams. *)

val copy : t -> t

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
