(** Bounded atomic registers.

    A real machine register holds at most [M]; the paper defines an
    overflow as an attempt to store [v > M] (§3).  This module makes that
    event explicit and observable: every store is checked against the
    bound, and the policy decides what a too-large store does.  All
    operations are sequentially consistent ([Atomic] underneath), which is
    a stronger register than Bakery requires — safety results transfer. *)

exception Overflow of { value : int; bound : int }

type policy =
  | Trap  (** raise {!Overflow} — for time-to-first-overflow experiments *)
  | Wrap  (** store [v mod (M + 1)] — silent corruption, like real hardware *)
  | Saturate  (** store [M] *)

type t

val create : ?policy:policy -> bound:int -> int -> t
(** [create ~bound v] is a register holding [v]; [policy] defaults to
    [Trap].  Raises [Invalid_argument] if [v] itself exceeds [bound]. *)

val get : t -> int
val set : t -> int -> unit
(** Applies the overflow policy when the value exceeds the bound. *)

val bound : t -> int
val overflow_count : t -> int
(** Stores that exceeded the bound so far (counted under every policy). *)

val array : ?policy:policy -> bound:int -> int -> int -> t array
(** [array ~bound n v]: [n] registers initialized to [v]. *)

val max_of : t array -> int
(** Maximum of current values — Bakery's [maximum] over a scan; reads one
    register at a time, in index order, like the real algorithm. *)
