exception Overflow of { value : int; bound : int }

type policy = Trap | Wrap | Saturate

type t = {
  cell : int Atomic.t;
  bound : int;
  policy : policy;
  overflows : int Atomic.t;
}

let create ?(policy = Trap) ~bound v =
  if bound < 1 then invalid_arg "Bounded.create: bound must be >= 1";
  if v < 0 || v > bound then invalid_arg "Bounded.create: initial value out of range";
  { cell = Atomic.make v; bound; policy; overflows = Atomic.make 0 }

let get t = Atomic.get t.cell

let set t v =
  if v <= t.bound then Atomic.set t.cell v
  else begin
    Atomic.incr t.overflows;
    match t.policy with
    | Trap -> raise (Overflow { value = v; bound = t.bound })
    | Wrap -> Atomic.set t.cell (v mod (t.bound + 1))
    | Saturate -> Atomic.set t.cell t.bound
  end

let bound t = t.bound
let overflow_count t = Atomic.get t.overflows

let array ?policy ~bound n v = Array.init n (fun _ -> create ?policy ~bound v)

let max_of a =
  let best = ref 0 in
  for i = 0 to Array.length a - 1 do
    let v = get a.(i) in
    if v > !best then best := v
  done;
  !best
