(** Spin-wait primitive used by every lock in the zoo.

    On a multi-core machine a pure [Domain.cpu_relax] loop is right; on a
    single-core machine (or with more domains than cores) a waiting
    domain must yield the processor or the lock holder never runs and
    every handoff costs a full preemption timeslice.  [relax] therefore
    interleaves pause instructions with an occasional zero-length sleep,
    which on Linux reschedules the calling thread.

    All algorithms use the same primitive, so relative comparisons remain
    fair. *)

val relax : unit -> unit

val yield_period : int
(** Every [yield_period]-th call yields to the OS scheduler. *)
