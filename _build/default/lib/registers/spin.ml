let yield_period = 32

let key = Domain.DLS.new_key (fun () -> ref 0)

let relax () =
  let counter = Domain.DLS.get key in
  incr counter;
  if !counter mod yield_period = 0 then Unix.sleepf 0.0 else Domain.cpu_relax ()
