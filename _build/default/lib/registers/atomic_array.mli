(** Arrays of atomic integer registers with index striding to reduce
    false sharing between logically adjacent cells.

    OCaml boxes each [Atomic.t]; striding the pointer array spreads the
    pointers across cache lines, which in practice also spreads the boxes
    allocated together.  This is a best-effort mitigation, sufficient for
    the throughput-shape experiments (we compare algorithms under the same
    memory layout, not absolute hardware numbers). *)

type t

val create : ?stride:int -> int -> int -> t
(** [create n v]: [n] cells initialized to [v].  [stride] defaults to 8
    (64 bytes of pointers between consecutive cells). *)

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val fetch_and_add : t -> int -> int -> int
(** Atomic; returns the pre-value. *)

val compare_and_set : t -> int -> int -> int -> bool
val exchange : t -> int -> int -> int

val max_of : t -> int
(** Maximum over a one-cell-at-a-time scan, 0 for an empty array. *)

val words : t -> int
(** Shared memory footprint in words (cells only, not padding). *)
