type t = { cells : int Atomic.t array; stride : int; n : int }

let create ?(stride = 8) n v =
  if n < 0 then invalid_arg "Atomic_array.create: negative length";
  if stride < 1 then invalid_arg "Atomic_array.create: stride must be >= 1";
  { cells = Array.init (max 1 (n * stride)) (fun _ -> Atomic.make v); stride; n }

let length t = t.n

let slot t i =
  if i < 0 || i >= t.n then invalid_arg "Atomic_array: index out of bounds";
  t.cells.(i * t.stride)

let get t i = Atomic.get (slot t i)
let set t i v = Atomic.set (slot t i) v
let fetch_and_add t i d = Atomic.fetch_and_add (slot t i) d
let compare_and_set t i expected v = Atomic.compare_and_set (slot t i) expected v
let exchange t i v = Atomic.exchange (slot t i) v

let max_of t =
  let best = ref 0 in
  for i = 0 to t.n - 1 do
    let v = get t i in
    if v > !best then best := v
  done;
  !best

let words t = t.n
