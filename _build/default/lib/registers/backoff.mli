(** Bounded exponential backoff for spin loops. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Defaults: 4 to 1024 [cpu_relax]es per wave. *)

val once : t -> unit
(** Spin one wave ([Domain.cpu_relax] in a loop) and double the next wave
    up to the cap. *)

val reset : t -> unit
