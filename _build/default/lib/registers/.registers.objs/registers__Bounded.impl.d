lib/registers/bounded.ml: Array Atomic
