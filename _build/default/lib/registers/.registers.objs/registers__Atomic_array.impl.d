lib/registers/atomic_array.ml: Array Atomic
