lib/registers/backoff.ml: Domain
