lib/registers/atomic_array.mli:
