lib/registers/spin.ml: Domain Unix
