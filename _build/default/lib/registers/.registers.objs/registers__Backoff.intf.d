lib/registers/backoff.mli:
