lib/registers/spin.mli:
