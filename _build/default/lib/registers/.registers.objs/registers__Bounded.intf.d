lib/registers/bounded.mli:
