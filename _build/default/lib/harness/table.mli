(** ASCII/CSV result tables, one per reproduced experiment. *)

type t

val make : title:string -> ?notes:string list -> string list -> t
(** [make ~title headers]. *)

val add_row : t -> string list -> unit
(** Must match the header count. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** Convenience: a whole row as one "|"-separated formatted string. *)

val render : t -> string
(** Boxed ASCII rendering with the title and notes. *)

val to_csv : t -> string

val cells_of_string : string -> string list
(** Split a "|"-separated row specification. *)
