let check_nonempty xs =
  if Array.length xs = 0 then invalid_arg "Stats: empty sample"

let mean xs =
  check_nonempty xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  check_nonempty xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let minimum xs =
  check_nonempty xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty xs;
  Array.fold_left max xs.(0) xs

let jain xs =
  check_nonempty xs;
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if sumsq = 0.0 then 1.0
  else sum *. sum /. (float_of_int (Array.length xs) *. sumsq)

let format_si v =
  let magnitude = abs_float v in
  let scaled, suffix =
    if magnitude >= 1e9 then (v /. 1e9, "G")
    else if magnitude >= 1e6 then (v /. 1e6, "M")
    else if magnitude >= 1e3 then (v /. 1e3, "k")
    else (v, "")
  in
  if suffix = "" && abs_float (Float.round v -. v) < 1e-9 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f%s" scaled suffix
