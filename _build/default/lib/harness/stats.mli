(** Small descriptive-statistics toolkit for benchmark results. *)

val mean : float array -> float
val stddev : float array -> float
(** Sample standard deviation; 0 for fewer than two samples. *)

val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]; linear interpolation.
    Raises [Invalid_argument] on an empty array. *)

val minimum : float array -> float
val maximum : float array -> float

val jain : float array -> float
(** Jain's fairness index; 1.0 when all entries are equal. *)

val format_si : float -> string
(** Human-readable engineering notation: 12.3k, 4.56M, ... *)
