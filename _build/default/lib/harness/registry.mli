(** Central catalogue of everything runnable: lock families (runtime) and
    algorithm models (checker/simulator), keyed by name for the CLI and
    the experiment drivers. *)

val lock_families : Locks.Lock_intf.family list
val find_family : string -> Locks.Lock_intf.family
(** Raises [Not_found]. *)

val model_names : string list
val find_model : string -> Mxlang.Ast.program
(** Builds the program; raises [Not_found] for unknown names. *)

val models : (string * Mxlang.Ast.program) list
(** All models, built. *)
