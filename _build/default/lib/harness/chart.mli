(** Minimal ASCII line charts, for the figure-shaped views of the
    parameter sweeps (the paper has no figures; these make the measured
    scaling shapes visible directly in the terminal and in logs). *)

type series = { label : string; marker : char; points : (float * float) list }

val render :
  title:string ->
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_x:bool ->
  ?log_y:bool ->
  series list ->
  string
(** Scatter-plot the series on one canvas (default 64x16), linear or
    log10 axes, with min/max axis annotations and a legend.  Points with
    non-positive coordinates are dropped when the respective axis is
    logarithmic.  Raises [Invalid_argument] if nothing is plottable. *)
