type series = { label : string; marker : char; points : (float * float) list }

let render ~title ?(width = 64) ?(height = 16) ?(x_label = "x") ?(y_label = "y")
    ?(log_x = false) ?(log_y = false) series =
  if width < 8 || height < 4 then invalid_arg "Chart.render: canvas too small";
  let tx v = if log_x then log10 v else v in
  let ty v = if log_y then log10 v else v in
  let usable (x, y) = (not (log_x && x <= 0.0)) && not (log_y && y <= 0.0) in
  let all_points =
    List.concat_map (fun s -> List.filter usable s.points) series
  in
  if all_points = [] then invalid_arg "Chart.render: no plottable points";
  let xs = List.map (fun (x, _) -> tx x) all_points in
  let ys = List.map (fun (_, y) -> ty y) all_points in
  let fold f = function [] -> assert false | h :: t -> List.fold_left f h t in
  let xmin = fold min xs and xmax = fold max xs in
  let ymin = fold min ys and ymax = fold max ys in
  let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
  let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
  let grid = Array.make_matrix height width ' ' in
  let plot s =
    List.iter
      (fun (x, y) ->
        if usable (x, y) then begin
          let cx =
            int_of_float
              (Float.round ((tx x -. xmin) /. xspan *. float_of_int (width - 1)))
          in
          let cy =
            int_of_float
              (Float.round ((ty y -. ymin) /. yspan *. float_of_int (height - 1)))
          in
          let row = height - 1 - cy in
          grid.(row).(cx) <- s.marker
        end)
      s.points
  in
  List.iter plot series;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "-- %s --\n" title);
  let y_hi = if log_y then Printf.sprintf "1e%.1f" ymax else Printf.sprintf "%g" ymax in
  let y_lo = if log_y then Printf.sprintf "1e%.1f" ymin else Printf.sprintf "%g" ymin in
  Array.iteri
    (fun row line ->
      let tag =
        if row = 0 then Printf.sprintf "%8s |" y_hi
        else if row = height - 1 then Printf.sprintf "%8s |" y_lo
        else Printf.sprintf "%8s |" ""
      in
      Buffer.add_string buf tag;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
  let x_lo = if log_x then Printf.sprintf "1e%.1f" xmin else Printf.sprintf "%g" xmin in
  let x_hi = if log_x then Printf.sprintf "1e%.1f" xmax else Printf.sprintf "%g" xmax in
  Buffer.add_string buf
    (Printf.sprintf "%8s  %-*s%s\n" "" (width - String.length x_hi) x_lo x_hi);
  Buffer.add_string buf
    (Printf.sprintf "  y: %s%s   x: %s%s\n" y_label
       (if log_y then " (log)" else "")
       x_label
       (if log_x then " (log)" else ""));
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.marker s.label))
    series;
  Buffer.contents buf
