type t = {
  title : string;
  notes : string list;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let make ~title ?(notes = []) headers =
  if headers = [] then invalid_arg "Table.make: no headers";
  { title; notes; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): %d cells, expected %d" t.title
         (List.length row) (List.length t.headers));
  t.rows <- row :: t.rows

let cells_of_string s = String.split_on_char '|' s |> List.map String.trim

let add_rowf t fmt = Printf.ksprintf (fun s -> add_row t (cells_of_string s)) fmt

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let width col =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row col)))
      (String.length (List.nth t.headers col))
      rows
  in
  let widths = List.init ncols width in
  let pad cell w =
    (* right-align numbers, left-align text *)
    let is_numeric =
      cell <> ""
      && String.for_all
           (fun c ->
             (c >= '0' && c <= '9')
             || c = '.' || c = '-' || c = '+' || c = '%' || c = 'e'
             || c = 'k' || c = 'M' || c = 'G' || c = 'x' || c = 's' || c = 'u')
           cell
    in
    if is_numeric then Printf.sprintf "%*s" w cell
    else Printf.sprintf "%-*s" w cell
  in
  let line row =
    "| "
    ^ String.concat " | " (List.map2 pad row widths)
    ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line t.headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n")) t.notes;
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map csv_escape row));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf
