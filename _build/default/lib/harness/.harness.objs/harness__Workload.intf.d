lib/harness/workload.mli: Prng
