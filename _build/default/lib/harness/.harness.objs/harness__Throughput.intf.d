lib/harness/throughput.mli: Locks Workload
