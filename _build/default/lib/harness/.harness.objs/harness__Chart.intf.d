lib/harness/chart.mli:
