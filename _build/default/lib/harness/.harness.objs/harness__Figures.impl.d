lib/harness/figures.ml: Algorithms Chart Core List Printf Schedsim
