lib/harness/throughput.ml: Array Atomic Domain Locks Prng Registers Unix Workload
