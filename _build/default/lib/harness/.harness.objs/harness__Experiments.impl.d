lib/harness/experiments.ml: Algorithms Array Core List Locks Modelcheck Mxlang Printf Registry Schedsim Stats Table Throughput
