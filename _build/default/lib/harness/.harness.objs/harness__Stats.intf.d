lib/harness/stats.mli:
