lib/harness/table.mli:
