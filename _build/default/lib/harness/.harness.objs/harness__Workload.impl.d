lib/harness/workload.ml: Prng
