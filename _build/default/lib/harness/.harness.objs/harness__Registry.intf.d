lib/harness/registry.mli: Locks Mxlang
