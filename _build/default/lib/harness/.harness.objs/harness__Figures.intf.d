lib/harness/figures.mli:
