lib/harness/chart.ml: Array Buffer Float List Printf String
