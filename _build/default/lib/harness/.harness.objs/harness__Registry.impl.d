lib/harness/registry.ml: Algorithms Core List Locks Mxlang
