lib/harness/stats.ml: Array Float Printf
