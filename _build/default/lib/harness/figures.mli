(** Figure-shaped views of the headline sweeps (the paper prints no
    figures; these render the measured scaling shapes as ASCII charts). *)

val f1 : quick:bool -> string
(** Steps to the first overflow vs. register capacity M, original Bakery,
    N ∈ {2, 4} (log-log; expected shape: two parallel unit-slope lines —
    linear scaling in M, paper §3/§4). *)

val f2 : quick:bool -> string
(** Overflow resets per 1000 CS entries vs. M for Bakery++ (simulator,
    N = 4; log-log, expected shape: decreasing roughly as 1/M — the §7
    price of overflow avoidance vanishing with register width). *)

val all : quick:bool -> (string * string) list
(** [(id, rendered chart)] for every figure. *)
