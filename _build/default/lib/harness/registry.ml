module LI = Locks.Lock_intf

let ticket_mod_family =
  {
    LI.family_name = "ticket_mod";
    needs_bound = true;
    two_process_only = false;
    make =
      (fun ~nprocs ~bound ->
        LI.instance_of
          (module Locks.Ticket_lock)
          (Locks.Ticket_lock.create_mod ~nprocs ~bound));
  }

let lock_families =
  [
    LI.family_of (module Locks.Bakery_lock) ();
    LI.family_of (module Locks.Bakery_bounded_lock) ~needs_bound:true ();
    LI.family_of (module Core.Bakery_pp_lock) ~needs_bound:true ();
    LI.family_of (module Locks.Blackwhite_lock) ();
    LI.family_of (module Locks.Filter_lock_rt) ();
    LI.family_of (module Locks.Tournament_lock) ();
    LI.family_of (module Locks.Szymanski_lock) ();
    LI.family_of (module Locks.Ticket_lock) ();
    ticket_mod_family;
    LI.family_of (module Locks.Tas_lock) ();
    LI.family_of (module Locks.Ttas_lock) ();
    LI.family_of (module Locks.Fast_mutex_lock) ();
    LI.family_of (module Locks.Burns_lynch_lock) ();
    LI.family_of (module Locks.Anderson_lock) ();
    LI.family_of (module Locks.Clh_lock) ();
    LI.family_of (module Locks.Mcs_lock) ();
    LI.family_of (module Locks.Eisenberg_lock) ();
    LI.family_of (module Locks.Knuth_lock) ();
  ]

let find_family name =
  List.find (fun f -> f.LI.family_name = name) lock_families

let model_builders : (string * (unit -> Mxlang.Ast.program)) list =
  [
    ("bakery", fun () -> Algorithms.Bakery.program ());
    ( "bakery_fine",
      fun () -> Algorithms.Bakery.program ~granularity:Algorithms.Common.Fine () );
    ("bakery_pp", fun () -> Core.Bakery_pp_model.program ());
    ( "bakery_pp_fine",
      fun () ->
        Core.Bakery_pp_model.program ~granularity:Algorithms.Common.Fine () );
    ("bakery_mod_naive", fun () -> Algorithms.Bakery_mod.program ());
    ("black_white_bakery", fun () -> Algorithms.Blackwhite.program ());
    ("peterson2", fun () -> Algorithms.Peterson2.program ());
    ("dekker", fun () -> Algorithms.Dekker.program ());
    ("filter", fun () -> Algorithms.Filter_lock.program ());
    ("szymanski", fun () -> Algorithms.Szymanski.program ());
    ("ticket", fun () -> Algorithms.Ticket_model.program ());
    ("ticket_mod", fun () -> Algorithms.Ticket_model.program_mod ());
    ("tas", fun () -> Algorithms.Tas_model.program ());
    ("fast_mutex", fun () -> Algorithms.Fast_mutex.program ());
    ("eisenberg_mcguire", fun () -> Algorithms.Eisenberg.program ());
    ("knuth", fun () -> Algorithms.Knuth.program ());
    ("burns_lynch", fun () -> Algorithms.Burns_lynch.program ());
    ("no_lock", fun () -> Algorithms.No_lock.program ());
  ]

let model_names = List.map fst model_builders

let find_model name = (List.assoc name model_builders) ()

let models = List.map (fun (name, build) -> (name, build ())) model_builders
