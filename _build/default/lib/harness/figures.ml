let steps_to_overflow ~nprocs ~bound =
  let prog = Algorithms.Bakery.program () in
  let strategy =
    if nprocs <= 2 then Schedsim.Scheduler.Round_robin
    else Schedsim.Scheduler.Uniform 11
  in
  let cfg =
    {
      (Schedsim.Runner.default_config ~nprocs ~bound) with
      strategy;
      overflow_policy = Schedsim.Runner.Stop;
      max_steps = 50_000_000;
    }
  in
  (Schedsim.Runner.run prog cfg).steps

let f1 ~quick =
  let ms =
    if quick then [ 63; 255; 1023 ]
    else [ 63; 255; 1023; 4095; 16383; 65535 ]
  in
  let series n marker =
    {
      Chart.label = Printf.sprintf "bakery, N=%d" n;
      marker;
      points =
        List.map
          (fun m ->
            (float_of_int m, float_of_int (steps_to_overflow ~nprocs:n ~bound:m)))
          ms;
    }
  in
  Chart.render
    ~title:
      "F1 (paper 3/4): interleaving steps until the first overflow vs \
       register capacity M"
    ~x_label:"M" ~y_label:"steps to overflow" ~log_x:true ~log_y:true
    [ series 2 '*'; series 4 'o' ]

let f2 ~quick =
  let ms = if quick then [ 2; 8; 64 ] else [ 2; 4; 8; 16; 32; 64; 128; 256 ] in
  let prog = Core.Bakery_pp_model.program () in
  let points =
    List.map
      (fun m ->
        let cfg =
          {
            (Schedsim.Runner.default_config ~nprocs:4 ~bound:m) with
            strategy = Schedsim.Scheduler.Uniform 5;
            max_steps = (if quick then 200_000 else 800_000);
          }
        in
        let r = Schedsim.Runner.run prog cfg in
        let cs = Schedsim.Runner.total_cs r in
        let resets =
          Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label
        in
        ( float_of_int m,
          if cs = 0 then 0.0
          else 1000.0 *. float_of_int resets /. float_of_int cs ))
      ms
  in
  Chart.render
    ~title:
      "F2 (paper 7): Bakery++ overflow resets per 1000 CS entries vs M \
       (N=4, simulator)"
    ~x_label:"M" ~y_label:"resets / 1k CS" ~log_x:true ~log_y:true
    [ { Chart.label = "bakery_pp"; marker = '*'; points } ]

let all ~quick = [ ("f1", f1 ~quick); ("f2", f2 ~quick) ]
