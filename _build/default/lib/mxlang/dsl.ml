(* Thin shorthands over {!Ast} so algorithm definitions read close to the
   paper's pseudocode.  Purely syntactic; see ast.ml for semantics. *)

let int k = Ast.Int k
let zero = Ast.Int 0
let one = Ast.Int 1
let n = Ast.N
let m = Ast.M
let self = Ast.Pid
let q = Ast.Qidx
let lv l = Ast.Local l
let rd v ix = Ast.Rd (v, ix)
let rd_own v = Ast.Rd (v, Ast.Pid)
let ( +: ) a b = Ast.Add (a, b)
let ( -: ) a b = Ast.Sub (a, b)
let ( *: ) a b = Ast.Mul (a, b)
let ( %: ) a b = Ast.Mod (a, b)
let max_arr v = Ast.Max_arr v
let ite c a b = Ast.Ite (c, a, b)

let tt = Ast.True
let ff = Ast.False
let not_ b = Ast.Not b
let ( &&: ) a b = Ast.And (a, b)
let ( ||: ) a b = Ast.Or (a, b)
let ( =: ) a b = Ast.Cmp (Ast.Ceq, a, b)
let ( <>: ) a b = Ast.Cmp (Ast.Cne, a, b)
let ( <: ) a b = Ast.Cmp (Ast.Clt, a, b)
let ( <=: ) a b = Ast.Cmp (Ast.Cle, a, b)
let ( >: ) a b = Ast.Cmp (Ast.Cgt, a, b)
let ( >=: ) a b = Ast.Cmp (Ast.Cge, a, b)

let lex_lt (a, b) (c, d) = Ast.Lex_lt ((a, b), (c, d))
let exists ?range v c e = Ast.exists_cell ?range v c e
let forall ?range v c e = Ast.forall_cell ?range v c e
let qexists range p = Ast.Qexists (range, p)
let qall range p = Ast.Qall (range, p)

(* Assignment pairs for action effects. *)
let set_own v e : Ast.lhs * Ast.expr = (Ast.Sh (v, Ast.Pid), e)
let set v ix e : Ast.lhs * Ast.expr = (Ast.Sh (v, ix), e)
let set_local l e : Ast.lhs * Ast.expr = (Ast.Lo l, e)
