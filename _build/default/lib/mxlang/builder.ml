type label = { id : int; lbl_name : string; mutable pc : int }

type pending = { lab : label; p_kind : Ast.kind; p_actions : act list }

and act = {
  pa_guard : Ast.bexpr;
  pa_effects : (Ast.lhs * Ast.expr) list;
  pa_target : label;
}

type t = {
  title : string;
  mutable vars : (string * int * bool * bool * int) list; (* name, size, per_process, bounded, init; reversed *)
  mutable locals : (string * int) list; (* reversed *)
  mutable labels : label list; (* reversed *)
  mutable steps : pending list; (* reversed, in definition order *)
  mutable nlabels : int;
  mutable built : bool;
}

let create ~title =
  { title; vars = []; locals = []; labels = []; steps = []; nlabels = 0; built = false }

let shared b name ~size ?(bounded = false) ?(init = 0) () =
  let id = List.length b.vars in
  b.vars <- (name, size, false, bounded, init) :: b.vars;
  id

let shared_per_process b name ?(bounded = false) ?(init = 0) () =
  let id = List.length b.vars in
  b.vars <- (name, -1, true, bounded, init) :: b.vars;
  id

let local b ?(init = 0) name =
  let id = List.length b.locals in
  b.locals <- (name, init) :: b.locals;
  id

let fresh_label b lbl_name =
  let lab = { id = b.nlabels; lbl_name; pc = -1 } in
  b.nlabels <- b.nlabels + 1;
  b.labels <- lab :: b.labels;
  lab

let define b lab ~kind actions =
  if lab.pc >= 0 then failwith ("label defined twice: " ^ lab.lbl_name);
  lab.pc <- List.length b.steps;
  b.steps <- { lab; p_kind = kind; p_actions = actions } :: b.steps

let action ?(guard = Ast.True) ?(effects = []) target =
  { pa_guard = guard; pa_effects = effects; pa_target = target }

let goto target = action target

let ite cond then_ else_ =
  [ action ~guard:cond then_; action ~guard:(Ast.Not cond) else_ ]

let await cond target = [ action ~guard:cond target ]

let define_here b name ~kind actions =
  let lab = fresh_label b name in
  define b lab ~kind actions;
  lab

let target_of lab =
  if lab.pc < 0 then failwith ("label never defined: " ^ lab.lbl_name);
  lab.pc

let build b : Ast.program =
  if b.built then failwith "build called twice";
  b.built <- true;
  List.iter
    (fun lab ->
      if lab.pc < 0 then failwith ("label never defined: " ^ lab.lbl_name))
    b.labels;
  let vars = Array.of_list (List.rev b.vars) in
  let locals = Array.of_list (List.rev b.locals) in
  let pendings = Array.of_list (List.rev b.steps) in
  let compile_action (pa : act) : Ast.action =
    { guard = pa.pa_guard; effects = pa.pa_effects; target = target_of pa.pa_target }
  in
  let steps =
    Array.map
      (fun p ->
        {
          Ast.step_name = p.lab.lbl_name;
          kind = p.p_kind;
          actions = List.map compile_action p.p_actions;
        })
      pendings
  in
  if Array.length steps = 0 then failwith "program has no steps";
  {
    Ast.title = b.title;
    nvars = Array.length vars;
    var_names = Array.map (fun (n, _, _, _, _) -> n) vars;
    var_sizes = Array.map (fun (_, s, _, _, _) -> s) vars;
    per_process = Array.map (fun (_, _, p, _, _) -> p) vars;
    bounded = Array.map (fun (_, _, _, bd, _) -> bd) vars;
    nlocals = Array.length locals;
    local_names = Array.map fst locals;
    steps;
    init_shared = Array.map (fun (_, _, _, _, i) -> i) vars;
    init_locals = Array.map snd locals;
    init_pc = 0;
  }
