lib/mxlang/eval.ml: Array Ast List Printf
