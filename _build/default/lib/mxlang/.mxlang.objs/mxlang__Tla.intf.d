lib/mxlang/tla.mli: Ast
