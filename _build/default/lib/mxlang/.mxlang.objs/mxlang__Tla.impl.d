lib/mxlang/tla.ml: Array Ast Buffer Fun List Pretty Printf String
