lib/mxlang/validate.ml: Array Ast List Printf String
