lib/mxlang/ast.ml: Array
