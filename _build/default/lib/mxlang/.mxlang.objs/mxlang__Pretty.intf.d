lib/mxlang/pretty.mli: Ast
