lib/mxlang/validate.mli: Ast
