lib/mxlang/builder.ml: Array Ast List
