lib/mxlang/eval.mli: Ast
