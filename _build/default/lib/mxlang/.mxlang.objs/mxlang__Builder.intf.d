lib/mxlang/builder.mli: Ast
