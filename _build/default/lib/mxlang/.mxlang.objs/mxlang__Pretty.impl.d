lib/mxlang/pretty.ml: Array Ast Buffer List Printf String
