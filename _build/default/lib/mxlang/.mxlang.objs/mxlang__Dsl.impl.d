lib/mxlang/dsl.ml: Ast
