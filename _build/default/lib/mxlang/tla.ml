let module_name (p : Ast.program) =
  let b = Buffer.create 16 in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    p.title;
  let s = Buffer.contents b in
  if s = "" then "Algorithm" else String.capitalize_ascii s

(* Locals are modeled as one TLA+ function per local variable, indexed by
   process id; [pc] likewise. *)
let local_var (p : Ast.program) l = "lv_" ^ p.local_names.(l)

let rec expr (p : Ast.program) ~self (e : Ast.expr) =
  match e with
  | Int k -> string_of_int k
  | N -> "NProc"
  | M -> "MaxReg"
  | Pid -> self
  | Qidx -> "q"
  | Local l -> Printf.sprintf "%s[%s]" (local_var p l) self
  | Rd (v, ix) -> Printf.sprintf "%s[%s]" p.var_names.(v) (expr p ~self ix)
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr p ~self a) (expr p ~self b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr p ~self a) (expr p ~self b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr p ~self a) (expr p ~self b)
  | Mod (a, b) -> Printf.sprintf "(%s %% %s)" (expr p ~self a) (expr p ~self b)
  | Max_arr v -> Printf.sprintf "MaxOf(%s)" p.var_names.(v)
  | Ite (c, a, b) ->
      Printf.sprintf "(IF %s THEN %s ELSE %s)" (bexpr p ~self c)
        (expr p ~self a) (expr p ~self b)

and bexpr (p : Ast.program) ~self (b : Ast.bexpr) =
  match b with
  | True -> "TRUE"
  | False -> "FALSE"
  | Not x -> Printf.sprintf "~(%s)" (bexpr p ~self x)
  | And (x, y) -> Printf.sprintf "(%s /\\ %s)" (bexpr p ~self x) (bexpr p ~self y)
  | Or (x, y) -> Printf.sprintf "(%s \\/ %s)" (bexpr p ~self x) (bexpr p ~self y)
  | Cmp (c, x, y) ->
      let op =
        match c with
        | Ast.Clt -> "<"
        | Cle -> "<="
        | Ceq -> "="
        | Cne -> "#"
        | Cgt -> ">"
        | Cge -> ">="
      in
      Printf.sprintf "(%s %s %s)" (expr p ~self x) op (expr p ~self y)
  | Lex_lt ((a, b1), (c, d)) ->
      Printf.sprintf "LexLt(%s, %s, %s, %s)" (expr p ~self a) (expr p ~self b1)
        (expr p ~self c) (expr p ~self d)
  | Qexists (r, pred) ->
      Printf.sprintf "\\E q \\in %s : %s" (tla_range ~self r) (bexpr p ~self pred)
  | Qall (r, pred) ->
      Printf.sprintf "\\A q \\in %s : %s" (tla_range ~self r) (bexpr p ~self pred)

and tla_range ~self = function
  | Ast.Rall -> "Procs"
  | Rothers -> Printf.sprintf "(Procs \\ {%s})" self
  | Rbelow -> Printf.sprintf "(0 .. %s - 1)" self
  | Rabove -> Printf.sprintf "(%s + 1 .. NProc - 1)" self

(* Render the primed-state relation of one action: a conjunction of one
   EXCEPT-update per written variable plus UNCHANGED for the rest. *)
let action_updates (p : Ast.program) ~self (a : Ast.action) =
  (* Group writes by destination variable so multiple writes chain inside
     a single EXCEPT. *)
  let shared_writes = Array.make p.nvars [] in
  let local_writes = Array.make p.nlocals [] in
  List.iter
    (fun (l, e) ->
      match l with
      | Ast.Sh (v, ix) -> shared_writes.(v) <- (ix, e) :: shared_writes.(v)
      | Ast.Lo l -> local_writes.(l) <- e :: local_writes.(l))
    a.effects;
  let conjuncts = ref [] in
  let unchanged = ref [] in
  for v = p.nvars - 1 downto 0 do
    match shared_writes.(v) with
    | [] -> unchanged := p.var_names.(v) :: !unchanged
    | writes ->
        let excepts =
          List.rev_map
            (fun (ix, e) ->
              Printf.sprintf "![%s] = %s" (expr p ~self ix) (expr p ~self e))
            writes
        in
        conjuncts :=
          Printf.sprintf "%s' = [%s EXCEPT %s]" p.var_names.(v)
            p.var_names.(v)
            (String.concat ", " excepts)
          :: !conjuncts
  done;
  for l = p.nlocals - 1 downto 0 do
    match local_writes.(l) with
    | [] -> unchanged := local_var p l :: !unchanged
    | e :: _ ->
        conjuncts :=
          Printf.sprintf "%s' = [%s EXCEPT ![%s] = %s]" (local_var p l)
            (local_var p l) self (expr p ~self e)
          :: !conjuncts
  done;
  let pc_update =
    Printf.sprintf "pc' = [pc EXCEPT ![%s] = %d]" self a.target
  in
  let unchanged_clause =
    match !unchanged with
    | [] -> []
    | vs -> [ Printf.sprintf "UNCHANGED <<%s>>" (String.concat ", " vs) ]
  in
  !conjuncts @ [ pc_update ] @ unchanged_clause

let export (p : Ast.program) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let self = "self" in
  let all_vars =
    Array.to_list p.var_names
    @ List.init p.nlocals (local_var p)
    @ [ "pc" ]
  in
  out "---- MODULE %s ----\n" (module_name p);
  out "\\* Generated from the mxlang model %S.\n" p.title;
  out "\\* Step atomicity matches TLC's PlusCal semantics: one label = one action.\n";
  out "EXTENDS Naturals, Integers\n\n";
  out "CONSTANTS NProc, MaxReg\n\n";
  out "Procs == 0 .. (NProc - 1)\n";
  out "MaxOf(f) == CHOOSE m \\in {f[q] : q \\in Procs} : \\A q \\in Procs : f[q] <= m\n";
  out "LexLt(a, b, c, d) == (a < c) \\/ (a = c /\\ b < d)\n\n";
  out "VARIABLES %s\n\n" (String.concat ", " all_vars);
  out "vars == <<%s>>\n\n" (String.concat ", " all_vars);
  out "Init ==\n";
  for v = 0 to p.nvars - 1 do
    let dom =
      if p.var_sizes.(v) = -1 then "Procs"
      else Printf.sprintf "0 .. %d" (p.var_sizes.(v) - 1)
    in
    out "  /\\ %s = [q \\in %s |-> %d]\n" p.var_names.(v) dom p.init_shared.(v)
  done;
  for l = 0 to p.nlocals - 1 do
    out "  /\\ %s = [q \\in Procs |-> %d]\n" (local_var p l) p.init_locals.(l)
  done;
  out "  /\\ pc = [q \\in Procs |-> %d]\n\n" p.init_pc;
  (* One named action per (step, alternative). *)
  Array.iteri
    (fun pc (step : Ast.step) ->
      List.iteri
        (fun k (a : Ast.action) ->
          out "\\* step %s%s, alternative %d\n" step.step_name
            (match Pretty.kind step.kind with "" -> "" | s -> " (" ^ s ^ ")")
            k;
          out "Step_%d_%d(%s) ==\n" pc k self;
          out "  /\\ pc[%s] = %d\n" self pc;
          (match a.guard with
          | Ast.True -> ()
          | g -> out "  /\\ %s\n" (bexpr p ~self g));
          List.iter (fun c -> out "  /\\ %s\n" c) (action_updates p ~self a);
          out "\n")
        step.actions)
    p.steps;
  out "Next ==\n  \\E %s \\in Procs :\n" self;
  let disjuncts =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun pc (step : Ast.step) ->
              List.mapi (fun k _ -> Printf.sprintf "Step_%d_%d(%s)" pc k self) step.actions)
            p.steps))
  in
  List.iteri
    (fun i d -> out "    %s %s\n" (if i = 0 then "  " else "\\/") d)
    disjuncts;
  out "\nSpec == Init /\\ [][Next]_vars\n\n";
  let cs_pcs =
    Array.to_list
      (Array.mapi (fun pc (s : Ast.step) -> (pc, s.kind)) p.steps)
    |> List.filter (fun (_, k) -> k = Ast.Critical)
    |> List.map fst
  in
  (match cs_pcs with
  | [] -> out "Mutex == TRUE  \\* no critical step in this model\n"
  | pcs ->
      let in_cs q =
        String.concat " \\/ "
          (List.map (fun pc -> Printf.sprintf "pc[%s] = %d" q pc) pcs)
      in
      out "InCS(q) == %s\n" (in_cs "q");
      out "Mutex == \\A i, j \\in Procs : (i # j) => ~(InCS(i) /\\ InCS(j))\n");
  let bounded_vars =
    List.filter (fun v -> p.bounded.(v)) (List.init p.nvars Fun.id)
  in
  (match bounded_vars with
  | [] -> out "NoOverflow == TRUE\n"
  | vs ->
      out "NoOverflow ==\n";
      List.iter
        (fun v ->
          out "  /\\ \\A q \\in Procs : %s[q] <= MaxReg\n" p.var_names.(v))
        vs);
  out "====\n";
  Buffer.contents buf
