(** Imperative builder for mxlang programs.

    Typical use, closely following how the paper lists its algorithms:

    {[
      let b = Builder.create ~title:"bakery" in
      let number = Builder.shared_per_process b "number" ~bounded:true in
      let j = Builder.local b "j" in
      let l1 = Builder.fresh_label b "L1" in
      ...
      Builder.define b l1 ~kind:Entry [ Builder.goto l2 ];
      ...
      Builder.build b
    ]}

    Labels may be referenced before they are defined ([fresh_label] then
    [define]); [build] checks that every label was defined exactly once. *)

type t

type label

type act
(** A builder-level action whose target is a (possibly not yet defined)
    label; compiled to {!Ast.action} by {!build}. *)

val create : title:string -> t

val shared : t -> string -> size:int -> ?bounded:bool -> ?init:int -> unit -> Ast.var
(** Declare a shared integer array of fixed [size]. *)

val shared_per_process :
  t -> string -> ?bounded:bool -> ?init:int -> unit -> Ast.var
(** Declare a shared array with one single-writer cell per process
    (the paper's [number] and [choosing] arrays). *)

val local : t -> ?init:int -> string -> Ast.local
(** Declare a per-process local variable. *)

val fresh_label : t -> string -> label
(** Allocate a label that can be targeted before it is defined. *)

val define : t -> label -> kind:Ast.kind -> act list -> unit
(** Attach a step to a label.  Steps execute in no particular textual
    order; control flow is entirely explicit through action targets. *)

val define_here : t -> string -> kind:Ast.kind -> act list -> label
(** [fresh_label] + [define] in one call, for straight-line steps whose
    label is only ever targeted after this point. *)

(* Action constructors.  Guards default to [True]. *)

val goto : label -> act
val action : ?guard:Ast.bexpr -> ?effects:(Ast.lhs * Ast.expr) list -> label -> act

val ite : Ast.bexpr -> label -> label -> act list
(** Two alternative actions: branch on a condition. *)

val await : Ast.bexpr -> label -> act list
(** Blocking await: the process can only move (to the label) once the
    condition holds — TLC's interpretation of PlusCal's [await]/spin. *)

val target_of : label -> int
(** Resolve a label to its program counter; only valid after [build].
    Raises [Failure] on undefined labels. *)

val build : t -> Ast.program
(** Finalize; validates label definitions and returns the program. *)
