type issue = { severity : [ `Error | `Warning ]; message : string }

let error fmt = Printf.ksprintf (fun message -> { severity = `Error; message }) fmt
let warning fmt = Printf.ksprintf (fun message -> { severity = `Warning; message }) fmt

(* Collect every variable/local reference in an expression. *)
let rec expr_refs (e : Ast.expr) k_var k_local =
  match e with
  | Int _ | N | M | Pid | Qidx -> ()
  | Local l -> k_local l
  | Rd (v, ix) ->
      k_var v;
      expr_refs ix k_var k_local
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
      expr_refs a k_var k_local;
      expr_refs b k_var k_local
  | Max_arr v -> k_var v
  | Ite (c, a, b) ->
      bexpr_refs c k_var k_local;
      expr_refs a k_var k_local;
      expr_refs b k_var k_local

and bexpr_refs (b : Ast.bexpr) k_var k_local =
  match b with
  | True | False -> ()
  | Not x -> bexpr_refs x k_var k_local
  | And (x, y) | Or (x, y) ->
      bexpr_refs x k_var k_local;
      bexpr_refs y k_var k_local
  | Cmp (_, x, y) ->
      expr_refs x k_var k_local;
      expr_refs y k_var k_local
  | Lex_lt ((a, b1), (c, d)) ->
      List.iter (fun e -> expr_refs e k_var k_local) [ a; b1; c; d ]
  | Qexists (_, p) | Qall (_, p) -> bexpr_refs p k_var k_local

let check (p : Ast.program) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let nsteps = Array.length p.steps in
  if p.init_pc < 0 || p.init_pc >= nsteps then
    add (error "initial pc %d out of range" p.init_pc);
  if Array.length p.var_names <> p.nvars || Array.length p.var_sizes <> p.nvars
  then add (error "variable table arrays disagree with nvars = %d" p.nvars);
  if Array.length p.local_names <> p.nlocals then
    add (error "local table disagrees with nlocals = %d" p.nlocals);
  Array.iteri
    (fun v size ->
      if size <> -1 && size <= 0 then
        add (error "variable %s has invalid size %d" p.var_names.(v) size))
    p.var_sizes;
  let check_var where v =
    if v < 0 || v >= p.nvars then add (error "%s: bad variable id %d" where v)
  and check_local where l =
    if l < 0 || l >= p.nlocals then add (error "%s: bad local id %d" where l)
  in
  let reachable = Array.make nsteps false in
  Array.iteri
    (fun pc (step : Ast.step) ->
      let where = Printf.sprintf "step %s (pc %d)" step.step_name pc in
      if step.actions = [] then add (warning "%s: no actions (dead end)" where);
      List.iter
        (fun (a : Ast.action) ->
          if a.target < 0 || a.target >= nsteps then
            add (error "%s: target %d out of range" where a.target)
          else reachable.(a.target) <- true;
          bexpr_refs a.guard (check_var where) (check_local where);
          List.iter
            (fun (l, e) ->
              expr_refs e (check_var where) (check_local where);
              match l with
              | Ast.Lo l -> check_local where l
              | Ast.Sh (v, ix) ->
                  check_var where v;
                  expr_refs ix (check_var where) (check_local where))
            a.effects)
        step.actions)
    p.steps;
  reachable.(p.init_pc) <- true;
  Array.iteri
    (fun pc r ->
      if not r then
        add (warning "step %s (pc %d) is unreachable" p.steps.(pc).step_name pc))
    reachable;
  if not (Array.exists (fun (s : Ast.step) -> s.kind = Ast.Critical) p.steps)
  then add (warning "no step is marked Critical; mutex invariant is vacuous");
  List.rev !issues

let assert_valid p =
  let errors =
    List.filter (fun i -> i.severity = `Error) (check p)
  in
  if errors <> [] then
    invalid_arg
      (String.concat "\n"
         (Printf.sprintf "program %s is invalid:" p.title
         :: List.map (fun i -> "  " ^ i.message) errors))
