(** Static sanity checks over a built program. *)

type issue = { severity : [ `Error | `Warning ]; message : string }

val check : Ast.program -> issue list
(** All detected issues: dangling label targets, out-of-range variable or
    local references, missing [Critical] step, unreachable steps, steps
    whose action guards cannot be exhaustive ([`Warning] only, since
    blocking awaits are intentionally non-exhaustive). *)

val assert_valid : Ast.program -> unit
(** Raises [Invalid_argument] with a readable listing if [check] found
    any [`Error]-severity issue. *)
