(** Pseudocode rendering of mxlang programs, in the style of the paper's
    Algorithm 1 / Algorithm 2 listings. *)

val expr : Ast.program -> Ast.expr -> string
val bexpr : Ast.program -> Ast.bexpr -> string
val lhs : Ast.program -> Ast.lhs -> string
val action : Ast.program -> Ast.action -> string
val step : Ast.program -> int -> string
(** One step with its label, kind tag and actions. *)

val program : Ast.program -> string
(** The whole listing. *)

val kind : Ast.kind -> string
