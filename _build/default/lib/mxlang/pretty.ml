let kind = function
  | Ast.Noncritical -> "ncs"
  | Ast.Entry -> "entry"
  | Ast.Doorway -> "doorway"
  | Ast.Waiting -> "waiting"
  | Ast.Critical -> "CS"
  | Ast.Exit -> "exit"
  | Ast.Plain -> ""

(* Precedence-free rendering: binary arithmetic is parenthesized, which is
   unambiguous and keeps the printer trivial to audit. *)
let rec expr (p : Ast.program) (e : Ast.expr) =
  match e with
  | Int k -> string_of_int k
  | N -> "N"
  | M -> "M"
  | Pid -> "self"
  | Qidx -> "q"
  | Local l -> p.local_names.(l)
  | Rd (v, ix) -> Printf.sprintf "%s[%s]" p.var_names.(v) (expr p ix)
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr p a) (expr p b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr p a) (expr p b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr p a) (expr p b)
  | Mod (a, b) -> Printf.sprintf "(%s mod %s)" (expr p a) (expr p b)
  | Max_arr v -> Printf.sprintf "maximum(%s)" p.var_names.(v)
  | Ite (c, a, b) ->
      Printf.sprintf "(if %s then %s else %s)" (bexpr p c) (expr p a) (expr p b)

and bexpr (p : Ast.program) (b : Ast.bexpr) =
  match b with
  | True -> "true"
  | False -> "false"
  | Not x -> Printf.sprintf "not (%s)" (bexpr p x)
  | And (x, y) -> Printf.sprintf "(%s and %s)" (bexpr p x) (bexpr p y)
  | Or (x, y) -> Printf.sprintf "(%s or %s)" (bexpr p x) (bexpr p y)
  | Cmp (c, x, y) ->
      Printf.sprintf "%s %s %s" (expr p x) (Ast.string_of_cmp c) (expr p y)
  | Lex_lt ((a, b1), (c, d)) ->
      Printf.sprintf "(%s, %s) << (%s, %s)" (expr p a) (expr p b1) (expr p c)
        (expr p d)
  | Qexists (r, pred) ->
      Printf.sprintf "exists q %s: %s" (range r) (bexpr p pred)
  | Qall (r, pred) ->
      Printf.sprintf "forall q %s: %s" (range r) (bexpr p pred)

and range = function
  | Ast.Rall -> "in 0..N-1"
  | Rothers -> "<> self"
  | Rbelow -> "< self"
  | Rabove -> "> self"

let lhs (p : Ast.program) = function
  | Ast.Lo l -> p.local_names.(l)
  | Ast.Sh (v, ix) -> Printf.sprintf "%s[%s]" p.var_names.(v) (expr p ix)

let action (p : Ast.program) (a : Ast.action) =
  let guard =
    match a.guard with Ast.True -> "" | g -> Printf.sprintf "when %s " (bexpr p g)
  in
  let effects =
    match a.effects with
    | [] -> ""
    | es ->
        String.concat "; "
          (List.map (fun (l, e) -> Printf.sprintf "%s := %s" (lhs p l) (expr p e)) es)
        ^ " "
  in
  Printf.sprintf "%s%sgoto %s" guard effects p.steps.(a.target).step_name

let step (p : Ast.program) pc =
  let s = p.steps.(pc) in
  let tag = match kind s.kind with "" -> "" | k -> Printf.sprintf " (%s)" k in
  let body =
    match s.actions with
    | [] -> "    <halt>"
    | actions ->
        String.concat "\n"
          (List.map (fun a -> "    " ^ action p a) actions)
  in
  Printf.sprintf "%s:%s\n%s" s.step_name tag body

let program (p : Ast.program) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "algorithm %s\n" p.title);
  for v = 0 to p.nvars - 1 do
    let size =
      if p.var_sizes.(v) = -1 then "[1..N]" else Printf.sprintf "[%d]" p.var_sizes.(v)
    in
    Buffer.add_string buf
      (Printf.sprintf "  shared %s%s init %d%s%s\n" p.var_names.(v) size
         p.init_shared.(v)
         (if p.bounded.(v) then " (register-bounded)" else "")
         (if p.per_process.(v) then " (single-writer)" else ""))
  done;
  for l = 0 to p.nlocals - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  local %s init %d\n" p.local_names.(l) p.init_locals.(l))
  done;
  Array.iteri
    (fun pc _ ->
      Buffer.add_string buf (step p pc);
      Buffer.add_char buf '\n')
    p.steps;
  Buffer.contents buf
