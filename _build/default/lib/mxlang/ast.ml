(* Abstract syntax for mxlang, the guarded-command algorithm language used
   throughout this repository to describe mutual-exclusion algorithms.

   The language mirrors PlusCal's execution model as interpreted by TLC:
   a program is a finite array of labeled steps; a step is a set of
   alternative guarded actions; executing an enabled action applies its
   simultaneous assignments and moves the process to the action's target
   label.  One action execution is atomic; processes interleave
   arbitrarily between actions. *)

(* Identifier of a shared variable.  Every shared variable is an integer
   array; scalars are arrays of length 1. *)
type var = int

(* Identifier of a per-process local variable. *)
type local = int

type cmp = Clt | Cle | Ceq | Cne | Cgt | Cge

(* Quantification ranges, relative to the executing process. *)
type range =
  | Rall (* q in 0 .. N-1 *)
  | Rothers (* q <> self *)
  | Rbelow (* q < self *)
  | Rabove (* q > self *)

(* Integer expressions, evaluated against (shared memory, process locals,
   process id, process count, register bound). *)
type expr =
  | Int of int
  | N (* number of processes *)
  | M (* register capacity bound *)
  | Pid (* identity of the executing process *)
  | Qidx (* index bound by the innermost quantifier *)
  | Local of local
  | Rd of var * expr (* shared read: var[index] *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Mod of expr * expr
  | Max_arr of var (* maximum element of a shared array *)
  | Ite of bexpr * expr * expr

(* Boolean expressions. *)
and bexpr =
  | True
  | False
  | Not of bexpr
  | And of bexpr * bexpr
  | Or of bexpr * bexpr
  | Cmp of cmp * expr * expr
  | Lex_lt of (expr * expr) * (expr * expr)
      (* [Lex_lt ((a, b), (c, d))] is Lamport's ticket order:
         (a, b) < (c, d)  iff  a < c or (a = c and b < d). *)
  | Qexists of range * bexpr
      (* [Qexists (r, p)]: some q in range r satisfies p, where p refers
         to q through [Qidx] (e.g. [Rd (number, Qidx)]). *)
  | Qall of range * bexpr

(* Assignment targets. *)
type lhs =
  | Sh of var * expr (* shared write: var[index] := ... *)
  | Lo of local

(* A guarded action: if [guard] holds, apply all [effects] simultaneously
   (right-hand sides and indices are evaluated in the pre-state) and move
   to label [target]. *)
type action = { guard : bexpr; effects : (lhs * expr) list; target : int }

(* Classification of a step, used by invariants (mutual exclusion is
   "at most one process at a [Critical] step") and by the metrics layer
   (doorway-completion order for first-come-first-served analysis). *)
type kind =
  | Noncritical
  | Entry (* overflow gate / start of the trying protocol *)
  | Doorway (* ticket-choosing section *)
  | Waiting (* scanning loop *)
  | Critical
  | Exit
  | Plain

type step = { step_name : string; kind : kind; actions : action list }

(* A complete algorithm for a parametric number of processes.

   [var_sizes.(v)] gives the length of shared array [v]; [per_process.(v)]
   states that the array has one element per process and element [i] is
   written only by process [i] (the paper's single-writer discipline,
   needed by the crash model); [bounded.(v)] marks arrays whose elements
   live in real registers and are subject to the no-overflow invariant
   (values must stay <= M). *)
type program = {
  title : string;
  nvars : int;
  var_names : string array;
  var_sizes : int array; (* -1 means "one cell per process" *)
  per_process : bool array;
  bounded : bool array;
  nlocals : int;
  local_names : string array;
  steps : step array;
  init_shared : int array; (* initial value for every cell of each var *)
  init_locals : int array;
  init_pc : int;
}

(* Size in cells of variable [v] when the program runs with [nprocs]
   processes. *)
let cells_of ~nprocs (p : program) v =
  let s = p.var_sizes.(v) in
  if s = -1 then nprocs else s

(* Variable id by name; raises [Not_found]. *)
let var_by_name (p : program) name =
  let found = ref (-1) in
  Array.iteri (fun v n -> if n = name then found := v) p.var_names;
  if !found < 0 then raise Not_found;
  !found

(* Step index by label name; raises [Not_found]. *)
let pc_by_name (p : program) name =
  let found = ref (-1) in
  Array.iteri (fun pc (s : step) -> if s.step_name = name then found := pc) p.steps;
  if !found < 0 then raise Not_found;
  !found

let string_of_cmp = function
  | Clt -> "<"
  | Cle -> "<="
  | Ceq -> "="
  | Cne -> "/="
  | Cgt -> ">"
  | Cge -> ">="

let compare_with c a b =
  match c with
  | Clt -> a < b
  | Cle -> a <= b
  | Ceq -> a = b
  | Cne -> a <> b
  | Cgt -> a > b
  | Cge -> a >= b

(* Convenience constructors for the common "quantify a comparison over
   the cells of one array" shape, e.g. the paper's
   "exists q: number[q] >= M". *)
let exists_cell ?(range = Rall) v c e = Qexists (range, Cmp (c, Rd (v, Qidx), e))
let forall_cell ?(range = Rall) v c e = Qall (range, Cmp (c, Rd (v, Qidx), e))
