(** Export of an mxlang program to a TLA+ module.

    The paper specified Bakery++ in PlusCal and checked it with TLC; this
    exporter closes the loop the other way: any algorithm modeled in this
    repository can be emitted as a plain-TLA+ specification (explicit
    [Init]/[Next] relation, [Mutex] and [NoOverflow] invariants) that TLC
    can check directly, should a TLA+ toolbox be available. *)

val module_name : Ast.program -> string
(** Sanitized name usable as a TLA+ module identifier. *)

val export : Ast.program -> string
(** The full module text.  The module declares constants [NProc] and
    [MaxReg] (the paper's N and M), one variable per shared array, a [pc]
    function and one function per local variable. *)
