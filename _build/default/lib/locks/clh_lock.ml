(* A node is one atomic flag: 1 = its owner holds or wants the lock. *)
type node = int Atomic.t

type t = {
  tail : node Atomic.t;
  mine : node array; (* node currently used by process i *)
  pred : node array; (* predecessor node process i spins on *)
}

let name = "clh"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Clh_lock.create: nprocs must be >= 1";
  let sentinel = Atomic.make 0 in
  {
    tail = Atomic.make sentinel;
    mine = Array.init nprocs (fun _ -> Atomic.make 0);
    pred = Array.init nprocs (fun _ -> sentinel);
  }

let acquire t i =
  let my = t.mine.(i) in
  Atomic.set my 1;
  let pred = Atomic.exchange t.tail my in
  t.pred.(i) <- pred;
  while Atomic.get pred = 1 do
    Registers.Spin.relax ()
  done

let release t i =
  Atomic.set t.mine.(i) 0;
  (* Recycle the predecessor's node as our next request node — the
     standard CLH trick that keeps allocation zero. *)
  t.mine.(i) <- t.pred.(i)

let space_words t = 1 + Array.length t.mine

let stats _ = []
