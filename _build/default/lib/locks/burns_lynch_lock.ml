module A = Registers.Atomic_array

type t = { nprocs : int; flag : A.t }

let name = "burns_lynch"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Burns_lynch_lock.create: nprocs must be >= 1";
  { nprocs; flag = A.create nprocs 0 }

let lower_raised t i =
  let rec scan j = j < i && (A.get t.flag j = 1 || scan (j + 1)) in
  scan 0

let acquire t i =
  let rec attempt () =
    A.set t.flag i 0;
    if lower_raised t i then begin
      Registers.Spin.relax ();
      attempt ()
    end
    else begin
      A.set t.flag i 1;
      if lower_raised t i then begin
        Registers.Spin.relax ();
        attempt ()
      end
      else
        for j = i + 1 to t.nprocs - 1 do
          while A.get t.flag j = 1 do
            Registers.Spin.relax ()
          done
        done
    end
  in
  attempt ()

let release t i = A.set t.flag i 0

let space_words t = A.words t.flag

let stats _ = []
