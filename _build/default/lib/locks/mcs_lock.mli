(** MCS queue lock: explicit linked list of waiters, each spinning on its
    own node's flag; the classic NUMA-friendly lock.  FIFO, RMW-based. *)

include Lock_intf.LOCK
