type t = {
  next : int Atomic.t;
  serving : int Atomic.t;
  modulus : int option;
  peak : int Atomic.t;
}

let name = "ticket"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Ticket_lock.create: nprocs must be >= 1";
  { next = Atomic.make 0; serving = Atomic.make 0; modulus = None; peak = Atomic.make 0 }

let create_mod ~nprocs ~bound =
  if nprocs < 1 then invalid_arg "Ticket_lock.create_mod: nprocs must be >= 1";
  if bound < nprocs then
    invalid_arg
      "Ticket_lock.create_mod: modular tickets need bound >= nprocs (paper §8.1)";
  {
    next = Atomic.make 0;
    serving = Atomic.make 0;
    modulus = Some bound;
    peak = Atomic.make 0;
  }

let rec bump_peak t v =
  let current = Atomic.get t.peak in
  if v > current && not (Atomic.compare_and_set t.peak current v) then
    bump_peak t v

(* Modular grab: an atomic compare-and-set loop so the counter always
   holds a value < modulus (fetch-and-add would transiently overshoot —
   i.e. overflow the register, which is what we are avoiding). *)
let rec take_mod cell modulus =
  let v = Atomic.get cell in
  if Atomic.compare_and_set cell v ((v + 1) mod modulus) then v
  else begin
    Registers.Spin.relax ();
    take_mod cell modulus
  end

let acquire t i =
  ignore i;
  let my =
    match t.modulus with
    | None -> Atomic.fetch_and_add t.next 1
    | Some modulus -> take_mod t.next modulus
  in
  bump_peak t my;
  while Atomic.get t.serving <> my do
    Registers.Spin.relax ()
  done

let release t i =
  ignore i;
  let v = Atomic.get t.serving + 1 in
  let v = match t.modulus with None -> v | Some modulus -> v mod modulus in
  Atomic.set t.serving v

let space_words _ = 2

let peak_ticket t = Atomic.get t.peak

let stats t = [ ("peak_ticket", peak_ticket t) ]
