module A = Registers.Atomic_array

(* pid + 1 is stored in x and y so 0 means "empty". *)
type t = {
  nprocs : int;
  b : A.t;
  x : int Atomic.t;
  y : int Atomic.t;
  slow : int Atomic.t;
}

let name = "fast_mutex"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Fast_mutex_lock.create: nprocs must be >= 1";
  {
    nprocs;
    b = A.create nprocs 0;
    x = Atomic.make 0;
    y = Atomic.make 0;
    slow = Atomic.make 0;
  }

let acquire t i =
  let me = i + 1 in
  let rec start () =
    A.set t.b i 1;
    Atomic.set t.x me;
    if Atomic.get t.y <> 0 then begin
      A.set t.b i 0;
      while Atomic.get t.y <> 0 do
        Registers.Spin.relax ()
      done;
      start ()
    end
    else begin
      Atomic.set t.y me;
      if Atomic.get t.x <> me then begin
        (* Contention: take the slow path. *)
        Atomic.incr t.slow;
        A.set t.b i 0;
        for j = 0 to t.nprocs - 1 do
          while A.get t.b j <> 0 do
            Registers.Spin.relax ()
          done
        done;
        if Atomic.get t.y <> me then begin
          while Atomic.get t.y <> 0 do
            Registers.Spin.relax ()
          done;
          start ()
        end
      end
    end
  in
  start ()

let release t i =
  Atomic.set t.y 0;
  A.set t.b i 0

let space_words t = A.words t.b + 2

let slow_paths t = Atomic.get t.slow

let stats t = [ ("slow_paths", slow_paths t) ]
