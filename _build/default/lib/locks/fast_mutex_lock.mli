(** Lamport's fast mutex as a runtime lock: O(1) uncontended path
    (two writes, two reads), O(N) slow path, no FCFS. *)

include Lock_intf.LOCK

val slow_paths : t -> int
(** Acquisitions that had to take the O(N) slow path. *)
