module A = Registers.Atomic_array

type t = { nprocs : int; flag : A.t }

let name = "szymanski"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Szymanski_lock.create: nprocs must be >= 1";
  { nprocs; flag = A.create nprocs 0 }

let spin_until cond =
  while not (cond ()) do
    Registers.Spin.relax ()
  done

let acquire t i =
  A.set t.flag i 1;
  spin_until (fun () ->
      let rec ok j = j >= t.nprocs || (A.get t.flag j < 3 && ok (j + 1)) in
      ok 0);
  A.set t.flag i 3;
  let intent_waiting =
    let rec scan j =
      j < t.nprocs && ((j <> i && A.get t.flag j = 1) || scan (j + 1))
    in
    scan 0
  in
  if intent_waiting then begin
    A.set t.flag i 2;
    spin_until (fun () ->
        let rec scan j = j < t.nprocs && (A.get t.flag j = 4 || scan (j + 1)) in
        scan 0)
  end;
  A.set t.flag i 4;
  spin_until (fun () ->
      let rec ok j = j >= i || (A.get t.flag j < 2 && ok (j + 1)) in
      ok 0)

let release t i =
  spin_until (fun () ->
      let rec ok j =
        j >= t.nprocs
        ||
        let f = A.get t.flag j in
        (f < 2 || f > 3) && ok (j + 1)
      in
      ok (i + 1));
  A.set t.flag i 0

let space_words t = A.words t.flag

let stats _ = []
