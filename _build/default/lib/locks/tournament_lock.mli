(** Tournament lock: a balanced binary tree of two-process Peterson locks.
    Each process climbs from its leaf to the root, playing Peterson at
    every internal node; O(log N) entry steps, O(N) space. *)

include Lock_intf.LOCK
