module A = Registers.Atomic_array

let idle = 0
let requesting = 1
let active = 2

type t = { nprocs : int; control : A.t; k : int Atomic.t }

let name = "knuth"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Knuth_lock.create: nprocs must be >= 1";
  { nprocs; control = A.create nprocs idle; k = Atomic.make 0 }

let acquire t i =
  let n = t.nprocs in
  let rec attempt () =
    A.set t.control i requesting;
    (* Walk from k downward (cyclically) to self, deferring to busy
       processes. *)
    let rec walk j =
      if j <> i then
        if A.get t.control j <> idle then begin
          Registers.Spin.relax ();
          walk (Atomic.get t.k)
        end
        else walk ((j + n - 1) mod n)
    in
    walk (Atomic.get t.k);
    A.set t.control i active;
    let rec someone_else_active j =
      j < n && ((j <> i && A.get t.control j = active) || someone_else_active (j + 1))
    in
    if someone_else_active 0 then begin
      Registers.Spin.relax ();
      attempt ()
    end
    else Atomic.set t.k i
  in
  attempt ()

let release t i =
  Atomic.set t.k ((i + t.nprocs - 1) mod t.nprocs);
  A.set t.control i idle

let space_words t = A.words t.control + 1

let stats _ = []
