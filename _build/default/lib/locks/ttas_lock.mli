(** Test-and-test-and-set lock with exponential backoff: spins on a plain
    read and only attempts the atomic exchange when the lock looks free. *)

include Lock_intf.LOCK
