lib/locks/bakery_bounded_lock.ml: Array Registers
