lib/locks/clh_lock.ml: Array Atomic Registers
