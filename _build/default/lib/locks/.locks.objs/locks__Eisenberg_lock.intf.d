lib/locks/eisenberg_lock.mli: Lock_intf
