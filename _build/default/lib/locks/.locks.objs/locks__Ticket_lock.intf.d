lib/locks/ticket_lock.mli: Lock_intf
