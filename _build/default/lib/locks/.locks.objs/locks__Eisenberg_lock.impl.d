lib/locks/eisenberg_lock.ml: Atomic Registers
