lib/locks/bakery_lock.mli: Lock_intf
