lib/locks/bakery_lock.ml: Atomic Registers
