lib/locks/mcs_lock.mli: Lock_intf
