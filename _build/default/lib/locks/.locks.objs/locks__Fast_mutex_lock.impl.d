lib/locks/fast_mutex_lock.ml: Atomic Registers
