lib/locks/knuth_lock.mli: Lock_intf
