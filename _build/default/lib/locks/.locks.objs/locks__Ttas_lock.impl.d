lib/locks/ttas_lock.ml: Atomic Registers
