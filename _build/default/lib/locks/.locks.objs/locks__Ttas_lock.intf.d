lib/locks/ttas_lock.mli: Lock_intf
