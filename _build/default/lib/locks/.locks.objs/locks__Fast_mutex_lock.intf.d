lib/locks/fast_mutex_lock.mli: Lock_intf
