lib/locks/tournament_lock.ml: Array Atomic List Registers
