lib/locks/filter_lock_rt.ml: Registers
