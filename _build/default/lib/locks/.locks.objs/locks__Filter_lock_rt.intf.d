lib/locks/filter_lock_rt.mli: Lock_intf
