lib/locks/tournament_lock.mli: Lock_intf
