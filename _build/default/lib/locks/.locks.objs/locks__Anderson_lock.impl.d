lib/locks/anderson_lock.ml: Array Atomic Registers
