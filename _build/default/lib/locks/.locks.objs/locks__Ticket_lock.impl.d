lib/locks/ticket_lock.ml: Atomic Registers
