lib/locks/knuth_lock.ml: Atomic Registers
