lib/locks/szymanski_lock.mli: Lock_intf
