lib/locks/burns_lynch_lock.mli: Lock_intf
