lib/locks/tas_lock.ml: Atomic Registers
