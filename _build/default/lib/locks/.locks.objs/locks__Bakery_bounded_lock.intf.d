lib/locks/bakery_bounded_lock.mli: Lock_intf Registers
