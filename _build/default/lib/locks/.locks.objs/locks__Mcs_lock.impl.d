lib/locks/mcs_lock.ml: Array Atomic Registers
