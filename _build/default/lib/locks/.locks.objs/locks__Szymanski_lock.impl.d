lib/locks/szymanski_lock.ml: Registers
