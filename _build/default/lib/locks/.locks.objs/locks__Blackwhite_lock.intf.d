lib/locks/blackwhite_lock.mli: Lock_intf
