lib/locks/burns_lynch_lock.ml: Registers
