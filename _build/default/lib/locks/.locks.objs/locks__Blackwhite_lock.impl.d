lib/locks/blackwhite_lock.ml: Atomic Registers
