(** Classic fetch-and-add ticket lock (practical baseline, needs atomic
    read-modify-write).  The default variant uses unbounded counters;
    {!create_mod} wraps both counters modulo the register bound, which is
    sound while at most M processes hold tickets. *)

include Lock_intf.LOCK

val create_mod : nprocs:int -> bound:int -> t
(** Modular variant ("ticket_mod"). *)

val peak_ticket : t -> int
