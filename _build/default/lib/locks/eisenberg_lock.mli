(** Eisenberg–McGuire as a runtime lock: bounded trivalent flags plus a
    shared turn, starvation-free. *)

include Lock_intf.LOCK
