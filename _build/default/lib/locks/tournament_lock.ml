(* One internal node = one two-process Peterson lock.  A process entering
   from child [side] (0 or 1) plays role [side]. *)
type node = { flag0 : int Atomic.t; flag1 : int Atomic.t; turn : int Atomic.t }

type t = {
  nprocs : int;
  nodes : node array; (* heap layout: children of k are 2k+1, 2k+2 *)
  paths : (int * int) array array; (* per process: (node, side), leaf to root *)
}

let name = "tournament"

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Tournament_lock.create: nprocs must be >= 1";
  let leaves = next_pow2 (max 2 nprocs) in
  let nnodes = leaves - 1 in
  let nodes =
    Array.init nnodes (fun _ ->
        { flag0 = Atomic.make 0; flag1 = Atomic.make 0; turn = Atomic.make 0 })
  in
  let path_of pid =
    let rec climb idx acc =
      if idx = 0 then acc
      else
        let parent = (idx - 1) / 2 in
        let side = idx - 1 - (2 * parent) in
        climb parent ((parent, side) :: acc)
    in
    (* leaf-to-root order = reverse of the accumulated root-to-leaf list *)
    Array.of_list (List.rev (climb (nnodes + pid) []))
  in
  { nprocs; nodes; paths = Array.init nprocs path_of }

let flag node side = if side = 0 then node.flag0 else node.flag1

let node_acquire node side =
  Atomic.set (flag node side) 1;
  Atomic.set node.turn (1 - side);
  while
    Atomic.get (flag node (1 - side)) = 1 && Atomic.get node.turn = 1 - side
  do
    Registers.Spin.relax ()
  done

let node_release node side = Atomic.set (flag node side) 0

let acquire t i =
  let path = t.paths.(i) in
  for k = 0 to Array.length path - 1 do
    let node, side = path.(k) in
    node_acquire t.nodes.(node) side
  done

let release t i =
  let path = t.paths.(i) in
  for k = Array.length path - 1 downto 0 do
    let node, side = path.(k) in
    node_release t.nodes.(node) side
  done

let space_words t = 3 * Array.length t.nodes

let stats _ = []
