(** Burns–Lynch one-bit lock (runtime): one single-writer bit per
    process, deadlock-free, strongly biased toward low ids. *)

include Lock_intf.LOCK
