(* Common interface of the runtime (OCaml 5 domains) locks.

   Every lock is created for a fixed set of [nprocs] participants, each
   identified by an id in 0 .. nprocs-1 (the paper's process number i);
   [acquire]/[release] must be called with the caller's own id.  [bound]
   is the register capacity M; algorithms with inherently bounded
   registers ignore it. *)

module type LOCK = sig
  type t

  val name : string

  val create : nprocs:int -> bound:int -> t

  val acquire : t -> int -> unit
  val release : t -> int -> unit

  val space_words : t -> int
  (* Number of shared register words the algorithm uses. *)

  val stats : t -> (string * int) list
  (* Cumulative instrumentation counters (resets, gate spins, overflow
     events, peak ticket, ...); an empty list if uninstrumented. *)
end

(* First-class instance, used by the experiment harness to treat the zoo
   uniformly. *)
type instance = {
  instance_name : string;
  acquire : int -> unit;
  release : int -> unit;
  space_words : int;
  stats : unit -> (string * int) list;
}

type family = {
  family_name : string;
  needs_bound : bool;
  (* true if the bound materially changes behaviour (bakery variants) *)
  two_process_only : bool;
  make : nprocs:int -> bound:int -> instance;
}

let instance_of (type a) (module L : LOCK with type t = a) (lock : a) =
  {
    instance_name = L.name;
    acquire = L.acquire lock;
    release = L.release lock;
    space_words = L.space_words lock;
    stats = (fun () -> L.stats lock);
  }

let family_of (module L : LOCK) ?(needs_bound = false) ?(two_process_only = false)
    () =
  {
    family_name = L.name;
    needs_bound;
    two_process_only;
    make =
      (fun ~nprocs ~bound ->
        instance_of (module L) (L.create ~nprocs ~bound));
  }
