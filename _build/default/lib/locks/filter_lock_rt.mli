(** Peterson's filter lock for N processes (runtime). *)

include Lock_intf.LOCK
