(** Anderson's array-based queue lock: fetch-and-add grabs a slot, each
    waiter spins on its own flag cell — the standard fix for TAS/ticket
    cache-line storms.  RMW-based baseline (not a "true" solution in the
    paper's sense), FIFO by construction. *)

include Lock_intf.LOCK
