(** Original Bakery over M-bounded registers — the paper's §3 failure
    case made executable.

    Each ticket store goes through {!Registers.Bounded}, so the first
    store of a value exceeding M either raises
    [Registers.Bounded.Overflow] (policy [Trap], used by the
    time-to-overflow experiment E4) or silently wraps (policy [Wrap],
    which eventually breaks mutual exclusion, as the paper warns). *)

include Lock_intf.LOCK

val create_with : policy:Registers.Bounded.policy -> nprocs:int -> bound:int -> t
val overflows : t -> int

val crash_reset : t -> int -> unit
(** The paper's failure model (§1.2 cond. 4): process [i] resets its own
    shared cells to 0.  Call after catching [Registers.Bounded.Overflow]
    so other processes do not wait forever on the crashed one. *)
