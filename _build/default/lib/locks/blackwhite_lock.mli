(** Taubenfeld's Black-White Bakery as a runtime lock: bounded tickets
    (at most N) with one extra shared color bit written by every process.
    The related-work approach-2 comparator for Bakery++. *)

include Lock_intf.LOCK

val peak_ticket : t -> int
