module A = Registers.Atomic_array

type t = { nprocs : int; level : A.t; victim : A.t }

let name = "filter"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Filter_lock_rt.create: nprocs must be >= 1";
  { nprocs; level = A.create nprocs 0; victim = A.create nprocs 0 }

let acquire t i =
  for l = 1 to t.nprocs - 1 do
    A.set t.level i l;
    A.set t.victim l i;
    let rec wait () =
      if A.get t.victim l = i then begin
        let someone_above = ref false in
        for k = 0 to t.nprocs - 1 do
          if k <> i && A.get t.level k >= l then someone_above := true
        done;
        if !someone_above then begin
          Registers.Spin.relax ();
          wait ()
        end
      end
    in
    wait ()
  done

let release t i = A.set t.level i 0

let space_words t = A.words t.level + A.words t.victim

let stats _ = []
