(* Nodes are indexed by process id; [tail] and [next] hold indices with
   -1 meaning "none", so every compare-and-set is on immediate ints
   (OCaml's [Atomic.compare_and_set] is physical equality, which is only
   dependable for immediates). *)

type node = { locked : int Atomic.t; next : int Atomic.t }

type t = { tail : int Atomic.t; nodes : node array }

let name = "mcs"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Mcs_lock.create: nprocs must be >= 1";
  {
    tail = Atomic.make (-1);
    nodes = Array.init nprocs (fun _ -> { locked = Atomic.make 0; next = Atomic.make (-1) });
  }

let acquire t i =
  let my = t.nodes.(i) in
  Atomic.set my.locked 1;
  Atomic.set my.next (-1);
  let pred = Atomic.exchange t.tail i in
  if pred >= 0 then begin
    Atomic.set t.nodes.(pred).next i;
    while Atomic.get my.locked = 1 do
      Registers.Spin.relax ()
    done
  end

let release t i =
  let my = t.nodes.(i) in
  if Atomic.get my.next < 0 then begin
    (* No known successor: try to swing the tail back to empty; if a
       newcomer raced us, wait for it to link itself, then hand off. *)
    if not (Atomic.compare_and_set t.tail i (-1)) then begin
      while Atomic.get my.next < 0 do
        Registers.Spin.relax ()
      done;
      Atomic.set t.nodes.(Atomic.get my.next).locked 0
    end
  end
  else Atomic.set t.nodes.(Atomic.get my.next).locked 0

let space_words t = 1 + (2 * Array.length t.nodes)

let stats _ = []
