module A = Registers.Atomic_array

let idle = 0
let waiting = 1
let active = 2

type t = { nprocs : int; flag : A.t; turn : int Atomic.t }

let name = "eisenberg_mcguire"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Eisenberg_lock.create: nprocs must be >= 1";
  { nprocs; flag = A.create nprocs idle; turn = Atomic.make 0 }

let acquire t i =
  let n = t.nprocs in
  let rec attempt () =
    A.set t.flag i waiting;
    (* Walk from the turn to self, deferring to busy processes. *)
    let rec walk idx =
      if idx <> i then
        if A.get t.flag idx <> idle then begin
          Registers.Spin.relax ();
          walk (Atomic.get t.turn)
        end
        else walk ((idx + 1) mod n)
    in
    walk (Atomic.get t.turn);
    A.set t.flag i active;
    (* Are we the only active process? *)
    let rec solo idx =
      idx >= n || ((idx = i || A.get t.flag idx <> active) && solo (idx + 1))
    in
    if
      solo 0
      && (Atomic.get t.turn = i || A.get t.flag (Atomic.get t.turn) = idle)
    then Atomic.set t.turn i
    else begin
      Registers.Spin.relax ();
      attempt ()
    end
  in
  attempt ()

let release t i =
  let n = t.nprocs in
  (* Pass the turn to the next non-idle process (self if none). *)
  let rec scan idx = if A.get t.flag idx = idle then scan ((idx + 1) mod n) else idx in
  Atomic.set t.turn (scan ((Atomic.get t.turn + 1) mod n));
  A.set t.flag i idle

let space_words t = A.words t.flag + 1

let stats _ = []
