type t = { lock : int Atomic.t }

let name = "tas"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Tas_lock.create: nprocs must be >= 1";
  { lock = Atomic.make 0 }

let acquire t i =
  ignore i;
  while Atomic.exchange t.lock 1 = 1 do
    Registers.Spin.relax ()
  done

let release t i =
  ignore i;
  Atomic.set t.lock 0

let space_words _ = 1

let stats _ = []
