(** Knuth's 1966 algorithm (the paper's reference [5]) as a runtime
    lock: trivalent control flags plus a shared turn, starvation-free
    with a round-robin overtaking bound. *)

include Lock_intf.LOCK
