(** CLH queue lock: an implicit linked list of waiters, each spinning on
    its predecessor's flag.  O(1) shared-word footprint plus one node per
    process (recycled), FIFO, RMW-based. *)

include Lock_intf.LOCK
