(** Szymanski's flag-based algorithm (runtime): 3-bit registers, FCFS,
    but with the multi-stage doorway protocol the paper calls "much more
    complicated than Bakery++". *)

include Lock_intf.LOCK
