module A = Registers.Atomic_array

type t = {
  nprocs : int;
  choosing : A.t;
  number : A.t;
  peak : int Atomic.t;
}

let name = "bakery"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Bakery_lock.create: nprocs must be >= 1";
  {
    nprocs;
    choosing = A.create nprocs 0;
    number = A.create nprocs 0;
    peak = Atomic.make 0;
  }

let rec bump_peak t v =
  let current = Atomic.get t.peak in
  if v > current && not (Atomic.compare_and_set t.peak current v) then
    bump_peak t v

(* Ticket order: (a, i) before (b, j) iff a < b or (a = b and i < j). *)
let before a i b j = a < b || (a = b && i < j)

let acquire t i =
  A.set t.choosing i 1;
  let ticket = 1 + A.max_of t.number in
  A.set t.number i ticket;
  A.set t.choosing i 0;
  bump_peak t ticket;
  for j = 0 to t.nprocs - 1 do
    while A.get t.choosing j <> 0 do
      Registers.Spin.relax ()
    done;
    let rec wait () =
      let nj = A.get t.number j in
      if nj <> 0 && before nj j ticket i then begin
        Registers.Spin.relax ();
        wait ()
      end
    in
    wait ()
  done

let release t i = A.set t.number i 0

let space_words t = A.words t.choosing + A.words t.number

let peak_ticket t = Atomic.get t.peak

let stats t = [ ("peak_ticket", peak_ticket t) ]
