(** Lamport's original Bakery as a real lock over sequentially consistent
    registers (OCaml atomics).

    Tickets are plain OCaml ints: on a 64-bit machine they take years to
    overflow, which is precisely the paper's point about why the problem
    hides in practice — see {!Bakery_bounded_lock} for the lock over
    M-bounded registers that makes the overflow observable in seconds. *)

include Lock_intf.LOCK

val peak_ticket : t -> int
(** Largest ticket value ever taken. *)
