module A = Registers.Atomic_array

type t = {
  nprocs : int;
  flags : A.t; (* flags.(s) = 1 means slot s may enter *)
  tail : int Atomic.t;
  my_slot : int array; (* strided, one writer each *)
}

let stride = 8

let name = "anderson"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Anderson_lock.create: nprocs must be >= 1";
  let flags = A.create nprocs 0 in
  A.set flags 0 1;
  { nprocs; flags; tail = Atomic.make 0; my_slot = Array.make (nprocs * stride) 0 }

let acquire t i =
  let slot = Atomic.fetch_and_add t.tail 1 mod t.nprocs in
  t.my_slot.(i * stride) <- slot;
  while A.get t.flags slot = 0 do
    Registers.Spin.relax ()
  done

let release t i =
  let slot = t.my_slot.(i * stride) in
  A.set t.flags slot 0;
  A.set t.flags ((slot + 1) mod t.nprocs) 1

let space_words t = A.words t.flags + 1

let stats _ = []
