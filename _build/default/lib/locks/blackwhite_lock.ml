module A = Registers.Atomic_array

type t = {
  nprocs : int;
  color : int Atomic.t;
  choosing : A.t;
  mycolor : A.t;
  number : A.t;
  peak : int Atomic.t;
}

let name = "black_white_bakery"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Blackwhite_lock.create: nprocs must be >= 1";
  {
    nprocs;
    color = Atomic.make 0;
    choosing = A.create nprocs 0;
    mycolor = A.create nprocs 0;
    number = A.create nprocs 0;
    peak = Atomic.make 0;
  }

let rec bump_peak t v =
  let current = Atomic.get t.peak in
  if v > current && not (Atomic.compare_and_set t.peak current v) then
    bump_peak t v

let before a i b j = a < b || (a = b && i < j)

let acquire t i =
  A.set t.choosing i 1;
  let mc = Atomic.get t.color in
  A.set t.mycolor i mc;
  (* maximum over same-colored tickets only *)
  let mx = ref 0 in
  for j = 0 to t.nprocs - 1 do
    if A.get t.mycolor j = mc then begin
      let nj = A.get t.number j in
      if nj > !mx then mx := nj
    end
  done;
  let ticket = !mx + 1 in
  A.set t.number i ticket;
  A.set t.choosing i 0;
  bump_peak t ticket;
  for j = 0 to t.nprocs - 1 do
    if j <> i then begin
      while A.get t.choosing j <> 0 do
        Registers.Spin.relax ()
      done;
      let rec wait () =
        let nj = A.get t.number j in
        if nj <> 0 then begin
          let cj = A.get t.mycolor j in
          let pass =
            if cj = mc then not (before nj j ticket i)
            else Atomic.get t.color <> mc
          in
          if not pass then begin
            Registers.Spin.relax ();
            wait ()
          end
        end
      in
      wait ()
    end
  done

let release t i =
  (* Flip the shared color away from my color, then retire the ticket —
     Taubenfeld's exit order. *)
  Atomic.set t.color (1 - A.get t.mycolor i);
  A.set t.number i 0

let space_words t =
  1 + A.words t.choosing + A.words t.mycolor + A.words t.number

let peak_ticket t = Atomic.get t.peak

let stats t = [ ("peak_ticket", peak_ticket t) ]
