module R = Registers.Bounded

type t = { nprocs : int; choosing : R.t array; number : R.t array }

let name = "bakery_bounded"

let create_with ~policy ~nprocs ~bound =
  if nprocs < 1 then invalid_arg "Bakery_bounded_lock: nprocs must be >= 1";
  {
    nprocs;
    choosing = R.array ~policy ~bound nprocs 0;
    number = R.array ~policy ~bound nprocs 0;
  }

let create ~nprocs ~bound = create_with ~policy:R.Trap ~nprocs ~bound

let before a i b j = a < b || (a = b && i < j)

let acquire t i =
  R.set t.choosing.(i) 1;
  let ticket = 1 + R.max_of t.number in
  (* This is the store the paper's §6.1 proof step 2 identifies as the
     only possible overflow site. *)
  R.set t.number.(i) ticket;
  R.set t.choosing.(i) 0;
  let my = R.get t.number.(i) in
  (* under Wrap the stored ticket may differ from [ticket] *)
  for j = 0 to t.nprocs - 1 do
    while R.get t.choosing.(j) <> 0 do
      Registers.Spin.relax ()
    done;
    let rec wait () =
      let nj = R.get t.number.(j) in
      if nj <> 0 && before nj j my i then begin
        Registers.Spin.relax ();
        wait ()
      end
    in
    wait ()
  done

let release t i = R.set t.number.(i) 0

let crash_reset t i =
  R.set t.number.(i) 0;
  R.set t.choosing.(i) 0

let space_words t = Array.length t.choosing + Array.length t.number

let overflows t =
  Array.fold_left (fun acc r -> acc + R.overflow_count r) 0 t.number
  + Array.fold_left (fun acc r -> acc + R.overflow_count r) 0 t.choosing

let stats t = [ ("overflows", overflows t) ]
