(** Test-and-set spin lock (atomic-exchange baseline). *)

include Lock_intf.LOCK
