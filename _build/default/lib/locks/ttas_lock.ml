type t = { lock : int Atomic.t }

let name = "ttas"

let create ~nprocs ~bound:_ =
  if nprocs < 1 then invalid_arg "Ttas_lock.create: nprocs must be >= 1";
  { lock = Atomic.make 0 }

let acquire t i =
  ignore i;
  let backoff = Registers.Backoff.create () in
  let rec attempt () =
    while Atomic.get t.lock = 1 do
      Registers.Spin.relax ()
    done;
    if Atomic.exchange t.lock 1 = 1 then begin
      Registers.Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

let release t i =
  ignore i;
  Atomic.set t.lock 0

let space_words _ = 1

let stats _ = []
