(** Refinement checking by stutter-closed trace inclusion.

    The paper argues (§6.2) that "every execution of Bakery++ is a valid
    execution of Bakery".  We make that checkable: given an implementation
    system, a specification system, and an observation function mapping
    states of either into a common finite observation space, verify that
    every stutter-reduced observable trace of the implementation is also a
    stutter-reduced observable trace of the specification.

    The algorithm is the classical subset-construction simulation: explore
    pairs (implementation state, set of specification states compatible
    with the observation history).  If the specification set ever becomes
    empty, the implementation produced an observable step the spec cannot
    match, and the offending implementation trace is reported. *)

type obs = int array
(** An observation: any int-array fingerprint of a state (e.g. the vector
    of per-process protocol phases). *)

type failure = {
  impl_trace : Trace.t;  (** implementation run that the spec cannot match *)
  bad_obs : obs;  (** first unmatched observation *)
}

type result = {
  included : bool;
  failure : failure option;
  complete : bool;  (** false if [max_pairs] stopped the search early *)
  impl_pairs : int;  (** (impl state, spec set) pairs explored *)
  spec_states : int;  (** distinct spec states reached during closure *)
}

val phase_obs : System.t -> State.packed -> obs
(** Canonical observation: each process's protocol phase —
    0 noncritical / 1 trying (entry, doorway, waiting) / 2 critical /
    3 exit — derived from the step kinds.  This is the observation under
    which "Bakery++ refines Bakery" is stated. *)

val check :
  impl:System.t ->
  spec:System.t ->
  ?obs_impl:(System.t -> State.packed -> obs) ->
  ?obs_spec:(System.t -> State.packed -> obs) ->
  ?spec_constraint:(System.t -> State.packed -> bool) ->
  ?max_pairs:int ->
  unit ->
  result
(** Observation functions default to {!phase_obs}.  [spec_constraint]
    bounds the specification's closure (the unbounded Bakery needs a
    ticket cap; any implementation observation still has to be matched
    within the constrained spec space, so a too-tight constraint can only
    cause false negatives, never false positives). *)
