(** Starvation witness search — the paper's §6.3 scenario.

    The liveness concern for Bakery++ is a process parked at the overflow
    gate [L1] while faster processes repeatedly fill the ticket space up
    to M, reset, and race back up: the slow process can in theory wait
    forever.  That is a *lasso*: a reachable cycle in the state graph in
    which the victim process stays at its gate while other processes keep
    entering the critical section.

    This module finds such lassos exactly: it explores the reachable
    graph, restricts it to states where the victim sits at one of the
    given program counters with only non-victim moves, runs Tarjan's SCC
    algorithm on the restriction, and extracts a concrete cycle containing
    a critical-section entry by another process. *)

type witness = {
  prefix : Trace.t;  (** path from the initial state to the cycle *)
  cycle : Trace.t;  (** the cycle; last entry's state equals the first's predecessor loop point *)
  victim_continuously_enabled : bool;
      (** if false, the victim is disabled somewhere on the cycle, so the
          starvation is consistent even with weak fairness — the
          theoretically-possible scenario the paper describes *)
  cs_entries_in_cycle : int;  (** critical-section entries by other processes *)
}

type result = { witness : witness option; stats : Explore.stats }

val find :
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  ?require_victim_disabled:bool ->
  victim:int ->
  stuck_at:(Mxlang.Ast.program -> int -> bool) ->
  System.t ->
  result
(** [find ~victim ~stuck_at sys] searches for a cycle of non-[victim]
    moves through states where [stuck_at program pc_of_victim] holds and
    some other process enters its critical section on the cycle.

    With [require_victim_disabled] (default [false]), only cycles through
    at least one state where the victim has no enabled action are
    accepted.  Such a cycle starves the victim without ever violating
    weak fairness — the paper's "extremely slow process" scenario in its
    strongest form. *)

val stuck_at_kind : Mxlang.Ast.kind -> Mxlang.Ast.program -> int -> bool
(** Convenience predicate: the victim's step has the given kind. *)

val stuck_at_label : string -> Mxlang.Ast.program -> int -> bool
(** Convenience predicate: the victim's step has the given label name. *)
