type entry = { pid : int; step_name : string; state : State.packed }

type t = entry list

let length = List.length

let pp sys ppf (t : t) =
  let lay = System.layout sys in
  List.iteri
    (fun i e ->
      if e.pid < 0 then Format.fprintf ppf "State %d: <initial>@," (i + 1)
      else
        Format.fprintf ppf "State %d: process %d fired %s@," (i + 1) e.pid
          e.step_name;
      Format.fprintf ppf "  @[%a@]@," (State.pp lay) e.state)
    t

let pp_compact sys ppf (t : t) =
  ignore sys;
  List.iteri
    (fun i e ->
      if e.pid >= 0 then Format.fprintf ppf "%3d. p%d: %s@," i e.pid e.step_name)
    t
