(** TLC-style textual reports for checking runs. *)

val result : System.t -> Format.formatter -> Explore.result -> unit
(** e.g.
    {v
    Model checking bakery_pp (N=3, M=3)
    Invariants hold. 41231 states generated, 10233 distinct, depth 37, 0.12s.
    v}
    or, on violation, the invariant name and the full counterexample. *)

val result_string : System.t -> Explore.result -> string

val refinement : impl:System.t -> spec:System.t -> Format.formatter -> Refine.result -> unit
val refinement_string : impl:System.t -> spec:System.t -> Refine.result -> string

val lasso : System.t -> victim:int -> Format.formatter -> Lasso.result -> unit
val lasso_string : System.t -> victim:int -> Lasso.result -> string
