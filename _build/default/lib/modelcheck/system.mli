(** The transition system induced by an mxlang program: interleaving of
    atomic labeled steps, exactly TLC's view of a PlusCal algorithm. *)

type t

type move = {
  pid : int;
  from_pc : int;
  alt : int;  (** which alternative action of the step fired *)
  dest : State.packed;
}

val make : Mxlang.Ast.program -> nprocs:int -> bound:int -> t
(** Validates the program (see {!Mxlang.Validate.assert_valid}) and
    precomputes the state layout. *)

val layout : t -> State.layout
val program : t -> Mxlang.Ast.program
val nprocs : t -> int
val bound : t -> int

val initial : t -> State.packed

val successors : t -> State.packed -> move list
(** Every move of every process enabled in the given state, in
    deterministic (pid, alternative) order. *)

val successors_of_pid : t -> State.packed -> int -> move list
(** Moves of one process only (used by the starvation search, which
    freezes one process and lets the others run). *)

val enabled : t -> State.packed -> int -> bool
(** Does process [pid] have at least one enabled action? *)

val in_critical : t -> State.packed -> int -> bool
(** Is process [pid] at a [Critical]-kind step? *)

val kind_of_pc : t -> int -> Mxlang.Ast.kind
