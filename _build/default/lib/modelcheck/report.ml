let header sys =
  Printf.sprintf "Model checking %s (N=%d, M=%d)"
    (System.program sys).title (System.nprocs sys) (System.bound sys)

let pp_stats ppf (s : Explore.stats) =
  Format.fprintf ppf "%d states generated, %d distinct, depth %d, %.3fs"
    s.generated s.distinct s.depth s.runtime

let result sys ppf (r : Explore.result) =
  Format.fprintf ppf "@[<v>%s@," (header sys);
  (match r.outcome with
  | Explore.Pass -> Format.fprintf ppf "Invariants hold. %a@," pp_stats r.stats
  | Capacity ->
      Format.fprintf ppf
        "INCONCLUSIVE: state budget exhausted before the frontier emptied. %a@,"
        pp_stats r.stats
  | Deadlock { trace } ->
      Format.fprintf ppf "DEADLOCK reached. %a@," pp_stats r.stats;
      Format.fprintf ppf "%a" (Trace.pp sys) trace
  | Violation { invariant; trace } ->
      Format.fprintf ppf "VIOLATION of %s. %a@," invariant pp_stats r.stats;
      Format.fprintf ppf "%a" (Trace.pp sys) trace);
  Format.fprintf ppf "@]"

let to_string pp x =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  pp ppf x;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let result_string sys r = to_string (result sys) r

let refinement ~impl ~spec ppf (r : Refine.result) =
  Format.fprintf ppf "@[<v>Refinement check: %s refines %s (phase observation)@,"
    (System.program impl).title (System.program spec).title;
  if r.included then
    Format.fprintf ppf "%s: every implementation trace is a specification trace (%d pairs, %d spec states)@,"
      (if r.complete then "HOLDS" else "HOLDS UP TO BUDGET")
      r.impl_pairs r.spec_states
  else begin
    Format.fprintf ppf "FAILS: implementation trace with no matching specification run (%d pairs)@,"
      r.impl_pairs;
    match r.failure with
    | None -> ()
    | Some f ->
        Format.fprintf ppf "Unmatched observation: [%s]@,"
          (String.concat "; " (Array.to_list (Array.map string_of_int f.bad_obs)));
        Format.fprintf ppf "%a" (Trace.pp impl) f.impl_trace
  end;
  Format.fprintf ppf "@]"

let refinement_string ~impl ~spec r = to_string (refinement ~impl ~spec) r

let lasso sys ~victim ppf (r : Lasso.result) =
  Format.fprintf ppf "@[<v>Starvation lasso search in %s (N=%d, M=%d), victim = process %d@,"
    (System.program sys).title (System.nprocs sys) (System.bound sys) victim;
  Format.fprintf ppf "Explored: %a@," pp_stats r.stats;
  (match r.witness with
  | None -> Format.fprintf ppf "No starvation lasso: the victim cannot be parked forever.@,"
  | Some w ->
      Format.fprintf ppf
        "LASSO FOUND: victim parked while others entered the CS %d time(s) per cycle.@,"
        w.cs_entries_in_cycle;
      Format.fprintf ppf
        "Victim %s on the cycle (so the lasso is %s with weak fairness).@,"
        (if w.victim_continuously_enabled then "stays enabled"
         else "is intermittently disabled")
        (if w.victim_continuously_enabled then "inconsistent" else "consistent");
      Format.fprintf ppf "Prefix (%d states):@,%a@," (Trace.length w.prefix)
        (Trace.pp_compact sys) w.prefix;
      Format.fprintf ppf "Cycle (%d moves):@,%a" (Trace.length w.cycle)
        (Trace.pp_compact sys) w.cycle);
  Format.fprintf ppf "@]"

let lasso_string sys ~victim r = to_string (lasso sys ~victim) r
