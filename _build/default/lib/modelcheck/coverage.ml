type entry = {
  step_name : string;
  pc : int;
  kind : Mxlang.Ast.kind;
  fired : int;
}

type t = { entries : entry list; total_transitions : int }

let of_graph (g : Explore.graph) =
  let p = System.program g.sys in
  let counts = Array.make (Array.length p.steps) 0 in
  let total = ref 0 in
  (* Count every transition generated from a stored state (TLC's notion
     of action coverage), not just the BFS spanning-tree edges. *)
  Vec.iteri
    (fun _ s ->
      List.iter
        (fun (m : System.move) ->
          counts.(m.from_pc) <- counts.(m.from_pc) + 1;
          incr total)
        (System.successors g.sys s))
    g.states;
  let entries =
    List.init (Array.length p.steps) (fun pc ->
        {
          step_name = p.steps.(pc).step_name;
          pc;
          kind = p.steps.(pc).kind;
          fired = counts.(pc);
        })
  in
  { entries; total_transitions = !total }

let measure ?constraint_ ?max_states sys =
  let graph, _ = Explore.run_graph ?constraint_ ?max_states sys in
  of_graph graph

let uncovered t =
  List.filter_map
    (fun e -> if e.fired = 0 then Some e.step_name else None)
    t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-20s %-8s %8d%s@," e.step_name
        (Mxlang.Pretty.kind e.kind) e.fired
        (if e.fired = 0 then "   <- never fired" else ""))
    t.entries;
  Format.fprintf ppf "total stored transitions: %d@]" t.total_transitions
