module Tbl = Hashtbl.Make (struct
  type t = State.packed

  let equal = State.equal
  let hash = State.hash
end)

let now () = Unix.gettimeofday ()

(* Successors of one frontier slice, computed by a worker domain.  Only
   pure state arithmetic happens here; no shared mutable structures. *)
let expand_slice sys (frontier : State.packed array) lo hi =
  let out = ref [] in
  for k = hi - 1 downto lo do
    let s = frontier.(k) in
    List.iter
      (fun (m : System.move) -> out := (k, m) :: !out)
      (System.successors sys s)
  done;
  !out

let run ?invariants ?constraint_ ?(max_states = 5_000_000) ?domains sys =
  let invariants =
    match invariants with
    | Some l -> l
    | None -> [ Invariant.mutex; Invariant.no_overflow ]
  in
  let ndomains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Par_explore.run: domains must be >= 1"
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  let t0 = now () in
  let tbl = Tbl.create 4096 in
  let states = Vec.create () in
  let parent = Vec.create () in
  let via_pid = Vec.create () in
  let via_pc = Vec.create () in
  let graph_id_of s = Tbl.find_opt tbl s in
  let graph =
    {
      Explore.sys;
      states;
      parent;
      via_pid;
      via_pc;
      id_of = graph_id_of;
    }
  in
  let generated = ref 0 in
  let depth = ref 0 in
  let finish outcome =
    {
      Explore.outcome;
      stats =
        {
          generated = !generated;
          distinct = Vec.length states;
          depth = !depth;
          runtime = now () -. t0;
        };
    }
  in
  let expand s =
    match constraint_ with None -> true | Some c -> c sys s
  in
  let exception Stop of Explore.result in
  let check id s =
    let rec first = function
      | [] -> None
      | inv :: rest -> (
          match Invariant.check inv sys s with
          | Some name -> Some name
          | None -> first rest)
    in
    match first invariants with
    | Some invariant ->
        raise
          (Stop
             (finish
                (Explore.Violation { invariant; trace = Explore.trace_to graph id })))
    | None -> ()
  in
  (* Insert a state discovered from [parent_id]; returns the new id if it
     was unseen. *)
  let insert ~parent_id ~pid ~pc s =
    match Tbl.find_opt tbl s with
    | Some _ -> None
    | None ->
        let id = Vec.push states s in
        Tbl.add tbl s id;
        ignore (Vec.push parent parent_id);
        ignore (Vec.push via_pid pid);
        ignore (Vec.push via_pc pc);
        if Vec.length states > max_states then raise (Stop (finish Explore.Capacity));
        check id s;
        Some id
  in
  try
    let init = System.initial sys in
    incr generated;
    let frontier = ref [||] in
    (match insert ~parent_id:(-1) ~pid:(-1) ~pc:(-1) init with
    | Some id -> if expand init then frontier := [| (id, init) |]
    | None -> assert false);
    while Array.length !frontier > 0 do
      let fr = Array.map snd !frontier in
      let ids = Array.map fst !frontier in
      let n = Array.length fr in
      let slices =
        (* Split [0, n) into ndomains contiguous chunks. *)
        List.init ndomains (fun d ->
            let lo = n * d / ndomains and hi = n * (d + 1) / ndomains in
            (lo, hi))
        |> List.filter (fun (lo, hi) -> hi > lo)
      in
      let results =
        match slices with
        | [ (lo, hi) ] -> [ expand_slice sys fr lo hi ]
        | _ ->
            let workers =
              List.map
                (fun (lo, hi) ->
                  Domain.spawn (fun () -> expand_slice sys fr lo hi))
                slices
            in
            List.map Domain.join workers
      in
      (* Sequential dedup + insertion keeps ids and traces deterministic. *)
      let next = ref [] in
      let had_successor = Array.make n false in
      List.iter
        (fun moves ->
          List.iter
            (fun ((k : int), (m : System.move)) ->
              had_successor.(k) <- true;
              incr generated;
              match insert ~parent_id:ids.(k) ~pid:m.pid ~pc:m.from_pc m.dest with
              | None -> ()
              | Some id -> if expand m.dest then next := (id, m.dest) :: !next)
            moves)
        results;
      (* Deadlock: a frontier state with no successors at all. *)
      Array.iteri
        (fun k alive ->
          if not alive then
            raise
              (Stop
                 (finish (Explore.Deadlock { trace = Explore.trace_to graph ids.(k) }))))
        had_successor;
      if !next <> [] then incr depth;
      frontier := Array.of_list (List.rev !next)
    done;
    finish Explore.Pass
  with Stop r -> r
