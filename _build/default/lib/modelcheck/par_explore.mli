(** Level-synchronized parallel BFS over OCaml 5 domains.

    Each BFS level's frontier is split across worker domains, which
    generate successor states in parallel (the expensive part: guard
    evaluation and effect application); deduplication against the global
    state table happens sequentially between levels, so the result is
    bit-identical to {!Explore.run}'s reachable set.

    Invariants are checked on insertion.  Because levels are explored in
    order, a reported violation still carries a shortest counterexample,
    exactly like the sequential engine.

    On a single-core machine this adds coordination overhead and no
    speedup; it exists so the checker scales on real multi-core hosts and
    is tested for agreement with the sequential engine. *)

val run :
  ?invariants:Invariant.t list ->
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  ?domains:int ->
  System.t ->
  Explore.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8.  With [domains = 1] the code path is still the parallel one
    (single worker), useful for differential testing. *)
