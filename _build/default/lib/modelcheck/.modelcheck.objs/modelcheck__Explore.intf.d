lib/modelcheck/explore.mli: Invariant State System Trace Vec
