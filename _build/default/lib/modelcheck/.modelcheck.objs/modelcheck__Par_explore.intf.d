lib/modelcheck/par_explore.mli: Explore Invariant State System
