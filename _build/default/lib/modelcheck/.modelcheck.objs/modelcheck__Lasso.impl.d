lib/modelcheck/lasso.ml: Array Explore Hashtbl List Mxlang Queue State System Trace Vec
