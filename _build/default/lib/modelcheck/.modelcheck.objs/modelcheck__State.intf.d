lib/modelcheck/state.mli: Format Mxlang
