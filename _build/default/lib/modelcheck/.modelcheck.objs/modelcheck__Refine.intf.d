lib/modelcheck/refine.mli: State System Trace
