lib/modelcheck/coverage.ml: Array Explore Format List Mxlang System Vec
