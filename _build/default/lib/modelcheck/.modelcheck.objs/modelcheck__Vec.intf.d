lib/modelcheck/vec.mli:
