lib/modelcheck/dot.mli: State System Trace
