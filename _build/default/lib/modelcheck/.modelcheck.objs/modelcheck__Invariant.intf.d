lib/modelcheck/invariant.mli: Mxlang State System
