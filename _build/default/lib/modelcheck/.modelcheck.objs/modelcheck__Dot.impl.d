lib/modelcheck/dot.ml: Array Buffer Explore List Mxlang Printf State String System Trace Vec
