lib/modelcheck/system.mli: Mxlang State
