lib/modelcheck/system.ml: Array List Mxlang State
