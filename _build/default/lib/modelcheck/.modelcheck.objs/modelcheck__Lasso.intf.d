lib/modelcheck/lasso.mli: Explore Mxlang State System Trace
