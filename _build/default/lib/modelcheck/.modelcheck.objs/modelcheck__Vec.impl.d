lib/modelcheck/vec.ml: Array List
