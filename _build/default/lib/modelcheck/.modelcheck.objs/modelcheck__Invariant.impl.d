lib/modelcheck/invariant.ml: Array List Mxlang Printf State String System
