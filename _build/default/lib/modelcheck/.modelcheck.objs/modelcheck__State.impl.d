lib/modelcheck/state.ml: Array Format List Mxlang Printf String
