lib/modelcheck/par_explore.ml: Array Domain Explore Hashtbl Invariant List State System Unix Vec
