lib/modelcheck/trace.ml: Format List State System
