lib/modelcheck/report.mli: Explore Format Lasso Refine System
