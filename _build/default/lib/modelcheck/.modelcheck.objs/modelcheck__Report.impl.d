lib/modelcheck/report.ml: Array Buffer Explore Format Lasso Printf Refine String System Trace
