lib/modelcheck/explore.ml: Array Hashtbl Invariant Lazy List Queue State System Trace Unix Vec
