lib/modelcheck/coverage.mli: Explore Format Mxlang State System
