lib/modelcheck/refine.ml: Array Hashtbl List Mxlang Queue State System Trace Vec
