lib/modelcheck/trace.mli: Format State System
