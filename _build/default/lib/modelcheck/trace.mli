(** Counterexample and witness traces. *)

type entry = {
  pid : int;  (** process that moved to reach this state; -1 for initial *)
  step_name : string;  (** label it executed; "<init>" for initial *)
  state : State.packed;
}

type t = entry list
(** First element is the initial state. *)

val pp : System.t -> Format.formatter -> t -> unit
(** TLC-style rendering: "State 1: <init>", "State 2: process 0 fired L1", …
    with the full state after each action. *)

val pp_compact : System.t -> Format.formatter -> t -> unit
(** One line per action: which process fired which label. *)

val length : t -> int
