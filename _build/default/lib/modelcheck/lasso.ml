type witness = {
  prefix : Trace.t;
  cycle : Trace.t;
  victim_continuously_enabled : bool;
  cs_entries_in_cycle : int;
}

type result = { witness : witness option; stats : Explore.stats }

let stuck_at_kind kind (p : Mxlang.Ast.program) pc = p.steps.(pc).kind = kind
let stuck_at_label name (p : Mxlang.Ast.program) pc = p.steps.(pc).step_name = name

(* A move within the restricted graph: destination id plus enough
   bookkeeping to print the transition and recognize CS entries. *)
type redge = { dst : int; e_pid : int; e_pc : int; cs_entry : bool }

let find ?constraint_ ?(max_states = 2_000_000) ?(require_victim_disabled = false)
    ~victim ~stuck_at sys =
  let graph, stats = Explore.run_graph ?constraint_ ~max_states sys in
  let lay = System.layout sys in
  let prog = System.program sys in
  let n = Vec.length graph.states in
  let restricted i =
    stuck_at prog (State.pc lay (Vec.get graph.states i) victim)
  in
  (* Successor edges inside the restriction: non-victim moves between
     restricted states that stayed inside the explored graph. *)
  let edges_of i =
    let s = Vec.get graph.states i in
    List.filter_map
      (fun (m : System.move) ->
        if m.pid = victim then None
        else
          match graph.id_of m.dest with
          | None -> None
          | Some j ->
              if restricted j then
                let was_cs =
                  System.kind_of_pc sys m.from_pc = Mxlang.Ast.Critical
                in
                let now_cs = System.in_critical sys m.dest m.pid in
                Some { dst = j; e_pid = m.pid; e_pc = m.from_pc; cs_entry = (now_cs && not was_cs) }
              else None)
      (System.successors sys s)
  in
  (* Iterative Tarjan over the restricted subgraph. *)
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomp = ref 0 in
  let visit root =
    (* Explicit DFS stack: (node, remaining successor list). *)
    let dfs = ref [ (root, edges_of root) ] in
    index.(root) <- !counter;
    lowlink.(root) <- !counter;
    incr counter;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !dfs <> [] do
      match !dfs with
      | [] -> ()
      | (v, succs) :: rest -> (
          match succs with
          | [] ->
              dfs := rest;
              (match rest with
              | (u, _) :: _ ->
                  if lowlink.(v) < lowlink.(u) then lowlink.(u) <- lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                let c = !ncomp in
                incr ncomp;
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp.(w) <- c;
                      if w = v then continue := false
                done
              end
          | e :: more ->
              dfs := (v, more) :: rest;
              let w = e.dst in
              if index.(w) < 0 then begin
                index.(w) <- !counter;
                lowlink.(w) <- !counter;
                incr counter;
                stack := w :: !stack;
                on_stack.(w) <- true;
                dfs := (w, edges_of w) :: !dfs
              end
              else if on_stack.(w) && index.(w) < lowlink.(v) then
                lowlink.(v) <- index.(w))
    done
  in
  for i = 0 to n - 1 do
    if restricted i && index.(i) < 0 then visit i
  done;
  (* Per SCC: one state (if any) in which the victim has no enabled
     action — needed for fairness-consistent lassos. *)
  let disabled_in = Hashtbl.create 64 in
  if require_victim_disabled then
    for i = 0 to n - 1 do
      if
        restricted i
        && comp.(i) >= 0
        && (not (Hashtbl.mem disabled_in comp.(i)))
        && not (System.enabled sys (Vec.get graph.states i) victim)
      then Hashtbl.add disabled_in comp.(i) i
    done;
  (* Look for an SCC-internal edge that is a CS entry; any such edge lies
     on a cycle witnessing the starvation. *)
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < n do
    let u = !i in
    if restricted u && comp.(u) >= 0 then
      List.iter
        (fun e ->
          if
            !found = None && e.cs_entry
            && comp.(e.dst) = comp.(u)
            && ((not require_victim_disabled) || Hashtbl.mem disabled_in comp.(u))
          then found := Some (u, e))
        (edges_of u);
    incr i
  done;
  match !found with
  | None -> { witness = None; stats }
  | Some (u, e0) ->
      let c = comp.(u) in
      (* BFS within the SCC from [src] to [dst]; returns the edge path. *)
      let path_between src dst =
        if src = dst then []
        else begin
          let pred = Hashtbl.create 64 in
          let q = Queue.create () in
          Queue.add src q;
          Hashtbl.add pred src None;
          let reached = ref false in
          while (not !reached) && not (Queue.is_empty q) do
            let v = Queue.pop q in
            List.iter
              (fun e ->
                if comp.(e.dst) = c && not (Hashtbl.mem pred e.dst) then begin
                  Hashtbl.add pred e.dst (Some (v, e));
                  if e.dst = dst then reached := true else Queue.add e.dst q
                end)
              (edges_of v)
          done;
          let rec back id acc =
            match Hashtbl.find pred id with
            | None -> acc
            | Some (v, e) -> back v ((id, e) :: acc)
          in
          back dst []
        end
      in
      let entry_of id pid pc =
        {
          Trace.pid;
          step_name = (if pid < 0 then "<loop>" else prog.steps.(pc).step_name);
          state = Vec.get graph.states id;
        }
      in
      (* Cycle: u --e0--> e0.dst --...--> waypoint --...--> u, where the
         waypoint (if demanded) is a state with the victim disabled. *)
      let edge_path =
        match Hashtbl.find_opt disabled_in c with
        | Some d when require_victim_disabled ->
            path_between e0.dst d @ path_between d u
        | _ -> path_between e0.dst u
      in
      let cycle_tail =
        List.map (fun (id, e) -> entry_of id e.e_pid e.e_pc) edge_path
      in
      let cycle = entry_of e0.dst e0.e_pid e0.e_pc :: cycle_tail in
      let prefix = Explore.trace_to graph u in
      let cycle_states =
        Vec.get graph.states u :: List.map (fun (t : Trace.entry) -> t.state) cycle
      in
      let victim_continuously_enabled =
        List.for_all (fun s -> System.enabled sys s victim) cycle_states
      in
      let cs_entries_in_cycle =
        (if e0.cs_entry then 1 else 0)
        + List.length
            (List.filter
               (fun (t : Trace.entry) ->
                 t.pid >= 0 && System.in_critical sys t.state t.pid)
               cycle_tail)
      in
      {
        witness =
          Some { prefix; cycle; victim_continuously_enabled; cs_entries_in_cycle };
        stats;
      }
