module Tbl = Hashtbl.Make (struct
  type t = State.packed

  let equal = State.equal
  let hash = State.hash
end)

type stats = { generated : int; distinct : int; depth : int; runtime : float }

type outcome =
  | Pass
  | Violation of { invariant : string; trace : Trace.t }
  | Deadlock of { trace : Trace.t }
  | Capacity

type result = { outcome : outcome; stats : stats }

type graph = {
  sys : System.t;
  states : State.packed Vec.t;
  parent : int Vec.t;
  via_pid : int Vec.t;
  via_pc : int Vec.t;
  id_of : State.packed -> int option;
}

let now () = Unix.gettimeofday ()

type store = {
  g : graph;
  tbl : int Tbl.t;
  depth_of : int Vec.t;
}

let make_store sys =
  let tbl = Tbl.create 4096 in
  let g =
    {
      sys;
      states = Vec.create ();
      parent = Vec.create ();
      via_pid = Vec.create ();
      via_pc = Vec.create ();
      id_of = (fun s -> Tbl.find_opt tbl s);
    }
  in
  { g; tbl; depth_of = Vec.create () }

(* Returns [Some id] if the state is new. *)
let add store ~parent ~pid ~pc ~depth s =
  match Tbl.find_opt store.tbl s with
  | Some _ -> None
  | None ->
      let id = Vec.push store.g.states s in
      Tbl.add store.tbl s id;
      ignore (Vec.push store.g.parent parent);
      ignore (Vec.push store.g.via_pid pid);
      ignore (Vec.push store.g.via_pc pc);
      ignore (Vec.push store.depth_of depth);
      Some id

let trace_to (g : graph) id =
  let p = System.program g.sys in
  let rec walk id acc =
    let pid = Vec.get g.via_pid id in
    let entry =
      {
        Trace.pid;
        step_name = (if pid < 0 then "<init>" else p.steps.(Vec.get g.via_pc id).step_name);
        state = Vec.get g.states id;
      }
    in
    let parent = Vec.get g.parent id in
    if parent < 0 then entry :: acc else walk parent (entry :: acc)
  in
  walk id []

let default_invariants = lazy [ Invariant.mutex; Invariant.no_overflow ]

let run ?invariants ?constraint_ ?(max_states = 5_000_000) ?(check_deadlock = true)
    sys =
  let invariants =
    match invariants with Some l -> l | None -> Lazy.force default_invariants
  in
  let t0 = now () in
  let store = make_store sys in
  let queue = Queue.create () in
  let generated = ref 0 in
  let max_depth = ref 0 in
  let finish outcome =
    {
      outcome;
      stats =
        {
          generated = !generated;
          distinct = Vec.length store.g.states;
          depth = !max_depth;
          runtime = now () -. t0;
        };
    }
  in
  let check_state id s =
    let rec first_violated = function
      | [] -> None
      | inv :: rest ->
          (match Invariant.check inv sys s with
          | Some name -> Some name
          | None -> first_violated rest)
    in
    match first_violated invariants with
    | Some invariant -> Some (Violation { invariant; trace = trace_to store.g id })
    | None -> None
  in
  let expand s =
    match constraint_ with None -> true | Some c -> c sys s
  in
  let exception Stop of result in
  try
    let init = System.initial sys in
    incr generated;
    (match add store ~parent:(-1) ~pid:(-1) ~pc:(-1) ~depth:0 init with
    | Some id -> (
        match check_state id init with
        | Some bad -> raise (Stop (finish bad))
        | None -> if expand init then Queue.add id queue)
    | None -> assert false);
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let s = Vec.get store.g.states id in
      let depth = Vec.get store.depth_of id in
      if depth > !max_depth then max_depth := depth;
      let moves = System.successors sys s in
      if check_deadlock && moves = [] then
        raise (Stop (finish (Deadlock { trace = trace_to store.g id })));
      List.iter
        (fun (m : System.move) ->
          incr generated;
          match
            add store ~parent:id ~pid:m.pid ~pc:m.from_pc ~depth:(depth + 1)
              m.dest
          with
          | None -> ()
          | Some id' -> (
              if Vec.length store.g.states > max_states then
                raise (Stop (finish Capacity));
              match check_state id' m.dest with
              | Some bad -> raise (Stop (finish bad))
              | None -> if expand m.dest then Queue.add id' queue))
        moves
    done;
    finish Pass
  with Stop r -> r

let run_graph ?constraint_ ?(max_states = 5_000_000) sys =
  let t0 = now () in
  let store = make_store sys in
  let queue = Queue.create () in
  let generated = ref 0 in
  let max_depth = ref 0 in
  let expand s = match constraint_ with None -> true | Some c -> c sys s in
  let init = System.initial sys in
  incr generated;
  (match add store ~parent:(-1) ~pid:(-1) ~pc:(-1) ~depth:0 init with
  | Some id -> if expand init then Queue.add id queue
  | None -> assert false);
  let exception Full in
  (try
     while not (Queue.is_empty queue) do
       let id = Queue.pop queue in
       let s = Vec.get store.g.states id in
       let depth = Vec.get store.depth_of id in
       if depth > !max_depth then max_depth := depth;
       List.iter
         (fun (m : System.move) ->
           incr generated;
           match
             add store ~parent:id ~pid:m.pid ~pc:m.from_pc ~depth:(depth + 1)
               m.dest
           with
           | None -> ()
           | Some id' ->
               if Vec.length store.g.states > max_states then raise Full;
               if expand m.dest then Queue.add id' queue)
         (System.successors sys s)
     done
   with Full -> ());
  ( store.g,
    {
      generated = !generated;
      distinct = Vec.length store.g.states;
      depth = !max_depth;
      runtime = now () -. t0;
    } )
