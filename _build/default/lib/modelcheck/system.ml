type t = { env : Mxlang.Eval.env; lay : State.layout }

type move = { pid : int; from_pc : int; alt : int; dest : State.packed }

let make program ~nprocs ~bound =
  Mxlang.Validate.assert_valid program;
  let env = Mxlang.Eval.make_env program ~nprocs ~bound in
  { env; lay = State.layout env }

let layout t = t.lay
let program t = t.env.program
let nprocs t = t.env.nprocs
let bound t = t.env.bound
let initial t = State.initial t.lay

let successors_of_pid t (s : State.packed) pid =
  let lay = t.lay in
  let pc = State.pc lay s pid in
  let shared = State.shared_part lay s in
  let locals = State.locals_part lay s pid in
  let step = t.env.program.steps.(pc) in
  let moves = ref [] in
  List.iteri
    (fun alt (a : Mxlang.Ast.action) ->
      if Mxlang.Eval.eval_b t.env ~shared ~locals ~pid a.guard then begin
        let shared' = Array.copy shared and locals' = Array.copy locals in
        Mxlang.Eval.apply t.env ~shared:shared' ~locals:locals' ~pid a;
        let dest = Array.copy s in
        State.write_back lay dest ~shared:shared' ~locals:locals' ~pid;
        State.set_pc lay dest pid a.target;
        moves := { pid; from_pc = pc; alt; dest } :: !moves
      end)
    step.actions;
  List.rev !moves

let successors t s =
  let rec all pid =
    if pid >= t.env.nprocs then []
    else successors_of_pid t s pid @ all (pid + 1)
  in
  all 0

let enabled t s pid =
  let lay = t.lay in
  let pc = State.pc lay s pid in
  let shared = State.shared_part lay s in
  let locals = State.locals_part lay s pid in
  List.exists
    (fun (a : Mxlang.Ast.action) ->
      Mxlang.Eval.eval_b t.env ~shared ~locals ~pid a.guard)
    t.env.program.steps.(pc).actions

let kind_of_pc t pc = t.env.program.steps.(pc).kind

let in_critical t s pid = kind_of_pc t (State.pc t.lay s pid) = Mxlang.Ast.Critical
