type t = { name : string; holds : System.t -> State.packed -> bool }

let mutex =
  {
    name = "mutual-exclusion";
    holds =
      (fun sys s ->
        let n = System.nprocs sys in
        let rec count i acc =
          if acc > 1 then acc
          else if i >= n then acc
          else count (i + 1) (if System.in_critical sys s i then acc + 1 else acc)
        in
        count 0 0 <= 1);
  }

let no_overflow =
  {
    name = "no-overflow";
    holds =
      (fun sys s ->
        let p = System.program sys in
        let lay = System.layout sys in
        let m = System.bound sys in
        let rec var_ok v =
          v >= p.nvars
          || ((not p.bounded.(v))
             ||
             let cells = Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) p v in
             let rec cell_ok i =
               i >= cells || (State.shared_cell lay s v i <= m && cell_ok (i + 1))
             in
             cell_ok 0)
             && var_ok (v + 1)
        in
        var_ok 0);
  }

let bounded_by ~var ~limit =
  {
    name = Printf.sprintf "bounded(var %d <= %d)" var limit;
    holds =
      (fun sys s ->
        let lay = System.layout sys in
        let cells =
          Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) (System.program sys) var
        in
        let rec ok i = i >= cells || (State.shared_cell lay s var i <= limit && ok (i + 1)) in
        ok 0);
  }

let custom name holds = { name; holds }

let all invs =
  {
    name = String.concat " & " (List.map (fun i -> i.name) invs);
    holds = (fun sys s -> List.for_all (fun i -> i.holds sys s) invs);
  }

let check inv sys s = if inv.holds sys s then None else Some inv.name
