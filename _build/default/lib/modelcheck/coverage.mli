(** TLC-style action coverage: how often each labeled step fired during
    exploration, and which never fired at all.

    Zero-coverage labels usually indicate dead protocol branches (or a
    too-small configuration to reach them) — e.g. Bakery++'s [reset] step
    is unreachable at N=1 but covered from N=2, M=1. *)

type entry = {
  step_name : string;
  pc : int;
  kind : Mxlang.Ast.kind;
  fired : int;  (** transitions generated through this label during the search *)
}

type t = { entries : entry list; total_transitions : int }

val of_graph : Explore.graph -> t
(** Count, for every program label, the transitions generated from stored
    states that execute it — TLC's notion of action coverage. *)

val measure :
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  System.t ->
  t
(** Explore and measure in one call. *)

val uncovered : t -> string list
(** Labels that never fired. *)

val pp : Format.formatter -> t -> unit
