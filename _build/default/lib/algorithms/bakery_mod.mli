(** Naive "wrap the ticket" Bakery: identical to the original except the
    new ticket is [(1 + maximum(number)) mod M].

    This is the strawman version of related-work approach 1 (modulo
    arithmetic, §4 of the paper): bounding the registers this way without
    also redefining the [<] comparison is unsound.  The model checker
    finds a mutual-exclusion counterexample — a wrapped ticket of 0 makes
    a competing process invisible — which is exactly why Jayanti et al.
    needed a redefined order, and why Bakery++'s reset approach is
    attractive. *)

val program : unit -> Mxlang.Ast.program
