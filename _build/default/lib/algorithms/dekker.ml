open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"dekker" in
  let flag = B.shared_per_process b "flag" () in
  let turn = B.shared b "turn" ~size:1 () in
  let other = one -: self in
  let ncs = B.fresh_label b "ncs" in
  let raise_flag = B.fresh_label b "raise_flag" in
  let test = B.fresh_label b "test" in
  let check_turn = B.fresh_label b "check_turn" in
  let back_off = B.fresh_label b "back_off" in
  let wait_turn = B.fresh_label b "wait_turn" in
  let re_raise = B.fresh_label b "re_raise" in
  let cs = B.fresh_label b "cs" in
  let pass_turn = B.fresh_label b "pass_turn" in
  let release = B.fresh_label b "release" in
  B.define b ncs ~kind:Noncritical [ B.goto raise_flag ];
  B.define b raise_flag ~kind:Entry
    [ B.action ~effects:[ set_own flag one ] test ];
  (* while flag[other]: if turn <> self back off until our turn. *)
  B.define b test ~kind:Waiting (B.ite (rd flag other =: one) check_turn cs);
  B.define b check_turn ~kind:Waiting
    (B.ite (rd turn zero <>: self) back_off test);
  B.define b back_off ~kind:Waiting
    [ B.action ~effects:[ set_own flag zero ] wait_turn ];
  B.define b wait_turn ~kind:Waiting (B.await (rd turn zero =: self) re_raise);
  B.define b re_raise ~kind:Waiting
    [ B.action ~effects:[ set_own flag one ] test ];
  B.define b cs ~kind:Critical [ B.goto pass_turn ];
  B.define b pass_turn ~kind:Exit
    [ B.action ~effects:[ set turn zero other ] release ];
  B.define b release ~kind:Exit
    [ B.action ~effects:[ set_own flag zero ] ncs ];
  B.build b
