open Mxlang.Ast
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"no_lock" in
  let ncs = B.fresh_label b "ncs" in
  let cs = B.fresh_label b "cs" in
  let leave = B.fresh_label b "leave" in
  B.define b ncs ~kind:Noncritical [ B.goto cs ];
  B.define b cs ~kind:Critical [ B.goto leave ];
  B.define b leave ~kind:Exit [ B.goto ncs ];
  B.build b
