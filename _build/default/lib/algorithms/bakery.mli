(** Lamport's original Bakery algorithm (the paper's Algorithm 1).

    The [number] array is declared register-bounded, so model checking the
    program with the [no_overflow] invariant demonstrates the paper's §3
    problem: tickets grow without bound and eventually a value [> M] is
    stored.  Mutual exclusion itself holds (checked under a ticket-cap
    state constraint, since the raw state space is infinite). *)

val program : ?granularity:Common.granularity -> unit -> Mxlang.Ast.program
(** Defaults to [Coarse]. *)
