open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"szymanski" in
  let flag = B.shared_per_process b "flag" () in
  let ncs = B.fresh_label b "ncs" in
  let s1 = B.fresh_label b "intent" in
  let s2 = B.fresh_label b "wait_door" in
  let s3 = B.fresh_label b "enter_door" in
  let s4 = B.fresh_label b "check_waiters" in
  let s5 = B.fresh_label b "step_back" in
  let s6 = B.fresh_label b "wait_opener" in
  let s7 = B.fresh_label b "close_door" in
  let s8 = B.fresh_label b "wait_lower" in
  let cs = B.fresh_label b "cs" in
  let e1 = B.fresh_label b "wait_higher" in
  let e2 = B.fresh_label b "reset_flag" in
  B.define b ncs ~kind:Noncritical [ B.goto s1 ];
  (* flag[i] := 1 — declare intent to enter. *)
  B.define b s1 ~kind:Doorway [ B.action ~effects:[ set_own flag one ] s2 ];
  (* Wait for the waiting room's door: everyone below 3. *)
  B.define b s2 ~kind:Doorway (B.await (qall Rall (rd flag q <: int 3)) s3);
  B.define b s3 ~kind:Doorway [ B.action ~effects:[ set_own flag (int 3) ] s4 ];
  (* If someone is still at intent stage, step back to 2 and wait for a
     process that has closed the door (flag 4). *)
  B.define b s4 ~kind:Doorway
    (B.ite (qexists Rothers (rd flag q =: one)) s5 s7);
  B.define b s5 ~kind:Doorway [ B.action ~effects:[ set_own flag (int 2) ] s6 ];
  B.define b s6 ~kind:Doorway (B.await (qexists Rall (rd flag q =: int 4)) s7);
  B.define b s7 ~kind:Doorway [ B.action ~effects:[ set_own flag (int 4) ] s8 ];
  (* Enter in id order among those inside. *)
  B.define b s8 ~kind:Waiting (B.await (qall Rbelow (rd flag q <: int 2)) cs);
  B.define b cs ~kind:Critical [ B.goto e1 ];
  (* Leave only when no higher-id process is stuck in the doorway. *)
  B.define b e1 ~kind:Exit
    (B.await (qall Rabove (rd flag q <: int 2 ||: (rd flag q >: int 3))) e2);
  B.define b e2 ~kind:Exit [ B.action ~effects:[ set_own flag zero ] ncs ];
  B.build b
