(** Deliberately broken "lock" (no synchronization at all).  Exists so the
    test suite can prove the checker finds mutual-exclusion violations. *)

val program : unit -> Mxlang.Ast.program
