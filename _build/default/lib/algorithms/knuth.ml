open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let idle = zero
let requesting = one
let active = int 2

let program () =
  let b = B.create ~title:"knuth" in
  let control = B.shared_per_process b "control" () in
  let k = B.shared b "k" ~size:1 () in
  let j = B.local b "j" in
  let ncs = B.fresh_label b "ncs" in
  let declare = B.fresh_label b "declare" in
  let read_k = B.fresh_label b "read_k" in
  let walk_head = B.fresh_label b "walk" in
  let walk_test = B.fresh_label b "walk_test" in
  let walk_restart = B.fresh_label b "walk_restart" in
  let walk_down = B.fresh_label b "walk_down" in
  let go_active = B.fresh_label b "go_active" in
  let solo = B.fresh_label b "solo_check" in
  let claim = B.fresh_label b "claim" in
  let cs = B.fresh_label b "cs" in
  let pass = B.fresh_label b "pass" in
  let retire = B.fresh_label b "retire" in
  B.define b ncs ~kind:Noncritical [ B.goto declare ];
  B.define b declare ~kind:Entry
    [ B.action ~effects:[ set_own control requesting ] read_k ];
  B.define b read_k ~kind:Entry
    [ B.action ~effects:[ set_local j (rd k zero) ] walk_head ];
  (* Walk from k down (cyclically) to self; any busy process on the way
     restarts the walk at the current k. *)
  B.define b walk_head ~kind:Entry (B.ite (lv j <>: self) walk_test go_active);
  B.define b walk_test ~kind:Entry
    (B.ite (rd control (lv j) <>: idle) walk_restart walk_down);
  B.define b walk_restart ~kind:Entry
    [ B.action ~effects:[ set_local j (rd k zero) ] walk_head ];
  B.define b walk_down ~kind:Entry
    [ B.action ~effects:[ set_local j ((lv j +: n -: one) %: n) ] walk_head ];
  B.define b go_active ~kind:Entry
    [ B.action ~effects:[ set_own control active ] solo ];
  (* Atomically-quantified solo check, as in the usual verified model. *)
  B.define b solo ~kind:Entry
    (B.ite (qexists Rothers (rd control q =: active)) declare claim);
  B.define b claim ~kind:Waiting [ B.action ~effects:[ set k zero self ] cs ];
  B.define b cs ~kind:Critical [ B.goto pass ];
  (* Knuth's exit passes the turn to the cyclically-previous process,
     giving the round-robin bound on overtaking. *)
  B.define b pass ~kind:Exit
    [ B.action ~effects:[ set k zero ((self +: n -: one) %: n) ] retire ];
  B.define b retire ~kind:Exit
    [ B.action ~effects:[ set_own control idle ] ncs ];
  B.build b
