(** Szymanski's mutual-exclusion algorithm (Jerusalem Conf. on Information
    Technology, 1990).

    The paper's §4 cites Szymanski's FCFS algorithm as "much more
    complicated than Bakery++" while using bounded registers: each process
    keeps a single flag in 0..4 (a 3-bit register).  This model uses the
    standard 5-state formulation with atomic quantified awaits — the
    granularity at which the algorithm is usually verified. *)

val program : unit -> Mxlang.Ast.program
