open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program ?(granularity = Common.Coarse) () =
  let b =
    B.create
      ~title:
        (Printf.sprintf "bakery_%s" (Common.granularity_name granularity))
  in
  let choosing = B.shared_per_process b "choosing" () in
  let number = B.shared_per_process b "number" ~bounded:true () in
  let j = B.local b "j" in
  let ncs = B.fresh_label b "ncs" in
  let set_choosing = B.fresh_label b "choose" in
  let unset_choosing = B.fresh_label b "done_choosing" in
  let cs = B.fresh_label b "cs" in
  B.define b ncs ~kind:Noncritical [ B.goto set_choosing ];
  (match granularity with
  | Common.Coarse ->
      let pick = B.fresh_label b "pick" in
      B.define b set_choosing ~kind:Doorway
        [ B.action ~effects:[ set_own choosing one ] pick ];
      (* L1 of Algorithm 1: number[i] := 1 + maximum(number[1..N]). *)
      B.define b pick ~kind:Doorway
        [ B.action ~effects:[ set_own number (one +: max_arr number) ] unset_choosing ]
  | Common.Fine ->
      let acc = B.local b "mx" in
      let store = B.fresh_label b "store" in
      let head = Common.max_loop b ~number ~k:j ~acc ~done_:store in
      B.define b set_choosing ~kind:Doorway
        [
          B.action
            ~effects:[ set_own choosing one; set_local j zero; set_local acc zero ]
            head;
        ];
      B.define b store ~kind:Doorway
        [ B.action ~effects:[ set_own number (lv acc +: one) ] unset_choosing ]);
  let scan =
    Common.scan_loop b ~number ~choosing ~j ~cs
  in
  B.define b unset_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing zero; set_local j zero ] scan ];
  Common.cyclic_tail b ~number ~cs ~ncs;
  B.build b
