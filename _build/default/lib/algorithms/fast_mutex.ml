open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"fast_mutex" in
  let bflag = B.shared_per_process b "b" () in
  let x = B.shared b "x" ~size:1 () in
  let y = B.shared b "y" ~size:1 () in
  let j = B.local b "j" in
  let me = self +: one in
  let ncs = B.fresh_label b "ncs" in
  let start = B.fresh_label b "start" in
  let set_x = B.fresh_label b "set_x" in
  let test_y = B.fresh_label b "test_y" in
  let back_off_y = B.fresh_label b "back_off_y" in
  let wait_y = B.fresh_label b "wait_y" in
  let set_y = B.fresh_label b "set_y" in
  let test_x = B.fresh_label b "test_x" in
  let slow_lower = B.fresh_label b "slow_lower" in
  let slow_scan = B.fresh_label b "slow_scan" in
  let slow_wait = B.fresh_label b "slow_wait" in
  let next_j = B.fresh_label b "next_j" in
  let test_y2 = B.fresh_label b "test_y2" in
  let wait_y2 = B.fresh_label b "wait_y2" in
  let cs = B.fresh_label b "cs" in
  let clear_y = B.fresh_label b "clear_y" in
  let clear_b = B.fresh_label b "clear_b" in
  B.define b ncs ~kind:Noncritical [ B.goto start ];
  (* b[i] := true *)
  B.define b start ~kind:Entry [ B.action ~effects:[ set_own bflag one ] set_x ];
  (* x := i *)
  B.define b set_x ~kind:Entry [ B.action ~effects:[ set x zero me ] test_y ];
  (* if y <> 0 then back off and retry once y clears *)
  B.define b test_y ~kind:Entry (B.ite (rd y zero <>: zero) back_off_y set_y);
  B.define b back_off_y ~kind:Entry
    [ B.action ~effects:[ set_own bflag zero ] wait_y ];
  B.define b wait_y ~kind:Entry (B.await (rd y zero =: zero) start);
  (* y := i *)
  B.define b set_y ~kind:Entry [ B.action ~effects:[ set y zero me ] test_x ];
  (* if x <> i: the slow path *)
  B.define b test_x ~kind:Waiting (B.ite (rd x zero <>: me) slow_lower cs);
  B.define b slow_lower ~kind:Waiting
    [ B.action ~effects:[ set_own bflag zero; set_local j zero ] slow_scan ];
  (* for j: await not b[j] *)
  B.define b slow_scan ~kind:Waiting (B.ite (lv j <: n) slow_wait test_y2);
  B.define b slow_wait ~kind:Waiting
    (B.await (rd bflag (lv j) =: zero) next_j);
  B.define b next_j ~kind:Waiting
    [ B.action ~effects:[ set_local j (lv j +: one) ] slow_scan ];
  (* if y <> i then await y = 0 and restart, else enter *)
  B.define b test_y2 ~kind:Waiting (B.ite (rd y zero <>: me) wait_y2 cs);
  B.define b wait_y2 ~kind:Waiting (B.await (rd y zero =: zero) start);
  B.define b cs ~kind:Critical [ B.goto clear_y ];
  B.define b clear_y ~kind:Exit [ B.action ~effects:[ set y zero zero ] clear_b ];
  B.define b clear_b ~kind:Exit [ B.action ~effects:[ set_own bflag zero ] ncs ];
  B.build b
