lib/algorithms/knuth.mli: Mxlang
