lib/algorithms/tas_model.ml: Mxlang
