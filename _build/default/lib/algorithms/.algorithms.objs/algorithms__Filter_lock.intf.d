lib/algorithms/filter_lock.mli: Mxlang
