lib/algorithms/knuth.ml: Mxlang
