lib/algorithms/dekker.mli: Mxlang
