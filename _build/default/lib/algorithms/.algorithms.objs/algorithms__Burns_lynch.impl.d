lib/algorithms/burns_lynch.ml: Mxlang
