lib/algorithms/filter_lock.ml: Mxlang
