lib/algorithms/tas_model.mli: Mxlang
