lib/algorithms/bakery_mod.mli: Mxlang
