lib/algorithms/szymanski.ml: Mxlang
