lib/algorithms/peterson2.mli: Mxlang
