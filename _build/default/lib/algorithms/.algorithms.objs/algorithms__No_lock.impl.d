lib/algorithms/no_lock.ml: Mxlang
