lib/algorithms/blackwhite.mli: Mxlang
