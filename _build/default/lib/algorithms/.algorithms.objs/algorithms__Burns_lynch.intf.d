lib/algorithms/burns_lynch.mli: Mxlang
