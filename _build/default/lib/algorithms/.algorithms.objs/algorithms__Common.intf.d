lib/algorithms/common.mli: Mxlang
