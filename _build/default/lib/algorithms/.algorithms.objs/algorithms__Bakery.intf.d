lib/algorithms/bakery.mli: Common Mxlang
