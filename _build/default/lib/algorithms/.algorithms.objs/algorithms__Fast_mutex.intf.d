lib/algorithms/fast_mutex.mli: Mxlang
