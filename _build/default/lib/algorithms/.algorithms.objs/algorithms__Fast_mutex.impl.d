lib/algorithms/fast_mutex.ml: Mxlang
