lib/algorithms/no_lock.mli: Mxlang
