lib/algorithms/ticket_model.ml: Mxlang
