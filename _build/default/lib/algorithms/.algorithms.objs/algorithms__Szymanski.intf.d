lib/algorithms/szymanski.mli: Mxlang
