lib/algorithms/eisenberg.ml: Mxlang
