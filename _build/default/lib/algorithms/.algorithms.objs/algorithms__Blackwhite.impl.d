lib/algorithms/blackwhite.ml: Mxlang
