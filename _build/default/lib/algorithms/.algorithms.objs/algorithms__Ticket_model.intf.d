lib/algorithms/ticket_model.mli: Mxlang
