lib/algorithms/common.ml: Mxlang
