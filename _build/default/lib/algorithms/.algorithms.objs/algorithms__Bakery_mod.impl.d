lib/algorithms/bakery_mod.ml: Common Mxlang
