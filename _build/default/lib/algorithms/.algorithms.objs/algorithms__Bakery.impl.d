lib/algorithms/bakery.ml: Common Mxlang Printf
