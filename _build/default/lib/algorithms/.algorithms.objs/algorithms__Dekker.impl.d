lib/algorithms/dekker.ml: Mxlang
