lib/algorithms/eisenberg.mli: Mxlang
