lib/algorithms/peterson2.ml: Mxlang
