(** Peterson's filter lock for N processes.

    N-1 levels; at each level one process can be "filtered out" as the
    level's victim.  Space O(N) like Bakery++, but the per-level [victim]
    cells are multi-writer and the lock is not first-come-first-served —
    the two axes on which the paper positions the bakery family. *)

val program : unit -> Mxlang.Ast.program
