(** Test-and-set lock model: one shared bit, acquired with an atomic RMW.
    Baseline only — it assumes exactly the lower-level atomicity that the
    bakery family exists to avoid, and it is neither fair nor FCFS. *)

val program : unit -> Mxlang.Ast.program
