(** Lamport's fast mutual exclusion algorithm (TOCS 1987).

    The contrast case for the paper's §7 practicality discussion: constant
    time in the absence of contention (two writes, two reads), at the
    price of two multi-writer variables [x] and [y] and no FCFS order —
    the opposite trade to the bakery family.

    Process ids are stored as [pid + 1] so that 0 can keep meaning
    "empty", matching the algorithm's [y = 0] tests. *)

val program : unit -> Mxlang.Ast.program
