open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"burns_lynch" in
  let flag = B.shared_per_process b "flag" () in
  let ncs = B.fresh_label b "ncs" in
  let down = B.fresh_label b "flag_down" in
  let scan_lower1 = B.fresh_label b "scan_lower_pre" in
  let up = B.fresh_label b "flag_up" in
  let scan_lower2 = B.fresh_label b "scan_lower_post" in
  let wait_higher = B.fresh_label b "wait_higher" in
  let cs = B.fresh_label b "cs" in
  let release = B.fresh_label b "release" in
  B.define b ncs ~kind:Noncritical [ B.goto down ];
  B.define b down ~kind:Entry [ B.action ~effects:[ set_own flag zero ] scan_lower1 ];
  (* Defer to any lower-id contender, twice: once before and once after
     raising our own flag. *)
  B.define b scan_lower1 ~kind:Entry
    (B.ite (qexists Rbelow (rd flag q =: one)) down up);
  B.define b up ~kind:Entry [ B.action ~effects:[ set_own flag one ] scan_lower2 ];
  B.define b scan_lower2 ~kind:Entry
    (B.ite (qexists Rbelow (rd flag q =: one)) down wait_higher);
  (* Then wait out every higher-id process that got ahead. *)
  B.define b wait_higher ~kind:Waiting
    (B.await (qall Rabove (rd flag q =: zero)) cs);
  B.define b cs ~kind:Critical [ B.goto release ];
  B.define b release ~kind:Exit [ B.action ~effects:[ set_own flag zero ] ncs ];
  B.build b
