open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"tas" in
  let lock = B.shared b "lock" ~size:1 () in
  let ncs = B.fresh_label b "ncs" in
  let acquire = B.fresh_label b "acquire" in
  let cs = B.fresh_label b "cs" in
  let release = B.fresh_label b "release" in
  B.define b ncs ~kind:Noncritical [ B.goto acquire ];
  (* guard + set in one action = atomic test-and-set *)
  B.define b acquire ~kind:Waiting
    [ B.action ~guard:(rd lock zero =: zero) ~effects:[ set lock zero one ] cs ];
  B.define b cs ~kind:Critical [ B.goto release ];
  B.define b release ~kind:Exit [ B.action ~effects:[ set lock zero zero ] ncs ];
  B.build b
