(** Taubenfeld's Black-White Bakery algorithm (DISC 2004) — the paper's
    related-work approach 2 (bounded tickets at the price of an extra
    shared variable that every process writes).

    Tickets carry a color; the shared [color] bit flips at each exit, and
    a process only competes on ticket numbers against same-colored
    processes, which bounds tickets by N.  Contrast with Bakery++: here
    the single-writer property is lost ([color] is written by everyone),
    which is the design point the paper criticizes. *)

val program : unit -> Mxlang.Ast.program

val ticket_bound : nprocs:int -> int
(** The largest ticket value the algorithm can generate: N. *)
