open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let idle = zero
let waiting = one
let active = int 2

let program () =
  let b = B.create ~title:"eisenberg_mcguire" in
  let flag = B.shared_per_process b "flag" () in
  let turn = B.shared b "turn" ~size:1 () in
  let idx = B.local b "idx" in
  let ncs = B.fresh_label b "ncs" in
  let declare = B.fresh_label b "declare" in
  let read_turn = B.fresh_label b "read_turn" in
  let defer_head = B.fresh_label b "defer" in
  let defer_test = B.fresh_label b "defer_test" in
  let defer_restart = B.fresh_label b "defer_restart" in
  let defer_advance = B.fresh_label b "defer_advance" in
  let go_active = B.fresh_label b "go_active" in
  let scan_head = B.fresh_label b "scan_active" in
  let scan_next = B.fresh_label b "scan_next" in
  let decide = B.fresh_label b "decide" in
  let take_turn = B.fresh_label b "take_turn" in
  let cs = B.fresh_label b "cs" in
  let pass_head = B.fresh_label b "pass_turn" in
  let pass_test = B.fresh_label b "pass_test" in
  let pass_advance = B.fresh_label b "pass_advance" in
  let pass_set = B.fresh_label b "pass_set" in
  let retire = B.fresh_label b "retire" in
  B.define b ncs ~kind:Noncritical [ B.goto declare ];
  (* flag[i] := waiting *)
  B.define b declare ~kind:Entry
    [ B.action ~effects:[ set_own flag waiting ] read_turn ];
  B.define b read_turn ~kind:Entry
    [ B.action ~effects:[ set_local idx (rd turn zero) ] defer_head ];
  (* Walk from turn to self, deferring to any non-idle process on the
     way; a busy process resets the walk to the current turn. *)
  B.define b defer_head ~kind:Entry (B.ite (lv idx <>: self) defer_test go_active);
  B.define b defer_test ~kind:Entry
    (B.ite (rd flag (lv idx) <>: idle) defer_restart defer_advance);
  B.define b defer_restart ~kind:Entry
    [ B.action ~effects:[ set_local idx (rd turn zero) ] defer_head ];
  B.define b defer_advance ~kind:Entry
    [ B.action ~effects:[ set_local idx ((lv idx +: one) %: n) ] defer_head ];
  (* flag[i] := active, then check we are the only active process. *)
  B.define b go_active ~kind:Entry
    [ B.action ~effects:[ set_own flag active; set_local idx zero ] scan_head ];
  B.define b scan_head ~kind:Entry
    (B.ite
       (lv idx <: n &&: ((lv idx =: self) ||: (rd flag (lv idx) <>: active)))
       scan_next decide);
  B.define b scan_next ~kind:Entry
    [ B.action ~effects:[ set_local idx (lv idx +: one) ] scan_head ];
  (* Sole active process and the turn is ours or abandoned: enter. *)
  B.define b decide ~kind:Entry
    (B.ite
       (lv idx >=: n
       &&: ((rd turn zero =: self) ||: (rd flag (rd turn zero) =: idle)))
       take_turn declare);
  B.define b take_turn ~kind:Waiting
    [ B.action ~effects:[ set turn zero self ] cs ];
  B.define b cs ~kind:Critical [ B.goto pass_head ];
  (* Exit: pass the turn to the next non-idle process (possibly self). *)
  B.define b pass_head ~kind:Exit
    [ B.action ~effects:[ set_local idx ((rd turn zero +: one) %: n) ] pass_test ];
  B.define b pass_test ~kind:Exit
    (B.ite (rd flag (lv idx) =: idle) pass_advance pass_set);
  B.define b pass_advance ~kind:Exit
    [ B.action ~effects:[ set_local idx ((lv idx +: one) %: n) ] pass_test ];
  B.define b pass_set ~kind:Exit
    [ B.action ~effects:[ set turn zero (lv idx) ] retire ];
  B.define b retire ~kind:Exit [ B.action ~effects:[ set_own flag idle ] ncs ];
  B.build b
