open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"filter" in
  (* level[i]: the level process i is trying to pass (0 = not trying).
     victim[l]: last arrival at level l; cell 0 is unused. *)
  let level = B.shared_per_process b "level" () in
  let victim = B.shared b "victim" ~size:(-1) () in
  let l = B.local b "l" in
  let ncs = B.fresh_label b "ncs" in
  let loop = B.fresh_label b "level_loop" in
  let set_level = B.fresh_label b "set_level" in
  let set_victim = B.fresh_label b "set_victim" in
  let wait = B.fresh_label b "wait" in
  let next_level = B.fresh_label b "next_level" in
  let cs = B.fresh_label b "cs" in
  let release = B.fresh_label b "release" in
  B.define b ncs ~kind:Noncritical
    [ B.action ~effects:[ set_local l one ] loop ];
  B.define b loop ~kind:Entry (B.ite (lv l <: n) set_level cs);
  B.define b set_level ~kind:Entry
    [ B.action ~effects:[ set_own level (lv l) ] set_victim ];
  B.define b set_victim ~kind:Entry
    [ B.action ~effects:[ set victim (lv l) self ] wait ];
  (* Wait until every other process is below this level, or someone else
     became the level's victim. *)
  B.define b wait ~kind:Waiting
    (B.await
       (qall Rothers (rd level q <: lv l) ||: (rd victim (lv l) <>: self))
       next_level);
  B.define b next_level ~kind:Waiting
    [ B.action ~effects:[ set_local l (lv l +: one) ] loop ];
  B.define b cs ~kind:Critical [ B.goto release ];
  B.define b release ~kind:Exit
    [ B.action ~effects:[ set_own level zero ] ncs ];
  B.build b
