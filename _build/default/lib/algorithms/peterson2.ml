open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"peterson2" in
  let flag = B.shared_per_process b "flag" () in
  let turn = B.shared b "turn" ~size:1 () in
  let other = one -: self in
  let ncs = B.fresh_label b "ncs" in
  let raise_flag = B.fresh_label b "raise_flag" in
  let give_turn = B.fresh_label b "give_turn" in
  let wait = B.fresh_label b "wait" in
  let cs = B.fresh_label b "cs" in
  let release = B.fresh_label b "release" in
  B.define b ncs ~kind:Noncritical [ B.goto raise_flag ];
  B.define b raise_flag ~kind:Entry
    [ B.action ~effects:[ set_own flag one ] give_turn ];
  B.define b give_turn ~kind:Entry
    [ B.action ~effects:[ set turn zero other ] wait ];
  B.define b wait ~kind:Waiting
    (B.await (rd flag other =: zero ||: (rd turn zero =: self)) cs);
  B.define b cs ~kind:Critical [ B.goto release ];
  B.define b release ~kind:Exit [ B.action ~effects:[ set_own flag zero ] ncs ];
  B.build b
