(** Peterson's two-process algorithm.

    Baseline from the paper's §4 comparison: simple and bounded, but the
    [turn] variable is written by both processes, so it is not a "true"
    single-writer solution in the paper's sense.  Only meaningful with
    [nprocs = 2]. *)

val program : unit -> Mxlang.Ast.program
