(** Ticket lock, with and without modular wrap.

    Not a "true" mutual-exclusion algorithm in the paper's sense — the
    ticket grab is an atomic fetch-and-add, i.e. lower-level mutual
    exclusion — but it is the ubiquitous practical baseline and its
    overflow story contrasts nicely with Bakery++'s:

    - [program ()] uses unbounded counters: like Bakery, it overflows
      real registers ([no_overflow] fails).
    - [program_mod ()] wraps both counters mod M.  Because the hand-off
      test is pure equality, wrapping is sound as long as at most M
      processes hold tickets — model checking shows mutex holds for
      N <= M and produces a counterexample for N > M (the paper's §8.1
      question, answered for this lock). *)

val program : unit -> Mxlang.Ast.program
val program_mod : unit -> Mxlang.Ast.program
