open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let build ~wrap =
  let b =
    B.create ~title:(if wrap then "ticket_mod" else "ticket")
  in
  let next = B.shared b "next_ticket" ~size:1 ~bounded:true () in
  let serving = B.shared b "now_serving" ~size:1 ~bounded:true () in
  let my = B.local b "my" in
  let ncs = B.fresh_label b "ncs" in
  let take = B.fresh_label b "take_ticket" in
  let wait = B.fresh_label b "wait_turn" in
  let cs = B.fresh_label b "cs" in
  let release = B.fresh_label b "release" in
  let wrapped e = if wrap then e %: m else e in
  B.define b ncs ~kind:Noncritical [ B.goto take ];
  (* Atomic fetch-and-add: simultaneous-assignment semantics reads the
     pre-state, so [my] gets the old counter while the counter advances. *)
  B.define b take ~kind:Doorway
    [
      B.action
        ~effects:
          [ set_local my (rd next zero); set next zero (wrapped (rd next zero +: one)) ]
        wait;
    ];
  B.define b wait ~kind:Waiting (B.await (rd serving zero =: lv my) cs);
  B.define b cs ~kind:Critical [ B.goto release ];
  B.define b release ~kind:Exit
    [ B.action ~effects:[ set serving zero (wrapped (rd serving zero +: one)) ] ncs ];
  B.build b

let program () = build ~wrap:false
let program_mod () = build ~wrap:true
