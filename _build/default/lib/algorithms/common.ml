open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

type granularity = Coarse | Fine

let granularity_name = function Coarse -> "coarse" | Fine -> "fine"

let scan_loop b ~number ~choosing ~j ~cs =
  let loop_head = B.fresh_label b "scan" in
  let l2 = B.fresh_label b "L2" in
  let l3 = B.fresh_label b "L3" in
  let next_j = B.fresh_label b "next_j" in
  B.define b loop_head ~kind:Waiting (B.ite (lv j <: n) l2 cs);
  B.define b l2 ~kind:Waiting (B.await (rd choosing (lv j) =: zero) l3);
  (* Proceed when number[j] = 0 or (number[j], j) is not before
     (number[i], i) in ticket order. *)
  B.define b l3 ~kind:Waiting
    (B.await
       (rd number (lv j) =: zero
       ||: not_ (lex_lt (rd number (lv j), lv j) (rd_own number, self)))
       next_j);
  B.define b next_j ~kind:Waiting
    [ B.action ~effects:[ set_local j (lv j +: one) ] loop_head ];
  loop_head

let max_loop b ~number ~k ~acc ~done_ =
  let head = B.fresh_label b "max_scan" in
  let read = B.fresh_label b "max_read" in
  B.define b head ~kind:Doorway (B.ite (lv k <: n) read done_);
  B.define b read ~kind:Doorway
    [
      B.action
        ~effects:
          [
            set_local acc (ite (rd number (lv k) >: lv acc) (rd number (lv k)) (lv acc));
            set_local k (lv k +: one);
          ]
        head;
    ];
  head

let cyclic_tail b ~number ~cs ~ncs =
  let exit_ = B.fresh_label b "release" in
  B.define b cs ~kind:Critical [ B.goto exit_ ];
  B.define b exit_ ~kind:Exit [ B.action ~effects:[ set_own number zero ] ncs ]
