(** Dekker's algorithm, the first two-process mutual-exclusion solution.
    Only meaningful with [nprocs = 2]. *)

val program : unit -> Mxlang.Ast.program
