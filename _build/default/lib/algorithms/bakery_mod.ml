open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let program () =
  let b = B.create ~title:"bakery_mod_naive" in
  let choosing = B.shared_per_process b "choosing" () in
  let number = B.shared_per_process b "number" ~bounded:true () in
  let j = B.local b "j" in
  let ncs = B.fresh_label b "ncs" in
  let set_choosing = B.fresh_label b "choose" in
  let pick = B.fresh_label b "pick" in
  let unset_choosing = B.fresh_label b "done_choosing" in
  let cs = B.fresh_label b "cs" in
  B.define b ncs ~kind:Noncritical [ B.goto set_choosing ];
  B.define b set_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing one ] pick ];
  (* The unsound wrap: tickets stay < M but the ticket order breaks. *)
  B.define b pick ~kind:Doorway
    [ B.action ~effects:[ set_own number ((one +: max_arr number) %: m) ] unset_choosing ];
  let scan = Common.scan_loop b ~number ~choosing ~j ~cs in
  B.define b unset_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing zero; set_local j zero ] scan ];
  Common.cyclic_tail b ~number ~cs ~ncs;
  B.build b
