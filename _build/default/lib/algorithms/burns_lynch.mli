(** The Burns–Lynch one-bit mutual exclusion algorithm.

    Space-optimal: exactly one single-writer bit per process (mutual
    exclusion provably needs N shared bits).  Deadlock-free but not
    starvation-free and not FCFS — the minimal-space endpoint of the
    paper's §4 design space, against which Bakery++'s O(N) bounded
    registers buy fairness. *)

val program : unit -> Mxlang.Ast.program
