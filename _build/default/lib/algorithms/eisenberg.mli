(** The Eisenberg–McGuire algorithm (CACM 1972) — the classical
    starvation-free fix of Dijkstra's 1965 solution, in the direct
    ancestry of the paper's problem statement (bounded per-process flags,
    one shared turn variable).

    Flags: 0 = idle, 1 = waiting, 2 = active. *)

val program : unit -> Mxlang.Ast.program
