(** Knuth's 1966 algorithm — reference [5] of the paper: the first
    starvation-free solution to Dijkstra's problem, using a trivalent
    per-process control variable and a shared turn.

    We follow the standard modern restatement (e.g. Raynal): walk from
    the turn *downward* to self deferring to busy processes, go active,
    verify solo-activity, then claim the turn. *)

val program : unit -> Mxlang.Ast.program
