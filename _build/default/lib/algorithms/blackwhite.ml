open Mxlang.Ast
open Mxlang.Dsl
module B = Mxlang.Builder

let ticket_bound ~nprocs = nprocs

let program () =
  let b = B.create ~title:"black_white_bakery" in
  let color = B.shared b "color" ~size:1 () in
  let choosing = B.shared_per_process b "choosing" () in
  let mycolor = B.shared_per_process b "mycolor" () in
  let number = B.shared_per_process b "number" ~bounded:true () in
  let j = B.local b "j" in
  let acc = B.local b "mx" in
  let ncs = B.fresh_label b "ncs" in
  let set_choosing = B.fresh_label b "choose" in
  let take_color = B.fresh_label b "take_color" in
  let max_head = B.fresh_label b "max_same_color" in
  let max_read = B.fresh_label b "max_same_color_read" in
  let store = B.fresh_label b "store" in
  let unset_choosing = B.fresh_label b "done_choosing" in
  let w_head = B.fresh_label b "scan" in
  let w_choosing = B.fresh_label b "W_choosing" in
  let w_dispatch = B.fresh_label b "W_dispatch" in
  let w_same = B.fresh_label b "W_same_color" in
  let w_diff = B.fresh_label b "W_diff_color" in
  let next_j = B.fresh_label b "next_j" in
  let cs = B.fresh_label b "cs" in
  let flip = B.fresh_label b "flip_color" in
  let release = B.fresh_label b "release" in
  B.define b ncs ~kind:Noncritical [ B.goto set_choosing ];
  B.define b set_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing one ] take_color ];
  B.define b take_color ~kind:Doorway
    [
      B.action
        ~effects:[ set_own mycolor (rd color zero); set_local j zero; set_local acc zero ]
        max_head;
    ];
  (* number[i] := 1 + max{number[q] : mycolor[q] = mycolor[i]} — computed
     one read per step (there is no atomic colored max in real hardware,
     and none is needed for correctness). *)
  B.define b max_head ~kind:Doorway (B.ite (lv j <: n) max_read store);
  B.define b max_read ~kind:Doorway
    [
      B.action
        ~effects:
          [
            set_local acc
              (ite
                 ((rd mycolor (lv j) =: rd_own mycolor)
                 &&: (rd number (lv j) >: lv acc))
                 (rd number (lv j)) (lv acc));
            set_local j (lv j +: one);
          ]
        max_head;
    ];
  B.define b store ~kind:Doorway
    [ B.action ~effects:[ set_own number (lv acc +: one) ] unset_choosing ];
  B.define b unset_choosing ~kind:Doorway
    [ B.action ~effects:[ set_own choosing zero; set_local j zero ] w_head ];
  B.define b w_head ~kind:Waiting (B.ite (lv j <: n) w_choosing cs);
  B.define b w_choosing ~kind:Waiting
    (B.await (rd choosing (lv j) =: zero) w_dispatch);
  B.define b w_dispatch ~kind:Waiting
    (B.ite (rd mycolor (lv j) =: rd_own mycolor) w_same w_diff);
  (* Same color: ordinary bakery ticket order decides. *)
  B.define b w_same ~kind:Waiting
    (B.await
       (rd number (lv j) =: zero
       ||: not_ (lex_lt (rd number (lv j), lv j) (rd_own number, self))
       ||: (rd mycolor (lv j) <>: rd_own mycolor))
       next_j);
  (* Different color: j goes first unless the shared color already moved
     past my color (then j belongs to the next round). *)
  B.define b w_diff ~kind:Waiting
    (B.await
       (rd number (lv j) =: zero
       ||: (rd_own mycolor <>: rd color zero)
       ||: (rd mycolor (lv j) =: rd_own mycolor))
       next_j);
  B.define b next_j ~kind:Waiting
    [ B.action ~effects:[ set_local j (lv j +: one) ] w_head ];
  B.define b cs ~kind:Critical [ B.goto flip ];
  (* Exit: flip the shared color away from my color, then retire the
     ticket.  Order matters: Taubenfeld flips first. *)
  B.define b flip ~kind:Exit
    [ B.action ~effects:[ set color zero (one -: rd_own mycolor) ] release ];
  B.define b release ~kind:Exit
    [ B.action ~effects:[ set_own number zero ] ncs ];
  B.build b
