(** Building blocks shared by the bakery-family models. *)

type granularity =
  | Coarse
      (** [number[i] := 1 + maximum(...)] is one atomic step — the
          granularity at which the paper's PlusCal spec is checked *)
  | Fine
      (** the maximum is computed one register read per step, closer to
          the real algorithm; larger state space *)

val granularity_name : granularity -> string

val scan_loop :
  Mxlang.Builder.t ->
  number:Mxlang.Ast.var ->
  choosing:Mxlang.Ast.var ->
  j:Mxlang.Ast.local ->
  cs:Mxlang.Builder.label ->
  Mxlang.Builder.label
(** Lamport's waiting loop (labels L2/L3 of Algorithm 1): for each [j],
    wait until [choosing[j] = 0], then until [number[j] = 0] or
    [(number[i], i) <= (number[j], j)].  The caller must set the local
    [j] to 0 before jumping to the returned label. *)

val max_loop :
  Mxlang.Builder.t ->
  number:Mxlang.Ast.var ->
  k:Mxlang.Ast.local ->
  acc:Mxlang.Ast.local ->
  done_:Mxlang.Builder.label ->
  Mxlang.Builder.label
(** Fine-grained [maximum]: scans [number] one read per step into [acc].
    The caller must set [k] and [acc] to 0 before jumping to the returned
    label; on completion control reaches [done_] with the maximum in
    [acc]. *)

val cyclic_tail :
  Mxlang.Builder.t ->
  number:Mxlang.Ast.var ->
  cs:Mxlang.Builder.label ->
  ncs:Mxlang.Builder.label ->
  unit
(** Defines the [cs] and exit steps: critical section, then
    [number[i] := 0], then back to [ncs] (processes are cyclic, per the
    system model of the paper's §1). *)
