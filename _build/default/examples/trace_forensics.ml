(* Forensics workflow: catch the paper's "Bakery malfunctions after an
   overflow" in the act, then pin it down three different ways.

   1. Run the original Bakery on tiny wrapping registers (M = 4) in the
      simulator with a full event log until mutual exclusion breaks.
   2. Show the log around the first violation (what a crash-dump reader
      would see) and export the whole run as CSV.
   3. Extract the exact scheduling sequence and REPLAY it — same seed or
      not, the violation reproduces deterministically.
   4. Ask the model checker for the canonical shortest overflow run and
      write it as a Graphviz trace for documentation.

   Run with:  dune exec examples/trace_forensics.exe *)

let nprocs = 3
let bound = 4

let find_violation_time events =
  List.find_map
    (function Schedsim.Event.Mutex_violation { time; _ } -> Some time | _ -> None)
    events

let () =
  let prog = Algorithms.Bakery.program () in
  let cfg =
    {
      (Schedsim.Runner.default_config ~nprocs ~bound) with
      strategy = Schedsim.Scheduler.Uniform 42;
      overflow_policy = Schedsim.Runner.Wrap;
      max_steps = 400_000;
      record_events = true;
    }
  in
  print_endline "1. Running Bakery on wrapping 3-bit registers until it breaks...";
  let r = Schedsim.Runner.run prog cfg in
  Printf.printf "   %d steps, %d CS entries, %d register wraps, %d mutex violations\n"
    r.steps
    (Schedsim.Runner.total_cs r)
    r.overflow_events r.mutex_violations;
  (match find_violation_time r.events with
  | None ->
      print_endline "   no violation this run (try another seed)";
      exit 0
  | Some t ->
      Printf.printf "\n2. First mutual-exclusion violation at step %d; log around it:\n" t;
      List.iter
        (fun e ->
          let et = Schedsim.Event.time e in
          if et >= t - 6 && et <= t + 2 then
            Printf.printf "   %s\n" (Schedsim.Event.to_string prog e))
        r.events;
      let csv = Schedsim.History.to_csv prog r in
      let csv_file = Filename.temp_file "bakery_run" ".csv" in
      let oc = open_out csv_file in
      output_string oc csv;
      close_out oc;
      Printf.printf "   full event log: %s (%d bytes of CSV)\n" csv_file
        (String.length csv));
  print_endline "\n3. Deterministic replay of the recorded schedule:";
  let schedule = Schedsim.History.schedule_of r in
  let replay =
    Schedsim.Runner.run prog
      {
        cfg with
        strategy = Schedsim.Scheduler.Replay schedule;
        max_steps = Array.length schedule;
        record_events = false;
      }
  in
  Printf.printf "   replayed %d decisions: %d violations (original: %d) — %s\n"
    (Array.length schedule) replay.mutex_violations r.mutex_violations
    (if replay.mutex_violations = r.mutex_violations then "exact reproduction"
     else "MISMATCH");
  assert (replay.mutex_violations = r.mutex_violations);
  print_endline "\n4. The canonical shortest overflow, from the model checker:";
  let sys = Modelcheck.System.make prog ~nprocs:2 ~bound:2 in
  let mc =
    Modelcheck.Explore.run ~invariants:[ Modelcheck.Invariant.no_overflow ] sys
  in
  match mc.outcome with
  | Modelcheck.Explore.Violation { trace; _ } ->
      Printf.printf "   %d-state counterexample (N=2, M=2); as a trace graph:\n"
        (List.length trace);
      Format.printf "   @[%a@]@." (Modelcheck.Trace.pp_compact sys) trace;
      let dot = Modelcheck.Dot.of_trace sys trace in
      let dot_file = Filename.temp_file "bakery_overflow" ".dot" in
      let oc = open_out dot_file in
      output_string oc dot;
      close_out oc;
      Printf.printf "   DOT written to %s (render: dot -Tsvg %s)\n" dot_file
        dot_file
  | _ -> print_endline "   unexpected: no overflow found"
