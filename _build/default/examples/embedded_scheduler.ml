(* The paper's §8.1 question, on the simulator: a tiny embedded machine
   whose ticket registers hold only a handful of values (say a 2-bit
   field, M = 3), shared by more tasks than ticket values (N = 8).

   Question: "if there are more customers than the maximum value that
   may be written on a ticket, can every process that wishes to enter
   still do so eventually?"  Empirically, with Bakery++: yes — safety is
   unconditional, every task keeps being served, and the cost appears as
   overflow resets and time parked at the L1 gate.

   We also replay the paper's crash-restart failure model (§1.2, cond 4)
   on top: tasks crash at arbitrary points, reset their own registers and
   rejoin.

   Run with:  dune exec examples/embedded_scheduler.exe *)

let () =
  let nprocs = 8 and bound = 3 in
  let prog = Core.Bakery_pp_model.program () in
  let steps = 400_000 in
  let run ~crash =
    let cfg =
      {
        (Schedsim.Runner.default_config ~nprocs ~bound) with
        strategy = Schedsim.Scheduler.Uniform 77;
        max_steps = steps;
        crash =
          (if crash then
             Some
               {
                 Schedsim.Runner.crash_prob = 0.0005;
                 restart_delay = 200;
                 only_outside_cs = false;
               }
           else None);
      }
    in
    Schedsim.Runner.run prog cfg
  in
  let report title (r : Schedsim.Runner.result) =
    Printf.printf "\n%s (%d tasks, M = %d, %d steps)\n" title nprocs bound
      r.steps;
    Printf.printf "  critical-section entries: %d total, per task: [%s]\n"
      (Schedsim.Runner.total_cs r)
      (String.concat "; "
         (Array.to_list (Array.map string_of_int r.cs_entries)));
    Printf.printf "  overflow events: %d   mutex violations: %d\n"
      r.overflow_events r.mutex_violations;
    Printf.printf "  overflow resets: %d   gate passes: %d   crashes: %d\n"
      (Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label)
      (Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.gate_label)
      r.crashes;
    Printf.printf "  fairness (Jain): %.3f   FCFS inversions: %d\n"
      (Schedsim.Metrics.jain_fairness r)
      r.fcfs_inversions;
    assert (r.overflow_events = 0);
    assert (r.mutex_violations = 0);
    assert (Array.for_all (fun c -> c > 0) r.cs_entries)
  in
  report "N > M, fault-free" (run ~crash:false);
  report "N > M, with crash-restart" (run ~crash:true);
  print_endline
    "\nEvery task kept being served: condition 2 of 1.2 held empirically \
     even with N > M.";
  (* And exhaustively, for a small instance: *)
  let r = Core.Verify.check_bakery_pp ~nprocs:4 ~bound:2 () in
  let sys = Core.Verify.system ~nprocs:4 ~bound:2 () in
  print_newline ();
  print_endline (Modelcheck.Report.result_string sys r)
