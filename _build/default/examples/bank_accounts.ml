(* Resource-access management, the paper's motivating setting (§1): a
   small "bank" whose accounts are a shared resource.  Four teller
   domains move money between accounts; the invariant is conservation of
   the total balance, which only holds if transfers are mutually
   exclusive.

   The tellers coordinate with Bakery++ — no lower-level mutual
   exclusion, no test-and-set, just single-writer bounded registers —
   exactly the "coordination scheme" of the paper's abstract.

   Run with:  dune exec examples/bank_accounts.exe *)

let accounts = 8
let initial_balance = 1_000
let transfers_per_teller = 5_000

type bank = { balances : int array }

let transfer bank ~src ~dst ~amount =
  (* Deliberately racy unless called under the lock: read, compute,
     write with an interleaving window. *)
  let s = bank.balances.(src) in
  let d = bank.balances.(dst) in
  if s >= amount then begin
    bank.balances.(src) <- s - amount;
    bank.balances.(dst) <- d + amount
  end

let total bank = Array.fold_left ( + ) 0 bank.balances

let () =
  let nprocs = 4 in
  let bank = { balances = Array.make accounts initial_balance } in
  let expected_total = total bank in
  let lock = Core.Bakery_pp_lock.create_lock ~nprocs ~bound:255 in
  let teller i () =
    let rng = Prng.Rng.create (1000 + i) in
    for _ = 1 to transfers_per_teller do
      let src = Prng.Rng.int rng accounts in
      let dst = Prng.Rng.int rng accounts in
      let amount = 1 + Prng.Rng.int rng 50 in
      Core.Bakery_pp_lock.acquire lock i;
      if src <> dst then transfer bank ~src ~dst ~amount;
      Core.Bakery_pp_lock.release lock i
    done
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (teller i)) in
  Array.iter Domain.join domains;
  Printf.printf "accounts after %d concurrent transfers:\n"
    (nprocs * transfers_per_teller);
  Array.iteri (fun i b -> Printf.printf "  account %d: %4d\n" i b) bank.balances;
  Printf.printf "total = %d (expected %d)\n" (total bank) expected_total;
  assert (total bank = expected_total);
  let s = Core.Bakery_pp_lock.snapshot lock in
  Printf.printf
    "money conserved. lock stats: %d acquires, peak ticket %d <= %d.\n"
    s.acquires s.peak_ticket
    (Core.Bakery_pp_lock.bound lock)
