(* The paper's §6 verification, live: model-check Bakery++ for mutual
   exclusion and overflow-freedom (TLC-style report), show the original
   Bakery's overflow counterexample, confirm the refinement claim, and
   exhibit the §6.3 starvation lasso.  Finally, emit the TLA+ module for
   Bakery++, closing the loop with the paper's PlusCal specification.

   Run with:  dune exec examples/model_check_demo.exe *)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  section "1. Bakery++ satisfies mutex and no-overflow (paper Theorem, 6.1-6.2)";
  let nprocs = 3 and bound = 3 in
  let sys = Core.Verify.system ~nprocs ~bound () in
  let r = Core.Verify.check_bakery_pp ~nprocs ~bound () in
  print_endline (Modelcheck.Report.result_string sys r);

  section "2. Original Bakery overflows the same registers (paper 3)";
  let bsys =
    Modelcheck.System.make (Algorithms.Bakery.program ()) ~nprocs:2 ~bound:2
  in
  let rb = Core.Verify.check_bakery_overflows ~nprocs:2 ~bound:2 () in
  print_endline (Modelcheck.Report.result_string bsys rb);

  section "3. Bakery++ refines Bakery (paper 6.2)";
  let impl = Core.Verify.system ~nprocs:2 ~bound:2 () in
  let spec =
    Modelcheck.System.make (Algorithms.Bakery.program ()) ~nprocs:2 ~bound:2
  in
  let rr = Core.Verify.refines_bakery ~nprocs:2 ~bound:2 () in
  print_endline (Modelcheck.Report.refinement_string ~impl ~spec rr);

  section "4. The price: a starvation lasso at the L1 gate (paper 6.3)";
  let rl =
    Core.Verify.starvation_lasso ~require_victim_disabled:true ~nprocs:3
      ~bound:2 ()
  in
  let lsys = Core.Verify.system ~nprocs:3 ~bound:2 () in
  print_endline (Modelcheck.Report.lasso_string lsys ~victim:0 rl);

  section "5. TLA+ export of the checked model";
  print_endline (Mxlang.Tla.export (Core.Bakery_pp_model.program ()))
