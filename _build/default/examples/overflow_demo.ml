(* The paper's §3 problem on real hardware registers, scaled down:
   8-bit ticket registers (M = 255), two domains hammering the lock.

   Act 1 — original Bakery over trapping bounded registers: the first
   store of a ticket > 255 raises, usually within milliseconds.

   Act 2 — original Bakery over *wrapping* registers (what an unchecked
   machine register really does): the lock keeps "working" but loses
   mutual exclusion; we catch it corrupting a guarded counter.

   Act 3 — Bakery++ with the same 8-bit registers: runs indefinitely,
   by construction never overflows; we show its instrumentation.

   Run with:  dune exec examples/overflow_demo.exe *)

let m = 255
let nprocs = 2

let act1 () =
  print_endline "Act 1: Bakery on 8-bit registers, Trap policy";
  let lock = Locks.Bakery_bounded_lock.create ~nprocs ~bound:m in
  let r =
    Harness.Throughput.run_until_overflow ~max_seconds:10.0
      ~make:(fun () ->
        Locks.Lock_intf.instance_of (module Locks.Bakery_bounded_lock) lock)
      ~recover:(Locks.Bakery_bounded_lock.crash_reset lock)
      ~nprocs ()
  in
  if r.overflowed then
    Printf.printf
      "  OVERFLOW after %d acquires, %.3f s: a ticket needed the value %d.\n"
      r.acquires_before r.seconds_before (m + 1)
  else
    Printf.printf
      "  no overflow within %.1f s (%d acquires) — contention was too low \
       on this machine; try again or raise the load.\n"
      r.seconds_before r.acquires_before

let act2 () =
  print_endline "Act 2: Bakery on wrapping 8-bit registers (silent corruption)";
  let lock =
    Locks.Bakery_bounded_lock.create_with ~policy:Registers.Bounded.Wrap
      ~nprocs ~bound:m
  in
  let counter = ref 0 in
  let per = 200_000 in
  let worker i () =
    for _ = 1 to per do
      Locks.Bakery_bounded_lock.acquire lock i;
      counter := !counter + 1;
      Locks.Bakery_bounded_lock.release lock i
    done
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  let expected = nprocs * per in
  let overflows = Locks.Bakery_bounded_lock.overflows lock in
  Printf.printf "  counter = %d, expected %d (lost %d); register wraps: %d\n"
    !counter expected (expected - !counter) overflows;
  if !counter <> expected then
    print_endline
      "  mutual exclusion failed silently — the malfunction the paper warns \
       about."
  else
    print_endline
      "  no corruption observed this run (wraps may still have occurred); \
       the model checker proves the hazard is real."

let act3 () =
  print_endline "Act 3: Bakery++ on the same 8-bit registers";
  let lock = Core.Bakery_pp_lock.create_lock ~nprocs ~bound:m in
  let counter = ref 0 in
  let per = 200_000 in
  let worker i () =
    for _ = 1 to per do
      Core.Bakery_pp_lock.acquire lock i;
      counter := !counter + 1;
      Core.Bakery_pp_lock.release lock i
    done
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  let s = Core.Bakery_pp_lock.snapshot lock in
  Printf.printf
    "  counter = %d (exact); peak ticket %d <= %d; resets %d; gate spins %d\n"
    !counter s.peak_ticket m s.resets s.gate_spins;
  assert (!counter = nprocs * per);
  print_endline "  no overflow can ever occur: the store site checks first."

let () =
  act1 ();
  act2 ();
  act3 ()
