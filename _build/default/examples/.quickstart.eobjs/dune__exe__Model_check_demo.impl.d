examples/model_check_demo.ml: Algorithms Core Modelcheck Mxlang Printf
