examples/quickstart.mli:
