examples/embedded_scheduler.ml: Array Core Modelcheck Printf Schedsim String
