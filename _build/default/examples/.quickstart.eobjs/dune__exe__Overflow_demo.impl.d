examples/overflow_demo.ml: Array Core Domain Harness Locks Printf Registers
