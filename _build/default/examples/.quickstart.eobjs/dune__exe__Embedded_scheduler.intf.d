examples/embedded_scheduler.mli:
