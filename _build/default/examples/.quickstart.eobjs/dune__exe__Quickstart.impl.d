examples/quickstart.ml: Array Core Domain Printf
