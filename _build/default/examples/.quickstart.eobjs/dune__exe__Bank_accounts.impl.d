examples/bank_accounts.ml: Array Core Domain Printf Prng
