examples/trace_forensics.ml: Algorithms Array Filename Format List Modelcheck Printf Schedsim String
