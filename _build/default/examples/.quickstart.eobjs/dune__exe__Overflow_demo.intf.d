examples/overflow_demo.mli:
