(* Quickstart: four domains increment one shared counter, serialized by
   a Bakery++ lock with 8-bit ticket registers (M = 255).

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let nprocs = 4 in
  let increments_per_domain = 10_000 in
  (* M = 255: the tiny-register setting where the original Bakery would
     be at risk; Bakery++ guarantees no ticket ever exceeds it. *)
  let lock = Core.Bakery_pp_lock.create_lock ~nprocs ~bound:255 in
  let counter = ref 0 in
  let worker i () =
    for _ = 1 to increments_per_domain do
      Core.Bakery_pp_lock.acquire lock i;
      (* Unprotected increment: any mutual-exclusion failure would lose
         updates and break the final assertion. *)
      counter := !counter + 1;
      Core.Bakery_pp_lock.release lock i
    done
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  let snapshot = Core.Bakery_pp_lock.snapshot lock in
  Printf.printf "counter        = %d (expected %d)\n" !counter
    (nprocs * increments_per_domain);
  Printf.printf "acquires       = %d\n" snapshot.acquires;
  Printf.printf "peak ticket    = %d (bound %d — never exceeded, by theorem)\n"
    snapshot.peak_ticket
    (Core.Bakery_pp_lock.bound lock);
  Printf.printf "overflow resets = %d\n" snapshot.resets;
  assert (!counter = nprocs * increments_per_domain);
  print_endline "mutual exclusion held; no register overflow possible."
