(* Tests for the core library — the paper's contribution.  The headline
   checks mirror §6: Bakery++ satisfies mutual exclusion and never
   overflows (model checking, randomized simulation, property tests and
   real domains), it refines Bakery, and the instrumented lock's
   counters behave. *)

module MC = Modelcheck

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* ------------------------------------------------------- model checking *)

let theorem_holds_small () =
  (* The paper's theorem at several sizes, both invariants at once. *)
  List.iter
    (fun (n, m) ->
      let r = Core.Verify.check_bakery_pp ~nprocs:n ~bound:m () in
      match r.outcome with
      | MC.Explore.Pass -> ()
      | _ ->
          Alcotest.fail
            (Printf.sprintf "bakery_pp N=%d M=%d: expected Pass" n m))
    [ (1, 1); (1, 3); (2, 1); (2, 2); (2, 3); (3, 2) ]

let theorem_holds_fine () =
  let r =
    Core.Verify.check_bakery_pp ~granularity:Algorithms.Common.Fine ~nprocs:2
      ~bound:2 ()
  in
  match r.outcome with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "fine-grained bakery_pp: expected Pass"

let bakery_contrast () =
  let r = Core.Verify.check_bakery_overflows ~nprocs:2 ~bound:2 () in
  (match r.outcome with
  | MC.Explore.Violation { invariant = "no-overflow"; trace } ->
      check bool_t "counterexample nonempty" true (MC.Trace.length trace > 5)
  | _ -> Alcotest.fail "original bakery must violate no-overflow");
  let m = Core.Verify.check_bakery_mutex ~nprocs:2 ~bound:2 () in
  match m.outcome with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "original bakery satisfies mutex"

let refinement_and_lasso () =
  let r = Core.Verify.refines_bakery ~nprocs:2 ~bound:2 () in
  check bool_t "refines bakery" true (r.included && r.complete);
  let l =
    Core.Verify.starvation_lasso ~require_victim_disabled:true ~nprocs:3
      ~bound:2 ()
  in
  check bool_t "starvation lasso exists at the gate" true (l.witness <> None)

let gate_and_reset_labels () =
  let p = Core.Bakery_pp_model.program () in
  check bool_t "gate label present" true
    (Mxlang.Ast.pc_by_name p Core.Bakery_pp_model.gate_label >= 0);
  check bool_t "reset label present" true
    (Mxlang.Ast.pc_by_name p Core.Bakery_pp_model.reset_label >= 0)

let model_structure () =
  (* Exactly two shared arrays, both single-writer; number is bounded;
     no extra variables — the paper's "no additional memory" claim. *)
  let p = Core.Bakery_pp_model.program () in
  check int_t "two shared variables only" 2 p.Mxlang.Ast.nvars;
  check bool_t "all single-writer" true
    (Array.for_all Fun.id p.Mxlang.Ast.per_process);
  (* Same variables as original Bakery. *)
  let b = Algorithms.Bakery.program () in
  check bool_t "same shared variable names as Bakery" true
    (List.sort compare (Array.to_list p.Mxlang.Ast.var_names)
    = List.sort compare (Array.to_list b.Mxlang.Ast.var_names))

(* ------------------------------------------------------------ ablations *)

let variant_check v ~nprocs ~bound =
  let prog = Core.Bakery_pp_model.program_variant v in
  let sys = MC.System.make prog ~nprocs ~bound in
  (MC.Explore.run ~invariants:[ MC.Invariant.mutex; MC.Invariant.no_overflow ] sys)
    .outcome

let ablation_no_gate_safe () =
  (* A1: the gate is not needed for the theorem. *)
  match
    variant_check
      { Core.Bakery_pp_model.paper_variant with with_gate = false }
      ~nprocs:3 ~bound:2
  with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "gateless Bakery++ must still satisfy both invariants"

let ablation_increment_first_unsafe () =
  (* A2: store order is load-bearing — masked at N=2, broken at N=3. *)
  let unsafe =
    { Core.Bakery_pp_model.paper_variant with increment_first = true }
  in
  (match variant_check unsafe ~nprocs:2 ~bound:2 with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "increment-first is (coincidentally) safe at N=2");
  match variant_check unsafe ~nprocs:3 ~bound:2 with
  | MC.Explore.Violation { invariant = "no-overflow"; _ } -> ()
  | _ -> Alcotest.fail "increment-first must overflow at N=3"

let ablation_eq_gate_atomic () =
  (* A3: with atomic (in-range) reads, = and >= agree. *)
  match
    variant_check
      { Core.Bakery_pp_model.paper_variant with gate_exact = true }
      ~nprocs:3 ~bound:2
  with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "equality-gate variant must pass under atomic reads"

let variant_titles_distinct () =
  let open Core.Bakery_pp_model in
  let titles =
    List.map
      (fun v -> (program_variant v).Mxlang.Ast.title)
      [
        paper_variant;
        { paper_variant with with_gate = false };
        { paper_variant with gate_exact = true };
        { paper_variant with increment_first = true };
      ]
  in
  check int_t "4 distinct titles" 4
    (List.length (List.sort_uniq compare titles))

(* ---------------------------------------------------------- simulation *)

let simulated_long_runs () =
  List.iter
    (fun (n, m, seed) ->
      let prog = Core.Bakery_pp_model.program () in
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs:n ~bound:m) with
          strategy = Schedsim.Scheduler.Uniform seed;
          max_steps = 120_000;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      check int_t
        (Printf.sprintf "no overflow (N=%d M=%d)" n m)
        0 r.overflow_events;
      check int_t
        (Printf.sprintf "no mutex violation (N=%d M=%d)" n m)
        0 r.mutex_violations;
      check bool_t "progress" true (Schedsim.Runner.total_cs r > 0))
    [ (2, 2, 1); (3, 4, 2); (5, 3, 3); (8, 2, 4) ]

let prop_no_overflow_random_schedules =
  QCheck.Test.make
    ~name:"Bakery++ never overflows under random schedules, sizes and crashes"
    ~count:25
    QCheck.(
      quad (int_range 2 5) (int_range 1 6) small_int (int_range 0 1))
    (fun (nprocs, bound, seed, crashy) ->
      let prog = Core.Bakery_pp_model.program () in
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs ~bound) with
          strategy = Schedsim.Scheduler.Uniform seed;
          max_steps = 30_000;
          crash =
            (if crashy = 1 then
               Some
                 {
                   Schedsim.Runner.crash_prob = 0.005;
                   restart_delay = 10;
                   only_outside_cs = false;
                 }
             else None);
          seed;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      r.overflow_events = 0 && r.mutex_violations = 0)

let prop_peak_ticket_bounded =
  QCheck.Test.make
    ~name:"simulated Bakery++ ticket registers never exceed M" ~count:25
    QCheck.(pair (int_range 2 4) (int_range 1 5))
    (fun (nprocs, bound) ->
      let prog = Core.Bakery_pp_model.program () in
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs ~bound) with
          strategy = Schedsim.Scheduler.Uniform (nprocs + bound);
          max_steps = 20_000;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      (* final_shared holds every register; all must be <= bound. *)
      Array.for_all (fun v -> v <= bound) r.final_shared)

(* -------------------------------------------------------------- runtime *)

let lock_basic () =
  let lock = Core.Bakery_pp_lock.create_lock ~nprocs:1 ~bound:4 in
  Core.Bakery_pp_lock.acquire lock 0;
  Core.Bakery_pp_lock.release lock 0;
  let s = Core.Bakery_pp_lock.snapshot lock in
  check int_t "one acquire" 1 s.acquires;
  check int_t "peak is 1" 1 s.peak_ticket;
  check int_t "no resets" 0 s.resets;
  check int_t "bound accessor" 4 (Core.Bakery_pp_lock.bound lock);
  check int_t "nprocs accessor" 1 (Core.Bakery_pp_lock.nprocs lock)

let lock_validation () =
  (match Core.Bakery_pp_lock.create_lock ~nprocs:0 ~bound:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nprocs 0 rejected");
  match Core.Bakery_pp_lock.create_lock ~nprocs:2 ~bound:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 rejected"

let lock_stress_tiny_bound () =
  (* M = 1: the tightest legal register.  Mutual exclusion must still be
     exact and no Overflow_bug may escape. *)
  let nprocs = 3 and per = 1_000 in
  let lock = Core.Bakery_pp_lock.create_lock ~nprocs ~bound:1 in
  let counter = ref 0 in
  let worker i () =
    for _ = 1 to per do
      Core.Bakery_pp_lock.acquire lock i;
      let v = !counter in
      counter := v + 1;
      Core.Bakery_pp_lock.release lock i
    done
  in
  let ds = Array.init nprocs (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join ds;
  check int_t "exact count under M=1" (nprocs * per) !counter;
  let s = Core.Bakery_pp_lock.snapshot lock in
  check int_t "all acquires counted" (nprocs * per) s.acquires;
  check bool_t "peak <= bound" true (s.peak_ticket <= 1)

let battery_passes () =
  let b = Core.Verify.verify_all ~nprocs:3 ~bound:2 () in
  check bool_t "invariants" true b.invariants_hold;
  check bool_t "bakery overflows" true b.bakery_overflows;
  check bool_t "refinement" true b.refinement_holds;
  check bool_t "gate lasso at N=3" true b.gate_lasso_exists;
  check bool_t "waiting room starvation-free" true b.waiting_room_lasso_free;
  check bool_t "report is readable" true (String.length b.report > 100)

let lock_instance_registry () =
  let f = Harness.Registry.find_family "bakery_pp" in
  check bool_t "needs bound" true f.needs_bound;
  let inst = f.make ~nprocs:2 ~bound:8 in
  inst.acquire 1;
  inst.release 1;
  check int_t "space is 2N" 4 inst.space_words

let () =
  Alcotest.run "core"
    [
      ( "verify",
        [
          Alcotest.test_case "theorem at small sizes" `Quick theorem_holds_small;
          Alcotest.test_case "theorem, fine granularity" `Quick
            theorem_holds_fine;
          Alcotest.test_case "bakery contrast (overflow vs mutex)" `Quick
            bakery_contrast;
          Alcotest.test_case "refinement and lasso" `Quick refinement_and_lasso;
          Alcotest.test_case "model labels" `Quick gate_and_reset_labels;
          Alcotest.test_case "no extra variables" `Quick model_structure;
          Alcotest.test_case "full battery (verify_all)" `Slow battery_passes;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "A1: gateless variant stays safe" `Quick
            ablation_no_gate_safe;
          Alcotest.test_case "A2: increment-first overflows at N=3" `Quick
            ablation_increment_first_unsafe;
          Alcotest.test_case "A3: equality gate under atomic reads" `Quick
            ablation_eq_gate_atomic;
          Alcotest.test_case "variant titles distinct" `Quick
            variant_titles_distinct;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "long randomized runs" `Quick simulated_long_runs;
          QCheck_alcotest.to_alcotest prop_no_overflow_random_schedules;
          QCheck_alcotest.to_alcotest prop_peak_ticket_bounded;
        ] );
      ( "lock",
        [
          Alcotest.test_case "single participant" `Quick lock_basic;
          Alcotest.test_case "argument validation" `Quick lock_validation;
          Alcotest.test_case "stress with M=1" `Slow lock_stress_tiny_bound;
          Alcotest.test_case "registry instance" `Quick lock_instance_registry;
        ] );
    ]
