test/test_locks.ml: Alcotest Array Atomic Core Domain Harness List Locks Printf Registers Unix
