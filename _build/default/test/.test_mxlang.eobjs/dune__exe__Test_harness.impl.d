test/test_harness.ml: Alcotest Array Harness List Locks Prng String
