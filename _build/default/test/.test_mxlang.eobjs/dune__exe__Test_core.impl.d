test/test_core.ml: Alcotest Algorithms Array Core Domain Fun Harness List Modelcheck Mxlang Printf QCheck QCheck_alcotest Schedsim String
