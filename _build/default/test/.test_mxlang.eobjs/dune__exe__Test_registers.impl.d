test/test_registers.ml: Alcotest Array Domain Fun List Printf Prng QCheck QCheck_alcotest Registers
