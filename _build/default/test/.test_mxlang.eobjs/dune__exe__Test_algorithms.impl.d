test/test_algorithms.ml: Alcotest Algorithms Array Core Harness List Modelcheck Mxlang Printf String
