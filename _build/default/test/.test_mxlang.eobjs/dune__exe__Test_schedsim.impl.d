test/test_schedsim.ml: Alcotest Algorithms Array Core List Mxlang Printf Schedsim String
