test/test_schedsim.mli:
