test/test_modelcheck.ml: Alcotest Algorithms Array Core List Modelcheck Mxlang Printf String
