test/test_mxlang.mli:
