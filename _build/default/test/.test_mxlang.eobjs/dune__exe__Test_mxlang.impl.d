test/test_mxlang.ml: Alcotest Array Ast Builder Core Dsl Eval List Modelcheck Mxlang Pretty Printf Prng QCheck QCheck_alcotest Schedsim String Tla Validate
