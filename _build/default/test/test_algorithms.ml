(* Model-zoo tests: every algorithm model is statically valid, satisfies
   (or demonstrably violates) mutual exclusion at small sizes, and
   carries the structural properties the experiments rely on (doorway
   marking, single-writer discipline, bounded flags). *)

module MC = Modelcheck

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let mutex_outcome program ~nprocs ~bound ?constraint_ () =
  let sys = MC.System.make program ~nprocs ~bound in
  (MC.Explore.run ~invariants:[ MC.Invariant.mutex ] ?constraint_ sys).outcome

let expect_pass name outcome =
  match outcome with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail (name ^ ": expected mutex to hold")

let expect_mutex_violation name outcome =
  match outcome with
  | MC.Explore.Violation { invariant = "mutual-exclusion"; _ } -> ()
  | _ -> Alcotest.fail (name ^ ": expected a mutex violation")

(* ------------------------------------------------------------ validity *)

let all_models_valid () =
  List.iter
    (fun (name, prog) ->
      match Mxlang.Validate.assert_valid prog with
      | () -> ()
      | exception Invalid_argument msg ->
          Alcotest.fail (Printf.sprintf "%s invalid: %s" name msg))
    Harness.Registry.models

let all_models_have_cs () =
  List.iter
    (fun (name, prog) ->
      check bool_t (name ^ " has a critical step") true
        (Array.exists
           (fun (s : Mxlang.Ast.step) -> s.kind = Mxlang.Ast.Critical)
           prog.Mxlang.Ast.steps))
    Harness.Registry.models

let registry_lookup () =
  check bool_t "model_names nonempty" true
    (List.length Harness.Registry.model_names >= 14);
  let p = Harness.Registry.find_model "bakery_pp" in
  check bool_t "find_model builds" true (p.Mxlang.Ast.title <> "");
  match Harness.Registry.find_model "no_such" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown model must raise"

(* ------------------------------------------------ positive mutex checks *)

let cap c = Core.Verify.ticket_cap_constraint ~cap:c

let bakery_mutex () =
  expect_pass "bakery coarse N2"
    (mutex_outcome (Algorithms.Bakery.program ()) ~nprocs:2 ~bound:2
       ~constraint_:(cap 4) ());
  expect_pass "bakery fine N2"
    (mutex_outcome
       (Algorithms.Bakery.program ~granularity:Algorithms.Common.Fine ())
       ~nprocs:2 ~bound:2 ~constraint_:(cap 4) ());
  expect_pass "bakery coarse N3"
    (mutex_outcome (Algorithms.Bakery.program ()) ~nprocs:3 ~bound:2
       ~constraint_:(cap 4) ())

let blackwhite_mutex_and_bounded () =
  let sys =
    MC.System.make (Algorithms.Blackwhite.program ()) ~nprocs:2 ~bound:2
  in
  let r =
    MC.Explore.run
      ~invariants:[ MC.Invariant.mutex; MC.Invariant.no_overflow ]
      sys
  in
  (match r.outcome with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "black-white: mutex + tickets <= N expected");
  check int_t "ticket bound is N" 2 (Algorithms.Blackwhite.ticket_bound ~nprocs:2)

let two_process_classics () =
  expect_pass "peterson2"
    (mutex_outcome (Algorithms.Peterson2.program ()) ~nprocs:2 ~bound:4 ());
  expect_pass "dekker"
    (mutex_outcome (Algorithms.Dekker.program ()) ~nprocs:2 ~bound:4 ())

let n_process_algorithms () =
  expect_pass "filter N3"
    (mutex_outcome (Algorithms.Filter_lock.program ()) ~nprocs:3 ~bound:4 ());
  expect_pass "szymanski N3"
    (mutex_outcome (Algorithms.Szymanski.program ()) ~nprocs:3 ~bound:4 ());
  expect_pass "tas N3"
    (mutex_outcome (Algorithms.Tas_model.program ()) ~nprocs:3 ~bound:4 ());
  expect_pass "fast_mutex N3"
    (mutex_outcome (Algorithms.Fast_mutex.program ()) ~nprocs:3 ~bound:4 ());
  expect_pass "burns_lynch N4"
    (mutex_outcome (Algorithms.Burns_lynch.program ()) ~nprocs:4 ~bound:4 ());
  expect_pass "eisenberg_mcguire N3"
    (mutex_outcome (Algorithms.Eisenberg.program ()) ~nprocs:3 ~bound:4 ());
  expect_pass "knuth N3"
    (mutex_outcome (Algorithms.Knuth.program ()) ~nprocs:3 ~bound:4 ())

let ticket_variants () =
  (* Unbounded ticket lock: mutex under a counter cap. *)
  let next_cap cap sys st =
    let p = MC.System.program sys in
    let lay = MC.System.layout sys in
    let v = Mxlang.Ast.var_by_name p "next_ticket" in
    MC.State.shared_cell lay st v 0 <= cap
  in
  expect_pass "ticket N3"
    (mutex_outcome (Algorithms.Ticket_model.program ()) ~nprocs:3 ~bound:8
       ~constraint_:(next_cap 8) ());
  (* Modular: safe iff N <= M (the paper's §8.1 boundary, exactly). *)
  expect_pass "ticket_mod N2 M2"
    (mutex_outcome (Algorithms.Ticket_model.program_mod ()) ~nprocs:2 ~bound:2 ());
  expect_pass "ticket_mod N3 M3"
    (mutex_outcome (Algorithms.Ticket_model.program_mod ()) ~nprocs:3 ~bound:3 ());
  expect_mutex_violation "ticket_mod N3 M2"
    (mutex_outcome (Algorithms.Ticket_model.program_mod ()) ~nprocs:3 ~bound:2 ())

(* ------------------------------------------------ negative mutex checks *)

let no_lock_violates () =
  expect_mutex_violation "no_lock"
    (mutex_outcome (Algorithms.No_lock.program ()) ~nprocs:2 ~bound:2 ())

let naive_modulo_violates () =
  expect_mutex_violation "bakery_mod_naive N2 M3"
    (mutex_outcome (Algorithms.Bakery_mod.program ()) ~nprocs:2 ~bound:3 ())

let dekker_needs_two () =
  (* Dekker with 3 processes is nonsense: "the other process" is 1 - i,
     which for process 2 is register -1.  The checker surfaces the
     out-of-range access instead of silently passing. *)
  match mutex_outcome (Algorithms.Dekker.program ()) ~nprocs:3 ~bound:4 () with
  | exception Mxlang.Eval.Error _ -> ()
  | _ -> Alcotest.fail "dekker at N=3 must fail loudly"

(* --------------------------------------------------------- structural *)

let single_writer_discipline () =
  (* bakery, bakery_pp: every shared variable is per-process
     single-writer — the property the paper emphasises. *)
  List.iter
    (fun name ->
      let p = Harness.Registry.find_model name in
      Array.iteri
        (fun v per ->
          check bool_t
            (Printf.sprintf "%s: %s single-writer" name p.Mxlang.Ast.var_names.(v))
            true per)
        p.Mxlang.Ast.per_process)
    [ "bakery"; "bakery_pp" ];
  (* black-white bakery and peterson2 are NOT single-writer. *)
  let bw = Harness.Registry.find_model "black_white_bakery" in
  check bool_t "black-white has a multi-writer variable" true
    (Array.exists not bw.Mxlang.Ast.per_process);
  let p2 = Harness.Registry.find_model "peterson2" in
  check bool_t "peterson2 has a multi-writer variable" true
    (Array.exists not p2.Mxlang.Ast.per_process)

let doorway_marking () =
  List.iter
    (fun (name, expected) ->
      let p = Harness.Registry.find_model name in
      check bool_t
        (Printf.sprintf "%s doorway marking" name)
        expected
        (Array.exists
           (fun (s : Mxlang.Ast.step) -> s.kind = Mxlang.Ast.Doorway)
           p.Mxlang.Ast.steps))
    [
      ("bakery", true);
      ("bakery_pp", true);
      ("black_white_bakery", true);
      ("ticket", true);
      ("szymanski", true);
      ("filter", false);
      ("tas", false);
      ("no_lock", false);
    ]

let bounded_flags () =
  List.iter
    (fun (name, var, expected) ->
      let p = Harness.Registry.find_model name in
      let v = Mxlang.Ast.var_by_name p var in
      check bool_t
        (Printf.sprintf "%s: %s bounded=%b" name var expected)
        expected p.Mxlang.Ast.bounded.(v))
    [
      ("bakery", "number", true);
      ("bakery_pp", "number", true);
      ("black_white_bakery", "number", true);
      ("ticket", "next_ticket", true);
      ("szymanski", "flag", false);
    ]

let all_models_pretty_print () =
  (* Every registry model renders to pseudocode that names its critical
     section, and exports to a structurally complete TLA+ module. *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (name, prog) ->
      let listing = Mxlang.Pretty.program prog in
      check bool_t (name ^ " listing has CS") true (contains listing "(CS)");
      let tla = Mxlang.Tla.export prog in
      List.iter
        (fun needle ->
          check bool_t
            (Printf.sprintf "%s TLA has %s" name needle)
            true (contains tla needle))
        [ "Init =="; "Next =="; "Mutex =="; "====" ])
    Harness.Registry.models

let fine_and_coarse_agree () =
  (* Both granularities of Bakery++ pass both invariants and have the
     same observable phase language at N=2, M=2 (mutual refinement). *)
  let coarse =
    MC.System.make (Core.Bakery_pp_model.program ()) ~nprocs:2 ~bound:2
  in
  let fine =
    MC.System.make
      (Core.Bakery_pp_model.program ~granularity:Algorithms.Common.Fine ())
      ~nprocs:2 ~bound:2
  in
  let r1 = MC.Refine.check ~impl:fine ~spec:coarse () in
  check bool_t "fine refines coarse" true r1.included;
  let r2 = MC.Refine.check ~impl:coarse ~spec:fine () in
  check bool_t "coarse refines fine" true r2.included

let () =
  Alcotest.run "algorithms"
    [
      ( "validity",
        [
          Alcotest.test_case "all models statically valid" `Quick
            all_models_valid;
          Alcotest.test_case "all models have a CS" `Quick all_models_have_cs;
          Alcotest.test_case "registry lookup" `Quick registry_lookup;
        ] );
      ( "mutex-positive",
        [
          Alcotest.test_case "bakery (both granularities)" `Quick bakery_mutex;
          Alcotest.test_case "black-white bakery" `Quick
            blackwhite_mutex_and_bounded;
          Alcotest.test_case "peterson2 and dekker" `Quick two_process_classics;
          Alcotest.test_case "filter, szymanski, tas" `Quick
            n_process_algorithms;
          Alcotest.test_case "ticket variants incl. §8.1 boundary" `Quick
            ticket_variants;
        ] );
      ( "mutex-negative",
        [
          Alcotest.test_case "no_lock violates" `Quick no_lock_violates;
          Alcotest.test_case "naive modulo bakery violates" `Quick
            naive_modulo_violates;
          Alcotest.test_case "dekker breaks at N=3" `Quick dekker_needs_two;
        ] );
      ( "structure",
        [
          Alcotest.test_case "single-writer discipline" `Quick
            single_writer_discipline;
          Alcotest.test_case "doorway marking" `Quick doorway_marking;
          Alcotest.test_case "bounded flags" `Quick bounded_flags;
          Alcotest.test_case "pretty and TLA for every model" `Quick
            all_models_pretty_print;
          Alcotest.test_case "fine/coarse mutual refinement" `Quick
            fine_and_coarse_agree;
        ] );
    ]
