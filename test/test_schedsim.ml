(* Tests for the deterministic concurrency simulator: scheduler
   strategies, run determinism, event accounting, crash-restart
   semantics, flicker injection and the derived metrics. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let default ~nprocs ~bound = Schedsim.Runner.default_config ~nprocs ~bound

(* ------------------------------------------------------------ scheduler *)

let round_robin_skips_blocked () =
  let s = Schedsim.Scheduler.make ~nprocs:3 Schedsim.Scheduler.Round_robin in
  let runnable = [| true; false; true |] in
  check (Alcotest.option int_t) "first pick" (Some 0)
    (Schedsim.Scheduler.pick s ~runnable);
  check (Alcotest.option int_t) "skips blocked 1" (Some 2)
    (Schedsim.Scheduler.pick s ~runnable);
  check (Alcotest.option int_t) "wraps" (Some 0)
    (Schedsim.Scheduler.pick s ~runnable);
  check (Alcotest.option int_t) "none runnable" None
    (Schedsim.Scheduler.pick s ~runnable:[| false; false; false |])

let uniform_deterministic () =
  let picks seed =
    let s = Schedsim.Scheduler.make ~nprocs:4 (Schedsim.Scheduler.Uniform seed) in
    List.init 50 (fun _ ->
        Schedsim.Scheduler.pick s ~runnable:[| true; true; true; true |])
  in
  check bool_t "same seed, same schedule" true (picks 5 = picks 5);
  check bool_t "different seed, different schedule" true (picks 5 <> picks 6)

let uniform_only_runnable () =
  let s = Schedsim.Scheduler.make ~nprocs:4 (Schedsim.Scheduler.Uniform 9) in
  for _ = 1 to 100 do
    match Schedsim.Scheduler.pick s ~runnable:[| false; true; false; true |] with
    | Some i -> check bool_t "picked a runnable process" true (i = 1 || i = 3)
    | None -> Alcotest.fail "some process was runnable"
  done

let weighted_biases () =
  let s =
    Schedsim.Scheduler.make ~nprocs:2
      (Schedsim.Scheduler.Weighted ([| 1.0; 99.0 |], 3))
  in
  let count = Array.make 2 0 in
  for _ = 1 to 1000 do
    match Schedsim.Scheduler.pick s ~runnable:[| true; true |] with
    | Some i -> count.(i) <- count.(i) + 1
    | None -> ()
  done;
  check bool_t "heavy process scheduled far more often" true
    (count.(1) > 900 && count.(0) > 0)

let handicap_limits_victim () =
  let s =
    Schedsim.Scheduler.make ~nprocs:3
      (Schedsim.Scheduler.Handicap { victim = 0; period = 10; seed = 1 })
  in
  let count = Array.make 3 0 in
  for _ = 1 to 1000 do
    match Schedsim.Scheduler.pick s ~runnable:[| true; true; true |] with
    | Some i -> count.(i) <- count.(i) + 1
    | None -> ()
  done;
  check int_t "victim gets exactly its turns" 100 count.(0)

let scheduler_validation () =
  (match
     Schedsim.Scheduler.make ~nprocs:2 (Schedsim.Scheduler.Weighted ([| 1.0 |], 0))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "weight length mismatch must be rejected");
  match
    Schedsim.Scheduler.make ~nprocs:2
      (Schedsim.Scheduler.Handicap { victim = 5; period = 2; seed = 0 })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "victim out of range must be rejected"

(* --------------------------------------------------------------- runner *)

let run_deterministic () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:3 ~bound:4) with
      strategy = Schedsim.Scheduler.Uniform 17;
      max_steps = 20_000;
    }
  in
  let a = Schedsim.Runner.run prog cfg in
  let b = Schedsim.Runner.run prog cfg in
  check bool_t "identical cs counts" true (a.cs_entries = b.cs_entries);
  check bool_t "identical final memory" true (a.final_shared = b.final_shared);
  check int_t "identical steps" a.steps b.steps

let run_mutex_holds () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:4 ~bound:3) with
      strategy = Schedsim.Scheduler.Uniform 99;
      max_steps = 100_000;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  check int_t "no mutex violations" 0 r.mutex_violations;
  check int_t "no overflows" 0 r.overflow_events;
  check bool_t "progress" true (Schedsim.Runner.total_cs r > 100)

let run_stop_after_cs () =
  let prog = Algorithms.Tas_model.program () in
  let cfg =
    { (default ~nprocs:2 ~bound:4) with stop_after_cs = Some 10 }
  in
  let r = Schedsim.Runner.run prog cfg in
  check bool_t "completed" true (r.outcome = Schedsim.Runner.Completed);
  check int_t "exact stop" 10 (Schedsim.Runner.total_cs r)

let run_overflow_stop () =
  let prog = Algorithms.Bakery.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:5) with
      strategy = Schedsim.Scheduler.Round_robin;
      overflow_policy = Schedsim.Runner.Stop;
      max_steps = 1_000_000;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  check bool_t "overflow reached" true (r.outcome = Schedsim.Runner.Overflow_stop);
  check bool_t "overflow recorded" true (r.overflow_events >= 1)

let run_wrap_breaks_mutex () =
  let prog = Algorithms.Bakery.program () in
  let cfg =
    {
      (default ~nprocs:3 ~bound:4) with
      strategy = Schedsim.Scheduler.Uniform 42;
      overflow_policy = Schedsim.Runner.Wrap;
      max_steps = 500_000;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  check bool_t "wrapping registers eventually break mutual exclusion" true
    (r.mutex_violations > 0)

let run_label_counts_sum () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:8) with
      strategy = Schedsim.Scheduler.Uniform 3;
      max_steps = 5_000;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  let total_label_steps =
    Array.fold_left
      (fun acc per -> acc + Array.fold_left ( + ) 0 per)
      0 r.label_counts
  in
  (* Every simulated step executes exactly one label (blocked picks spin
     without executing, and those are not counted as label steps). *)
  check bool_t "label counts bounded by steps" true
    (total_label_steps <= r.steps);
  check bool_t "most steps execute" true
    (total_label_steps > r.steps / 2)

(* ---------------------------------------------------------------- crash *)

let crash_restarts_and_preserves_safety () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:3 ~bound:4) with
      strategy = Schedsim.Scheduler.Uniform 7;
      max_steps = 150_000;
      crash =
        Some { crash_prob = 0.002; restart_delay = 20; only_outside_cs = false };
      record_events = true;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  check bool_t "crashes happened" true (r.crashes > 10);
  check int_t "mutex holds through crashes" 0 r.mutex_violations;
  check int_t "no overflows through crashes" 0 r.overflow_events;
  let restarts =
    List.length
      (List.filter
         (function Schedsim.Event.Restart _ -> true | _ -> false)
         r.events)
  in
  check bool_t "crashed processes restart" true (restarts > 0);
  check bool_t "system keeps making progress" true
    (Schedsim.Runner.total_cs r > 50)

let crash_resets_own_registers () =
  (* After a crash, the crashed process's single-writer cells read 0. *)
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:4) with
      strategy = Schedsim.Scheduler.Uniform 13;
      max_steps = 50_000;
      crash =
        Some { crash_prob = 0.01; restart_delay = 1_000_000; only_outside_cs = false };
    }
  in
  (* With an effectively infinite restart delay, both processes eventually
     crash and stay down: all per-process cells must then be 0. *)
  let r = Schedsim.Runner.run prog cfg in
  if r.crashes >= 2 then
    Array.iteri
      (fun _ v -> check int_t "register reset to initial" 0 v)
      r.final_shared

let crash_only_outside_cs () =
  let prog = Algorithms.Tas_model.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:4) with
      strategy = Schedsim.Scheduler.Uniform 5;
      max_steps = 50_000;
      crash =
        Some { crash_prob = 0.05; restart_delay = 10; only_outside_cs = true };
      record_events = true;
    }
  in
  (* TAS holds a shared non-per-process lock bit, so a CS crash would
     wedge the system; only_outside_cs avoids that.  The check: the
     system still completes CS entries to the end. *)
  let r = Schedsim.Runner.run prog cfg in
  check bool_t "progress sustained" true (Schedsim.Runner.total_cs r > 100)

(* -------------------------------------------------------------- flicker *)

let flicker_cfg ~nprocs ~bound ~model =
  {
    (default ~nprocs ~bound) with
    strategy = Schedsim.Scheduler.Uniform 21;
    max_steps = 100_000;
    flicker =
      Some
        {
          Schedsim.Runner.flicker_prob = 0.1;
          flicker_model = model;
          flicker_slack = 0;
        };
  }

let flicker_counts_and_safety () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg = flicker_cfg ~nprocs:3 ~bound:6 ~model:Regsem.Model.Safe in
  let r = Schedsim.Runner.run prog cfg in
  check bool_t "flickers injected" true (r.flickers > 0);
  check int_t "mutex holds under safe-register anomalies" 0 r.mutex_violations;
  check int_t "no overflow under in-range flicker" 0 r.overflow_events

let flicker_atomic_model_is_inert () =
  let prog = Core.Bakery_pp_model.program () in
  let r =
    Schedsim.Runner.run prog
      (flicker_cfg ~nprocs:3 ~bound:6 ~model:Regsem.Model.Atomic)
  in
  let clean =
    Schedsim.Runner.run prog
      { (flicker_cfg ~nprocs:3 ~bound:6 ~model:Regsem.Model.Atomic) with flicker = None }
  in
  check int_t "atomic flicker model injects nothing" 0 r.flickers;
  check bool_t "atomic flicker run equals a flicker-free run" true
    (r.cs_entries = clean.cs_entries && r.final_shared = clean.final_shared)

let flicker_regular_stays_in_written_range () =
  (* Under a regular register a flickered read returns the value the
     in-flight write is about to store, so Bakery++'s bounded tickets
     can never be observed above M + 1 (the pre-reset overflow value). *)
  let prog = Core.Bakery_pp_model.program () in
  let bound = 6 in
  let r =
    Schedsim.Runner.run prog
      (flicker_cfg ~nprocs:3 ~bound ~model:Regsem.Model.Regular)
  in
  check bool_t "regular flickers injected" true (r.flickers > 0);
  check int_t "mutex holds under regular-register anomalies" 0
    r.mutex_violations

(* -------------------------------------------------------------- metrics *)

let metrics_throughput_and_jain () =
  let prog = Algorithms.Ticket_model.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:(1 lsl 20)) with
      strategy = Schedsim.Scheduler.Uniform 2;
      max_steps = 50_000;
      record_events = true;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  let tp = Schedsim.Metrics.throughput r in
  check bool_t "throughput positive" true (tp > 0.0);
  let j = Schedsim.Metrics.jain_fairness r in
  check bool_t "jain in (0,1]" true (j > 0.0 && j <= 1.0);
  check bool_t "ticket lock is fair" true (j > 0.9);
  let entries = Schedsim.Metrics.cs_entry_times r in
  check int_t "event log agrees with counters"
    (Schedsim.Runner.total_cs r) (List.length entries);
  check bool_t "waiting time observed" true
    (Schedsim.Metrics.max_waiting_time r >= 0)

let metrics_label_count () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:2) with
      strategy = Schedsim.Scheduler.Uniform 41;
      max_steps = 100_000;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  let resets =
    Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label
  in
  check bool_t "tiny M forces resets" true (resets > 0);
  match Schedsim.Metrics.label_count prog r "no_such_label" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown label must raise"

let bounded_overtaking () =
  (* Bakery-family FCFS implies at most N-1 overtakes after the doorway. *)
  let nprocs = 4 in
  List.iter
    (fun prog ->
      let cfg =
        {
          (default ~nprocs ~bound:(1 lsl 20)) with
          strategy = Schedsim.Scheduler.Uniform 61;
          max_steps = 150_000;
          record_events = true;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      let ot = Schedsim.Metrics.max_overtakes r in
      check bool_t
        (Printf.sprintf "%s: max overtakes %d <= N-1" prog.Mxlang.Ast.title ot)
        true
        (ot <= nprocs - 1))
    [
      Algorithms.Bakery.program ();
      Core.Bakery_pp_model.program ();
      Algorithms.Ticket_model.program ();
    ]

let fcfs_zero_for_bakery () =
  List.iter
    (fun prog ->
      let cfg =
        {
          (default ~nprocs:4 ~bound:(1 lsl 20)) with
          strategy = Schedsim.Scheduler.Uniform 31;
          max_steps = 150_000;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      check int_t
        (Printf.sprintf "FCFS holds for %s" prog.Mxlang.Ast.title)
        0 r.fcfs_inversions)
    [
      Algorithms.Bakery.program ();
      Core.Bakery_pp_model.program ();
      Algorithms.Ticket_model.program ();
    ]

(* -------------------------------------------------------------- history *)

let replay_reproduces_run () =
  let prog = Core.Bakery_pp_model.program () in
  let cfg =
    {
      (default ~nprocs:3 ~bound:4) with
      strategy = Schedsim.Scheduler.Uniform 57;
      max_steps = 20_000;
      record_events = true;
    }
  in
  let original = Schedsim.Runner.run prog cfg in
  let schedule = Schedsim.History.schedule_of original in
  check bool_t "schedule nonempty" true (Array.length schedule > 1000);
  let replayed =
    Schedsim.Runner.run prog
      {
        cfg with
        strategy = Schedsim.Scheduler.Replay schedule;
        max_steps = Array.length schedule;
      }
  in
  check bool_t "same per-process CS entries" true
    (original.cs_entries = replayed.cs_entries);
  check bool_t "same final memory" true
    (original.final_shared = replayed.final_shared);
  check int_t "same reset count"
    (Schedsim.Metrics.label_count prog original Core.Bakery_pp_model.reset_label)
    (Schedsim.Metrics.label_count prog replayed Core.Bakery_pp_model.reset_label)

let history_export () =
  let prog = Algorithms.Ticket_model.program () in
  let cfg =
    {
      (default ~nprocs:2 ~bound:(1 lsl 20)) with
      strategy = Schedsim.Scheduler.Uniform 3;
      max_steps = 2_000;
      record_events = true;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  let text = Schedsim.History.to_text prog r in
  let csv = Schedsim.History.to_csv prog r in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check bool_t "text mentions CS entries" true (contains text "ENTER CS");
  check bool_t "csv has header" true (contains csv "time,event,pid,detail");
  check bool_t "csv has steps" true (contains csv ",step,");
  check bool_t "csv has cs events" true (contains csv ",cs_enter,")

let () =
  Alcotest.run "schedsim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "round robin" `Quick round_robin_skips_blocked;
          Alcotest.test_case "uniform determinism" `Quick uniform_deterministic;
          Alcotest.test_case "uniform picks runnable" `Quick
            uniform_only_runnable;
          Alcotest.test_case "weighted bias" `Quick weighted_biases;
          Alcotest.test_case "handicap quota" `Quick handicap_limits_victim;
          Alcotest.test_case "argument validation" `Quick scheduler_validation;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic replay" `Quick run_deterministic;
          Alcotest.test_case "mutex + no overflow in long run" `Quick
            run_mutex_holds;
          Alcotest.test_case "stop after N entries" `Quick run_stop_after_cs;
          Alcotest.test_case "overflow stop policy" `Quick run_overflow_stop;
          Alcotest.test_case "wrap policy corrupts bakery" `Quick
            run_wrap_breaks_mutex;
          Alcotest.test_case "label accounting" `Quick run_label_counts_sum;
        ] );
      ( "crash",
        [
          Alcotest.test_case "safety through crash-restart" `Quick
            crash_restarts_and_preserves_safety;
          Alcotest.test_case "crash resets own registers" `Quick
            crash_resets_own_registers;
          Alcotest.test_case "only_outside_cs" `Quick crash_only_outside_cs;
        ] );
      ( "flicker",
        [
          Alcotest.test_case "safe-register anomalies" `Quick
            flicker_counts_and_safety;
          Alcotest.test_case "atomic model is inert" `Quick
            flicker_atomic_model_is_inert;
          Alcotest.test_case "regular-register anomalies" `Quick
            flicker_regular_stays_in_written_range;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "throughput, jain, events" `Quick
            metrics_throughput_and_jain;
          Alcotest.test_case "label_count" `Quick metrics_label_count;
          Alcotest.test_case "FCFS inversions are zero for bakery family"
            `Quick fcfs_zero_for_bakery;
          Alcotest.test_case "bounded overtaking (<= N-1)" `Quick
            bounded_overtaking;
        ] );
      ( "history",
        [
          Alcotest.test_case "schedule replay is exact" `Quick
            replay_reproduces_run;
          Alcotest.test_case "text and csv export" `Quick history_export;
        ] );
    ]
