(* Tests for the runtime register substrate: bounded registers with
   overflow policies, strided atomic arrays, backoff, the deterministic
   PRNG and the yielding spin primitive. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

module B = Registers.Bounded
module A = Registers.Atomic_array

(* -------------------------------------------------------------- bounded *)

let bounded_basics () =
  let r = B.create ~bound:10 3 in
  check int_t "initial value" 3 (B.get r);
  B.set r 10;
  check int_t "bound itself is storable" 10 (B.get r);
  check int_t "bound accessor" 10 (B.bound r);
  check int_t "no overflow yet" 0 (B.overflow_count r)

let bounded_trap () =
  let r = B.create ~policy:B.Trap ~bound:5 0 in
  (match B.set r 6 with
  | exception B.Overflow { value = 6; bound = 5 } -> ()
  | _ -> Alcotest.fail "expected Overflow");
  check int_t "overflow counted" 1 (B.overflow_count r);
  check int_t "value unchanged after trap" 0 (B.get r)

let bounded_wrap () =
  let r = B.create ~policy:B.Wrap ~bound:5 0 in
  B.set r 6;
  check int_t "6 wraps to 0 (mod M+1)" 0 (B.get r);
  B.set r 7;
  check int_t "7 wraps to 1" 1 (B.get r);
  check int_t "two overflows counted" 2 (B.overflow_count r)

let bounded_saturate () =
  let r = B.create ~policy:B.Saturate ~bound:5 0 in
  B.set r 99;
  check int_t "saturates at M" 5 (B.get r);
  check int_t "overflow counted" 1 (B.overflow_count r)

let bounded_validation () =
  (match B.create ~bound:0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 rejected");
  match B.create ~bound:3 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "initial value beyond bound rejected"

let bounded_array_and_max () =
  let a = B.array ~bound:9 4 0 in
  check int_t "array length" 4 (Array.length a);
  B.set a.(2) 7;
  B.set a.(0) 3;
  check int_t "max_of scans all" 7 (B.max_of a)

(* --------------------------------------------------------- atomic array *)

let atomic_array_ops () =
  let a = A.create 5 0 in
  check int_t "length" 5 (A.length a);
  A.set a 3 42;
  check int_t "get/set" 42 (A.get a 3);
  check int_t "fetch_and_add returns old" 42 (A.fetch_and_add a 3 8);
  check int_t "fetch_and_add added" 50 (A.get a 3);
  check bool_t "cas succeeds" true (A.compare_and_set a 3 50 60);
  check bool_t "cas fails on stale" false (A.compare_and_set a 3 50 70);
  check int_t "exchange returns old" 60 (A.exchange a 3 1);
  check int_t "max_of" 1 (A.max_of a);
  check int_t "words is logical size" 5 (A.words a);
  match A.get a 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bounds check expected"

let atomic_array_domains () =
  (* Parallel increments through fetch_and_add must be exact. *)
  let a = A.create 1 0 in
  let per = 20_000 in
  let worker () =
    for _ = 1 to per do
      ignore (A.fetch_and_add a 0 1)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check int_t "exact parallel count" (3 * per) (A.get a 0)

(* -------------------------------------------------------------- backoff *)

let backoff_grows_and_resets () =
  let b = Registers.Backoff.create ~min_spins:2 ~max_spins:8 () in
  (* Observable contract: once waves run, reset restores the start; we
     can only check it does not raise and terminates promptly. *)
  Registers.Backoff.once b;
  Registers.Backoff.once b;
  Registers.Backoff.once b;
  Registers.Backoff.once b;
  Registers.Backoff.reset b;
  Registers.Backoff.once b;
  (match Registers.Backoff.create ~min_spins:0 ~max_spins:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "min_spins 0 rejected");
  match Registers.Backoff.create ~min_spins:8 ~max_spins:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max < min rejected"

(* ------------------------------------------------------------------ rng *)

let rng_deterministic () =
  let a = Prng.Rng.create 42 and b = Prng.Rng.create 42 in
  let xs = List.init 100 (fun _ -> Prng.Rng.next a) in
  let ys = List.init 100 (fun _ -> Prng.Rng.next b) in
  check bool_t "same seed, same stream" true (xs = ys);
  let c = Prng.Rng.create 43 in
  let zs = List.init 100 (fun _ -> Prng.Rng.next c) in
  check bool_t "different seed, different stream" true (xs <> zs)

let rng_ranges () =
  let r = Prng.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.Rng.int r 10 in
    check bool_t "int in range" true (v >= 0 && v < 10);
    let f = Prng.Rng.float r 2.0 in
    check bool_t "float in range" true (f >= 0.0 && f < 2.0)
  done;
  match Prng.Rng.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 rejected"

let rng_copy_and_split () =
  let r = Prng.Rng.create 5 in
  ignore (Prng.Rng.next r);
  let s = Prng.Rng.copy r in
  check int_t "copy continues identically" (Prng.Rng.next r) (Prng.Rng.next s);
  let t = Prng.Rng.split r in
  check bool_t "split diverges from parent" true
    (Prng.Rng.next t <> Prng.Rng.next r)

let rng_distribution () =
  (* A crude uniformity check: each bucket of 10 gets 5-15% of draws. *)
  let r = Prng.Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let v = Prng.Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check bool_t
        (Printf.sprintf "bucket %d roughly uniform (%d)" i c)
        true
        (c > n / 20 && c < n * 3 / 20))
    buckets

let rng_shuffle () =
  let r = Prng.Rng.create 3 in
  let a = Array.init 20 Fun.id in
  let b = Array.copy a in
  Prng.Rng.shuffle r b;
  check bool_t "permutation: same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a);
  check bool_t "actually shuffled" true (a <> b)

(* ----------------------------------------------------------------- spin *)

let spin_runs () =
  (* Just exercise it across the yield boundary. *)
  for _ = 1 to 3 * Registers.Spin.yield_period do
    Registers.Spin.relax ()
  done

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int always lands in [0, bound)" ~count:300
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Prng.Rng.create seed in
      let v = Prng.Rng.int r bound in
      v >= 0 && v < bound)

let prop_bounded_wrap_in_range =
  QCheck.Test.make ~name:"Wrap policy keeps register within [0, M]" ~count:300
    QCheck.(pair (int_range 1 1000) (int_range 0 1_000_000))
    (fun (bound, v) ->
      let r = Registers.Bounded.create ~policy:Registers.Bounded.Wrap ~bound 0 in
      Registers.Bounded.set r v;
      let stored = Registers.Bounded.get r in
      stored >= 0 && stored <= bound)

(* The three overflow policies agree on *when* a store overflows and
   differ only in what they do about it.  Drive the same non-negative
   write sequence at one register per policy and check the algebra:
   Trap raises exactly when Wrap's stored value differs from the value
   an unbounded register would hold, Saturate never exceeds M, and all
   three count the same overflow events. *)
let writes_gen = QCheck.(pair (int_range 1 50) (small_list (int_range 0 200)))

let prop_bounded_trap_iff_wrap_corrupts =
  QCheck.Test.make
    ~name:"Trap raises iff Wrap differs from the unbounded shadow" ~count:300
    writes_gen
    (fun (bound, writes) ->
      let trap = Registers.Bounded.create ~policy:Registers.Bounded.Trap ~bound 0 in
      let wrap = Registers.Bounded.create ~policy:Registers.Bounded.Wrap ~bound 0 in
      List.for_all
        (fun v ->
          let trapped =
            match Registers.Bounded.set trap v with
            | () -> false
            | exception Registers.Bounded.Overflow _ -> true
          in
          Registers.Bounded.set wrap v;
          (* the unbounded shadow register would simply hold [v] *)
          trapped = (Registers.Bounded.get wrap <> v))
        writes)

let prop_bounded_saturate_bounded =
  QCheck.Test.make ~name:"Saturate never exceeds M" ~count:300 writes_gen
    (fun (bound, writes) ->
      let r =
        Registers.Bounded.create ~policy:Registers.Bounded.Saturate ~bound 0
      in
      List.for_all
        (fun v ->
          Registers.Bounded.set r v;
          let stored = Registers.Bounded.get r in
          stored >= 0 && stored <= bound
          && (v > bound || stored = v))
        writes)

let prop_bounded_overflow_count_policy_free =
  QCheck.Test.make ~name:"overflow_count is policy-independent" ~count:300
    writes_gen
    (fun (bound, writes) ->
      let mk policy = Registers.Bounded.create ~policy ~bound 0 in
      let trap = mk Registers.Bounded.Trap
      and wrap = mk Registers.Bounded.Wrap
      and sat = mk Registers.Bounded.Saturate in
      List.iter
        (fun v ->
          (try Registers.Bounded.set trap v
           with Registers.Bounded.Overflow _ -> ());
          Registers.Bounded.set wrap v;
          Registers.Bounded.set sat v)
        writes;
      let expected =
        List.length (List.filter (fun v -> v > bound) writes)
      in
      Registers.Bounded.overflow_count trap = expected
      && Registers.Bounded.overflow_count wrap = expected
      && Registers.Bounded.overflow_count sat = expected)

let () =
  Alcotest.run "registers"
    [
      ( "bounded",
        [
          Alcotest.test_case "basics" `Quick bounded_basics;
          Alcotest.test_case "trap policy" `Quick bounded_trap;
          Alcotest.test_case "wrap policy" `Quick bounded_wrap;
          Alcotest.test_case "saturate policy" `Quick bounded_saturate;
          Alcotest.test_case "validation" `Quick bounded_validation;
          Alcotest.test_case "arrays and max" `Quick bounded_array_and_max;
        ] );
      ( "atomic_array",
        [
          Alcotest.test_case "operations" `Quick atomic_array_ops;
          Alcotest.test_case "parallel exactness" `Quick atomic_array_domains;
        ] );
      ("backoff", [ Alcotest.test_case "waves" `Quick backoff_grows_and_resets ]);
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick rng_deterministic;
          Alcotest.test_case "ranges" `Quick rng_ranges;
          Alcotest.test_case "copy and split" `Quick rng_copy_and_split;
          Alcotest.test_case "rough uniformity" `Quick rng_distribution;
          Alcotest.test_case "shuffle" `Quick rng_shuffle;
        ] );
      ("spin", [ Alcotest.test_case "relax with yields" `Quick spin_runs ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rng_int_bounds;
            prop_bounded_wrap_in_range;
            prop_bounded_trap_iff_wrap_corrupts;
            prop_bounded_saturate_bounded;
            prop_bounded_overflow_count_policy_free;
          ] );
    ]
