(* Workload subsystem tests: seeded Poisson schedules (determinism,
   empirical mean, exponential tail), fairness queries over synthetic
   event logs, the pure observatory condensation step, scorecard JSON
   round-trips, SLO verdicts, the BENCH_locks.json persistence helpers,
   the regress gate, and one real open-loop run proving the Ops-budget
   determinism contract end to end. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string
let float_t = Alcotest.float 1e-9

(* ------------------------------------------------------------ poisson *)

let poisson_determinism () =
  let mk seed = Workload.Poisson.schedule (Prng.Rng.create seed) ~rate:1000.0 ~n:256 in
  check bool_t "same seed, byte-identical schedule" true (mk 7 = mk 7);
  check string_t "same seed, same fingerprint"
    (Workload.Poisson.fingerprint [| mk 7 |])
    (Workload.Poisson.fingerprint [| mk 7 |]);
  check bool_t "different seed, different fingerprint" true
    (Workload.Poisson.fingerprint [| mk 7 |]
    <> Workload.Poisson.fingerprint [| mk 8 |])

let poisson_mean () =
  (* Mean of 10k Exp(rate) draws: std of the sample mean is 1% of the
     true mean, so a 6% band is a ~6-sigma test — seed-stable. *)
  let rng = Prng.Rng.create 42 in
  let rate = 1000.0 in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Workload.Poisson.interarrival rng ~rate
  done;
  let mean = !sum /. float_of_int n in
  let expect = 1.0 /. rate in
  check bool_t
    (Printf.sprintf "empirical mean %.6f within 6%% of %.6f" mean expect)
    true
    (Float.abs (mean -. expect) /. expect < 0.06)

let poisson_invalid () =
  (match Workload.Poisson.interarrival (Prng.Rng.create 1) ~rate:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate 0 must raise");
  match Workload.Poisson.interarrival (Prng.Rng.create 1) ~rate:(-2.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rate must raise"

(* For Exp(rate), P(X > 1/rate) = 1/e ~ 0.368.  With 4000 draws the
   std of the empirical fraction is ~0.008, so [0.31, 0.43] is a
   ~7-sigma band across whatever seeds QCheck picks. *)
let prop_exponential_tail =
  QCheck.Test.make ~name:"interarrival tail matches exp(-rate t)" ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Prng.Rng.create seed in
      let rate = 500.0 in
      let n = 4000 in
      let above = ref 0 in
      for _ = 1 to n do
        if Workload.Poisson.interarrival rng ~rate > 1.0 /. rate then
          incr above
      done;
      let frac = float_of_int !above /. float_of_int n in
      frac > 0.31 && frac < 0.43)

let poisson_schedules () =
  let rng = Prng.Rng.create 5 in
  let s = Workload.Poisson.schedule rng ~rate:2000.0 ~n:100 in
  check int_t "schedule length" 100 (Array.length s);
  for i = 1 to 99 do
    if s.(i) <= s.(i - 1) then Alcotest.fail "schedule not strictly increasing"
  done;
  let h = Workload.Poisson.schedule_until (Prng.Rng.create 5) ~rate:2000.0 ~horizon_s:0.05 in
  Array.iter
    (fun t ->
      if t >= 0.05 then Alcotest.fail "arrival at or past the horizon")
    h;
  check bool_t "horizon of 0.05s at 2k/s yields some arrivals" true
    (Array.length h > 0)

let fingerprint_sensitivity () =
  let s = Workload.Poisson.schedule (Prng.Rng.create 9) ~rate:100.0 ~n:32 in
  let fp = Workload.Poisson.fingerprint [| s |] in
  let s' = Array.copy s in
  s'.(13) <- s'.(13) +. 1e-12;
  check bool_t "one-ulp-ish perturbation changes the fingerprint" true
    (fp <> Workload.Poisson.fingerprint [| s' |]);
  check bool_t "per-domain split changes the fingerprint" true
    (fp
    <> Workload.Poisson.fingerprint
         [| Array.sub s 0 16; Array.sub s 16 16 |])

(* ----------------------------------------------------------- fairness *)

let entry t pid op = { Locks.Ring.e_t_ns = t; e_pid = pid; e_op = op }

let fairness_inversions () =
  (* pid 0 enters first but pid 1 overtakes it: one inversion. *)
  let log =
    [
      entry 0 0 Locks.Ring.Acquire_start;
      entry 10 1 Locks.Ring.Acquire_start;
      entry 20 1 Locks.Ring.Acquired;
      entry 25 1 Locks.Ring.Released;
      entry 30 0 Locks.Ring.Acquired;
      entry 35 0 Locks.Ring.Released;
    ]
  in
  check int_t "one overtake, one inversion" 1 (Workload.Fairness.inversions log);
  let fcfs =
    [
      entry 0 0 Locks.Ring.Acquire_start;
      entry 5 0 Locks.Ring.Acquired;
      entry 6 1 Locks.Ring.Acquire_start;
      entry 8 0 Locks.Ring.Released;
      entry 9 1 Locks.Ring.Acquired;
      entry 12 1 Locks.Ring.Released;
    ]
  in
  check int_t "FCFS order has zero inversions" 0
    (Workload.Fairness.inversions fcfs);
  (* An Acquired whose Acquire_start was lost to ring overflow is
     skipped, not guessed: it neither counts nor is counted. *)
  let lossy =
    [
      entry 0 0 Locks.Ring.Acquire_start;
      entry 20 1 Locks.Ring.Acquired;
      entry 30 0 Locks.Ring.Acquired;
    ]
  in
  check int_t "orphan acquired is skipped" 0
    (Workload.Fairness.inversions lossy)

let fairness_stall_and_jain () =
  let log =
    [
      entry 100 0 Locks.Ring.Acquired;
      entry 200 1 Locks.Ring.Acquired;
      entry 500 0 Locks.Ring.Acquired;
    ]
  in
  check int_t "max stall is the widest acquired gap" 300
    (Workload.Fairness.max_stall_ns log);
  check int_t "no gap without two acquires" 0
    (Workload.Fairness.max_stall_ns [ entry 7 0 Locks.Ring.Acquired ]);
  check float_t "even split is perfectly fair" 1.0
    (Workload.Fairness.jain [| 5; 5; 5; 5 |]);
  check float_t "monopoly tends to 1/n" 0.25
    (Workload.Fairness.jain [| 10; 0; 0; 0 |]);
  check float_t "empty input reads fair" 1.0 (Workload.Fairness.jain [||]);
  check float_t "all-zero input reads fair" 1.0
    (Workload.Fairness.jain [| 0; 0 |])

(* ---------------------------------------------------------------- slo *)

let slo_check () =
  let t = { Workload.Slo.min_goodput_frac = 0.5; max_p99_ns = 1_000_000 } in
  let ok = Workload.Slo.check t ~offered:1000.0 ~goodput:900.0 ~p99_ns:500_000 in
  check bool_t "healthy run passes" true ok.Workload.Slo.pass;
  check int_t "no reasons when passing" 0 (List.length ok.Workload.Slo.reasons);
  let slow = Workload.Slo.check t ~offered:1000.0 ~goodput:300.0 ~p99_ns:500_000 in
  check bool_t "goodput collapse fails" false slow.Workload.Slo.pass;
  check int_t "one reason per violated dimension" 1
    (List.length slow.Workload.Slo.reasons);
  let both = Workload.Slo.check t ~offered:1000.0 ~goodput:300.0 ~p99_ns:2_000_000 in
  check int_t "both dimensions reported" 2
    (List.length both.Workload.Slo.reasons)

(* -------------------------------------------------------- observatory *)

let obs_sample at_s stats = { Workload.Observatory.at_s; stats }

let observatory_crossing () =
  let samples =
    [
      obs_sample 0.001 [ ("peak_ticket", 3) ];
      obs_sample 0.002 [ ("peak_ticket", 8) ];
      obs_sample 0.003 [ ("peak_ticket", 9) ];
    ]
  in
  let r = Workload.Observatory.analyse ~virtual_bound:(Some 8) samples in
  (* Strictly greater than M: a width-M register holds values up to M,
     and Bakery++ tickets legitimately touch M without overflowing. *)
  check (Alcotest.option float_t) "touching M is not a crossing" (Some 0.003)
    r.Workload.Observatory.overflow_at_s;
  check (Alcotest.option int_t) "crossing value recorded" (Some 9)
    r.Workload.Observatory.overflow_ticket;
  let quiet = Workload.Observatory.analyse ~virtual_bound:(Some 16) samples in
  check (Alcotest.option float_t) "no crossing under a wide bound" None
    quiet.Workload.Observatory.overflow_at_s;
  let unbounded = Workload.Observatory.analyse ~virtual_bound:None samples in
  check (Alcotest.option float_t) "no bound, no crossing" None
    unbounded.Workload.Observatory.overflow_at_s

let observatory_storms () =
  let s t r = obs_sample t [ ("resets", r) ] in
  (* Two storms: resets advance over samples 2-3, go quiet, advance
     again at sample 5.  Each storm is charged from the previous quiet
     sample (one-interval resolution). *)
  let samples = [ s 0.001 0; s 0.002 0; s 0.003 1; s 0.004 2; s 0.005 2; s 0.006 3 ] in
  let r = Workload.Observatory.analyse ~virtual_bound:None samples in
  check int_t "two maximal reset runs" 2 r.Workload.Observatory.storms;
  check int_t "total reset advance" 3 r.Workload.Observatory.resets;
  check float_t "worst storm spans its run plus one interval" 0.002
    r.Workload.Observatory.storm_max_s;
  let empty = Workload.Observatory.analyse ~virtual_bound:(Some 4) [] in
  check int_t "empty window, zero storms" 0 empty.Workload.Observatory.storms;
  check int_t "empty window, zero samples" 0 empty.Workload.Observatory.samples

(* ---------------------------------------------------------- scorecard *)

let card () : Workload.Scorecard.t =
  {
    algo = "bakery_pp";
    nprocs = 2;
    rate = 2000.0;
    ops = Some 400;
    duration_s = None;
    seed = 11;
    sched_fp = "6a90805bf486149c";
    issued = 400;
    completed = 400;
    behind = 12;
    abandoned = 0;
    goodput = 1987.3;
    p50_ns = 1_000;
    p95_ns = 2_000;
    p99_ns = 5_000;
    p999_ns = 10_000;
    max_ns = 20_000;
    max_stall_ns = 500_000;
    inversions = 0;
    jain = 0.998;
    ring_dropped = 0;
    slo_pass = true;
    slo_reasons = [];
    overflow =
      Some
        {
          virtual_bound = 32;
          overflow_at_s = Some 0.004;
          overflow_ticket = Some 33;
          resets = 2;
          storms = 1;
          storm_max_s = 0.001;
        };
  }

let scorecard_roundtrip () =
  let c = card () in
  (match Workload.Scorecard.of_json (Workload.Scorecard.to_json c) with
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)
  | Ok back -> check bool_t "every field restored" true (back = c));
  let no_obs = { c with overflow = None; slo_pass = false; slo_reasons = [ "x" ] } in
  match Workload.Scorecard.of_json (Workload.Scorecard.to_json no_obs) with
  | Error e -> Alcotest.fail ("round trip without overflow failed: " ^ e)
  | Ok back -> check bool_t "optional overflow restored as absent" true
      (back = no_obs)

let scorecard_rejects () =
  let expect_err what j =
    match Workload.Scorecard.of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
  in
  expect_err "non-object" (Telemetry.Json.Num 3.0);
  expect_err "wrong kind"
    (Telemetry.Json.Obj [ ("kind", Telemetry.Json.Str "datapoint") ]);
  (match Workload.Scorecard.to_json (card ()) with
  | Telemetry.Json.Obj fields ->
      expect_err "missing field"
        (Telemetry.Json.Obj (List.remove_assoc "sched_fp" fields))
  | _ -> Alcotest.fail "to_json must produce an object")

let scorecard_deterministic_fields () =
  let c = card () in
  let noisy = { c with goodput = 3.0; p99_ns = 1; behind = 99; jain = 0.1 } in
  check bool_t "timing noise invisible to the determinism witness" true
    (Workload.Scorecard.deterministic_fields c
    = Workload.Scorecard.deterministic_fields noisy);
  let other = { c with seed = 12 } in
  check bool_t "seed change visible" true
    (Workload.Scorecard.deterministic_fields c
    <> Workload.Scorecard.deterministic_fields other)

(* -------------------------------------------------- persistence, gate *)

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "test_workload_%s_%d.json" name (Unix.getpid ()))

let rows_persistence () =
  let path = tmp "rows" in
  if Sys.file_exists path then Sys.remove path;
  (match Workload.Suite.load_rows path with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "absent file must read as empty"
  | Error e -> Alcotest.fail ("absent file must not error: " ^ e));
  let j = Workload.Scorecard.to_json (card ()) in
  Workload.Suite.append_rows path [ j ];
  Workload.Suite.append_rows path [ j ];
  (match Workload.Suite.load_rows path with
  | Ok rows -> check int_t "append merges, never clobbers" 2 (List.length rows)
  | Error e -> Alcotest.fail ("reload failed: " ^ e));
  let oc = open_out path in
  output_string oc "not json";
  close_out oc;
  (match Workload.Suite.load_rows path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed file must surface an Error");
  Sys.remove path

let regress_gate () =
  check string_t "cell key format" "ttas/d2/r5000"
    (Workload.Suite.key_of ~algo:"ttas" ~nprocs:2 ~rate:5000.0);
  let fresh = { (card ()) with goodput = 1000.0; p99_ns = 10_000 } in
  let prior g p99 =
    Workload.Scorecard.to_json { (card ()) with goodput = g; p99_ns = p99 }
  in
  (* Healthy: fresh goodput within 15% of best prior, p99 not blown. *)
  let gates =
    Workload.Suite.regress ~prior:[ prior 1100.0 9_000; prior 900.0 50_000 ]
      [ fresh ]
  in
  check int_t "two gates per card" 2 (List.length gates);
  List.iter
    (fun (g : Workload.Suite.gate) ->
      if g.g_fail then
        Alcotest.fail (g.g_key ^ "/" ^ g.g_metric ^ " failed unexpectedly"))
    gates;
  (* Collapse: goodput fell to half of the best prior. *)
  let bad = Workload.Suite.regress ~prior:[ prior 2200.0 9_000 ] [ fresh ] in
  check bool_t "goodput collapse trips the gate" true
    (List.exists
       (fun (g : Workload.Suite.gate) -> g.g_metric = "goodput" && g.g_fail)
       bad);
  (* p99 blowup past the SLO ceiling: best prior far below fresh. *)
  let pathological = { fresh with p99_ns = 200_000_000 } in
  let slow =
    Workload.Suite.regress ~prior:[ prior 1000.0 1_000 ] [ pathological ]
  in
  check bool_t "p99 blowup trips the gate" true
    (List.exists
       (fun (g : Workload.Suite.gate) -> g.g_metric = "p99_ns" && g.g_fail)
       slow);
  (* Below the ceiling the p99 gate stays disarmed: sub-SLO tail
     movement is bucket-resolution noise, not a regression. *)
  let noisy = { fresh with p99_ns = 2_000_000 } in
  let calm = Workload.Suite.regress ~prior:[ prior 1000.0 200_000 ] [ noisy ] in
  check bool_t "sub-ceiling p99 noise never trips" false
    (List.exists
       (fun (g : Workload.Suite.gate) -> g.g_metric = "p99_ns" && g.g_fail)
       calm);
  (* No prior with this key: nan ratio, never a failure. *)
  let other = { fresh with algo = "tas" } in
  let nop = Workload.Suite.regress ~prior:[ prior 9999.0 1 ] [ other ] in
  List.iter
    (fun (g : Workload.Suite.gate) ->
      check bool_t "no prior, no verdict" false g.g_fail;
      check bool_t "no prior, nan ratio" true (Float.is_nan g.g_ratio))
    nop

(* ----------------------------------------------------- open-loop runs *)

let openloop_ops_determinism () =
  let fam = Harness.Registry.find_family "ttas" in
  let go () =
    let inst = fam.make ~nprocs:2 ~bound:64 in
    Workload.Openloop.run ~seed:3 ~rate:5000.0
      ~budget:(Workload.Openloop.Ops 200) inst ~nprocs:2
  in
  let a = go () in
  let b = go () in
  check int_t "ops budget issued exactly" 200 a.Workload.Openloop.issued;
  check int_t "every issued op completed" 200 a.Workload.Openloop.completed;
  check int_t "nothing abandoned under Ops" 0 a.Workload.Openloop.abandoned;
  check string_t "same seed, same schedule fingerprint"
    a.Workload.Openloop.sched_fp b.Workload.Openloop.sched_fp;
  check int_t "rerun issues identically" a.Workload.Openloop.issued
    b.Workload.Openloop.issued;
  check bool_t "per-domain completions sum to the budget" true
    (Array.fold_left ( + ) 0 a.Workload.Openloop.per_domain = 200)

let run_cell_scorecard () =
  let resolve = Harness.Experiments.lock_resolver ~bound:32 () in
  let c =
    Workload.Suite.run_cell resolve ~virtual_bound:32 ~algo:"bakery_pp"
      ~nprocs:2 ~rate:4000.0 ~budget:(Workload.Openloop.Ops 200) ~seed:6 ()
  in
  check string_t "algo recorded" "bakery_pp" c.Workload.Scorecard.algo;
  check int_t "completed the budget" 200 c.Workload.Scorecard.completed;
  check bool_t "overflow telemetry attached" true
    (c.Workload.Scorecard.overflow <> None);
  check bool_t "percentiles ordered" true
    (c.Workload.Scorecard.p50_ns <= c.Workload.Scorecard.p99_ns
    && c.Workload.Scorecard.p99_ns <= c.Workload.Scorecard.max_ns)

let () =
  Alcotest.run "workload"
    [
      ( "poisson",
        [
          Alcotest.test_case "seeded determinism" `Quick poisson_determinism;
          Alcotest.test_case "empirical mean" `Quick poisson_mean;
          Alcotest.test_case "invalid rates raise" `Quick poisson_invalid;
          Alcotest.test_case "schedules increase, horizons hold" `Quick
            poisson_schedules;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            fingerprint_sensitivity;
          QCheck_alcotest.to_alcotest prop_exponential_tail;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "inversions" `Quick fairness_inversions;
          Alcotest.test_case "stall and jain" `Quick fairness_stall_and_jain;
        ] );
      ("slo", [ Alcotest.test_case "verdicts" `Quick slo_check ]);
      ( "observatory",
        [
          Alcotest.test_case "virtual-bound crossing is strict" `Quick
            observatory_crossing;
          Alcotest.test_case "reset storms" `Quick observatory_storms;
        ] );
      ( "scorecard",
        [
          Alcotest.test_case "json round trip" `Quick scorecard_roundtrip;
          Alcotest.test_case "malformed rows rejected" `Quick scorecard_rejects;
          Alcotest.test_case "determinism witness fields" `Quick
            scorecard_deterministic_fields;
        ] );
      ( "suite",
        [
          Alcotest.test_case "row persistence" `Quick rows_persistence;
          Alcotest.test_case "regress gate" `Quick regress_gate;
        ] );
      ( "openloop",
        [
          Alcotest.test_case "ops budget determinism" `Quick
            openloop_ops_determinism;
          Alcotest.test_case "run_cell scorecard" `Quick run_cell_scorecard;
        ] );
    ]
