(* Unit and property tests for the mxlang algorithm language:
   evaluator semantics, builder desugaring, validation, pretty-printing
   and TLA+ export. *)

open Mxlang

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* A tiny two-variable program used by many tests:
     shared a[1], b per process; locals x.
     s0: x := a[0] + 1         -> s1
     s1: if x > 2 then s2 else s0
     s2 (cs): b[self] := x     -> s0 *)
let tiny () =
  let open Dsl in
  let b = Builder.create ~title:"tiny" in
  let a = Builder.shared b "a" ~size:1 () in
  let bb = Builder.shared_per_process b "b" ~bounded:true () in
  let x = Builder.local b "x" in
  let s0 = Builder.fresh_label b "s0" in
  let s1 = Builder.fresh_label b "s1" in
  let s2 = Builder.fresh_label b "s2" in
  Builder.define b s0 ~kind:Ast.Plain
    [ Builder.action ~effects:[ set_local x (rd a zero +: one) ] s1 ];
  Builder.define b s1 ~kind:Ast.Plain (Builder.ite (lv x >: int 2) s2 s0);
  Builder.define b s2 ~kind:Ast.Critical
    [ Builder.action ~effects:[ set_own bb (lv x) ] s0 ];
  (a, bb, x, Builder.build b)

let env_of prog ~nprocs ~bound = Eval.make_env prog ~nprocs ~bound

(* ----------------------------------------------------------- evaluator *)

let eval_cases () =
  let _, _, _, prog = tiny () in
  let env = env_of prog ~nprocs:3 ~bound:7 in
  let shared = Eval.init_shared env in
  let locals = Eval.init_locals env in
  let e expr = Eval.eval env ~shared ~locals ~pid:1 expr in
  check int_t "N" 3 (e Ast.N);
  check int_t "M" 7 (e Ast.M);
  check int_t "Pid" 1 (e Ast.Pid);
  check int_t "Int" 42 (e (Ast.Int 42));
  check int_t "Add" 5 (e Ast.(Add (Int 2, Int 3)));
  check int_t "Sub" (-1) (e Ast.(Sub (Int 2, Int 3)));
  check int_t "Mul" 6 (e Ast.(Mul (Int 2, Int 3)));
  check int_t "Mod" 2 (e Ast.(Mod (Int 5, Int 3)));
  check int_t "Mod of negative is nonnegative" 1 (e Ast.(Mod (Int (-5), Int 3)));
  check int_t "Ite true" 1 (e Ast.(Ite (True, Int 1, Int 2)));
  check int_t "Ite false" 2 (e Ast.(Ite (False, Int 1, Int 2)))

let eval_reads () =
  let a, bvar, x, prog = tiny () in
  let env = env_of prog ~nprocs:3 ~bound:7 in
  let shared = Eval.init_shared env in
  let locals = Eval.init_locals env in
  shared.(Eval.offset env a) <- 9;
  shared.(Eval.offset env bvar + 2) <- 4;
  locals.(x) <- 5;
  let e expr = Eval.eval env ~shared ~locals ~pid:2 expr in
  check int_t "read scalar" 9 (e (Ast.Rd (a, Ast.Int 0)));
  check int_t "read own cell via Pid" 4 (e (Ast.Rd (bvar, Ast.Pid)));
  check int_t "read local" 5 (e (Ast.Local x));
  check int_t "max over array" 4 (e (Ast.Max_arr bvar));
  check bool_t "exists >= 4" true
    (Eval.eval_b env ~shared ~locals ~pid:2 (Ast.exists_cell bvar Ast.Cge (Ast.Int 4)));
  check bool_t "forall >= 4 is false" false
    (Eval.eval_b env ~shared ~locals ~pid:2 (Ast.forall_cell bvar Ast.Cge (Ast.Int 4)))

let eval_errors () =
  let a, _, _, prog = tiny () in
  let env = env_of prog ~nprocs:2 ~bound:3 in
  let shared = Eval.init_shared env in
  let locals = Eval.init_locals env in
  Alcotest.check_raises "index out of range"
    (Eval.Error "read a[5]: index out of range 0..0") (fun () ->
      ignore (Eval.eval env ~shared ~locals ~pid:0 (Ast.Rd (a, Ast.Int 5))));
  (match
     Eval.eval env ~shared ~locals ~pid:0 Ast.(Mod (Int 1, Int 0))
   with
  | exception Eval.Error _ -> ()
  | _ -> Alcotest.fail "expected Error on mod 0");
  match Eval.eval env ~shared ~locals ~pid:0 Ast.Qidx with
  | exception Eval.Error _ -> ()
  | _ -> Alcotest.fail "Qidx outside quantifier must fail"

let quantifier_ranges () =
  let _, bvar, _, prog = tiny () in
  let env = env_of prog ~nprocs:4 ~bound:9 in
  let shared = Eval.init_shared env in
  let locals = Eval.init_locals env in
  (* b = [0; 1; 2; 3] *)
  for i = 0 to 3 do
    shared.(Eval.offset env bvar + i) <- i
  done;
  let holds pid bx = Eval.eval_b env ~shared ~locals ~pid bx in
  let ge1 = Ast.(Cmp (Cge, Rd (bvar, Qidx), Int 1)) in
  check bool_t "Rall: not all >= 1" false (holds 2 (Ast.Qall (Ast.Rall, ge1)));
  check bool_t "Rothers from 0: all others >= 1" true
    (holds 0 (Ast.Qall (Ast.Rothers, ge1)));
  check bool_t "Rbelow 2: exists 0" true
    (holds 2 (Ast.Qexists (Ast.Rbelow, Ast.(Cmp (Ceq, Rd (bvar, Qidx), Int 0)))));
  check bool_t "Rabove 2: all >= 3" true
    (holds 2 (Ast.Qall (Ast.Rabove, Ast.(Cmp (Cge, Rd (bvar, Qidx), Int 3)))));
  check bool_t "Rabove 3: vacuous forall" true
    (holds 3 (Ast.Qall (Ast.Rabove, Ast.False)));
  check bool_t "Rbelow 0: vacuous forall" true
    (holds 0 (Ast.Qall (Ast.Rbelow, Ast.False)));
  check bool_t "Rabove 3: empty exists" false
    (holds 3 (Ast.Qexists (Ast.Rabove, Ast.True)))

let lex_order () =
  let _, _, _, prog = tiny () in
  let env = env_of prog ~nprocs:2 ~bound:3 in
  let shared = Eval.init_shared env in
  let locals = Eval.init_locals env in
  let lex (a, b) (c, d) =
    Eval.eval_b env ~shared ~locals ~pid:0
      Ast.(Lex_lt ((Int a, Int b), (Int c, Int d)))
  in
  check bool_t "(1,5) < (2,0)" true (lex (1, 5) (2, 0));
  check bool_t "(2,1) < (2,3)" true (lex (2, 1) (2, 3));
  check bool_t "not (2,3) < (2,3)" false (lex (2, 3) (2, 3));
  check bool_t "not (3,0) < (2,9)" false (lex (3, 0) (2, 9))

let simultaneous_assignment () =
  (* x, y := y, x must swap, not copy. *)
  let open Dsl in
  let b = Builder.create ~title:"swap" in
  let v = Builder.shared b "v" ~size:2 () in
  let s0 = Builder.fresh_label b "s0" in
  Builder.define b s0 ~kind:Ast.Plain
    [
      Builder.action
        ~effects:[ set v zero (rd v one); set v one (rd v zero) ]
        s0;
    ];
  let prog = Builder.build b in
  let env = env_of prog ~nprocs:1 ~bound:3 in
  let shared = Eval.init_shared env in
  let locals = Eval.init_locals env in
  shared.(0) <- 10;
  shared.(1) <- 20;
  (match Eval.enabled_actions env ~shared ~locals ~pid:0 ~pc:0 with
  | [ a ] -> Eval.apply env ~shared ~locals ~pid:0 a
  | _ -> Alcotest.fail "expected one enabled action");
  check int_t "v0 swapped" 20 shared.(0);
  check int_t "v1 swapped" 10 shared.(1)

(* ------------------------------------------------------------- builder *)

let builder_duplicate_define () =
  let b = Builder.create ~title:"dup" in
  let l = Builder.fresh_label b "l" in
  Builder.define b l ~kind:Ast.Plain [ Builder.goto l ];
  match Builder.define b l ~kind:Ast.Plain [ Builder.goto l ] with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "duplicate define must fail"

let builder_undefined_label () =
  let b = Builder.create ~title:"undef" in
  let l = Builder.fresh_label b "l" in
  let dangling = Builder.fresh_label b "nowhere" in
  Builder.define b l ~kind:Ast.Plain [ Builder.goto dangling ];
  match Builder.build b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "undefined label must fail"

let builder_metadata () =
  let _, _, _, prog = tiny () in
  check int_t "nvars" 2 prog.Ast.nvars;
  check int_t "nlocals" 1 prog.Ast.nlocals;
  check int_t "steps" 3 (Array.length prog.Ast.steps);
  check bool_t "b is per-process" true prog.Ast.per_process.(1);
  check bool_t "b is bounded" true prog.Ast.bounded.(1);
  check bool_t "a is not per-process" false prog.Ast.per_process.(0);
  check int_t "var_by_name" 1 (Ast.var_by_name prog "b");
  check int_t "pc_by_name" 2 (Ast.pc_by_name prog "s2");
  (match Ast.var_by_name prog "zzz" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown var must raise");
  check int_t "cells_of per-process" 5 (Ast.cells_of ~nprocs:5 prog 1);
  check int_t "cells_of scalar" 1 (Ast.cells_of ~nprocs:5 prog 0)

(* ------------------------------------------------------------ validate *)

let validate_good () =
  let _, _, _, prog = tiny () in
  Validate.assert_valid prog;
  let issues = Validate.check prog in
  check bool_t "no errors" true
    (List.for_all (fun i -> i.Validate.severity <> `Error) issues)

let validate_bad_target () =
  let prog =
    let _, _, _, p = tiny () in
    let steps = Array.copy p.Ast.steps in
    steps.(0) <-
      {
        (steps.(0)) with
        Ast.actions = [ { Ast.guard = Ast.True; effects = []; target = 99 } ];
      };
    { p with Ast.steps = steps }
  in
  (match Validate.assert_valid prog with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bad target must be rejected")

let validate_warnings () =
  (* A program with no Critical step should warn. *)
  let b = Builder.create ~title:"nocs" in
  let l = Builder.fresh_label b "l" in
  Builder.define b l ~kind:Ast.Plain [ Builder.goto l ];
  let prog = Builder.build b in
  let issues = Validate.check prog in
  check bool_t "warns about missing critical step" true
    (List.exists
       (fun i ->
         i.Validate.severity = `Warning
         && String.length i.Validate.message > 0)
       issues)

(* -------------------------------------------------------------- pretty *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let pretty_renders () =
  let _, _, _, prog = tiny () in
  let s = Pretty.program prog in
  List.iter
    (fun needle ->
      check bool_t (Printf.sprintf "listing mentions %s" needle) true
        (contains s needle))
    [ "algorithm tiny"; "shared a[1]"; "s2: (CS)"; "goto s0"; "x := " ]

(* ----------------------------------------------------------------- TLA *)

let tla_export () =
  let prog = Core.Bakery_pp_model.program () in
  let s = Tla.export prog in
  List.iter
    (fun needle ->
      check bool_t (Printf.sprintf "TLA module contains %s" needle) true
        (contains s needle))
    [
      "---- MODULE Bakery_pp_coarse ----";
      "CONSTANTS NProc, MaxReg";
      "Init ==";
      "Next ==";
      "Mutex ==";
      "NoOverflow ==";
      "number' = [number EXCEPT";
      "\\E q \\in Procs";
      "====";
    ];
  check bool_t "module name sanitized" true
    (Tla.module_name prog = "Bakery_pp_coarse")

let tla_unchanged_clause () =
  let _, _, _, prog = tiny () in
  let s = Tla.export prog in
  check bool_t "UNCHANGED lists untouched vars" true (contains s "UNCHANGED")

(* ---------------------------------------------------------- properties *)

let prop_mod_nonnegative =
  QCheck.Test.make ~name:"Mod always yields value in [0, |d|)" ~count:500
    QCheck.(pair int (int_range 1 1000))
    (fun (a, d) ->
      let _, _, _, prog = tiny () in
      let env = env_of prog ~nprocs:2 ~bound:3 in
      let shared = Eval.init_shared env in
      let locals = Eval.init_locals env in
      let v =
        Eval.eval env ~shared ~locals ~pid:0 Ast.(Mod (Int a, Int d))
      in
      v >= 0 && v < d)

let prop_lex_is_strict_order =
  QCheck.Test.make ~name:"ticket order is a strict total order on distinct pairs"
    ~count:500
    QCheck.(quad (int_range 0 5) (int_range 0 3) (int_range 0 5) (int_range 0 3))
    (fun (a, b, c, d) ->
      let _, _, _, prog = tiny () in
      let env = env_of prog ~nprocs:2 ~bound:3 in
      let shared = Eval.init_shared env in
      let locals = Eval.init_locals env in
      let lt (x1, y1) (x2, y2) =
        Eval.eval_b env ~shared ~locals ~pid:0
          Ast.(Lex_lt ((Int x1, Int y1), (Int x2, Int y2)))
      in
      let p = (a, b) and q = (c, d) in
      if p = q then (not (lt p q)) && not (lt q p)
      else lt p q <> lt q p)

let prop_max_arr =
  QCheck.Test.make ~name:"Max_arr equals List maximum" ~count:200
    QCheck.(array_of_size (QCheck.Gen.return 4) (int_range 0 100))
    (fun values ->
      let _, bvar, _, prog = tiny () in
      let env = env_of prog ~nprocs:4 ~bound:1000 in
      let shared = Eval.init_shared env in
      let locals = Eval.init_locals env in
      Array.iteri (fun i v -> shared.(Eval.offset env bvar + i) <- v) values;
      Eval.eval env ~shared ~locals ~pid:0 (Ast.Max_arr bvar)
      = Array.fold_left max values.(0) values)

(* ---------------------------------------------------------- fuzzing *)

(* Random well-formed programs: valid label targets, in-range variable
   references (indices restricted to [Pid] and constant 0), small
   constants.  The property: the whole pipeline — validation, pretty,
   TLA+ export, bounded exploration, simulation — accepts them without
   raising. *)
let random_program_gen =
  let open QCheck.Gen in
  let* nsteps = int_range 2 5 in
  let* seed = int_range 0 1_000_000 in
  return (nsteps, seed)

let build_random_program (nsteps, seed) =
  let rng = Prng.Rng.create seed in
  let open Dsl in
  let b = Builder.create ~title:(Printf.sprintf "fuzz_%d_%d" nsteps seed) in
  let v1 = Builder.shared_per_process b "pp" ~bounded:(Prng.Rng.bool rng) () in
  let v2 = Builder.shared b "sc" ~size:1 () in
  let x = Builder.local b "x" in
  let labels =
    Array.init nsteps (fun i -> Builder.fresh_label b (Printf.sprintf "f%d" i))
  in
  let any_label () = labels.(Prng.Rng.int rng nsteps) in
  let rand_expr () =
    match Prng.Rng.int rng 6 with
    | 0 -> int (Prng.Rng.int rng 4)
    | 1 -> rd_own v1
    | 2 -> rd v2 zero
    | 3 -> lv x
    | 4 -> max_arr v1
    | _ -> lv x +: one
  in
  let rand_guard () =
    match Prng.Rng.int rng 4 with
    | 0 -> tt
    | 1 -> rand_expr () <=: rand_expr ()
    | 2 -> exists v1 Ast.Cge (rand_expr ())
    | _ -> not_ (rand_expr () =: rand_expr ())
  in
  let rand_effect () =
    match Prng.Rng.int rng 3 with
    | 0 -> set_own v1 (rand_expr ())
    | 1 -> set v2 zero (rand_expr ())
    | _ -> set_local x (rand_expr ())
  in
  Array.iteri
    (fun i lab ->
      let nacts = 1 + Prng.Rng.int rng 2 in
      let actions =
        List.init nacts (fun _ ->
            let effects = List.init (Prng.Rng.int rng 3) (fun _ -> rand_effect ()) in
            Builder.action ~guard:(rand_guard ()) ~effects (any_label ()))
      in
      let kind =
        match i with
        | 0 -> Ast.Noncritical
        | 1 -> Ast.Critical
        | _ -> Ast.Plain
      in
      Builder.define b lab ~kind actions)
    labels;
  Builder.build b

let prop_pipeline_total =
  QCheck.Test.make
    ~name:"random programs flow through validate/pretty/TLA/check/sim" ~count:60
    (QCheck.make random_program_gen)
    (fun params ->
      let prog = build_random_program params in
      Validate.assert_valid prog;
      let (_ : string) = Pretty.program prog in
      let (_ : string) = Tla.export prog in
      let sys = Modelcheck.System.make prog ~nprocs:2 ~bound:3 in
      let (_ : Modelcheck.Explore.result) =
        Modelcheck.Explore.run ~invariants:[] ~check_deadlock:false
          ~max_states:2_000 sys
      in
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs:2 ~bound:3) with
          strategy = Schedsim.Scheduler.Uniform (snd params);
          max_steps = 2_000;
        }
      in
      let (_ : Schedsim.Runner.result) = Schedsim.Runner.run prog cfg in
      true)

(* ------------------------------------------- weak-register candidates *)

module MC = Modelcheck

(* Writer/reader toy: pid 0 writes x[0] := 2 while pid 1 copies x[0]
   into a local.  Driving pid 0 through its first move only (under a
   weak model, the write-start — the write is then in flight) and
   collecting pid 1's successor states pins exactly which values an
   overlapped read may return under each register model. *)
let wr_toy () =
  let open Dsl in
  let b = Builder.create ~title:"wr_toy" in
  let x = Builder.shared b "x" ~size:1 ~bounded:true () in
  let seen = Builder.local b "seen" in
  let start = Builder.fresh_label b "start" in
  let stop = Builder.fresh_label b "stop" in
  Builder.define b start ~kind:Ast.Plain
    [
      Builder.action ~guard:(self =: zero) ~effects:[ set x zero (int 2) ] stop;
      Builder.action ~guard:(self =: one)
        ~effects:[ set_local seen (rd x zero) ]
        stop;
    ];
  Builder.define b stop ~kind:Ast.Plain [ Builder.action ~guard:ff stop ];
  Builder.build b

let wr_sys model =
  MC.System.make ~register_model:model (wr_toy ()) ~nprocs:2 ~bound:3

(* pid 1's reachable values of [seen] from state [s], deduplicated *)
let reader_sees sys s =
  let lay = MC.System.layout sys in
  MC.System.successors_of_pid sys s 1
  |> List.map (fun (mv : MC.System.move) ->
         (MC.State.locals_part lay mv.dest 1).(0))
  |> List.sort_uniq compare

(* drive pid 0 one move (under a weak model: the write-start) *)
let after_p0 sys =
  match MC.System.successors_of_pid sys (MC.System.initial sys) 0 with
  | [ mv ] -> mv.MC.System.dest
  | ms -> Alcotest.failf "expected 1 move for pid 0, got %d" (List.length ms)

let regsem_no_overlap_singleton () =
  (* no in-flight write anywhere: the read is a singleton under every
     model — weakening only bites on overlap *)
  List.iter
    (fun model ->
      let sys = wr_sys model in
      check
        (Alcotest.list int_t)
        (Regsem.Model.to_string model ^ ": quiescent read is a singleton")
        [ 0 ]
        (reader_sees sys (MC.System.initial sys)))
    Regsem.Model.all

let regsem_regular_old_or_new () =
  let sys = wr_sys Regsem.Model.Regular in
  check
    (Alcotest.list int_t)
    "overlapped regular read sees exactly {old, new}" [ 0; 2 ]
    (reader_sees sys (after_p0 sys))

let regsem_safe_full_range () =
  let sys = wr_sys Regsem.Model.Safe in
  let ceil = (Regsem.Domain.ceilings (wr_toy ()) ~nprocs:2 ~bound:3).(0) in
  check bool_t "interval analysis covers the written value" true (ceil >= 2);
  let vals = reader_sees sys (after_p0 sys) in
  check
    (Alcotest.list int_t)
    "overlapped safe read sees the full register range"
    (List.init (ceil + 1) Fun.id)
    vals;
  (* the range includes 1, a value no process ever writes *)
  check bool_t "safe candidates include a never-written value" true
    (List.mem 1 vals)

let regsem_atomic_never_overlaps () =
  let sys = wr_sys Regsem.Model.Atomic in
  (* atomic writes land in one step: after pid 0 moves, only the new
     value is observable, and every move carries the trivial rank *)
  check (Alcotest.list int_t) "atomic read after the write" [ 2 ]
    (reader_sees sys (after_p0 sys));
  List.iter
    (fun (mv : MC.System.move) ->
      check int_t "atomic flick rank" 0 mv.MC.System.flick)
    (MC.System.successors sys (MC.System.initial sys))

let regsem_rank0_unperturbed () =
  let sys = wr_sys Regsem.Model.Safe in
  let s = after_p0 sys in
  let lay = MC.System.layout sys in
  let moves = MC.System.successors_of_pid sys s 1 in
  match
    List.filter (fun (mv : MC.System.move) -> mv.MC.System.flick = 0) moves
  with
  | [ mv ] ->
      check int_t "rank 0 reads the register's current value" 0
        (MC.State.locals_part lay mv.dest 1).(0);
      check
        (Alcotest.list (Alcotest.pair int_t int_t))
        "rank 0 decodes to no flickered cells" []
        (MC.System.flick_assignment sys s ~pid:1 ~pc:mv.from_pc ~alt:mv.alt
           ~flick:0)
  | _ -> Alcotest.fail "expected exactly one rank-0 move"

let () =
  Alcotest.run "mxlang"
    [
      ( "eval",
        [
          Alcotest.test_case "constants and arithmetic" `Quick eval_cases;
          Alcotest.test_case "shared and local reads" `Quick eval_reads;
          Alcotest.test_case "dynamic errors" `Quick eval_errors;
          Alcotest.test_case "quantifier ranges" `Quick quantifier_ranges;
          Alcotest.test_case "lexicographic ticket order" `Quick lex_order;
          Alcotest.test_case "simultaneous assignment" `Quick
            simultaneous_assignment;
        ] );
      ( "builder",
        [
          Alcotest.test_case "duplicate define rejected" `Quick
            builder_duplicate_define;
          Alcotest.test_case "undefined label rejected" `Quick
            builder_undefined_label;
          Alcotest.test_case "program metadata" `Quick builder_metadata;
        ] );
      ( "validate",
        [
          Alcotest.test_case "well-formed program passes" `Quick validate_good;
          Alcotest.test_case "dangling target rejected" `Quick
            validate_bad_target;
          Alcotest.test_case "missing critical step warns" `Quick
            validate_warnings;
        ] );
      ( "pretty",
        [ Alcotest.test_case "listing mentions key parts" `Quick pretty_renders ] );
      ( "tla",
        [
          Alcotest.test_case "bakery_pp module exports" `Quick tla_export;
          Alcotest.test_case "UNCHANGED clause present" `Quick
            tla_unchanged_clause;
        ] );
      ( "regsem",
        [
          Alcotest.test_case "no overlapping write => singleton" `Quick
            regsem_no_overlap_singleton;
          Alcotest.test_case "regular read sees {old, new}" `Quick
            regsem_regular_old_or_new;
          Alcotest.test_case "safe read sees the full range" `Quick
            regsem_safe_full_range;
          Alcotest.test_case "atomic never overlaps" `Quick
            regsem_atomic_never_overlaps;
          Alcotest.test_case "rank 0 is the unperturbed view" `Quick
            regsem_rank0_unperturbed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mod_nonnegative; prop_lex_is_strict_order; prop_max_arr;
            prop_pipeline_total;
          ] );
    ]
