(* Tests for the experiment harness: statistics, tables, workloads,
   the throughput runner, and smoke runs of the experiment registry in
   quick mode. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-9

module S = Harness.Stats
module T = Harness.Table

(* ---------------------------------------------------------------- stats *)

let stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check float_t "mean" 2.5 (S.mean xs);
  check float_t "median" 2.5 (S.median xs);
  check float_t "min" 1.0 (S.minimum xs);
  check float_t "max" 4.0 (S.maximum xs);
  check float_t "p0" 1.0 (S.percentile xs 0.0);
  check float_t "p100" 4.0 (S.percentile xs 100.0);
  check float_t "p50 single" 7.0 (S.percentile [| 7.0 |] 50.0);
  check bool_t "stddev positive" true (S.stddev xs > 1.0 && S.stddev xs < 1.5);
  check float_t "stddev of singleton" 0.0 (S.stddev [| 3.0 |])

let stats_jain () =
  check float_t "jain equal" 1.0 (S.jain [| 5.0; 5.0; 5.0 |]);
  let unfair = S.jain [| 10.0; 0.0; 0.0; 0.0 |] in
  check bool_t "jain maximally unfair is 1/N" true (abs_float (unfair -. 0.25) < 1e-9);
  check float_t "jain all zero" 1.0 (S.jain [| 0.0; 0.0 |])

let stats_errors () =
  (match S.mean [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty mean rejected");
  match S.percentile [| 1.0 |] 101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile out of range rejected"

let stats_format_si () =
  check Alcotest.string "plain" "12" (S.format_si 12.0);
  check Alcotest.string "kilo" "12.30k" (S.format_si 12_300.0);
  check Alcotest.string "mega" "4.56M" (S.format_si 4_560_000.0);
  check Alcotest.string "giga" "1.20G" (S.format_si 1.2e9)

(* ---------------------------------------------------------------- table *)

let table_render_and_csv () =
  let t = T.make ~title:"demo" ~notes:[ "a note" ] [ "name"; "value" ] in
  T.add_row t [ "alpha"; "1" ];
  T.add_rowf t "beta|%d" 2;
  let s = T.render t in
  let has needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check bool_t "title" true (has "== demo ==");
  check bool_t "row" true (has "alpha");
  check bool_t "note" true (has "note: a note");
  let csv = T.to_csv t in
  check bool_t "csv header" true (String.length csv > 0 && String.sub csv 0 10 = "name,value");
  (match T.add_row t [ "only-one-cell" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch rejected");
  let q = T.make ~title:"q" [ "x" ] in
  T.add_row q [ "has,comma" ];
  check bool_t "csv escaping" true
    (let c = T.to_csv q in
     let needle = "\"has,comma\"" in
     let n = String.length needle and h = String.length c in
     let rec go i = i + n <= h && (String.sub c i n = needle || go (i + 1)) in
     go 0)

(* ------------------------------------------------------------- workload *)

let workload_draws () =
  let rng = Prng.Rng.create 1 in
  check int_t "fixed" 7 (Workload.Shape.draw rng (Workload.Shape.Fixed 7));
  for _ = 1 to 100 do
    let v = Workload.Shape.draw rng (Workload.Shape.Uniform (3, 9)) in
    check bool_t "uniform in range" true (v >= 3 && v <= 9)
  done;
  match Workload.Shape.draw rng (Workload.Shape.Uniform (9, 3)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty range rejected"

let workload_spin_effectful () =
  check bool_t "spin returns a value" true (Workload.Shape.spin 100 <> 0);
  check int_t "spin 0 is identity-ish" 1 (Workload.Shape.spin 0)

(* ----------------------------------------------------------- throughput *)

let throughput_runs () =
  let f = Harness.Registry.find_family "tas" in
  let inst = f.make ~nprocs:2 ~bound:8 in
  let r = Harness.Throughput.run ~duration:0.05 inst ~nprocs:2 in
  check int_t "two domains" 2 (Array.length r.per_domain);
  check int_t "total is the sum" r.total (Array.fold_left ( + ) 0 r.per_domain);
  check bool_t "some progress" true (r.total > 0);
  check bool_t "ops rate positive" true (r.ops_per_sec > 0.0)

let overflow_runner () =
  let lock = Locks.Bakery_bounded_lock.create ~nprocs:2 ~bound:16 in
  let r =
    Harness.Throughput.run_until_overflow ~max_seconds:3.0
      ~make:(fun () ->
        Locks.Lock_intf.instance_of (module Locks.Bakery_bounded_lock) lock)
      ~recover:(Locks.Bakery_bounded_lock.crash_reset lock)
      ~nprocs:2 ()
  in
  check bool_t "terminates with a count" true (r.acquires_before >= 0);
  if r.overflowed then
    check bool_t "overflow was counted by the registers" true
      (Locks.Bakery_bounded_lock.overflows lock >= 1)

(* ---------------------------------------------------------------- chart *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let chart_renders () =
  let s =
    Harness.Chart.render ~title:"demo" ~x_label:"n" ~y_label:"t"
      [
        { Harness.Chart.label = "a"; marker = '*'; points = [ (1.0, 1.0); (2.0, 4.0) ] };
        { Harness.Chart.label = "b"; marker = 'o'; points = [ (1.0, 2.0); (2.0, 8.0) ] };
      ]
  in
  check bool_t "title" true (contains s "-- demo --");
  check bool_t "legend a" true (contains s "* = a");
  check bool_t "legend b" true (contains s "o = b");
  check bool_t "has markers" true (contains s "*" && contains s "o")

let chart_log_axes () =
  let s =
    Harness.Chart.render ~title:"log" ~log_x:true ~log_y:true
      [
        {
          Harness.Chart.label = "p";
          marker = '#';
          points = [ (10.0, 100.0); (100.0, 1000.0); (-1.0, 5.0) ];
        };
      ]
  in
  check bool_t "log axis annotated" true (contains s "1e");
  (* the (-1, 5) point is silently dropped on a log axis *)
  check bool_t "renders despite bad point" true (contains s "#")

let chart_errors () =
  (match
     Harness.Chart.render ~title:"none" ~log_x:true
       [ { Harness.Chart.label = "z"; marker = '*'; points = [ (-1.0, 1.0) ] } ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no plottable points must raise");
  match
    Harness.Chart.render ~title:"tiny" ~width:2 ~height:2
      [ { Harness.Chart.label = "z"; marker = '*'; points = [ (1.0, 1.0) ] } ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tiny canvas must raise"

let figures_smoke () =
  List.iter
    (fun (id, chart) ->
      check bool_t (id ^ " rendered") true (String.length chart > 200))
    (Harness.Figures.all ~quick:true)

(* ------------------------------------------------------------- registry *)

let registry_families () =
  check int_t "eighteen lock families" 18
    (List.length Harness.Registry.lock_families);
  let names =
    List.map
      (fun (f : Locks.Lock_intf.family) -> f.family_name)
      Harness.Registry.lock_families
  in
  List.iter
    (fun n -> check bool_t (n ^ " registered") true (List.mem n names))
    [ "bakery"; "bakery_pp"; "black_white_bakery"; "ticket_mod"; "ttas" ];
  match Harness.Registry.find_family "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown family must raise"

(* ---------------------------------------------------------- experiments *)

let experiment_registry () =
  check int_t "sixteen experiments plus three ablations" 19
    (List.length Harness.Experiments.all);
  let expected =
    [
      "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
      "e12"; "e13"; "e14"; "e15"; "e16"; "a1"; "a2"; "a3";
    ]
  in
  check (Alcotest.list Alcotest.string) "ids are ordered" expected
    (List.map (fun (e : Harness.Experiments.experiment) -> e.id)
       Harness.Experiments.all);
  match Harness.Experiments.find "e99" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown experiment must raise"

(* Each experiment must produce well-formed, non-empty tables in quick
   mode.  The checker-only ones are cheap; the domain ones take a few
   hundred milliseconds each. *)
let experiment_smoke id =
  let e = Harness.Experiments.find id in
  let tables = e.run ~quick:true in
  check bool_t (id ^ " produced tables") true (List.length tables > 0);
  List.iter
    (fun t ->
      let rendered = Harness.Table.render t in
      check bool_t (id ^ " table nonempty") true (String.length rendered > 80))
    tables

let () =
  Alcotest.run "harness"
    [
      ( "stats",
        [
          Alcotest.test_case "descriptive stats" `Quick stats_basics;
          Alcotest.test_case "jain index" `Quick stats_jain;
          Alcotest.test_case "error cases" `Quick stats_errors;
          Alcotest.test_case "SI formatting" `Quick stats_format_si;
        ] );
      ("table", [ Alcotest.test_case "render and csv" `Quick table_render_and_csv ]);
      ( "workload",
        [
          Alcotest.test_case "draws" `Quick workload_draws;
          Alcotest.test_case "spin" `Quick workload_spin_effectful;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "domain runner" `Quick throughput_runs;
          Alcotest.test_case "overflow runner" `Slow overflow_runner;
        ] );
      ( "chart",
        [
          Alcotest.test_case "renders" `Quick chart_renders;
          Alcotest.test_case "log axes" `Quick chart_log_axes;
          Alcotest.test_case "error cases" `Quick chart_errors;
          Alcotest.test_case "figures (quick)" `Slow figures_smoke;
        ] );
      ("registry", [ Alcotest.test_case "lock families" `Quick registry_families ]);
      ( "experiments",
        Alcotest.test_case "registry shape" `Quick experiment_registry
        :: List.map
             (fun id ->
               Alcotest.test_case (id ^ " quick run") `Slow (fun () ->
                   experiment_smoke id))
             [
               "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10";
               "e12"; "e13"; "e15"; "e16"; "a1"; "a2"; "a3";
             ] );
    ]
