(* Telemetry subsystem tests: histogram bucket/percentile math, snapshot
   determinism, JSON round-trips and JSONL sink escaping, progress
   rate-limiting, bench-driver argv scanning, the lock latency wrapper —
   and the load-bearing one: exploration with telemetry attached is
   bit-identical to exploration without it. *)

module T = Telemetry
module MC = Modelcheck

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* ------------------------------------------------------------ metrics *)

let counters_and_gauges () =
  let m = T.Metrics.create () in
  let c = T.Metrics.counter m "events" in
  T.Metrics.incr c;
  T.Metrics.add c 9;
  check int_t "counter accumulates" 10 (T.Metrics.counter_value c);
  let c' = T.Metrics.counter m "events" in
  T.Metrics.incr c';
  check int_t "same name, same counter" 11 (T.Metrics.counter_value c);
  let g = T.Metrics.gauge m "depth" in
  T.Metrics.set g 42.0;
  T.Metrics.set g 17.0;
  check (Alcotest.float 0.0) "gauge keeps last" 17.0 (T.Metrics.gauge_value g);
  (match T.Metrics.gauge m "events" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise")

let histogram_buckets () =
  let m = T.Metrics.create () in
  let h = T.Metrics.histogram m ~buckets:[| 1.0; 2.0; 5.0 |] "lat" in
  check bool_t "empty percentile is nan" true
    (Float.is_nan (T.Metrics.percentile h 0.5));
  (* a value exactly on a bound lands in that bucket (upper bounds are
     inclusive), one just above spills into the next *)
  T.Metrics.observe h 1.0;
  check (Alcotest.float 0.0) "on-bound stays" 1.0 (T.Metrics.percentile h 1.0);
  T.Metrics.observe h 1.0001;
  check (Alcotest.float 0.0) "above bound spills" 2.0
    (T.Metrics.percentile h 1.0);
  (* overflow bucket reports the maximum observation, not a bound *)
  T.Metrics.observe h 7.5;
  check (Alcotest.float 0.0) "overflow reports max" 7.5
    (T.Metrics.percentile h 1.0)

let percentile_math () =
  let m = T.Metrics.create () in
  let h = T.Metrics.histogram m ~buckets:[| 1.0; 2.0; 5.0 |] "lat" in
  for _ = 1 to 100 do
    T.Metrics.observe h 0.5
  done;
  for _ = 1 to 100 do
    T.Metrics.observe h 1.5
  done;
  (* rank = ceil(q * 200): q=0.5 -> rank 100, inside the first bucket *)
  check (Alcotest.float 0.0) "p50" 1.0 (T.Metrics.percentile h 0.50);
  check (Alcotest.float 0.0) "p95" 2.0 (T.Metrics.percentile h 0.95);
  match T.Metrics.snapshot m with
  | [ ("lat", T.Metrics.Histogram s) ] ->
      check int_t "count" 200 s.count;
      check (Alcotest.float 1e-9) "sum" 200.0 s.sum;
      check (Alcotest.float 0.0) "min" 0.5 s.min;
      check (Alcotest.float 0.0) "max" 1.5 s.max
  | _ -> Alcotest.fail "snapshot shape"

let snapshot_determinism () =
  let m = T.Metrics.create () in
  T.Metrics.set (T.Metrics.gauge m "zulu") 1.0;
  T.Metrics.incr (T.Metrics.counter m "alpha");
  T.Metrics.observe (T.Metrics.histogram m "mike") 0.5;
  let names = List.map fst (T.Metrics.snapshot m) in
  check (Alcotest.list string_t) "sorted by name"
    [ "alpha"; "mike"; "zulu" ] names;
  check bool_t "snapshots of unchanged registry are equal" true
    (T.Metrics.snapshot m = T.Metrics.snapshot m)

(* ----------------------------------------------------------- quantile *)

(* The atomic bucket walk in Metrics and the reference bucketizer in
   Quantile must be the same estimator: feed identical samples to both
   and demand identical answers at every tail, p999 included.  This is
   the gate that keeps a future "optimisation" of one copy from
   silently changing what p99 means. *)
let quantile_differential () =
  let rng = Random.State.make [| 0xB41; 7 |] in
  let bounds = T.Quantile.default_buckets in
  for case = 1 to 20 do
    let n = 1 + Random.State.int rng 500 in
    let samples =
      Array.init n (fun _ ->
          (* span the ladder: log-uniform over ~[1e-7, 20) hits the
             underflow bucket, every middle bucket and the overflow *)
          1e-7 *. exp (Random.State.float rng (log 2e8)))
    in
    let m = T.Metrics.create () in
    let h = T.Metrics.histogram m ~buckets:bounds "lat" in
    Array.iter (T.Metrics.observe h) samples;
    List.iter
      (fun q ->
        let fast = T.Metrics.percentile h q in
        let ref_v = T.Quantile.of_samples ~bounds samples ~q in
        check (Alcotest.float 0.0)
          (Printf.sprintf "case %d n=%d q=%g" case n q)
          ref_v fast)
      [ 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ]
  done

let quantile_edges () =
  check int_t "rank clamps to 1" 1 (T.Quantile.rank ~q:0.0 ~count:100);
  check int_t "rank is a ceiling" 51 (T.Quantile.rank ~q:0.505 ~count:100);
  check int_t "rank tops out at count" 100 (T.Quantile.rank ~q:1.0 ~count:100);
  check bool_t "empty estimate is nan" true
    (Float.is_nan
       (T.Quantile.estimate ~bounds:[| 1.0 |] ~counts:[| 0; 0 |] ~max:nan
          ~q:0.5));
  (* a rank landing in the overflow bucket reports the observed max,
     not a bucket bound *)
  check (Alcotest.float 0.0) "overflow reports max" 42.0
    (T.Quantile.estimate ~bounds:[| 1.0 |] ~counts:[| 1; 1 |] ~max:42.0 ~q:1.0)

(* p999 is part of the shared contract: present in snapshots, in the
   JSON encoding, and in the lock-latency stats, always ordered within
   the tail. *)
let p999_everywhere () =
  let m = T.Metrics.create () in
  let h = T.Metrics.histogram m "lat" in
  for _ = 1 to 998 do
    T.Metrics.observe h 1e-4
  done;
  T.Metrics.observe h 2.0;
  T.Metrics.observe h 2.0;
  (* count 1000: rank(0.999) = 999 > 998 small observations, so p999
     must resolve into the outlier bucket while p99 stays small *)
  (match T.Metrics.snapshot m with
  | [ ("lat", T.Metrics.Histogram s) ] ->
      check bool_t "tail ordered p50<=p95<=p99<=p999<=max" true
        (s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999
       && s.p999 <= s.max);
      check (Alcotest.float 0.0) "p999 catches the 1-in-1000 outlier" 2.0
        s.p999;
      (match T.Metrics.value_to_json (T.Metrics.Histogram s) with
      | T.Json.Obj fields ->
          check bool_t "p999 serialized" true (List.mem_assoc "p999" fields)
      | _ -> Alcotest.fail "histogram JSON is not an object")
  | _ -> Alcotest.fail "snapshot shape");
  check bool_t "lock ladder is the shared one" true
    (Locks.Latency.buckets_s = T.Quantile.latency_buckets_s)

(* --------------------------------------------------------------- json *)

let json_roundtrip () =
  let open T.Json in
  let v =
    Obj
      [
        ("name", Str "quote\" slash\\ newline\n tab\t ctrl\x01");
        ("xs", Arr [ Num 1.0; Num 2.5; Bool true; Null ]);
        ("t", Num 1785969713.25);
      ]
  in
  match parse (to_string v) with
  | Ok v' ->
      check bool_t "round trip" true (v = v');
      check bool_t "timestamp precision survives" true
        (member "t" v' = Some (Num 1785969713.25))
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let json_errors () =
  let bad s =
    match T.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted invalid JSON: " ^ s)
  in
  bad "";
  bad "{";
  bad "[1, ]";
  bad "{\"a\": 1,}";
  bad "[1] trailing";
  bad "\"unterminated";
  match T.Json.parse "  [1, {\"a\": [true, null]}]  " with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("rejected valid JSON: " ^ e)

let jsonl_sink_escaping () =
  let path = Filename.temp_file "telemetry" ".jsonl" in
  let sink = T.Sink.jsonl path in
  sink.emit
    (T.Sink.event ~time:1.5 ~kind:"progress" ~name:"weird \"name\"\n"
       [ ("k\\ey", T.Json.Str "v\nal"); ("n", T.Json.Num 3.0) ]);
  sink.emit (T.Sink.event ~time:2.0 ~kind:"span" ~name:"ok" []);
  sink.close ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check int_t "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match T.Json.parse line with
      | Ok (T.Json.Obj fields) ->
          check bool_t "has t/kind/name" true
            (List.mem_assoc "t" fields
            && List.mem_assoc "kind" fields
            && List.mem_assoc "name" fields)
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.fail ("unparseable JSONL line: " ^ e))
    lines;
  match T.Json.parse (List.hd lines) with
  | Ok v ->
      check bool_t "escaped name round-trips" true
        (T.Json.member "name" v = Some (T.Json.Str "weird \"name\"\n"));
      check bool_t "escaped field round-trips" true
        (T.Json.member "k\\ey" v = Some (T.Json.Str "v\nal"))
  | Error e -> Alcotest.fail e

(* ----------------------------------------------------------- progress *)

let progress_rate_limit () =
  let count = ref 0 in
  let sink =
    { T.Sink.emit = (fun _ -> incr count); close = (fun () -> ()) }
  in
  (* a huge interval: nothing emits no matter how hard we tick *)
  let p = T.Progress.create ~interval:3600.0 ~batch:1 ~name:"t" sink () in
  for _ = 1 to 10_000 do
    T.Progress.tick p (fun () -> [])
  done;
  check int_t "rate-limited ticks emit nothing" 0 !count;
  T.Progress.force p (fun () -> []);
  check int_t "force always emits" 1 !count;
  check int_t "emitted agrees" 1 (T.Progress.emitted p);
  (* zero interval: every poll emits *)
  let p0 = T.Progress.create ~interval:0.0 ~batch:1 ~name:"t" sink () in
  count := 0;
  for _ = 1 to 5 do
    T.Progress.poll p0 (fun () -> [])
  done;
  check int_t "zero interval emits every poll" 5 !count

let progress_fields_lazy () =
  (* the field thunk must not run when no line is due *)
  let sink = T.Sink.null in
  let p = T.Progress.create ~interval:3600.0 ~batch:8 ~name:"t" sink () in
  let evaluated = ref 0 in
  for _ = 1 to 1000 do
    T.Progress.tick p (fun () ->
        incr evaluated;
        [])
  done;
  check int_t "field thunk never evaluated" 0 !evaluated

let clock_monotone () =
  let last = ref (T.Clock.now_s ()) in
  for _ = 1 to 1000 do
    let n = T.Clock.now_s () in
    check bool_t "now_s non-decreasing" true (n >= !last);
    last := n
  done

let runmeta_capture () =
  let m = T.Runmeta.capture () in
  check bool_t "nprocs positive" true (m.nprocs >= 1);
  check string_t "ocaml version" Sys.ocaml_version m.ocaml;
  check bool_t "git rev nonempty" true (String.length m.git_rev > 0);
  let fields = T.Runmeta.to_fields m in
  check bool_t "fields cover the record" true
    (List.for_all
       (fun k -> List.mem_assoc k fields)
       [ "git_rev"; "host"; "nprocs"; "os"; "ocaml" ])

(* ------------------------------------------------------------ argscan *)

let argscan_presence () =
  let present, rest =
    Harness.Argscan.extract_presence ~flag:"--quick"
      [ "e1"; "--quick"; "e2"; "--quick" ]
  in
  check bool_t "found" true present;
  check (Alcotest.list string_t) "all occurrences removed" [ "e1"; "e2" ] rest;
  let present, rest = Harness.Argscan.extract_presence ~flag:"--quick" [ "e1" ] in
  check bool_t "absent" false present;
  check (Alcotest.list string_t) "untouched" [ "e1" ] rest

let argscan_value () =
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.fail ("unexpected error: " ^ e)
  in
  let v, rest =
    ok (Harness.Argscan.extract_value ~flag:"--json" [ "e11"; "--json"; "o.json" ])
  in
  check bool_t "value extracted" true (v = Some "o.json");
  check (Alcotest.list string_t) "flag and value removed" [ "e11" ] rest;
  let v, rest = ok (Harness.Argscan.extract_value ~flag:"--json" [ "e11" ]) in
  check bool_t "absent is None" true (v = None);
  check (Alcotest.list string_t) "args untouched" [ "e11" ] rest;
  let err args =
    match Harness.Argscan.extract_value ~flag:"--json" args with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted: " ^ String.concat " " args)
  in
  err [ "--json" ];
  err [ "e11"; "--json" ];
  err [ "--json"; "a.json"; "--json"; "b.json" ];
  (* interleaved with another option: the "value" is itself a flag *)
  err [ "--json"; "--quick"; "a.json" ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* every parse error names the offending flag itself, so a driver with
   several value flags never reports the wrong one (or none at all) *)
let argscan_error_messages () =
  let msg args =
    match Harness.Argscan.extract_value ~docv:"FILE" ~flag:"--json" args with
    | Error e -> e
    | Ok _ -> Alcotest.fail ("accepted: " ^ String.concat " " args)
  in
  let check_named what args fragment =
    let e = msg args in
    check bool_t (what ^ ": names the flag") true
      (contains ~needle:"--json" e);
    check bool_t
      (what ^ ": explains itself (" ^ e ^ ")")
      true
      (contains ~needle:fragment e)
  in
  check_named "duplicate"
    [ "--json"; "a.json"; "--json"; "b.json" ]
    "more than once";
  check_named "dangling" [ "e11"; "--json" ] "missing FILE";
  check_named "option as value" [ "--json"; "--quick"; "a.json" ] "--quick";
  (* the default value description is VALUE *)
  let e =
    match Harness.Argscan.extract_value ~flag:"--out" [ "--out" ] with
    | Error e -> e
    | Ok _ -> Alcotest.fail "accepted dangling --out"
  in
  check bool_t "default docv" true (contains ~needle:"missing VALUE" e);
  check bool_t "default docv names flag" true (contains ~needle:"--out: " e)

(* unit-suffixed values: the duration/count grammar `bench locks` uses
   for --rate and --duration *)
let argscan_suffixed () =
  let ok raw expect =
    match Harness.Argscan.parse_suffixed ~flag:"--rate" raw with
    | Ok v ->
        check (Alcotest.float 1e-9) (raw ^ " parses") expect v
    | Error e -> Alcotest.fail (raw ^ " rejected: " ^ e)
  in
  ok "30" 30.0;
  ok "30s" 30.0;
  ok "250ms" 0.25;
  ok "40us" 4e-5;
  ok "50k" 50_000.0;
  ok "50K" 50_000.0;
  ok "2M" 2e6;
  ok "0.5G" 5e8;
  ok "1e6" 1e6;
  ok "1.5e3ms" 1.5;
  let err what raw fragment =
    match Harness.Argscan.parse_suffixed ~docv:"RATE" ~flag:"--rate" raw with
    | Ok v -> Alcotest.fail (Printf.sprintf "%s accepted as %g" what v)
    | Error e ->
        check bool_t (what ^ ": names the flag") true
          (contains ~needle:"--rate" e);
        check bool_t
          (what ^ ": explains itself (" ^ e ^ ")")
          true
          (contains ~needle:fragment e)
  in
  err "bare suffix" "k" "expected a number";
  err "empty" "" "expected a number";
  err "unknown suffix" "30x" "unknown";
  (* lowercase m alone would be ambiguous (milli vs mega) — rejected *)
  err "ambiguous m" "30m" "unknown";
  err "garbage mantissa" "1.2.3s" "cannot read";
  err "negative" "-5s" "negative"

(* -------------------------------------------------------------- gc *)

let gc_gauges () =
  let fields = T.Metrics.gc_fields () in
  List.iter
    (fun key ->
      match List.assoc_opt key fields with
      | Some (T.Json.Num v) ->
          check bool_t (key ^ " is non-negative") true (v >= 0.0)
      | Some _ -> Alcotest.fail (key ^ " is not a number")
      | None -> Alcotest.fail ("missing gc field " ^ key))
    [ "gc_minor"; "gc_major"; "gc_heap_mb" ];
  let m = T.Metrics.create () in
  T.Metrics.observe_gc m;
  let g name = T.Metrics.gauge_value (T.Metrics.gauge m name) in
  check bool_t "minor collections gauge set" true
    (g "gc.minor_collections" >= 0.0);
  check bool_t "major collections gauge set" true
    (g "gc.major_collections" >= 0.0);
  check bool_t "heap gauge reads megabytes" true (g "gc.heap_mb" > 0.0);
  (* forcing a minor collection moves the counter, proving the gauges
     track the live GC rather than a creation-time snapshot *)
  let before = g "gc.minor_collections" in
  Gc.minor ();
  T.Metrics.observe_gc m;
  check bool_t "refresh observes new collections" true
    (g "gc.minor_collections" > before)

(* ----------------------------------------------------- latency wrapper *)

let latency_wrapper () =
  let family = Harness.Registry.find_family "tas" in
  let inst = family.make ~nprocs:2 ~bound:64 in
  let wrapped = Locks.Latency.instrument inst in
  for _ = 1 to 50 do
    wrapped.acquire 0;
    wrapped.release 0
  done;
  let stats = wrapped.stats () in
  let get k =
    match List.assoc_opt k stats with
    | Some v -> v
    | None -> Alcotest.fail ("missing stat " ^ k)
  in
  check bool_t "p50 <= p95 <= p99 <= max" true
    (get "acq_p50_ns" <= get "acq_p95_ns"
    && get "acq_p95_ns" <= get "acq_p99_ns"
    && get "acq_p99_ns" <= get "acq_max_ns");
  check bool_t "max positive after 50 acquires" true (get "acq_max_ns" > 0);
  check string_t "name preserved" inst.instance_name wrapped.instance_name

(* ---------------------------------------------- differential explore *)

let stats_eq (a : MC.Explore.stats) (b : MC.Explore.stats) =
  a.generated = b.generated && a.distinct = b.distinct && a.depth = b.depth

let differential_explore () =
  let run_pair sys =
    let plain = MC.Explore.run ~max_states:200_000 sys in
    let m = T.Metrics.create () in
    let p = T.Progress.create ~interval:0.0 ~batch:1 ~name:"explore" T.Sink.null () in
    let instrumented =
      MC.Explore.run ~max_states:200_000 ~progress:p ~metrics:m sys
    in
    check bool_t "stats identical with telemetry attached" true
      (stats_eq plain.stats instrumented.stats);
    check bool_t "progress actually fired" true (T.Progress.emitted p > 0);
    check bool_t "outcome identical (traces included)" true
      (plain.outcome = instrumented.outcome);
    (plain, m)
  in
  (* passing system *)
  let sys = MC.System.make (Core.Bakery_pp_model.program ()) ~nprocs:2 ~bound:3 in
  let r, m = run_pair sys in
  check bool_t "pass" true (r.outcome = MC.Explore.Pass);
  (* the metrics registry saw the same numbers the checker reported *)
  (match List.assoc_opt "explore.generated" (T.Metrics.snapshot m) with
  | Some (T.Metrics.Counter n) -> check int_t "metrics agree" r.stats.generated n
  | _ -> Alcotest.fail "explore.generated missing from registry");
  (* violating system: the overflow counterexample trace must also match *)
  let sys =
    MC.System.make (Algorithms.Bakery.program ()) ~nprocs:2 ~bound:2
  in
  let r, _ = run_pair sys in
  match r.outcome with
  | MC.Explore.Violation { invariant; _ } ->
      check string_t "overflow found" "no-overflow" invariant
  | _ -> Alcotest.fail "expected an overflow violation"

let differential_par_explore () =
  let sys = MC.System.make (Core.Bakery_pp_model.program ()) ~nprocs:2 ~bound:3 in
  let plain = MC.Par_explore.run ~domains:2 sys in
  let m = T.Metrics.create () in
  let p = T.Progress.create ~interval:0.0 ~batch:1 ~name:"par" T.Sink.null () in
  let instrumented = MC.Par_explore.run ~domains:2 ~progress:p ~metrics:m sys in
  check bool_t "parallel stats identical with telemetry" true
    (stats_eq plain.stats instrumented.stats);
  check bool_t "parallel progress fired" true (T.Progress.emitted p > 0);
  check bool_t "parallel outcome identical" true
    (plain.outcome = instrumented.outcome)

(* ---------------------------------------------------------------- suite *)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick counters_and_gauges;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            histogram_buckets;
          Alcotest.test_case "percentile math" `Quick percentile_math;
          Alcotest.test_case "snapshot determinism" `Quick snapshot_determinism;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "differential vs reference" `Quick
            quantile_differential;
          Alcotest.test_case "rank and overflow edges" `Quick quantile_edges;
          Alcotest.test_case "p999 everywhere" `Quick p999_everywhere;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick json_roundtrip;
          Alcotest.test_case "parse errors" `Quick json_errors;
          Alcotest.test_case "jsonl sink escaping" `Quick jsonl_sink_escaping;
        ] );
      ( "progress",
        [
          Alcotest.test_case "rate limiting" `Quick progress_rate_limit;
          Alcotest.test_case "lazy fields" `Quick progress_fields_lazy;
          Alcotest.test_case "monotonic clock" `Quick clock_monotone;
          Alcotest.test_case "run metadata" `Quick runmeta_capture;
        ] );
      ( "argscan",
        [
          Alcotest.test_case "presence flags" `Quick argscan_presence;
          Alcotest.test_case "value flags" `Quick argscan_value;
          Alcotest.test_case "errors name the flag" `Quick
            argscan_error_messages;
          Alcotest.test_case "unit-suffixed values" `Quick argscan_suffixed;
        ] );
      ("gc", [ Alcotest.test_case "gauges and fields" `Quick gc_gauges ]);
      ( "locks",
        [ Alcotest.test_case "latency wrapper" `Quick latency_wrapper ] );
      ( "differential",
        [
          Alcotest.test_case "explore unchanged by telemetry" `Quick
            differential_explore;
          Alcotest.test_case "par_explore unchanged by telemetry" `Quick
            differential_par_explore;
        ] );
    ]
