(* Runtime lock tests: every lock in the zoo guards a shared counter
   across several domains and the final count must be exact; plus
   per-lock behaviours (overflow trapping, modular bounds, tournament
   paths, stats). *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* Drive [nprocs] domains, each performing [per] guarded increments of an
   unprotected counter.  Any mutual-exclusion failure loses increments. *)
let stress (lock : Locks.Lock_intf.instance) ~nprocs ~per =
  let counter = ref 0 in
  let worker i () =
    for _ = 1 to per do
      lock.acquire i;
      (* deliberately racy read-modify-write, protected only by the lock *)
      let v = !counter in
      counter := v + 1;
      lock.release i
    done
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  !counter

let stress_family name ~nprocs ~per =
  let family = Harness.Registry.find_family name in
  let bound = if family.needs_bound then 1 lsl 30 else 64 in
  let lock = family.make ~nprocs ~bound in
  check int_t
    (Printf.sprintf "%s guards the counter (N=%d)" name nprocs)
    (nprocs * per)
    (stress lock ~nprocs ~per)

let mutual_exclusion_all () =
  List.iter
    (fun (f : Locks.Lock_intf.family) ->
      stress_family f.family_name ~nprocs:2 ~per:2_000)
    Harness.Registry.lock_families

let mutual_exclusion_n4 () =
  (* The heavier check on a representative subset. *)
  List.iter
    (fun name -> stress_family name ~nprocs:4 ~per:500)
    [ "bakery"; "bakery_pp"; "black_white_bakery"; "ticket"; "szymanski" ]

let single_process_locks () =
  List.iter
    (fun (f : Locks.Lock_intf.family) ->
      let lock = f.make ~nprocs:1 ~bound:8 in
      for _ = 1 to 100 do
        lock.acquire 0;
        lock.release 0
      done;
      check bool_t (f.family_name ^ " works solo") true true)
    Harness.Registry.lock_families

(* ------------------------------------------------------------- specific *)

let bakery_peak_ticket () =
  let t = Locks.Bakery_lock.create ~nprocs:2 ~bound:0 in
  Locks.Bakery_lock.acquire t 0;
  check int_t "first ticket is 1" 1 (Locks.Bakery_lock.peak_ticket t);
  Locks.Bakery_lock.release t 0;
  Locks.Bakery_lock.acquire t 1;
  Locks.Bakery_lock.release t 1;
  check bool_t "stats expose peak" true
    (List.mem_assoc "peak_ticket" (Locks.Bakery_lock.stats t))

let bakery_bounded_traps () =
  let t =
    Locks.Bakery_bounded_lock.create_with ~policy:Registers.Bounded.Trap
      ~nprocs:1 ~bound:3
  in
  (* Keep a ticket alive by interleaving a ghost: with one process the
     ticket is always 1, so force the overflow through the register API
     instead: acquire under a tiny bound in a two-domain race. *)
  Locks.Bakery_bounded_lock.acquire t 0;
  Locks.Bakery_bounded_lock.release t 0;
  check int_t "no overflow solo" 0 (Locks.Bakery_bounded_lock.overflows t)

let bakery_bounded_overflow_race () =
  let t =
    Locks.Bakery_bounded_lock.create_with ~policy:Registers.Bounded.Trap
      ~nprocs:2 ~bound:4
  in
  let tripped = Atomic.make false in
  let stop = Atomic.make false in
  let worker i () =
    (try
       while not (Atomic.get stop) do
         Locks.Bakery_bounded_lock.acquire t i;
         Locks.Bakery_bounded_lock.release t i
       done
     with Registers.Bounded.Overflow _ ->
       Atomic.set tripped true;
       Atomic.set stop true;
       Locks.Bakery_bounded_lock.crash_reset t i);
    ()
  in
  let deadline () =
    Unix.sleepf 5.0;
    Atomic.set stop true
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1) ] in
  let timer = Domain.spawn deadline in
  List.iter Domain.join ds;
  Domain.join timer;
  (* On a busy machine the race may not trip within the deadline; the
     hard requirement is only that an overflow, if any, was trapped and
     counted. *)
  if Atomic.get tripped then
    check bool_t "overflow counted" true
      (Locks.Bakery_bounded_lock.overflows t >= 1)

let bakery_pp_never_overflows () =
  let lock = Core.Bakery_pp_lock.create_lock ~nprocs:2 ~bound:3 in
  let worker i () =
    for _ = 1 to 3_000 do
      Core.Bakery_pp_lock.acquire lock i;
      Core.Bakery_pp_lock.release lock i
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1) ] in
  List.iter Domain.join ds;
  (* Overflow_bug would have been raised otherwise; also check the
     instrumentation invariant peak <= bound. *)
  let s = Core.Bakery_pp_lock.snapshot lock in
  check bool_t "peak ticket within bound" true (s.peak_ticket <= 3);
  check int_t "acquires counted" 6_000 s.acquires

let ticket_mod_validation () =
  (match Locks.Ticket_lock.create_mod ~nprocs:8 ~bound:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound < nprocs must be rejected (paper §8.1)");
  let t = Locks.Ticket_lock.create_mod ~nprocs:2 ~bound:8 in
  Locks.Ticket_lock.acquire t 0;
  Locks.Ticket_lock.release t 0;
  check bool_t "peak stays below modulus" true
    (Locks.Ticket_lock.peak_ticket t < 8)

let tournament_arbitrary_n () =
  (* Non-power-of-two participant counts must work. *)
  List.iter
    (fun n ->
      let t = Locks.Tournament_lock.create ~nprocs:n ~bound:0 in
      for i = 0 to n - 1 do
        Locks.Tournament_lock.acquire t i;
        Locks.Tournament_lock.release t i
      done)
    [ 1; 2; 3; 5; 6; 7 ]

let creation_validation () =
  List.iter
    (fun (f : Locks.Lock_intf.family) ->
      match f.make ~nprocs:0 ~bound:8 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (f.family_name ^ ": nprocs 0 must be rejected"))
    Harness.Registry.lock_families

let space_accounting () =
  let cases =
    [
      ("bakery", 2, 4);
      ("bakery_pp", 2, 4);
      ("black_white_bakery", 2, 7);
      ("ticket", 2, 2);
      ("tas", 2, 1);
      ("filter", 2, 4);
      ("szymanski", 2, 2);
      ("burns_lynch", 2, 2);
      ("fast_mutex", 2, 4);
      ("anderson", 2, 3);
      ("clh", 2, 3);
      ("mcs", 2, 5);
    ]
  in
  List.iter
    (fun (name, n, expected) ->
      let f = Harness.Registry.find_family name in
      let lock = f.make ~nprocs:n ~bound:64 in
      check int_t (name ^ " space words") expected lock.space_words)
    cases

let fast_mutex_fast_path () =
  (* Uncontended acquisitions must never take the O(N) slow path. *)
  let t = Locks.Fast_mutex_lock.create ~nprocs:4 ~bound:0 in
  for _ = 1 to 100 do
    Locks.Fast_mutex_lock.acquire t 2;
    Locks.Fast_mutex_lock.release t 2
  done;
  check int_t "no slow paths uncontended" 0 (Locks.Fast_mutex_lock.slow_paths t)

let queue_locks_handoff () =
  (* Sequential multi-id handoff exercises the queue machinery (tail
     swings, node recycling) without domains. *)
  List.iter
    (fun name ->
      let f = Harness.Registry.find_family name in
      let lock = f.make ~nprocs:4 ~bound:8 in
      for round = 1 to 50 do
        ignore round;
        for i = 0 to 3 do
          lock.acquire i;
          lock.release i
        done
      done)
    [ "anderson"; "clh"; "mcs" ]

let instance_stats_surface () =
  let f = Harness.Registry.find_family "bakery_pp" in
  let lock = f.make ~nprocs:2 ~bound:16 in
  lock.acquire 0;
  lock.release 0;
  let stats = lock.stats () in
  List.iter
    (fun key ->
      check bool_t ("stats expose " ^ key) true (List.mem_assoc key stats))
    [ "acquires"; "resets"; "gate_spins"; "peak_ticket" ]

(* One 30 ms stall inside a single acquire, with operations due every
   0.2 ms.  Closed-loop timing charges the stall to the one unlucky op
   (p95 over 100 ops stays microseconds); open-loop timing charges the
   backlog to every op that was *due* during the stall, so the p95
   inflates past the millisecond range — the coordinated-omission fix
   in Locks.Latency made visible. *)
let coordinated_omission () =
  let stalling () : Locks.Lock_intf.instance =
    let stalled = ref false in
    {
      instance_name = "stall";
      acquire =
        (fun _ ->
          if not !stalled then begin
            stalled := true;
            ignore (Unix.select [] [] [] 0.03)
          end);
      release = (fun _ -> ());
      space_words = 0;
      stats = (fun () -> []);
    }
  in
  let n = 100 in
  let drive mk_mode =
    let due = ref 0.0 in
    let wrapped =
      Locks.Latency.instrument ~mode:(mk_mode due) (stalling ())
    in
    let t0 = Telemetry.Clock.now_s () in
    for i = 0 to n - 1 do
      due := t0 +. (0.0002 *. float_of_int i);
      wrapped.acquire 0;
      wrapped.release 0
    done;
    let stats = wrapped.stats () in
    fun key ->
      match List.assoc_opt key stats with
      | Some v -> v
      | None -> Alcotest.fail ("missing stat " ^ key)
  in
  let closed = drive (fun _ -> Locks.Latency.Closed_loop) in
  let opened =
    drive (fun due -> Locks.Latency.Open_loop (fun _ -> !due))
  in
  (* Both modes see the stall itself as the max. *)
  check bool_t "closed-loop max sees the stall" true
    (closed "acq_max_ns" >= 20_000_000);
  (* Closed-loop: 99 of 100 samples are sub-millisecond, so p95 is
     tiny — the backlog the stall caused is never charged to anyone. *)
  check bool_t "closed-loop p95 blind to the backlog" true
    (closed "acq_p95_ns" < 1_000_000);
  (* Open-loop: every op due during the 30 ms stall carries its
     queueing delay, so the p95 inflates by orders of magnitude. *)
  check bool_t "open-loop p95 charges the backlog" true
    (opened "acq_p95_ns" >= 5_000_000);
  check bool_t "open-loop p99 above closed-loop p99" true
    (opened "acq_p99_ns" >= closed "acq_p99_ns")

let () =
  Alcotest.run "locks"
    [
      ( "mutual-exclusion",
        [
          Alcotest.test_case "all families, 2 domains" `Slow
            mutual_exclusion_all;
          Alcotest.test_case "subset, 4 domains" `Slow mutual_exclusion_n4;
          Alcotest.test_case "single participant" `Quick single_process_locks;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "bakery peak ticket" `Quick bakery_peak_ticket;
          Alcotest.test_case "bounded bakery solo" `Quick bakery_bounded_traps;
          Alcotest.test_case "bounded bakery overflow race" `Slow
            bakery_bounded_overflow_race;
          Alcotest.test_case "bakery++ never overflows (tiny M)" `Slow
            bakery_pp_never_overflows;
          Alcotest.test_case "modular ticket validation" `Quick
            ticket_mod_validation;
          Alcotest.test_case "tournament odd sizes" `Quick
            tournament_arbitrary_n;
          Alcotest.test_case "creation validation" `Quick creation_validation;
          Alcotest.test_case "space accounting" `Quick space_accounting;
          Alcotest.test_case "fast mutex fast path" `Quick fast_mutex_fast_path;
          Alcotest.test_case "queue lock handoff" `Quick queue_locks_handoff;
          Alcotest.test_case "instance stats" `Quick instance_stats_surface;
          Alcotest.test_case "coordinated omission" `Quick
            coordinated_omission;
        ] );
    ]
