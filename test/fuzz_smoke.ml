(* `dune build @fuzz-smoke`: a longer fixed-seed fuzzing sweep than the
   tier-1 suite runs.

   Phase 1 fuzzes the safe models (bakery_pp, peterson2) across all
   six differential oracles under a wall-clock budget — any failure is
   a real bug in one of the engines and fails the alias.  Phase 2 runs a
   fixed batch against bakery_mod_naive and demands the fuzzer still
   catches the naive-modulo mutual-exclusion bug, so the alias also
   guards the fuzzer's own detection power.

   FUZZ_BUDGET_S overrides the phase-1 budget (default 30s). *)

let budget_s =
  match Sys.getenv_opt "FUZZ_BUDGET_S" with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 30.0)
  | None -> 30.0

let report s = List.iter print_endline (Fuzz.Driver.summary_lines s)

let () =
  let safe_cfg =
    {
      (Fuzz.Driver.default_config ~seed:1 ~count:1_000_000) with
      Fuzz.Driver.budget_s = Some budget_s;
      params = { Fuzz.Driver_params.default with Fuzz.Driver_params.bound = 3 };
    }
  in
  let safe = Fuzz.Driver.run safe_cfg in
  report safe;
  let naive_cfg =
    {
      (Fuzz.Driver.default_config ~seed:1 ~count:400) with
      Fuzz.Driver.oracles = [ Fuzz.Oracle.Replay ];
      params =
        {
          Fuzz.Driver_params.default with
          Fuzz.Driver_params.models = [ "bakery_mod_naive" ];
          bound = 3;
        };
    }
  in
  let naive = Fuzz.Driver.run naive_cfg in
  report naive;
  if safe.Fuzz.Driver.s_failures <> [] then (
    prerr_endline "fuzz-smoke: FAILURES on safe models (real engine bug?)";
    exit 1);
  if naive.Fuzz.Driver.s_failures = [] then (
    prerr_endline
      "fuzz-smoke: bakery_mod_naive batch found nothing — fuzzer lost its \
       detection power";
    exit 1);
  print_endline "fuzz-smoke: ok"
