(* End-to-end smoke tests for bin/bakery_cli: every subcommand's --help
   exits 0, and a tiny model-checking run with --progress/--metrics-out
   prints a TLC-style progress line and leaves a parseable JSONL metrics
   file whose numbers agree with the search. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* The dune deps field builds the executable next door in
   _build/default/bin/; resolve it relative to this test binary so the
   path works under both [dune runtest] and [dune exec]. *)
let cli =
  let here = Filename.dirname Sys.executable_name in
  Filename.concat (Filename.concat (Filename.concat here "..") "bin")
    "bakery_cli.exe"

let run_capture args =
  let out = Filename.temp_file "cli" ".out" in
  let err = Filename.temp_file "cli" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let help_smoke () =
  let code, out, _ = run_capture [ "--help" ] in
  check int_t "--help exits 0" 0 code;
  check bool_t "--help mentions check" true
    (String.length out > 0
    && contains ~affix:"check" out)

let subcommand_help name () =
  let code, out, err = run_capture [ name; "--help" ] in
  check int_t (name ^ " --help exits 0") 0 code;
  check bool_t (name ^ " --help has output") true
    (String.length out > 0 || String.length err > 0)

let subcommands =
  [
    "list"; "show"; "check"; "sim"; "explain"; "lasso"; "refine"; "verify";
    "tla"; "graph"; "fuzz"; "bench"; "report";
  ]

let check_progress_metrics () =
  let metrics = Filename.temp_file "cli" ".jsonl" in
  Sys.remove metrics;
  let code, out, err =
    run_capture
      [
        "check"; "bakery_pp"; "-n"; "2"; "-m"; "3"; "--progress";
        "--metrics-out"; metrics;
      ]
  in
  check int_t "check exits 0" 0 code;
  check bool_t "report on stdout" true
    (contains ~affix:"Invariants hold" out);
  (* at least one TLC-style progress line, with the rate fields *)
  check bool_t "progress line printed" true
    (contains ~affix:"[progress explore" err);
  List.iter
    (fun field ->
      check bool_t ("progress line has " ^ field) true
        (contains ~affix:(field ^ "=") err))
    [ "generated"; "distinct"; "kstates_s" ];
  (* the metrics file is JSONL: every line parses, and the recorded
     counters are sane for this tiny configuration *)
  let ic = open_in metrics in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove metrics;
  let lines = List.rev !lines in
  check bool_t "metrics file non-empty" true (lines <> []);
  let find_metric name =
    List.find_map
      (fun line ->
        match Telemetry.Json.parse line with
        | Error e -> Alcotest.fail ("unparseable metrics line: " ^ e)
        | Ok v -> (
            match Telemetry.Json.member "metric" v with
            | Some (Telemetry.Json.Str n) when n = name ->
                Telemetry.Json.member "value" v
            | _ -> None))
      lines
  in
  (match find_metric "explore.generated" with
  | Some (Telemetry.Json.Num n) ->
      check bool_t "generated > 0" true (n > 0.0)
  | _ -> Alcotest.fail "explore.generated missing");
  (match find_metric "explore.distinct" with
  | Some (Telemetry.Json.Num n) ->
      check bool_t "distinct > 0" true (n > 0.0)
  | _ -> Alcotest.fail "explore.distinct missing");
  (* every line is stamped with run metadata *)
  match Telemetry.Json.parse (List.hd lines) with
  | Ok v ->
      check bool_t "lines carry git_rev" true
        (Telemetry.Json.member "git_rev" v <> None);
      check bool_t "lines carry nprocs" true
        (Telemetry.Json.member "nprocs" v <> None)
  | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- fuzz *)

let fuzz_args = [ "fuzz"; "--seed"; "3"; "--count"; "5" ]

let fuzz_run_and_metrics () =
  let metrics = Filename.temp_file "cli" ".jsonl" in
  Sys.remove metrics;
  let code, out, _ =
    run_capture (fuzz_args @ [ "--metrics-out"; metrics ])
  in
  check int_t "fuzz exits 0 when nothing fails" 0 code;
  check bool_t "summary header" true (contains ~affix:"fuzz: seed=3" out);
  check bool_t "per-oracle lines" true (contains ~affix:"compile" out);
  check bool_t "total line" true (contains ~affix:"total: 30 cases" out);
  check bool_t "regsem oracle in rotation" true (contains ~affix:"regsem" out);
  check bool_t "reduced oracle in rotation" true (contains ~affix:"reduced" out);
  (* metrics snapshot parses and records the case counters *)
  let ic = open_in metrics in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove metrics;
  check bool_t "metrics non-empty" true (!lines <> []);
  let seen name =
    List.exists
      (fun line ->
        match Telemetry.Json.parse line with
        | Error e -> Alcotest.fail ("unparseable metrics line: " ^ e)
        | Ok v -> (
            match Telemetry.Json.member "metric" v with
            | Some (Telemetry.Json.Str n) -> n = name
            | _ -> false))
      !lines
  in
  List.iter
    (fun m -> check bool_t (m ^ " recorded") true (seen m))
    [ "fuzz.compile.cases"; "fuzz.parallel.cases"; "fuzz.replay.cases" ]

let fuzz_deterministic () =
  let c1, out1, _ = run_capture fuzz_args in
  let c2, out2, _ = run_capture fuzz_args in
  check int_t "same exit code" c1 c2;
  check Alcotest.string "byte-identical summaries" out1 out2

let fuzz_replay_corpus () =
  (* the committed corpus replays through the CLI with the recorded
     verdict (exit 0 = reproduced) *)
  let file = Filename.concat "corpus" "mod_naive_wrap_41.repro" in
  let code, out, _ = run_capture [ "fuzz"; "--replay"; file ] in
  check int_t "replay exits 0" 0 code;
  check bool_t "reports reproduced" true (contains ~affix:"reproduced" out);
  (* and an unreadable file is a usage error, distinct from a mismatch *)
  let bad = Filename.temp_file "cli" ".repro" in
  let oc = open_out bad in
  output_string oc "not json";
  close_out oc;
  let code, _, err = run_capture [ "fuzz"; "--replay"; bad ] in
  Sys.remove bad;
  check int_t "bad file exits 2" 2 code;
  check bool_t "error names the file" true (contains ~affix:".repro" err)

(* ------------------------------------------------------------- explain *)

let explain_repro () =
  (* the acceptance scenario: the wrap repro explains deterministically,
     naming the failed mutex conjunct and the wrapping write *)
  let file = Filename.concat "corpus" "bakery_wrap_56.repro" in
  let code, out, _ = run_capture [ "explain"; "--repro"; file ] in
  check int_t "explain exits 0" 0 code;
  List.iter
    (fun affix ->
      check bool_t ("story mentions " ^ affix) true (contains ~affix out))
    [
      "VIOLATION: mutual-exclusion";
      "at most one process is at a Critical-kind label";
      "WRAPPED";
      "happens-before";
    ];
  let code2, out2, _ = run_capture [ "explain"; "--repro"; file ] in
  check int_t "same exit" code code2;
  check Alcotest.string "byte-identical stories" out out2

let explain_chrome_out () =
  let file = Filename.concat "corpus" "bakery_wrap_56.repro" in
  let json = Filename.temp_file "cli" ".json" in
  let code, _, _ =
    run_capture [ "explain"; "--repro"; file; "--chrome-out"; json ]
  in
  check int_t "explain exits 0" 0 code;
  let ic = open_in_bin json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  (* well-formed by our own parser, with events on every process track *)
  match Telemetry.Json.parse s with
  | Error e -> Alcotest.fail ("chrome JSON unparseable: " ^ e)
  | Ok v -> (
      match Telemetry.Json.member "traceEvents" v with
      | Some (Telemetry.Json.Arr evs) ->
          check bool_t "has events" true (List.length evs > 0)
      | _ -> Alcotest.fail "no traceEvents array")

let explain_model () =
  let code, out, _ =
    run_capture [ "explain"; "--model"; "bakery_mod_naive"; "-n"; "3"; "-m"; "2" ]
  in
  check int_t "explain --model exits 0" 0 code;
  check bool_t "source is the checker" true
    (contains ~affix:"source: modelcheck" out);
  check bool_t "names the conjunct" true
    (contains ~affix:"at most one process is at a Critical-kind label" out)

let explain_usage_errors () =
  let code, _, err = run_capture [ "explain" ] in
  check int_t "no input is a usage error" 2 code;
  check bool_t "says which flags" true (contains ~affix:"--repro" err);
  let file = Filename.concat "corpus" "bakery_wrap_56.repro" in
  let code, _, _ =
    run_capture [ "explain"; "--repro"; file; "--model"; "bakery_pp" ]
  in
  check int_t "both inputs is a usage error" 2 code

(* ------------------------------------------------- weak register flag *)

let register_model_flag () =
  (* an unknown model is a usage error that names the flag and lists
     the valid values (Harness.Argscan.parse_enum's contract) *)
  let code, _, err =
    run_capture
      [ "check"; "bakery_pp"; "-n"; "2"; "-m"; "3"; "--register-model"; "x" ]
  in
  check int_t "unknown model is a usage error" 2 code;
  check bool_t "error names the flag" true
    (contains ~affix:"--register-model" err);
  check bool_t "error lists the valid models" true
    (contains ~affix:"atomic" err && contains ~affix:"regular" err
   && contains ~affix:"safe" err);
  (* the flag is documented on every subcommand that takes it *)
  List.iter
    (fun sub ->
      let _, out, _ = run_capture [ sub; "--help" ] in
      check bool_t (sub ^ " --help documents --register-model") true
        (contains ~affix:"--register-model" out))
    [ "check"; "explain"; "fuzz"; "sim" ];
  (* and a weak-model check actually runs: TLC-equivalent exploration
     of bakery_pp survives safe registers at this size *)
  let code, out, _ =
    run_capture
      [ "check"; "bakery_pp"; "-n"; "2"; "-m"; "3"; "--register-model"; "safe" ]
  in
  check int_t "safe check exits 0" 0 code;
  check bool_t "safe check reports a pass" true
    (contains ~affix:"Invariants hold" out)

(* ----------------------------------------------------------- --reduce *)

let reduce_usage_errors () =
  (* an unknown mode is a usage error naming the flag and the values,
     uniformly across the subcommands that take it *)
  List.iter
    (fun args ->
      let code, _, err = run_capture (args @ [ "--reduce"; "bogus" ]) in
      check int_t
        (String.concat " " args ^ " --reduce bogus exits 2")
        2 code;
      check bool_t "error names the flag" true (contains ~affix:"--reduce" err);
      check bool_t "error lists the modes" true
        (contains ~affix:"none" err && contains ~affix:"sym" err
       && contains ~affix:"sym+por" err))
    [
      [ "check"; "ticket_mod"; "-n"; "2"; "-m"; "2" ];
      [ "explain"; "--model"; "ticket"; "-n"; "2"; "-m"; "2" ];
      [ "fuzz"; "--seed"; "1"; "--count"; "1" ];
      [ "bench"; "e15" ];
    ];
  (* replaying a corpus file pins the oracle, so --reduce is rejected *)
  let file = Filename.concat "corpus" "mod_naive_wrap_41.repro" in
  let code, _, err =
    run_capture [ "fuzz"; "--replay"; file; "--reduce"; "sym" ]
  in
  check int_t "--replay with --reduce exits 2" 2 code;
  check bool_t "error explains the clash" true (contains ~affix:"--replay" err);
  (* the flag is documented wherever it is accepted *)
  List.iter
    (fun sub ->
      let _, out, _ = run_capture [ sub; "--help" ] in
      check bool_t (sub ^ " --help documents --reduce") true
        (contains ~affix:"--reduce" out))
    [ "check"; "explain"; "fuzz"; "bench" ]

(* the report's one non-deterministic token is the elapsed wall-clock
   ("..., 0.002s"); blank its digits so the rest must match exactly *)
let mask_timing s =
  String.mapi
    (fun i c ->
      if
        (c >= '0' && c <= '9')
        && (let j = ref i in
            while
              !j < String.length s
              && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.')
            do
              incr j
            done;
            !j < String.length s && s.[!j] = 's')
      then '#'
      else c)
    s

let reduce_check_deterministic () =
  let args =
    [ "check"; "ticket_mod"; "-n"; "3"; "-m"; "3"; "--reduce"; "sym+por" ]
  in
  let code1, out1, _ = run_capture args in
  let code2, out2, _ = run_capture args in
  check int_t "reduced check exits 0" 0 code1;
  check int_t "same exit" code1 code2;
  check Alcotest.string "reports identical modulo timing" (mask_timing out1)
    (mask_timing out2);
  check bool_t "report names the reduction" true
    (contains ~affix:"reduction: sym+por" out1);
  check bool_t "still a pass" true (contains ~affix:"Invariants hold" out1);
  (* an uncertified model must say so rather than silently claim
     canonicalization *)
  let _, out, _ =
    run_capture [ "check"; "bakery_pp"; "-n"; "2"; "-m"; "3"; "--reduce"; "sym" ]
  in
  check bool_t "fallback reason surfaces" true
    (contains ~affix:"canonicalization off" out)

let reduce_explain_original_pids () =
  (* a counterexample found in the quotient must be told in original
     process coordinates: ticket n2 m2 overflows, and the story needs
     both processes' steps to reach a ticket above M *)
  let args =
    [ "explain"; "--model"; "ticket"; "-n"; "2"; "-m"; "2"; "--reduce"; "sym" ]
  in
  let code, out, _ = run_capture args in
  check int_t "reduced explain exits 0" 0 code;
  check bool_t "finds the overflow" true
    (contains ~affix:"VIOLATION: no-overflow" out);
  check bool_t "p0 acts in the story" true (contains ~affix:"p0" out);
  check bool_t "p1 acts in the story" true (contains ~affix:"p1" out);
  let code2, out2, _ = run_capture args in
  check int_t "same exit" code code2;
  check Alcotest.string "byte-identical stories" out out2

(* ------------------------------------------------------- bench locks *)

(* The acceptance contract: two `bench locks` runs with the same seed
   append scorecards that agree on every non-timing field, into the
   --out file, via the persisted-row codec. *)
let bench_locks_deterministic () =
  let out_file = Filename.temp_file "cli_locks" ".json" in
  Sys.remove out_file;
  let args =
    [
      "bench"; "locks"; "--seed"; "7"; "--ops"; "120"; "--rate"; "5k";
      "--algo"; "ttas"; "--domains"; "2"; "--out"; out_file;
    ]
  in
  let code1, out1, err1 = run_capture args in
  if code1 <> 0 then Alcotest.fail ("first run failed: " ^ out1 ^ err1);
  let code2, _, _ = run_capture args in
  check int_t "second run exits 0" 0 code2;
  check bool_t "scorecard table rendered" true
    (contains ~affix:"goodput" out1 && contains ~affix:"ttas" out1);
  let rows =
    match Workload.Suite.load_rows out_file with
    | Ok rows -> rows
    | Error e -> Alcotest.fail ("persisted rows unreadable: " ^ e)
  in
  Sys.remove out_file;
  check int_t "one appended row per run" 2 (List.length rows);
  match List.map Workload.Scorecard.of_json rows with
  | [ Ok a; Ok b ] ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "same seed, same deterministic fields"
        (Workload.Scorecard.deterministic_fields a)
        (Workload.Scorecard.deterministic_fields b)
  | _ -> Alcotest.fail "persisted rows are not parseable scorecards"

let bench_locks_usage_errors () =
  let code, _, err = run_capture [ "bench"; "locks"; "--rate"; "5x" ] in
  check int_t "malformed --rate exits 2" 2 code;
  check bool_t "error names --rate" true (contains ~affix:"--rate" err);
  let code, _, err =
    run_capture [ "bench"; "locks"; "--duration"; "abc" ]
  in
  check int_t "malformed --duration exits 2" 2 code;
  check bool_t "error names --duration" true
    (contains ~affix:"--duration" err);
  let code, _, err = run_capture [ "bench"; "locks"; "e11" ] in
  check int_t "locks mixed with experiment ids exits 2" 2 code;
  check bool_t "mixing error mentions locks" true (contains ~affix:"locks" err)

(* ------------------------------------------------------------- report *)

let slurp_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

(* check → flight record + metrics snapshot → report: the full
   pipeline, with the rendered document byte-identical across renders
   (the determinism contract the golden tests pin in-process). *)
let report_pipeline () =
  let flight = Filename.temp_file "cli" ".flight.jsonl" in
  let metrics = Filename.temp_file "cli" ".metrics.jsonl" in
  List.iter Sys.remove [ flight; metrics ];
  let code, _, err =
    run_capture
      [
        "check"; "bakery_pp"; "-n"; "2"; "-m"; "3"; "--flight-out"; flight;
        "--flight-interval"; "0.005"; "--metrics-out"; metrics;
      ]
  in
  if code <> 0 then Alcotest.fail ("check failed: " ^ err);
  (* the flight record is well-formed JSONL with the schema header *)
  let lines = slurp_lines flight in
  check bool_t "flight has header + samples" true (List.length lines >= 2);
  (match Telemetry.Json.parse (List.hd lines) with
  | Ok v ->
      check bool_t "first line is the header" true
        (Telemetry.Json.member "kind" v
        = Some (Telemetry.Json.Str "flight_header"))
  | Error e -> Alcotest.fail ("header unparseable: " ^ e));
  let render out_file =
    let code, out, err =
      run_capture
        [ "report"; "--flight"; flight; "--metrics"; metrics; "-o"; out_file ]
    in
    if code <> 0 then Alcotest.fail ("report failed: " ^ out ^ err);
    let ic = open_in_bin out_file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove out_file;
    s
  in
  let doc1 = render (Filename.temp_file "cli" ".md") in
  let doc2 = render (Filename.temp_file "cli" ".md") in
  check Alcotest.string "re-render is byte-identical" doc1 doc2;
  List.iter
    (fun affix ->
      check bool_t ("report has " ^ affix) true (contains ~affix doc1))
    [
      "# Run report"; "- verdict:"; "## Time series"; "## Metrics snapshot";
      "explore.generated";
    ];
  (* stdout when no -o *)
  let code, out, _ = run_capture [ "report"; "--flight"; flight ] in
  check int_t "report to stdout exits 0" 0 code;
  check bool_t "stdout report rendered" true (contains ~affix:"# Run report" out);
  List.iter Sys.remove [ flight; metrics ]

let report_usage_errors () =
  let code, _, err = run_capture [ "report"; "--flight"; "/nonexistent.jsonl" ] in
  check int_t "missing flight file exits 2" 2 code;
  check bool_t "error names the file" true
    (contains ~affix:"/nonexistent.jsonl" err);
  (* a malformed line is rejected with its line number *)
  let bad = Filename.temp_file "cli" ".jsonl" in
  let oc = open_out bad in
  output_string oc "{\"metric\": \"x\", \"value\": 1}\nnot json\n";
  close_out oc;
  let code, _, err = run_capture [ "report"; "--metrics"; bad ] in
  Sys.remove bad;
  check int_t "malformed metrics line exits 2" 2 code;
  check bool_t "error carries the line number" true (contains ~affix:":2" err)

(* The crash-forensics contract (satellite of the flight recorder):
   SIGTERM mid-run must leave a flight record whose every line is
   whole — the per-line flush, not at_exit, is what guarantees it,
   because SIGTERM never runs at_exit. *)
let report_kill_mid_flight () =
  let flight = Filename.temp_file "cli" ".flight.jsonl" in
  Sys.remove flight;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process cli
      [|
        cli; "check"; "bakery_pp"; "-n"; "3"; "-m"; "6"; "--flight-out";
        flight; "--flight-interval"; "0.01";
      |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  (* wait until the sampler has demonstrably written a few lines *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let enough () =
    Sys.file_exists flight && List.length (slurp_lines flight) >= 4
  in
  while (not (enough ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  check bool_t "run produced flight lines before the kill" true (enough ());
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigterm -> ()
  | _, _ -> Alcotest.fail "process did not die from SIGTERM");
  let lines = slurp_lines flight in
  check bool_t "record survived the kill" true (List.length lines >= 4);
  List.iteri
    (fun i line ->
      match Telemetry.Json.parse line with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "line %d torn after SIGTERM: %s (%s)" (i + 1) e line)
    lines;
  (* and the well-formed prefix renders *)
  let code, out, _ = run_capture [ "report"; "--flight"; flight ] in
  Sys.remove flight;
  check int_t "report renders the killed run's record" 0 code;
  check bool_t "killed-run report has series" true
    (contains ~affix:"## Time series" out)

let () =
  Alcotest.run "cli"
    [
      ( "help",
        Alcotest.test_case "--help" `Quick help_smoke
        :: List.map
             (fun name ->
               Alcotest.test_case (name ^ " --help") `Quick
                 (subcommand_help name))
             subcommands );
      ( "telemetry",
        [
          Alcotest.test_case "check --progress --metrics-out" `Quick
            check_progress_metrics;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "run + metrics snapshot" `Quick
            fuzz_run_and_metrics;
          Alcotest.test_case "summary is deterministic" `Quick
            fuzz_deterministic;
          Alcotest.test_case "--replay on the corpus" `Quick fuzz_replay_corpus;
        ] );
      ( "bench-locks",
        [
          Alcotest.test_case "same-seed scorecards agree" `Quick
            bench_locks_deterministic;
          Alcotest.test_case "usage errors" `Quick bench_locks_usage_errors;
        ] );
      ( "explain",
        [
          Alcotest.test_case "--repro acceptance scenario" `Quick explain_repro;
          Alcotest.test_case "--chrome-out well-formed" `Quick
            explain_chrome_out;
          Alcotest.test_case "--model counterexample" `Quick explain_model;
          Alcotest.test_case "usage errors" `Quick explain_usage_errors;
        ] );
      ( "regsem",
        [
          Alcotest.test_case "--register-model flag" `Quick
            register_model_flag;
        ] );
      ( "report",
        [
          Alcotest.test_case "check → flight → report pipeline" `Quick
            report_pipeline;
          Alcotest.test_case "usage errors" `Quick report_usage_errors;
          Alcotest.test_case "SIGTERM leaves whole lines" `Quick
            report_kill_mid_flight;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "usage errors" `Quick reduce_usage_errors;
          Alcotest.test_case "reduced check is deterministic" `Quick
            reduce_check_deterministic;
          Alcotest.test_case "explain renders original pids" `Quick
            reduce_explain_original_pids;
        ] );
    ]
