(* Tier-1 tests for the lib/fuzz subsystem: corpus replay, generator
   well-formedness and seed stability, shrinker monotonicity and
   termination, the end-to-end generate→detect→shrink→replay pipeline,
   and a short budgeted smoke sweep over the safe models (the long
   version lives behind `dune build @fuzz-smoke`). *)

let default_params = Fuzz.Gen.default_prog_params

(* ------------------------------------------------------------- corpus *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (List.length files >= 7);
  List.iter
    (fun file ->
      match Fuzz.Repro.load file with
      | Error e -> Alcotest.failf "%s: cannot load: %s" file e
      | Ok r -> (
          match Fuzz.Repro.replay r with
          | Fuzz.Repro.Reproduced -> ()
          | Fuzz.Repro.Changed tag ->
              Alcotest.failf "%s: verdict changed (recorded %s, now %s)" file
                r.Fuzz.Repro.tag tag
          | Fuzz.Repro.Vanished ->
              Alcotest.failf "%s: recorded failure %s no longer reproduces"
                file r.Fuzz.Repro.tag))
    files

let test_corpus_round_trip () =
  (* save/load is the identity on every corpus entry *)
  List.iter
    (fun file ->
      match Fuzz.Repro.load file with
      | Error e -> Alcotest.failf "%s: cannot load: %s" file e
      | Ok r -> (
          match Fuzz.Repro.of_string (Fuzz.Repro.to_string r) with
          | Error e -> Alcotest.failf "%s: re-parse failed: %s" file e
          | Ok r' ->
              Alcotest.(check string)
                (file ^ " round trip") (Fuzz.Repro.to_string r)
                (Fuzz.Repro.to_string r')))
    (corpus_files ())

(* --------------------------------------------------------- generators *)

let test_generator_well_formed () =
  for seed = 1 to 100 do
    let rng = Prng.Rng.create seed in
    let p = Fuzz.Gen.program rng default_params in
    let errors =
      Mxlang.Validate.check p
      |> List.filter (fun i -> i.Mxlang.Validate.severity = `Error)
    in
    (match errors with
    | [] -> ()
    | i :: _ ->
        Alcotest.failf "seed %d: invalid program: %s" seed
          i.Mxlang.Validate.message);
    (* codec round trip is exact *)
    match Fuzz.Codec.program_of_json (Fuzz.Codec.program_to_json p) with
    | Error e -> Alcotest.failf "seed %d: codec decode failed: %s" seed e
    | Ok p' ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d codec round trip" seed)
          true
          (Fuzz.Codec.program_equal p p')
  done

let test_generator_seed_stability () =
  for seed = 1 to 20 do
    let p1 = Fuzz.Gen.program (Prng.Rng.create seed) default_params in
    let p2 = Fuzz.Gen.program (Prng.Rng.create seed) default_params in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d reproduces" seed)
      true
      (Fuzz.Codec.program_equal p1 p2)
  done;
  (* distinct seeds do explore: not every program is the same *)
  let js seed =
    Telemetry.Json.to_string
      (Fuzz.Codec.program_to_json
         (Fuzz.Gen.program (Prng.Rng.create seed) default_params))
  in
  Alcotest.(check bool) "seeds vary" true (js 1 <> js 2 || js 2 <> js 3)

let test_plan_stability () =
  let draw seed =
    Fuzz.Gen.plan (Prng.Rng.create seed)
      ~models:[ "bakery_pp"; "peterson2" ]
      ~nprocs:2 ~bound:3 ~max_len:50
  in
  for seed = 1 to 20 do
    let a = draw seed and b = draw seed in
    Alcotest.(check bool)
      (Printf.sprintf "plan seed %d reproduces" seed)
      true (a = b);
    Alcotest.(check bool)
      "schedule pids in range" true
      (Array.for_all (fun p -> p >= 0 && p < 2) a.Fuzz.Gen.pl_schedule)
  done

(* ----------------------------------------------------------- shrinker *)

let test_ddmin () =
  (* predicate: at least three 1s survive.  ddmin must terminate within
     budget, keep the predicate true, and find the 3-element minimum. *)
  let input = Array.init 40 (fun i -> if i mod 5 = 0 then 1 else 0) in
  let still_fails a = Array.fold_left ( + ) 0 a >= 3 in
  let out, evals = Fuzz.Shrink.ddmin ~still_fails ~max_evals:500 input in
  Alcotest.(check bool) "result still fails" true (still_fails out);
  Alcotest.(check bool) "monotone" true (Array.length out <= Array.length input);
  Alcotest.(check int) "1-minimal" 3 (Array.length out);
  Alcotest.(check bool) "within budget" true (evals <= 500)

let test_ddmin_budget_zero () =
  (* an exhausted budget returns the input unchanged, not a loop *)
  let input = Array.make 10 1 in
  let out, evals =
    Fuzz.Shrink.ddmin ~still_fails:(fun _ -> true) ~max_evals:0 input
  in
  Alcotest.(check int) "no evals" 0 evals;
  Alcotest.(check bool) "input returned" true (out = input)

let test_program_shrink () =
  let rng = Prng.Rng.create 11 in
  let p0 = Fuzz.Gen.program rng { default_params with g_max_steps = 5 } in
  let size0 = Fuzz.Shrink.program_size p0 in
  (* predicate satisfied by every well-formed generated program, so the
     shrinker can dig as deep as its candidates allow *)
  let still_fails p =
    List.exists (fun s -> s.Mxlang.Ast.kind = Mxlang.Ast.Critical)
      (Array.to_list p.Mxlang.Ast.steps)
  in
  let p1, evals = Fuzz.Shrink.program ~still_fails ~max_evals:300 p0 in
  Alcotest.(check bool) "still fails" true (still_fails p1);
  Alcotest.(check bool)
    "size monotone" true
    (Fuzz.Shrink.program_size p1 <= size0);
  Alcotest.(check bool) "within budget" true (evals <= 300);
  let errors =
    Mxlang.Validate.check p1
    |> List.filter (fun i -> i.Mxlang.Validate.severity = `Error)
  in
  Alcotest.(check int) "shrunk program still well-formed" 0
    (List.length errors)

(* ------------------------------------------------- end-to-end pipeline *)

let naive_params =
  {
    Fuzz.Driver_params.default with
    Fuzz.Driver_params.models = [ "bakery_mod_naive" ];
    bound = 3;
  }

let test_e2e_pipeline () =
  (* Pre-verified seed: fuzzing bakery_mod_naive with (seed=2, 30 cases)
     catches a mutual-exclusion violation, shrinks it, and the written
     .repro replays to the same verdict.  This is the whole pipeline:
     generate -> detect -> shrink -> persist -> replay. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fuzz_e2e_%d" (Unix.getpid ()))
  in
  let cfg =
    {
      (Fuzz.Driver.default_config ~seed:2 ~count:30) with
      Fuzz.Driver.oracles = [ Fuzz.Oracle.Replay ];
      params = naive_params;
      out_dir = Some dir;
    }
  in
  let s = Fuzz.Driver.run cfg in
  (match s.Fuzz.Driver.s_failures with
  | [] -> Alcotest.fail "expected bakery_mod_naive to fail under fuzzing"
  | f :: _ ->
      Alcotest.(check string) "tag" "mutex_violation" f.Fuzz.Driver.f_tag;
      Alcotest.(check bool)
        "shrinking did not grow the case" true
        (f.Fuzz.Driver.f_size_after <= f.Fuzz.Driver.f_size_before);
      let file =
        match f.Fuzz.Driver.f_file with
        | Some p -> p
        | None -> Alcotest.fail "no .repro written"
      in
      (match Fuzz.Repro.load file with
      | Error e -> Alcotest.failf "cannot reload %s: %s" file e
      | Ok r -> (
          match Fuzz.Repro.replay r with
          | Fuzz.Repro.Reproduced -> ()
          | _ -> Alcotest.failf "freshly written %s does not replay" file)));
  (* clean up the scratch directory *)
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let test_driver_determinism () =
  let cfg =
    {
      (Fuzz.Driver.default_config ~seed:9 ~count:8) with
      Fuzz.Driver.params =
        { Fuzz.Driver_params.default with Fuzz.Driver_params.bound = 3 };
    }
  in
  let a = Fuzz.Driver.summary_lines (Fuzz.Driver.run cfg) in
  let b = Fuzz.Driver.summary_lines (Fuzz.Driver.run cfg) in
  Alcotest.(check (list string)) "summaries identical" a b

let test_budgeted_smoke () =
  (* the tier-1 version of @fuzz-smoke: a couple of seconds over the
     safe models across every oracle must find nothing.  FUZZ_BUDGET_S
     stretches the sweep without editing the test. *)
  let budget =
    match Sys.getenv_opt "FUZZ_BUDGET_S" with
    | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 2.0)
    | None -> 2.0
  in
  let cfg =
    {
      (Fuzz.Driver.default_config ~seed:1 ~count:100_000) with
      Fuzz.Driver.budget_s = Some budget;
      params = { Fuzz.Driver_params.default with Fuzz.Driver_params.bound = 3 };
    }
  in
  let s = Fuzz.Driver.run cfg in
  (match s.Fuzz.Driver.s_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "safe-model fuzzing found %s (case %d, oracle %s)"
        f.Fuzz.Driver.f_tag f.Fuzz.Driver.f_index
        (Fuzz.Oracle.name f.Fuzz.Driver.f_oracle));
  let ran = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Fuzz.Driver.s_cases in
  Alcotest.(check bool) "swept a non-trivial number of cases" true (ran >= 30)

let () =
  Alcotest.run "fuzz"
    [
      ( "corpus",
        [
          Alcotest.test_case "replays deterministically" `Quick
            test_corpus_replays;
          Alcotest.test_case "save/load round trip" `Quick
            test_corpus_round_trip;
        ] );
      ( "gen",
        [
          Alcotest.test_case "programs well-formed over 100 seeds" `Quick
            test_generator_well_formed;
          Alcotest.test_case "program seed stability" `Quick
            test_generator_seed_stability;
          Alcotest.test_case "plan seed stability" `Quick test_plan_stability;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin monotone, terminating, 1-minimal" `Quick
            test_ddmin;
          Alcotest.test_case "ddmin zero budget" `Quick test_ddmin_budget_zero;
          Alcotest.test_case "program shrink monotone + well-formed" `Quick
            test_program_shrink;
        ] );
      ( "driver",
        [
          Alcotest.test_case "e2e: catch, shrink, persist, replay" `Quick
            test_e2e_pipeline;
          Alcotest.test_case "summary determinism" `Quick
            test_driver_determinism;
          Alcotest.test_case "budgeted safe-model sweep" `Slow
            test_budgeted_smoke;
        ] );
    ]
