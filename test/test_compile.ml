(* Differential tests for the staged mxlang compiler and the parallel
   explorer: the compiled successor engine must agree with the AST
   interpreter on every reachable (state, pid, action) triple, the two
   [Explore.run] engines must produce identical results, and
   [Par_explore.run] must match the sequential explorer on every
   registry algorithm at every pool width. *)

module MC = Modelcheck

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let cap = 20_000

(* -------------------------------------------------- move-level agreement *)

(* Enumerate every state reachable in [prog] (up to [cap]) and compare
   the interpreter's move list against the compiled engine's, move by
   move: same (pid, from_pc, alt) in the same deterministic order and
   structurally equal destination states.  This exercises every guard
   and every effect of every action on every reachable input. *)
let assert_moves_agree name prog ~nprocs ~bound =
  let sys = MC.System.make prog ~nprocs ~bound in
  let g, stats = MC.Explore.run_graph ~max_states:cap sys in
  let states = ref 0 and moves = ref 0 in
  for id = 0 to MC.Vec.length g.states - 1 do
    let s = MC.Vec.get g.states id in
    let reference = MC.System.successors_interpreted sys s in
    let compiled = MC.System.successors sys s in
    check int_t
      (Printf.sprintf "%s state %d: move count" name id)
      (List.length reference) (List.length compiled);
    List.iter2
      (fun (r : MC.System.move) (c : MC.System.move) ->
        incr moves;
        if
          r.pid <> c.pid || r.from_pc <> c.from_pc || r.alt <> c.alt
          || not (MC.State.equal r.dest c.dest)
        then
          Alcotest.failf "%s state %d: move (pid=%d,pc=%d,alt=%d) differs"
            name id r.pid r.from_pc r.alt)
      reference compiled;
    incr states
  done;
  check bool_t (name ^ ": explored something") true (!states > 1);
  check int_t (name ^ ": visited all distinct states") stats.distinct !states;
  ignore !moves

let moves_bakery () =
  assert_moves_agree "bakery n2" (Algorithms.Bakery.program ()) ~nprocs:2
    ~bound:6;
  assert_moves_agree "bakery n3" (Algorithms.Bakery.program ()) ~nprocs:3
    ~bound:8

let moves_bakery_pp () =
  assert_moves_agree "bakery_pp n2" (Core.Bakery_pp_model.program ()) ~nprocs:2
    ~bound:2;
  assert_moves_agree "bakery_pp n3" (Core.Bakery_pp_model.program ()) ~nprocs:3
    ~bound:2;
  assert_moves_agree "bakery_pp_fine n2"
    (Core.Bakery_pp_model.program ~granularity:Algorithms.Common.Fine ())
    ~nprocs:2 ~bound:2

(* ------------------------------------------------ engine-level agreement *)

let outcome_label = function
  | MC.Explore.Pass -> "pass"
  | Violation { invariant; _ } -> "violation:" ^ invariant
  | Deadlock _ -> "deadlock"
  | Capacity -> "capacity"

let trace_of_outcome = function
  | MC.Explore.Violation { trace; _ } | Deadlock { trace } -> Some trace
  | Pass | Capacity -> None

let nprocs_for name = if name = "peterson2" || name = "dekker" then 2 else 3

(* Compiled vs interpreted [Explore.run]: same outcome, same distinct /
   generated / depth counts, and byte-identical counterexample traces,
   on every registry model. *)
let engines_agree () =
  List.iter
    (fun (name, prog) ->
      let sys = MC.System.make prog ~nprocs:(nprocs_for name) ~bound:3 in
      let a = MC.Explore.run ~max_states:cap ~interpreted:true sys in
      let b = MC.Explore.run ~max_states:cap sys in
      check Alcotest.string
        (name ^ ": outcome")
        (outcome_label a.outcome) (outcome_label b.outcome);
      check int_t (name ^ ": distinct") a.stats.distinct b.stats.distinct;
      check int_t (name ^ ": generated") a.stats.generated b.stats.generated;
      check int_t (name ^ ": depth") a.stats.depth b.stats.depth;
      check bool_t
        (name ^ ": identical traces")
        true
        (trace_of_outcome a.outcome = trace_of_outcome b.outcome))
    Harness.Registry.models

(* --------------------------------------------------- parallel explorer *)

(* [Par_explore.run] at 1..4 domains vs the sequential explorer, on
   every registry model: same outcome always, and on a Pass — where
   both engines explore the full reachable set wave by wave — the
   exact same distinct and generated counts.  On a violation or at
   capacity the engines stop mid-wave at different points, so only
   the outcome is pinned there. *)
let par_matches_sequential () =
  List.iter
    (fun (name, prog) ->
      let sys = MC.System.make prog ~nprocs:(nprocs_for name) ~bound:3 in
      let seq = MC.Explore.run ~max_states:cap sys in
      List.iter
        (fun domains ->
          let par = MC.Par_explore.run ~max_states:cap ~domains sys in
          (* Capacity is a resource limit, not a verdict: the engines
             overshoot the cap by different amounts within the final
             wave, and one may legitimately find a real violation
             there while the other gives up.  Everything else must
             agree. *)
          if seq.outcome <> MC.Explore.Capacity && par.outcome <> MC.Explore.Capacity
          then
            check Alcotest.string
              (Printf.sprintf "%s d=%d: outcome" name domains)
              (outcome_label seq.outcome) (outcome_label par.outcome);
          if seq.outcome = MC.Explore.Pass then begin
            check int_t
              (Printf.sprintf "%s d=%d: distinct" name domains)
              seq.stats.distinct par.stats.distinct;
            check int_t
              (Printf.sprintf "%s d=%d: generated" name domains)
              seq.stats.generated par.stats.generated
          end)
        [ 1; 2; 3; 4 ])
    Harness.Registry.models

(* A shared pool reused across several searches (the harness pattern). *)
let shared_pool () =
  MC.Pool.with_pool 3 (fun pool ->
      List.iter
        (fun (name, prog) ->
          let sys = MC.System.make prog ~nprocs:(nprocs_for name) ~bound:2 in
          let seq = MC.Explore.run ~max_states:cap sys in
          let par = MC.Par_explore.run ~max_states:cap ~pool sys in
          check Alcotest.string
            (name ^ " pooled: outcome")
            (outcome_label seq.outcome) (outcome_label par.outcome);
          if seq.outcome = MC.Explore.Pass then
            check int_t (name ^ " pooled: distinct") seq.stats.distinct
              par.stats.distinct)
        [
          ("bakery_pp", Core.Bakery_pp_model.program ());
          ("peterson2", Algorithms.Peterson2.program ());
        ])

(* ------------------------------------------------------------- the pool *)

let pool_runs_every_worker () =
  MC.Pool.with_pool 4 (fun p ->
      check int_t "size" 4 (MC.Pool.size p);
      let hits = Array.make 4 0 in
      for _ = 1 to 50 do
        MC.Pool.run p (fun w -> hits.(w) <- hits.(w) + 1)
      done;
      Array.iteri
        (fun w n -> check int_t (Printf.sprintf "worker %d ran" w) 50 n)
        hits)

let pool_propagates_exceptions () =
  MC.Pool.with_pool 2 (fun p ->
      (match MC.Pool.run p (fun w -> if w = 1 then failwith "boom") with
      | exception Failure m -> check Alcotest.string "message" "boom" m
      | () -> Alcotest.fail "expected the worker's exception");
      (* The pool must survive a failed job. *)
      let ok = Array.make 2 false in
      MC.Pool.run p (fun w -> ok.(w) <- true);
      check bool_t "still works" true (ok.(0) && ok.(1)))

let () =
  Alcotest.run "compile"
    [
      ( "differential",
        [
          Alcotest.test_case "bakery moves: interpreter = compiled" `Quick
            moves_bakery;
          Alcotest.test_case "bakery++ moves: interpreter = compiled" `Quick
            moves_bakery_pp;
          Alcotest.test_case "Explore.run engines agree on all models" `Quick
            engines_agree;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "Par_explore matches Explore at 1..4 domains"
            `Quick par_matches_sequential;
          Alcotest.test_case "shared pool across searches" `Quick shared_pool;
          Alcotest.test_case "pool runs every worker" `Quick
            pool_runs_every_worker;
          Alcotest.test_case "pool propagates exceptions" `Quick
            pool_propagates_exceptions;
        ] );
    ]
