(* Tier-1 tests for lib/trace: golden determinism of the explainer on
   the whole .repro corpus, Chrome trace-event well-formedness (parsed
   back through Telemetry.Json: one complete label track per process,
   tiled and monotone), vector-clock laws on fuzz-generated schedules,
   the self-describing JSONL codec (round trip + schema rejection), the
   trace-derived FCFS-inversion query against the runner's counter, and
   the differential guarantee that switching register-level recording
   on changes nothing but the event stream. *)

module J = Telemetry.Json

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------- corpus *)

(* Only the schedule entries: the explainer tests below re-execute
   each case through the simulator, which program-case repros (e.g.
   the reduced_* tie-break entries) cannot do — test_fuzz.ml replays
   those through their own oracle. *)
let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")
  |> List.filter (fun file ->
         match Fuzz.Repro.load file with
         | Error e -> Alcotest.failf "%s: cannot load: %s" file e
         | Ok r -> (
             match r.Fuzz.Repro.case with
             | Fuzz.Oracle.Sched_case _ -> true
             | Fuzz.Oracle.Prog_case _ -> false))

let plan_of_file file =
  match Fuzz.Repro.load file with
  | Error e -> Alcotest.failf "%s: cannot load: %s" file e
  | Ok r -> (
      match r.Fuzz.Repro.case with
      | Fuzz.Oracle.Sched_case pl -> pl
      | Fuzz.Oracle.Prog_case _ ->
          Alcotest.failf "%s: expected a schedule case" file)

(* Same path the CLI `explain --repro` takes: re-execute the schedule
   with full event recording and lift the run into a causal trace. *)
let run_plan ?(record_rw = true) (pl : Fuzz.Gen.plan) =
  let p = Harness.Registry.find_model pl.Fuzz.Gen.pl_model in
  let cfg =
    {
      (Fuzz.Oracle.sim_config pl) with
      Schedsim.Runner.record_events = true;
      record_rw;
    }
  in
  (p, Schedsim.Runner.run p cfg)

let trace_of_plan pl =
  let p, r = run_plan pl in
  (r, Trace.Of_sim.trace p ~nprocs:pl.Fuzz.Gen.pl_nprocs ~bound:pl.pl_bound r)

(* Random plans for the law/differential tests: a mix of safe and
   unsafe models, wrapping on, occasional crash/flicker injection. *)
let gen_plan seed =
  let rng = Prng.Rng.create seed in
  (* all three scale to the 3 processes the plans run with (peterson2
     does not) *)
  Fuzz.Gen.plan rng
    ~models:[ "bakery_pp"; "bakery"; "bakery_mod_naive" ]
    ~nprocs:3 ~bound:3 ~max_len:80

(* ---------------------------------------------------- explain goldens *)

(* The annotated story is a pure function of the repro file: rendering
   it must reproduce the committed golden byte for byte.  Catching any
   accidental nondeterminism (wall clocks, hash order) and any silent
   wording drift in one place. *)
let test_explain_goldens () =
  let files = corpus_files () in
  check bool_t "corpus is non-empty" true (List.length files >= 5);
  List.iter
    (fun file ->
      let base = Filename.remove_extension (Filename.basename file) in
      let golden = Filename.concat "golden" (base ^ ".explain.txt") in
      let _, tr = trace_of_plan (plan_of_file file) in
      let got = Trace.Explain.render tr in
      check string_t base (read_file golden) got)
    files

let test_explain_deterministic () =
  List.iter
    (fun file ->
      let pl = plan_of_file file in
      let _, t1 = trace_of_plan pl in
      let _, t2 = trace_of_plan pl in
      check string_t
        (file ^ ": two runs explain identically")
        (Trace.Explain.render t1) (Trace.Explain.render t2))
    (corpus_files ())

(* The wrap corpus entries are the paper's §3 scenario: the story must
   name the failed mutex conjunct and the wrapping write it observed. *)
let test_explain_names_the_corruption () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun file ->
      let pl = plan_of_file file in
      let _, tr = trace_of_plan pl in
      let s = Trace.Explain.render tr in
      let wants =
        [
          "VIOLATION: mutual-exclusion";
          "at most one process is at a Critical-kind label";
        ]
        (* only the bakery_wrap entries corrupt through the runner's
           register-wrap policy; bakery_mod_naive wraps inside its own
           modulo arithmetic, which never exceeds M *)
        @
        if
          String.length (Filename.basename file) >= 11
          && String.sub (Filename.basename file) 0 11 = "bakery_wrap"
        then [ "WRAPPED"; "happens-before" ]
        else []
      in
      List.iter
        (fun needle ->
          check bool_t
            (Printf.sprintf "%s: story mentions %S" file needle)
            true (contains s needle))
        wants)
    (corpus_files ())

(* ----------------------------------------------------- chrome export *)

let obj_fields = function J.Obj l -> l | _ -> Alcotest.fail "expected object"

let fnum name o =
  match Option.bind (J.member name o) J.to_num with
  | Some x -> x
  | None -> Alcotest.failf "missing numeric field %S" name

let fstr name o =
  match J.member name o with
  | Some (J.Str s) -> s
  | _ -> Alcotest.failf "missing string field %S" name

let chrome_events tr =
  match J.parse (Trace.Chrome.to_string tr) with
  | Error e -> Alcotest.failf "chrome JSON does not parse back: %s" e
  | Ok j -> (
      match J.member "traceEvents" j with
      | Some (J.Arr l) -> l
      | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_well_formed () =
  List.iter
    (fun file ->
      let pl = plan_of_file file in
      let _, tr = trace_of_plan pl in
      let events = chrome_events tr in
      let nprocs = tr.Trace.Event.nprocs in
      let total = max (Array.length tr.events) 1 in
      (* every process is a named track *)
      for p = 0 to nprocs - 1 do
        let named =
          List.exists
            (fun e ->
              fstr "ph" e = "M"
              && fstr "name" e = "thread_name"
              && int_of_float (fnum "tid" e) = p)
            events
        in
        check bool_t (Printf.sprintf "%s: p%d track named" file p) true named;
        (* ... carrying complete label spans that tile [0, end] with
           monotone timestamps: the "one complete track per process"
           acceptance bar. *)
        let spans =
          List.filter_map
            (fun e ->
              if
                J.member "ph" e = Some (J.Str "X")
                && J.member "cat" e = Some (J.Str "label")
                && int_of_float (fnum "tid" e) = p
              then Some (fnum "ts" e, fnum "dur" e)
              else None)
            events
          |> List.sort compare
        in
        check bool_t (Printf.sprintf "%s: p%d has spans" file p) true
          (spans <> []);
        let last_end =
          List.fold_left
            (fun expected_start (ts, dur) ->
              check (Alcotest.float 0.0)
                (Printf.sprintf "%s: p%d spans tile (ts %.0f)" file p ts)
                expected_start ts;
              check bool_t "span length is non-negative" true (dur >= 0.0);
              ts +. dur)
            0.0 spans
        in
        check (Alcotest.float 0.0)
          (Printf.sprintf "%s: p%d track covers the whole run" file p)
          (float_of_int total) last_end
      done;
      (* instants are well-formed and inside the run *)
      List.iter
        (fun e ->
          match fstr "ph" e with
          | "i" ->
              let ts = fnum "ts" e in
              check bool_t "instant inside run" true
                (ts >= 0.0 && ts <= float_of_int total);
              check bool_t "instant has scope" true
                (match fstr "s" e with "t" | "g" | "p" -> true | _ -> false)
          | "X" | "M" -> ()
          | ph -> Alcotest.failf "unexpected phase %S" ph)
        events;
      (* a wrap-corpus trace must surface the violation as an instant *)
      ignore (obj_fields (List.hd events)))
    (corpus_files ())

let test_chrome_has_violation_instant () =
  let _, tr = trace_of_plan (plan_of_file "corpus/bakery_wrap_56.repro") in
  let events = chrome_events tr in
  check bool_t "violation instant present" true
    (List.exists
       (fun e ->
         fstr "ph" e = "i"
         && J.member "cat" e = Some (J.Str "violation"))
       events)

(* ------------------------------------------------- vector-clock laws *)

let test_vclock_laws () =
  for seed = 1 to 20 do
    let pl = gen_plan seed in
    let _, tr = trace_of_plan pl in
    let evs = tr.Trace.Event.events in
    let n = Array.length evs in
    Array.iter
      (fun (e : Trace.Event.t) ->
        (* irreflexivity *)
        if Trace.Vclock.lt e.vc e.vc then
          Alcotest.failf "seed %d: vc < itself at seq %d" seed e.seq)
      evs;
    (* consistency with program order: along one process, clocks grow
       strictly *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = evs.(i) and b = evs.(j) in
        if a.pid >= 0 && a.pid = b.pid && not (Trace.Vclock.lt a.vc b.vc) then
          Alcotest.failf "seed %d: program order violated (seq %d vs %d)" seed
            a.seq b.seq
      done
    done;
    (* reads-from edges are happens-before edges *)
    Array.iter
      (fun (e : Trace.Event.t) ->
        if e.observed >= 0 then begin
          let w = evs.(e.observed) in
          if not (Trace.Vclock.leq w.vc e.vc) then
            Alcotest.failf "seed %d: observation at seq %d not after its \
                            write at seq %d" seed e.seq w.seq
        end)
      evs;
    (* transitivity on a strided sample of triples *)
    let stride = max 1 (n / 12) in
    let i = ref 0 in
    while !i < n do
      let j = ref (!i + stride) in
      while !j < n do
        let k = !j + stride in
        if k < n then begin
          let a = evs.(!i) and b = evs.(!j) and c = evs.(k) in
          if
            Trace.Vclock.lt a.vc b.vc
            && Trace.Vclock.lt b.vc c.vc
            && not (Trace.Vclock.lt a.vc c.vc)
          then Alcotest.failf "seed %d: transitivity violated" seed
        end;
        j := !j + stride
      done;
      i := !i + stride
    done
  done

(* -------------------------------------------------------- JSONL codec *)

let test_jsonl_round_trip () =
  List.iter
    (fun file ->
      let _, tr = trace_of_plan (plan_of_file file) in
      let path = Filename.temp_file "trace" ".jsonl" in
      Trace.Jsonl.write ~path tr;
      (match Trace.Jsonl.read ~path with
      | Error e -> Alcotest.failf "%s: read back failed: %s" file e
      | Ok tr' ->
          (* the story and the Chrome export are total functions of the
             trace: equality there is structural equality that matters *)
          check string_t
            (file ^ ": explain survives the round trip")
            (Trace.Explain.render tr) (Trace.Explain.render tr');
          check string_t
            (file ^ ": chrome survives the round trip")
            (Trace.Chrome.to_string tr) (Trace.Chrome.to_string tr');
          check int_t
            (file ^ ": event count survives")
            (Array.length tr.events)
            (Array.length tr'.Trace.Event.events));
      Sys.remove path)
    (corpus_files ())

let test_jsonl_rejects_wrong_schema () =
  let _, tr = trace_of_plan (plan_of_file "corpus/bakery_wrap_56.repro") in
  let path = Filename.temp_file "trace" ".jsonl" in
  Trace.Jsonl.write ~path tr;
  let lines = String.split_on_char '\n' (String.trim (read_file path)) in
  let oc = open_out path in
  List.iteri
    (fun i line ->
      let line =
        if i = 0 then
          (* bump the header's schema field only *)
          match J.parse line with
          | Ok (J.Obj fields) ->
              J.to_string
                (J.Obj
                   (List.map
                      (function
                        | "schema", _ -> ("schema", J.Num 99.0)
                        | kv -> kv)
                      fields))
          | _ -> Alcotest.fail "header line does not parse"
        else line
      in
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc;
  (match Trace.Jsonl.read ~path with
  | Ok _ -> Alcotest.fail "schema 99 must be rejected"
  | Error e ->
      check bool_t "error names the schema" true
        (String.length e > 0
        &&
        let rec has i =
          i + 2 <= String.length e
          && (String.sub e i 2 = "99" || has (i + 1))
        in
        has 0));
  Sys.remove path

let test_check_schema_unit () =
  (match Telemetry.Runmeta.check_schema (J.Obj [ ("kind", J.Str "header") ]) with
  | Ok () -> Alcotest.fail "missing schema must be rejected"
  | Error _ -> ());
  match
    Telemetry.Runmeta.check_schema
      (J.Obj
         [
           ( "schema",
             J.Num (float_of_int Telemetry.Runmeta.trace_schema_version) );
         ])
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "current schema rejected: %s" e

(* --------------------------------------------- derived FCFS inversions *)

(* E8's fairness metric is now a query over the causal trace; the
   runner's counter doubles as the differential oracle. *)
let test_query_inversions_match_runner () =
  for seed = 1 to 30 do
    let pl = gen_plan seed in
    let r, tr = trace_of_plan pl in
    check int_t
      (Printf.sprintf "seed %d (%s): derived inversions" seed
         pl.Fuzz.Gen.pl_model)
      r.Schedsim.Runner.fcfs_inversions
      (Trace.Query.fcfs_inversions tr)
  done

(* -------------------------------------- recording is observation-only *)

(* Switching register-level recording on must change nothing but the
   event stream: same counters, same final memory, and the non-R/W
   events are the identical subsequence.  This is the in-repo half of
   the "tracing disabled stays bit-identical" acceptance criterion. *)
let test_record_rw_is_pure_observation () =
  for seed = 1 to 15 do
    let pl = gen_plan seed in
    let prog, r_off = run_plan ~record_rw:false pl in
    let _, r_on = run_plan ~record_rw:true pl in
    let open Schedsim.Runner in
    check int_t "steps" r_off.steps r_on.steps;
    check (Alcotest.array int_t) "cs_entries" r_off.cs_entries r_on.cs_entries;
    check int_t "mutex_violations" r_off.mutex_violations r_on.mutex_violations;
    check int_t "overflow_events" r_off.overflow_events r_on.overflow_events;
    check int_t "fcfs_inversions" r_off.fcfs_inversions r_on.fcfs_inversions;
    check int_t "crashes" r_off.crashes r_on.crashes;
    check int_t "flickers" r_off.flickers r_on.flickers;
    check (Alcotest.array int_t) "final_shared" r_off.final_shared
      r_on.final_shared;
    let strip evs =
      List.filter
        (fun (e : Schedsim.Event.t) ->
          match e with
          | Schedsim.Event.Read _ | Schedsim.Event.Write _ -> false
          | _ -> true)
        evs
      |> List.map (Schedsim.Event.to_string prog)
    in
    check
      (Alcotest.list string_t)
      "non-R/W event stream identical" (strip r_off.events)
      (strip r_on.events)
  done

(* -------------------------------------------------- lock-zoo tracing *)

let test_lock_ring_trace () =
  let nprocs = 2 and iters = 60 in
  let family = Harness.Registry.find_family "tas" in
  let ring = Locks.Ring.create ~nprocs () in
  let inst =
    Locks.Ring.wrap ring (family.make ~nprocs ~bound:(1 lsl 20))
  in
  let counter = ref 0 in
  let worker pid () =
    for _ = 1 to iters do
      inst.Locks.Lock_intf.acquire pid;
      incr counter;
      inst.release pid
    done
  in
  let d = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d;
  check int_t "critical sections all ran" (nprocs * iters) !counter;
  check int_t "nothing dropped" 0 (Locks.Ring.dropped ring);
  let entries = Locks.Ring.flush ring in
  check int_t "three records per cycle" (3 * nprocs * iters)
    (List.length entries);
  let tr = Trace.Of_locks.trace ~lock:family.family_name ~nprocs entries in
  (* the ring stamps Released before the releasing store, so on the
     merged log the lock is held by at most one domain at a time *)
  let holder = ref (-1) in
  Array.iter
    (fun (e : Trace.Event.t) ->
      match e.kind with
      | Trace.Event.Acquire _ ->
          if !holder <> -1 then
            Alcotest.failf "p%d acquired while p%d still held" e.pid !holder;
          holder := e.pid
      | Trace.Event.Release _ ->
          check int_t "release by the holder" !holder e.pid;
          holder := -1
      | _ -> ())
    tr.Trace.Event.events;
  (* every hand-over is a happens-before edge *)
  Array.iter
    (fun (e : Trace.Event.t) ->
      if e.observed >= 0 then
        check bool_t "acquire after the release it observed" true
          (Trace.Vclock.leq tr.events.(e.observed).vc e.vc))
    tr.events;
  (* and the whole thing exports cleanly *)
  ignore (chrome_events tr)

(* ------------------------------------------------------------ re-walk *)

(* The checker path: explore a violating model, re-walk the
   counterexample, and check the walk-derived trace explains the same
   conjunct the checker reported. *)
let test_rewalk_explains_checker_violation () =
  let p = Harness.Registry.find_model "bakery_mod_naive" in
  let sys = Modelcheck.System.make p ~nprocs:3 ~bound:2 in
  let invariants =
    [ Modelcheck.Invariant.mutex; Modelcheck.Invariant.no_overflow ]
  in
  let r = Modelcheck.Explore.run ~invariants sys in
  match r.outcome with
  | Modelcheck.Explore.Violation { invariant; trace = ctrex } -> (
      match Modelcheck.Rewalk.of_trace sys ctrex with
      | Error e -> Alcotest.failf "re-walk failed: %s" e
      | Ok w ->
          let final =
            List.fold_left
              (fun _ (s : Modelcheck.Rewalk.step) -> s.rw_post)
              w.Modelcheck.Rewalk.rw_init w.rw_steps
          in
          let violation =
            Modelcheck.Invariant.explain_failure
              (Modelcheck.Invariant.all invariants)
              sys final
          in
          (match violation with
          | None -> Alcotest.fail "final state must falsify a conjunct"
          | Some f ->
              check string_t "same conjunct as the checker" invariant
                f.Modelcheck.Invariant.f_name);
          let tr = Trace.Of_walk.trace ?violation w in
          check int_t "one step block per counterexample entry"
            (List.length w.rw_steps)
            (Array.fold_left
               (fun acc (e : Trace.Event.t) ->
                 match e.kind with
                 | Trace.Event.Label _ -> acc + 1
                 | _ -> acc)
               0 tr.Trace.Event.events);
          let s = Trace.Explain.render tr in
          check bool_t "story carries a violation section" true
            (String.length s > 0
            &&
            let rec has i =
              i + 9 <= String.length s
              && (String.sub s i 9 = "violation" || has (i + 1))
            in
            has 0))
  | _ -> Alcotest.fail "bakery_mod_naive at N=3 M=2 must violate mutex"

let () =
  Alcotest.run "trace"
    [
      ( "explain",
        [
          Alcotest.test_case "goldens" `Quick test_explain_goldens;
          Alcotest.test_case "deterministic" `Quick test_explain_deterministic;
          Alcotest.test_case "names the corruption" `Quick
            test_explain_names_the_corruption;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "well-formed tracks" `Quick
            test_chrome_well_formed;
          Alcotest.test_case "violation instant" `Quick
            test_chrome_has_violation_instant;
        ] );
      ( "vclock",
        [ Alcotest.test_case "laws on fuzzed schedules" `Quick test_vclock_laws ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "rejects wrong schema" `Quick
            test_jsonl_rejects_wrong_schema;
          Alcotest.test_case "check_schema unit" `Quick test_check_schema_unit;
        ] );
      ( "query",
        [
          Alcotest.test_case "fcfs inversions match runner" `Quick
            test_query_inversions_match_runner;
        ] );
      ( "purity",
        [
          Alcotest.test_case "record_rw is observation-only" `Quick
            test_record_rw_is_pure_observation;
        ] );
      ( "locks",
        [ Alcotest.test_case "ring -> causal trace" `Quick test_lock_ring_trace ] );
      ( "rewalk",
        [
          Alcotest.test_case "explains the checker violation" `Quick
            test_rewalk_explains_checker_violation;
        ] );
    ]
