(* Formatting lint for the OCaml sources, run as part of tier-1.

   ocamlformat is not a dependency of this repo, so this is the
   mechanical subset that catches real drift in new modules: no tab
   characters, no trailing whitespace, no CR line endings, and every
   file ends in exactly one newline.  The scan walks the copied source
   tree inside the build sandbox (found by walking up to dune-project),
   so it always lints what was just built. *)

let source_dirs = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "dune-project not found above the test cwd"
    else find_root parent

let rec ml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then
           if entry = "_build" || entry.[0] = '.' then [] else ml_files path
         else if
           Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
         then [ path ]
         else [])

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path =
  let body = read_file path in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  if String.contains body '\t' then problem "tab character";
  if String.contains body '\r' then problem "CR line ending";
  let n = String.length body in
  if n = 0 || body.[n - 1] <> '\n' then problem "missing final newline"
  else if n >= 2 && body.[n - 2] = '\n' then problem "trailing blank line";
  String.split_on_char '\n' body
  |> List.iteri (fun i line ->
         let l = String.length line in
         if l > 0 && (line.[l - 1] = ' ' || line.[l - 1] = '\t') then
           problem "trailing whitespace on line %d" (i + 1));
  List.rev !problems

let formatting () =
  let root = find_root (Sys.getcwd ()) in
  let files =
    List.concat_map
      (fun d ->
        let dir = Filename.concat root d in
        if Sys.file_exists dir then ml_files dir else [])
      source_dirs
  in
  Alcotest.(check bool)
    "found a plausible number of sources" true
    (List.length files > 50);
  let dirty =
    List.concat_map
      (fun f ->
        List.map
          (fun p -> Printf.sprintf "%s: %s" f p)
          (lint_file f))
      files
  in
  if dirty <> [] then
    Alcotest.failf "formatting drift:\n%s" (String.concat "\n" dirty)

let () =
  Alcotest.run "lint"
    [ ("formatting", [ Alcotest.test_case "sources are clean" `Quick formatting ]) ]
