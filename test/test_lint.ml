(* Formatting lint for the OCaml sources, run as part of tier-1.

   ocamlformat is not a dependency of this repo, so this is the
   mechanical subset that catches real drift in new modules: no tab
   characters, no trailing whitespace, no CR line endings, and every
   file ends in exactly one newline.  The scan walks the copied source
   tree inside the build sandbox (found by walking up to dune-project),
   so it always lints what was just built. *)

let source_dirs = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "dune-project not found above the test cwd"
    else find_root parent

let rec ml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then
           if entry = "_build" || entry.[0] = '.' then [] else ml_files path
         else if
           Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
         then [ path ]
         else [])

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path =
  let body = read_file path in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  if String.contains body '\t' then problem "tab character";
  if String.contains body '\r' then problem "CR line ending";
  let n = String.length body in
  if n = 0 || body.[n - 1] <> '\n' then problem "missing final newline"
  else if n >= 2 && body.[n - 2] = '\n' then problem "trailing blank line";
  String.split_on_char '\n' body
  |> List.iteri (fun i line ->
         let l = String.length line in
         if l > 0 && (line.[l - 1] = ' ' || line.[l - 1] = '\t') then
           problem "trailing whitespace on line %d" (i + 1));
  List.rev !problems

let formatting () =
  let root = find_root (Sys.getcwd ()) in
  let files =
    List.concat_map
      (fun d ->
        let dir = Filename.concat root d in
        if Sys.file_exists dir then ml_files dir else [])
      source_dirs
  in
  Alcotest.(check bool)
    "found a plausible number of sources" true
    (List.length files > 50);
  let dirty =
    List.concat_map
      (fun f ->
        List.map
          (fun p -> Printf.sprintf "%s: %s" f p)
          (lint_file f))
      files
  in
  if dirty <> [] then
    Alcotest.failf "formatting drift:\n%s" (String.concat "\n" dirty)

(* ------------------------------------------------------- metric names *)

(* The metric-name lint (see Telemetry.Catalog): every instrument name
   the sources register must be covered by the catalogue, and the
   catalogue itself must be duplicate-free.  The scan is textual —
   string literals with a metric-name shape, plus the literal
   prefix/suffix fragments of [("lock." ^ name ^ ".acquire_s")]-style
   registration sites — so a typo'd name fails tier-1 instead of
   minting a series nobody reads. *)

let is_metric_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.'

(* full metric-name shape: lowercase start, at least one dot, no
   leading/trailing/double dots, metric charset only *)
let metric_shaped s =
  let n = String.length s in
  n > 0
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && s.[n - 1] <> '.'
  && String.contains s '.'
  && (let ok = ref true in
      String.iter (fun c -> if not (is_metric_char c) then ok := false) s;
      !ok)
  &&
  let double = ref false in
  String.iteri
    (fun i c -> if c = '.' && i + 1 < n && s.[i + 1] = '.' then double := true)
    s;
  not !double

(* all string literals on a line (no escape handling — metric names
   never contain backslashes, and a literal we fail to parse is simply
   not checked) *)
let literals_of_line line =
  let out = ref [] in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    if line.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && line.[!j] <> '"' do
        if line.[!j] = '\\' then incr j;
        incr j
      done;
      if !j < n then out := String.sub line (!i + 1) (!j - !i - 1) :: !out;
      i := !j + 1
    end
    else incr i
  done;
  List.rev !out

let mentions_instrument line =
  List.exists
    (fun needle ->
      let nl = String.length needle and hl = String.length line in
      let rec go i =
        i + nl <= hl && (String.sub line i nl = needle || go (i + 1))
      in
      go 0)
    [ "counter"; "gauge"; "histogram" ]

let contains_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let metric_names () =
  (* catalogue hygiene first: sorted, duplicate-free, valid patterns *)
  let cat = Telemetry.Catalog.all in
  Alcotest.(check bool)
    "catalogue is sorted" true
    (List.sort compare cat = cat);
  Alcotest.(check int)
    "catalogue has no duplicates"
    (List.length (List.sort_uniq compare cat))
    (List.length cat);
  List.iter
    (fun entry ->
      Alcotest.(check bool)
        (entry ^ " is a valid pattern")
        true
        (String.length entry > 0
        && entry.[0] <> '.'
        && entry.[String.length entry - 1] <> '.'
        && (let ok = ref true in
            String.iter
              (fun c -> if not (is_metric_char c || c = '*') then ok := false)
              entry;
            !ok)))
    cat;
  (* the matcher itself: sanity anchors *)
  Alcotest.(check bool)
    "literal entry matches" true
    (Telemetry.Catalog.matches "explore.generated");
  Alcotest.(check bool)
    "wildcard entry matches" true
    (Telemetry.Catalog.matches "lock.bakery_pp.acquire_s");
  Alcotest.(check bool)
    "unknown name rejected" false
    (Telemetry.Catalog.matches "explore.bogus_metric");
  (* namespaces the sweep cares about: first segment of each entry *)
  let namespaces =
    List.sort_uniq compare
      (List.map
         (fun e ->
           match String.index_opt e '.' with
           | Some i -> String.sub e 0 i
           | None -> e)
         cat)
  in
  let root = find_root (Sys.getcwd ()) in
  let files =
    List.concat_map
      (fun d ->
        let dir = Filename.concat root d in
        if Sys.file_exists dir then ml_files dir else [])
      [ "lib"; "bin"; "bench" ]
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
  in
  Alcotest.(check bool)
    "found sources to scan" true
    (List.length files > 30);
  let problems = ref [] in
  let checked = ref 0 in
  let problem fmt =
    Printf.ksprintf (fun m -> problems := m :: !problems) fmt
  in
  List.iter
    (fun file ->
      let lines = String.split_on_char '\n' (read_file file) in
      List.iteri
        (fun i line ->
          let prev = if i = 0 then "" else List.nth lines (i - 1) in
          if not (contains_sub line "Span.start") then
            List.iter
              (fun lit ->
                let n = String.length lit in
                let namespace =
                  match String.index_opt lit '.' with
                  | Some j -> String.sub lit 0 j
                  | None -> lit
                in
                if metric_shaped lit && List.mem namespace namespaces then begin
                  incr checked;
                  if not (Telemetry.Catalog.matches lit) then
                    problem "%s:%d: metric %S is not in Telemetry.Catalog"
                      file (i + 1) lit
                end
                else if
                  mentions_instrument line || mentions_instrument prev
                then begin
                  (* concat fragments at registration sites:
                     ("bench." ^ id ^ ".wall_s") *)
                  if n > 1 && lit.[n - 1] = '.' && metric_shaped (lit ^ "x")
                  then begin
                    if not (Telemetry.Catalog.covers_prefix lit) then
                      problem
                        "%s:%d: no catalogue entry can start with %S" file
                        (i + 1) lit
                  end
                  else if n > 1 && lit.[0] = '.' && metric_shaped ("x" ^ lit)
                  then if not (Telemetry.Catalog.covers_suffix lit) then
                    problem "%s:%d: no catalogue entry can end with %S" file
                      (i + 1) lit
                end)
              (literals_of_line line))
        lines)
    files;
  Alcotest.(check bool)
    "sweep saw a plausible number of metric literals" true
    (!checked >= 30);
  if !problems <> [] then
    Alcotest.failf "metric-name drift:\n%s"
      (String.concat "\n" (List.rev !problems))

let () =
  Alcotest.run "lint"
    [
      ("formatting", [ Alcotest.test_case "sources are clean" `Quick formatting ]);
      ( "metrics",
        [ Alcotest.test_case "names are catalogued" `Quick metric_names ] );
    ]
