(* The flight-recorder subsystem: series math, drift/ETA analyzers,
   flight codec + ring recorder, and the deterministic report renderer
   (golden-filed: same inputs must render byte-identically forever,
   or the golden is updated knowingly). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let str_t = Alcotest.string
let close epsilon = Alcotest.float epsilon

(* ------------------------------------------------------------ series *)

let series_stats () =
  check bool_t "mean of empty is nan" true (Float.is_nan (Obs.Series.mean [||]));
  check (close 1e-9) "mean" 2.0 (Obs.Series.mean [| 1.; 2.; 3. |]);
  check (close 1e-9) "stddev" 1.0 (Obs.Series.stddev [| 1.; 2.; 3. |]);
  check (close 1e-9) "stddev single" 0.0 (Obs.Series.stddev [| 5. |])

let series_sparkline () =
  check str_t "empty" "" (Obs.Series.sparkline [||]);
  check str_t "flat is mid-level" "▄▄▄" (Obs.Series.sparkline [| 2.; 2.; 2. |]);
  check str_t "ramp spans the levels" "▁▂▃▄▅▆▇█"
    (Obs.Series.sparkline [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7. |]);
  check str_t "non-finite renders as dot" "▁·█"
    (Obs.Series.sparkline [| 0.; nan; 1. |])

let series_fit () =
  (match Obs.Series.fit ~t:[| 0.; 1.; 2.; 3. |] ~y:[| 1.; 3.; 5.; 7. |] with
  | None -> Alcotest.fail "fit of a perfect line failed"
  | Some f ->
      check (close 1e-9) "slope" 2.0 f.Obs.Series.slope;
      check (close 1e-9) "intercept" 1.0 f.Obs.Series.intercept;
      check (close 1e-9) "r2 of exact fit" 1.0 f.Obs.Series.r2;
      check (close 1e-9) "stderr of exact fit" 0.0 f.Obs.Series.slope_stderr);
  check bool_t "fit needs two points" true
    (Obs.Series.fit ~t:[| 1. |] ~y:[| 1. |] = None);
  check bool_t "fit needs t variance" true
    (Obs.Series.fit ~t:[| 2.; 2.; 2. |] ~y:[| 1.; 2.; 3. |] = None)

(* ----------------------------------------------------------- analyze *)

let drift_verdicts () =
  let v s = Obs.Analyze.(verdict_to_string (drift ~metric:"m" s).verdict) in
  let ramp = Array.init 40 (fun i -> 10. +. float_of_int i) in
  check str_t "monotone growth is rising" "rising" (v ramp);
  check str_t "monotone decay is falling" "falling"
    (v (Array.init 40 (fun i -> 50. -. float_of_int i)));
  check str_t "flat stays flat" "flat" (v (Array.make 40 5.));
  check str_t "too short is insufficient" "insufficient"
    (v [| 1.; 2.; 3. |]);
  (* A single spike must not register as drift: window means absorb
     it. *)
  let spiky = Array.make 40 5. in
  spiky.(17) <- 500.;
  check str_t "one spike is not a drift" "flat" (v spiky);
  (* Sub-threshold growth (well under 10% first-to-last) stays flat. *)
  check str_t "sub-threshold growth is flat" "flat"
    (v (Array.init 40 (fun i -> 100. +. (0.01 *. float_of_int i))))

let eta_linear () =
  (* y = 100 t starting at t=0: after 10 samples (t=9, y=900), reaching
     5000 needs (5000-900)/100 = 41 s, with zero-width bands. *)
  let t = Array.init 10 float_of_int in
  let y = Array.map (fun x -> 100. *. x) t in
  (match Obs.Analyze.eta ~target:5000. ~t ~y with
  | None -> Alcotest.fail "eta on linear data failed"
  | Some e ->
      check (close 1e-6) "remaining" 41.0 e.Obs.Analyze.remaining_s;
      check (close 1e-6) "lo band" 41.0 e.Obs.Analyze.lo_s;
      check (close 1e-6) "hi band" 41.0 e.Obs.Analyze.hi_s;
      check (close 1e-6) "rate" 100.0 e.Obs.Analyze.rate);
  check bool_t "no eta when regressing" true
    (Obs.Analyze.eta ~target:100. ~t ~y:(Array.map (fun v -> -.v) y) = None);
  match Obs.Analyze.eta ~target:500. ~t ~y with
  | Some e ->
      check (close 1e-9) "past target means zero remaining" 0.0
        e.Obs.Analyze.remaining_s
  | None -> Alcotest.fail "eta past target failed"

(* ETA monotone convergence: on exactly linear progress, the point
   estimate can only shrink as more of the series is observed — a
   longer prefix never pushes the finish line further out. *)
let eta_monotone_convergence =
  QCheck.Test.make ~count:200 ~name:"eta converges monotonically on linear data"
    QCheck.(
      triple (float_range 0.1 1000.) (float_range 0.0 100.) (int_range 5 60))
    (fun (rate, y0, n) ->
      let t = Array.init n (fun i -> 0.5 *. float_of_int i) in
      let y = Array.map (fun x -> y0 +. (rate *. x)) t in
      let target = y0 +. (rate *. 1000.) in
      let remaining k =
        match
          Obs.Analyze.eta ~target ~t:(Array.sub t 0 k) ~y:(Array.sub y 0 k)
        with
        | Some e -> e.Obs.Analyze.remaining_s
        | None -> QCheck.Test.fail_report "eta vanished on a linear prefix"
      in
      let ok = ref true in
      for k = 3 to n - 1 do
        if remaining (k + 1) > remaining k +. 1e-6 then ok := false
      done;
      !ok)

let shard_analyzers () =
  (match Obs.Analyze.imbalance ~occ_min:[| 10.; 5. |] ~occ_max:[| 20.; 40. |] with
  | Some r -> check (close 1e-9) "worst ratio" 8.0 r
  | None -> Alcotest.fail "imbalance with data returned None");
  check bool_t "no data, no ratio" true
    (Obs.Analyze.imbalance ~occ_min:[||] ~occ_max:[||] = None);
  (* min occupancy clamps to 1 so an empty shard cannot divide by 0 *)
  (match Obs.Analyze.imbalance ~occ_min:[| 0. |] ~occ_max:[| 7. |] with
  | Some r -> check (close 1e-9) "zero min clamps" 7.0 r
  | None -> Alcotest.fail "imbalance clamp returned None");
  match Obs.Analyze.starvation ~steals:[| 5.; 5.; 5. |] ~idle:[| 0.; 90.; 200. |] with
  | Some (sg, ig) ->
      check (close 1e-9) "steal growth" 0.0 sg;
      check (close 1e-9) "idle growth" 200.0 ig
  | None -> Alcotest.fail "starvation with data returned None"

(* ------------------------------------------------------------ flight *)

let flight_codec () =
  let s = Obs.Flight.sample ~seq:3 ~at_s:1.5 [ ("b", 2.); ("a", 1.) ] in
  check bool_t "values sorted by name" true
    (List.map fst s.Obs.Flight.values = [ "a"; "b" ]);
  match Obs.Flight.sample_of_json (Obs.Flight.sample_to_json s) with
  | Ok s' -> check bool_t "sample round-trips" true (s = s')
  | Error e -> Alcotest.fail ("sample round-trip: " ^ e)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "obs_test_%d_%s" (Unix.getpid ()) name)

let flight_load () =
  let path = tmp_path "flight_load.jsonl" in
  let oc = open_out path in
  output_string oc
    (Telemetry.Json.to_string (Obs.Flight.header_json ()) ^ "\n");
  (* A foreign event (tee'd progress line) must be skipped, not fatal. *)
  output_string oc "{\"kind\": \"progress\", \"t\": 1}\n";
  List.iter
    (fun s ->
      output_string oc
        (Telemetry.Json.to_string (Obs.Flight.sample_to_json s) ^ "\n"))
    [
      Obs.Flight.sample ~seq:0 ~at_s:0.0 [ ("x", 1.) ];
      Obs.Flight.sample ~seq:1 ~at_s:0.5 [ ("x", 2.); ("y", 9.) ];
    ];
  close_out oc;
  (match Obs.Flight.load path with
  | Error e -> Alcotest.fail e
  | Ok (header, samples) ->
      check bool_t "header found" true (header <> None);
      check int_t "two samples" 2 (List.length samples);
      check
        (Alcotest.list str_t)
        "names are the sorted union" [ "x"; "y" ]
        (Obs.Flight.names samples);
      check bool_t "series skips absent values" true
        (Obs.Flight.series samples "y" = [| 9. |]);
      check bool_t "times zip with series" true
        (Obs.Flight.times samples "y" = [| 0.5 |]));
  (* A future-schema header must be refused, not misread. *)
  let oc = open_out path in
  output_string oc "{\"kind\": \"flight_header\", \"schema\": 999}\n";
  close_out oc;
  (match Obs.Flight.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema version was accepted");
  Sys.remove path

(* ---------------------------------------------------------- recorder *)

let recorder_ring () =
  let r = Obs.Recorder.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Recorder.record r [ ("v", float_of_int i) ]
  done;
  Obs.Recorder.stop r;
  let samples = Obs.Recorder.samples r in
  check int_t "ring keeps capacity" 4 (List.length samples);
  check int_t "dropped counted" 6 (Obs.Recorder.dropped r);
  check
    (Alcotest.list int_t)
    "oldest-first surviving seqs" [ 6; 7; 8; 9 ]
    (List.map (fun s -> s.Obs.Flight.seq) samples);
  Obs.Recorder.stop r;
  check bool_t "record after stop is a no-op" true
    (Obs.Recorder.record r [ ("v", 99.) ];
     List.length (Obs.Recorder.samples r) = 4)

let recorder_sink () =
  let path = tmp_path "recorder_sink.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let r = Obs.Recorder.create ~capacity:2 ~path () in
  for i = 0 to 4 do
    Obs.Recorder.record r [ ("v", float_of_int i) ]
  done;
  Obs.Recorder.stop r;
  (match Obs.Flight.load path with
  | Error e -> Alcotest.fail e
  | Ok (header, samples) ->
      check bool_t "sink writes the header" true (header <> None);
      (* the sink gets every sample, ring eviction notwithstanding *)
      check int_t "sink is complete" 5 (List.length samples));
  Sys.remove path

let recorder_sampler () =
  let polls = ref 0 in
  let r = Obs.Recorder.create () in
  Obs.Recorder.start_sampler ~interval_s:0.01 r ~poll:(fun () ->
      incr polls;
      [ ("n", float_of_int !polls) ]);
  Unix.sleepf 0.08;
  Obs.Recorder.stop r;
  let n = List.length (Obs.Recorder.samples r) in
  check bool_t "sampler recorded repeatedly" true (n >= 2);
  Obs.Recorder.stop r;
  check int_t "stop is idempotent" n (List.length (Obs.Recorder.samples r))

let recorder_of_metrics () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.add (Telemetry.Metrics.counter m "c") 7;
  Telemetry.Metrics.set (Telemetry.Metrics.gauge m "g") 2.5;
  let h = Telemetry.Metrics.histogram m "h" in
  ignore (Telemetry.Metrics.histogram m "empty");
  List.iter (Telemetry.Metrics.observe h) [ 0.001; 0.001; 0.5 ];
  let flat = Obs.Recorder.of_metrics m in
  let get k = List.assoc_opt k flat in
  check bool_t "counter flattens" true (get "c" = Some 7.);
  check bool_t "gauge flattens" true (get "g" = Some 2.5);
  check bool_t "histogram count" true (get "h.count" = Some 3.);
  check bool_t "histogram p50" true (get "h.p50" = Some 0.001);
  check bool_t "histogram p999 present" true (get "h.p999" <> None);
  check bool_t "empty histogram skipped" true (get "empty.count" = None)

(* ------------------------------------------------------------ report *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The golden pair pins the whole rendering contract: float formats,
   section order, sparkline scaling, drift thresholds, verdict logic.
   Regenerate (consciously!) with:
     dune exec test/test_obs.exe -- obs golden 2>/dev/null, or render
     golden/flight_small.jsonl through `bakery_cli report`. *)
let report_golden () =
  match Obs.Flight.load "golden/flight_small.jsonl" with
  | Error e -> Alcotest.fail e
  | Ok (header, samples) ->
      let input =
        {
          Obs.Report.empty with
          Obs.Report.flight_header = header;
          flight = samples;
        }
      in
      let rendered = Obs.Report.render input in
      check str_t "report matches golden/report_small.md"
        (read_file "golden/report_small.md")
        rendered

let report_deterministic () =
  (* Same in-memory input, two renders, byte equality — no hidden
     clock/host dependence. *)
  let samples =
    List.init 12 (fun i ->
        Obs.Flight.sample ~seq:i
          ~at_s:(0.1 *. float_of_int i)
          [
            ("explore.live_distinct", 100. *. float_of_int i);
            ("explore.max_states", 5000.);
            ("gc.heap_mb", 3. +. float_of_int i);
          ])
  in
  let input = { Obs.Report.empty with Obs.Report.flight = samples } in
  check str_t "byte-identical re-render" (Obs.Report.render input)
    (Obs.Report.render input);
  let doc = Obs.Report.render input in
  check bool_t "heap drift flagged" true
    (let has sub =
       let n = String.length doc and m = String.length sub in
       let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
       go 0
     in
     has "ATTENTION" && has "gc.heap_mb" && has "Completion ETA")

let report_scorecard_diff () =
  let row ?(goodput = 1000.) ?(slo = true) () =
    Telemetry.Json.Obj
      [
        ("kind", Telemetry.Json.Str "lock_scorecard");
        ("algo", Telemetry.Json.Str "bakery_pp");
        ("domains", Telemetry.Json.Num 2.);
        ("rate", Telemetry.Json.Num 4000.);
        ("goodput", Telemetry.Json.Num goodput);
        ("p99_ns", Telemetry.Json.Num 2.0e6);
        ("slo_pass", Telemetry.Json.Bool slo);
        ("drift_p99", Telemetry.Json.Str "rising");
      ]
  in
  let doc =
    Obs.Report.render
      {
        Obs.Report.empty with
        Obs.Report.bench = [ row (); row ~goodput:500. ~slo:false () ];
      }
  in
  let has sub =
    let n = String.length doc and m = String.length sub in
    let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
    go 0
  in
  check bool_t "regression vs best prior flagged" true (has "-50.0%");
  check bool_t "slo failure flagged" true (has "SLO fail");
  check bool_t "drift extra column flagged" true (has "drift_p99=rising")

let () =
  Alcotest.run "obs"
    [
      ( "series",
        [
          Alcotest.test_case "stats" `Quick series_stats;
          Alcotest.test_case "sparkline" `Quick series_sparkline;
          Alcotest.test_case "least squares" `Quick series_fit;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "drift verdicts" `Quick drift_verdicts;
          Alcotest.test_case "eta on linear data" `Quick eta_linear;
          QCheck_alcotest.to_alcotest eta_monotone_convergence;
          Alcotest.test_case "shard analyzers" `Quick shard_analyzers;
        ] );
      ( "flight",
        [
          Alcotest.test_case "sample codec" `Quick flight_codec;
          Alcotest.test_case "load / schema gate" `Quick flight_load;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring eviction" `Quick recorder_ring;
          Alcotest.test_case "jsonl sink" `Quick recorder_sink;
          Alcotest.test_case "background sampler" `Quick recorder_sampler;
          Alcotest.test_case "metrics flattening" `Quick recorder_of_metrics;
        ] );
      ( "report",
        [
          Alcotest.test_case "golden file" `Quick report_golden;
          Alcotest.test_case "deterministic render" `Quick report_deterministic;
          Alcotest.test_case "scorecard diff" `Quick report_scorecard_diff;
        ] );
    ]
