(* Tests for the explicit-state model checker: state packing, the
   growable vector, BFS exploration (positive and negative), trace
   reconstruction, deadlock detection, state constraints, refinement and
   the lasso search — each on small systems with known answers. *)

module MC = Modelcheck

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* ------------------------------------------------------------------ vec *)

let vec_basics () =
  let v = MC.Vec.create () in
  check int_t "empty" 0 (MC.Vec.length v);
  for i = 0 to 99 do
    let id = MC.Vec.push v (i * 2) in
    check int_t "push returns index" i id
  done;
  check int_t "length" 100 (MC.Vec.length v);
  check int_t "get" 84 (MC.Vec.get v 42);
  MC.Vec.set v 42 7;
  check int_t "set" 7 (MC.Vec.get v 42);
  let sum = ref 0 in
  MC.Vec.iteri (fun i x -> sum := !sum + i + x) v;
  check bool_t "iteri covers all" true (!sum > 0);
  (match MC.Vec.get v 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds get must raise");
  check int_t "to_list length" 100 (List.length (MC.Vec.to_list v))

(* ---------------------------------------------------------------- state *)

let sys_of ?(nprocs = 2) ?(bound = 3) prog = MC.System.make prog ~nprocs ~bound

let state_roundtrip () =
  let sys = sys_of (Core.Bakery_pp_model.program ()) in
  let lay = MC.System.layout sys in
  let s = MC.System.initial sys in
  check int_t "initial pc of 0" 0 (MC.State.pc lay s 0);
  MC.State.set_pc lay s 1 3;
  check int_t "set_pc" 3 (MC.State.pc lay s 1);
  let shared = MC.State.shared_part lay s in
  let locals = MC.State.locals_part lay s 1 in
  shared.(0) <- 9;
  locals.(0) <- 5;
  MC.State.write_back lay s ~shared ~locals ~pid:1;
  check int_t "written back shared" 9 (MC.State.shared_part lay s).(0);
  check int_t "written back locals" 5 (MC.State.locals_part lay s 1).(0)

let state_hash_equal () =
  let sys = sys_of (Core.Bakery_pp_model.program ()) in
  let a = MC.System.initial sys in
  let b = MC.System.initial sys in
  check bool_t "equal initials" true (MC.State.equal a b);
  check bool_t "equal hashes" true (MC.State.hash a = MC.State.hash b);
  b.(0) <- b.(0) + 1;
  check bool_t "different states differ" false (MC.State.equal a b);
  (* FNV must see words beyond the polymorphic-hash prefix: states
     differing only in the last word must hash differently (almost
     surely). *)
  let c = Array.copy a and d = Array.copy a in
  d.(Array.length d - 1) <- 123456;
  check bool_t "suffix change changes hash" true
    (MC.State.hash c <> MC.State.hash d)

(* ---------------------------------------------------------- exploration *)

let explore_counts () =
  (* no_lock with N processes has exactly 3^N states and mutex fails. *)
  let sys = sys_of ~nprocs:2 (Algorithms.No_lock.program ()) in
  let r = MC.Explore.run ~invariants:[] sys in
  (match r.outcome with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "no invariants: must pass");
  check int_t "3^2 states" 9 r.stats.distinct;
  let sys3 = sys_of ~nprocs:3 (Algorithms.No_lock.program ()) in
  let r3 = MC.Explore.run ~invariants:[] sys3 in
  check int_t "3^3 states" 27 r3.stats.distinct

let explore_violation_shortest () =
  let sys = sys_of ~nprocs:2 (Algorithms.No_lock.program ()) in
  let r = MC.Explore.run ~invariants:[ MC.Invariant.mutex ] sys in
  match r.outcome with
  | MC.Explore.Violation { invariant; trace } ->
      check Alcotest.string "invariant name" "mutual-exclusion" invariant;
      (* Shortest counterexample: init, p fires ncs, q fires ncs. *)
      check int_t "BFS counterexample is shortest" 3 (MC.Trace.length trace)
  | _ -> Alcotest.fail "expected mutex violation"

let explore_deadlock () =
  (* One process, one step whose only action has guard False: after the
     first (blocked) state is reached, nothing is enabled. *)
  let b = Mxlang.Builder.create ~title:"stuck" in
  let l = Mxlang.Builder.fresh_label b "l" in
  Mxlang.Builder.define b l ~kind:Mxlang.Ast.Critical
    [ Mxlang.Builder.action ~guard:Mxlang.Ast.False l ];
  let prog = Mxlang.Builder.build b in
  let sys = sys_of ~nprocs:1 prog in
  let r = MC.Explore.run ~invariants:[] sys in
  match r.outcome with
  | MC.Explore.Deadlock { trace } ->
      check int_t "deadlock at initial state" 1 (MC.Trace.length trace)
  | _ -> Alcotest.fail "expected deadlock"

let explore_constraint_closes_space () =
  (* Unbounded bakery has an infinite space; the ticket cap closes it. *)
  let sys = sys_of ~nprocs:2 ~bound:2 (Algorithms.Bakery.program ()) in
  let r =
    MC.Explore.run
      ~invariants:[ MC.Invariant.mutex ]
      ~constraint_:(Core.Verify.ticket_cap_constraint ~cap:4)
      sys
  in
  (match r.outcome with
  | MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "bakery satisfies mutex under cap");
  check bool_t "space is finite and modest" true (r.stats.distinct < 100_000)

let explore_capacity () =
  let sys = sys_of ~nprocs:2 ~bound:2 (Algorithms.Bakery.program ()) in
  let r = MC.Explore.run ~invariants:[] ~max_states:100 sys in
  match r.outcome with
  | MC.Explore.Capacity -> ()
  | _ -> Alcotest.fail "expected capacity exhaustion"

let trace_states_connected () =
  (* Every state in a counterexample trace must follow from its
     predecessor by exactly one move. *)
  let sys = sys_of ~nprocs:2 ~bound:2 (Algorithms.Bakery.program ()) in
  let r = MC.Explore.run ~invariants:[ MC.Invariant.no_overflow ] sys in
  match r.outcome with
  | MC.Explore.Violation { trace; _ } ->
      let rec walk = function
        | a :: (b : MC.Trace.entry) :: rest ->
            let succs = MC.System.successors sys a.MC.Trace.state in
            check bool_t "consecutive trace states are connected" true
              (List.exists
                 (fun (m : MC.System.move) -> MC.State.equal m.dest b.state)
                 succs);
            walk (b :: rest)
        | _ -> ()
      in
      walk trace
  | _ -> Alcotest.fail "expected overflow violation"

(* ----------------------------------------------------------- invariants *)

let invariant_combinators () =
  let sys = sys_of (Core.Bakery_pp_model.program ()) in
  let s = MC.System.initial sys in
  check bool_t "mutex holds initially" true
    (MC.Invariant.check MC.Invariant.mutex sys s = None);
  check bool_t "no_overflow holds initially" true
    (MC.Invariant.check MC.Invariant.no_overflow sys s = None);
  let all = MC.Invariant.all [ MC.Invariant.mutex; MC.Invariant.no_overflow ] in
  check bool_t "conjunction holds" true (MC.Invariant.check all sys s = None);
  let broken = MC.Invariant.custom "always-false" (fun _ _ -> false) in
  check bool_t "custom violation reported" true
    (MC.Invariant.check broken sys s = Some "always-false")

let invariant_bounded_by () =
  let sys = sys_of (Core.Bakery_pp_model.program ()) in
  let prog = MC.System.program sys in
  let number = Mxlang.Ast.var_by_name prog "number" in
  let s = MC.System.initial sys in
  let inv0 = MC.Invariant.bounded_by ~var:number ~limit:0 in
  check bool_t "zeros are within limit 0" true
    (MC.Invariant.check inv0 sys s = None);
  let lay = MC.System.layout sys in
  ignore lay;
  s.(0) <- 1;
  (* first shared cell belongs to var 0 (choosing); bump number instead *)
  s.(2) <- 5;
  let invn = MC.Invariant.bounded_by ~var:number ~limit:4 in
  check bool_t "limit 4 violated by 5" true
    (MC.Invariant.check invn sys s <> None)

(* ------------------------------------------------------------ refinement *)

let refinement_self () =
  (* Any system refines itself. *)
  let impl = sys_of ~nprocs:2 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let spec = sys_of ~nprocs:2 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let r = MC.Refine.check ~impl ~spec () in
  check bool_t "self refinement" true r.included

let refinement_negative () =
  (* no_lock does NOT refine peterson2: two-in-CS is observable. *)
  let impl = sys_of ~nprocs:2 (Algorithms.No_lock.program ()) in
  let spec = sys_of ~nprocs:2 (Algorithms.Peterson2.program ()) in
  let r = MC.Refine.check ~impl ~spec () in
  check bool_t "not included" false r.included;
  match r.failure with
  | Some f -> check bool_t "trace nonempty" true (List.length f.impl_trace > 0)
  | None -> Alcotest.fail "failure detail expected"

let refinement_bakery_pp () =
  let r = Core.Verify.refines_bakery ~nprocs:2 ~bound:2 () in
  check bool_t "bakery_pp refines bakery" true r.included;
  check bool_t "search complete" true r.complete

(* ---------------------------------------------------------------- lasso *)

let lasso_found_at_gate () =
  let r = Core.Verify.starvation_lasso ~nprocs:3 ~bound:2 () in
  match r.witness with
  | Some w ->
      check bool_t "cycle nonempty" true (List.length w.cycle > 0);
      check bool_t "others enter CS" true (w.cs_entries_in_cycle >= 1)
  | None -> Alcotest.fail "gate lasso expected at N=3 M=2"

let lasso_fair_variant () =
  let r =
    Core.Verify.starvation_lasso ~require_victim_disabled:true ~nprocs:3
      ~bound:2 ()
  in
  match r.witness with
  | Some w ->
      check bool_t "victim disabled somewhere on the cycle" false
        w.victim_continuously_enabled
  | None -> Alcotest.fail "fair gate lasso expected at N=3 M=2"

let lasso_none_in_waiting_room () =
  let sys = sys_of ~nprocs:3 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let r =
    MC.Lasso.find ~victim:0
      ~stuck_at:(MC.Lasso.stuck_at_kind Mxlang.Ast.Waiting)
      sys
  in
  check bool_t "FCFS waiting room admits no lasso" true (r.witness = None)

let lasso_cycle_is_closed () =
  (* The cycle's moves must all be valid transitions and return to the
     cycle's starting state. *)
  let sys = sys_of ~nprocs:3 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let r =
    MC.Lasso.find ~victim:0
      ~stuck_at:(MC.Lasso.stuck_at_label Core.Bakery_pp_model.gate_label)
      sys
  in
  match r.witness with
  | None -> Alcotest.fail "expected lasso"
  | Some w ->
      let start =
        match List.rev w.prefix with
        | last :: _ -> last.MC.Trace.state
        | [] -> Alcotest.fail "prefix empty"
      in
      let final =
        match List.rev w.cycle with
        | last :: _ -> last.MC.Trace.state
        | [] -> Alcotest.fail "cycle empty"
      in
      check bool_t "cycle returns to its entry state" true
        (MC.State.equal start final)

(* ------------------------------------------------------------- parallel *)

let outcome_equal a b =
  match (a, b) with
  | MC.Explore.Pass, MC.Explore.Pass -> true
  | ( MC.Explore.Violation { invariant = i1; trace = t1 },
      MC.Explore.Violation { invariant = i2; trace = t2 } ) ->
      (* Same invariant and same (shortest) counterexample length; the
         exact interleaving may differ between engines. *)
      i1 = i2 && List.length t1 = List.length t2
  | MC.Explore.Deadlock _, MC.Explore.Deadlock _ -> true
  | MC.Explore.Capacity, MC.Explore.Capacity -> true
  | _ -> false

let par_agrees_with_sequential () =
  let cases =
    [
      (Core.Bakery_pp_model.program (), 2, 2, None);
      (Core.Bakery_pp_model.program (), 3, 2, None);
      (Algorithms.Bakery.program (), 2, 2, None);
      (Algorithms.No_lock.program (), 2, 4, None);
      ( Algorithms.Bakery.program (),
        2,
        2,
        Some (Core.Verify.ticket_cap_constraint ~cap:4) );
    ]
  in
  List.iter
    (fun (prog, n, m, constraint_) ->
      let sys = sys_of ~nprocs:n ~bound:m prog in
      let seq = MC.Explore.run ?constraint_ sys in
      List.iter
        (fun domains ->
          let par = MC.Par_explore.run ?constraint_ ~domains sys in
          check bool_t
            (Printf.sprintf "%s N=%d M=%d (%d domains): same outcome"
               prog.Mxlang.Ast.title n m domains)
            true
            (outcome_equal seq.outcome par.outcome);
          (* Exact state counts are guaranteed on a full exploration;
             on a violation the engines stop mid-wave at different
             points (the sharded engine keeps inserting until the stop
             flag propagates), so only the outcome is pinned. *)
          if seq.outcome = MC.Explore.Pass then
            check int_t
              (Printf.sprintf "%s N=%d M=%d (%d domains): same state count"
                 prog.Mxlang.Ast.title n m domains)
              seq.stats.distinct par.stats.distinct)
        [ 1; 3 ])
    cases

(* ---------------------------------------------- sharding / fingerprints *)

let shard_table_basics () =
  let sys = sys_of (Core.Bakery_pp_model.program ()) in
  let words = (MC.System.layout sys).MC.State.words in
  (* 3 shards: non-power-of-two, so the mod/div routing is exercised *)
  let tbl =
    MC.Shard_table.create ~mode:MC.Shard_table.Exact ~nshards:3 ~words ()
  in
  let s0 = MC.System.initial sys in
  let fp = MC.Shard_table.fingerprint tbl s0 in
  let sh = MC.Shard_table.owner tbl fp in
  let local = MC.Shard_table.insert tbl ~shard:sh ~fp s0 in
  check int_t "first insert gets local id 0" 0 local;
  check int_t "duplicate insert returns -1" (-1)
    (MC.Shard_table.insert tbl ~shard:sh ~fp s0);
  let gid = MC.Shard_table.gid tbl ~shard:sh ~local in
  check int_t "gid round-trips shard" sh (MC.Shard_table.shard_of_gid tbl gid);
  check int_t "gid round-trips local" local (MC.Shard_table.local_of_gid tbl gid);
  check bool_t "stored state reads back" true
    (MC.State.equal s0 (MC.Shard_table.get tbl ~shard:sh local));
  check int_t "total counts the one state" 1 (MC.Shard_table.total tbl);
  (* bulk insert far past the initial table size to exercise growth *)
  let n = 5_000 in
  let states = Array.init n (fun i -> Array.make words (i + 7)) in
  Array.iter
    (fun s ->
      let fp = MC.Shard_table.fingerprint tbl s in
      let sh = MC.Shard_table.owner tbl fp in
      check bool_t "bulk insert is new" true
        (MC.Shard_table.insert tbl ~shard:sh ~fp s >= 0))
    states;
  check int_t "total after bulk" (n + 1) (MC.Shard_table.total tbl);
  Array.iter
    (fun s ->
      let fp = MC.Shard_table.fingerprint tbl s in
      let sh = MC.Shard_table.owner tbl fp in
      check int_t "bulk reinsert dedups" (-1)
        (MC.Shard_table.insert tbl ~shard:sh ~fp s))
    states;
  let mn, mx = MC.Shard_table.occupancy tbl in
  check bool_t "occupancy sums to total" true
    (mn > 0 && mx >= mn && MC.Shard_table.total tbl = n + 1);
  check int_t "no collisions under the real fingerprint" 0
    (MC.Shard_table.collisions tbl)

(* A pathological hash maps every state to one fingerprint.  Exact mode
   must shrug it off (full states break the ties) while *counting* the
   collisions; fingerprint-only mode must degrade in the predictable
   way: all states conflate into one, and bugs go unseen. *)
let collision_injection () =
  let bad (_ : MC.State.packed) = 42 in
  let sys = sys_of ~nprocs:2 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let seq = MC.Explore.run sys in
  let m = Telemetry.Metrics.create () in
  let exact = MC.Par_explore.run ~domains:1 ~hash:bad ~metrics:m sys in
  check bool_t "exact: outcome unchanged under total collision" true
    (seq.outcome = MC.Explore.Pass && exact.outcome = MC.Explore.Pass);
  check int_t "exact: same distinct count" seq.stats.distinct
    exact.stats.distinct;
  check bool_t "exact: collisions are detected and counted" true
    (Telemetry.Metrics.counter_value
       (Telemetry.Metrics.counter m "par_explore.fp_collisions")
    > 0);
  let fp_only =
    MC.Par_explore.run ~domains:1 ~hash:bad ~fingerprint_only:true sys
  in
  check int_t "fp-only: every state conflated into one" 1
    fp_only.stats.distinct;
  (* ...and a real mutual-exclusion violation is silently missed *)
  let bug = sys_of ~nprocs:2 ~bound:4 (Algorithms.No_lock.program ()) in
  (match (MC.Explore.run bug).outcome with
  | MC.Explore.Violation _ -> ()
  | _ -> Alcotest.fail "no_lock must violate mutual exclusion");
  match
    (MC.Par_explore.run ~domains:1 ~hash:bad ~fingerprint_only:true bug).outcome
  with
  | MC.Explore.Pass -> ()
  | o ->
      Alcotest.failf "fp-only with a colliding hash must miss the bug, got %s"
        (MC.Explore.outcome_tag o)

(* With the real fingerprint, fp-only mode agrees with the sequential
   engine — including counterexamples, which it reconstructs by
   replaying recorded moves rather than reading stored states. *)
let sharded_fp_only_agrees () =
  let cases =
    [
      (Core.Bakery_pp_model.program (), 2, 2);
      (Algorithms.No_lock.program (), 2, 4);
      (Algorithms.Bakery.program (), 2, 2);
    ]
  in
  List.iter
    (fun (prog, n, m) ->
      let sys = sys_of ~nprocs:n ~bound:m prog in
      let seq = MC.Explore.run sys in
      List.iter
        (fun domains ->
          let par =
            MC.Par_explore.run ~domains ~fingerprint_only:true sys
          in
          check bool_t
            (Printf.sprintf "%s N=%d M=%d (%d domains, fp-only): same outcome"
               prog.Mxlang.Ast.title n m domains)
            true
            (outcome_equal seq.outcome par.outcome);
          if seq.outcome = MC.Explore.Pass then
            check int_t
              (Printf.sprintf
                 "%s N=%d M=%d (%d domains, fp-only): same state count"
                 prog.Mxlang.Ast.title n m domains)
              seq.stats.distinct par.stats.distinct)
        [ 1; 3 ])
    cases

let par_deadlock () =
  let b = Mxlang.Builder.create ~title:"stuck_par" in
  let l = Mxlang.Builder.fresh_label b "l" in
  Mxlang.Builder.define b l ~kind:Mxlang.Ast.Plain
    [ Mxlang.Builder.action ~guard:Mxlang.Ast.False l ];
  let prog = Mxlang.Builder.build b in
  let sys = sys_of ~nprocs:1 prog in
  match (MC.Par_explore.run ~invariants:[] ~domains:2 sys).outcome with
  | MC.Explore.Deadlock _ -> ()
  | _ -> Alcotest.fail "parallel engine must detect the deadlock"

(* --------------------------------------------------------- weak registers *)

(* Test-and-set in one atomic action: mutex-safe over atomic registers,
   impossible over weak ones — the guard's read of [lock] can overlap
   the other process's in-flight write and return a stale 0, letting
   both processes through.  The classic atomic/non-atomic separation
   the regsem layer must reproduce. *)
let tas_program () =
  let b = Mxlang.Builder.create ~title:"tas_toy" in
  let lock = Mxlang.Builder.shared b "lock" ~size:1 ~bounded:true () in
  let try_ = Mxlang.Builder.fresh_label b "try" in
  let cs = Mxlang.Builder.fresh_label b "cs" in
  let rd0 = Mxlang.Ast.Rd (lock, Mxlang.Ast.Int 0) in
  Mxlang.Builder.define b try_ ~kind:Mxlang.Ast.Entry
    [
      Mxlang.Builder.action
        ~guard:(Mxlang.Ast.Cmp (Mxlang.Ast.Ceq, rd0, Mxlang.Ast.Int 0))
        ~effects:[ (Mxlang.Ast.Sh (lock, Mxlang.Ast.Int 0), Mxlang.Ast.Int 1) ]
        cs;
    ];
  Mxlang.Builder.define b cs ~kind:Mxlang.Ast.Critical
    [
      Mxlang.Builder.action
        ~effects:[ (Mxlang.Ast.Sh (lock, Mxlang.Ast.Int 0), Mxlang.Ast.Int 0) ]
        try_;
    ];
  Mxlang.Builder.build b

let weak_model_separates_tas () =
  let prog = tas_program () in
  let atomic =
    MC.System.make ~register_model:Regsem.Model.Atomic prog ~nprocs:2 ~bound:2
  in
  (match (MC.Explore.run ~invariants:[ MC.Invariant.mutex ] atomic).outcome with
  | MC.Explore.Pass -> ()
  | o ->
      Alcotest.failf "TAS must be mutex-safe atomically, got %s"
        (MC.Explore.outcome_tag o));
  List.iter
    (fun model ->
      let sys = MC.System.make ~register_model:model prog ~nprocs:2 ~bound:2 in
      match (MC.Explore.run ~invariants:[ MC.Invariant.mutex ] sys).outcome with
      | MC.Explore.Violation { invariant; trace } ->
          check Alcotest.string "mutex broken" "mutual-exclusion" invariant;
          (* shortest interleaving: both write-starts (each reading the
             stale 0), then both commits — BFS must find exactly it *)
          check int_t
            (Regsem.Model.to_string model ^ " counterexample is shortest")
            5 (MC.Trace.length trace)
      | o ->
          Alcotest.failf "TAS must break under %s registers, got %s"
            (Regsem.Model.to_string model)
            (MC.Explore.outcome_tag o))
    [ Regsem.Model.Regular; Regsem.Model.Safe ]

let weak_counterexample_replays () =
  let prog = tas_program () in
  let run () =
    let sys =
      MC.System.make ~register_model:Regsem.Model.Safe prog ~nprocs:2 ~bound:2
    in
    (sys, MC.Explore.run ~invariants:[ MC.Invariant.mutex ] sys)
  in
  let sys, r1 = run () in
  let _, r2 = run () in
  match (r1.outcome, r2.outcome) with
  | ( MC.Explore.Violation { trace = t1; _ },
      MC.Explore.Violation { trace = t2; _ } ) ->
      (* bit-identical across runs... *)
      check int_t "same length" (MC.Trace.length t1) (MC.Trace.length t2);
      List.iter2
        (fun (a : MC.Trace.entry) (b : MC.Trace.entry) ->
          check int_t "same pid" a.pid b.pid;
          check bool_t "same state" true (MC.State.equal a.state b.state))
        t1 t2;
      (* ...and every step replays as a real move of the weak system *)
      let rec walk = function
        | (a : MC.Trace.entry) :: b :: rest ->
            check bool_t "connected under the weak semantics" true
              (List.exists
                 (fun (mv : MC.System.move) ->
                   MC.State.equal mv.dest b.MC.Trace.state)
                 (MC.System.successors sys a.state));
            walk (b :: rest)
        | _ -> ()
      in
      walk t1
  | _ -> Alcotest.fail "expected a Safe-register counterexample twice"

(* ------------------------------------------------------------- coverage *)

let coverage_counts () =
  let sys = sys_of ~nprocs:2 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let c = MC.Coverage.measure sys in
  check bool_t "total transitions positive" true (c.total_transitions > 0);
  let fired name =
    (List.find (fun (e : MC.Coverage.entry) -> e.step_name = name) c.entries)
      .fired
  in
  check bool_t "cs fired" true (fired "cs" > 0);
  check bool_t "reset fired at M=2" true (fired "reset" > 0);
  check (Alcotest.list Alcotest.string) "full coverage at N=2 M=2" []
    (MC.Coverage.uncovered c)

let coverage_uncovered_solo () =
  (* With one process the overflow machinery never fires: max is always
     0, so reset is dead — coverage should say so. *)
  let sys = sys_of ~nprocs:1 ~bound:3 (Core.Bakery_pp_model.program ()) in
  let c = MC.Coverage.measure sys in
  check bool_t "reset uncovered at N=1" true
    (List.mem "reset" (MC.Coverage.uncovered c))

(* ------------------------------------------------------------------ dot *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let dot_export () =
  let sys = sys_of ~nprocs:2 ~bound:2 (Algorithms.No_lock.program ()) in
  let dot = MC.Dot.of_system sys in
  check bool_t "digraph header" true (contains dot "digraph");
  check bool_t "nodes present" true (contains dot "s0 [");
  check bool_t "critical highlighted" true (contains dot "lightcoral");
  check bool_t "edges labeled" true (contains dot "p0:");
  (* 9 states for 2-process no_lock; no truncation marker *)
  check bool_t "no truncation at 9 states" false (contains dot "truncated")

let dot_truncation () =
  let sys = sys_of ~nprocs:2 ~bound:3 (Core.Bakery_pp_model.program ()) in
  let dot = MC.Dot.of_system ~max_states:20 sys in
  check bool_t "truncation marked" true (contains dot "truncated")

let dot_trace () =
  let sys = sys_of ~nprocs:2 (Algorithms.No_lock.program ()) in
  let r = MC.Explore.run ~invariants:[ MC.Invariant.mutex ] sys in
  match r.outcome with
  | MC.Explore.Violation { trace; _ } ->
      let dot = MC.Dot.of_trace sys trace in
      check bool_t "trace path rendered" true (contains dot "t0 -> t1")
  | _ -> Alcotest.fail "expected violation"

(* --------------------------------------------------------------- reduce *)

module State_tbl = Hashtbl.Make (struct
  type t = MC.State.packed

  let equal = MC.State.equal
  let hash = MC.State.hash
end)

let orbit_count red (g : MC.Explore.graph) =
  let orbits = State_tbl.create 256 in
  MC.Vec.iter
    (fun s ->
      let c, _ = MC.Reduce.canon red s in
      if not (State_tbl.mem orbits c) then State_tbl.add orbits c ())
    g.states;
  State_tbl.length orbits

(* Every later trace entry must be an actual move of the named process
   with the named label — the claim de-canonicalization could break. *)
let trace_genuine sys (tr : MC.Trace.t) =
  match tr with
  | [] -> false
  | first :: rest ->
      let steps = (MC.System.program sys).Mxlang.Ast.steps in
      MC.State.equal first.MC.Trace.state (MC.System.initial sys)
      && fst
           (List.fold_left
              (fun (ok, cur) (e : MC.Trace.entry) ->
                if not ok then (false, cur)
                else
                  ( List.exists
                      (fun (m : MC.System.move) ->
                        steps.(m.MC.System.from_pc).Mxlang.Ast.step_name
                        = e.step_name
                        && MC.State.equal m.MC.System.dest e.state)
                      (MC.System.successors_of_pid sys cur e.pid),
                    e.state ))
              (true, first.MC.Trace.state)
              rest)

let reduce_certifier_classifications () =
  let expect_sym = [ "ticket"; "ticket_mod"; "tas"; "no_lock" ] in
  let expect_asym =
    [ "bakery"; "bakery_pp"; "bakery_mod_naive"; "peterson2"; "szymanski" ]
  in
  List.iter
    (fun name ->
      match MC.Reduce.certify (Harness.Registry.find_model name) with
      | Ok () -> ()
      | Error r -> Alcotest.failf "%s should certify symmetric, got: %s" name r)
    expect_sym;
  List.iter
    (fun name ->
      match MC.Reduce.certify (Harness.Registry.find_model name) with
      | Ok () -> Alcotest.failf "%s should fail the symmetry certificate" name
      | Error r ->
          check bool_t (name ^ " has a reason") true (String.length r > 0))
    expect_asym

let reduce_equivalence_ticket_mod () =
  let sys = sys_of ~nprocs:3 ~bound:3 (Harness.Registry.find_model "ticket_mod") in
  let full = MC.Explore.run sys in
  let sym = MC.Explore.run ~reduce:MC.Reduce.Sym sys in
  let por = MC.Explore.run ~reduce:MC.Reduce.Sym_por sys in
  (match (full.outcome, sym.outcome, por.outcome) with
  | MC.Explore.Pass, MC.Explore.Pass, MC.Explore.Pass -> ()
  | _ -> Alcotest.fail "ticket_mod n3 m3 must Pass under all three searches");
  check bool_t "sym quotient is smaller" true
    (sym.stats.distinct < full.stats.distinct);
  check bool_t "por cuts further" true (por.stats.distinct <= sym.stats.distinct);
  (* exactness: one stored representative per orbit of the full set *)
  let g, _ = MC.Explore.run_graph sys in
  let red = MC.Reduce.make MC.Reduce.Sym sys in
  check bool_t "certificate accepted" true (MC.Reduce.symmetry_active red);
  check int_t "orbit count equals sym distinct" (orbit_count red g)
    sym.stats.distinct

let reduce_fallback_identity () =
  (* bakery_pp's id tie-break fails the certificate: sym must silently
     run the identity search, bit-identical counts included. *)
  let sys = sys_of ~nprocs:2 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let red = MC.Reduce.make MC.Reduce.Sym sys in
  check bool_t "symmetry inactive" false (MC.Reduce.symmetry_active red);
  check bool_t "reason reported" true
    (MC.Reduce.asymmetry_reason red <> None);
  let full = MC.Explore.run sys in
  let sym = MC.Explore.run ~reduce:MC.Reduce.Sym sys in
  check int_t "distinct identical" full.stats.distinct sym.stats.distinct;
  check int_t "generated identical" full.stats.generated sym.stats.generated;
  check int_t "depth identical" full.stats.depth sym.stats.depth

let reduce_trace_genuine () =
  (* ticket n2 m2 overflows; the de-canonicalized counterexample must
     replay as a genuine run in original pids, under both modes. *)
  let sys = sys_of ~nprocs:2 ~bound:2 (Harness.Registry.find_model "ticket") in
  List.iter
    (fun mode ->
      let r = MC.Explore.run ~reduce:mode sys in
      match r.outcome with
      | MC.Explore.Violation { trace; _ } ->
          check bool_t
            (MC.Reduce.mode_to_string mode ^ " trace is genuine")
            true (trace_genuine sys trace)
      | _ -> Alcotest.fail "expected a no-overflow violation")
    [ MC.Reduce.Sym; MC.Reduce.Sym_por ]

let reduce_weak_registers () =
  (* Safe registers: canon composes with the two-phase layout (pending
     slots included); quotient verdict and orbit count must match. *)
  let prog = Harness.Registry.find_model "ticket_mod" in
  let sys =
    MC.System.make ~register_model:Regsem.Model.Safe prog ~nprocs:2 ~bound:2
  in
  let full = MC.Explore.run sys in
  let sym = MC.Explore.run ~reduce:MC.Reduce.Sym sys in
  check bool_t "verdicts agree under safe registers" true
    (MC.Explore.outcome_tag full.outcome = MC.Explore.outcome_tag sym.outcome);
  match full.outcome with
  | MC.Explore.Pass ->
      let g, _ = MC.Explore.run_graph sys in
      let red = MC.Reduce.make MC.Reduce.Sym sys in
      check bool_t "certificate accepted under weak model" true
        (MC.Reduce.symmetry_active red);
      check int_t "weak orbit count equals sym distinct" (orbit_count red g)
        sym.stats.distinct
  | _ -> ()

(* Group-action laws, property-tested over the certified symmetric
   fragment the fuzzer draws from.  n = 3 keeps all 6 permutations
   checkable explicitly. *)
let perms3 =
  [
    [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |];
    [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |];
  ]

let prop_reduce_group_action =
  QCheck.Test.make ~name:"canon is an orbit normal form (symmetric programs)"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Prng.Rng.create seed in
      let prog =
        Fuzz.Gen.program_symmetric rng
          { Fuzz.Gen.g_nprocs = 3; g_bound = 2; g_max_steps = 4 }
      in
      (match MC.Reduce.certify prog with
      | Ok () -> ()
      | Error r ->
          QCheck.Test.fail_reportf "program_symmetric not certified: %s" r);
      let sys = MC.System.make prog ~nprocs:3 ~bound:2 in
      let red = MC.Reduce.make MC.Reduce.Sym sys in
      if not (MC.Reduce.symmetry_active red) then
        QCheck.Test.fail_report "reduction inactive on a certified program";
      let g, _ = MC.Explore.run_graph ~max_states:2_000 sys in
      let mutex = MC.Invariant.mutex and no_ovf = MC.Invariant.no_overflow in
      let n = min 60 (MC.Vec.length g.states) in
      for i = 0 to n - 1 do
        let s = MC.Vec.get g.states i in
        let c, perm = MC.Reduce.canon red s in
        (* idempotence *)
        let c2, _ = MC.Reduce.canon red c in
        if not (MC.State.equal c2 c) then
          QCheck.Test.fail_report "canon not idempotent";
        (* the stored permutation de-canonicalizes: applying its inverse
           to the representative recovers the original state *)
        let back = MC.Reduce.permute red ~perm:(MC.Reduce.invert perm) c in
        if not (MC.State.equal back s) then
          QCheck.Test.fail_report "stored permutation does not round-trip";
        (* invariant truth is a property of the orbit *)
        if
          mutex.holds sys s <> mutex.holds sys c
          || no_ovf.holds sys s <> no_ovf.holds sys c
        then QCheck.Test.fail_report "canon changed an invariant's truth";
        (* orbit invariance: every permuted copy canonicalizes equally *)
        List.iter
          (fun p ->
            let cp, _ = MC.Reduce.canon red (MC.Reduce.permute red ~perm:p s) in
            if not (MC.State.equal cp c) then
              QCheck.Test.fail_report "canon not constant on an orbit")
          perms3
      done;
      true)

(* --------------------------------------------------------------- report *)

let report_strings () =
  let sys = sys_of ~nprocs:2 ~bound:2 (Core.Bakery_pp_model.program ()) in
  let r = MC.Explore.run sys in
  let s = MC.Report.result_string sys r in
  check bool_t "mentions the model" true
    (let needle = "bakery_pp_coarse" in
     let n = String.length needle and h = String.length s in
     let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "modelcheck"
    [
      ("vec", [ Alcotest.test_case "growable vector" `Quick vec_basics ]);
      ( "state",
        [
          Alcotest.test_case "pack/unpack round trip" `Quick state_roundtrip;
          Alcotest.test_case "hash and equality" `Quick state_hash_equal;
        ] );
      ( "explore",
        [
          Alcotest.test_case "state counts on known graph" `Quick
            explore_counts;
          Alcotest.test_case "violation with shortest trace" `Quick
            explore_violation_shortest;
          Alcotest.test_case "deadlock detection" `Quick explore_deadlock;
          Alcotest.test_case "state constraint closes infinite space" `Quick
            explore_constraint_closes_space;
          Alcotest.test_case "max_states capacity" `Quick explore_capacity;
          Alcotest.test_case "trace states are connected" `Quick
            trace_states_connected;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "combinators" `Quick invariant_combinators;
          Alcotest.test_case "bounded_by" `Quick invariant_bounded_by;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "reflexive" `Quick refinement_self;
          Alcotest.test_case "negative case" `Quick refinement_negative;
          Alcotest.test_case "bakery_pp refines bakery" `Quick
            refinement_bakery_pp;
        ] );
      ( "lasso",
        [
          Alcotest.test_case "found at the L1 gate" `Quick lasso_found_at_gate;
          Alcotest.test_case "fairness-consistent variant" `Quick
            lasso_fair_variant;
          Alcotest.test_case "none in the waiting room" `Quick
            lasso_none_in_waiting_room;
          Alcotest.test_case "cycle closes" `Quick lasso_cycle_is_closed;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "agrees with sequential engine" `Slow
            par_agrees_with_sequential;
          Alcotest.test_case "detects deadlock" `Quick par_deadlock;
          Alcotest.test_case "shard table basics" `Quick shard_table_basics;
          Alcotest.test_case "collision injection" `Quick collision_injection;
          Alcotest.test_case "fp-only agrees via replayed traces" `Quick
            sharded_fp_only_agrees;
        ] );
      ( "regsem",
        [
          Alcotest.test_case "TAS separates atomic from weak models" `Quick
            weak_model_separates_tas;
          Alcotest.test_case "weak counterexample replays deterministically"
            `Quick weak_counterexample_replays;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "action counts" `Quick coverage_counts;
          Alcotest.test_case "dead branch at N=1" `Quick
            coverage_uncovered_solo;
        ] );
      ( "dot",
        [
          Alcotest.test_case "system export" `Quick dot_export;
          Alcotest.test_case "truncation marker" `Quick dot_truncation;
          Alcotest.test_case "trace export" `Quick dot_trace;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "certifier classifications" `Quick
            reduce_certifier_classifications;
          Alcotest.test_case "ticket_mod quotient equivalence + orbit count"
            `Quick reduce_equivalence_ticket_mod;
          Alcotest.test_case "bakery_pp sym falls back identically" `Quick
            reduce_fallback_identity;
          Alcotest.test_case "de-canonicalized traces are genuine" `Quick
            reduce_trace_genuine;
          Alcotest.test_case "weak registers compose with canon" `Quick
            reduce_weak_registers;
          QCheck_alcotest.to_alcotest prop_reduce_group_action;
        ] );
      ("report", [ Alcotest.test_case "render" `Quick report_strings ]);
    ]
