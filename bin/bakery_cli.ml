(* Command-line front end to the Bakery++ reproduction:

     bakery_cli list                          catalogue of models/locks/experiments
     bakery_cli show bakery_pp                pseudocode listing
     bakery_cli check bakery_pp -n 3 -m 3     model-check (TLC-style report)
     bakery_cli sim bakery -n 4 -m 255 ...    randomized simulation
     bakery_cli lasso -n 3 -m 2 --fair        starvation search (paper 6.3)
     bakery_cli refine -n 2 -m 3              trace-inclusion check (paper 6.2)
     bakery_cli tla bakery_pp                 TLA+ export
     bakery_cli bench e1 e4 --quick           regenerate experiment tables *)

open Cmdliner

let find_model name =
  match Harness.Registry.find_model name with
  | p -> p
  | exception Not_found ->
      Printf.eprintf "unknown model %S; try: %s\n" name
        (String.concat ", " Harness.Registry.model_names);
      exit 2

(* ------------------------------------------------------- shared args *)

let model_arg =
  let doc = "Algorithm model name (see `bakery_cli list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let nprocs_arg =
  let doc = "Number of processes (the paper's N)." in
  Arg.(value & opt int 2 & info [ "n"; "nprocs" ] ~docv:"N" ~doc)

let bound_arg =
  let doc = "Register capacity (the paper's M)." in
  Arg.(value & opt int 3 & info [ "m"; "bound" ] ~docv:"M" ~doc)

(* Every --register-model flag is a raw string fed through the harness
   enum parser in the term, so bad spellings exit 2 with the same
   message shape as the other Argscan-backed flags (--rate etc.). *)
let parse_register_model raw =
  match
    Harness.Argscan.parse_enum ~docv:"MODEL" ~flag:"--register-model"
      ~values:
        [
          ("atomic", Regsem.Model.Atomic);
          ("regular", Regsem.Model.Regular);
          ("safe", Regsem.Model.Safe);
        ]
      raw
  with
  | Ok m -> m
  | Error msg ->
      prerr_endline msg;
      exit 2

let register_model_flag ~default ~doc =
  Term.(
    const parse_register_model
    $ Arg.(
        value
        & opt string (Regsem.Model.to_string default)
        & info [ "register-model" ] ~docv:"MODEL" ~doc))

let register_model_arg =
  register_model_flag ~default:Regsem.Model.Atomic
    ~doc:
      "Register semantics: $(b,atomic) (reads and writes are indivisible — \
       today's default), $(b,regular) (a read overlapping a write returns \
       the old or the new value), or $(b,safe) (it may return any value in \
       the register's range).  Weak models two-phase the writes and branch \
       every overlapped read over its candidate values."

(* --reduce takes the same raw-string-through-Argscan route, so a bad
   spelling exits 2 with the shared usage-error shape. *)
let parse_reduce raw =
  match
    Harness.Argscan.parse_enum ~docv:"MODE" ~flag:"--reduce"
      ~values:Modelcheck.Reduce.mode_values raw
  with
  | Ok m -> m
  | Error msg ->
      prerr_endline msg;
      exit 2

let reduce_doc =
  "State-space reduction: $(b,none) (default), $(b,sym) (canonicalize \
   states under process-id permutation when the model passes the static \
   pid-symmetry certificate — asymmetric models, e.g. every bakery \
   variant's id tie-break, run unreduced with the reason reported), or \
   $(b,sym+por) (additionally expand only an ample process where one \
   exists).  Verdicts match the unreduced search; state counts are of \
   the quotient; counterexamples are reported in original process ids."

let reduce_arg =
  Term.(
    const parse_reduce
    $ Arg.(value & opt string "none" & info [ "reduce" ] ~docv:"MODE" ~doc:reduce_doc))

(* -------------------------------------------------- telemetry options *)

let progress_arg =
  let doc =
    "Print TLC-style progress lines (states generated/distinct, kstates/s, \
     queue depth) to stderr every ~2 seconds, plus a final summary line."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let metrics_out_arg =
  let doc =
    "When the run finishes, append a metrics snapshot to $(docv) as JSON \
     lines (one self-contained object per instrument, stamped with run \
     metadata)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc = "Append progress and span events to $(docv) as JSON lines." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let flight_out_arg =
  let doc =
    "Record a flight record to $(docv): schema-versioned time-series \
     snapshots (throughput, frontier, shard balance, latency \
     percentiles, GC gauges) as JSON lines, one per sampler interval, \
     flushed per line so a killed run still leaves a readable record.  \
     Feed it to $(b,bakery_cli report)."
  in
  Arg.(value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE" ~doc)

let flight_interval_arg =
  let doc = "Flight-recorder sampling interval, seconds." in
  Arg.(value & opt float 0.25 & info [ "flight-interval" ] ~docv:"SECONDS" ~doc)

type telemetry = {
  tl_progress : Telemetry.Progress.t option;
  tl_metrics : Telemetry.Metrics.t option;
  tl_trace : Telemetry.Sink.t option;
  tl_flight : Obs.Recorder.t option;
  tl_finish : unit -> unit;
      (* write the metrics snapshot and close every sink; idempotent *)
}

let write_metrics_snapshot path m =
  (* Refresh the GC gauges so every snapshot carries allocation health
     alongside the run's own instruments. *)
  Telemetry.Metrics.observe_gc m;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let t = Unix.time () in
  let meta = Telemetry.Runmeta.to_fields (Telemetry.Runmeta.capture ()) in
  List.iter
    (fun (name, v) ->
      let obj =
        Telemetry.Json.Obj
          (("metric", Telemetry.Json.Str name)
          :: ("value", Telemetry.Metrics.value_to_json v)
          :: ("t", Telemetry.Json.Num t)
          :: meta)
      in
      output_string oc (Telemetry.Json.to_string obj);
      output_char oc '\n')
    (Telemetry.Metrics.snapshot m);
  close_out oc

(* Progress lines go to stderr when [--progress] is set and are mirrored
   into the trace file when [--trace-out] is set; either flag alone also
   works.  The metrics registry exists when [--metrics-out] or
   [--flight-out] asks for it, so a bare run keeps every hot path on its
   no-op branch.

   [flight_pull] (default true) starts the background sampler domain
   polling the registry; `bench locks` passes [false] because the lock
   observatory pushes richer samples itself.  [tl_finish] is idempotent
   and registered with [at_exit], so the violation and early-[exit]
   paths flush the metrics snapshot and close every sink too. *)
let telemetry_setup ~name ?flight_out ?(flight_interval = 0.25)
    ?(flight_pull = true) progress metrics_out trace_out =
  let trace = Option.map Telemetry.Sink.jsonl trace_out in
  (* Every JSONL trace file opens with a self-describing header line
     (schema version + run metadata) so later builds can refuse files
     they cannot read instead of misparsing them. *)
  Option.iter
    (fun (s : Telemetry.Sink.t) ->
      s.emit
        (Telemetry.Sink.event ~kind:"header" ~name:"trace"
           (Telemetry.Runmeta.header_fields ())))
    trace;
  let progress_sink =
    match (progress, trace) with
    | false, None -> None
    | false, Some t -> Some t
    | true, None -> Some (Telemetry.Sink.stderr_human ())
    | true, Some t ->
        Some (Telemetry.Sink.tee [ Telemetry.Sink.stderr_human (); t ])
  in
  let tl_progress =
    Option.map (fun s -> Telemetry.Progress.create ~name s ()) progress_sink
  in
  let tl_metrics =
    match (metrics_out, flight_out) with
    | None, None -> None
    | _ -> Some (Telemetry.Metrics.create ())
  in
  let tl_flight =
    Option.map (fun path -> Obs.Recorder.create ~path ()) flight_out
  in
  (match (tl_flight, tl_metrics) with
  | Some recorder, Some m when flight_pull ->
      Obs.Recorder.start_sampler ~interval_s:flight_interval recorder
        ~poll:(fun () ->
          Telemetry.Metrics.observe_gc m;
          Obs.Recorder.of_metrics m)
  | _ -> ());
  let finished = ref false in
  let tl_finish () =
    if not !finished then begin
      finished := true;
      Option.iter Obs.Recorder.stop tl_flight;
      (match (metrics_out, tl_metrics) with
      | Some path, Some m -> write_metrics_snapshot path m
      | _ -> ());
      Option.iter (fun (s : Telemetry.Sink.t) -> s.close ()) trace
    end
  in
  at_exit tl_finish;
  { tl_progress; tl_metrics; tl_trace = trace; tl_flight; tl_finish }

(* ----------------------------------------------- counterexample export *)

let chrome_out_arg =
  let doc =
    "Export a causal trace of the run as Chrome trace-event JSON to \
     $(docv) — load it in ui.perfetto.dev or chrome://tracing (one track \
     per process)."
  in
  Arg.(value & opt (some string) None & info [ "chrome-out" ] ~docv:"FILE" ~doc)

(* Re-walk a checker counterexample through the AST interpreter to
   recover per-step reads/writes, reduce the violated invariant to its
   failing conjunct, and package both as a causal trace. *)
let forensics_of_ctrex sys ~model ~invariants ctrex =
  match Modelcheck.Rewalk.of_trace sys ctrex with
  | Error e ->
      Printf.eprintf "cannot re-walk the counterexample: %s\n" e;
      exit 2
  | Ok w ->
      let final =
        List.fold_left
          (fun _ (s : Modelcheck.Rewalk.step) -> s.rw_post)
          w.Modelcheck.Rewalk.rw_init w.rw_steps
      in
      let violation =
        Modelcheck.Invariant.explain_failure
          (Modelcheck.Invariant.all invariants)
          sys final
      in
      (Trace.Of_walk.trace ~model ?violation w, violation)

let write_chrome path tr =
  Trace.Chrome.write ~path tr;
  Printf.printf "wrote %s (load in ui.perfetto.dev)\n" path

(* --------------------------------------------------------------- list *)

let list_cmd =
  let run () =
    print_endline "Models (for `check`, `sim`, `show`, `tla`):";
    List.iter (Printf.printf "  %s\n") Harness.Registry.model_names;
    print_endline "\nRuntime lock families (used by the bench driver):";
    List.iter
      (fun (f : Locks.Lock_intf.family) ->
        Printf.printf "  %-20s%s\n" f.family_name
          (if f.needs_bound then " (uses the register bound M)" else ""))
      Harness.Registry.lock_families;
    print_endline "\nExperiments (for `bench`):";
    List.iter
      (fun (e : Harness.Experiments.experiment) ->
        Printf.printf "  %-5s %s\n" e.id e.summary)
      Harness.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"Catalogue of models, locks and experiments")
    Term.(const run $ const ())

(* --------------------------------------------------------------- show *)

let show_cmd =
  let run model =
    let p = find_model model in
    print_string (Mxlang.Pretty.program p)
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a model as pseudocode")
    Term.(const run $ model_arg)

(* -------------------------------------------------------------- check *)

let check_cmd =
  let cap_arg =
    let doc =
      "State constraint: cap every cell of the model's $(i,number)-like \
       variables at this value (closes infinite spaces, e.g. the original \
       bakery).  0 disables."
    in
    Arg.(value & opt int 0 & info [ "cap" ] ~docv:"CAP" ~doc)
  in
  let max_states_arg =
    let doc = "Abort after storing this many distinct states." in
    Arg.(value & opt int 5_000_000 & info [ "max-states" ] ~docv:"K" ~doc)
  in
  let no_overflow_arg =
    let doc = "Also check the no-overflow invariant (on by default)." in
    Arg.(value & opt bool true & info [ "overflow" ] ~docv:"BOOL" ~doc)
  in
  let coverage_arg =
    let doc = "Also print TLC-style action coverage." in
    Arg.(value & flag & info [ "coverage" ] ~doc)
  in
  let parallel_arg =
    let doc = "Use the level-synchronized parallel BFS engine with this many domains." in
    Arg.(value & opt int 0 & info [ "parallel" ] ~docv:"D" ~doc)
  in
  let fp_only_arg =
    let doc =
      "With $(b,--parallel), keep only 63-bit state fingerprints in the \
       visited set (TLC-style): ~10x less memory, a ~2^-63 per-pair chance \
       of conflating two states."
    in
    Arg.(value & flag & info [ "fp-only" ] ~doc)
  in
  let dot_out_arg =
    let doc =
      "Export the counterexample as Graphviz DOT to $(docv), with the \
       violating edge and final state highlighted."
    in
    Arg.(value & opt (some string) None & info [ "dot-out" ] ~docv:"FILE" ~doc)
  in
  let run model nprocs bound register_model reduce cap max_states with_overflow
      coverage parallel fp_only chrome_out dot_out progress metrics_out
      trace_out flight_out flight_interval =
    let p = find_model model in
    let sys = Modelcheck.System.make ~register_model p ~nprocs ~bound in
    let invariants =
      Modelcheck.Invariant.mutex
      :: (if with_overflow then [ Modelcheck.Invariant.no_overflow ] else [])
    in
    (if reduce <> Modelcheck.Reduce.Off then
       let red = Modelcheck.Reduce.make reduce sys in
       Printf.printf "reduction: %s\n" (Modelcheck.Reduce.describe red));
    let constraint_ =
      if cap > 0 then Some (Core.Verify.ticket_cap_constraint ~cap) else None
    in
    let tl =
      telemetry_setup
        ~name:(if parallel > 0 then "par_explore" else "explore")
        ?flight_out ~flight_interval progress metrics_out trace_out
    in
    let r =
      if parallel > 0 then
        Modelcheck.Par_explore.run ?progress:tl.tl_progress
          ?metrics:tl.tl_metrics ~invariants ?constraint_ ~max_states
          ~domains:parallel ~fingerprint_only:fp_only ~reduce sys
      else
        Modelcheck.Explore.run ?progress:tl.tl_progress ?metrics:tl.tl_metrics
          ~invariants ?constraint_ ~max_states ~reduce sys
    in
    tl.tl_finish ();
    print_endline (Modelcheck.Report.result_string sys r);
    if coverage then begin
      let c = Modelcheck.Coverage.measure ?constraint_ ~max_states sys in
      Format.printf "Action coverage:@.%a@." Modelcheck.Coverage.pp c
    end;
    let export ctrex =
      if chrome_out <> None || dot_out <> None then begin
        let tr, violation =
          forensics_of_ctrex sys ~model ~invariants ctrex
        in
        Option.iter (fun path -> write_chrome path tr) chrome_out;
        Option.iter
          (fun path ->
            let violation =
              Option.map
                (fun (f : Modelcheck.Invariant.failure) -> f.f_name)
                violation
            in
            let oc = open_out path in
            output_string oc (Modelcheck.Dot.of_trace ?violation sys ctrex);
            close_out oc;
            Printf.printf "wrote %s (render with: dot -Tsvg %s -o ctrex.svg)\n"
              path path)
          dot_out
      end
    in
    (match r.outcome with
    | Modelcheck.Explore.Violation { trace = ctrex; _ }
    | Modelcheck.Explore.Deadlock { trace = ctrex } ->
        export ctrex
    | _ ->
        if chrome_out <> None || dot_out <> None then
          prerr_endline
            "no counterexample to export (the check did not fail)");
    match r.outcome with Modelcheck.Explore.Pass -> exit 0 | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check a model for mutual exclusion (and overflow-freedom)")
    Term.(
      const run $ model_arg $ nprocs_arg $ bound_arg $ register_model_arg
      $ reduce_arg $ cap_arg $ max_states_arg $ no_overflow_arg $ coverage_arg
      $ parallel_arg $ fp_only_arg $ chrome_out_arg $ dot_out_arg
      $ progress_arg $ metrics_out_arg $ trace_out_arg $ flight_out_arg
      $ flight_interval_arg)

(* ---------------------------------------------------------------- sim *)

let sim_cmd =
  let steps_arg =
    Arg.(
      value & opt int 500_000
      & info [ "steps" ] ~docv:"STEPS" ~doc:"Atomic steps to simulate.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let sched_arg =
    let doc =
      "Scheduler: $(b,rr) (round-robin), $(b,uniform), or \
       $(b,handicap) (process 0 runs every 50th decision)."
    in
    Arg.(value & opt string "uniform" & info [ "sched" ] ~docv:"S" ~doc)
  in
  let crash_arg =
    let doc = "Per-step crash probability (0 disables; paper 1.2 cond 4)." in
    Arg.(value & opt float 0.0 & info [ "crash" ] ~docv:"P" ~doc)
  in
  let flicker_arg =
    let doc =
      "Weak-register flicker probability: reads of cells being written \
       return perturbed values drawn from $(b,--register-model)'s \
       candidate set (0 disables)."
    in
    Arg.(value & opt float 0.0 & info [ "flicker" ] ~docv:"P" ~doc)
  in
  let flicker_model_arg =
    register_model_flag ~default:Regsem.Model.Safe
      ~doc:
        "Value domain of flickered reads: $(b,safe) (any value in the \
         variable's range — the default, matching the paper's read model), \
         $(b,regular) (the value the overlapping write is about to store), \
         or $(b,atomic) (no perturbation, making $(b,--flicker) inert)."
  in
  let wrap_arg =
    let doc = "Wrap too-large stores (real-register behaviour) instead of just counting them." in
    Arg.(value & flag & info [ "wrap" ] ~doc)
  in
  let run model nprocs bound steps seed sched crash flicker flicker_model wrap
      chrome_out progress metrics_out trace_out =
    let p = find_model model in
    let tl = telemetry_setup ~name:"sim" progress metrics_out trace_out in
    let strategy =
      match sched with
      | "rr" | "round-robin" -> Schedsim.Scheduler.Round_robin
      | "uniform" -> Schedsim.Scheduler.Uniform seed
      | "handicap" ->
          Schedsim.Scheduler.Handicap { victim = 0; period = 50; seed }
      | s ->
          Printf.eprintf "unknown scheduler %S\n" s;
          exit 2
    in
    let cfg =
      {
        (Schedsim.Runner.default_config ~nprocs ~bound) with
        strategy;
        max_steps = steps;
        seed;
        overflow_policy =
          (if wrap then Schedsim.Runner.Wrap else Schedsim.Runner.Detect);
        crash =
          (if crash > 0.0 then
             Some
               {
                 Schedsim.Runner.crash_prob = crash;
                 restart_delay = 100;
                 only_outside_cs = false;
               }
           else None);
        flicker =
          (if flicker > 0.0 then
             Some
               {
                 Schedsim.Runner.flicker_prob = flicker;
                 flicker_model;
                 flicker_slack = 0;
               }
           else None);
        progress = tl.tl_progress;
        metrics = tl.tl_metrics;
        trace = tl.tl_trace;
        (* The Chrome export needs the full event stream, register
           reads/writes included; without --chrome-out both stay at
           their defaults and the run is untouched. *)
        record_events =
          chrome_out <> None
          || (Schedsim.Runner.default_config ~nprocs ~bound).record_events;
        record_rw = chrome_out <> None;
      }
    in
    let r = Schedsim.Runner.run p cfg in
    tl.tl_finish ();
    Option.iter
      (fun path -> write_chrome path (Trace.Of_sim.trace p ~nprocs ~bound r))
      chrome_out;
    Printf.printf "model %s, N=%d, M=%d, %s, %d steps\n" p.Mxlang.Ast.title
      nprocs bound (Schedsim.Scheduler.describe strategy) r.steps;
    Printf.printf "CS entries: %d  per process: [%s]\n"
      (Schedsim.Runner.total_cs r)
      (String.concat "; " (Array.to_list (Array.map string_of_int r.cs_entries)));
    Printf.printf "mutex violations: %d\n" r.mutex_violations;
    Printf.printf "overflow events:  %d\n" r.overflow_events;
    Printf.printf "FCFS inversions:  %d\n" r.fcfs_inversions;
    Printf.printf "crashes: %d  flickers: %d\n" r.crashes r.flickers;
    Printf.printf "throughput: %.4f CS/step  fairness (Jain): %.3f\n"
      (Schedsim.Metrics.throughput r)
      (Schedsim.Metrics.jain_fairness r);
    if r.mutex_violations > 0 || r.overflow_events > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Run a randomized simulation with crashes and register anomalies")
    Term.(
      const run $ model_arg $ nprocs_arg $ bound_arg $ steps_arg $ seed_arg
      $ sched_arg $ crash_arg $ flicker_arg $ flicker_model_arg $ wrap_arg
      $ chrome_out_arg $ progress_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------ explain *)

let explain_cmd =
  let model_opt_arg =
    let doc =
      "Model-check $(docv) (with -n/-m) and explain the counterexample it \
       produces.  Mutually exclusive with --repro."
    in
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"MODEL" ~doc)
  in
  let repro_arg =
    let doc =
      "Explain a fuzzer $(b,.repro) file: schedule cases are re-executed \
       by the simulator with full event recording; program cases are \
       model-checked.  Mutually exclusive with --model."
    in
    Arg.(value & opt (some string) None & info [ "repro" ] ~docv:"FILE" ~doc)
  in
  let max_steps_arg =
    let doc =
      "Show at most $(docv) step blocks, keeping the most recent ones \
       (the violation neighbourhood); 0 shows every step."
    in
    Arg.(value & opt int 0 & info [ "max-steps" ] ~docv:"K" ~doc)
  in
  let max_states_arg =
    let doc = "Exploration budget for the --model path." in
    Arg.(value & opt int 5_000_000 & info [ "max-states" ] ~docv:"K" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Also write the causal trace as self-describing JSONL (schema + run \
       metadata header, then one event per line) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let dot_out_arg =
    let doc =
      "Also write the counterexample path as Graphviz DOT to $(docv) \
       (--model and program-case repros only)."
    in
    Arg.(value & opt (some string) None & info [ "dot-out" ] ~docv:"FILE" ~doc)
  in
  let run model repro nprocs bound register_model reduce max_states max_steps
      chrome_out trace_out dot_out =
    let finish tr =
      print_string (Trace.Explain.render ~max_steps tr);
      Option.iter (fun path -> write_chrome path tr) chrome_out;
      Option.iter
        (fun path ->
          Trace.Jsonl.write ~path tr;
          Printf.printf "wrote %s (schema %d causal trace)\n" path
            Telemetry.Runmeta.trace_schema_version)
        trace_out
    in
    let explain_check program ~model ~nprocs ~bound ~max_states =
      let sys =
        Modelcheck.System.make ~register_model program ~nprocs ~bound
      in
      let invariants =
        [ Modelcheck.Invariant.mutex; Modelcheck.Invariant.no_overflow ]
      in
      let r = Modelcheck.Explore.run ~invariants ~max_states ~reduce sys in
      match r.outcome with
      | Modelcheck.Explore.Violation { trace = ctrex; _ }
      | Modelcheck.Explore.Deadlock { trace = ctrex } ->
          let tr, violation = forensics_of_ctrex sys ~model ~invariants ctrex in
          finish tr;
          Option.iter
            (fun path ->
              let violation =
                Option.map
                  (fun (f : Modelcheck.Invariant.failure) -> f.f_name)
                  violation
              in
              let oc = open_out path in
              output_string oc (Modelcheck.Dot.of_trace ?violation sys ctrex);
              close_out oc;
              Printf.printf "wrote %s\n" path)
            dot_out
      | Modelcheck.Explore.Pass ->
          Printf.printf
            "nothing to explain: %s passes at N=%d, M=%d under %s registers \
             (%d distinct states)\n"
            model nprocs bound
            (Regsem.Model.to_string register_model)
            r.stats.distinct;
          exit 1
      | Modelcheck.Explore.Capacity ->
          Printf.eprintf
            "state budget exhausted before a verdict; raise --max-states\n";
          exit 1
    in
    match (model, repro) with
    | Some _, Some _ ->
        prerr_endline "--model and --repro are mutually exclusive";
        exit 2
    | None, None ->
        prerr_endline "one of --model or --repro is required";
        exit 2
    | Some m, None ->
        let p = find_model m in
        explain_check p ~model:m ~nprocs ~bound ~max_states
    | None, Some file -> (
        match Fuzz.Repro.load file with
        | Error e ->
            Printf.eprintf "cannot load %s: %s\n" file e;
            exit 2
        | Ok rp -> (
            match rp.Fuzz.Repro.case with
            | Fuzz.Oracle.Sched_case pl ->
                let p = find_model pl.Fuzz.Gen.pl_model in
                let cfg =
                  {
                    (Fuzz.Oracle.sim_config pl) with
                    Schedsim.Runner.record_events = true;
                    record_rw = true;
                  }
                in
                let r = Schedsim.Runner.run p cfg in
                if dot_out <> None then
                  prerr_endline
                    "--dot-out ignored: schedule repros have no checker trace";
                finish
                  (Trace.Of_sim.trace p ~nprocs:pl.pl_nprocs
                     ~bound:pl.pl_bound r)
            | Fuzz.Oracle.Prog_case { program; nprocs; bound; max_states } ->
                explain_check program ~model:program.Mxlang.Ast.title ~nprocs
                  ~bound ~max_states))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render a counterexample or .repro file as an annotated \
          step-by-step story with causal analysis")
    Term.(
      const run $ model_opt_arg $ repro_arg $ nprocs_arg $ bound_arg
      $ register_model_arg $ reduce_arg $ max_states_arg $ max_steps_arg
      $ chrome_out_arg $ trace_out_arg $ dot_out_arg)

(* -------------------------------------------------------------- lasso *)

let lasso_cmd =
  let fair_arg =
    let doc =
      "Require a fairness-consistent lasso (the victim must be disabled \
       somewhere on the cycle)."
    in
    Arg.(value & flag & info [ "fair" ] ~doc)
  in
  let victim_arg =
    Arg.(value & opt int 0 & info [ "victim" ] ~docv:"PID" ~doc:"Starving process.")
  in
  let run nprocs bound fair victim =
    let r =
      Core.Verify.starvation_lasso ~require_victim_disabled:fair ~victim
        ~nprocs ~bound ()
    in
    let sys = Core.Verify.system ~nprocs ~bound () in
    print_endline (Modelcheck.Report.lasso_string sys ~victim r);
    match r.witness with Some _ -> exit 0 | None -> exit 1
  in
  Cmd.v
    (Cmd.info "lasso"
       ~doc:"Search Bakery++ for the paper's 6.3 starvation scenario at L1")
    Term.(const run $ nprocs_arg $ bound_arg $ fair_arg $ victim_arg)

(* ------------------------------------------------------------- verify *)

let verify_cmd =
  let run nprocs bound =
    let b = Core.Verify.verify_all ~nprocs ~bound () in
    print_string b.report;
    let ok =
      b.invariants_hold && b.bakery_overflows && b.refinement_holds
      && b.waiting_room_lasso_free
      && (nprocs < 3 || b.gate_lasso_exists)
    in
    print_endline (if ok then "ALL CHECKS PASSED" else "SOME CHECKS FAILED");
    exit (if ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the paper's full 6 verification battery at one configuration")
    Term.(const run $ nprocs_arg $ bound_arg)

(* ------------------------------------------------------------- refine *)

let refine_cmd =
  let run nprocs bound =
    let impl = Core.Verify.system ~nprocs ~bound () in
    let spec =
      Modelcheck.System.make (Algorithms.Bakery.program ()) ~nprocs ~bound
    in
    let r = Core.Verify.refines_bakery ~nprocs ~bound () in
    print_endline (Modelcheck.Report.refinement_string ~impl ~spec r);
    if r.included then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Check that Bakery++ refines Bakery (paper 6.2) by trace inclusion")
    Term.(const run $ nprocs_arg $ bound_arg)

(* ---------------------------------------------------------------- tla *)

let tla_cmd =
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the module to FILE.")
  in
  let run model out =
    let p = find_model model in
    let text = Mxlang.Tla.export p in
    match out with
    | None -> print_string text
    | Some file ->
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (module %s)\n" file (Mxlang.Tla.module_name p)
  in
  Cmd.v
    (Cmd.info "tla" ~doc:"Export a model as a TLA+ module (checkable with TLC)")
    Term.(const run $ model_arg $ out_arg)

(* -------------------------------------------------------------- graph *)

let graph_cmd =
  let max_states_arg =
    Arg.(
      value & opt int 200
      & info [ "max-states" ] ~docv:"K" ~doc:"Cap on rendered states.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT to FILE.")
  in
  let run model nprocs bound max_states out =
    let p = find_model model in
    let sys = Modelcheck.System.make p ~nprocs ~bound in
    let dot = Modelcheck.Dot.of_system ~max_states sys in
    match out with
    | None -> print_string dot
    | Some file ->
        let oc = open_out file in
        output_string oc dot;
        close_out oc;
        Printf.printf "wrote %s (render with: dot -Tsvg %s -o graph.svg)\n" file
          file
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Export the reachable state graph as Graphviz DOT")
    Term.(const run $ model_arg $ nprocs_arg $ bound_arg $ max_states_arg $ out_arg)

(* --------------------------------------------------------------- fuzz *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Fuzzer PRNG seed.")
  in
  let count_arg =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"K" ~doc:"Cases to run per oracle.")
  in
  let oracle_arg =
    let doc =
      "Oracle to run: $(b,compile) (interpreter vs staged compiler), \
       $(b,parallel) (sequential vs parallel BFS), $(b,sharded) \
       (fingerprint-only sharded BFS), $(b,regsem) (weak-register engine \
       vs atomic baseline + safe-superset), $(b,replay) (simulator \
       replay vs checker walk + mutex), $(b,reduced) (symmetry/POR \
       quotient search vs full search).  Repeatable; default all six."
    in
    Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)
  in
  let fuzz_reduce_arg =
    let doc =
      "Restrict the $(b,reduced) oracle to one reduction leg ($(b,sym) or \
       $(b,sym+por); $(b,none) disables it).  Default: both legs per case. \
       Rejected with --replay — corpus verdicts are recorded against the \
       default legs."
    in
    Arg.(value & opt (some string) None & info [ "reduce" ] ~docv:"MODE" ~doc)
  in
  let fuzz_model_arg =
    let doc =
      "Registry model the replay oracle draws schedules for.  Repeatable; \
       default bakery_pp and peterson2 (models expected to be safe — point \
       this at bakery_mod_naive or bakery to hunt for violations)."
    in
    Arg.(value & opt_all string [] & info [ "model" ] ~docv:"MODEL" ~doc)
  in
  let max_steps_arg =
    let doc = "Schedule-length budget for the replay oracle." in
    Arg.(value & opt int 120 & info [ "max-steps" ] ~docv:"LEN" ~doc)
  in
  let max_states_arg =
    let doc = "Exploration budget per generated program (engine oracles)." in
    Arg.(value & opt int 20_000 & info [ "max-states" ] ~docv:"K" ~doc)
  in
  let out_arg =
    let doc = "Write shrunk $(b,.repro) files for every failure into $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute one $(b,.repro) file instead of fuzzing; exits 0 when the \
       recorded verdict reproduces, 1 when it changed or vanished."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let fuzz_register_model_arg =
    let doc =
      "Pin the flicker value domain of generated schedule plans to \
       $(b,regular) or $(b,safe) ($(b,atomic) turns flickering plans \
       inert); by default each flickering plan draws one of the two weak \
       models itself."
    in
    Term.(
      const (Option.map parse_register_model)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "register-model" ] ~docv:"MODEL" ~doc))
  in
  let run seed count oracles models nprocs bound register_model reduce
      max_steps max_states out replay progress metrics_out trace_out
      flight_out flight_interval =
    (* Narrow the Reduced oracle's legs for this process only when the
       flag is given; replay keeps the default so .repro verdicts are
       self-contained. *)
    (match (replay, reduce) with
    | None, Some raw ->
        Fuzz.Oracle.reduced_modes :=
          (match parse_reduce raw with
          | Modelcheck.Reduce.Off -> []
          | Modelcheck.Reduce.Sym -> [ Modelcheck.Reduce.Sym ]
          | Modelcheck.Reduce.Sym_por -> [ Modelcheck.Reduce.Sym_por ])
    | Some _, Some _ ->
        prerr_endline "--reduce is ignored with --replay";
        exit 2
    | _, None -> ());
    match replay with
    | Some file -> (
        match Fuzz.Repro.load file with
        | Error e ->
            Printf.eprintf "cannot load %s: %s\n" file e;
            exit 2
        | Ok r -> (
            Printf.printf "replaying %s: oracle %s, recorded tag %s\n" file
              (Fuzz.Oracle.name r.Fuzz.Repro.oracle)
              r.Fuzz.Repro.tag;
            match Fuzz.Repro.replay r with
            | Fuzz.Repro.Reproduced ->
                print_endline "verdict: reproduced";
                exit 0
            | Fuzz.Repro.Changed tag ->
                Printf.printf "verdict: changed (now fails as %s)\n" tag;
                exit 1
            | Fuzz.Repro.Vanished ->
                print_endline "verdict: vanished (oracle now passes)";
                exit 1))
    | None ->
        let oracles =
          match oracles with
          | [] -> Fuzz.Oracle.all
          | names ->
              List.map
                (fun n ->
                  match Fuzz.Oracle.of_name n with
                  | Ok o -> o
                  | Error e ->
                      Printf.eprintf "%s\n" e;
                      exit 2)
                names
        in
        let models =
          match models with [] -> Fuzz.Driver_params.default.models | l -> l
        in
        List.iter
          (fun m ->
            match Harness.Registry.find_model m with
            | _ -> ()
            | exception Not_found ->
                Printf.eprintf "unknown model %S; try: %s\n" m
                  (String.concat ", " Harness.Registry.model_names);
                exit 2)
          models;
        let tl =
          telemetry_setup ~name:"fuzz" ?flight_out ~flight_interval progress
            metrics_out trace_out
        in
        let cfg =
          {
            (Fuzz.Driver.default_config ~seed ~count) with
            Fuzz.Driver.oracles;
            params =
              {
                Fuzz.Driver_params.models;
                nprocs;
                bound;
                max_states;
                sched_len = max_steps;
                register_model;
              };
            out_dir = out;
            progress = tl.tl_progress;
            metrics = tl.tl_metrics;
          }
        in
        let s = Fuzz.Driver.run cfg in
        tl.tl_finish ();
        List.iter print_endline (Fuzz.Driver.summary_lines s);
        exit (if s.Fuzz.Driver.s_failures = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based fuzzing: differential oracles across the engines, \
          with shrinking and .repro reproducers")
    Term.(
      const run $ seed_arg $ count_arg $ oracle_arg $ fuzz_model_arg
      $ nprocs_arg $ bound_arg $ fuzz_register_model_arg $ fuzz_reduce_arg
      $ max_steps_arg $ max_states_arg $ out_arg $ replay_arg $ progress_arg
      $ metrics_out_arg $ trace_out_arg $ flight_out_arg $ flight_interval_arg)

(* -------------------------------------------------------------- bench *)

(* `bench locks`: the SLO observatory as a CLI verb — open-loop seeded
   traffic against chosen locks, scorecards to stdout and (stamped with
   run metadata) appended to a BENCH_locks.json-style file. *)
let run_locks ~tl ~quick ~seed ~rate_raw ~ops ~duration_raw ~algos ~domains
    ~vbound ~out =
  let parse_pos ~docv ~flag raw =
    match Harness.Argscan.parse_suffixed ~docv ~flag raw with
    | Ok v when v > 0.0 -> v
    | Ok _ ->
        Printf.eprintf "%s: %s must be positive\n" flag docv;
        exit 2
    | Error msg ->
        prerr_endline msg;
        exit 2
  in
  let rate = parse_pos ~docv:"RATE" ~flag:"--rate" rate_raw in
  let budget =
    match (ops, duration_raw) with
    | Some n, _ when n > 0 -> Workload.Openloop.Ops n
    | Some _, _ ->
        prerr_endline "--ops: must be positive";
        exit 2
    | None, Some d ->
        Workload.Openloop.Seconds
          (parse_pos ~docv:"DURATION" ~flag:"--duration" d)
    | None, None -> Workload.Openloop.Ops (if quick then 400 else 2_000)
  in
  let algos = if algos = [] then [ "bakery"; "bakery_pp" ] else algos in
  (* Bound-sensitive locks are created at the observatory's virtual
     bound, so the same M that judges the unbounded bakery's tickets
     also drives Bakery++'s resets. *)
  let resolve = Harness.Experiments.lock_resolver ~bound:vbound () in
  let t =
    Harness.Table.make
      ~title:
        (Printf.sprintf
           "bench locks: open-loop SLO scorecards (seed %d, rate %.0f/s, M=%d)"
           seed rate vbound)
      ~notes:
        [
          "latency from each op's intended start (no coordinated \
           omission); SLO = Workload.Slo.default";
          "overflow column: unbounded locks report when peak_ticket \
           crossed M; resetting locks report storm count and worst \
           storm duration";
        ]
      [
        "lock"; "domains"; "goodput/s"; "p50"; "p99"; "p999"; "max stall";
        "inv"; "jain"; "behind"; "SLO"; "overflow";
      ]
  in
  let cell ns =
    match ns with
    | 0 -> "-"
    | ns when ns < 1_000 -> Printf.sprintf "%dns" ns
    | ns when ns < 1_000_000 -> Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
    | ns -> Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  in
  let timestamp = Unix.time () in
  let cards =
    List.map
      (fun algo ->
        let card =
          Workload.Suite.run_cell resolve ?progress:tl.tl_progress
            ?flight:tl.tl_flight ~virtual_bound:vbound ~algo ~nprocs:domains
            ~rate ~budget ~seed ()
        in
        let overflow_cell =
          match card.Workload.Scorecard.overflow with
          | None -> "-"
          | Some o -> (
              match (o.overflow_at_s, o.storms) with
              | Some at, _ ->
                  Printf.sprintf "ticket>M at %.4fs" at
              | None, storms when storms > 0 ->
                  Printf.sprintf "%d storm(s), worst %.4fs" storms
                    o.storm_max_s
              | None, _ -> "none")
        in
        Harness.Table.add_rowf t "%s|%d|%.0f|%s|%s|%s|%s|%d|%.3f|%d|%s|%s"
          algo domains card.goodput (cell card.p50_ns) (cell card.p99_ns)
          (cell card.p999_ns)
          (cell card.max_stall_ns)
          card.inversions card.jain card.behind
          (if card.slo_pass then "pass"
           else "FAIL: " ^ String.concat "; " card.slo_reasons)
          overflow_cell;
        card)
      algos
  in
  print_string (Harness.Table.render t);
  print_newline ();
  List.iter
    (fun (card : Workload.Scorecard.t) ->
      match card.overflow with
      | Some o when o.resets > 0 ->
          Printf.printf
            "%s: %d reset(s) in %d storm(s) under M=%d (worst storm %.4fs)\n"
            card.algo o.resets o.storms o.virtual_bound o.storm_max_s
      | Some { overflow_at_s = Some at; overflow_ticket = Some tk; _ } ->
          Printf.printf
            "%s: a width-%d register would have overflowed after %.4fs \
             (ticket %d)\n"
            card.algo vbound at tk
      | _ -> ())
    cards;
  let rows =
    List.map
      (fun card ->
        match Workload.Scorecard.to_json card with
        | Telemetry.Json.Obj fields ->
            Telemetry.Json.Obj
              (fields
              @ [ ("timestamp", Telemetry.Json.Num timestamp) ]
              @ Telemetry.Runmeta.to_fields (Telemetry.Runmeta.capture ())
              @ Telemetry.Metrics.gc_fields ())
        | j -> j)
      cards
  in
  (match Workload.Suite.load_rows out with
  | Ok _ -> ()
  | Error reason -> Printf.eprintf "warning: %s; starting fresh\n" reason);
  Workload.Suite.append_rows out rows;
  Printf.printf "appended %d scorecard(s) to %s\n" (List.length rows) out;
  tl.tl_finish ()

let bench_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all), or 'locks' for the open-loop SLO suite.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes (seconds, not minutes).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Arrival-schedule seed for `bench locks` (same seed, same schedule).")
  in
  let rate_arg =
    Arg.(value & opt string "2k" & info [ "rate" ] ~docv:"RATE" ~doc:"Offered aggregate arrival rate in ops/s for `bench locks`; unit suffixes (2k, 1M) accepted.")
  in
  let ops_arg =
    Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N" ~doc:"Operation budget for `bench locks` (deterministic non-timing fields); overrides --duration.")
  in
  let duration_arg =
    Arg.(value & opt (some string) None & info [ "duration" ] ~docv:"DURATION" ~doc:"Wall-clock budget for `bench locks`; unit suffixes (30s, 250ms) accepted.")
  in
  let algo_arg =
    Arg.(value & opt_all string [] & info [ "algo" ] ~docv:"LOCK" ~doc:"Lock families to score (repeatable; default bakery and bakery_pp).")
  in
  let domains_arg =
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"D" ~doc:"Worker domains for `bench locks`.")
  in
  let vbound_arg =
    Arg.(value & opt int 64 & info [ "virtual-bound" ] ~docv:"M" ~doc:"Register width the overflow observatory judges tickets against (also the bound for bound-sensitive locks).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_locks.json" & info [ "out" ] ~docv:"FILE" ~doc:"Scorecard history file `bench locks` appends to.")
  in
  let run_experiments ~ids ~quick ~tl =
    let trace = Option.value tl.tl_trace ~default:Telemetry.Sink.null in
    List.iter
      (fun id ->
        match Harness.Experiments.find id with
        | e ->
            Printf.printf "%s: %s\n\n" (String.uppercase_ascii e.id) e.summary;
            let t0 = Unix.gettimeofday () in
            Telemetry.Span.run trace ~name:("bench." ^ e.id) (fun () ->
                List.iter
                  (fun t ->
                    print_string (Harness.Table.render t);
                    print_newline ())
                  (e.run ~quick));
            let wall = Unix.gettimeofday () -. t0 in
            Option.iter
              (fun m ->
                Telemetry.Metrics.set
                  (Telemetry.Metrics.gauge m ("bench." ^ e.id ^ ".wall_s"))
                  wall)
              tl.tl_metrics;
            Option.iter
              (fun p ->
                Telemetry.Progress.force p (fun () ->
                    [
                      ("experiment", Telemetry.Json.Str e.id);
                      ("wall_s", Telemetry.Json.Num wall);
                    ]))
              tl.tl_progress
        | exception Not_found ->
            Printf.eprintf "unknown experiment %S\n" id;
            exit 2)
      ids;
    tl.tl_finish ()
  in
  let bench_reduce_arg =
    let doc =
      "Narrow E15's reduction sweep to $(b,none), $(b,sym) or \
       $(b,sym+por); the unreduced baseline always runs as the ratio \
       denominator.  Other experiments ignore the flag."
    in
    Arg.(value & opt (some string) None & info [ "reduce" ] ~docv:"MODE" ~doc)
  in
  let run ids quick seed rate_raw ops duration_raw algos domains vbound out
      reduce progress metrics_out trace_out flight_out flight_interval =
    let ids = if ids = [] then List.map (fun (e : Harness.Experiments.experiment) -> e.id) Harness.Experiments.all else ids in
    Option.iter
      (fun raw ->
        Harness.Experiments.e15_modes :=
          match parse_reduce raw with
          | Modelcheck.Reduce.Off -> [ Modelcheck.Reduce.Off ]
          | m -> [ Modelcheck.Reduce.Off; m ])
      reduce;
    let locks = List.mem "locks" ids in
    (* bench locks: the observatory pushes one flight sample per poll
       itself — a second pull sampler would only interleave noise. *)
    let tl =
      telemetry_setup ~name:"bench" ?flight_out ~flight_interval
        ~flight_pull:(not locks) progress metrics_out trace_out
    in
    if locks then begin
      if List.length ids > 1 then begin
        prerr_endline "bench locks does not combine with experiment ids";
        exit 2
      end;
      run_locks ~tl ~quick ~seed ~rate_raw ~ops ~duration_raw ~algos ~domains
        ~vbound ~out
    end
    else run_experiments ~ids ~quick ~tl
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Regenerate experiment tables (see EXPERIMENTS.md), or `bench \
          locks` for open-loop SLO scorecards")
    Term.(
      const run $ ids_arg $ quick_arg $ seed_arg $ rate_arg $ ops_arg
      $ duration_arg $ algo_arg $ domains_arg $ vbound_arg $ out_arg
      $ bench_reduce_arg $ progress_arg $ metrics_out_arg $ trace_out_arg
      $ flight_out_arg $ flight_interval_arg)

(* ------------------------------------------------------------- report *)

(* Everything a run leaves behind — flight record, metrics snapshot,
   trace, scorecard history — rendered into one deterministic markdown
   document.  Determinism is load-bearing: the same inputs must produce
   byte-identical output on any machine (golden-tested), so the verdict
   diff between two runs is exactly the run difference. *)
let report_cmd =
  let flight_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:"Flight-record JSONL written by --flight-out.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics-snapshot JSONL written by --metrics-out.")
  in
  let report_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Trace JSONL written by --trace-out.")
  in
  let bench_arg =
    Arg.(
      value & opt_all string []
      & info [ "bench" ] ~docv:"FILE"
          ~doc:
            "A BENCH_*.json history file (repeatable); scorecard rows \
             are diffed against their best prior cell.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the report here instead of stdout.")
  in
  let run flight metrics trace bench out =
    let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
    let flight_header, samples =
      match flight with
      | None -> (None, [])
      | Some p -> (
          match Obs.Flight.load p with
          | Ok (h, s) -> (h, s)
          | Error e -> fail "%s: %s" p e)
    in
    let jsonl_rows p =
      match open_in p with
      | exception Sys_error e -> fail "%s" e
      | ic ->
          let rec go lineno acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | "" -> go (lineno + 1) acc
            | line -> (
                match Telemetry.Json.parse line with
                | Ok j -> go (lineno + 1) (j :: acc)
                | Error e -> fail "%s:%d: %s" p lineno e)
          in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> go 1 [])
    in
    let metrics_rows =
      match metrics with None -> [] | Some p -> jsonl_rows p
    in
    let trace_rows =
      match trace with
      | None -> []
      | Some p ->
          List.filter
            (fun j ->
              match Telemetry.Json.member "kind" j with
              | Some (Telemetry.Json.Str "header") -> false
              | _ -> true)
            (jsonl_rows p)
    in
    let bench_rows =
      List.concat_map
        (fun p ->
          match Workload.Suite.load_rows p with
          | Ok rows -> rows
          | Error e -> fail "%s: %s" p e)
        bench
    in
    let doc =
      Obs.Report.render
        {
          Obs.Report.flight_header;
          flight = samples;
          metrics = metrics_rows;
          trace = trace_rows;
          bench = bench_rows;
        }
    in
    match out with
    | None -> print_string doc
    | Some p ->
        let oc = open_out p in
        output_string oc doc;
        close_out oc
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a deterministic markdown run report from flight \
          records, metrics snapshots, traces and BENCH_*.json rows")
    Term.(
      const run $ flight_arg $ metrics_arg $ report_trace_arg $ bench_arg
      $ out_arg)

let () =
  let info =
    Cmd.info "bakery_cli" ~version:"1.0.0"
      ~doc:"Bakery++ (ICPP 2020) reproduction toolkit"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; show_cmd; check_cmd; sim_cmd; explain_cmd; lasso_cmd;
            refine_cmd; verify_cmd; tla_cmd; graph_cmd; fuzz_cmd; bench_cmd;
            report_cmd;
          ]))
