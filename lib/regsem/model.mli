(** The register models the checking stack can run under.

    Following van Glabbeek/Luttik/Spronck ("Just Verification of Mutual
    Exclusion Algorithms with (Non-)Blocking and (Non-)Atomic
    Registers") and Spronck/Luttik ("Process-Algebraic Models of MWMR
    Non-Atomic Registers"), a register is weakened by what a read
    overlapping a write may return:

    - [Atomic]: reads and writes are linearizable points — today's
      semantics, bit-identical to the engine without this layer;
    - [Regular]: a read overlapping a write returns the old or the new
      value (and one of the overlapping writes' values when several
      overlap);
    - [Safe]: a read overlapping a write returns {e any} value in the
      register's range.

    Overlap is made a real interleaving notion by the two-phase write
    encoding ({!Two_phase}); the candidate values a flickering read may
    return come from {!Flicker}, with [Safe] ranges from {!Domain}. *)

type t = Atomic | Regular | Safe

val all : t list
(** In declaration order: [Atomic; Regular; Safe]. *)

val to_string : t -> string
(** ["atomic"], ["regular"], ["safe"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; the error message lists the valid names. *)

val names : string
(** ["atomic|regular|safe"], for CLI usage lines. *)
