module Ast = Mxlang.Ast

type meta = {
  tp_orig_steps : int;
  tp_orig_locals : int;
  tp_pend : (int * int) array array;
}

let transform (p : Ast.program) : Ast.program * meta =
  (* Slot demand per variable: the max number of shared writes to it in
     any single action. *)
  let slots = Array.make p.nvars 0 in
  Array.iter
    (fun (s : Ast.step) ->
      List.iter
        (fun (a : Ast.action) ->
          let per = Array.make p.nvars 0 in
          List.iter
            (fun (l, _) ->
              match l with
              | Ast.Sh (v, _) -> per.(v) <- per.(v) + 1
              | Ast.Lo _ -> ())
            a.effects;
          Array.iteri (fun v k -> if k > slots.(v) then slots.(v) <- k) per)
        s.actions)
    p.steps;
  let total_slots = Array.fold_left ( + ) 0 slots in
  let nlocals' = p.nlocals + (2 * total_slots) in
  let local_names = Array.make (max nlocals' 1) "" in
  Array.blit p.local_names 0 local_names 0 p.nlocals;
  let local_names = Array.sub local_names 0 nlocals' in
  let init_locals = Array.make (max nlocals' 1) 0 in
  Array.blit p.init_locals 0 init_locals 0 p.nlocals;
  let init_locals = Array.sub init_locals 0 nlocals' in
  let next = ref p.nlocals in
  let tp_pend =
    Array.init p.nvars (fun v ->
        Array.init slots.(v) (fun j ->
            let il = !next and vl = !next + 1 in
            next := !next + 2;
            local_names.(il) <- Printf.sprintf "pend.%s.%d.ix" p.var_names.(v) j;
            local_names.(vl) <- Printf.sprintf "pend.%s.%d.val" p.var_names.(v) j;
            init_locals.(il) <- -1;
            (il, vl)))
  in
  let meta = { tp_orig_steps = Array.length p.steps; tp_orig_locals = p.nlocals; tp_pend } in
  if total_slots = 0 then (p, meta)
  else begin
    let nsteps = Array.length p.steps in
    let commits = ref [] (* reversed *) and ncommits = ref 0 in
    let rewrite_action (s : Ast.step) ~alt (a : Ast.action) =
      let shw =
        List.filter_map
          (fun (l, _) -> match l with Ast.Sh (v, _) -> Some v | Ast.Lo _ -> None)
          a.effects
      in
      match shw with
      | [] -> a
      | _ ->
          let nw = List.length shw in
          let first_commit = nsteps + !ncommits in
          (* Assign each shared write its variable's next free slot, in
             declaration order (matching the commit order below, which
             preserves the atomic last-write-wins outcome). *)
          let used = Array.make p.nvars 0 in
          let wslots =
            Array.of_list
              (List.map
                 (fun v ->
                   let j = used.(v) in
                   used.(v) <- j + 1;
                   (v, j))
                 shw)
          in
          let wi = ref 0 in
          let start_effects =
            List.concat_map
              (fun ((l, e) as eff) ->
                match l with
                | Ast.Lo _ -> [ eff ]
                | Ast.Sh (_, ix) ->
                    let v, j = wslots.(!wi) in
                    incr wi;
                    let il, vl = tp_pend.(v).(j) in
                    [ (Ast.Lo il, ix); (Ast.Lo vl, e) ])
              a.effects
          in
          Array.iteri
            (fun k (v, j) ->
              let il, vl = tp_pend.(v).(j) in
              let target = if k = nw - 1 then a.target else first_commit + k + 1 in
              let step_name =
                if nw = 1 && List.length s.actions = 1 then s.step_name ^ "#commit"
                else Printf.sprintf "%s#commit.%d.%d" s.step_name alt k
              in
              commits :=
                {
                  Ast.step_name;
                  kind = s.kind;
                  actions =
                    [
                      {
                        Ast.guard = Ast.True;
                        (* The value slot is reset with the index so
                           quiescent states are canonical: a state with
                           no write in flight always has pend = (-1, 0),
                           which keeps the weak state space from
                           splitting on dead pending values and lets an
                           atomic state embed into the weak layout by
                           blitting over the initial locals. *)
                        effects =
                          [
                            (Ast.Sh (v, Ast.Local il), Ast.Local vl);
                            (Ast.Lo il, Ast.Int (-1));
                            (Ast.Lo vl, Ast.Int 0);
                          ];
                        target;
                      };
                    ];
                }
                :: !commits)
            wslots;
          ncommits := !ncommits + nw;
          { a with effects = start_effects; target = first_commit }
    in
    (* Commit pcs are assigned as actions are visited, so force explicit
       ascending (pc, alt) order rather than relying on [List.mapi] /
       [Array.map] evaluation order. *)
    let rewritten =
      Array.make nsteps p.steps.(0) |> fun out ->
      for pc = 0 to nsteps - 1 do
        let s = p.steps.(pc) in
        let acc = ref [] and alt = ref 0 in
        List.iter
          (fun a ->
            acc := rewrite_action s ~alt:!alt a :: !acc;
            incr alt)
          s.actions;
        out.(pc) <- { s with actions = List.rev !acc }
      done;
      out
    in
    let steps = Array.append rewritten (Array.of_list (List.rev !commits)) in
    ({ p with nlocals = nlocals'; local_names; steps; init_locals }, meta)
  end
