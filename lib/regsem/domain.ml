module Ast = Mxlang.Ast

(* Saturation bound for the interval arithmetic.  1e9 is far above any
   register value the checker can reach and small enough that corner
   products ([top * top] = 1e18) stay inside 63-bit ints. *)
let top = 1_000_000_000
let bottom = -top
let sat x = if x > top then top else if x < bottom then bottom else x

let ceilings (p : Ast.program) ~nprocs ~bound =
  (* One interval per shared variable (whole-array) and per local. *)
  let vlo = Array.copy p.init_shared and vhi = Array.copy p.init_shared in
  let llo = Array.copy p.init_locals and lhi = Array.copy p.init_locals in
  (* Guard conditions never change stored values, so only effect
     right-hand sides feed the intervals; [Ite] conditions are skipped. *)
  let rec e_iv (e : Ast.expr) =
    match e with
    | Ast.Int k -> (k, k)
    | N -> (nprocs, nprocs)
    | M -> (bound, bound)
    | Pid | Qidx -> (0, nprocs - 1)
    | Local l -> (llo.(l), lhi.(l))
    | Rd (v, _) -> (vlo.(v), vhi.(v))
    | Add (a, b) ->
        let al, ah = e_iv a and bl, bh = e_iv b in
        (sat (al + bl), sat (ah + bh))
    | Sub (a, b) ->
        let al, ah = e_iv a and bl, bh = e_iv b in
        (sat (al - bh), sat (ah - bl))
    | Mul (a, b) ->
        let al, ah = e_iv a and bl, bh = e_iv b in
        let p1 = al * bl and p2 = al * bh and p3 = ah * bl and p4 = ah * bh in
        (sat (min (min p1 p2) (min p3 p4)), sat (max (max p1 p2) (max p3 p4)))
    | Mod (a, b) ->
        (* Euclidean remainder lands in [0, |divisor| - 1]. *)
        let _ = e_iv a in
        let bl, bh = e_iv b in
        (0, max 0 (max (abs bl) (abs bh) - 1))
    | Max_arr v -> (vlo.(v), vhi.(v))
    | Ite (_, a, b) ->
        let al, ah = e_iv a and bl, bh = e_iv b in
        (min al bl, max ah bh)
  in
  let changed = ref false in
  let pass ~widen =
    let join_lo cur lo = if lo < cur then (changed := true; if widen then bottom else lo) else cur
    and join_hi cur hi = if hi > cur then (changed := true; if widen then top else hi) else cur in
    Array.iter
      (fun (s : Ast.step) ->
        List.iter
          (fun (a : Ast.action) ->
            List.iter
              (fun (l, e) ->
                let lo, hi = e_iv e in
                match l with
                | Ast.Sh (v, _) ->
                    vlo.(v) <- join_lo vlo.(v) lo;
                    vhi.(v) <- join_hi vhi.(v) hi
                | Ast.Lo l ->
                    llo.(l) <- join_lo llo.(l) lo;
                    lhi.(l) <- join_hi lhi.(l) hi)
              a.effects)
          s.actions)
      p.steps
  in
  (* A few plain join passes catch the common finite fixpoints (flag
     bits, colors); widening then forces convergence for anything still
     growing (ticket counters). *)
  let continue_ = ref true and rounds = ref 0 in
  while !continue_ && !rounds < 8 do
    changed := false;
    pass ~widen:false;
    incr rounds;
    continue_ := !changed
  done;
  while !continue_ do
    changed := false;
    pass ~widen:true;
    continue_ := !changed
  done;
  Array.init p.nvars (fun v ->
      let c = if vhi.(v) >= top then bound else max 0 vhi.(v) in
      if p.bounded.(v) then min c bound else c)
