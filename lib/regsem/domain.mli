(** Per-variable value ceilings for [Safe]-register flicker.

    A safe register returns an arbitrary value {e in its range} when a
    read overlaps a write, so the checker needs a finite range per
    shared variable.  [ceilings] derives one by interval abstract
    interpretation over the program's assignments (seeded from the
    initial values, with widening so divergent counters terminate):

    - a variable whose writes provably stay within [0..k] gets ceiling
      [k] (e.g. Bakery's [choosing] flag gets 1, Black-White's color
      bits get 1);
    - a variable whose interval diverges (e.g. an unbounded ticket
      counter) falls back to the register-capacity bound [M] — the
      physical register holds [0..M], which is also what the paper's
      bounded variants guarantee;
    - [bounded] variables are additionally clamped to [M], their
      declared register capacity.

    The result over-approximates reachable values, which is the sound
    direction for flicker candidates (extra candidate values add
    behaviours, they never hide one). *)

val ceilings : Mxlang.Ast.program -> nprocs:int -> bound:int -> int array
(** [ceilings p ~nprocs ~bound] returns one inclusive upper bound per
    shared variable ([Array.length] = [p.nvars]); lower bounds are
    clamped at 0 because registers hold naturals. *)
