(** Candidate-value enumeration for reads overlapping in-flight writes.

    Given a packed checker state whose program went through
    {!Two_phase.transform}, a cell is {e dirty} for a reader [pid] when
    some {e other} process has a live pending write to it (its pending
    index local is >= 0).  For an action whose static read set
    intersects the dirty cells, [iter_views] enumerates every
    assignment of candidate values to the overlapped cells — the
    {e flicker views} — and invokes the continuation once per view with
    a dense rank [flick] identifying it:

    - [Regular]: each overlapped cell reads its current value or one of
      the pending values latched for it (several, if distinct writers
      overlap a multi-writer register);
    - [Safe]: each overlapped cell reads any value in its register's
      range, [0 .. ceiling] (from {!Domain.ceilings}), plus the current
      value if that lies outside;
    - [Atomic]: no enumeration; the single rank-0 view is the state
      itself.

    Rank 0 is always the unperturbed view.  Ranks are a mixed-radix
    encoding over the overlapped cells in ascending cell order, so a
    rank recorded in a counterexample trace decodes deterministically
    back to the values each read saw ([assignment]) — replay and
    forensics share this decode path.

    A read is modelled as returning one consistent candidate per cell
    for the whole action (all reads of a cell within one action see the
    same value); reads spanning several successive writes are covered
    by the union over interleavings of the commit steps. *)

type ctx

val max_total : int
(** Hard cap on views per (state, action): 2^26.  [iter_views] raises
    [Mxlang.Eval.Error] beyond it — reachable only with degenerate
    ranges, not with the zoo algorithms at checkable sizes. *)

val make :
  model:Model.t ->
  nprocs:int ->
  locals_off:int ->
  locals_per:int ->
  var_off:int array ->
  cell_ceil:int array ->
  pend:(int * int) array array ->
  ctx
(** [locals_off]/[locals_per] describe where per-process locals live in
    the packed state; [var_off.(v)] is variable [v]'s first flat shared
    cell; [cell_ceil] maps every flat shared cell to its [Safe] ceiling;
    [pend] is {!Two_phase.meta.tp_pend}. *)

val model : ctx -> Model.t

val iter_views :
  ctx ->
  s:int array ->
  view:int array ->
  pid:int ->
  cells:int array ->
  (flick:int -> unit) ->
  unit
(** [iter_views ctx ~s ~view ~pid ~cells f] calls [f ~flick] once per
    candidate view.  [view] must be a copy of the packed state [s]; the
    overlapped cells are mutated in place before each call and restored
    to [s]'s values before returning.  [cells] is the action's static
    read set as sorted flat shared offsets ({!Mxlang.Reads.static_cells});
    dirty cells outside it are ignored. *)

val assignment :
  ctx -> s:int array -> pid:int -> cells:int array -> flick:int -> (int * int) list
(** Decode a rank produced by [iter_views] over the same [(s, pid,
    cells)] into [(flat_cell, seen_value)] pairs for every overlapped
    cell, in ascending cell order (including cells whose digit decodes
    to the unperturbed value — compare against [s] to isolate actual
    flickers). *)
