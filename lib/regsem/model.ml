type t = Atomic | Regular | Safe

let all = [ Atomic; Regular; Safe ]

let to_string = function
  | Atomic -> "atomic"
  | Regular -> "regular"
  | Safe -> "safe"

let names = "atomic|regular|safe"

let of_string = function
  | "atomic" -> Ok Atomic
  | "regular" -> Ok Regular
  | "safe" -> Ok Safe
  | s -> Error (Printf.sprintf "unknown register model %S (expected %s)" s names)
