type ctx = {
  fl_model : Model.t;
  fl_nprocs : int;
  fl_nvars : int;
  fl_locals_off : int;
  fl_locals_per : int;
  fl_var_off : int array;
  fl_cell_ceil : int array;
  fl_pend : (int * int) array array;
}

let max_total = 1 lsl 26

let make ~model ~nprocs ~locals_off ~locals_per ~var_off ~cell_ceil ~pend =
  {
    fl_model = model;
    fl_nprocs = nprocs;
    fl_nvars = Array.length var_off;
    fl_locals_off = locals_off;
    fl_locals_per = locals_per;
    fl_var_off = var_off;
    fl_cell_ceil = cell_ceil;
    fl_pend = pend;
  }

let model ctx = ctx.fl_model

let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = Array.unsafe_get a mid in
    if v = x then found := true else if v < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

(* Overlapped cells for action reads [cells] of process [pid] in state
   [s], with their candidate values.  Deterministic: discovery order is
   (writer asc, var asc, slot asc), grouping is by ascending cell, and
   candidate 0 is always the unperturbed value — this function is the
   single decode path shared by enumeration and replay. *)
let collect ctx ~s ~pid ~cells =
  let dirty = ref [] in
  for q = ctx.fl_nprocs - 1 downto 0 do
    if q <> pid then begin
      let base = ctx.fl_locals_off + (q * ctx.fl_locals_per) in
      for v = ctx.fl_nvars - 1 downto 0 do
        let slots = ctx.fl_pend.(v) in
        for j = Array.length slots - 1 downto 0 do
          let il, vl = slots.(j) in
          let idx = s.(base + il) in
          if idx >= 0 then begin
            let cell = ctx.fl_var_off.(v) + idx in
            if mem_sorted cells cell then dirty := (cell, s.(base + vl)) :: !dirty
          end
        done
      done
    end
  done;
  (* [!dirty] is now in (q asc, v asc, slot asc) discovery order. *)
  let sorted = List.stable_sort (fun (c1, _) (c2, _) -> compare c1 c2) !dirty in
  let groups = ref [] in
  List.iter
    (fun (cell, pv) ->
      match !groups with
      | (c, pvs) :: tl when c = cell -> groups := (c, pv :: pvs) :: tl
      | _ -> groups := (cell, [ pv ]) :: !groups)
    sorted;
  let groups =
    List.rev_map (fun (cell, pvs_rev) -> (cell, List.rev pvs_rev)) !groups
  in
  (* [groups] is in descending cell order; build ascending arrays. *)
  let candidates cell pvs =
    let cur = s.(cell) in
    match ctx.fl_model with
    | Model.Atomic -> [| cur |]
    | Model.Regular ->
        let seen = ref [ cur ] in
        List.iter (fun v -> if not (List.mem v !seen) then seen := v :: !seen) pvs;
        Array.of_list (List.rev !seen)
    | Model.Safe ->
        let ceil = ctx.fl_cell_ceil.(cell) in
        let extra = ref [] in
        for v = ceil downto 0 do
          if v <> cur then extra := v :: !extra
        done;
        Array.of_list (cur :: !extra)
  in
  let kept =
    List.filter_map
      (fun (cell, pvs) ->
        let c = candidates cell pvs in
        if Array.length c >= 2 then Some (cell, c) else None)
      (List.rev groups)
  in
  (Array.of_list (List.map fst kept), Array.of_list (List.map snd kept))

let total_views kcands =
  let total = ref 1 in
  Array.iter
    (fun c ->
      let n = Array.length c in
      if !total > max_total / n then
        raise
          (Mxlang.Eval.Error
             (Printf.sprintf
                "flicker: more than %d candidate views for one action (raise \
                 the model or shrink the ranges)"
                max_total));
      total := !total * n)
    kcands;
  !total

let iter_views ctx ~s ~view ~pid ~cells f =
  match ctx.fl_model with
  | Model.Atomic -> f ~flick:0
  | Model.Regular | Model.Safe ->
      let kcells, kcands = collect ctx ~s ~pid ~cells in
      let k = Array.length kcells in
      if k = 0 then f ~flick:0
      else begin
        let total = total_views kcands in
        for flick = 0 to total - 1 do
          let r = ref flick in
          for i = 0 to k - 1 do
            let c = kcands.(i) in
            let n = Array.length c in
            view.(kcells.(i)) <- c.(!r mod n);
            r := !r / n
          done;
          f ~flick
        done;
        for i = 0 to k - 1 do
          view.(kcells.(i)) <- s.(kcells.(i))
        done
      end

let assignment ctx ~s ~pid ~cells ~flick =
  match ctx.fl_model with
  | Model.Atomic -> []
  | Model.Regular | Model.Safe ->
      let kcells, kcands = collect ctx ~s ~pid ~cells in
      let out = ref [] and r = ref flick in
      Array.iteri
        (fun i c ->
          let n = Array.length c in
          out := (kcells.(i), c.(!r mod n)) :: !out;
          r := !r / n)
        kcands;
      List.rev !out
