(** Two-phase write encoding: make write/read overlap an interleaving.

    Under atomic semantics an mxlang action's shared writes land in the
    same indivisible step as its guard and local updates, so no read can
    ever overlap a write.  [transform] splits every action that writes
    shared cells into a {e write-start} (the original guard plus local
    effects, with each shared write's destination index and value
    latched into fresh pending locals — all still evaluated in the
    pre-state, preserving the simultaneous-assignment semantics) and a
    chain of single-write {e commit} steps (guard [True], store the
    latched value, reset the pending slot to its idle [(-1, 0)] form —
    so quiescent states are canonical and atomic states embed into the
    weak layout without tracking stale pending values).  Between start and commit
    the write is {e in flight}: any other process scheduled in that
    window reads-overlapping-a-write in exactly the sense of the
    process-algebraic register models, and {!Flicker} enumerates what
    such a read may return.

    Numbering is stable by construction — original steps keep their pc
    indices (commit steps are appended), original locals keep their
    indices (pending slots are appended), and the shared layout is
    untouched — so an atomic-run state embeds into the transformed
    layout by copying shared cells, pcs, and the original locals.  Each
    commit step inherits its source step's {!Mxlang.Ast.kind}: a
    process occupies its section until the section's writes have
    landed.

    Pending slots are allocated per variable, [max] shared writes to
    that variable in any single action (so an action writing two cells
    of one array, or cells of two arrays, gets distinct slots); an idle
    slot holds index -1.  A process therefore has a live pending slot
    iff it sits at a commit pc, and commit actions read no shared
    cells, so a process never observes its own in-flight writes. *)

type meta = {
  tp_orig_steps : int;  (** steps in the source program; commits follow *)
  tp_orig_locals : int;  (** locals in the source program; slots follow *)
  tp_pend : (int * int) array array;
      (** [tp_pend.(v)] = pending slots for variable [v], each
          [(index_local, value_local)]; index -1 means idle *)
}

val transform : Mxlang.Ast.program -> Mxlang.Ast.program * meta
(** [transform p] returns the two-phase program and the slot map.
    Programs with no shared writes are returned unchanged (modulo
    physical equality of the record). *)
