(** Per-domain event rings for runtime lock forensics.

    Each participant records acquire/release milestones into its own
    preallocated int ring — two array stores and an increment per
    record, no allocation, no synchronisation with other domains — so
    tracing does not serialise the contention it is observing.  After
    the run the rings are merged into one time-sorted log; lib/trace
    turns that log into a causal trace with one track per domain. *)

type op =
  | Acquire_start  (** entered the acquire protocol (start of L1-wait) *)
  | Acquired  (** acquire returned: the domain holds the lock *)
  | Released  (** about to release (stamped before the releasing store) *)

type entry = { e_t_ns : int; e_pid : int; e_op : op }

type t

val create : ?capacity:int -> nprocs:int -> unit -> t
(** One ring of [capacity] entries (default 4096) per participant.
    When a ring overflows, its oldest entries are overwritten. *)

val record : t -> pid:int -> op -> unit
(** Stamp [op] with {!Telemetry.Clock.now_ns} into [pid]'s ring. *)

val wrap : t -> Lock_intf.instance -> Lock_intf.instance
(** Instrument an instance: acquire records [Acquire_start] before and
    [Acquired] after the underlying acquire; release records [Released]
    before the underlying release (so a hand-over is ordered
    released < acquired on the monotonic clock). *)

val flush : t -> entry list
(** Merge all rings, oldest first (stable on timestamp ties).  Entries
    lost to ring overflow are gone; see {!dropped}. *)

val dropped : t -> int
(** Total records overwritten by ring overflow across all pids. *)
