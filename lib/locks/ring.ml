(* Per-domain event rings for runtime lock forensics.

   The lock zoo runs on real OCaml 5 domains, so tracing must not
   serialise the contenders it is observing: each participant records
   into its own preallocated int ring (two array stores and an
   increment, no allocation, no synchronisation), and the rings are
   merged into one time-sorted log only after the run.  When a ring
   overflows, the oldest entries are overwritten — forensics favours the
   end of the run, where the interesting contention usually is. *)

type op = Acquire_start | Acquired | Released

let op_code = function Acquire_start -> 0 | Acquired -> 1 | Released -> 2
let op_of_code = function 0 -> Acquire_start | 1 -> Acquired | _ -> Released

type entry = { e_t_ns : int; e_pid : int; e_op : op }

type t = {
  nprocs : int;
  capacity : int;
  ops : int array array;  (* per pid: op codes *)
  ts : int array array;  (* per pid: Clock.now_ns stamps *)
  count : int array;  (* per pid: total records (may exceed capacity) *)
}

let create ?(capacity = 4096) ~nprocs () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    nprocs;
    capacity;
    ops = Array.init nprocs (fun _ -> Array.make capacity 0);
    ts = Array.init nprocs (fun _ -> Array.make capacity 0);
    count = Array.make nprocs 0;
  }

let record t ~pid op =
  let i = t.count.(pid) mod t.capacity in
  t.ops.(pid).(i) <- op_code op;
  t.ts.(pid).(i) <- Telemetry.Clock.now_ns ();
  t.count.(pid) <- t.count.(pid) + 1

let dropped t =
  Array.fold_left
    (fun acc c -> acc + max 0 (c - t.capacity))
    0 t.count

let flush t =
  let per_pid pid =
    let n = min t.count.(pid) t.capacity in
    let first = t.count.(pid) - n in
    List.init n (fun k ->
        let i = (first + k) mod t.capacity in
        {
          e_t_ns = t.ts.(pid).(i);
          e_pid = pid;
          e_op = op_of_code t.ops.(pid).(i);
        })
  in
  let all = List.concat (List.init t.nprocs per_pid) in
  (* Stable sort on timestamps: records of one pid stay in program
     order even when the monotonic clock ties. *)
  List.stable_sort
    (fun a b ->
      if a.e_t_ns <> b.e_t_ns then compare a.e_t_ns b.e_t_ns
      else compare a.e_pid b.e_pid)
    all

(* Wrap an instance so every acquire/release leaves ring records.
   [Released] is stamped *before* the release call: the successor's
   [Acquired] stamp is taken after its acquire returns, so a
   released-then-acquired pair is ordered released < acquired whenever
   the lock actually changed hands. *)
let wrap t (inst : Lock_intf.instance) =
  {
    inst with
    acquire =
      (fun pid ->
        record t ~pid Acquire_start;
        inst.acquire pid;
        record t ~pid Acquired);
    release =
      (fun pid ->
        record t ~pid Released;
        inst.release pid);
  }
