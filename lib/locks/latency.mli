(** A generic acquire-latency histogram wrapper for the lock zoo.

    Wraps any {!Lock_intf.instance} so every [acquire] is timed on the
    monotonised clock into a fixed-bucket histogram, and the wrapped
    instance's [stats] report latency percentiles through the existing
    [LOCK.stats] hook — so the E5/E7 harness tables get percentile
    columns for free, for every lock, with no per-lock changes.

    The timing adds two clock reads and one atomic increment per
    acquire; wrap only when the numbers are wanted. *)

val buckets_s : float array
(** The latency ladder: 100 ns to 1 s, 1–2–5 steps (seconds). *)

val instrument :
  ?registry:Telemetry.Metrics.t -> Lock_intf.instance -> Lock_intf.instance
(** [instrument inst] returns an instance with the same name, release
    and space accounting whose [acquire] is timed.  [stats ()] returns
    the underlying stats with [acq_p50_ns], [acq_p95_ns], [acq_p99_ns]
    and [acq_max_ns] appended (integer nanoseconds; 0 until the first
    acquire).  When [registry] is given the histogram is also
    registered there as [lock.<name>.acquire_s]. *)
