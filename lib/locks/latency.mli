(** A generic acquire-latency histogram wrapper for the lock zoo.

    Wraps any {!Lock_intf.instance} so every [acquire] is timed on the
    monotonised clock into a fixed-bucket histogram, and the wrapped
    instance's [stats] report latency percentiles through the existing
    [LOCK.stats] hook — so the E5/E7 harness tables get percentile
    columns for free, for every lock, with no per-lock changes.

    The timing adds two clock reads and one atomic increment per
    acquire; wrap only when the numbers are wanted. *)

val buckets_s : float array
(** {!Telemetry.Quantile.latency_buckets_s}: 100 ns to 5 s, 1–2–5
    steps (seconds).  The top extends past 1 s because open-loop
    backlogs (see {!Open_loop}) can legitimately accumulate
    multi-second queueing delays. *)

type mode =
  | Closed_loop
      (** Latency runs from the moment [acquire] was called — the
          classical measurement, blind to coordinated omission: a
          stalled lock delays the *next* call, and that queueing time
          is never charged to anyone. *)
  | Open_loop of (int -> float)
      (** [Open_loop intended]: latency runs from [intended pid], the
          operation's scheduled start on the {!Telemetry.Clock.now_s}
          scale.  An open-loop driver (Workload.Openloop) sets the
          intended time from its arrival schedule before each acquire,
          so backlog caused by a stall is charged to every operation
          that was due during it. *)

val instrument :
  ?registry:Telemetry.Metrics.t ->
  ?mode:mode ->
  Lock_intf.instance ->
  Lock_intf.instance
(** [instrument inst] returns an instance with the same name, release
    and space accounting whose [acquire] is timed under [mode] (default
    {!Closed_loop}).  [stats ()] returns the underlying stats with
    [acq_p50_ns], [acq_p95_ns], [acq_p99_ns], [acq_p999_ns] and
    [acq_max_ns] appended (integer nanoseconds; 0 until the first
    acquire).  When [registry] is given the histogram is also
    registered there as [lock.<name>.acquire_s]. *)
