let buckets_s = Telemetry.Quantile.latency_buckets_s

let ns_of s = if Float.is_nan s then 0 else int_of_float (s *. 1e9)

type mode = Closed_loop | Open_loop of (int -> float)

(* Open-loop recording is the coordinated-omission fix: when a lock stalls,
   every operation scheduled behind the stall was *supposed* to start on
   time, so its latency must be charged from the intended start, not from
   whenever the caller finally got around to invoking [acquire].  The
   closed-loop clock (start at call time) silently forgives the backlog:
   one stalled operation records one bad sample and the queue behind it
   records near-zero ones. *)
let instrument ?registry ?(mode = Closed_loop) (inst : Lock_intf.instance) =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Metrics.create ()
  in
  let hist =
    Telemetry.Metrics.histogram registry ~buckets:buckets_s
      ("lock." ^ inst.instance_name ^ ".acquire_s")
  in
  let start_of =
    match mode with
    | Closed_loop -> fun _pid -> Telemetry.Clock.now_s ()
    | Open_loop intended -> intended
  in
  {
    inst with
    acquire =
      (fun pid ->
        let t0 = start_of pid in
        inst.acquire pid;
        Telemetry.Metrics.observe hist
          (Float.max 0.0 (Telemetry.Clock.now_s () -. t0)));
    stats =
      (fun () ->
        inst.stats ()
        @ [
            ("acq_p50_ns", ns_of (Telemetry.Metrics.percentile hist 0.50));
            ("acq_p95_ns", ns_of (Telemetry.Metrics.percentile hist 0.95));
            ("acq_p99_ns", ns_of (Telemetry.Metrics.percentile hist 0.99));
            ("acq_p999_ns", ns_of (Telemetry.Metrics.percentile hist 0.999));
            ("acq_max_ns", ns_of (Telemetry.Metrics.percentile hist 1.0));
          ]);
  }
