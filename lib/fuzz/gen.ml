module A = Mxlang.Ast
module R = Prng.Rng

type prog_params = { g_nprocs : int; g_bound : int; g_max_steps : int }

let default_prog_params = { g_nprocs = 2; g_bound = 2; g_max_steps = 5 }

(* Variable layout of every generated program: var 0 is a bounded
   per-process array ("a", the number-like register under test), var 1 a
   scalar ("g", a gate/flag), and there is a single local ("t"). *)
let var_a = 0
let var_g = 1
let local_t = 0

let pick rng weights =
  (* [weights]: (weight, value) pairs; total assumed > 0. *)
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weights in
  let n = R.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (w, v) :: rest -> if n < acc + w then v else go (acc + w) rest
  in
  go 0 weights

(* Index expression for a shared read/write of [v], always in range for
   the fixed [nprocs] of the case.  [in_q] allows [Qidx] (bound by the
   innermost quantifier, which ranges over pids).  [sym] restricts the
   grammar to the pid-symmetric fragment {!Reduce.certify} accepts: the
   per-process array is indexed only by the symbolic [Pid]/[Qidx]
   (never a numeric constant, which would pin a concrete process). *)
let gen_index rng ~nprocs ~in_q ~sym v =
  if v = var_g then A.Int 0
  else
    pick rng
      ((if sym then [ (4, `Pid) ] else [ (4, `Pid); (1, `Const) ])
      @ if in_q then [ (3, `Qidx) ] else [])
    |> function
    | `Pid -> A.Pid
    | `Qidx -> A.Qidx
    | `Const -> A.Int (R.int rng nprocs)

let rec gen_expr rng ~nprocs ~bound ~in_q ~sym depth =
  let leaf () =
    pick rng
      ([
         (4, `Int);
         (1, `N);
         (1, `M);
         (2, `Local);
       ]
      @ (if sym then [] else [ (2, `Pid) ])
      @ if in_q && not sym then [ (2, `Qidx) ] else [])
    |> function
    | `Int -> A.Int (R.int rng (bound + 2))
    | `N -> A.N
    | `M -> A.M
    | `Pid -> A.Pid
    | `Local -> A.Local local_t
    | `Qidx -> A.Qidx
  in
  if depth <= 0 then leaf ()
  else
    pick rng
      [
        (3, `Leaf);
        (3, `Rd);
        (1, `Max);
        (2, `Add);
        (1, `Sub);
        (1, `Mul);
        (1, `Mod);
        (1, `Ite);
      ]
    |> function
    | `Leaf -> leaf ()
    | `Rd ->
        let v = if R.bool rng then var_a else var_g in
        A.Rd (v, gen_index rng ~nprocs ~in_q ~sym v)
    | `Max -> A.Max_arr var_a
    | `Add ->
        A.Add
          ( gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1) )
    | `Sub ->
        A.Sub
          ( gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1) )
    | `Mul ->
        A.Mul
          ( gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1) )
    | `Mod ->
        (* positive constant divisor: no division-by-zero at runtime *)
        A.Mod
          ( gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            A.Int (1 + R.int rng (bound + 2)) )
    | `Ite ->
        A.Ite
          ( gen_bexpr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_expr rng ~nprocs ~bound ~in_q ~sym (depth - 1) )

and gen_bexpr rng ~nprocs ~bound ~in_q ~sym depth =
  let cmp () =
    pick rng
      [ (1, A.Clt); (1, A.Cle); (1, A.Ceq); (1, A.Cne); (1, A.Cgt); (1, A.Cge) ]
  in
  let atom () =
    pick rng [ (1, `True); (5, `Cmp) ] |> function
    | `True -> A.True
    | `Cmp ->
        A.Cmp
          ( cmp (),
            gen_expr rng ~nprocs ~bound ~in_q ~sym 1,
            gen_expr rng ~nprocs ~bound ~in_q ~sym 1 )
  in
  if depth <= 0 then atom ()
  else
    pick rng
      ([ (3, `Atom); (1, `Not); (2, `And); (2, `Or); (1, `Lex) ]
      @ if in_q then [] else [ (2, `Exists); (2, `Forall) ])
    |> function
    | `Atom -> atom ()
    | `Not -> A.Not (gen_bexpr rng ~nprocs ~bound ~in_q ~sym (depth - 1))
    | `And ->
        A.And
          ( gen_bexpr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_bexpr rng ~nprocs ~bound ~in_q ~sym (depth - 1) )
    | `Or ->
        A.Or
          ( gen_bexpr rng ~nprocs ~bound ~in_q ~sym (depth - 1),
            gen_bexpr rng ~nprocs ~bound ~in_q ~sym (depth - 1) )
    | `Lex ->
        (* In sym mode every component is data (no Pid/Qidx leaves), so
           the lexicographic order never breaks pid-symmetry. *)
        A.Lex_lt
          ( ( gen_expr rng ~nprocs ~bound ~in_q ~sym 1,
              gen_expr rng ~nprocs ~bound ~in_q ~sym 1 ),
            ( gen_expr rng ~nprocs ~bound ~in_q ~sym 1,
              gen_expr rng ~nprocs ~bound ~in_q ~sym 1 ) )
    | `Exists ->
        let r =
          if sym then pick rng [ (2, A.Rall); (2, A.Rothers) ]
          else
            pick rng
              [ (2, A.Rall); (2, A.Rothers); (1, A.Rbelow); (1, A.Rabove) ]
        in
        A.Qexists (r, gen_bexpr rng ~nprocs ~bound ~in_q:true ~sym (depth - 1))
    | `Forall ->
        let r =
          if sym then pick rng [ (2, A.Rall); (2, A.Rothers) ]
          else
            pick rng
              [ (2, A.Rall); (2, A.Rothers); (1, A.Rbelow); (1, A.Rabove) ]
        in
        A.Qall (r, gen_bexpr rng ~nprocs ~bound ~in_q:true ~sym (depth - 1))

(* Every write is wrapped mod (M + 2): cells stay in a finite range but
   can still reach M + 1 and violate the no-overflow invariant. *)
let gen_effect rng ~nprocs ~bound ~sym =
  let value =
    A.Mod (gen_expr rng ~nprocs ~bound ~in_q:false ~sym 2, A.Int (bound + 2))
  in
  pick rng [ (3, `Sh_a); (2, `Sh_g); (2, `Lo) ] |> function
  | `Sh_a -> (A.Sh (var_a, gen_index rng ~nprocs ~in_q:false ~sym var_a), value)
  | `Sh_g -> (A.Sh (var_g, A.Int 0), value)
  | `Lo -> (A.Lo local_t, value)

let gen_action rng ~nprocs ~bound ~nsteps ~sym =
  let guard =
    pick rng [ (1, `True); (3, `Cond) ] |> function
    | `True -> A.True
    | `Cond -> gen_bexpr rng ~nprocs ~bound ~in_q:false ~sym 2
  in
  let neffects = R.int rng 3 in
  let effects =
    List.init neffects (fun _ -> gen_effect rng ~nprocs ~bound ~sym)
  in
  { A.guard; effects; target = R.int rng nsteps }

let kinds =
  [|
    A.Noncritical; A.Entry; A.Doorway; A.Waiting; A.Critical; A.Exit; A.Plain;
  |]

let program_gen rng (p : prog_params) ~sym =
  let nprocs = p.g_nprocs and bound = p.g_bound in
  let nsteps = 2 + R.int rng (max 1 (p.g_max_steps - 1)) in
  let steps =
    Array.init nsteps (fun i ->
        let nacts = 1 + R.int rng 2 in
        {
          A.step_name = Printf.sprintf "S%d" i;
          kind = kinds.(R.int rng (Array.length kinds));
          actions =
            List.init nacts (fun _ ->
                gen_action rng ~nprocs ~bound ~nsteps ~sym);
        })
  in
  (* Guarantee a Critical step so the mutex invariant is never vacuous. *)
  if not (Array.exists (fun (s : A.step) -> s.kind = A.Critical) steps) then begin
    let i = R.int rng nsteps in
    steps.(i) <- { (steps.(i)) with kind = A.Critical }
  end;
  {
    A.title = (if sym then "fuzz-sym" else "fuzz");
    nvars = 2;
    var_names = [| "a"; "g" |];
    var_sizes = [| -1; 1 |];
    per_process = [| true; false |];
    bounded = [| true; false |];
    nlocals = 1;
    local_names = [| "t" |];
    steps;
    init_shared = [| 0; 0 |];
    init_locals = [| 0 |];
    init_pc = 0;
  }

let program rng p = program_gen rng p ~sym:false
let program_symmetric rng p = program_gen rng p ~sym:true

(* ----------------------------------------------------------- schedules *)

let schedule rng ~nprocs ~len =
  let a = Array.make (max 0 len) 0 in
  let i = ref 0 in
  while !i < len do
    let pid = R.int rng nprocs in
    let burst = 1 + R.int rng 8 in
    let stop = min len (!i + burst) in
    while !i < stop do
      a.(!i) <- pid;
      incr i
    done
  done;
  a

type plan = {
  pl_model : string;
  pl_nprocs : int;
  pl_bound : int;
  pl_schedule : int array;
  pl_wrap : bool;
  pl_flicker : float;
  pl_flicker_model : Regsem.Model.t;
  pl_crash : float;
  pl_seed : int;
}

let plan ?flicker_model rng ~models ~nprocs ~bound ~max_len =
  let model = List.nth models (R.int rng (List.length models)) in
  let len = max_len / 2 + R.int rng (max 1 (max_len / 2)) in
  let sched = schedule rng ~nprocs ~len in
  let flicker = if R.int rng 3 = 0 then 0.05 +. R.float rng 0.2 else 0.0 in
  let fmodel =
    match flicker_model with
    | Some m -> m
    | None -> if R.bool rng then Regsem.Model.Safe else Regsem.Model.Regular
  in
  let crash = if R.int rng 4 = 0 then 0.005 +. R.float rng 0.02 else 0.0 in
  {
    pl_model = model;
    pl_nprocs = nprocs;
    pl_bound = bound;
    pl_schedule = sched;
    pl_wrap = R.bool rng;
    pl_flicker = flicker;
    pl_flicker_model = fmodel;
    pl_crash = crash;
    pl_seed = 1 + R.int rng 1_000_000;
  }
