(** Seeded generators for the fuzzer.

    Everything here is a pure function of the supplied {!Prng.Rng.t}
    stream: equal generator states produce structurally equal values, so
    a fuzz case is reproducible from (seed, case index) alone.

    Program generation produces only {e well-formed} mxlang programs:
    every variable, local, label target and shared index is in range by
    construction (for the [nprocs] the case will run with), every modulo
    divisor is a positive constant, and [Qidx] appears only under a
    quantifier — so neither the interpreter nor the compiled engine can
    hit a dynamic {!Mxlang.Eval.Error}, and {!Mxlang.Validate.check}
    reports no [`Error] issue.  Shared and local writes are wrapped
    [mod (M + 2)], which keeps every reachable state space finite (cells
    range over [-(M+1) .. M+1]) while still being able to exceed the
    register bound and trip the no-overflow invariant. *)

type prog_params = {
  g_nprocs : int;  (** the process count the program will be checked at *)
  g_bound : int;  (** the register capacity M *)
  g_max_steps : int;  (** labels per program, >= 2 *)
}

val default_prog_params : prog_params

val program : Prng.Rng.t -> prog_params -> Mxlang.Ast.program
(** A random well-formed program: one bounded per-process array, one
    scalar, one local, 2..[g_max_steps] steps with 1-2 guarded actions
    each, and at least one [Critical]-kind step. *)

val program_symmetric : Prng.Rng.t -> prog_params -> Mxlang.Ast.program
(** Like {!program}, but drawn from the pid-symmetric fragment: no
    [Pid]/[Qidx] value leaves, the per-process array indexed only by
    the symbolic [Pid] (or [Qidx] under a quantifier), and quantifier
    ranges restricted to [Rall]/[Rothers] — every output passes
    {!Modelcheck.Reduce.certify}, so the reduced-search oracle's
    symmetry legs actually engage (asymmetric programs silently run
    unreduced, which would test nothing). *)

val schedule : Prng.Rng.t -> nprocs:int -> len:int -> int array
(** A random pid sequence with bursts (runs of 1-8 repeats of one pid),
    the shape most likely to drive ticket counters up and expose
    interleaving bugs — plain uniform schedules ride the contention
    sweet spot far more rarely. *)

(** A schedule-fuzzing case: a registry model plus everything the replay
    oracle needs to execute it deterministically. *)
type plan = {
  pl_model : string;  (** {!Harness.Registry} model name *)
  pl_nprocs : int;
  pl_bound : int;
  pl_schedule : int array;
  pl_wrap : bool;  (** wrap too-large stores (real-register behaviour) *)
  pl_flicker : float;  (** weak-register read-anomaly probability; 0 = off *)
  pl_flicker_model : Regsem.Model.t;
      (** value domain of flickered reads ([Regular] or [Safe]);
          irrelevant when [pl_flicker = 0] *)
  pl_crash : float;  (** per-step crash probability; 0 = off *)
  pl_seed : int;  (** drives crash/flicker/alternative randomness *)
}

val plan :
  ?flicker_model:Regsem.Model.t ->
  Prng.Rng.t ->
  models:string list ->
  nprocs:int ->
  bound:int ->
  max_len:int ->
  plan
(** A random plan over one of [models]: a burst schedule of up to
    [max_len] steps; flicker on ~1/3 of plans, crashes on ~1/4 (the
    oracle only checks replay determinism for those — see
    {!Oracle}).  Flickering plans split ~50/50 between [Regular] and
    [Safe] value domains unless [flicker_model] pins one. *)
