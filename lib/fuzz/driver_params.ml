(* Generation-time knobs shared by the oracles and the driver (kept in
   a leaf module so [Oracle] does not depend on [Driver]). *)

type t = {
  models : string list;  (* registry models the replay oracle draws from *)
  nprocs : int;
  bound : int;
  max_states : int;  (* exploration budget for the engine oracles *)
  sched_len : int;  (* schedule-length budget for the replay oracle *)
  register_model : Regsem.Model.t option;
      (* pin the flicker value domain of generated schedule plans;
         None lets each plan draw Regular or Safe itself *)
}

let default =
  {
    models = [ "bakery_pp"; "peterson2" ];
    nprocs = 2;
    bound = 2;
    max_states = 20_000;
    sched_len = 120;
    register_model = None;
  }
