(** Reproducer files: one shrunk failing case, serialized as a single
    deterministic JSON object.

    A [.repro] records the oracle, the failure tag observed when the
    case was found, a human summary, and the complete case — for a
    schedule case the model name, parameters and pid sequence; for a
    program case the whole program AST ({!Codec}).  [replay] re-executes
    the case through the same oracle and reports whether the verdict
    matches the recorded one, which is what the committed corpus in
    [test/corpus/] asserts on every test run. *)

type t = {
  oracle : Oracle.t;
  tag : string;  (** the failure tag recorded when the case was found *)
  summary : string;
  case : Oracle.case;
}

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result

val to_string : t -> string
(** Compact one-line JSON, byte-deterministic for a given value. *)

val of_string : string -> (t, string) result

val save : dir:string -> name:string -> t -> string
(** Write [<dir>/<name>.repro] (creating [dir] if needed); returns the
    path. *)

val load : string -> (t, string) result

type replay_outcome =
  | Reproduced  (** the oracle failed again with the recorded tag *)
  | Changed of string  (** it failed with a different tag *)
  | Vanished  (** the oracle now passes *)

val pass_tag : string
(** The reserved tag ["pass"]: a corpus entry recorded with it asserts
    the oracle {e passes} on its case — [replay] returns [Reproduced]
    on [Pass] and [Changed tag] if the oracle now fails.  Used for
    regression cases whose interesting behaviour is equivalence itself
    (e.g. reduced-vs-full agreement on a hand-built tie-break program)
    rather than a failure.  The shrinker never emits it: shrunk files
    always record a genuine failure tag. *)

val replay : t -> replay_outcome
