(** Delta-debugging shrinkers for failing fuzz cases.

    Both shrinkers take the failure predicate [still_fails] (true when a
    candidate still reproduces the original failure) and an evaluation
    budget, and return the smallest reproducer found plus the number of
    predicate evaluations spent.  They are deterministic — candidates
    are tried in a fixed order — and terminate: a candidate is only
    accepted if it is strictly smaller under a well-founded size
    measure, and the budget bounds the total predicate calls either
    way. *)

val ddmin :
  still_fails:(int array -> bool) ->
  max_evals:int ->
  int array ->
  int array * int
(** Zeller's ddmin on an int sequence (a schedule): chunk removal with
    doubling granularity, then a single-element elimination pass.  The
    input is assumed to fail; the result still fails and no single
    further chunk/element removal tried within budget makes it fail. *)

val program_size : Mxlang.Ast.program -> int
(** AST node count plus the magnitude bits of integer literals — the
    measure [program] shrinks against. *)

val program :
  still_fails:(Mxlang.Ast.program -> bool) ->
  max_evals:int ->
  Mxlang.Ast.program ->
  Mxlang.Ast.program * int
(** Greedy structural minimization: remove whole steps (retargeting
    dangling gotos to the step that slides into the removed slot), drop
    alternative actions, drop effects, relax guards to [True], and
    collapse right-hand sides to [0].  Every candidate is well-formed by
    construction ({!Mxlang.Validate.check} reports no errors if the
    input had none). *)
