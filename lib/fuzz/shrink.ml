module A = Mxlang.Ast

(* ---------------------------------------------------------------- ddmin *)

let remove_slice a lo len =
  Array.append (Array.sub a 0 lo)
    (Array.sub a (lo + len) (Array.length a - lo - len))

let ddmin ~still_fails ~max_evals input =
  let evals = ref 0 in
  let test a =
    if !evals >= max_evals then false
    else begin
      incr evals;
      still_fails a
    end
  in
  (* Phase 1: chunk removal, halving chunk size. *)
  let cur = ref input in
  let chunk = ref (max 1 (Array.length input / 2)) in
  while !chunk >= 1 && !evals < max_evals do
    let progress = ref true in
    while !progress && !evals < max_evals do
      progress := false;
      let n = Array.length !cur in
      let lo = ref 0 in
      while !lo < n && not !progress && !evals < max_evals do
        let len = min !chunk (Array.length !cur - !lo) in
        if len > 0 && len < Array.length !cur then begin
          let cand = remove_slice !cur !lo len in
          if test cand then begin
            cur := cand;
            progress := true
          end
        end;
        lo := !lo + !chunk
      done
    done;
    if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
  done;
  (* Phase 2: single-element elimination until a fixed point. *)
  let progress = ref true in
  while !progress && !evals < max_evals do
    progress := false;
    let i = ref 0 in
    while !i < Array.length !cur && !evals < max_evals do
      if Array.length !cur > 1 then begin
        let cand = remove_slice !cur !i 1 in
        if test cand then begin
          cur := cand;
          progress := true
        end
        else incr i
      end
      else i := Array.length !cur
    done
  done;
  (!cur, !evals)

(* ------------------------------------------------------- program size *)

let rec expr_size (e : A.expr) =
  match e with
  | Int k -> 1 + (if k = 0 then 0 else 1)
  | N | M | Pid | Qidx | Local _ | Max_arr _ -> 1
  | Rd (_, ix) -> 1 + expr_size ix
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
      1 + expr_size a + expr_size b
  | Ite (c, a, b) -> 1 + bexpr_size c + expr_size a + expr_size b

and bexpr_size (b : A.bexpr) =
  match b with
  | True | False -> 1
  | Not x -> 1 + bexpr_size x
  | And (x, y) | Or (x, y) -> 1 + bexpr_size x + bexpr_size y
  | Cmp (_, x, y) -> 1 + expr_size x + expr_size y
  | Lex_lt ((a, b1), (c, d)) ->
      1 + expr_size a + expr_size b1 + expr_size c + expr_size d
  | Qexists (_, p) | Qall (_, p) -> 1 + bexpr_size p

let action_size (a : A.action) =
  bexpr_size a.guard
  + List.fold_left (fun acc (_, e) -> acc + 1 + expr_size e) 1 a.effects

let program_size (p : A.program) =
  Array.fold_left
    (fun acc (s : A.step) ->
      acc + 1 + List.fold_left (fun acc a -> acc + action_size a) 0 s.actions)
    0 p.steps

(* -------------------------------------------------- program candidates *)

(* Remove step [i], retargeting: targets past [i] slide down; targets of
   [i] itself go to the step that now occupies slot [i] (or the last
   step when [i] was last) — the "fall through to the next label"
   reading, which keeps every target in range. *)
let remove_step (p : A.program) i =
  let n = Array.length p.steps in
  if n <= 1 then None
  else begin
    let n' = n - 1 in
    let remap t = if t > i then t - 1 else if t = i then min i (n' - 1) else t in
    let steps =
      Array.init n' (fun j ->
          let s = p.steps.(if j < i then j else j + 1) in
          {
            s with
            A.actions =
              List.map
                (fun (a : A.action) -> { a with A.target = remap a.target })
                s.actions;
          })
    in
    Some { p with A.steps; init_pc = remap p.init_pc }
  end

let map_step (p : A.program) i f =
  let steps = Array.copy p.steps in
  steps.(i) <- f steps.(i);
  { p with A.steps = steps }

let map_action (s : A.step) j f =
  { s with A.actions = List.mapi (fun k a -> if k = j then f a else a) s.actions }

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* All single-edit smaller candidates of [p], in a fixed order: coarse
   edits (whole steps) first so the greedy loop takes big steps early. *)
let candidates (p : A.program) =
  let out = ref [] in
  let add c = out := c :: !out in
  let nsteps = Array.length p.steps in
  (* collapse right-hand sides / guards / effects / actions *)
  Array.iteri
    (fun i (s : A.step) ->
      List.iteri
        (fun j (a : A.action) ->
          if List.length s.actions > 1 then
            add (map_step p i (fun s -> { s with A.actions = drop_nth s.actions j }));
          if a.guard <> A.True then
            add (map_step p i (fun s -> map_action s j (fun a -> { a with A.guard = A.True })));
          List.iteri
            (fun k (_, e) ->
              add
                (map_step p i (fun s ->
                     map_action s j (fun a ->
                         { a with A.effects = drop_nth a.effects k })));
              if e <> A.Int 0 then
                add
                  (map_step p i (fun s ->
                       map_action s j (fun a ->
                           {
                             a with
                             A.effects =
                               List.mapi
                                 (fun k' (l, e') ->
                                   if k' = k then (l, A.Int 0) else (l, e'))
                                 a.effects;
                           }))))
            a.effects)
        s.actions)
    p.steps;
  for i = nsteps - 1 downto 0 do
    match remove_step p i with Some c -> add c | None -> ()
  done;
  !out (* step removals end up first: coarse before fine *)

let program ~still_fails ~max_evals p0 =
  let evals = ref 0 in
  let cur = ref p0 in
  let cur_size = ref (program_size p0) in
  let progress = ref true in
  while !progress && !evals < max_evals do
    progress := false;
    let rec try_cands = function
      | [] -> ()
      | c :: rest ->
          if !evals >= max_evals then ()
          else begin
            let sz = program_size c in
            if sz < !cur_size then begin
              incr evals;
              if still_fails c then begin
                cur := c;
                cur_size := sz;
                progress := true
              end
              else try_cands rest
            end
            else try_cands rest
          end
    in
    try_cands (candidates !cur)
  done;
  (!cur, !evals)
