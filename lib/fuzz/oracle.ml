module MC = Modelcheck
module A = Mxlang.Ast

type verdict = Pass | Fail of { tag : string; detail : string }

type case =
  | Prog_case of {
      program : A.program;
      nprocs : int;
      bound : int;
      max_states : int;
    }
  | Sched_case of Gen.plan

type t = Compile | Parallel | Sharded | Regsem | Replay | Reduced

let all = [ Compile; Parallel; Sharded; Regsem; Replay; Reduced ]

let name = function
  | Compile -> "compile"
  | Parallel -> "parallel"
  | Sharded -> "sharded"
  | Regsem -> "regsem"
  | Replay -> "replay"
  | Reduced -> "reduced"

let of_name = function
  | "compile" -> Ok Compile
  | "parallel" -> Ok Parallel
  | "sharded" -> Ok Sharded
  | "regsem" -> Ok Regsem
  | "replay" -> Ok Replay
  | "reduced" -> Ok Reduced
  | s ->
      Error
        (Printf.sprintf
           "unknown oracle %S (expected \
            compile|parallel|sharded|regsem|replay|reduced)"
           s)

let fail tag fmt = Printf.ksprintf (fun detail -> Fail { tag; detail }) fmt

(* ------------------------------------------------------- engine oracles *)

let invariants = [ MC.Invariant.mutex; MC.Invariant.no_overflow ]

(* Everything two exploration runs must agree on, as one comparable
   value.  Traces are projected to (pid, step name) so the comparison is
   structural. *)
type run_fingerprint = {
  fp_outcome : string;
  fp_generated : int;
  fp_distinct : int;
  fp_depth : int;
  fp_trace : (int * string) list;
}

let fingerprint (r : MC.Explore.result) =
  let trace =
    match r.outcome with
    | MC.Explore.Violation { trace; _ } | MC.Explore.Deadlock { trace } ->
        List.map (fun (e : MC.Trace.entry) -> (e.pid, e.step_name)) trace
    | MC.Explore.Pass | MC.Explore.Capacity -> []
  in
  {
    fp_outcome = MC.Explore.outcome_tag r.outcome;
    fp_generated = r.stats.generated;
    fp_distinct = r.stats.distinct;
    fp_depth = r.stats.depth;
    fp_trace = trace;
  }

let fp_to_string fp =
  Printf.sprintf "%s generated=%d distinct=%d depth=%d trace=%d" fp.fp_outcome
    fp.fp_generated fp.fp_distinct fp.fp_depth (List.length fp.fp_trace)

let compare_fingerprints ~tag ~left ~right ~exact_trace a b =
  let mismatch what la lb =
    fail (tag ^ ":" ^ what) "%s: %s=[%s] %s=[%s]" what left la right lb
  in
  if a.fp_outcome <> b.fp_outcome then
    mismatch "outcome" (fp_to_string a) (fp_to_string b)
  else if a.fp_distinct <> b.fp_distinct then
    mismatch "distinct" (string_of_int a.fp_distinct) (string_of_int b.fp_distinct)
  else if a.fp_depth <> b.fp_depth then
    mismatch "depth" (string_of_int a.fp_depth) (string_of_int b.fp_depth)
  else if a.fp_generated <> b.fp_generated then
    mismatch "generated" (string_of_int a.fp_generated)
      (string_of_int b.fp_generated)
  else if exact_trace && a.fp_trace <> b.fp_trace then
    mismatch "trace"
      (String.concat ";" (List.map (fun (p, s) -> Printf.sprintf "%d:%s" p s) a.fp_trace))
      (String.concat ";" (List.map (fun (p, s) -> Printf.sprintf "%d:%s" p s) b.fp_trace))
  else Pass

let run_prog_case ~engine ~program ~nprocs ~bound ~max_states =
  let sys = MC.System.make program ~nprocs ~bound in
  match engine with
  | `Interpreted ->
      MC.Explore.run ~interpreted:true ~invariants ~max_states sys
  | `Compiled -> MC.Explore.run ~invariants ~max_states sys
  | `Parallel -> MC.Par_explore.run ~invariants ~max_states ~domains:2 sys
  | `Sharded ->
      (* 3 domains exercises non-power-of-two shard routing; Fp_only
         exercises the replay-based trace reconstruction. *)
      MC.Par_explore.run ~invariants ~max_states ~domains:3
        ~fingerprint_only:true sys

let compile_oracle ~program ~nprocs ~bound ~max_states =
  let reference =
    run_prog_case ~engine:`Interpreted ~program ~nprocs ~bound ~max_states
  in
  let compiled =
    run_prog_case ~engine:`Compiled ~program ~nprocs ~bound ~max_states
  in
  (* The two engines enumerate successors in the same order, so even the
     counterexample trace must match action for action. *)
  compare_fingerprints ~tag:"engine_mismatch" ~left:"interp" ~right:"compiled"
    ~exact_trace:true (fingerprint reference) (fingerprint compiled)

(* The compiled sequential engine vs a parallel configuration ([engine]
   is [`Parallel] for the 2-domain exact table, [`Sharded] for 3 domains
   in fingerprint-only mode). *)
let vs_sequential ~engine ~tag ~program ~nprocs ~bound ~max_states =
  let seq = run_prog_case ~engine:`Compiled ~program ~nprocs ~bound ~max_states in
  let par = run_prog_case ~engine ~program ~nprocs ~bound ~max_states in
  match (seq.outcome, par.outcome) with
  | MC.Explore.Capacity, _ | _, MC.Explore.Capacity ->
      (* the state-count cutoff lands mid-level in one engine and at a
         wave boundary in the other, so anything past it is undecided *)
      Pass
  | MC.Explore.Pass, MC.Explore.Pass ->
      (* exhaustive exploration: the reachable set itself must be
         identical, so every statistic agrees exactly *)
      compare_fingerprints ~tag ~left:"seq" ~right:"par" ~exact_trace:false
        (fingerprint seq) (fingerprint par)
  | ( (MC.Explore.Violation _ | MC.Explore.Deadlock _),
      (MC.Explore.Violation _ | MC.Explore.Deadlock _) ) ->
      (* Both engines report a counterexample.  The sequential explorer
         stops mid-level at the first bad state in insertion order while
         the parallel engine finishes generating its wave, so the state
         counts at detection — and, when one wave holds several bad
         states, which one wins — are engine-specific.  Agreement on
         "this program has a bug" is the sound claim. *)
      Pass
  | _ ->
      fail (tag ^ ":outcome") "seq=[%s] par=[%s]"
        (fp_to_string (fingerprint seq))
        (fp_to_string (fingerprint par))

let parallel_oracle = vs_sequential ~engine:`Parallel ~tag:"par_mismatch"
let sharded_oracle = vs_sequential ~engine:`Sharded ~tag:"sharded_mismatch"

(* ------------------------------------------------------- regsem oracle *)

(* Copy one atomic state into the weak (two-phase) layout: shared cells
   and pcs share offsets by stable numbering, original locals land at
   the front of each process's widened local block, and the appended
   pending slots keep their initial idle form (-1, 0) — which is also
   their form in every quiescent weak state, because commits reset both
   slot halves. *)
let embed_atomic ~atomic_lay ~weak_lay ~weak_init (s : MC.State.packed) =
  let la : MC.State.layout = atomic_lay and lw : MC.State.layout = weak_lay in
  let w = Array.copy weak_init in
  Array.blit s 0 w 0 (la.shared_len + la.nprocs);
  for pid = 0 to la.nprocs - 1 do
    Array.blit s
      (la.locals_off + (pid * la.locals_per))
      w
      (lw.locals_off + (pid * lw.locals_per))
      la.locals_per
  done;
  w

(* Three executable claims tie the weak-register engine to the baseline:
   1. a system built with an explicit [Atomic] model is bit-identical to
      the default build (outcome, counts, and counterexample trace);
   2. under [Safe], the AST interpreter and the compiled closures agree
      exactly (the weak twin of the [Compile] oracle);
   3. every atomic-reachable state embeds into the [Safe]-reachable set —
      weak semantics only add behaviours, they never remove one.  The
      subset leg is skipped when either exploration hits its state
      budget, since a truncated reachable set decides nothing. *)
let regsem_oracle ~program ~nprocs ~bound ~max_states =
  let make model =
    MC.System.make ~register_model:model program ~nprocs ~bound
  in
  let explicit_atomic =
    MC.Explore.run ~invariants ~max_states (make Regsem.Model.Atomic)
  in
  let default_build =
    run_prog_case ~engine:`Compiled ~program ~nprocs ~bound ~max_states
  in
  match
    compare_fingerprints ~tag:"regsem_atomic_mismatch" ~left:"atomic"
      ~right:"default" ~exact_trace:true
      (fingerprint explicit_atomic)
      (fingerprint default_build)
  with
  | Fail _ as f -> f
  | Pass -> (
      let safe_interp =
        MC.Explore.run ~interpreted:true ~invariants ~max_states
          (make Regsem.Model.Safe)
      in
      let safe_compiled =
        MC.Explore.run ~invariants ~max_states (make Regsem.Model.Safe)
      in
      match
        compare_fingerprints ~tag:"regsem_engine_mismatch" ~left:"interp"
          ~right:"compiled" ~exact_trace:true (fingerprint safe_interp)
          (fingerprint safe_compiled)
      with
      | Fail _ as f -> f
      | Pass ->
          let ga, sa = MC.Explore.run_graph ~max_states (make Regsem.Model.Atomic) in
          let gs, ss = MC.Explore.run_graph ~max_states (make Regsem.Model.Safe) in
          if sa.distinct >= max_states || ss.distinct >= max_states then Pass
          else begin
            let atomic_lay = MC.System.layout ga.sys in
            let weak_lay = MC.System.layout gs.sys in
            let weak_init = MC.System.initial gs.sys in
            let verdict = ref Pass in
            (try
               MC.Vec.iteri
                 (fun i s ->
                   let w = embed_atomic ~atomic_lay ~weak_lay ~weak_init s in
                   if gs.id_of w = None then begin
                     verdict :=
                       fail "regsem_not_superset"
                         "atomic state %d of %d is unreachable under the safe \
                          model (atomic distinct %d, safe distinct %d)"
                         i (MC.Vec.length ga.states) sa.distinct ss.distinct;
                     raise Exit
                   end)
                 ga.states
             with Exit -> ());
            !verdict
          end)

(* ------------------------------------------------------- reduced oracle *)

(* Which reduction legs the [Reduced] oracle runs.  Both by default, so
   a corpus .repro stays self-contained; the CLI's [fuzz --reduce]
   narrows it for targeted sessions. *)
let reduced_modes = ref [ MC.Reduce.Sym; MC.Reduce.Sym_por ]

module State_tbl = Hashtbl.Make (struct
  type t = MC.State.packed

  let equal = MC.State.equal
  let hash = MC.State.hash
end)

(* A counterexample is genuine iff it starts at the initial state and
   every later entry is an actual move of the named process with the
   named label.  Reduced searches reconstruct traces by de-canonicalizing
   a quotient path, so this is exactly the claim that could break. *)
let trace_genuine sys (tr : MC.Trace.t) =
  match tr with
  | [] -> false
  | first :: rest ->
      let steps = (MC.System.program sys).A.steps in
      MC.State.equal first.MC.Trace.state (MC.System.initial sys)
      && fst
           (List.fold_left
              (fun (ok, cur) (e : MC.Trace.entry) ->
                if not ok then (false, cur)
                else
                  let hit =
                    List.exists
                      (fun (m : MC.System.move) ->
                        steps.(m.MC.System.from_pc).A.step_name = e.step_name
                        && MC.State.equal m.MC.System.dest e.state)
                      (MC.System.successors_of_pid sys cur e.pid)
                  in
                  (hit, e.state))
              (true, first.MC.Trace.state)
              rest)

let ctrex_of = function
  | MC.Explore.Violation { trace; _ } | MC.Explore.Deadlock { trace } ->
      Some trace
  | MC.Explore.Pass | MC.Explore.Capacity -> None

(* Exhaustive orbit count of the full reachable set, for the exactness
   leg: the quotient search must store one representative per orbit —
   no more (canonization is a true normal form) and no fewer (no orbit
   is lost to the ample filter or a canonization bug). *)
let orbit_count red (g : MC.Explore.graph) =
  let orbits = State_tbl.create 1024 in
  MC.Vec.iter
    (fun s ->
      let c, _ = MC.Reduce.canon red s in
      if not (State_tbl.mem orbits c) then State_tbl.add orbits c ())
    g.states;
  State_tbl.length orbits

(* Reduced-vs-full claims, per enabled mode:
   1. verdict classes agree (Pass vs Pass, bug vs bug); a state-budget
      [Capacity] on either side decides nothing and passes;
   2. on a bug, the reduced counterexample replays as a genuine run of
      the full system in original pids;
   3. on a Pass, the quotient stores at most as many states as the full
      search — and for [Sym] on a certified program (within an orbit
      enumeration budget) {e exactly} one state per orbit of the full
      reachable set. *)
let reduced_oracle ~program ~nprocs ~bound ~max_states =
  let sys = MC.System.make program ~nprocs ~bound in
  let full = MC.Explore.run ~invariants ~max_states sys in
  let certified = Result.is_ok (MC.Reduce.certify program) in
  let orbit_budget = 50_000 in
  let check_mode acc mode =
    match acc with
    | Fail _ -> acc
    | Pass -> (
        let mname = MC.Reduce.mode_to_string mode in
        let red = MC.Explore.run ~invariants ~max_states ~reduce:mode sys in
        match (full.outcome, red.outcome) with
        | MC.Explore.Capacity, _ | _, MC.Explore.Capacity -> Pass
        | MC.Explore.Pass, MC.Explore.Pass ->
            if red.stats.distinct > full.stats.distinct then
              fail "reduced_inflation"
                "%s: quotient stored %d distinct states, full search %d" mname
                red.stats.distinct full.stats.distinct
            else if
              mode = MC.Reduce.Sym && certified
              && full.stats.distinct <= orbit_budget
            then begin
              let g, _ = MC.Explore.run_graph ~max_states sys in
              let n = orbit_count (MC.Reduce.make MC.Reduce.Sym sys) g in
              if n <> red.stats.distinct then
                fail "reduced_orbit_count"
                  "sym: quotient stored %d states but the full reachable set \
                   has %d orbits"
                  red.stats.distinct n
              else Pass
            end
            else Pass
        | ( (MC.Explore.Violation _ | MC.Explore.Deadlock _),
            (MC.Explore.Violation _ | MC.Explore.Deadlock _) ) -> (
            (* Both searches report a bug.  Which bug (and at what depth)
               is mode-specific: the quotient explores a different but
               bug-preserving state graph.  The sound claim is bug/bug
               agreement plus a genuine reduced counterexample. *)
            match ctrex_of red.outcome with
            | Some tr when not (trace_genuine sys tr) ->
                fail "reduced_bogus_trace"
                  "%s: de-canonicalized counterexample (%d entries) does not \
                   replay on the full system"
                  mname (List.length tr)
            | _ -> Pass)
        | _ ->
            fail
              ("reduced_mismatch:" ^ mname)
              "full=[%s] reduced=[%s]"
              (fp_to_string (fingerprint full))
              (fp_to_string (fingerprint red)))
  in
  List.fold_left check_mode Pass !reduced_modes

(* -------------------------------------------------------- replay oracle *)

let sim_config (pl : Gen.plan) =
  let open Schedsim.Runner in
  {
    (default_config ~nprocs:pl.pl_nprocs ~bound:pl.pl_bound) with
    strategy = Schedsim.Scheduler.Replay pl.pl_schedule;
    max_steps = Array.length pl.pl_schedule + 2;
    seed = pl.pl_seed;
    overflow_policy = (if pl.pl_wrap then Wrap else Detect);
    crash =
      (if pl.pl_crash > 0.0 then
         Some
           {
             crash_prob = pl.pl_crash;
             restart_delay = 5;
             only_outside_cs = false;
           }
       else None);
    flicker =
      (if pl.pl_flicker > 0.0 then
         Some
           {
             flicker_prob = pl.pl_flicker;
             flicker_model = pl.pl_flicker_model;
             flicker_slack = 0;
           }
       else None);
  }

let run_plan (pl : Gen.plan) =
  Schedsim.Runner.run (Harness.Registry.find_model pl.pl_model) (sim_config pl)

let executed_steps (r : Schedsim.Runner.result) =
  Array.fold_left
    (fun acc per_pid -> acc + Array.fold_left ( + ) 0 per_pid)
    0 r.label_counts

let results_equal (a : Schedsim.Runner.result) (b : Schedsim.Runner.result) =
  a.outcome = b.outcome && a.steps = b.steps && a.cs_entries = b.cs_entries
  && a.label_counts = b.label_counts
  && a.overflow_events = b.overflow_events
  && a.mutex_violations = b.mutex_violations
  && a.fcfs_inversions = b.fcfs_inversions
  && a.crashes = b.crashes && a.flickers = b.flickers
  && a.final_shared = b.final_shared

(* Walk the model checker's compiled transition system along the same
   pid sequence the simulator replayed.  Returns [None] when the walk
   hits a step with more than one simultaneously-enabled alternative
   (the simulator resolves those randomly, so the comparison would be
   ill-defined); every registry model in the default rotation is
   alternative-deterministic. *)
type walk = {
  w_executed : int;
  w_cs : int array;
  w_shared : int array;
}

let walk_model (pl : Gen.plan) =
  let p = Harness.Registry.find_model pl.pl_model in
  let sys = MC.System.make p ~nprocs:pl.pl_nprocs ~bound:pl.pl_bound in
  let layout = MC.System.layout sys in
  let cs = Array.make pl.pl_nprocs 0 in
  let state = ref (MC.System.initial sys) in
  let executed = ref 0 in
  let ambiguous = ref false in
  (try
     Array.iter
       (fun pid ->
         match MC.System.successors_of_pid sys !state pid with
         | [] -> raise Exit (* sim's Replay also stops here *)
         | [ m ] ->
             let from_pc = MC.State.pc layout !state pid in
             let to_pc = MC.State.pc layout m.MC.System.dest pid in
             if
               MC.System.kind_of_pc sys to_pc = A.Critical
               && MC.System.kind_of_pc sys from_pc <> A.Critical
             then cs.(pid) <- cs.(pid) + 1;
             state := m.MC.System.dest;
             incr executed
         | _ :: _ :: _ ->
             ambiguous := true;
             raise Exit)
       pl.pl_schedule
   with Exit -> ());
  if !ambiguous then None
  else
    Some
      {
        w_executed = !executed;
        w_cs = cs;
        w_shared = MC.State.shared_part layout !state;
      }

let ints_to_string a =
  String.concat "," (Array.to_list (Array.map string_of_int a))

let replay_oracle (pl : Gen.plan) =
  let r1 = run_plan pl in
  let r2 = run_plan pl in
  if not (results_equal r1 r2) then
    fail "replay_nondeterminism"
      "two replays of the same schedule differ (steps %d vs %d, cs [%s] vs [%s])"
      r1.steps r2.steps
      (ints_to_string r1.cs_entries)
      (ints_to_string r2.cs_entries)
  else
    let clean = pl.pl_flicker = 0.0 && pl.pl_crash = 0.0 in
    if not clean then Pass
    else if r1.mutex_violations > 0 then
      fail "mutex_violation"
        "%s violates mutual exclusion under a %d-step schedule (%d violation(s), overflows %d)"
        pl.pl_model (Array.length pl.pl_schedule) r1.mutex_violations
        r1.overflow_events
    else if pl.pl_wrap && r1.overflow_events > 0 then
      (* The simulator wrapped a store; the checker's transition system
         stores the raw value, so the walk comparison is ill-defined. *)
      Pass
    else
      match walk_model pl with
      | None -> Pass (* alternative-ambiguous model: determinism checked only *)
      | Some w ->
          if w.w_executed <> executed_steps r1 then
            fail "model_sim_divergence"
              "%s: checker walk executed %d steps, simulator %d" pl.pl_model
              w.w_executed (executed_steps r1)
          else if w.w_shared <> r1.final_shared then
            fail "model_sim_divergence"
              "%s: final shared memory differs (checker [%s], simulator [%s])"
              pl.pl_model (ints_to_string w.w_shared)
              (ints_to_string r1.final_shared)
          else if w.w_cs <> r1.cs_entries then
            fail "model_sim_divergence"
              "%s: CS entries differ (checker [%s], simulator [%s])"
              pl.pl_model (ints_to_string w.w_cs)
              (ints_to_string r1.cs_entries)
          else Pass

(* ------------------------------------------------------------ dispatch *)

let generate oracle rng (dp : Driver_params.t) =
  match oracle with
  | Compile | Parallel | Sharded | Regsem | Reduced ->
      let params =
        { Gen.g_nprocs = dp.nprocs; g_bound = dp.bound; g_max_steps = 5 }
      in
      let program =
        (* The reduced oracle splits its cases: half from the certified
           pid-symmetric fragment (the symmetry legs engage), half
           unrestricted (exercising the certificate-rejection fallback
           and POR on asymmetric programs). *)
        if oracle = Reduced && Prng.Rng.bool rng then
          Gen.program_symmetric rng params
        else Gen.program rng params
      in
      Prog_case
        {
          program;
          nprocs = dp.nprocs;
          bound = dp.bound;
          max_states = dp.max_states;
        }
  | Replay ->
      Sched_case
        (Gen.plan ?flicker_model:dp.register_model rng ~models:dp.models
           ~nprocs:dp.nprocs ~bound:dp.bound ~max_len:dp.sched_len)

let run oracle case =
  match (oracle, case) with
  | Compile, Prog_case { program; nprocs; bound; max_states } ->
      compile_oracle ~program ~nprocs ~bound ~max_states
  | Parallel, Prog_case { program; nprocs; bound; max_states } ->
      parallel_oracle ~program ~nprocs ~bound ~max_states
  | Sharded, Prog_case { program; nprocs; bound; max_states } ->
      sharded_oracle ~program ~nprocs ~bound ~max_states
  | Regsem, Prog_case { program; nprocs; bound; max_states } ->
      regsem_oracle ~program ~nprocs ~bound ~max_states
  | Reduced, Prog_case { program; nprocs; bound; max_states } ->
      reduced_oracle ~program ~nprocs ~bound ~max_states
  | Replay, Sched_case pl -> replay_oracle pl
  | (Compile | Parallel | Sharded | Regsem | Reduced), Sched_case _ ->
      fail "bad_case" "%s oracle expects a program case" (name oracle)
  | Replay, Prog_case _ -> fail "bad_case" "replay oracle expects a schedule case"

let tag_of = function Pass -> None | Fail { tag; _ } -> Some tag

let shrink oracle case ~max_evals =
  match tag_of (run oracle case) with
  | None -> (case, 0) (* not failing: nothing to shrink *)
  | Some tag -> (
      let fails_same c =
        match run oracle c with
        | Fail { tag = t; _ } -> t = tag
        | Pass -> false
      in
      match case with
      | Sched_case pl ->
          let sched, evals =
            Shrink.ddmin
              ~still_fails:(fun s ->
                fails_same (Sched_case { pl with Gen.pl_schedule = s }))
              ~max_evals pl.Gen.pl_schedule
          in
          (Sched_case { pl with Gen.pl_schedule = sched }, evals)
      | Prog_case pc ->
          let program, evals =
            Shrink.program
              ~still_fails:(fun p ->
                fails_same (Prog_case { pc with program = p }))
              ~max_evals pc.program
          in
          (Prog_case { pc with program }, evals))

let case_size = function
  | Sched_case pl -> Array.length pl.Gen.pl_schedule
  | Prog_case { program; _ } -> Shrink.program_size program
