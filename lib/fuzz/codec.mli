(** JSON serialization of mxlang programs for the fuzzer's [.repro]
    files.

    The encoding is total and the round trip is exact:
    [program_of_json (program_to_json p)] is structurally equal to [p].
    Expressions are encoded as tagged arrays ([["add", a, b]]), so a
    repro file stays diffable and independent of OCaml's value
    representation.  Decoding validates shapes but not program
    well-formedness; callers that execute a decoded program should run
    it through {!Mxlang.Validate} first (the fuzz replayer does). *)

val expr_to_json : Mxlang.Ast.expr -> Telemetry.Json.t
val bexpr_to_json : Mxlang.Ast.bexpr -> Telemetry.Json.t
val program_to_json : Mxlang.Ast.program -> Telemetry.Json.t

val expr_of_json : Telemetry.Json.t -> (Mxlang.Ast.expr, string) result
val bexpr_of_json : Telemetry.Json.t -> (Mxlang.Ast.bexpr, string) result
val program_of_json : Telemetry.Json.t -> (Mxlang.Ast.program, string) result

val program_equal : Mxlang.Ast.program -> Mxlang.Ast.program -> bool
(** Structural equality (the AST contains no functions or cycles). *)
