module J = Telemetry.Json
module A = Mxlang.Ast

(* ------------------------------------------------------------- encode *)

let tag name args = J.Arr (J.Str name :: args)
let num i = J.Num (float_of_int i)

let cmp_to_string = function
  | A.Clt -> "lt"
  | A.Cle -> "le"
  | A.Ceq -> "eq"
  | A.Cne -> "ne"
  | A.Cgt -> "gt"
  | A.Cge -> "ge"

let range_to_string = function
  | A.Rall -> "all"
  | A.Rothers -> "others"
  | A.Rbelow -> "below"
  | A.Rabove -> "above"

let kind_to_string = function
  | A.Noncritical -> "noncritical"
  | A.Entry -> "entry"
  | A.Doorway -> "doorway"
  | A.Waiting -> "waiting"
  | A.Critical -> "critical"
  | A.Exit -> "exit"
  | A.Plain -> "plain"

let rec expr_to_json (e : A.expr) =
  match e with
  | Int i -> tag "int" [ num i ]
  | N -> tag "n" []
  | M -> tag "m" []
  | Pid -> tag "pid" []
  | Qidx -> tag "qidx" []
  | Local l -> tag "local" [ num l ]
  | Rd (v, ix) -> tag "rd" [ num v; expr_to_json ix ]
  | Add (a, b) -> tag "add" [ expr_to_json a; expr_to_json b ]
  | Sub (a, b) -> tag "sub" [ expr_to_json a; expr_to_json b ]
  | Mul (a, b) -> tag "mul" [ expr_to_json a; expr_to_json b ]
  | Mod (a, b) -> tag "mod" [ expr_to_json a; expr_to_json b ]
  | Max_arr v -> tag "max" [ num v ]
  | Ite (c, a, b) -> tag "ite" [ bexpr_to_json c; expr_to_json a; expr_to_json b ]

and bexpr_to_json (b : A.bexpr) =
  match b with
  | True -> tag "true" []
  | False -> tag "false" []
  | Not x -> tag "not" [ bexpr_to_json x ]
  | And (x, y) -> tag "and" [ bexpr_to_json x; bexpr_to_json y ]
  | Or (x, y) -> tag "or" [ bexpr_to_json x; bexpr_to_json y ]
  | Cmp (c, x, y) ->
      tag "cmp" [ J.Str (cmp_to_string c); expr_to_json x; expr_to_json y ]
  | Lex_lt ((a, b1), (c, d)) ->
      tag "lex"
        [ expr_to_json a; expr_to_json b1; expr_to_json c; expr_to_json d ]
  | Qexists (r, p) -> tag "exists" [ J.Str (range_to_string r); bexpr_to_json p ]
  | Qall (r, p) -> tag "forall" [ J.Str (range_to_string r); bexpr_to_json p ]

let lhs_to_json = function
  | A.Sh (v, ix) -> tag "sh" [ num v; expr_to_json ix ]
  | A.Lo l -> tag "lo" [ num l ]

let action_to_json (a : A.action) =
  J.Obj
    [
      ("guard", bexpr_to_json a.guard);
      ( "effects",
        J.Arr
          (List.map
             (fun (l, e) -> J.Arr [ lhs_to_json l; expr_to_json e ])
             a.effects) );
      ("target", num a.target);
    ]

let step_to_json (s : A.step) =
  J.Obj
    [
      ("name", J.Str s.step_name);
      ("kind", J.Str (kind_to_string s.kind));
      ("actions", J.Arr (List.map action_to_json s.actions));
    ]

let int_array a = J.Arr (Array.to_list (Array.map (fun i -> num i) a))
let str_array a = J.Arr (Array.to_list (Array.map (fun s -> J.Str s) a))
let bool_array a = J.Arr (Array.to_list (Array.map (fun b -> J.Bool b) a))

let program_to_json (p : A.program) =
  J.Obj
    [
      ("title", J.Str p.title);
      ("var_names", str_array p.var_names);
      ("var_sizes", int_array p.var_sizes);
      ("per_process", bool_array p.per_process);
      ("bounded", bool_array p.bounded);
      ("local_names", str_array p.local_names);
      ("steps", J.Arr (Array.to_list (Array.map step_to_json p.steps)));
      ("init_shared", int_array p.init_shared);
      ("init_locals", int_array p.init_locals);
      ("init_pc", num p.init_pc);
    ]

(* ------------------------------------------------------------- decode *)

(* Decoding threads a [result] through every field; [let*] keeps the
   shape checks readable. *)
let ( let* ) r f = Result.bind r f

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let to_int = function
  | J.Num f when Float.is_integer f -> Ok (int_of_float f)
  | j -> err "expected integer, got %s" (J.to_string j)

let to_str = function J.Str s -> Ok s | j -> err "expected string, got %s" (J.to_string j)
let to_bool = function J.Bool b -> Ok b | j -> err "expected bool, got %s" (J.to_string j)

let rec map_m f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_m f rest in
      Ok (y :: ys)

let to_array f j =
  match j with
  | J.Arr l ->
      let* xs = map_m f l in
      Ok (Array.of_list xs)
  | _ -> err "expected array, got %s" (J.to_string j)

let cmp_of_string = function
  | "lt" -> Ok A.Clt
  | "le" -> Ok A.Cle
  | "eq" -> Ok A.Ceq
  | "ne" -> Ok A.Cne
  | "gt" -> Ok A.Cgt
  | "ge" -> Ok A.Cge
  | s -> err "unknown comparison %S" s

let range_of_string = function
  | "all" -> Ok A.Rall
  | "others" -> Ok A.Rothers
  | "below" -> Ok A.Rbelow
  | "above" -> Ok A.Rabove
  | s -> err "unknown range %S" s

let kind_of_string = function
  | "noncritical" -> Ok A.Noncritical
  | "entry" -> Ok A.Entry
  | "doorway" -> Ok A.Doorway
  | "waiting" -> Ok A.Waiting
  | "critical" -> Ok A.Critical
  | "exit" -> Ok A.Exit
  | "plain" -> Ok A.Plain
  | s -> err "unknown step kind %S" s

let rec expr_of_json j =
  match j with
  | J.Arr (J.Str t :: args) -> (
      match (t, args) with
      | "int", [ i ] ->
          let* i = to_int i in
          Ok (A.Int i)
      | "n", [] -> Ok A.N
      | "m", [] -> Ok A.M
      | "pid", [] -> Ok A.Pid
      | "qidx", [] -> Ok A.Qidx
      | "local", [ l ] ->
          let* l = to_int l in
          Ok (A.Local l)
      | "rd", [ v; ix ] ->
          let* v = to_int v in
          let* ix = expr_of_json ix in
          Ok (A.Rd (v, ix))
      | "add", [ a; b ] -> bin (fun a b -> A.Add (a, b)) a b
      | "sub", [ a; b ] -> bin (fun a b -> A.Sub (a, b)) a b
      | "mul", [ a; b ] -> bin (fun a b -> A.Mul (a, b)) a b
      | "mod", [ a; b ] -> bin (fun a b -> A.Mod (a, b)) a b
      | "max", [ v ] ->
          let* v = to_int v in
          Ok (A.Max_arr v)
      | "ite", [ c; a; b ] ->
          let* c = bexpr_of_json c in
          let* a = expr_of_json a in
          let* b = expr_of_json b in
          Ok (A.Ite (c, a, b))
      | _ -> err "bad expression node %S/%d" t (List.length args))
  | _ -> err "expected expression, got %s" (J.to_string j)

and bin mk a b =
  let* a = expr_of_json a in
  let* b = expr_of_json b in
  Ok (mk a b)

and bexpr_of_json j =
  match j with
  | J.Arr (J.Str t :: args) -> (
      match (t, args) with
      | "true", [] -> Ok A.True
      | "false", [] -> Ok A.False
      | "not", [ x ] ->
          let* x = bexpr_of_json x in
          Ok (A.Not x)
      | "and", [ x; y ] ->
          let* x = bexpr_of_json x in
          let* y = bexpr_of_json y in
          Ok (A.And (x, y))
      | "or", [ x; y ] ->
          let* x = bexpr_of_json x in
          let* y = bexpr_of_json y in
          Ok (A.Or (x, y))
      | "cmp", [ c; x; y ] ->
          let* c = to_str c in
          let* c = cmp_of_string c in
          let* x = expr_of_json x in
          let* y = expr_of_json y in
          Ok (A.Cmp (c, x, y))
      | "lex", [ a; b; c; d ] ->
          let* a = expr_of_json a in
          let* b = expr_of_json b in
          let* c = expr_of_json c in
          let* d = expr_of_json d in
          Ok (A.Lex_lt ((a, b), (c, d)))
      | "exists", [ r; p ] ->
          let* r = to_str r in
          let* r = range_of_string r in
          let* p = bexpr_of_json p in
          Ok (A.Qexists (r, p))
      | "forall", [ r; p ] ->
          let* r = to_str r in
          let* r = range_of_string r in
          let* p = bexpr_of_json p in
          Ok (A.Qall (r, p))
      | _ -> err "bad boolean node %S/%d" t (List.length args))
  | _ -> err "expected boolean expression, got %s" (J.to_string j)

let lhs_of_json j =
  match j with
  | J.Arr [ J.Str "sh"; v; ix ] ->
      let* v = to_int v in
      let* ix = expr_of_json ix in
      Ok (A.Sh (v, ix))
  | J.Arr [ J.Str "lo"; l ] ->
      let* l = to_int l in
      Ok (A.Lo l)
  | _ -> err "expected lhs, got %s" (J.to_string j)

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> err "missing field %S in %s" name (J.to_string j)

let action_of_json j =
  let* guard = field "guard" j in
  let* guard = bexpr_of_json guard in
  let* effects = field "effects" j in
  let* effects =
    match effects with
    | J.Arr l ->
        map_m
          (function
            | J.Arr [ lhs; e ] ->
                let* lhs = lhs_of_json lhs in
                let* e = expr_of_json e in
                Ok (lhs, e)
            | x -> err "expected [lhs, expr] pair, got %s" (J.to_string x))
          l
    | _ -> err "effects must be an array"
  in
  let* target = field "target" j in
  let* target = to_int target in
  Ok { A.guard; effects; target }

let step_of_json j =
  let* name = field "name" j in
  let* step_name = to_str name in
  let* kind = field "kind" j in
  let* kind = to_str kind in
  let* kind = kind_of_string kind in
  let* actions = field "actions" j in
  let* actions =
    match actions with
    | J.Arr l -> map_m action_of_json l
    | _ -> err "actions must be an array"
  in
  Ok { A.step_name; kind; actions }

let program_of_json j =
  let* title = field "title" j in
  let* title = to_str title in
  let* var_names = field "var_names" j in
  let* var_names = to_array to_str var_names in
  let* var_sizes = field "var_sizes" j in
  let* var_sizes = to_array to_int var_sizes in
  let* per_process = field "per_process" j in
  let* per_process = to_array to_bool per_process in
  let* bounded = field "bounded" j in
  let* bounded = to_array to_bool bounded in
  let* local_names = field "local_names" j in
  let* local_names = to_array to_str local_names in
  let* steps = field "steps" j in
  let* steps = to_array step_of_json steps in
  let* init_shared = field "init_shared" j in
  let* init_shared = to_array to_int init_shared in
  let* init_locals = field "init_locals" j in
  let* init_locals = to_array to_int init_locals in
  let* init_pc = field "init_pc" j in
  let* init_pc = to_int init_pc in
  let nvars = Array.length var_names in
  if
    Array.length var_sizes <> nvars
    || Array.length per_process <> nvars
    || Array.length bounded <> nvars
    || Array.length init_shared <> nvars
  then err "variable tables disagree in length"
  else
    Ok
      {
        A.title;
        nvars;
        var_names;
        var_sizes;
        per_process;
        bounded;
        nlocals = Array.length local_names;
        local_names;
        steps;
        init_shared;
        init_locals;
        init_pc;
      }

let program_equal (a : A.program) (b : A.program) = a = b
