(** The fuzzing loop: generate → check → shrink → emit.

    For each case index the driver derives an independent PRNG from
    [(seed, index)], draws one case per selected oracle, runs the
    oracle, and on failure shrinks the case and (optionally) writes a
    [.repro] file.  Everything observable in the returned summary is a
    pure function of the configuration — no timestamps, rates or paths
    that vary between runs — so two runs with the same seed and count
    print byte-identical summaries (the CLI's determinism contract).

    [budget_s] is a soft wall-clock cutoff checked between cases, used
    by the [@fuzz-smoke] alias; when it fires the summary says so and
    reports how many cases actually ran. *)

type config = {
  seed : int;
  count : int;  (** cases per oracle *)
  oracles : Oracle.t list;
  params : Driver_params.t;
  shrink_evals : int;  (** predicate-evaluation budget per shrink *)
  out_dir : string option;  (** write [.repro] files here on failure *)
  budget_s : float option;
  progress : Telemetry.Progress.t option;
  metrics : Telemetry.Metrics.t option;
}

val default_config : seed:int -> count:int -> config
(** All oracles, {!Driver_params.default}, 400 shrink evaluations, no
    output directory, no budget, telemetry off. *)

type failure = {
  f_oracle : Oracle.t;
  f_index : int;  (** case index within the run *)
  f_tag : string;
  f_summary : string;
  f_size_before : int;
  f_size_after : int;
  f_shrink_evals : int;
  f_file : string option;  (** where the [.repro] was written *)
}

type summary = {
  s_config : config;
  s_cases : (Oracle.t * int) list;  (** cases actually run, per oracle *)
  s_failures : failure list;
  s_budget_exhausted : bool;
}

val run : config -> summary

val summary_lines : summary -> string list
(** Deterministic human-readable report (one string per line). *)
