module J = Telemetry.Json

type t = {
  oracle : Oracle.t;
  tag : string;
  summary : string;
  case : Oracle.case;
}

let ( let* ) r f = Result.bind r f
let err fmt = Printf.ksprintf (fun m -> Error m) fmt
let num i = J.Num (float_of_int i)

let case_to_json = function
  | Oracle.Prog_case { program; nprocs; bound; max_states } ->
      J.Obj
        [
          ("kind", J.Str "prog");
          ("nprocs", num nprocs);
          ("bound", num bound);
          ("max_states", num max_states);
          ("program", Codec.program_to_json program);
        ]
  | Oracle.Sched_case pl ->
      J.Obj
        [
          ("kind", J.Str "sched");
          ("model", J.Str pl.Gen.pl_model);
          ("nprocs", num pl.pl_nprocs);
          ("bound", num pl.pl_bound);
          ("wrap", J.Bool pl.pl_wrap);
          ("flicker", J.Num pl.pl_flicker);
          ("flicker_model", J.Str (Regsem.Model.to_string pl.pl_flicker_model));
          ("crash", J.Num pl.pl_crash);
          ("seed", num pl.pl_seed);
          ( "schedule",
            J.Arr (Array.to_list (Array.map (fun i -> num i) pl.pl_schedule)) );
        ]

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> err "missing field %S" name

let to_int = function
  | J.Num f when Float.is_integer f -> Ok (int_of_float f)
  | j -> err "expected integer, got %s" (J.to_string j)

let to_str = function
  | J.Str s -> Ok s
  | j -> err "expected string, got %s" (J.to_string j)

let int_field name j =
  let* v = field name j in
  to_int v

let str_field name j =
  let* v = field name j in
  to_str v

let case_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "prog" ->
      let* nprocs = int_field "nprocs" j in
      let* bound = int_field "bound" j in
      let* max_states = int_field "max_states" j in
      let* pj = field "program" j in
      let* program = Codec.program_of_json pj in
      Ok (Oracle.Prog_case { program; nprocs; bound; max_states })
  | "sched" ->
      let* model = str_field "model" j in
      let* nprocs = int_field "nprocs" j in
      let* bound = int_field "bound" j in
      let* wrap =
        match J.member "wrap" j with
        | Some (J.Bool b) -> Ok b
        | _ -> err "missing or non-bool field \"wrap\""
      in
      let* flicker =
        match Option.bind (J.member "flicker" j) J.to_num with
        | Some f -> Ok f
        | None -> err "missing field \"flicker\""
      in
      (* Absent in format-1 files written before weak-register plans
         existed; those all have flicker 0, so the default is inert. *)
      let* flicker_model =
        match J.member "flicker_model" j with
        | None -> Ok Regsem.Model.Safe
        | Some (J.Str s) -> Regsem.Model.of_string s
        | Some x -> err "non-string field \"flicker_model\": %s" (J.to_string x)
      in
      let* crash =
        match Option.bind (J.member "crash" j) J.to_num with
        | Some f -> Ok f
        | None -> err "missing field \"crash\""
      in
      let* seed = int_field "seed" j in
      let* sched = field "schedule" j in
      let* schedule =
        match sched with
        | J.Arr l ->
            let* xs =
              List.fold_right
                (fun x acc ->
                  let* acc = acc in
                  let* i = to_int x in
                  Ok (i :: acc))
                l (Ok [])
            in
            Ok (Array.of_list xs)
        | _ -> err "schedule must be an array"
      in
      Ok
        (Oracle.Sched_case
           {
             Gen.pl_model = model;
             pl_nprocs = nprocs;
             pl_bound = bound;
             pl_schedule = schedule;
             pl_wrap = wrap;
             pl_flicker = flicker;
             pl_flicker_model = flicker_model;
             pl_crash = crash;
             pl_seed = seed;
           })
  | k -> err "unknown case kind %S" k

let to_json r =
  J.Obj
    [
      ("format", num 1);
      ("oracle", J.Str (Oracle.name r.oracle));
      ("tag", J.Str r.tag);
      ("summary", J.Str r.summary);
      ("case", case_to_json r.case);
    ]

let of_json j =
  let* format = int_field "format" j in
  if format <> 1 then
    err
      "repro format %d is not readable by this build (it reads format 1); \
       regenerate the file with a matching bakery_cli"
      format
  else
    let* oname = str_field "oracle" j in
    let* oracle = Oracle.of_name oname in
    let* tag = str_field "tag" j in
    let* summary = str_field "summary" j in
    let* cj = field "case" j in
    let* case = case_of_json cj in
    Ok { oracle; tag; summary; case }

let to_string r = J.to_string (to_json r)

let of_string s =
  let* j = J.parse s in
  of_json j

let save ~dir ~name r =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".repro") in
  let oc = open_out path in
  output_string oc (to_string r);
  output_char oc '\n';
  close_out oc;
  path

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string (String.trim s)

type replay_outcome = Reproduced | Changed of string | Vanished

let pass_tag = "pass"

let replay r =
  match (Oracle.run r.oracle r.case, r.tag = pass_tag) with
  | Oracle.Pass, true -> Reproduced
  | Oracle.Fail { tag; _ }, true -> Changed tag
  | Oracle.Pass, false -> Vanished
  | Oracle.Fail { tag; _ }, false ->
      if tag = r.tag then Reproduced else Changed tag
