(** Differential oracles: executable equivalence claims between the
    repo's independent engines.

    Each oracle takes a {!case} and returns a {!verdict}.  A [Fail]
    carries a short stable [tag] (compared when replaying a corpus
    entry — it must not embed volatile data like timings or addresses)
    and a human [detail].

    - [Compile]: {!Modelcheck.Explore.run} with the AST interpreter vs
      the staged compiler must produce the same outcome, state counts,
      depth and counterexample trace (guards claims C1/C2: the engine
      that certifies them is exercised against its reference semantics).
    - [Parallel]: sequential vs level-synchronized parallel BFS.  On a
      [Pass] both engines explored the whole reachable set, so outcome,
      distinct-state count, generated count and depth must agree
      exactly; on a counterexample the engines stop at
      engine-specific points (mid-level vs end of wave), so the claim
      checked is that both find {e some} bug — one engine passing
      while the other reports a violation or deadlock is a failure.
      Guards the same claims under the parallel engine.
    - [Sharded]: the same claim against the sharded engine's stress
      configuration — 3 domains (non-power-of-two shard routing) in
      fingerprint-only mode, where the visited set keeps 63-bit
      fingerprints and counterexamples are rebuilt by replaying
      recorded moves.  Catches routing, hand-off, quiescence and
      replay bugs that the 2-domain exact-table oracle cannot see.
    - [Regsem]: the weak-register engine against the baseline.  An
      explicitly-[Atomic] {!Modelcheck.System} must be bit-identical to
      the default build (outcome, state counts, counterexample trace);
      under [Safe] the AST interpreter and the compiled closures must
      agree exactly; and every atomic-reachable state must embed into
      the [Safe]-reachable set (weak semantics only add behaviours).
      The subset leg is skipped when either exploration hits its state
      budget.
    - [Replay]: a schedule executed by the simulator must (a) replay
      bit-identically, (b) agree with the model checker's compiled
      transition system walked along the same pid sequence, and (c) on
      clean plans (no crash/flicker injection) never violate mutual
      exclusion — the property that catches the naive-modulo exemplar
      and wrapped-register Bakery (claims C2/C4).
    - [Reduced]: the reduced search ({!Modelcheck.Reduce}) against the
      full search, per mode in {!reduced_modes}.  Verdict classes must
      agree (a state-budget [Capacity] on either side decides nothing);
      on a bug the de-canonicalized counterexample must replay as a
      genuine run of the full system; on a Pass the quotient must store
      at most as many states as the full search, and — for [Sym] on a
      program the static certificate accepts, within an enumeration
      budget — exactly one representative per orbit of the full
      reachable set.  Half the generated cases come from
      {!Gen.program_symmetric} so the symmetry legs actually engage. *)

type verdict = Pass | Fail of { tag : string; detail : string }

type case =
  | Prog_case of {
      program : Mxlang.Ast.program;
      nprocs : int;
      bound : int;
      max_states : int;
    }
  | Sched_case of Gen.plan

type t = Compile | Parallel | Sharded | Regsem | Replay | Reduced

val all : t list
val name : t -> string
val of_name : string -> (t, string) result

val reduced_modes : Modelcheck.Reduce.mode list ref
(** Reduction legs the [Reduced] oracle runs, [[Sym; Sym_por]] by
    default so corpus repros are self-contained.  The CLI's
    [fuzz --reduce] narrows it ([none] empties it, turning the oracle
    into a no-op) for targeted sessions; replaying a corpus entry
    should leave the default in place. *)

val generate : t -> Prng.Rng.t -> Driver_params.t -> case
(** Draw a case of the shape this oracle consumes. *)

val run : t -> case -> verdict

val shrink : t -> case -> max_evals:int -> case * int
(** Minimize a failing case, preserving its failure tag.  Schedule
    cases shrink the pid sequence (ddmin); program cases shrink the
    AST.  Returns the evaluation count actually spent. *)

val case_size : case -> int
(** Schedule length or program AST size — what shrinking reduces. *)

val sim_config : Gen.plan -> Schedsim.Runner.config
(** The exact simulator configuration the replay oracle runs a plan
    under (Replay strategy, seed, wrap policy, crash/flicker setup).
    Exposed so the CLI explainer can re-execute a [.repro] schedule
    with event recording switched on and get the same run. *)
