type config = {
  seed : int;
  count : int;
  oracles : Oracle.t list;
  params : Driver_params.t;
  shrink_evals : int;
  out_dir : string option;
  budget_s : float option;
  progress : Telemetry.Progress.t option;
  metrics : Telemetry.Metrics.t option;
}

let default_config ~seed ~count =
  {
    seed;
    count;
    oracles = Oracle.all;
    params = Driver_params.default;
    shrink_evals = 400;
    out_dir = None;
    budget_s = None;
    progress = None;
    metrics = None;
  }

type failure = {
  f_oracle : Oracle.t;
  f_index : int;
  f_tag : string;
  f_summary : string;
  f_size_before : int;
  f_size_after : int;
  f_shrink_evals : int;
  f_file : string option;
}

type summary = {
  s_config : config;
  s_cases : (Oracle.t * int) list;
  s_failures : failure list;
  s_budget_exhausted : bool;
}

(* One independent generator per (seed, case index): cases are
   reproducible in isolation and unaffected by how much entropy earlier
   cases consumed.  Splitmix seeding makes distinct (seed, index) pairs
   yield independent streams without any skip loop. *)
let case_rng seed index =
  let r = Prng.Rng.create ((seed * 0x9E3779B9) lxor index) in
  ignore (Prng.Rng.next r);
  Prng.Rng.create (Prng.Rng.next r)

let first_line s = match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let run cfg =
  let t0 = Unix.gettimeofday () in
  let cases = List.map (fun o -> (o, ref 0)) cfg.oracles in
  let failures = ref [] in
  let budget_exhausted = ref false in
  let metric name v =
    match cfg.metrics with
    | None -> ()
    | Some m -> Telemetry.Metrics.add (Telemetry.Metrics.counter m name) v
  in
  let tick index =
    match cfg.progress with
    | None -> ()
    | Some p ->
        Telemetry.Progress.tick p (fun () ->
            [
              ("case", Telemetry.Json.Num (float_of_int index));
              ( "failures",
                Telemetry.Json.Num (float_of_int (List.length !failures)) );
            ])
  in
  (try
     for index = 0 to cfg.count - 1 do
       (match cfg.budget_s with
       | Some b when Unix.gettimeofday () -. t0 > b ->
           budget_exhausted := true;
           raise Exit
       | _ -> ());
       tick index;
       List.iter
         (fun (oracle, ran) ->
           let rng = case_rng cfg.seed (index * 131 + Hashtbl.hash (Oracle.name oracle)) in
           let case = Oracle.generate oracle rng cfg.params in
           incr ran;
           metric ("fuzz." ^ Oracle.name oracle ^ ".cases") 1;
           match Oracle.run oracle case with
           | Oracle.Pass -> ()
           | Oracle.Fail { tag; detail } ->
               metric "fuzz.failures" 1;
               let size_before = Oracle.case_size case in
               let shrunk, evals =
                 Oracle.shrink oracle case ~max_evals:cfg.shrink_evals
               in
               metric "fuzz.shrink_evals" evals;
               let detail =
                 (* re-run the shrunk case for an up-to-date summary *)
                 match Oracle.run oracle shrunk with
                 | Oracle.Fail { detail = d; _ } -> d
                 | Oracle.Pass -> detail
               in
               let repro =
                 {
                   Repro.oracle;
                   tag;
                   summary = first_line detail;
                   case = shrunk;
                 }
               in
               let file =
                 Option.map
                   (fun dir ->
                     Repro.save ~dir
                       ~name:
                         (Printf.sprintf "%s_seed%d_case%d" (Oracle.name oracle)
                            cfg.seed index)
                       repro)
                   cfg.out_dir
               in
               failures :=
                 {
                   f_oracle = oracle;
                   f_index = index;
                   f_tag = tag;
                   f_summary = first_line detail;
                   f_size_before = size_before;
                   f_size_after = Oracle.case_size shrunk;
                   f_shrink_evals = evals;
                   f_file = file;
                 }
                 :: !failures)
         cases
     done
   with Exit -> ());
  (match cfg.progress with
  | None -> ()
  | Some p ->
      Telemetry.Progress.force p (fun () ->
          [
            ( "cases",
              Telemetry.Json.Num
                (float_of_int
                   (List.fold_left (fun acc (_, r) -> acc + !r) 0 cases)) );
            ( "failures",
              Telemetry.Json.Num (float_of_int (List.length !failures)) );
          ]));
  {
    s_config = cfg;
    s_cases = List.map (fun (o, r) -> (o, !r)) cases;
    s_failures = List.rev !failures;
    s_budget_exhausted = !budget_exhausted;
  }

let summary_lines s =
  let cfg = s.s_config in
  let header =
    Printf.sprintf "fuzz: seed=%d count=%d oracles=%s models=%s n=%d m=%d"
      cfg.seed cfg.count
      (String.concat "," (List.map Oracle.name cfg.oracles))
      (String.concat "," cfg.params.Driver_params.models)
      cfg.params.Driver_params.nprocs cfg.params.Driver_params.bound
  in
  let per_oracle =
    List.map
      (fun (o, n) ->
        let f =
          List.length (List.filter (fun f -> f.f_oracle = o) s.s_failures)
        in
        Printf.sprintf "  %-8s %d cases, %d failure%s" (Oracle.name o) n f
          (if f = 1 then "" else "s"))
      s.s_cases
  in
  let fail_lines =
    List.map
      (fun f ->
        Printf.sprintf "  FAIL %s case %d: %s (shrunk %d -> %d in %d evals)%s"
          (Oracle.name f.f_oracle) f.f_index f.f_tag f.f_size_before
          f.f_size_after f.f_shrink_evals
          (match f.f_file with None -> "" | Some p -> " -> " ^ p))
      s.s_failures
  in
  let total_cases = List.fold_left (fun acc (_, n) -> acc + n) 0 s.s_cases in
  let footer =
    Printf.sprintf "total: %d cases, %d failures%s" total_cases
      (List.length s.s_failures)
      (if s.s_budget_exhausted then " (budget exhausted)" else "")
  in
  (header :: per_oracle) @ fail_lines @ [ footer ]
