type sample = { at_s : float; stats : (string * int) list }

type report = {
  samples : int;
  virtual_bound : int option;
  overflow_at_s : float option;
  overflow_ticket : int option;
  resets : int;
  storms : int;
  storm_max_s : float;
}

type t = {
  stop_flag : bool Atomic.t;
  sampler : sample list Domain.t; (* newest first *)
  vb : int option;
}

let take_sample ~t0 ~on_sample (inst : Locks.Lock_intf.instance) =
  let s = { at_s = Telemetry.Clock.now_s () -. t0; stats = inst.stats () } in
  (match on_sample with Some f -> f s | None -> ());
  s

let start ?(interval_s = 1e-3) ?virtual_bound ?on_sample
    (inst : Locks.Lock_intf.instance) =
  let stop_flag = Atomic.make false in
  let t0 = Telemetry.Clock.now_s () in
  let sampler =
    Domain.spawn (fun () ->
        let acc = ref [] in
        while not (Atomic.get stop_flag) do
          acc := take_sample ~t0 ~on_sample inst :: !acc;
          Unix.sleepf interval_s
        done;
        (* Final sample after stop, so a run shorter than one interval
           still records the end state. *)
        take_sample ~t0 ~on_sample inst :: !acc)
  in
  { stop_flag; sampler; vb = virtual_bound }

let resets_of s = Option.value ~default:0 (List.assoc_opt "resets" s.stats)

let analyse ~virtual_bound samples =
  let overflow_at_s, overflow_ticket =
    match virtual_bound with
    | None -> (None, None)
    | Some m ->
        (* Strictly greater: a width-M register holds values up to M
           (Registers.Bounded traps on v > M), and Bakery++'s tickets
           legitimately touch M without overflowing. *)
        let rec go = function
          | [] -> (None, None)
          | s :: rest -> (
              match List.assoc_opt "peak_ticket" s.stats with
              | Some t when t > m -> (Some s.at_s, Some t)
              | _ -> go rest)
        in
        go samples
  in
  let storms, storm_max_s, resets =
    match samples with
    | [] -> (0, 0.0, 0)
    | first :: _ ->
        let last_r = ref (resets_of first) in
        let last_t = ref first.at_s in
        let in_storm = ref false in
        let storm_start = ref 0.0 in
        let storms = ref 0 in
        let max_s = ref 0.0 in
        List.iter
          (fun s ->
            let r = resets_of s in
            if r > !last_r then begin
              if not !in_storm then begin
                in_storm := true;
                incr storms;
                (* The storm began somewhere after the previous quiet
                   sample; charge from there (one-interval resolution). *)
                storm_start := !last_t
              end;
              max_s := Float.max !max_s (s.at_s -. !storm_start)
            end
            else in_storm := false;
            last_r := r;
            last_t := s.at_s)
          samples;
        let final = List.fold_left (fun _ s -> resets_of s) 0 samples in
        (!storms, !max_s, final - resets_of first)
  in
  {
    samples = List.length samples;
    virtual_bound;
    overflow_at_s;
    overflow_ticket;
    resets;
    storms;
    storm_max_s;
  }

let stop t =
  Atomic.set t.stop_flag true;
  let newest_first = Domain.join t.sampler in
  analyse ~virtual_bound:t.vb (List.rev newest_first)
