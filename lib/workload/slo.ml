type target = { min_goodput_frac : float; max_p99_ns : int }

let default = { min_goodput_frac = 0.5; max_p99_ns = 50_000_000 }

type verdict = { pass : bool; reasons : string list }

let check t ~offered ~goodput ~p99_ns =
  let reasons = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> reasons := m :: !reasons) fmt in
  if goodput < t.min_goodput_frac *. offered then
    fail "goodput %.0f ops/s below %.0f%% of offered %.0f ops/s" goodput
      (100.0 *. t.min_goodput_frac)
      offered;
  if p99_ns > t.max_p99_ns then
    fail "p99 %.3f ms above target %.3f ms"
      (float_of_int p99_ns /. 1e6)
      (float_of_int t.max_p99_ns /. 1e6);
  { pass = !reasons = []; reasons = List.rev !reasons }
