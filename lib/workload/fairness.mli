(** Fairness queries over a flushed {!Locks.Ring} event log.

    These read the merged, time-sorted entry list that every open-loop
    run collects anyway, so fairness costs nothing extra at runtime —
    it is computed after the domains have joined. *)

val inversions : Locks.Ring.entry list -> int
(** FCFS inversions: the number of (acquirer, waiter) pairs where the
    waiter entered the acquire protocol first but was overtaken.  0 for
    a strictly first-come-first-served lock (bakery family); grows with
    barging (tas/ttas).  Entries whose [Acquire_start] was lost to ring
    overflow are skipped, not guessed. *)

val max_stall_ns : Locks.Ring.entry list -> int
(** The longest gap between consecutive [Acquired] events — the worst
    service interruption any waiter observed, whatever its cause
    (reset storm, preemption, convoy). *)

val jain : int array -> float
(** Jain's fairness index over per-domain completion counts:
    [(Σx)² / (n·Σx²)], 1.0 for a perfectly even split, → 1/n when one
    domain monopolises.  1.0 for empty or all-zero input. *)
