(** Critical-section workload shapes, shared by the closed-loop
    throughput experiments and the open-loop traffic generator.

    A shape is "how long a process holds the lock" and "how long it
    thinks between attempts", both expressed as iterations of an opaque
    arithmetic spin (so the optimizer cannot delete it). *)

type duration =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)

type t = {
  cs : duration;  (** work inside the critical section *)
  think : duration;  (** noncritical work between attempts *)
}

val contended : t
(** Tiny CS, no think time: maximal lock pressure. *)

val balanced : t
(** Short CS, comparable think time. *)

val coarse : t
(** Long CS: the lock is a small fraction of the cycle. *)

val spin : int -> int
(** [spin n] performs [n] iterations of integer arithmetic and returns a
    value that must be consumed (fold it into an accumulator) so the loop
    cannot be optimized away. *)

val draw : Prng.Rng.t -> duration -> int
