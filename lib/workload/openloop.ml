type budget = Ops of int | Seconds of float

type result = {
  issued : int;
  completed : int;
  behind : int;
  abandoned : int;
  elapsed_s : float;
  offered : float;
  goodput : float;
  registry : Telemetry.Metrics.t;
  lock_stats : (string * int) list;
  per_domain : int array;
  entries : Locks.Ring.entry list;
  ring_dropped : int;
  sched_fp : string;
}

let wait_barrier barrier =
  Atomic.decr barrier;
  while Atomic.get barrier > 0 do
    Registers.Spin.relax ()
  done

(* Sleep off the bulk of a long wait, then spin (yielding) across the
   last millisecond so the op starts close to its intended instant
   without burning a core at low offered rates. *)
let wait_until due =
  let slack = due -. Telemetry.Clock.now_s () in
  if slack > 2e-3 then Unix.sleepf (slack -. 1e-3);
  while Telemetry.Clock.now_s () < due do
    Registers.Spin.relax ()
  done

let run ?(shape = Shape.contended) ?(seed = 1) ?(ring_capacity = 8192)
    ?(grace_s = 2.0) ?on_op ?registry ~rate ~budget
    (inst : Locks.Lock_intf.instance) ~nprocs =
  if nprocs < 1 then invalid_arg "Workload.Openloop.run: nprocs must be >= 1";
  if rate <= 0.0 then invalid_arg "Workload.Openloop.run: rate must be > 0";
  let per_rate = rate /. float_of_int nprocs in
  (* Schedules are fully precomputed: the hot loop draws nothing, so
     lock behaviour cannot perturb the arrival process it is measured
     under (and the schedule is a pure function of seed/rate/budget). *)
  let scheds =
    Array.init nprocs (fun i ->
        let rng = Prng.Rng.create (seed + (31 * i)) in
        match budget with
        | Ops n ->
            let mine = (n / nprocs) + if i < n mod nprocs then 1 else 0 in
            Poisson.schedule rng ~rate:per_rate ~n:mine
        | Seconds d -> Poisson.schedule_until rng ~rate:per_rate ~horizon_s:d)
  in
  let sched_fp = Poisson.fingerprint scheds in
  let issued =
    Array.fold_left (fun a s -> a + Array.length s) 0 scheds
  in
  (* Intended-start cells: each domain writes only its own slot, and the
     latency wrapper reads it from inside that same domain's acquire, so
     plain stores suffice. *)
  let intended = Array.make nprocs 0.0 in
  let ring = Locks.Ring.create ~capacity:ring_capacity ~nprocs () in
  (* A caller-supplied registry makes the acquire histogram visible to
     concurrent samplers (the flight recorder) while the run is live. *)
  let registry =
    match registry with Some r -> r | None -> Telemetry.Metrics.create ()
  in
  let timed =
    Locks.Latency.instrument ~registry
      ~mode:(Locks.Latency.Open_loop (fun pid -> intended.(pid)))
      (Locks.Ring.wrap ring inst)
  in
  let abandoned = Atomic.make 0 in
  let deadline =
    match budget with Seconds d -> Some (d +. grace_s) | Ops _ -> None
  in
  let barrier = Atomic.make (nprocs + 1) in
  let t_start = Atomic.make 0.0 in
  let worker i =
    let rng = Prng.Rng.create (seed + 1_000_003 + i) in
    let sink = ref 0 in
    let completed = ref 0 in
    let late = ref 0 in
    let sched = scheds.(i) in
    let n = Array.length sched in
    wait_barrier barrier;
    let t0 = Atomic.get t_start in
    let k = ref 0 in
    let give_up = ref false in
    while !k < n && not !give_up do
      let due = t0 +. sched.(!k) in
      (match deadline with
      | Some dl when Telemetry.Clock.now_s () -. t0 > dl ->
          (* Hopelessly behind a wall-clock budget: abandoning the tail
             is recorded, never hidden — the scorecard reports it. *)
          ignore (Atomic.fetch_and_add abandoned (n - !k));
          give_up := true
      | _ ->
          if Telemetry.Clock.now_s () > due then incr late else wait_until due;
          intended.(i) <- due;
          timed.acquire i;
          sink := !sink + Shape.spin (Shape.draw rng shape.Shape.cs);
          timed.release i;
          incr completed;
          (match on_op with Some f -> f () | None -> ());
          sink := !sink + Shape.spin (Shape.draw rng shape.Shape.think);
          incr k)
    done;
    ignore (Sys.opaque_identity !sink);
    (!completed, !late)
  in
  let domains =
    Array.init nprocs (fun i -> Domain.spawn (fun () -> worker i))
  in
  Atomic.set t_start (Telemetry.Clock.now_s ());
  wait_barrier barrier;
  let results = Array.map Domain.join domains in
  let elapsed = Telemetry.Clock.now_s () -. Atomic.get t_start in
  let per_domain = Array.map fst results in
  let completed = Array.fold_left ( + ) 0 per_domain in
  let behind = Array.fold_left (fun a (_, l) -> a + l) 0 results in
  {
    issued;
    completed;
    behind;
    abandoned = Atomic.get abandoned;
    elapsed_s = elapsed;
    offered = rate;
    goodput = (if elapsed > 0.0 then float_of_int completed /. elapsed else 0.0);
    registry;
    lock_stats = timed.stats ();
    per_domain;
    entries = Locks.Ring.flush ring;
    ring_dropped = Locks.Ring.dropped ring;
    sched_fp;
  }
