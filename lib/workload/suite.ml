type resolver = string -> nprocs:int -> Locks.Lock_intf.instance

let stat stats name = Option.value ~default:0 (List.assoc_opt name stats)

let run_cell (resolve : resolver) ?(shape = Shape.contended)
    ?(slo = Slo.default) ?virtual_bound ?(sample_interval_s = 1e-3) ?progress
    ?flight ~algo ~nprocs ~rate ~budget ~seed () =
  let inst = resolve algo ~nprocs in
  let live_ops = Atomic.make 0 in
  (* Shared with Openloop so the flight hook can read live acquire
     percentiles mid-run, not just the post-mortem stats. *)
  let registry = Telemetry.Metrics.create () in
  (* The flight recorder rides the same observatory sampler as the
     dashboard: one snapshot per poll, lock stats namespaced under the
     instance, registry histograms flattened by Recorder.of_metrics. *)
  let feed_flight =
    match flight with
    | None -> fun _ -> ()
    | Some recorder ->
        fun (s : Observatory.sample) ->
          Telemetry.Metrics.observe_gc registry;
          let named =
            List.map
              (fun (k, v) ->
                ( "lock." ^ inst.Locks.Lock_intf.instance_name ^ "." ^ k,
                  float_of_int v ))
              s.Observatory.stats
          in
          Obs.Recorder.record recorder
            (named
            @ [ ("ops", float_of_int (Atomic.get live_ops)) ]
            @ Obs.Recorder.of_metrics registry)
  in
  (* The dashboard rides the sampler domain: every poll offers a line to
     the rate-limited reporter, which emits at most one per interval. *)
  let dashboard =
    Option.map
      (fun prog (s : Observatory.sample) ->
        Telemetry.Progress.poll prog (fun () ->
            [
              ("algo", Telemetry.Json.Str algo);
              ("domains", Telemetry.Json.Num (float_of_int nprocs));
              ( "ops",
                Telemetry.Json.Num (float_of_int (Atomic.get live_ops)) );
              ( "peak_ticket",
                Telemetry.Json.Num
                  (float_of_int (stat s.Observatory.stats "peak_ticket")) );
              ( "resets",
                Telemetry.Json.Num
                  (float_of_int (stat s.Observatory.stats "resets")) );
            ]
            @ Telemetry.Metrics.gc_fields ()))
      progress
  in
  let on_sample =
    match (flight, dashboard) with
    | None, None -> None
    | _ ->
        Some
          (fun s ->
            feed_flight s;
            match dashboard with Some f -> f s | None -> ())
  in
  let obs =
    Observatory.start ~interval_s:sample_interval_s ?virtual_bound ?on_sample
      inst
  in
  let r =
    Openloop.run ~shape ~seed ~rate ~budget ~registry inst ~nprocs
      ~on_op:(fun () -> Atomic.incr live_ops)
  in
  let rep = Observatory.stop obs in
  let p99_ns = stat r.Openloop.lock_stats "acq_p99_ns" in
  let verdict = Slo.check slo ~offered:rate ~goodput:r.goodput ~p99_ns in
  {
    Scorecard.algo;
    nprocs;
    rate;
    ops = (match budget with Openloop.Ops n -> Some n | _ -> None);
    duration_s = (match budget with Openloop.Seconds d -> Some d | _ -> None);
    seed;
    sched_fp = r.sched_fp;
    issued = r.issued;
    completed = r.completed;
    behind = r.behind;
    abandoned = r.abandoned;
    goodput = r.goodput;
    p50_ns = stat r.lock_stats "acq_p50_ns";
    p95_ns = stat r.lock_stats "acq_p95_ns";
    p99_ns;
    p999_ns = stat r.lock_stats "acq_p999_ns";
    max_ns = stat r.lock_stats "acq_max_ns";
    max_stall_ns = Fairness.max_stall_ns r.entries;
    inversions = Fairness.inversions r.entries;
    jain = Fairness.jain r.per_domain;
    ring_dropped = r.ring_dropped;
    slo_pass = verdict.Slo.pass;
    slo_reasons = verdict.Slo.reasons;
    overflow =
      Option.map
        (fun vb ->
          {
            Scorecard.virtual_bound = vb;
            overflow_at_s = rep.Observatory.overflow_at_s;
            overflow_ticket = rep.Observatory.overflow_ticket;
            resets = rep.Observatory.resets;
            storms = rep.Observatory.storms;
            storm_max_s = rep.Observatory.storm_max_s;
          })
        virtual_bound;
  }

(* ------------------------------------------------- BENCH_locks.json *)

let load_rows path =
  match open_in path with
  | exception Sys_error _ -> Ok []
  | ic -> (
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match Telemetry.Json.parse s with
      | Ok (Telemetry.Json.Arr vs) -> Ok vs
      | Ok _ -> Error (path ^ ": exists but is not a JSON array")
      | Error e -> Error (path ^ ": unparseable (" ^ e ^ ")"))

let write_rows path rows =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i v ->
      Printf.fprintf oc "  %s%s\n"
        (Telemetry.Json.to_string v)
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

let append_rows path fresh =
  (* Read-merge-write: a malformed prior file is preserved nowhere, but
     the caller was warned by [load_rows]; an absent one is just empty
     history.  Never clobber parseable history. *)
  let prior = match load_rows path with Ok vs -> vs | Error _ -> [] in
  write_rows path (prior @ fresh)

(* ---------------------------------------------------- regress gate *)

type gate = {
  g_key : string;
  g_metric : string;
  g_fresh : float;
  g_best : float;  (** nan when no prior row matches *)
  g_ratio : float;  (** fresh-vs-best, oriented so < threshold is bad *)
  g_fail : bool;
}

let threshold = 0.85

let key_of ~algo ~nprocs ~rate = Printf.sprintf "%s/d%d/r%g" algo nprocs rate

let row_key j =
  let open Telemetry.Json in
  match (member "algo" j, member "domains" j, member "rate" j) with
  | Some (Str a), Some (Num d), Some (Num r) ->
      Some (key_of ~algo:a ~nprocs:(int_of_float d) ~rate:r)
  | _ -> None

let regress ~prior (cards : Scorecard.t list) =
  let prior_num key field ~better =
    List.fold_left
      (fun best j ->
        if row_key j <> Some key then best
        else
          match Telemetry.Json.(member field j) with
          | Some (Telemetry.Json.Num x) when x > 0.0 ->
              if Float.is_nan best then x else better best x
          | _ -> best)
      nan prior
  in
  List.concat_map
    (fun (c : Scorecard.t) ->
      let key = key_of ~algo:c.algo ~nprocs:c.nprocs ~rate:c.rate in
      let judge metric fresh best ~ratio =
        let r = if Float.is_nan best then nan else ratio fresh best in
        {
          g_key = key;
          g_metric = metric;
          g_fresh = fresh;
          g_best = best;
          g_ratio = r;
          g_fail = (not (Float.is_nan r)) && r < threshold;
        }
      in
      [
        (* Goodput: higher is better, gate on fresh/best. *)
        judge "goodput" c.goodput
          (prior_num key "goodput" ~better:Float.max)
          ~ratio:(fun fresh best -> fresh /. best);
        (* p99: lower is better, gate on best/fresh against the same
           threshold so one knob governs both directions.  The gate only
           arms once the fresh p99 exceeds the default SLO ceiling:
           below it, tail movement is bucket-resolution scheduler noise
           on a shared host (observed 200us..2ms across identical runs),
           and the best-prior comparison would ratchet down to the
           luckiest run ever recorded.  Past the ceiling the run is in
           pathology territory (livelock, reset storm, convoy) and the
           relative comparison is meaningful. *)
        judge "p99_ns"
          (float_of_int c.p99_ns)
          (prior_num key "p99_ns" ~better:Float.min)
          ~ratio:(fun fresh best ->
            if fresh <= float_of_int Slo.default.max_p99_ns then 1.0
            else best /. fresh);
      ])
    cards
