(** Seeded Poisson arrival schedules for the open-loop generator.

    Arrivals are exponential interarrivals drawn from {!Prng.Rng}
    (splitmix64), so a schedule is a pure function of (seed, rate,
    budget): the same inputs produce byte-identical arrays on every
    machine.  Per-domain generators at rate R/P superpose to an
    aggregate Poisson process at rate R, which is how {!Openloop}
    shards one offered load across domains without coordination. *)

val interarrival : Prng.Rng.t -> rate:float -> float
(** One Exp(rate) draw, in seconds.  Raises [Invalid_argument] when
    [rate <= 0]. *)

val schedule : Prng.Rng.t -> rate:float -> n:int -> float array
(** [n] absolute arrival offsets (seconds from the run origin),
    strictly increasing. *)

val schedule_until : Prng.Rng.t -> rate:float -> horizon_s:float -> float array
(** Every arrival strictly before [horizon_s]. *)

val fingerprint : float array array -> string
(** 64-bit FNV-1a over the bit patterns of all per-domain schedules,
    rendered as 16 hex digits.  Equal fingerprints mean float-for-float
    identical schedules — the scorecard's determinism witness. *)
