(** The per-run SLO scorecard: everything one open-loop run against one
    lock produced, as a record and as a JSON row for
    [BENCH_locks.json].

    The codec round-trips ([of_json (to_json c)] restores every field),
    so the bench smoke test can prove the persisted schema stays
    parseable, and the regress gate reads prior rows without guessing. *)

type overflow = {
  virtual_bound : int;  (** the register width M being judged against *)
  overflow_at_s : float option;
      (** time-to-overflow: when [peak_ticket] crossed M, if it did *)
  overflow_ticket : int option;
  resets : int;  (** Bakery++ reset-counter advance over the run *)
  storms : int;
  storm_max_s : float;
}

type t = {
  algo : string;
  nprocs : int;
  rate : float;  (** offered aggregate arrival rate, ops/s *)
  ops : int option;  (** operation budget, when one was set *)
  duration_s : float option;  (** wall-clock budget, when one was set *)
  seed : int;
  sched_fp : string;  (** {!Poisson.fingerprint} — determinism witness *)
  issued : int;
  completed : int;
  behind : int;
  abandoned : int;
  goodput : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
  max_stall_ns : int;
  inversions : int;
  jain : float;
  ring_dropped : int;
  slo_pass : bool;
  slo_reasons : string list;
  overflow : overflow option;
}

val kind : string
(** The row discriminator ["lock_scorecard"]; {!of_json} rejects rows
    with any other [kind]. *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result

val deterministic_fields : t -> (string * string) list
(** The non-timing fields two runs with identical (seed, rate, budget,
    domains) must agree on byte-for-byte: algo, domains, rate, ops,
    seed, sched_fp, issued.  Rendered as strings so callers can compare
    or print them without caring about types. *)
