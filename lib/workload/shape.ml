type duration = Fixed of int | Uniform of int * int

type t = { cs : duration; think : duration }

let contended = { cs = Fixed 5; think = Fixed 0 }
let balanced = { cs = Fixed 20; think = Uniform (10, 50) }
let coarse = { cs = Fixed 500; think = Uniform (50, 150) }

let spin n =
  let acc = ref 1 in
  for i = 1 to n do
    acc := (!acc * 48271) + i land 0x3fffffff
  done;
  !acc

let draw rng = function
  | Fixed n -> n
  | Uniform (a, b) ->
      if b < a then invalid_arg "Workload.Shape.draw: empty range";
      a + Prng.Rng.int rng (b - a + 1)
