let interarrival rng ~rate =
  if rate <= 0.0 then invalid_arg "Workload.Poisson: rate must be > 0";
  let u = Prng.Rng.float rng 1.0 in
  (* Inverse-CDF of Exp(rate).  [log1p (-. u)] instead of [log (1. -. u)]
     keeps precision when u is tiny, and u < 1.0 keeps the log finite. *)
  -.log1p (-.u) /. rate

let schedule rng ~rate ~n =
  if n < 0 then invalid_arg "Workload.Poisson.schedule: n < 0";
  let a = Array.make n 0.0 in
  let t = ref 0.0 in
  for i = 0 to n - 1 do
    t := !t +. interarrival rng ~rate;
    a.(i) <- !t
  done;
  a

let schedule_until rng ~rate ~horizon_s =
  let buf = ref [] in
  let count = ref 0 in
  let t = ref (interarrival rng ~rate) in
  while !t < horizon_s do
    buf := !t :: !buf;
    incr count;
    t := !t +. interarrival rng ~rate
  done;
  let a = Array.make !count 0.0 in
  List.iteri (fun i v -> a.(!count - 1 - i) <- v) !buf;
  a

(* FNV-1a over the raw bit patterns, so two schedules fingerprint equal
   iff they are float-for-float identical — the determinism witness the
   scorecard carries. *)
let fingerprint scheds =
  let h = ref 0xcbf29ce484222325L in
  let mix bits = h := Int64.mul (Int64.logxor !h bits) 0x100000001b3L in
  Array.iter
    (fun sched ->
      mix (Int64.of_int (Array.length sched));
      Array.iter (fun t -> mix (Int64.bits_of_float t)) sched)
    scheds;
  Printf.sprintf "%016Lx" !h
