(** Declared service-level objectives for a lock under open-loop load,
    and the pass/fail verdict a scorecard carries.

    Two dimensions cover the failure modes that matter for a lock
    service: sustained goodput (can it keep up with the offered rate at
    all?) and tail latency measured without coordinated omission (does
    keeping up cost unbounded queueing for the unlucky?). *)

type target = {
  min_goodput_frac : float;
      (** completed-ops rate must reach this fraction of the offered
          arrival rate *)
  max_p99_ns : int;  (** open-loop p99 acquire latency ceiling *)
}

val default : target
(** Goodput ≥ 50% of offered, p99 ≤ 50 ms — deliberately loose so it
    only trips on pathologies (livelock, reset storms, convoys), not on
    machine noise. *)

type verdict = { pass : bool; reasons : string list }
(** [reasons] is empty exactly when [pass]; otherwise one
    human-readable sentence per violated dimension. *)

val check : target -> offered:float -> goodput:float -> p99_ns:int -> verdict
