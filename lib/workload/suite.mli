(** Orchestration: one observed open-loop run per (algorithm, domains,
    rate, budget) cell, scorecard persistence, and the goodput/p99
    regress comparison the bench gate applies.

    The lock zoo lives in [Harness.Registry], which depends on this
    library — so cells take a [resolver] instead of naming the registry,
    and the CLI/bench layers plug it in. *)

type resolver = string -> nprocs:int -> Locks.Lock_intf.instance

val run_cell :
  resolver ->
  ?shape:Shape.t ->
  ?slo:Slo.target ->
  ?virtual_bound:int ->
  ?sample_interval_s:float ->
  ?progress:Telemetry.Progress.t ->
  ?flight:Obs.Recorder.t ->
  algo:string ->
  nprocs:int ->
  rate:float ->
  budget:Openloop.budget ->
  seed:int ->
  unit ->
  Scorecard.t
(** Resolve the lock, start the {!Observatory} (with [virtual_bound]
    when overflow telemetry is wanted), drive {!Openloop.run}, stop the
    sampler, judge the {!Slo} (default {!Slo.default}) and assemble the
    {!Scorecard}.  [progress] attaches the live dashboard: one
    rate-limited line per reporter interval carrying live op count,
    peak ticket, resets and GC gauges.  [flight] records one flight
    sample per observatory poll — lock stats namespaced as
    [lock.<instance>.<stat>], the live op count, GC gauges and the
    evolving acquire-latency percentiles. *)

(** {1 BENCH_locks.json} — same merge discipline as the model-checker
    datapoint file: read prior rows, append fresh ones, never clobber
    parseable history. *)

val load_rows : string -> (Telemetry.Json.t list, string) result
(** [Ok []] when the file is absent; [Error reason] when it exists but
    is not a JSON array (callers warn and continue — skip, not crash). *)

val write_rows : string -> Telemetry.Json.t list -> unit
val append_rows : string -> Telemetry.Json.t list -> unit

(** {1 Regress gate} *)

type gate = {
  g_key : string;  (** algo/domains/rate cell identifier *)
  g_metric : string;  (** ["goodput"] or ["p99_ns"] *)
  g_fresh : float;
  g_best : float;  (** best prior (max goodput / min p99); nan if none *)
  g_ratio : float;
      (** oriented so that < {!threshold} means regression, whichever
          direction the metric improves in; nan when no prior *)
  g_fail : bool;
}

val threshold : float
(** 0.85 — the same >15% bar the model-checker states/sec gate uses. *)

val key_of : algo:string -> nprocs:int -> rate:float -> string

val regress : prior:Telemetry.Json.t list -> Scorecard.t list -> gate list
(** Two gates per fresh card (goodput up, p99 down) against the best
    prior row with the same algo/domains/rate key.  Prior rows missing
    the key fields or carrying non-positive values are skipped, never
    fatal.  The p99 gate arms only when the fresh p99 exceeds
    {!Slo.default}'s ceiling — sub-ceiling tail movement is
    bucket-resolution scheduler noise, already policed by the SLO
    verdict itself. *)
