(** The overflow observatory: a sampler domain that polls a lock's own
    [stats] counters while traffic runs, then condenses the time series
    into overflow telemetry.

    Two phenomena from the paper become measurable in flight:

    - {b time-to-overflow} for the unbounded bakery: the first sample
      where [peak_ticket] crosses a *virtual* bound M answers "when
      would a width-M register have overflowed?" without trapping — the
      run keeps going and the scorecard still gets latency numbers.
    - {b reset storms} for Bakery++: a storm is a maximal run of
      consecutive samples whose [resets] counter advanced; the report
      carries how many storms occurred and how long the worst one
      lasted.

    Sampling reads plain counters cross-domain — single-word reads, so
    values are atomic-per-field telemetry, not a consistent snapshot;
    exactly what a production metrics scraper sees. *)

type sample = { at_s : float;  (** seconds since {!start} *) stats : (string * int) list }

type report = {
  samples : int;
  virtual_bound : int option;  (** echoed from {!start} *)
  overflow_at_s : float option;
      (** first sample time with [peak_ticket > virtual_bound] — strict,
          because a width-M register holds values up to M and Bakery++
          tickets legitimately touch M *)
  overflow_ticket : int option;  (** the crossing value itself *)
  resets : int;  (** total [resets] counter advance over the window *)
  storms : int;
  storm_max_s : float;  (** one-interval resolution *)
}

type t

val start :
  ?interval_s:float ->
  ?virtual_bound:int ->
  ?on_sample:(sample -> unit) ->
  Locks.Lock_intf.instance ->
  t
(** Spawn the sampler domain polling [inst.stats] every [interval_s]
    (default 1 ms).  [on_sample] runs on the sampler domain after each
    poll — the hook the live dashboard hangs a rate-limited
    {!Telemetry.Progress} line on. *)

val stop : t -> report
(** Signal, join (one final sample is always taken), analyse. *)

val analyse : virtual_bound:int option -> sample list -> report
(** The pure condensation step, exposed for tests: oldest-first samples
    in, report out. *)
