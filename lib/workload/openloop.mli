(** Open-loop traffic generation against one lock instance.

    Closed-loop drivers ({!Harness.Throughput}) issue the next request
    only after the previous one finishes, so a stalled lock quietly
    throttles its own load — coordinated omission.  This driver
    precomputes a seeded Poisson arrival schedule per domain
    ({!Poisson}, per-domain rate = aggregate / nprocs) and charges
    every operation's latency from its *intended* start
    ({!Locks.Latency.Open_loop}): queueing behind a stall lands in the
    histogram whether or not the caller was physically able to call
    [acquire] on time. *)

type budget =
  | Ops of int
      (** run exactly this many operations in total (split round-robin
          across domains) — every non-timing result field is then a
          pure function of (seed, rate, budget, nprocs) *)
  | Seconds of float  (** schedule every arrival inside this horizon *)

type result = {
  issued : int;  (** operations the schedule intended *)
  completed : int;  (** operations actually driven to release *)
  behind : int;  (** completed ops that started after their intended time *)
  abandoned : int;
      (** schedule tail dropped by the wall-clock deadline
          ([Seconds] budget + grace only; 0 under [Ops]) *)
  elapsed_s : float;
  offered : float;  (** the configured aggregate arrival rate, ops/s *)
  goodput : float;  (** completed / elapsed, ops/s *)
  registry : Telemetry.Metrics.t;
      (** carries [lock.<name>.acquire_s] — open-loop latencies *)
  lock_stats : (string * int) list;
      (** underlying lock counters with [acq_p50_ns] .. [acq_max_ns]
          appended by {!Locks.Latency} *)
  per_domain : int array;  (** completions per domain *)
  entries : Locks.Ring.entry list;  (** merged event log for {!Fairness} *)
  ring_dropped : int;
  sched_fp : string;  (** {!Poisson.fingerprint} of the full schedule *)
}

val run :
  ?shape:Shape.t ->
  ?seed:int ->
  ?ring_capacity:int ->
  ?grace_s:float ->
  ?on_op:(unit -> unit) ->
  ?registry:Telemetry.Metrics.t ->
  rate:float ->
  budget:budget ->
  Locks.Lock_intf.instance ->
  nprocs:int ->
  result
(** [run ~rate ~budget inst ~nprocs] drives [nprocs] domains.  Waits
    sleep off all but the last millisecond before an intended start and
    spin (yielding) across the remainder.  [grace_s] (default 2)
    extends a [Seconds] budget before the tail is abandoned.  [on_op]
    (default none) runs after every completed operation on the worker
    domain — the live counter hook for dashboards; keep it cheap.
    [registry] (default a fresh one) hosts the acquire histogram, so a
    caller can watch [lock.<name>.acquire_s] percentiles evolve while
    the run is still going (the flight-recorder hook). *)
