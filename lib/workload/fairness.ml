(* FCFS inversions: at the moment a process acquires, every *other*
   process still waiting whose protocol entry (Acquire_start) predates
   the acquirer's own entry was overtaken — count one inversion per such
   waiter.  Waiter sets are at most nprocs long, so the quadratic scan
   is negligible next to the ring flush that produced [entries]. *)
let inversions entries =
  let pending = ref [] in
  let inv = ref 0 in
  List.iter
    (fun (e : Locks.Ring.entry) ->
      match e.e_op with
      | Locks.Ring.Acquire_start ->
          pending := !pending @ [ (e.e_pid, e.e_t_ns) ]
      | Locks.Ring.Acquired -> (
          match List.assoc_opt e.e_pid !pending with
          | None -> () (* its start fell off the ring; nothing to judge *)
          | Some t0 ->
              let rest = List.filter (fun (p, _) -> p <> e.e_pid) !pending in
              List.iter (fun (_, t) -> if t < t0 then incr inv) rest;
              pending := rest)
      | Locks.Ring.Released -> ())
    entries;
  !inv

let max_stall_ns entries =
  let last = ref None in
  let best = ref 0 in
  List.iter
    (fun (e : Locks.Ring.entry) ->
      match e.e_op with
      | Locks.Ring.Acquired ->
          (match !last with
          | Some t when e.e_t_ns - t > !best -> best := e.e_t_ns - t
          | _ -> ());
          last := Some e.e_t_ns
      | _ -> ())
    entries;
  !best

let jain counts =
  let n = Array.length counts in
  if n = 0 then 1.0
  else begin
    let s = Array.fold_left (fun a c -> a +. float_of_int c) 0.0 counts in
    let s2 =
      Array.fold_left
        (fun a c -> a +. (float_of_int c *. float_of_int c))
        0.0 counts
    in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)
  end
