type overflow = {
  virtual_bound : int;
  overflow_at_s : float option;
  overflow_ticket : int option;
  resets : int;
  storms : int;
  storm_max_s : float;
}

type t = {
  algo : string;
  nprocs : int;
  rate : float;
  ops : int option;
  duration_s : float option;
  seed : int;
  sched_fp : string;
  issued : int;
  completed : int;
  behind : int;
  abandoned : int;
  goodput : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
  max_stall_ns : int;
  inversions : int;
  jain : float;
  ring_dropped : int;
  slo_pass : bool;
  slo_reasons : string list;
  overflow : overflow option;
}

let kind = "lock_scorecard"

let to_json (c : t) =
  let open Telemetry.Json in
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  let num_i n = Num (float_of_int n) in
  let overflow_json (o : overflow) =
    Obj
      ([
         ("virtual_bound", num_i o.virtual_bound);
         ("resets", num_i o.resets);
         ("storms", num_i o.storms);
         ("storm_max_s", Num o.storm_max_s);
       ]
      @ opt "overflow_at_s" (fun s -> Num s) o.overflow_at_s
      @ opt "overflow_ticket" num_i o.overflow_ticket)
  in
  Obj
    ([
       ("kind", Str kind);
       ("algo", Str c.algo);
       ("domains", num_i c.nprocs);
       ("rate", Num c.rate);
     ]
    @ opt "ops" num_i c.ops
    @ opt "duration_s" (fun s -> Num s) c.duration_s
    @ [
        ("seed", num_i c.seed);
        ("sched_fp", Str c.sched_fp);
        ("issued", num_i c.issued);
        ("completed", num_i c.completed);
        ("behind", num_i c.behind);
        ("abandoned", num_i c.abandoned);
        ("goodput", Num c.goodput);
        ("p50_ns", num_i c.p50_ns);
        ("p95_ns", num_i c.p95_ns);
        ("p99_ns", num_i c.p99_ns);
        ("p999_ns", num_i c.p999_ns);
        ("max_ns", num_i c.max_ns);
        ("max_stall_ns", num_i c.max_stall_ns);
        ("inversions", num_i c.inversions);
        ("jain", Num c.jain);
        ("ring_dropped", num_i c.ring_dropped);
        ("slo_pass", Bool c.slo_pass);
        ("slo_reasons", Arr (List.map (fun r -> Str r) c.slo_reasons));
      ]
    @ opt "overflow" overflow_json c.overflow)

let ( let* ) = Result.bind

let of_json j =
  let open Telemetry.Json in
  let str name =
    match member name j with
    | Some (Str s) -> Ok s
    | _ -> Error (Printf.sprintf "scorecard: missing string %S" name)
  in
  let num_in obj name =
    match member name obj with
    | Some (Num x) -> Ok x
    | _ -> Error (Printf.sprintf "scorecard: missing number %S" name)
  in
  let num = num_in j in
  let int name = Result.map int_of_float (num name) in
  let opt_int name =
    match member name j with Some (Num x) -> Some (int_of_float x) | _ -> None
  in
  let opt_num name =
    match member name j with Some (Num x) -> Some x | _ -> None
  in
  let* k = str "kind" in
  if k <> kind then Error (Printf.sprintf "scorecard: kind %S, wanted %S" k kind)
  else
    let* algo = str "algo" in
    let* nprocs = Result.map int_of_float (num "domains") in
    let* rate = num "rate" in
    let* seed = int "seed" in
    let* sched_fp = str "sched_fp" in
    let* issued = int "issued" in
    let* completed = int "completed" in
    let* behind = int "behind" in
    let* abandoned = int "abandoned" in
    let* goodput = num "goodput" in
    let* p50_ns = int "p50_ns" in
    let* p95_ns = int "p95_ns" in
    let* p99_ns = int "p99_ns" in
    let* p999_ns = int "p999_ns" in
    let* max_ns = int "max_ns" in
    let* max_stall_ns = int "max_stall_ns" in
    let* inversions = int "inversions" in
    let* jain = num "jain" in
    let* ring_dropped = int "ring_dropped" in
    let* slo_pass =
      match member "slo_pass" j with
      | Some (Bool b) -> Ok b
      | _ -> Error "scorecard: missing bool \"slo_pass\""
    in
    let* slo_reasons =
      match member "slo_reasons" j with
      | Some (Arr rs) ->
          let strs =
            List.filter_map (function Str s -> Some s | _ -> None) rs
          in
          if List.length strs = List.length rs then Ok strs
          else Error "scorecard: non-string slo reason"
      | _ -> Error "scorecard: missing array \"slo_reasons\""
    in
    let* overflow =
      match member "overflow" j with
      | None | Some Null -> Ok None
      | Some (Obj _ as o) ->
          let* virtual_bound =
            Result.map int_of_float (num_in o "virtual_bound")
          in
          let* resets = Result.map int_of_float (num_in o "resets") in
          let* storms = Result.map int_of_float (num_in o "storms") in
          let* storm_max_s = num_in o "storm_max_s" in
          let o_int name =
            match member name o with
            | Some (Num x) -> Some (int_of_float x)
            | _ -> None
          in
          let o_num name =
            match member name o with Some (Num x) -> Some x | _ -> None
          in
          Ok
            (Some
               {
                 virtual_bound;
                 overflow_at_s = o_num "overflow_at_s";
                 overflow_ticket = o_int "overflow_ticket";
                 resets;
                 storms;
                 storm_max_s;
               })
      | Some _ -> Error "scorecard: \"overflow\" is not an object"
    in
    Ok
      {
        algo;
        nprocs;
        rate;
        ops = opt_int "ops";
        duration_s = opt_num "duration_s";
        seed;
        sched_fp;
        issued;
        completed;
        behind;
        abandoned;
        goodput;
        p50_ns;
        p95_ns;
        p99_ns;
        p999_ns;
        max_ns;
        max_stall_ns;
        inversions;
        jain;
        ring_dropped;
        slo_pass;
        slo_reasons;
        overflow;
      }

(* The fields a double run with the same seed must reproduce exactly.
   Everything clock-derived (latencies, goodput, behind, storms) is
   excluded by construction. *)
let deterministic_fields (c : t) =
  [
    ("algo", c.algo);
    ("domains", string_of_int c.nprocs);
    ("rate", Printf.sprintf "%g" c.rate);
    ("ops", match c.ops with Some n -> string_of_int n | None -> "-");
    ("seed", string_of_int c.seed);
    ("sched_fp", c.sched_fp);
    ("issued", string_of_int c.issued);
  ]
