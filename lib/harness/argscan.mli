(** Minimal argv scanning for the bench driver.

    The driver's options ([--quick], [--json FILE]) ride alongside
    positional experiment ids, so they are plucked out of the raw list
    before dispatch.  This lives in the library (rather than inline in
    [bench/main.ml]) so the parsing rules are unit-testable: a value
    flag given twice, left dangling at the end of the line, or
    interleaved with another option ([--json --quick out.json]) is an
    error, not a silent misparse. *)

val extract_presence : flag:string -> string list -> bool * string list
(** [extract_presence ~flag args] is [(present, rest)] where [present]
    says whether [flag] occurred (any number of times) and [rest] is
    [args] with every occurrence removed. *)

val extract_value :
  ?docv:string ->
  flag:string ->
  string list ->
  (string option * string list, string) result
(** [extract_value ~flag args] removes one [flag VALUE] pair from
    [args].  [Ok (None, args)] when the flag is absent;
    [Ok (Some v, rest)] when it occurs exactly once with a value that
    is not itself an option.  [Error msg] when the flag is repeated,
    is the last argument, or its supposed value starts with ["--"] —
    every message starts with the offending flag's own name and
    describes the expected value as [docv] (default ["VALUE"]), e.g.
    ["--json: missing FILE (flag is the last argument)"]. *)
