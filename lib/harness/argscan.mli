(** Minimal argv scanning for the bench driver.

    The driver's options ([--quick], [--json FILE]) ride alongside
    positional experiment ids, so they are plucked out of the raw list
    before dispatch.  This lives in the library (rather than inline in
    [bench/main.ml]) so the parsing rules are unit-testable: a value
    flag given twice, left dangling at the end of the line, or
    interleaved with another option ([--json --quick out.json]) is an
    error, not a silent misparse. *)

val extract_presence : flag:string -> string list -> bool * string list
(** [extract_presence ~flag args] is [(present, rest)] where [present]
    says whether [flag] occurred (any number of times) and [rest] is
    [args] with every occurrence removed. *)

val extract_value :
  ?docv:string ->
  flag:string ->
  string list ->
  (string option * string list, string) result
(** [extract_value ~flag args] removes one [flag VALUE] pair from
    [args].  [Ok (None, args)] when the flag is absent;
    [Ok (Some v, rest)] when it occurs exactly once with a value that
    is not itself an option.  [Error msg] when the flag is repeated,
    is the last argument, or its supposed value starts with ["--"] —
    every message starts with the offending flag's own name and
    describes the expected value as [docv] (default ["VALUE"]), e.g.
    ["--json: missing FILE (flag is the last argument)"]. *)

val parse_enum :
  ?docv:string ->
  flag:string ->
  values:(string * 'a) list ->
  string ->
  ('a, string) result
(** [parse_enum ~flag ~values raw] maps [raw] through the closed
    [values] table (e.g. [[("atomic", Atomic); ...]]).  The error
    message starts with the offending flag's own name and lists every
    valid spelling in table order:
    ["--register-model: unknown MODEL \"x\" (valid: atomic|regular|safe)"]. *)

val parse_suffixed :
  ?docv:string -> flag:string -> string -> (float, string) result
(** [parse_suffixed ~flag raw] reads a number with an optional unit
    suffix, so rates and durations read naturally on the command line:
    ["30s"] is 30.0, ["250ms"] is 0.25, ["50k"] is 50_000.0, ["2M"] is
    2e6.  Known suffixes: [s] (×1), [ms] (×1e-3), [us] (×1e-6), [k]/[K]
    (×1e3), [M] (×1e6), [G] (×1e9).  A lowercase [m] alone is rejected
    (milli or mega?), as are negative results and anything that is not
    number-then-suffix.  Errors start with [flag]'s own name and name
    the value as [docv], matching {!extract_value}'s message style. *)
