(** The reproduction experiments, E1–E10 (see DESIGN.md §4 and
    EXPERIMENTS.md).  Each returns one or more rendered-ready tables.

    [quick:true] shrinks every run (used by the test suite to keep
    [dune runtest] fast); the bench executable uses [quick:false]. *)

type experiment = {
  id : string;
  summary : string;  (** one line: which paper claim this regenerates *)
  run : quick:bool -> Table.t list;
}

val e1 : quick:bool -> Table.t list
(** §6 TLC run: Bakery++ satisfies mutex and no-overflow. *)

val e2 : quick:bool -> Table.t list
(** §3: bounded registers overflow under Bakery (and the ticket lock). *)

val e3 : quick:bool -> Table.t list
(** §6.2: Bakery++ refines Bakery (stutter-closed trace inclusion). *)

val e4 : quick:bool -> Table.t list
(** §3/§4: time/steps to first overflow vs register width M. *)

val e5 : quick:bool -> Table.t list
(** §7: throughput parity of Bakery vs Bakery++ when M is large. *)

val e6 : quick:bool -> Table.t list
(** §7: reset and gate cost of Bakery++ as M shrinks. *)

val e7 : quick:bool -> Table.t list
(** §4: algorithm-zoo comparison (throughput, space, peak ticket). *)

val e8 : quick:bool -> Table.t list
(** §1.2/§8.2: FCFS and fairness across the zoo. *)

val e9 : quick:bool -> Table.t list
(** §6.3: starvation lassos at the L1 gate. *)

val e10 : quick:bool -> Table.t list
(** §8.1: more processes than ticket values (N > M). *)

val e11 : quick:bool -> Table.t list
(** Model-checker throughput: the compiled successor engine and the
    persistent-pool parallel BFS against the AST-interpreter baseline,
    on the same exhaustive Bakery++ workloads.  Records
    (experiment, metric, value) triples via {!record_metric}. *)

val e12 : quick:bool -> Table.t list
(** Sharded explorer: exhaustive Bakery++ configurations past the old
    engine's small-N wall, using the fingerprint-sharded visited set
    and (for the largest runs) fingerprint-only state storage.  Reports
    the engine's collision / steal / hand-off telemetry alongside
    throughput. *)

val e13 : quick:bool -> Table.t list
(** SLO observatory: every algorithm in the sweep under identical
    seeded open-loop Poisson traffic ({!Workload.Openloop}), scored on
    goodput, coordinated-omission-free tail latency, FCFS inversions
    and Jain fairness; plus the overflow observatory — time until the
    unbounded bakery's peak ticket would have overflowed a width-M
    register, and Bakery++ reset storms under the same traffic.
    Records flat datapoints via {!record_metric} and whole scorecards
    via {!record_scorecard}. *)

val e15 : quick:bool -> Table.t list
(** Symmetry + ample-set POR reduction sweep ({!Modelcheck.Reduce}) over
    the pid-symmetric zoo models: quotient state counts and reduction
    ratios per mode, plus the C8 (N > M) configurations at sizes where
    the unreduced search exhausts its state budget.  Records
    (experiment, metric, value) datapoints with the reduce mode embedded
    in the metric name, so regression gating never compares across
    modes. *)

val e16 : quick:bool -> Table.t list
(** Flight-recorded soak: a Seconds-budget open-loop run (60 s full,
    ~1 s quick) against Bakery++ with the flight recorder riding the
    observatory sampler; the recorded p99 and heap series get
    {!Obs.Analyze.drift} verdicts, which land both in the table and in
    the BENCH_locks.json row via {!record_scorecard}'s [extra]. *)

val e15_modes : Modelcheck.Reduce.mode list ref
(** Reduction modes {!e15} sweeps, [[Off; Sym; Sym_por]] by default.
    The bench CLI's [--reduce] flag narrows it to [Off] plus the chosen
    mode — the unreduced baseline stays in as the ratio denominator. *)

type datapoint = {
  dp_exp : string;
  dp_metric : string;
  dp_value : float;
  dp_engine : string option;  (** which engine produced it (E11 rows) *)
  dp_wall_s : float option;  (** wall-clock seconds of the measured run *)
}

val record_metric :
  ?engine:string -> ?wall_s:float -> exp:string -> metric:string -> float -> unit
(** Record one machine-readable datapoint (drained by the bench driver
    into [--json] output and [BENCH_modelcheck.json]; the driver
    additionally stamps each with a timestamp and run metadata). *)

val take_metrics : unit -> datapoint list
(** All datapoints recorded since the last call, oldest first; clears
    the buffer. *)

val record_scorecard :
  ?extra:(string * Telemetry.Json.t) list -> Workload.Scorecard.t -> unit
(** Buffer one whole lock scorecard (E13, E16); drained separately from
    the flat datapoints because the bench driver persists the full rows
    to [BENCH_locks.json].  [extra] (default none) carries fields the
    scorecard schema has no slot for — E16's drift verdicts — appended
    verbatim to the persisted JSON row. *)

val take_scorecards :
  unit -> (Workload.Scorecard.t * (string * Telemetry.Json.t) list) list
(** All (scorecard, extra-fields) pairs recorded since the last call,
    oldest first; clears the buffer. *)

val lock_resolver : ?bound:int -> unit -> Workload.Suite.resolver
(** The zoo resolver the observatory cells use: looks the family up in
    {!Registry} and instantiates it with [bound] (default 4096;
    [ticket_mod] always gets 64, as in the microbenchmarks). *)

val a1 : quick:bool -> Table.t list
(** Ablation: Bakery++ without the L1 gate (safety survives). *)

val a2 : quick:bool -> Table.t list
(** Ablation: increment before the capacity check (unsound from N = 3). *)

val a3 : quick:bool -> Table.t list
(** Ablation: the paper's §5 remark on [>=] vs [=] under read anomalies. *)

val all : experiment list
(** E1-E10 then A1-A3; the bench driver iterates this. *)

val find : string -> experiment
(** Raises [Not_found]. *)
