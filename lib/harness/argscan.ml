let extract_presence ~flag args =
  (List.mem flag args, List.filter (fun a -> a <> flag) args)

let looks_like_flag v = String.length v >= 2 && String.sub v 0 2 = "--"

let extract_value ?(docv = "VALUE") ~flag args =
  let err fmt = Printf.ksprintf (fun m -> Error (flag ^ ": " ^ m)) fmt in
  let rec go acc seen = function
    | [] -> Ok (seen, List.rev acc)
    | a :: rest when a = flag -> (
        match (seen, rest) with
        | Some _, _ -> err "given more than once"
        | None, [] -> err "missing %s (flag is the last argument)" docv
        | None, v :: _ when looks_like_flag v ->
            err "missing %s (next argument %S is itself an option)" docv v
        | None, v :: rest' -> go acc (Some v) rest')
    | a :: rest -> go (a :: acc) seen rest
  in
  go [] None args
