let extract_presence ~flag args =
  (List.mem flag args, List.filter (fun a -> a <> flag) args)

let looks_like_flag v = String.length v >= 2 && String.sub v 0 2 = "--"

(* Unit suffixes accepted by value flags like [--duration 30s] and
   [--rate 50k].  Case matters: [M] is mega, [m] would be ambiguous
   (milli? minutes?) and is rejected outright. *)
let suffixes =
  [
    ("", 1.0); ("s", 1.0); ("ms", 1e-3); ("us", 1e-6); ("k", 1e3); ("K", 1e3);
    ("M", 1e6); ("G", 1e9);
  ]

let suffix_help = "s, ms, us, k, K, M or G"

let parse_suffixed ?(docv = "VALUE") ~flag raw =
  let err fmt = Printf.ksprintf (fun m -> Error (flag ^ ": " ^ m)) fmt in
  let n = String.length raw in
  let is_mantissa c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e'
  in
  (* The mantissa is the longest numeric-looking prefix; whatever
     follows must be a known suffix.  "e" stays in the mantissa so
     scientific notation ("1e6") parses; a dangling exponent fails
     float_of_string below. *)
  let split = ref n in
  (try
     for i = 0 to n - 1 do
       if not (is_mantissa raw.[i]) then begin
         split := i;
         raise Exit
       end
     done
   with Exit -> ());
  let mantissa = String.sub raw 0 !split in
  let suffix = String.sub raw !split (n - !split) in
  match float_of_string_opt mantissa with
  | None | Some _ when mantissa = "" ->
      err "malformed %s %S (expected a number with an optional %s suffix)"
        docv raw suffix_help
  | None ->
      err "malformed %s %S (cannot read %S as a number)" docv raw mantissa
  | Some v -> (
      match List.assoc_opt suffix suffixes with
      | None ->
          err "unknown %s suffix %S in %S (known: %s)" docv suffix raw
            suffix_help
      | Some scale ->
          let v = v *. scale in
          if v < 0.0 then err "%s %S is negative" docv raw else Ok v)

let parse_enum ?(docv = "VALUE") ~flag ~values raw =
  match List.assoc_opt raw values with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "%s: unknown %s %S (valid: %s)" flag docv raw
           (String.concat "|" (List.map fst values)))

let extract_value ?(docv = "VALUE") ~flag args =
  let err fmt = Printf.ksprintf (fun m -> Error (flag ^ ": " ^ m)) fmt in
  let rec go acc seen = function
    | [] -> Ok (seen, List.rev acc)
    | a :: rest when a = flag -> (
        match (seen, rest) with
        | Some _, _ -> err "given more than once"
        | None, [] -> err "missing %s (flag is the last argument)" docv
        | None, v :: _ when looks_like_flag v ->
            err "missing %s (next argument %S is itself an option)" docv v
        | None, v :: rest' -> go acc (Some v) rest')
    | a :: rest -> go (a :: acc) seen rest
  in
  go [] None args
