let extract_presence ~flag args =
  (List.mem flag args, List.filter (fun a -> a <> flag) args)

let looks_like_flag v = String.length v >= 2 && String.sub v 0 2 = "--"

let extract_value ~flag args =
  let rec go acc seen = function
    | [] -> Ok (seen, List.rev acc)
    | a :: rest when a = flag -> (
        match (seen, rest) with
        | Some _, _ -> Error (flag ^ " given more than once")
        | None, [] -> Error (flag ^ " requires a file argument")
        | None, v :: _ when looks_like_flag v ->
            Error (flag ^ " requires a file argument (got option " ^ v ^ ")")
        | None, v :: rest' -> go acc (Some v) rest')
    | a :: rest -> go (a :: acc) seen rest
  in
  go [] None args
