(** Multi-domain lock benchmarks.

    Domains run the canonical cyclic-process loop — acquire, critical
    work, release, think — against one lock instance.  Results are
    wall-clock throughput and per-domain entry counts.

    On this machine the domains may outnumber cores; every lock spins via
    {!Registers.Spin.relax}, which yields, so handoffs proceed at OS
    scheduler-round granularity.  Absolute numbers are therefore
    machine-specific; the experiments compare *shapes* across algorithms
    measured identically. *)

type result = {
  nprocs : int;
  elapsed : float;  (** seconds *)
  per_domain : int array;  (** critical-section entries per domain *)
  total : int;
  ops_per_sec : float;
  lock_stats : (string * int) list;
  space_words : int;
}

val run :
  ?workload:Workload.Shape.t ->
  ?duration:float ->
  ?seed:int ->
  ?instrument:bool ->
  Locks.Lock_intf.instance ->
  nprocs:int ->
  result
(** [run instance ~nprocs] drives [nprocs] domains for [duration]
    (default 0.3 s) under [workload] (default {!Workload.Shape.contended}).
    [instrument] (default false) wraps the lock in
    {!Locks.Latency.instrument}, so [lock_stats] additionally carries
    acquire-latency percentiles ([acq_p50_ns], [acq_p95_ns],
    [acq_p99_ns], [acq_max_ns]) at the cost of two clock reads per
    acquire. *)

type overflow_result = {
  acquires_before : int;  (** total CS entries before the first overflow *)
  seconds_before : float;
  overflowed : bool;  (** false if the step budget ran out first *)
}

val run_until_overflow :
  ?workload:Workload.Shape.t ->
  ?max_seconds:float ->
  make:(unit -> Locks.Lock_intf.instance) ->
  recover:(int -> unit) ->
  nprocs:int ->
  unit ->
  overflow_result
(** Drive a lock built over [Registers.Bounded] with the [Trap] policy
    until some domain observes [Registers.Bounded.Overflow] (experiment
    E4: time-to-first-overflow).  [recover i] is called by a domain that
    trapped, so it can reset its own registers (the paper's crash
    semantics) and unblock the others. *)
