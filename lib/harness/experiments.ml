module MC = Modelcheck
module LI = Locks.Lock_intf

type experiment = {
  id : string;
  summary : string;
  run : quick:bool -> Table.t list;
}

(* Machine-readable datapoints recorded while experiments run; the
   bench driver drains them into JSON files so perf trajectories can be
   tracked across PRs and machines (each datapoint also carries which
   engine produced it and the wall time of the measured run). *)
type datapoint = {
  dp_exp : string;
  dp_metric : string;
  dp_value : float;
  dp_engine : string option;
  dp_wall_s : float option;
}

let metrics : datapoint list ref = ref []

let record_metric ?engine ?wall_s ~exp ~metric value =
  metrics :=
    {
      dp_exp = exp;
      dp_metric = metric;
      dp_value = value;
      dp_engine = engine;
      dp_wall_s = wall_s;
    }
    :: !metrics

let take_metrics () =
  let m = List.rev !metrics in
  metrics := [];
  m

let outcome_cell (r : MC.Explore.result) =
  match r.outcome with
  | MC.Explore.Pass -> "PASS"
  | Violation { invariant; trace } ->
      Printf.sprintf "VIOLATION %s (trace %d)" invariant (MC.Trace.length trace)
  | Deadlock _ -> "DEADLOCK"
  | Capacity -> "capacity"

let gran_name = Algorithms.Common.granularity_name

(* Render an [acq_pXX_ns] entry from instrumented lock stats (see
   Locks.Latency) as a human latency cell; "-" when the lock was run
   uninstrumented or never acquired. *)
let latency_cell stats key =
  match List.assoc_opt key stats with
  | None | Some 0 -> "-"
  | Some ns when ns < 1_000 -> Printf.sprintf "%dns" ns
  | Some ns when ns < 1_000_000 ->
      Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  | Some ns -> Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)

(* ------------------------------------------------------------------ E1 *)

let e1 ~quick =
  let t =
    Table.make
      ~title:"E1 (paper §6): model checking Bakery++ — mutex & no-overflow"
      ~notes:
        [
          "reproduces the paper's TLC result: both invariants hold on every \
           reachable state";
          "granularity 'coarse' = the PlusCal atomicity the paper checked; \
           'fine' = one register read per step";
        ]
      [ "N"; "M"; "granularity"; "outcome"; "generated"; "distinct"; "depth"; "time(s)" ]
  in
  let configs =
    if quick then
      [ (2, 2, Algorithms.Common.Coarse); (2, 2, Algorithms.Common.Fine) ]
    else
      [
        (2, 2, Algorithms.Common.Coarse);
        (2, 3, Algorithms.Common.Coarse);
        (2, 4, Algorithms.Common.Coarse);
        (3, 2, Algorithms.Common.Coarse);
        (3, 3, Algorithms.Common.Coarse);
        (2, 2, Algorithms.Common.Fine);
        (2, 3, Algorithms.Common.Fine);
        (2, 4, Algorithms.Common.Fine);
      ]
  in
  List.iter
    (fun (n, m, g) ->
      let r = Core.Verify.check_bakery_pp ~granularity:g ~nprocs:n ~bound:m () in
      Table.add_rowf t "%d|%d|%s|%s|%d|%d|%d|%.3f" n m (gran_name g)
        (outcome_cell r) r.stats.generated r.stats.distinct r.stats.depth
        r.stats.runtime)
    configs;
  [ t ]

(* ------------------------------------------------------------------ E2 *)

let e2 ~quick =
  let t =
    Table.make
      ~title:
        "E2 (paper §3): bounded registers overflow under the original Bakery"
      ~notes:
        [
          "the checker finds a shortest run that stores a ticket > M; the \
           unbounded ticket lock fails the same way";
          "Bakery++ rows are the control: same configurations, no overflow \
           reachable";
        ]
      [ "algorithm"; "N"; "M"; "outcome"; "distinct"; "time(s)" ]
  in
  let row name program ~invs ~n ~m =
    let sys = MC.System.make program ~nprocs:n ~bound:m in
    let r = MC.Explore.run ~invariants:invs sys in
    Table.add_rowf t "%s|%d|%d|%s|%d|%.3f" name n m (outcome_cell r)
      r.stats.distinct r.stats.runtime
  in
  let no = [ MC.Invariant.no_overflow ] in
  let configs = if quick then [ (2, 2) ] else [ (2, 2); (2, 3); (3, 2) ] in
  List.iter
    (fun (n, m) -> row "bakery" (Algorithms.Bakery.program ()) ~invs:no ~n ~m)
    configs;
  if not quick then begin
    row "bakery(fine)"
      (Algorithms.Bakery.program ~granularity:Algorithms.Common.Fine ())
      ~invs:no ~n:2 ~m:2;
    row "ticket" (Algorithms.Ticket_model.program ()) ~invs:no ~n:2 ~m:3
  end;
  List.iter
    (fun (n, m) ->
      row "bakery_pp" (Core.Bakery_pp_model.program ())
        ~invs:[ MC.Invariant.mutex; MC.Invariant.no_overflow ]
        ~n ~m)
    configs;
  [ t ]

(* ------------------------------------------------------------------ E3 *)

let e3 ~quick =
  let t =
    Table.make
      ~title:
        "E3 (paper §6.2): Bakery++ refines Bakery — stutter-closed trace \
         inclusion over protocol phases"
      ~notes:
        [
          "'every execution of Bakery++ is a valid execution of Bakery', \
           checked by subset-construction simulation";
          "spec (unbounded Bakery) closed under a ticket cap of M+N";
        ]
      [ "N"; "M"; "included"; "complete"; "impl pairs"; "spec states" ]
  in
  (* The subset construction is exponential in the spec set; N = 3 blows
     past minutes, so the inclusion is checked for two processes at
     several register widths. *)
  let configs = if quick then [ (2, 2) ] else [ (2, 2); (2, 3); (2, 4) ] in
  List.iter
    (fun (n, m) ->
      let r = Core.Verify.refines_bakery ~nprocs:n ~bound:m () in
      Table.add_rowf t "%d|%d|%b|%b|%d|%d" n m r.included r.complete
        r.impl_pairs r.spec_states)
    configs;
  [ t ]

(* ------------------------------------------------------------------ E4 *)

(* The paper's §3 scenario needs the bakery to stay nonempty.  Strict
   alternation (round-robin) realizes it exactly for two processes; with
   three or more, even a uniform random scheduler sustains the overlap. *)
let overflow_strategy ~nprocs ~seed =
  if nprocs <= 2 then Schedsim.Scheduler.Round_robin
  else Schedsim.Scheduler.Uniform seed

let sim_steps_to_overflow ~nprocs ~bound ~seed =
  let prog = Algorithms.Bakery.program () in
  let cfg =
    {
      (Schedsim.Runner.default_config ~nprocs ~bound) with
      strategy = overflow_strategy ~nprocs ~seed;
      overflow_policy = Schedsim.Runner.Stop;
      max_steps = 50_000_000;
    }
  in
  let r = Schedsim.Runner.run prog cfg in
  (r.steps, Schedsim.Runner.total_cs r, r.outcome = Schedsim.Runner.Overflow_stop)

let e4 ~quick =
  let sim =
    Table.make
      ~title:
        "E4a (paper §3): interleaving steps until the first register \
         overflow — original Bakery, simulator"
      ~notes:
        [
          "the §3 scenario: with the bakery never empty, tickets climb to M \
           and overflow; steps grow linearly in M";
          "Bakery++ control rows run 4x the Bakery budget and never overflow \
           (resets shown instead)";
        ]
      [ "algorithm"; "N"; "M"; "steps"; "CS entries"; "overflowed"; "resets" ]
  in
  let ms = if quick then [ 255 ] else [ 255; 4095; 65535 ] in
  let ns = if quick then [ 2 ] else [ 2; 4 ] in
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          let steps, cs, ov = sim_steps_to_overflow ~nprocs:n ~bound:m ~seed:11 in
          Table.add_rowf sim "bakery|%d|%d|%d|%d|%b|-" n m steps cs ov;
          let prog = Core.Bakery_pp_model.program () in
          let cfg =
            {
              (Schedsim.Runner.default_config ~nprocs:n ~bound:m) with
              strategy = overflow_strategy ~nprocs:n ~seed:11;
              max_steps = 4 * steps;
            }
          in
          let r = Schedsim.Runner.run prog cfg in
          Table.add_rowf sim "bakery_pp|%d|%d|%d|%d|%b|%d" n m r.steps
            (Schedsim.Runner.total_cs r)
            (r.overflow_events > 0)
            (Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label))
        ms)
    ns;
  let real =
    Table.make
      ~title:
        "E4b: wall-clock time to first overflow — real domains, M-bounded \
         registers (Trap policy)"
      ~notes:
        [
          "the paper cites Aravind: a 32-bit Bakery can overflow in under a \
           minute; scaled-down M makes it sub-second";
          "bakery_pp rows: same duration budget, overflow impossible by \
           construction";
        ]
      [ "lock"; "domains"; "M"; "acquires"; "seconds"; "overflowed" ]
  in
  let ms_real = if quick then [ 63 ] else [ 255; 1023 ] in
  List.iter
    (fun m ->
      let lock = Locks.Bakery_bounded_lock.create ~nprocs:2 ~bound:m in
      let r =
        Throughput.run_until_overflow
          ~max_seconds:(if quick then 3.0 else 10.0)
          ~make:(fun () ->
            LI.instance_of (module Locks.Bakery_bounded_lock) lock)
          ~recover:(Locks.Bakery_bounded_lock.crash_reset lock)
          ~nprocs:2 ()
      in
      Table.add_rowf real "bakery_bounded|2|%d|%d|%.3f|%b" m r.acquires_before
        r.seconds_before r.overflowed)
    ms_real;
  (* Control: Bakery++ with the same bound for a fixed duration. *)
  List.iter
    (fun m ->
      let lock = Core.Bakery_pp_lock.create_lock ~nprocs:2 ~bound:m in
      let inst = LI.instance_of (module Core.Bakery_pp_lock) lock in
      let r = Throughput.run ~duration:(if quick then 0.15 else 0.5) inst ~nprocs:2 in
      let snap = Core.Bakery_pp_lock.snapshot lock in
      Table.add_rowf real "bakery_pp|2|%d|%d|%.3f|false (resets=%d)" m r.total
        r.elapsed snap.resets)
    ms_real;
  [ sim; real ]

(* ------------------------------------------------------------------ E5 *)

let instance_for (family : LI.family) ~nprocs ~bound =
  family.make ~nprocs ~bound

let e5 ~quick =
  let sim =
    Table.make
      ~title:
        "E5a (paper §7): temporal-complexity parity — steps per CS entry, \
         Bakery vs Bakery++ with ample register width (simulator)"
      ~notes:
        [
          "with M = 2^20 the gate never closes and no reset ever fires; the \
           deterministic interleaving count isolates algorithmic cost from \
           machine noise";
          "expected shape: ratio slightly above 1 (the L1 gate is one extra \
           atomic step per entry), independent of N";
        ]
      [
        "N"; "bakery steps/CS"; "bakery_pp steps/CS"; "ratio"; "pp resets";
      ]
  in
  let big = 1 lsl 20 in
  let steps = if quick then 100_000 else 600_000 in
  let steps_per_cs prog n =
    let cfg =
      {
        (Schedsim.Runner.default_config ~nprocs:n ~bound:big) with
        strategy = Schedsim.Scheduler.Uniform 13;
        max_steps = steps;
      }
    in
    let r = Schedsim.Runner.run prog cfg in
    let cs = Schedsim.Runner.total_cs r in
    let resets =
      match
        Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label
      with
      | n -> n
      | exception Not_found -> 0 (* the original Bakery has no reset step *)
    in
    ((if cs = 0 then 0.0 else float_of_int r.steps /. float_of_int cs), resets)
  in
  List.iter
    (fun n ->
      let b, _ = steps_per_cs (Algorithms.Bakery.program ()) n in
      let p, resets = steps_per_cs (Core.Bakery_pp_model.program ()) n in
      Table.add_rowf sim "%d|%.2f|%.2f|%.3f|%d" n b p (p /. b) resets)
    (if quick then [ 2; 4 ] else [ 2; 4; 8 ]);
  let real =
    Table.make
      ~title:
        "E5b: the same comparison on real domains (wall clock; single-core \
         machine, multi-domain rows are scheduler-bound and noisy)"
      ~notes:
        [
          "the 1-domain row is the reliable hardware signal: Bakery++'s \
           uncontended overhead is the one extra O(N) gate scan (see also \
           the uB microbenchmark)";
          "p50/p95 acq: acquire-latency percentiles from the telemetry \
           histogram wrapper (Locks.Latency); multi-domain rows include \
           scheduler handoff waits";
        ]
      [
        "domains"; "bakery ops/s"; "bakery_pp ops/s"; "ratio"; "pp resets";
        "pp p50 acq"; "pp p95 acq";
      ]
  in
  let big = 1 lsl 40 in
  let duration = if quick then 0.1 else 0.4 in
  let ns = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  List.iter
    (fun n ->
      let b =
        Throughput.run ~duration
          (instance_for (Registry.find_family "bakery") ~nprocs:n ~bound:big)
          ~nprocs:n
      in
      let lock = Core.Bakery_pp_lock.create_lock ~nprocs:n ~bound:big in
      let p =
        Throughput.run ~duration ~instrument:true
          (LI.instance_of (module Core.Bakery_pp_lock) lock)
          ~nprocs:n
      in
      let snap = Core.Bakery_pp_lock.snapshot lock in
      Table.add_rowf real "%d|%s|%s|%.2f|%d|%s|%s" n
        (Stats.format_si b.ops_per_sec)
        (Stats.format_si p.ops_per_sec)
        (p.ops_per_sec /. b.ops_per_sec)
        snap.resets
        (latency_cell p.lock_stats "acq_p50_ns")
        (latency_cell p.lock_stats "acq_p95_ns"))
    ns;
  [ sim; real ]

(* ------------------------------------------------------------------ E6 *)

let e6 ~quick =
  let real =
    Table.make
      ~title:
        "E6a (paper §7): the price of overflow avoidance — Bakery++ under \
         shrinking M (2 domains)"
      ~notes:
        [
          "smaller M means more resets and more time parked at the L1 gate; \
           throughput recovers as M grows";
        ]
      [
        "M"; "ops/s"; "resets"; "resets/1k acq"; "gate spins/acq"; "peak ticket";
      ]
  in
  let ms = if quick then [ 4; 64 ] else [ 2; 4; 16; 64; 256; 1024 ] in
  let duration = if quick then 0.1 else 0.35 in
  List.iter
    (fun m ->
      let lock = Core.Bakery_pp_lock.create_lock ~nprocs:2 ~bound:m in
      let r =
        Throughput.run ~duration
          (LI.instance_of (module Core.Bakery_pp_lock) lock)
          ~nprocs:2
      in
      let s = Core.Bakery_pp_lock.snapshot lock in
      let per_k =
        if s.acquires = 0 then 0.0
        else 1000.0 *. float_of_int s.resets /. float_of_int s.acquires
      in
      let spins_per =
        if s.acquires = 0 then 0.0
        else float_of_int s.gate_spins /. float_of_int s.acquires
      in
      Table.add_rowf real "%d|%s|%d|%.1f|%.2f|%d" m
        (Stats.format_si r.ops_per_sec)
        s.resets per_k spins_per s.peak_ticket)
    ms;
  let sim =
    Table.make
      ~title:"E6b: same sweep on the deterministic simulator (N=4)"
      [
        "M"; "steps/CS entry"; "CS entries"; "resets/1k CS"; "L1 waits/CS";
      ]
  in
  let steps = if quick then 100_000 else 1_000_000 in
  let prog = Core.Bakery_pp_model.program () in
  List.iter
    (fun m ->
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs:4 ~bound:m) with
          strategy = Schedsim.Scheduler.Uniform 5;
          max_steps = steps;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      let cs = Schedsim.Runner.total_cs r in
      let resets =
        Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label
      in
      let gate_spins =
        Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.gate_label - cs
      in
      Table.add_rowf sim "%d|%.1f|%d|%.1f|%.2f" m
        (if cs = 0 then 0.0 else float_of_int r.steps /. float_of_int cs)
        cs
        (if cs = 0 then 0.0 else 1000.0 *. float_of_int resets /. float_of_int cs)
        (if cs = 0 then 0.0 else float_of_int (max gate_spins 0) /. float_of_int cs))
    (if quick then [ 4; 64 ] else [ 2; 4; 16; 64; 256 ]);
  [ real; sim ]

(* ------------------------------------------------------------------ E7 *)

let e7 ~quick =
  let t =
    Table.make
      ~title:
        "E7 (paper §4): the bounded-mutex design space — throughput, space, \
         ticket growth"
      ~notes:
        [
          "space = shared register words; peak = largest value stored in a \
           ticket register (growth behaviour)";
          "ticket/tas/ttas assume atomic read-modify-write, i.e. lower-level \
           mutual exclusion — not 'true' solutions in the paper's sense";
          "p50/p95 acq: acquire-latency percentiles from the telemetry \
           histogram wrapper (Locks.Latency), same instrumentation for \
           every family";
        ]
      [
        "lock"; "domains"; "ops/s"; "space words"; "peak ticket"; "p50 acq";
        "p95 acq";
      ]
  in
  let duration = if quick then 0.08 else 0.25 in
  let ns = if quick then [ 2 ] else [ 2; 4 ] in
  let bound = 1 lsl 40 in
  List.iter
    (fun (family : LI.family) ->
      List.iter
        (fun n ->
          if (not family.two_process_only) || n = 2 then begin
            let b = if family.family_name = "ticket_mod" then 64 else bound in
            let inst = family.make ~nprocs:n ~bound:b in
            let r = Throughput.run ~duration ~instrument:true inst ~nprocs:n in
            let peak =
              match List.assoc_opt "peak_ticket" (r.lock_stats) with
              | Some p -> string_of_int p
              | None -> "-"
            in
            Table.add_rowf t "%s|%d|%s|%d|%s|%s|%s" family.family_name n
              (Stats.format_si r.ops_per_sec)
              r.space_words peak
              (latency_cell r.lock_stats "acq_p50_ns")
              (latency_cell r.lock_stats "acq_p95_ns")
          end)
        ns)
    Registry.lock_families;
  [ t ]

(* ------------------------------------------------------------------ E8 *)

let e8 ~quick =
  let steps = if quick then 100_000 else 600_000 in
  let uniform =
    Table.make
      ~title:
        "E8a (paper §1.2): first-come-first-served order and fairness, \
         uniform random scheduler (N=4, simulator)"
      ~notes:
        [
          "FCFS inversions: CS entries that overtook a process whose doorway \
           finished before theirs started ('-' = algorithm has no doorway)";
          "max overtakes: entries by others while one process waited after \
           its doorway; bakery-family FCFS implies <= N-1 = 3";
          "Jain index over per-process CS entries: 1.0 = perfectly fair";
        ]
      [
        "algorithm"; "CS entries"; "FCFS inversions"; "max overtakes";
        "Jain index"; "max wait";
      ]
  in
  let has_doorway prog =
    Array.exists (fun (s : Mxlang.Ast.step) -> s.kind = Mxlang.Ast.Doorway)
      prog.Mxlang.Ast.steps
  in
  let algos =
    [
      "bakery"; "bakery_pp"; "black_white_bakery"; "ticket"; "szymanski";
      "eisenberg_mcguire"; "knuth"; "filter"; "burns_lynch"; "fast_mutex";
      "tas";
    ]
  in
  List.iter
    (fun name ->
      let prog = Registry.find_model name in
      let bound = 1 lsl 20 in
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs:4 ~bound) with
          strategy = Schedsim.Scheduler.Uniform 23;
          max_steps = steps;
          record_events = true;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      let doorway = has_doorway prog in
      let inversions =
        (* Derived from the causal trace's label transitions; the
           runner's own counter is kept as a differential oracle. *)
        if doorway then begin
          let derived =
            Trace.Query.fcfs_inversions
              (Trace.Of_sim.trace prog ~nprocs:4 ~bound r)
          in
          if derived <> r.fcfs_inversions then
            failwith
              (Printf.sprintf
                 "E8 %s: trace-derived FCFS inversions (%d) disagree with \
                  the runner counter (%d)"
                 name derived r.fcfs_inversions);
          string_of_int derived
        end
        else "-"
      in
      let overtakes =
        if doorway then string_of_int (Schedsim.Metrics.max_overtakes r)
        else "-"
      in
      Table.add_rowf uniform "%s|%d|%s|%s|%.3f|%d" name
        (Schedsim.Runner.total_cs r)
        inversions overtakes
        (Schedsim.Metrics.jain_fairness r)
        (Schedsim.Metrics.max_waiting_time r))
    algos;
  let handicap =
    Table.make
      ~title:
        "E8b: a 50x slower process 0 (handicap scheduler) — who still serves \
         it?"
      ~notes:
        [
          "share = CS entries of the slow process / total; FCFS algorithms \
           keep serving it, unfair locks may not";
        ]
      [ "algorithm"; "CS entries"; "slow-process share"; "Jain index" ]
  in
  List.iter
    (fun name ->
      let prog = Registry.find_model name in
      let bound = 1 lsl 20 in
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs:4 ~bound) with
          strategy =
            Schedsim.Scheduler.Handicap { victim = 0; period = 50; seed = 29 };
          max_steps = steps;
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      let total = Schedsim.Runner.total_cs r in
      let share =
        if total = 0 then 0.0
        else float_of_int r.cs_entries.(0) /. float_of_int total
      in
      Table.add_rowf handicap "%s|%d|%.4f|%.3f" name total share
        (Schedsim.Metrics.jain_fairness r))
    algos;
  [ uniform; handicap ]

(* ------------------------------------------------------------------ E9 *)

let e9 ~quick =
  let t =
    Table.make
      ~title:
        "E9 (paper §6.3): starvation lassos — can a process be parked \
         forever?"
      ~notes:
        [
          "'any' lasso ignores fairness; a 'fair' lasso passes through a \
           state where the victim is disabled, so even a weakly-fair \
           scheduler can starve it";
          "Bakery++'s L1 gate admits both (the paper's slow-process \
           scenario); the ticket-ordered waiting room of either algorithm \
           admits none (FCFS)";
        ]
      [
        "algorithm"; "victim parked at"; "N"; "M"; "lasso"; "cycle"; "CS/cycle";
        "fair";
      ]
  in
  let gate_row ~n ~m ~fair =
    let r =
      Core.Verify.starvation_lasso ~require_victim_disabled:fair ~nprocs:n
        ~bound:m ()
    in
    match r.witness with
    | Some w ->
        Table.add_rowf t "bakery_pp|L1 gate|%d|%d|FOUND|%d|%d|%s" n m
          (List.length w.cycle) w.cs_entries_in_cycle
          (if w.victim_continuously_enabled then "no (unfair only)" else "yes")
    | None -> Table.add_rowf t "bakery_pp|L1 gate|%d|%d|none|-|-|-" n m
  in
  gate_row ~n:3 ~m:2 ~fair:false;
  gate_row ~n:3 ~m:2 ~fair:true;
  if not quick then gate_row ~n:3 ~m:3 ~fair:true;
  (* Negative controls: the ticket-ordered waiting room is starvation-free
     in both algorithms. *)
  let waiting_row name program ~n ~m ~constraint_ =
    let sys = MC.System.make program ~nprocs:n ~bound:m in
    let r =
      MC.Lasso.find ?constraint_ ~victim:0
        ~stuck_at:(MC.Lasso.stuck_at_kind Mxlang.Ast.Waiting)
        sys
    in
    match r.witness with
    | Some w ->
        Table.add_rowf t "%s|waiting room|%d|%d|FOUND|%d|%d|?" name n m
          (List.length w.cycle) w.cs_entries_in_cycle
    | None -> Table.add_rowf t "%s|waiting room|%d|%d|none|-|-|-" name n m
  in
  waiting_row "bakery_pp" (Core.Bakery_pp_model.program ()) ~n:3 ~m:2
    ~constraint_:None;
  if not quick then
    waiting_row "bakery" (Algorithms.Bakery.program ()) ~n:3 ~m:2
      ~constraint_:(Some (Core.Verify.ticket_cap_constraint ~cap:5));
  [ t ]

(* ----------------------------------------------------------------- E10 *)

let e10 ~quick =
  let mc =
    Table.make
      ~title:
        "E10a (paper §8.1): more customers than tickets — safety when N > M"
      ~notes:
        [
          "Bakery++ stays safe (mutex, no overflow, no deadlock) even with \
           fewer ticket values than processes";
          "the modular ticket lock is the contrast: wrap with N > M breaks \
           mutual exclusion";
        ]
      [ "algorithm"; "N"; "M"; "outcome"; "distinct"; "time(s)" ]
  in
  let both = [ MC.Invariant.mutex; MC.Invariant.no_overflow ] in
  let row name program ~invs ~n ~m =
    let sys = MC.System.make program ~nprocs:n ~bound:m in
    let r = MC.Explore.run ~invariants:invs sys in
    Table.add_rowf mc "%s|%d|%d|%s|%d|%.3f" name n m (outcome_cell r)
      r.stats.distinct r.stats.runtime
  in
  row "bakery_pp" (Core.Bakery_pp_model.program ()) ~invs:both ~n:3 ~m:1;
  if not quick then begin
    row "bakery_pp" (Core.Bakery_pp_model.program ()) ~invs:both ~n:4 ~m:2;
    row "bakery_pp" (Core.Bakery_pp_model.program ()) ~invs:both ~n:4 ~m:1
  end;
  row "ticket_mod" (Algorithms.Ticket_model.program_mod ())
    ~invs:[ MC.Invariant.mutex ] ~n:3 ~m:2;
  let sim =
    Table.make
      ~title:"E10b: N > M under load (simulator) — liveness is preserved"
      ~notes:
        [ "every process keeps entering its CS; the price is resets and gate \
           waits, not progress" ]
      [
        "N"; "M"; "steps"; "CS entries"; "min CS/proc"; "resets"; "overflows";
      ]
  in
  let prog = Core.Bakery_pp_model.program () in
  let configs = if quick then [ (4, 2) ] else [ (4, 2); (8, 4); (8, 2) ] in
  List.iter
    (fun (n, m) ->
      let cfg =
        {
          (Schedsim.Runner.default_config ~nprocs:n ~bound:m) with
          strategy = Schedsim.Scheduler.Uniform 31;
          max_steps = (if quick then 100_000 else 500_000);
        }
      in
      let r = Schedsim.Runner.run prog cfg in
      Table.add_rowf sim "%d|%d|%d|%d|%d|%d|%d" n m r.steps
        (Schedsim.Runner.total_cs r)
        (Array.fold_left min max_int r.cs_entries)
        (Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label)
        r.overflow_events)
    configs;
  [ mc; sim ]

(* ----------------------------------------------------------------- E11 *)

let e11 ~quick =
  let t =
    Table.make
      ~title:
        "E11 (ROADMAP north star): model-checker throughput — compiled \
         mxlang evaluator and persistent-pool parallel BFS vs the AST \
         interpreter"
      ~notes:
        [
          "same BFS, same invariants (mutex & no-overflow), same reachable \
           set; only the successor engine changes";
          "interp = AST re-interpreted per transition (the seed engine); \
           compiled = staged closures, per-pid quantifier unrolling, \
           Vec-emitted moves, cached state hashes";
          "pool rows run level-parallel BFS on long-lived domains (spawned \
           once per run, not per wave); on a single-core host they only \
           add coordination cost";
          "speedup is distinct-states/sec relative to the interp row of \
           the same configuration";
          "each engine row reports the fastest of 3 runs (1 in quick \
           mode): the host shows multi-x timing drift between identical \
           runs, and min is the noise-robust estimator of true cost";
        ]
      [
        "model"; "N"; "M"; "engine"; "domains"; "distinct"; "generated";
        "time(s)"; "kstates/s"; "speedup";
      ]
  in
  let workloads =
    if quick then [ ("bakery_pp", Core.Bakery_pp_model.program (), 3, 2) ]
    else
      [
        ("bakery_pp", Core.Bakery_pp_model.program (), 4, 2);
        ("bakery_pp", Core.Bakery_pp_model.program (), 3, 3);
        ( "bakery_pp_fine",
          Core.Bakery_pp_model.program ~granularity:Algorithms.Common.Fine (),
          3, 2 );
      ]
  in
  List.iter
    (fun (name, prog, n, m) ->
      let sys = MC.System.make prog ~nprocs:n ~bound:m in
      let tag = Printf.sprintf "%s_n%d_m%d" name n m in
      let record engine domains r =
        let sps =
          if r.MC.Explore.stats.runtime > 0.0 then
            float_of_int r.stats.distinct /. r.stats.runtime
          else 0.0
        in
        let label = if domains = "-" then engine else engine ^ domains in
        record_metric ~engine:label ~wall_s:r.stats.runtime ~exp:"e11"
          ~metric:(Printf.sprintf "%s/%s/states_per_sec" tag label)
          sps;
        sps
      in
      let row engine domains (r : MC.Explore.result) ~baseline =
        let sps = record engine domains r in
        Table.add_rowf t "%s|%d|%d|%s|%s|%d|%d|%.3f|%.1f|%.2f" name n m engine
          domains r.stats.distinct r.stats.generated r.stats.runtime
          (sps /. 1e3)
          (if baseline > 0.0 then sps /. baseline else 1.0);
        sps
      in
      let reps = if quick then 1 else 3 in
      let best f =
        let r0 : MC.Explore.result = f () in
        let best = ref r0 in
        for _ = 2 to reps do
          let r : MC.Explore.result = f () in
          if r.stats.runtime < !best.stats.runtime then best := r
        done;
        !best
      in
      let interp = best (fun () -> MC.Explore.run ~interpreted:true sys) in
      let baseline = row "interp" "-" interp ~baseline:0.0 in
      let compiled = best (fun () -> MC.Explore.run sys) in
      (* The engines explore the same transition system: any divergence
         in the reachable set is a compiler bug, not a perf result. *)
      if
        compiled.stats.distinct <> interp.stats.distinct
        || compiled.stats.generated <> interp.stats.generated
      then failwith "e11: compiled and interpreted engines disagree";
      let csps = row "compiled" "-" compiled ~baseline in
      record_metric ~engine:"compiled" ~wall_s:compiled.stats.runtime
        ~exp:"e11"
        ~metric:(tag ^ "/compiled_speedup")
        (if baseline > 0.0 then csps /. baseline else 1.0);
      let pool_sweep = if quick then [ 1 ] else [ 1; 2; 4; 8 ] in
      List.iter
        (fun d ->
          ignore
            (row "pool" (string_of_int d)
               (best (fun () -> MC.Par_explore.run ~domains:d sys))
               ~baseline))
        pool_sweep)
    workloads;
  [ t ]

(* ----------------------------------------------------------------- E12 *)

let e12 ~quick =
  let t =
    Table.make
      ~title:
        "E12 (sharded explorer): exhaustive Bakery++ beyond the old \
         small-N wall — fingerprint-sharded visited set, work-stealing \
         deques, fp-only compression"
      ~notes:
        [
          "the seed engine's single shared hash table capped practical \
           runs at N=4; the sharded engine partitions the visited set by \
           state fingerprint and keeps per-domain work-stealing deques";
          "fp-only rows store 63-bit fingerprints instead of packed \
           states (TLC-style): ~10x less memory, ~2^-63 per-pair \
           collision odds; exact rows keep full states";
          "collisions/steals/handoffs come from the engine's telemetry \
           counters for the same run";
          "single-core hosts serialize the domains, so extra domains \
           only measure coordination overhead, not speedup";
        ]
      [
        "model"; "N"; "M"; "mode"; "domains"; "outcome"; "distinct";
        "generated"; "depth"; "time(s)"; "kstates/s"; "collisions";
        "steals"; "handoff";
      ]
  in
  (* Full-mode domain counts are chosen for the single-core bench
     budget: pool4 on the 2.1M-state config exercises the sharded
     machinery, the big fp-only runs use one domain because on this
     host extra domains only stretch the wall clock. *)
  let configs =
    if quick then [ (3, 2, false, 2); (3, 2, true, 2) ]
    else [ (4, 2, false, 4); (4, 3, true, 4); (5, 3, true, 1) ]
  in
  let prog = Core.Bakery_pp_model.program () in
  List.iter
    (fun (n, m, fp_only, domains) ->
      let sys = MC.System.make prog ~nprocs:n ~bound:m in
      let metrics = Telemetry.Metrics.create () in
      let r =
        MC.Par_explore.run ~domains ~fingerprint_only:fp_only
          ~max_states:(if quick then 200_000 else 400_000_000)
          ~metrics sys
      in
      let c name =
        Telemetry.Metrics.counter_value (Telemetry.Metrics.counter metrics name)
      in
      let sps =
        if r.MC.Explore.stats.runtime > 0.0 then
          float_of_int r.stats.distinct /. r.stats.runtime
        else 0.0
      in
      let mode = if fp_only then "fp-only" else "exact" in
      let outcome =
        match r.outcome with
        | MC.Explore.Pass -> "pass"
        | Violation v -> "violation:" ^ v.invariant
        | Deadlock _ -> "deadlock"
        | Capacity -> "capacity"
      in
      Table.add_rowf t "%s|%d|%d|%s|%d|%s|%d|%d|%d|%.3f|%.1f|%d|%d|%d"
        "bakery_pp" n m mode domains outcome r.stats.distinct
        r.stats.generated r.stats.depth r.stats.runtime (sps /. 1e3)
        (c "par_explore.fp_collisions")
        (c "par_explore.steals")
        (c "par_explore.handoff_states");
      record_metric ~engine:(Printf.sprintf "pool%d_%s" domains mode)
        ~wall_s:r.stats.runtime ~exp:"e12"
        ~metric:
          (Printf.sprintf "bakery_pp_n%d_m%d/sharded_%s/states_per_sec" n m
             mode)
        sps)
    configs;
  [ t ]

(* ----------------------------------------------------------------- E13 *)

(* Scorecards are buffered whole (alongside the flat metric datapoints)
   so the bench driver can persist the full rows to BENCH_locks.json
   with timestamp and run metadata.  [extra] carries experiment-specific
   row fields the scorecard schema has no slot for — E16's flight-drift
   verdicts — which the driver appends verbatim to the JSON row. *)
let scorecards :
    (Workload.Scorecard.t * (string * Telemetry.Json.t) list) list ref =
  ref []

let record_scorecard ?(extra = []) c = scorecards := (c, extra) :: !scorecards

let take_scorecards () =
  let c = List.rev !scorecards in
  scorecards := [];
  c

let lock_resolver ?(bound = 1 lsl 12) () : Workload.Suite.resolver =
 fun name ~nprocs ->
  let f = Registry.find_family name in
  let b = if f.LI.family_name = "ticket_mod" then 64 else bound in
  f.LI.make ~nprocs ~bound:b

let slo_cell (card : Workload.Scorecard.t) =
  if card.slo_pass then "pass"
  else "FAIL: " ^ String.concat "; " card.slo_reasons

let e13 ~quick =
  let t =
    Table.make
      ~title:
        "E13 (SLO observatory): open-loop Poisson traffic — goodput, \
         coordinated-omission-free tails, fairness"
      ~notes:
        [
          "arrivals are a seeded Poisson schedule (Workload.Poisson); \
           latency is charged from each op's *intended* start, so \
           queueing behind a stall cannot hide (no coordinated omission)";
          "inv = FCFS inversions from the lock's event ring; jain over \
           per-domain completions; behind = ops that started late";
          "SLO verdict: goodput >= 50% of offered rate and p99 <= 50ms \
           (Workload.Slo.default)";
        ]
      [
        "lock"; "domains"; "rate/s"; "ops"; "goodput/s"; "p50"; "p99";
        "p999"; "max stall"; "inv"; "jain"; "behind"; "SLO";
      ]
  in
  let rate = if quick then 2_000.0 else 5_000.0 in
  let ops = if quick then 300 else 4_000 in
  let domain_counts = if quick then [ 2 ] else [ 2; 4 ] in
  let algos = [ "bakery"; "bakery_pp"; "ticket"; "ttas" ] in
  let resolve = lock_resolver () in
  let seed = 42 in
  let cell ns = latency_cell [ ("v", ns) ] "v" in
  List.iter
    (fun nprocs ->
      List.iter
        (fun algo ->
          let card =
            Workload.Suite.run_cell resolve ~algo ~nprocs ~rate
              ~budget:(Workload.Openloop.Ops ops) ~seed ()
          in
          record_scorecard card;
          record_metric ~exp:"e13"
            ~metric:(Printf.sprintf "%s/d%d/goodput" algo nprocs)
            card.goodput;
          record_metric ~exp:"e13"
            ~metric:(Printf.sprintf "%s/d%d/p99_ns" algo nprocs)
            (float_of_int card.p99_ns);
          Table.add_rowf t "%s|%d|%.0f|%d|%.0f|%s|%s|%s|%s|%d|%.3f|%d|%s"
            algo nprocs rate ops card.goodput (cell card.p50_ns)
            (cell card.p99_ns) (cell card.p999_ns) (cell card.max_stall_ns)
            card.inversions card.jain card.behind (slo_cell card))
        algos)
    domain_counts;
  let m = if quick then 8 else 16 in
  (* The observatory leg deliberately oversubscribes the lock (150x the
     sweep rate): tickets only climb while acquires overlap, so a rate
     the lock can absorb never exercises the bound. *)
  let rate_b = rate *. 150.0 in
  let t2 =
    Table.make
      ~title:
        "E13b (overflow observatory): virtual-bound crossing vs Bakery++ \
         reset storms under identical seeded traffic"
      ~notes:
        [
          "a sampler domain polls the lock's own counters in flight; \
           unbounded bakery reports when peak_ticket would have \
           overflowed a width-M register (the run keeps going)";
          "bakery_pp is created with bound M, so the same traffic shows \
           the paper's alternative: resets instead of overflow; on this \
           host the L1 gate absorbs most overflow pressure as passive \
           waits, so zero storms is a common (and correct) reading";
          "a storm is a maximal run of consecutive samples whose reset \
           counter advanced; durations have one-sample resolution";
        ]
      [
        "lock"; "M"; "crossing"; "t_overflow(s)"; "resets"; "storms";
        "worst storm(s)";
      ]
  in
  List.iter
    (fun (algo, resolve) ->
      let card =
        Workload.Suite.run_cell resolve ~virtual_bound:m
          ~sample_interval_s:5e-4 ~algo ~nprocs:4 ~rate:rate_b
          ~budget:(Workload.Openloop.Ops ops) ~seed ()
      in
      (* Not recorded as a scorecard: a deliberately saturated probe has
         scheduler-luck goodput (2-5x spread run to run on this host),
         which would make the regress gate flaky.  The overflow metrics
         below are the deliverable of this leg. *)
      match card.overflow with
      | None -> ()
      | Some o ->
          Table.add_rowf t2 "%s|%d|%s|%s|%d|%d|%.4f" algo m
            (match o.overflow_ticket with
            | Some tk -> Printf.sprintf "ticket %d > M" tk
            | None -> "no crossing")
            (match o.overflow_at_s with
            | Some s -> Printf.sprintf "%.4f" s
            | None -> "-")
            o.resets o.storms o.storm_max_s;
          (match o.overflow_at_s with
          | Some s ->
              record_metric ~exp:"e13"
                ~metric:(Printf.sprintf "%s/m%d/time_to_overflow_s" algo m)
                s
          | None -> ());
          if o.resets > 0 then
            record_metric ~exp:"e13"
              ~metric:(Printf.sprintf "%s/m%d/resets" algo m)
              (float_of_int o.resets))
    [ ("bakery", lock_resolver ()); ("bakery_pp", lock_resolver ~bound:m ()) ];
  [ t; t2 ]

(* ----------------------------------------------------------------- E16 *)

(* The soak experiment: where E13 asks "how does the lock score on a
   short burst", E16 asks "does anything degrade while it keeps
   running" — the flight recorder rides the observatory sampler and the
   drift analyzers judge the recorded p99 and heap series.  The
   verdicts travel with the scorecard row (record_scorecard ~extra), so
   BENCH_locks.json carries the soak's health verdict next to its
   goodput under the same regress gate. *)
let e16 ~quick =
  let t =
    Table.make
      ~title:
        "E16 (flight-recorded soak): Seconds-budget open-loop run with \
         drift verdicts over the recorded time series"
      ~notes:
        [
          "the flight recorder samples lock stats, live acquire-latency \
           percentiles and GC gauges once per observatory poll \
           (Obs.Recorder riding Workload.Suite.run_cell ~flight)";
          "drift = Obs.Analyze.drift over the recorded series: window \
           means must be monotone and move >10% first-to-last window; \
           'insufficient' means the run was too short to split into \
           windows (expected in quick mode)";
          "verdicts are persisted into the BENCH_locks.json row \
           (drift_p99, drift_gc_heap) alongside the scorecard fields";
        ]
      [
        "lock"; "domains"; "rate/s"; "soak(s)"; "goodput/s"; "p99";
        "samples"; "p99 drift"; "heap drift"; "SLO";
      ]
  in
  let dur = if quick then 1.0 else 60.0 in
  let rate = 4_000.0 in
  let nprocs = 2 in
  let seed = 42 in
  let resolve = lock_resolver () in
  List.iter
    (fun algo ->
      let flight = Obs.Recorder.create () in
      let card =
        Workload.Suite.run_cell resolve
          ~sample_interval_s:(if quick then 2e-3 else 5e-2)
          ~flight ~algo ~nprocs ~rate
          ~budget:(Workload.Openloop.Seconds dur) ~seed ()
      in
      Obs.Recorder.stop flight;
      let samples = Obs.Recorder.samples flight in
      let series_by_suffix suffix =
        match
          List.find_opt
            (fun n -> String.ends_with ~suffix n)
            (Obs.Flight.names samples)
        with
        | Some n -> Obs.Flight.series samples n
        | None -> [||]
      in
      let p99_drift =
        Obs.Analyze.drift ~metric:"p99" (series_by_suffix ".acquire_s.p99")
      in
      let heap_drift =
        Obs.Analyze.drift ~metric:"gc.heap_mb"
          (Obs.Flight.series samples "gc.heap_mb")
      in
      let v (d : Obs.Analyze.drift) = Obs.Analyze.verdict_to_string d.verdict in
      record_scorecard card
        ~extra:
          [
            ("drift_p99", Telemetry.Json.Str (v p99_drift));
            ("drift_gc_heap", Telemetry.Json.Str (v heap_drift));
            ( "flight_samples",
              Telemetry.Json.Num (float_of_int (List.length samples)) );
            ("soak_s", Telemetry.Json.Num dur);
          ];
      record_metric ~exp:"e16"
        ~metric:(Printf.sprintf "%s/d%d/goodput" algo nprocs)
        card.goodput;
      record_metric ~exp:"e16"
        ~metric:(Printf.sprintf "%s/d%d/p99_ns" algo nprocs)
        (float_of_int card.p99_ns);
      Table.add_rowf t "%s|%d|%.0f|%.0f|%.0f|%s|%d|%s|%s|%s" algo nprocs rate
        dur card.goodput
        (latency_cell [ ("v", card.p99_ns) ] "v")
        (List.length samples) (v p99_drift) (v heap_drift) (slo_cell card))
    [ "bakery_pp"; "ticket" ];
  [ t ]

(* ------------------------------------------------------- ablations *)

let a1 ~quick =
  let t =
    Table.make
      ~title:
        "A1 (ablation): is the L1 gate needed for safety?  Bakery++ \
         without the gate"
      ~notes:
        [
          "removing the gate preserves both invariants: the pre-increment \
           reset alone implies the theorem";
          "the gate's role is operational: a gated process waits passively; \
           a gateless one churns choosing/number writes (reset storms) and \
           reintroduces doorway restarts";
        ]
      [
        "variant"; "N"; "M"; "model checking"; "sim resets/1k CS"; "sim CS entries";
      ]
  in
  let variants =
    [
      ("paper", Core.Bakery_pp_model.paper_variant);
      ( "no_gate",
        { Core.Bakery_pp_model.paper_variant with with_gate = false } );
    ]
  in
  let configs = if quick then [ (3, 2) ] else [ (3, 2); (2, 3); (4, 2) ] in
  List.iter
    (fun (name, v) ->
      List.iter
        (fun (n, m) ->
          if quick || n < 4 || name <> "skip" then begin
            let prog = Core.Bakery_pp_model.program_variant v in
            let sys = MC.System.make prog ~nprocs:n ~bound:m in
            let r =
              MC.Explore.run
                ~invariants:[ MC.Invariant.mutex; MC.Invariant.no_overflow ]
                sys
            in
            let cfg =
              {
                (Schedsim.Runner.default_config ~nprocs:n ~bound:m) with
                strategy = Schedsim.Scheduler.Uniform 3;
                max_steps = (if quick then 100_000 else 400_000);
              }
            in
            let s = Schedsim.Runner.run prog cfg in
            let cs = Schedsim.Runner.total_cs s in
            let resets =
              Schedsim.Metrics.label_count prog s Core.Bakery_pp_model.reset_label
            in
            Table.add_rowf t "%s|%d|%d|%s|%.1f|%d" name n m (outcome_cell r)
              (if cs = 0 then 0.0 else 1000.0 *. float_of_int resets /. float_of_int cs)
              cs
          end)
        configs)
    variants;
  [ t ]

let a2 ~quick =
  let t =
    Table.make
      ~title:
        "A2 (ablation): store order matters — increment before the check \
         and the theorem falls"
      ~notes:
        [
          "Algorithm 2 stores the *un-incremented* maximum, checks, then \
           increments; storing 1+max first reintroduces the original \
           Bakery's overflow site";
          "with N = 2 the gate happens to mask the bug; from N = 3 the \
           checker finds the overflow — the ablation shows both conditionals \
           must cooperate";
        ]
      [ "variant"; "N"; "M"; "model checking" ]
  in
  let unsafe =
    { Core.Bakery_pp_model.paper_variant with increment_first = true }
  in
  let configs = if quick then [ (2, 2); (3, 2) ] else [ (2, 2); (2, 4); (3, 2); (3, 3) ] in
  List.iter
    (fun (n, m) ->
      let prog = Core.Bakery_pp_model.program_variant unsafe in
      let sys = MC.System.make prog ~nprocs:n ~bound:m in
      let r =
        MC.Explore.run
          ~invariants:[ MC.Invariant.mutex; MC.Invariant.no_overflow ]
          sys
      in
      Table.add_rowf t "increment_first|%d|%d|%s" n m (outcome_cell r))
    configs;
  [ t ]

let a3 ~quick =
  let t =
    Table.make
      ~title:
        "A3 (ablation, paper §5 remark): '>=' vs '=' at the capacity tests \
         under safe-register read anomalies"
      ~notes:
        [
          "paper: \"The reason we used the operator >= is that Bakery \
           assumes that a read that overlaps a write can return an \
           arbitrary natural value.  If we can assume that no value greater \
           than the register limit M will ever be returned, then the \
           operator = can also be used.\"";
          "in-range flicker (reads <= M): both variants are indistinguishable \
           — the paper's 'then = can also be used';";
          "out-of-range flicker (reads up to 2M, 'arbitrary natural value'): \
           the = gate stops blocking on garbage; note that the unguarded \
           maximum *store* is then an overflow hazard for both variants — a \
           subtlety of 6.1 under the paper's own read model (see DESIGN.md)";
        ]
      [
        "gate cmp"; "flicker"; "gate passes"; "resets"; "overflows";
        "mutex violations";
      ]
  in
  let steps = if quick then 100_000 else 500_000 in
  let bound = 4 in
  let run ~exact ~slack =
    let v = { Core.Bakery_pp_model.paper_variant with gate_exact = exact } in
    let prog = Core.Bakery_pp_model.program_variant v in
    let cfg =
      {
        (Schedsim.Runner.default_config ~nprocs:3 ~bound) with
        strategy = Schedsim.Scheduler.Uniform 19;
        max_steps = steps;
        flicker =
          Some
            {
              Schedsim.Runner.flicker_prob = 0.05;
              flicker_model = Regsem.Model.Safe;
              flicker_slack = slack;
            };
      }
    in
    let r = Schedsim.Runner.run prog cfg in
    let gate_passes =
      Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.gate_label
    in
    let resets =
      Schedsim.Metrics.label_count prog r Core.Bakery_pp_model.reset_label
    in
    Table.add_rowf t "%s|%s|%d|%d|%d|%d"
      (if exact then "=" else ">=")
      (if slack = 0 then "in-range (<= M)" else "arbitrary (<= 2M)")
      gate_passes resets r.overflow_events r.mutex_violations
  in
  run ~exact:false ~slack:0;
  run ~exact:true ~slack:0;
  run ~exact:false ~slack:bound;
  run ~exact:true ~slack:bound;
  [ t ]

(* ----------------------------------------------------------------- E14 *)

(* Weak-register matrix: exhaustively check mutex and no-overflow
   (claims C1/C2) for Bakery, Bakery++ and Black-White Bakery under
   atomic, regular and safe registers.  The verdict column is the
   experiment's result: Bakery++'s overflow gate survives safe
   registers at N=2,3 — a result the paper's atomic-only TLC setup
   never established — while Black-White's color-based bound does not. *)
let e14 ~quick =
  let t =
    Table.make
      ~title:
        "E14 (weak registers): mutex & no-overflow for Bakery, Bakery++ \
         and Black-White Bakery under atomic, regular and safe registers"
      ~notes:
        [
          "weak models two-phase every shared write and branch each \
           overlapped read over its candidate values (lib/regsem): \
           regular = {old, new}, safe = the register's whole range";
          "VIOLATION rows carry the shortest counterexample's length — \
           BFS order is preserved under the weak semantics";
          "bakery_pp's safe rows passing is the machine-checked headline; \
           black_white_bakery is atomic-safe but loses no-overflow under \
           regular reads (and mutual exclusion itself at N=3)";
          "distinct/generated count the two-phase state space under weak \
           models, so weak rows are incomparable to atomic rows";
        ]
      [
        "model"; "N"; "M"; "registers"; "verdict"; "distinct"; "generated";
        "depth"; "time(s)"; "kstates/s";
      ]
  in
  let models =
    [
      ("bakery", Algorithms.Bakery.program ());
      ("bakery_pp", Core.Bakery_pp_model.program ());
      ("black_white_bakery", Algorithms.Blackwhite.program ());
    ]
  in
  let ns = if quick then [ 2 ] else [ 2; 3 ] in
  let m = 3 in
  let reps = if quick then 1 else 3 in
  let best f =
    let r0 : MC.Explore.result = f () in
    let best = ref r0 in
    for _ = 2 to reps do
      let r : MC.Explore.result = f () in
      if r.stats.runtime < !best.stats.runtime then best := r
    done;
    !best
  in
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun n ->
          List.iter
            (fun rm ->
              let rms = Regsem.Model.to_string rm in
              let sys =
                MC.System.make ~register_model:rm prog ~nprocs:n ~bound:m
              in
              let r =
                best (fun () ->
                    MC.Explore.run
                      ~invariants:
                        [ MC.Invariant.mutex; MC.Invariant.no_overflow ]
                      ~max_states:5_000_000 sys)
              in
              let sps =
                if r.MC.Explore.stats.runtime > 0.0 then
                  float_of_int r.stats.distinct /. r.stats.runtime
                else 0.0
              in
              (* The register model is part of the metric name, so the
                 --check-regress gate compares weak rows only against
                 prior weak rows of the same model.  Millisecond-scale
                 rows are pure timer noise: their verdicts and state
                 counts are still recorded, but they don't contribute a
                 states/sec datapoint for the gate. *)
              let tag = Printf.sprintf "%s_n%d_m%d/%s" name n m rms in
              if r.stats.runtime >= 0.02 then
                record_metric ~engine:rms ~wall_s:r.stats.runtime ~exp:"e14"
                  ~metric:(tag ^ "/states_per_sec") sps;
              record_metric ~engine:rms ~exp:"e14"
                ~metric:(tag ^ "/distinct")
                (float_of_int r.stats.distinct);
              Table.add_rowf t "%s|%d|%d|%s|%s|%d|%d|%d|%.3f|%.1f" name n m
                rms (outcome_cell r) r.stats.distinct r.stats.generated
                r.stats.depth r.stats.runtime (sps /. 1e3))
            Regsem.Model.all)
        ns)
    models;
  [ t ]

(* ----------------------------------------------------------------- E15 *)

(* Reduction modes E15 sweeps; the bench CLI's --reduce narrows this to
   [Off; mode] (the full run stays in as the ratio baseline). *)
let e15_modes = ref [ MC.Reduce.Off; MC.Reduce.Sym; MC.Reduce.Sym_por ]

(* Symmetry + POR sweep over the pid-symmetric zoo models.  Each config
   runs once per reduction mode; the ratio column is full-distinct /
   reduced-distinct when the unreduced baseline completed, and the C8
   block re-runs N > M (the paper's open question 1) where the quotient
   makes previously budget-infeasible sizes exact.  Verdicts must agree
   with the full search wherever both complete — the @bench-smoke
   reduction leg and the fuzzer's reduced oracle pin that equivalence;
   here the table shows it. *)
let e15 ~quick =
  let t =
    Table.make
      ~title:
        "E15 (reduction): symmetry + ample-set POR on the pid-symmetric \
         zoo — quotient sizes, reduction ratios, and N > M (C8) at \
         previously-infeasible sizes"
      ~notes:
        [
          "reduce=none is the exhaustive baseline; sym canonicalizes \
           states under process-id permutation (lib/modelcheck/reduce); \
           sym+por additionally expands a single ample process where the \
           static tables allow it";
          "ratio = distinct(none) / distinct(mode) for the same (model, \
           N, M); blank when the baseline exhausted its state budget — \
           exactly the configurations the reduction newly settles";
          "verdicts agree with the full search wherever both complete \
           (pinned by the fuzz `reduced` oracle and @bench-smoke); on a \
           violation the searches may report different-length \
           counterexamples under POR";
          "bakery variants are NOT in this table: their id tie-break \
           (and computed per-process indexing) fails the symmetry \
           certificate, so the quotient would be the identity — see \
           DESIGN.md";
        ]
      [
        "model"; "N"; "M"; "reduce"; "verdict"; "distinct"; "generated";
        "depth"; "time(s)"; "ratio";
      ]
  in
  let max_states = 3_000_000 in
  let configs =
    if quick then [ ("ticket_mod", 3, 3); ("tas", 3, 2); ("ticket", 3, 3) ]
    else
      [
        ("ticket_mod", 3, 3);
        ("ticket_mod", 4, 4);
        ("ticket_mod", 5, 5);
        (* full search exhausts the 3M-state budget from N=6; the
           quotient stays tiny *)
        ("ticket_mod", 6, 6);
        ("tas", 3, 2);
        ("tas", 5, 2);
        (* C8, N > M: the mod-M ticket loses mutual exclusion and the
           unbounded ticket overflows — now confirmed at sizes the
           paper's TLC setup never reached *)
        ("ticket", 3, 3);
        ("ticket", 4, 3);
        ("ticket_mod", 4, 3);
        ("ticket_mod", 5, 2);
      ]
  in
  List.iter
    (fun (name, n, m) ->
      let prog = Registry.find_model name in
      let sys = MC.System.make prog ~nprocs:n ~bound:m in
      let baseline = ref None in
      List.iter
        (fun mode ->
          let ms = MC.Reduce.mode_to_string mode in
          let r =
            MC.Explore.run
              ~invariants:[ MC.Invariant.mutex; MC.Invariant.no_overflow ]
              ~max_states ~reduce:mode sys
          in
          let complete = r.MC.Explore.outcome <> MC.Explore.Capacity in
          if mode = MC.Reduce.Off && complete then
            baseline := Some r.stats.distinct;
          let ratio =
            match (!baseline, mode) with
            | Some full, (MC.Reduce.Sym | MC.Reduce.Sym_por) when complete ->
                Some (float_of_int full /. float_of_int r.stats.distinct)
            | _ -> None
          in
          (* The reduce mode is part of the metric name, so the
             --check-regress gate compares a quotient run only against
             prior runs of the same mode.  Millisecond rows are timer
             noise: no states/sec datapoint, counts still recorded. *)
          let tag = Printf.sprintf "%s_n%d_m%d/reduce=%s" name n m ms in
          let sps =
            if r.stats.runtime > 0.0 then
              float_of_int r.stats.distinct /. r.stats.runtime
            else 0.0
          in
          if r.stats.runtime >= 0.02 then
            record_metric ~engine:ms ~wall_s:r.stats.runtime ~exp:"e15"
              ~metric:(tag ^ "/states_per_sec") sps;
          record_metric ~engine:ms ~exp:"e15" ~metric:(tag ^ "/distinct")
            (float_of_int r.stats.distinct);
          Option.iter
            (fun x ->
              record_metric ~engine:ms ~exp:"e15"
                ~metric:(tag ^ "/reduction_ratio") x)
            ratio;
          Table.add_rowf t "%s|%d|%d|%s|%s|%d|%d|%d|%.3f|%s" name n m ms
            (outcome_cell r) r.stats.distinct r.stats.generated r.stats.depth
            r.stats.runtime
            (match ratio with
            | Some x -> Printf.sprintf "%.1fx" x
            | None -> ""))
        !e15_modes)
    configs;
  [ t ]

let all =
  [
    { id = "e1"; summary = "TLC reproduction: Bakery++ satisfies mutex & no-overflow (paper §6)"; run = e1 };
    { id = "e2"; summary = "Original Bakery overflows bounded registers (paper §3)"; run = e2 };
    { id = "e3"; summary = "Bakery++ refines Bakery: trace inclusion (paper §6.2)"; run = e3 };
    { id = "e4"; summary = "Time/steps to first overflow vs register width (paper §3/§4)"; run = e4 };
    { id = "e5"; summary = "Throughput parity with ample registers (paper §7)"; run = e5 };
    { id = "e6"; summary = "Reset/gate cost of overflow avoidance vs M (paper §7)"; run = e6 };
    { id = "e7"; summary = "Algorithm-zoo comparison (paper §4)"; run = e7 };
    { id = "e8"; summary = "FCFS order and fairness across the zoo (paper §1.2/§8.2)"; run = e8 };
    { id = "e9"; summary = "Starvation lassos at the L1 gate (paper §6.3)"; run = e9 };
    { id = "e10"; summary = "More processes than ticket values, N > M (paper §8.1)"; run = e10 };
    { id = "e11"; summary = "Model-checker throughput: compiled evaluator & persistent domain pool"; run = e11 };
    { id = "e12"; summary = "Sharded explorer: exhaustive Bakery++ past the small-N wall (fp-only)"; run = e12 };
    { id = "e13"; summary = "SLO observatory: open-loop lock traffic, overflow telemetry, scorecards"; run = e13 };
    { id = "e14"; summary = "Weak registers: Bakery/Bakery++/Black-White under atomic, regular, safe (regsem)"; run = e14 };
    { id = "e15"; summary = "Symmetry + POR reduction: quotient sweep and N > M (C8) past the full-search budget"; run = e15 };
    { id = "e16"; summary = "Flight-recorded soak: Seconds-budget open-loop run with drift verdicts"; run = e16 };
    { id = "a1"; summary = "Ablation: remove the L1 gate — safety survives, behaviour degrades"; run = a1 };
    { id = "a2"; summary = "Ablation: increment before checking — the theorem falls at N >= 3"; run = a2 };
    { id = "a3"; summary = "Ablation: '>=' vs '=' capacity tests under read anomalies (paper §5)"; run = a3 };
  ]

let find id = List.find (fun e -> e.id = id) all
