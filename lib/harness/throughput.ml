module Shape = Workload.Shape

type result = {
  nprocs : int;
  elapsed : float;
  per_domain : int array;
  total : int;
  ops_per_sec : float;
  lock_stats : (string * int) list;
  space_words : int;
}

(* Spin-barrier so all domains start the measured section together. *)
let wait_barrier barrier =
  Atomic.decr barrier;
  while Atomic.get barrier > 0 do
    Registers.Spin.relax ()
  done

let now () = Unix.gettimeofday ()

let run ?(workload = Shape.contended) ?(duration = 0.3) ?(seed = 7)
    ?(instrument = false) (lock : Locks.Lock_intf.instance) ~nprocs =
  if nprocs < 1 then invalid_arg "Throughput.run: nprocs must be >= 1";
  let lock = if instrument then Locks.Latency.instrument lock else lock in
  let stop = Atomic.make false in
  let barrier = Atomic.make (nprocs + 1) in
  let worker i =
    let rng = Prng.Rng.create (seed + i) in
    let sink = ref 0 in
    let count = ref 0 in
    wait_barrier barrier;
    while not (Atomic.get stop) do
      lock.acquire i;
      sink := !sink + Shape.spin (Shape.draw rng workload.Shape.cs);
      lock.release i;
      incr count;
      sink := !sink + Shape.spin (Shape.draw rng workload.Shape.think)
    done;
    (!count, !sink)
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (fun () -> worker i)) in
  wait_barrier barrier;
  let t0 = now () in
  Unix.sleepf duration;
  Atomic.set stop true;
  let counts = Array.map (fun d -> fst (Domain.join d)) domains in
  let elapsed = now () -. t0 in
  let total = Array.fold_left ( + ) 0 counts in
  {
    nprocs;
    elapsed;
    per_domain = counts;
    total;
    ops_per_sec = float_of_int total /. elapsed;
    lock_stats = lock.stats ();
    space_words = lock.space_words;
  }

type overflow_result = {
  acquires_before : int;
  seconds_before : float;
  overflowed : bool;
}

let run_until_overflow ?(workload = Shape.contended) ?(max_seconds = 20.0)
    ~make ~recover ~nprocs () =
  if nprocs < 1 then invalid_arg "Throughput.run_until_overflow: nprocs >= 1";
  let lock : Locks.Lock_intf.instance = make () in
  let stop = Atomic.make false in
  let tripped = Atomic.make false in
  let barrier = Atomic.make (nprocs + 1) in
  let deadline_guard t0 = now () -. t0 > max_seconds in
  let worker i =
    let rng = Prng.Rng.create (100 + i) in
    let sink = ref 0 in
    let count = ref 0 in
    wait_barrier barrier;
    let t0 = now () in
    (try
       while not (Atomic.get stop) do
         lock.acquire i;
         sink := !sink + Shape.spin (Shape.draw rng workload.Shape.cs);
         lock.release i;
         incr count;
         if !count land 0xff = 0 && deadline_guard t0 then Atomic.set stop true
       done
     with Registers.Bounded.Overflow _ ->
       Atomic.set tripped true;
       Atomic.set stop true;
       (* Crash semantics: reset own registers so nobody waits on us. *)
       recover i);
    !count
  in
  let domains = Array.init nprocs (fun i -> Domain.spawn (fun () -> worker i)) in
  wait_barrier barrier;
  let t0 = now () in
  let counts = Array.map Domain.join domains in
  let elapsed = now () -. t0 in
  {
    acquires_before = Array.fold_left ( + ) 0 counts;
    seconds_before = elapsed;
    overflowed = Atomic.get tripped;
  }
