module Json = Telemetry.Json

let schema_version = 1

type sample = { seq : int; at_s : float; values : (string * float) list }

let sample ~seq ~at_s values =
  {
    seq;
    at_s;
    values = List.sort (fun (a, _) (b, _) -> compare a b) values;
  }

let sample_to_json s =
  Json.Obj
    [
      ("kind", Json.Str "flight");
      ("seq", Json.Num (float_of_int s.seq));
      ("at_s", Json.Num s.at_s);
      ("values", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.values));
    ]

let sample_of_json j =
  match (Json.member "seq" j, Json.member "at_s" j, Json.member "values" j) with
  | Some sq, Some at, Some (Json.Obj vs) -> (
      match (Json.to_num sq, Json.to_num at) with
      | Some sq, Some at ->
          let values =
            List.filter_map
              (fun (k, v) ->
                match Json.to_num v with Some f -> Some (k, f) | None -> None)
              vs
          in
          Ok (sample ~seq:(int_of_float sq) ~at_s:at values)
      | _ -> Error "flight sample: seq/at_s not numeric")
  | _ -> Error "flight sample: missing seq, at_s or values"

let header_json () =
  Json.Obj
    (("kind", Json.Str "flight_header")
    :: ("schema", Json.Num (float_of_int schema_version))
    :: Telemetry.Runmeta.to_fields (Telemetry.Runmeta.capture ()))

let check_header j =
  match Json.member "schema" j with
  | Some (Json.Num v) when int_of_float v = schema_version -> Ok ()
  | Some (Json.Num v) ->
      Error
        (Printf.sprintf "flight header: schema %d, this reader speaks %d"
           (int_of_float v) schema_version)
  | _ -> Error "flight header: missing schema field"

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let rec go lineno acc header =
        match input_line ic with
        | exception End_of_file -> Ok (header, List.rev acc)
        | "" -> go (lineno + 1) acc header
        | line -> (
            match Json.parse line with
            | Error e ->
                Error (Printf.sprintf "line %d: %s" lineno e)
            | Ok j -> (
                match Json.member "kind" j with
                | Some (Json.Str "flight_header") -> (
                    match check_header j with
                    | Ok () -> go (lineno + 1) acc (Some j)
                    | Error e ->
                        Error (Printf.sprintf "line %d: %s" lineno e))
                | Some (Json.Str "flight") -> (
                    match sample_of_json j with
                    | Ok s -> go (lineno + 1) (s :: acc) header
                    | Error e ->
                        Error (Printf.sprintf "line %d: %s" lineno e))
                (* Foreign kinds pass through untouched: a tee'd sink may
                   interleave progress events with flight samples. *)
                | _ -> go (lineno + 1) acc header))
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go 1 [] None)

let names samples =
  List.sort_uniq compare
    (List.concat_map (fun s -> List.map fst s.values) samples)

let series samples name =
  Array.of_list
    (List.filter_map (fun s -> List.assoc_opt name s.values) samples)

let times samples name =
  Array.of_list
    (List.filter_map
       (fun s ->
         match List.assoc_opt name s.values with
         | Some _ -> Some s.at_s
         | None -> None)
       samples)
