let mean a =
  let n = Array.length a in
  if n = 0 then nan
  else Array.fold_left ( +. ) 0. a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. a in
    sqrt (ss /. float_of_int (n - 1))
  end

(* U+2581..U+2588, 3 bytes each in UTF-8. *)
let levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline a =
  if Array.length a = 0 then ""
  else begin
    let finite = Array.to_list a |> List.filter Float.is_finite in
    match finite with
    | [] -> String.concat "" (List.map (fun _ -> "·") (Array.to_list a))
    | _ ->
        let lo = List.fold_left Float.min infinity finite in
        let hi = List.fold_left Float.max neg_infinity finite in
        let span = hi -. lo in
        let cell v =
          if not (Float.is_finite v) then "·"
          else if span <= 0. then levels.(3)
          else
            let i = int_of_float ((v -. lo) /. span *. 7.99) in
            levels.(if i < 0 then 0 else if i > 7 then 7 else i)
        in
        String.concat "" (List.map cell (Array.to_list a))
  end

type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  slope_stderr : float;
  n : int;
}

let fit ~t ~y =
  let n = min (Array.length t) (Array.length y) in
  if n < 2 then None
  else begin
    let t = Array.sub t 0 n and y = Array.sub y 0 n in
    let mt = mean t and my = mean y in
    let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dt = t.(i) -. mt and dy = y.(i) -. my in
      sxx := !sxx +. (dt *. dt);
      sxy := !sxy +. (dt *. dy);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx <= 0. then None
    else begin
      let slope = !sxy /. !sxx in
      let intercept = my -. (slope *. mt) in
      let ss_res = ref 0. in
      for i = 0 to n - 1 do
        let e = y.(i) -. (intercept +. (slope *. t.(i))) in
        ss_res := !ss_res +. (e *. e)
      done;
      let r2 = if !syy <= 0. then 1. else 1. -. (!ss_res /. !syy) in
      let slope_stderr =
        if n <= 2 then 0.
        else sqrt (!ss_res /. float_of_int (n - 2) /. !sxx)
      in
      Some { slope; intercept; r2; slope_stderr; n }
    end
  end
