(** Flight-record format: schema-versioned time-series snapshots.

    A flight record is a JSONL file: one self-describing header line
    followed by one line per sample.  Each sample is a numeric
    key-value snapshot of whatever the producer chose to record —
    explorer throughput, live lock percentiles, GC gauges — stamped
    with a sequence number and seconds since the recorder started.
    The format is append-only and every line is flushed as written, so
    a run killed mid-flight leaves a well-formed prefix ready for
    [bakery_cli report]. *)

val schema_version : int
(** Version of the sample line shape; {!load} refuses files whose
    header declares a different version. *)

type sample = {
  seq : int;  (** 0-based, gap-free as written (gaps mean ring drops) *)
  at_s : float;  (** seconds since the recorder was created *)
  values : (string * float) list;  (** sorted by metric name *)
}

val sample : seq:int -> at_s:float -> (string * float) list -> sample
(** Sorts [values] by name (deterministic JSON and lookups). *)

val sample_to_json : sample -> Telemetry.Json.t
val sample_of_json : Telemetry.Json.t -> (sample, string) result

val header_json : unit -> Telemetry.Json.t
(** [{"kind": "flight_header", "schema": v, <runmeta>}] — the first
    line of every flight record. *)

val load : string -> (Telemetry.Json.t option * sample list, string) result
(** Parse a flight-record file: the header (if any) and all samples in
    file order.  [Error] on unreadable files, malformed lines, or a
    header with the wrong schema version.  An empty file is
    [Ok (None, \[\])]. *)

(** {1 Series extraction} *)

val names : sample list -> string list
(** Sorted union of metric names across all samples. *)

val series : sample list -> string -> float array
(** Values of one metric in sample order, skipping samples where it is
    absent. *)

val times : sample list -> string -> float array
(** [at_s] of exactly the samples {!series} kept, so
    [times s n] and [series s n] always zip. *)
