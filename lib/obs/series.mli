(** Small numeric helpers over time series: summary statistics,
    unicode sparklines and least-squares line fitting.  Everything here
    is pure and deterministic — the report renderer leans on that for
    byte-identical output. *)

val mean : float array -> float
(** [nan] when empty. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); [0.] when n < 2. *)

val sparkline : float array -> string
(** Eight-level unicode sparkline (▁ to █) scaled to the series'
    min..max; a flat series renders as all ▄, non-finite values as ·,
    an empty series as the empty string. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination; 1. for a perfect fit *)
  slope_stderr : float;  (** standard error of the slope estimate *)
  n : int;
}

val fit : t:float array -> y:float array -> fit option
(** Ordinary least squares of [y] against [t] (paired up to the
    shorter length).  [None] when fewer than two points remain or all
    [t] are equal. *)
