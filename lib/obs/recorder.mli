(** The flight recorder: a bounded in-memory ring of {!Flight.sample}s
    plus an optional JSONL sink, fed either by explicit {!record}
    calls (push mode — a driver that already has a sampling loop, like
    the lock observatory) or by a background sampler domain polling a
    thunk at a fixed cadence (pull mode — the explorer, which is busy
    exploring).

    The ring keeps the last [capacity] samples and counts what it
    dropped, so a week-long soak cannot exhaust memory; the sink, when
    configured, receives {e every} sample with a per-line flush, so the
    on-disk record is complete and crash-safe even when the ring has
    wrapped.  {!stop} is idempotent and safe from [at_exit] — the
    violation and early-exit paths rely on that. *)

type t

val create : ?capacity:int -> ?path:string -> unit -> t
(** [capacity] bounds the in-memory ring (default 4096 samples).
    [path] opens a JSONL sink and writes the schema header line
    immediately; omitted means in-memory only. *)

val record : t -> (string * float) list -> unit
(** Stamp the values with the next sequence number and seconds since
    {!create}, append to the ring (dropping the oldest when full) and
    the sink.  Thread-safe; a no-op after {!stop}. *)

val start_sampler : ?interval_s:float -> t -> poll:(unit -> (string * float) list) -> unit
(** Spawn a background domain that {!record}s [poll ()] every
    [interval_s] (default 0.25 s) until {!stop}.  At most one sampler
    per recorder; raises [Invalid_argument] on a second call. *)

val stop : t -> unit
(** Join the sampler domain (if any), take one final sample from its
    poll thunk, and close the sink.  Idempotent. *)

val samples : t -> Flight.sample list
(** Ring contents, oldest first. *)

val dropped : t -> int
(** Samples evicted from the ring so far (still present in the sink). *)

val of_metrics : Telemetry.Metrics.t -> (string * float) list
(** Flatten a registry snapshot into flight values: counters and
    gauges under their own names, histograms as [<name>.count],
    [<name>.p50], [<name>.p99] and [<name>.p999] (empty histograms are
    skipped — a NaN row per sample would just pollute every series). *)
