type verdict = Flat | Rising | Falling | Insufficient

let verdict_to_string = function
  | Flat -> "flat"
  | Rising -> "rising"
  | Falling -> "falling"
  | Insufficient -> "insufficient"

type drift = {
  metric : string;
  verdict : verdict;
  first : float;
  last : float;
  change_frac : float;
}

(* Window means, not a line fit: a single spike in an otherwise-flat
   series drags a regression slope but barely moves one window's mean,
   and monotonicity across windows is exactly the "keeps getting
   worse" shape drift hunting is after. *)
let drift ?(windows = 4) ?(threshold = 0.10) ~metric series =
  let n = Array.length series in
  if n < 2 * windows then
    { metric; verdict = Insufficient; first = nan; last = nan;
      change_frac = nan }
  else begin
    let means =
      Array.init windows (fun w ->
          let lo = w * n / windows and hi = (w + 1) * n / windows in
          Series.mean (Array.sub series lo (hi - lo)))
    in
    let first = means.(0) and last = means.(windows - 1) in
    let change_frac =
      if Float.abs first <= 1e-12 then
        if Float.abs last <= 1e-12 then 0. else Float.infinity *. (if last > 0. then 1. else -1.)
      else (last -. first) /. Float.abs first
    in
    (* 2% jitter tolerance per step so measurement noise cannot break
       an otherwise clearly monotone staircase. *)
    let tol m = 0.02 *. Float.abs m in
    let monotone cmp =
      let ok = ref true in
      for i = 0 to windows - 2 do
        if not (cmp means.(i + 1) means.(i)) then ok := false
      done;
      !ok
    in
    let up = monotone (fun b a -> b >= a -. tol a) in
    let down = monotone (fun b a -> b <= a +. tol a) in
    let verdict =
      if up && change_frac >= threshold then Rising
      else if down && change_frac <= -.threshold then Falling
      else Flat
    in
    { metric; verdict; first; last; change_frac }
  end

type eta = {
  remaining_s : float;
  lo_s : float;
  hi_s : float;
  rate : float;
  samples : int;
}

let eta ~target ~t ~y =
  match Series.fit ~t ~y with
  | None -> None
  | Some f when f.slope <= 0. -> None
  | Some f ->
      let n = min (Array.length t) (Array.length y) in
      let y_last = y.(n - 1) in
      let gap = Float.max 0. (target -. y_last) in
      let at rate = if rate <= 0. then infinity else gap /. rate in
      Some
        {
          remaining_s = at f.slope;
          lo_s = at (f.slope +. (2. *. f.slope_stderr));
          hi_s = at (f.slope -. (2. *. f.slope_stderr));
          rate = f.slope;
          samples = f.n;
        }

let imbalance ~occ_min ~occ_max =
  let n = min (Array.length occ_min) (Array.length occ_max) in
  if n = 0 then None
  else begin
    let worst = ref 0. in
    for i = 0 to n - 1 do
      let r = occ_max.(i) /. Float.max 1. occ_min.(i) in
      if r > !worst then worst := r
    done;
    Some !worst
  end

let starvation ~steals ~idle =
  let ns = Array.length steals and ni = Array.length idle in
  if ns < 2 || ni < 2 then None
  else
    Some
      (steals.(ns - 1) -. steals.(0), idle.(ni - 1) -. idle.(0))
