module Json = Telemetry.Json

type input = {
  flight_header : Json.t option;
  flight : Flight.sample list;
  metrics : Json.t list;
  trace : Json.t list;
  bench : Json.t list;
}

let empty =
  { flight_header = None; flight = []; metrics = []; trace = []; bench = [] }

(* ------------------------------------------------------------ format *)

(* One float format for the whole report: integral values without a
   fractional part, everything else %.4g, NaN as "-".  Any drift here
   invalidates every golden file, which is the point — formatting *is*
   part of the output contract. *)
let fnum v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e12 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let fpct v =
  if Float.is_nan v then "-"
  else if Float.is_finite v then Printf.sprintf "%+.1f%%" (100. *. v)
  else if v > 0. then "+inf%"
  else "-inf%"

let table buf header rows =
  let line cells = Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n") in
  line (List.map fst header);
  line (List.map snd header);
  List.iter line rows

let section buf title = Buffer.add_string buf ("\n## " ^ title ^ "\n\n")

(* ------------------------------------------------------------ pieces *)

let num_member name j =
  match Json.member name j with Some v -> Json.to_num v | None -> None

let str_member name j =
  match Json.member name j with Some v -> Json.to_str v | None -> None

(* Series whose sustained growth is a health problem, not progress:
   latency tails, heap size, major-GC pressure, open-loop backlog. *)
let watched name =
  let has sub =
    let n = String.length name and m = String.length sub in
    let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
    go 0
  in
  has "p99" || has "heap_mb" || has "major_collections" || has "behind"

let drift_findings samples =
  Flight.names samples
  |> List.filter watched
  |> List.map (fun name -> Analyze.drift ~metric:name (Flight.series samples name))

let explorer_eta samples =
  (* Either engine's live progress against the run's state budget. *)
  let candidates = [ "explore.live_distinct"; "par_explore.live_distinct" ] in
  let live =
    List.find_opt (fun n -> Array.length (Flight.series samples n) >= 2) candidates
  in
  match live with
  | None -> None
  | Some name -> (
      let target_name =
        if String.length name >= 3 && String.sub name 0 3 = "par" then
          "par_explore.max_states"
        else "explore.max_states"
      in
      match Flight.series samples target_name with
      | [||] -> None
      | targets ->
          let target = targets.(Array.length targets - 1) in
          if target <= 0. || not (Float.is_finite target) then None
          else
            Analyze.eta ~target ~t:(Flight.times samples name)
              ~y:(Flight.series samples name)
            |> Option.map (fun e -> (name, target, e)))

let shard_stats samples =
  let occ_min = Flight.series samples "par_explore.shard_occupancy_min" in
  let occ_max = Flight.series samples "par_explore.shard_occupancy_max" in
  match Analyze.imbalance ~occ_min ~occ_max with
  | None -> None
  | Some ratio ->
      (* Live gauges during a run; the bare counter names only exist in
         a record that sampled past record_finish. *)
      let series_or a b =
        match Flight.series samples a with
        | [||] -> Flight.series samples b
        | s -> s
      in
      let starv =
        Analyze.starvation
          ~steals:(series_or "par_explore.live_steals" "par_explore.steals")
          ~idle:
            (series_or "par_explore.live_idle_epochs"
               "par_explore.idle_epochs")
      in
      Some (ratio, starv)

(* Scorecard rows, generically: obs stays below workload in the dep
   graph, and the report only needs a handful of fields. *)
type card_row = {
  c_key : string;
  c_goodput : float;
  c_p99_ns : float;
  c_slo : bool option;
  c_extra : (string * string) list;  (* drift verdict columns, when present *)
}

let card_of_row j =
  match str_member "kind" j with
  | Some "lock_scorecard" -> (
      match
        (* "domains" is the cell's parallelism; "nprocs" would be the
           runmeta stamp (host cores) — not the same thing *)
        ( str_member "algo" j,
          num_member "domains" j,
          num_member "rate" j,
          num_member "goodput" j,
          num_member "p99_ns" j )
      with
      | Some algo, Some domains, Some rate, Some goodput, Some p99 ->
          let slo =
            match Json.member "slo_pass" j with
            | Some (Json.Bool b) -> Some b
            | _ -> None
          in
          let extra =
            List.filter_map
              (fun k ->
                Option.map (fun v -> (k, v)) (str_member k j))
              [ "drift_p99"; "drift_gc_heap" ]
          in
          Some
            {
              c_key =
                Printf.sprintf "%s/%.0fd/%.0f" algo domains rate;
              c_goodput = goodput;
              c_p99_ns = p99;
              c_slo = slo;
              c_extra = extra;
            }
      | _ -> None)
  | _ -> None

(* Group in first-seen key order; within a key, file order = time
   order, so the last row is "this run" and the best earlier goodput is
   the bar to clear. *)
let card_cells rows =
  let cards = List.filter_map card_of_row rows in
  let keys =
    List.fold_left
      (fun acc c -> if List.mem c.c_key acc then acc else c.c_key :: acc)
      [] cards
    |> List.rev
  in
  List.map
    (fun key ->
      let cell = List.filter (fun c -> c.c_key = key) cards in
      let n = List.length cell in
      let last = List.nth cell (n - 1) in
      let prior = List.filteri (fun i _ -> i < n - 1) cell in
      let best_prior =
        (* nan seed would poison Float.max (it propagates nan), so fold
           from the first positive prior instead *)
        match List.filter (fun c -> c.c_goodput > 0.) prior with
        | [] -> nan
        | p :: ps ->
            List.fold_left
              (fun acc c -> Float.max acc c.c_goodput)
              p.c_goodput ps
      in
      (key, last, best_prior))
    keys

(* ------------------------------------------------------------ render *)

let render input =
  let buf = Buffer.create 4096 in
  let findings = ref [] in
  let finding fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in

  let samples = input.flight in
  let names = Flight.names samples in
  let drifts = drift_findings samples in
  List.iter
    (fun (d : Analyze.drift) ->
      if d.verdict = Analyze.Rising then
        finding "drift: %s rising %s (%s -> %s)" d.metric
          (fpct d.change_frac) (fnum d.first) (fnum d.last))
    drifts;
  let shard = shard_stats samples in
  (match shard with
  | Some (ratio, starv) ->
      if ratio > 4. then
        finding "shards: worst occupancy imbalance %sx" (fnum ratio);
      (match starv with
      | Some (steal_growth, idle_growth)
        when idle_growth > 0. && steal_growth <= 0. ->
          finding "shards: %s idle epochs with no steals (starvation)"
            (fnum idle_growth)
      | _ -> ())
  | None -> ());
  let cells = card_cells input.bench in
  List.iter
    (fun (key, last, best_prior) ->
      (match last.c_slo with
      | Some false -> finding "scorecard %s: SLO fail" key
      | _ -> ());
      if (not (Float.is_nan best_prior)) && last.c_goodput < 0.85 *. best_prior
      then
        finding "scorecard %s: goodput %s vs best prior %s" key
          (fnum last.c_goodput) (fnum best_prior);
      List.iter
        (fun (k, v) ->
          if v = "rising" then finding "scorecard %s: %s %s" key k v)
        last.c_extra)
    cells;
  let findings = List.rev !findings in

  Buffer.add_string buf "# Run report\n";
  section buf "Summary";
  Buffer.add_string buf
    (if findings = [] then "- verdict: **OK**\n"
     else
       Printf.sprintf "- verdict: **ATTENTION** (%d finding%s)\n"
         (List.length findings)
         (if List.length findings = 1 then "" else "s"));
  (match samples with
  | [] -> ()
  | _ ->
      let span =
        (List.nth samples (List.length samples - 1)).Flight.at_s
        -. (List.hd samples).Flight.at_s
      in
      Buffer.add_string buf
        (Printf.sprintf "- flight: %d samples over %s s, %d series (schema %s)\n"
           (List.length samples) (fnum span) (List.length names)
           (match input.flight_header with
           | Some h -> (
               match num_member "schema" h with
               | Some v -> fnum v
               | None -> "?")
           | None -> "?")));
  if input.metrics <> [] then
    Buffer.add_string buf
      (Printf.sprintf "- metrics snapshot: %d instruments\n"
         (List.length input.metrics));
  if input.trace <> [] then
    Buffer.add_string buf
      (Printf.sprintf "- trace: %d events\n" (List.length input.trace));
  if input.bench <> [] then
    Buffer.add_string buf
      (Printf.sprintf "- bench rows: %d (%d scorecard cells)\n"
         (List.length input.bench) (List.length cells));
  List.iter (fun f -> Buffer.add_string buf ("- finding: " ^ f ^ "\n")) findings;

  (* Time series *)
  if names <> [] then begin
    section buf "Time series";
    table buf
      [
        ("series", "---"); ("n", "--:"); ("min", "--:"); ("mean", "--:");
        ("max", "--:"); ("last", "--:"); ("trend", "---");
      ]
      (List.map
         (fun name ->
           let s = Flight.series samples name in
           let n = Array.length s in
           let finite = Array.to_list s |> List.filter Float.is_finite in
           let mn = List.fold_left Float.min infinity finite in
           let mx = List.fold_left Float.max neg_infinity finite in
           [
             name;
             string_of_int n;
             (if finite = [] then "-" else fnum mn);
             fnum (Series.mean s);
             (if finite = [] then "-" else fnum mx);
             (if n = 0 then "-" else fnum s.(n - 1));
             Series.sparkline s;
           ])
         names)
  end;

  (* Drift *)
  if drifts <> [] then begin
    section buf "Drift";
    table buf
      [
        ("series", "---"); ("verdict", "---"); ("first", "--:");
        ("last", "--:"); ("change", "--:");
      ]
      (List.map
         (fun (d : Analyze.drift) ->
           [
             d.metric;
             Analyze.verdict_to_string d.verdict;
             fnum d.first;
             fnum d.last;
             fpct d.change_frac;
           ])
         drifts)
  end;

  (* ETA *)
  (match explorer_eta samples with
  | None -> ()
  | Some (name, target, (e : Analyze.eta)) ->
      section buf "Completion ETA";
      Buffer.add_string buf
        (Printf.sprintf
           "- %s at %s states/s over %d samples, target %s states\n" name
           (fnum e.rate) e.samples (fnum target));
      Buffer.add_string buf
        (Printf.sprintf "- remaining: %s s (band %s–%s s, rate ± 2·stderr)\n"
           (fnum e.remaining_s) (fnum e.lo_s)
           (if Float.is_finite e.hi_s then fnum e.hi_s else "∞")));

  (* Shard balance *)
  (match shard with
  | None -> ()
  | Some (ratio, starv) ->
      section buf "Shard balance";
      Buffer.add_string buf
        (Printf.sprintf "- worst occupancy imbalance: %sx\n" (fnum ratio));
      (match starv with
      | Some (steal_growth, idle_growth) ->
          Buffer.add_string buf
            (Printf.sprintf "- steals over record: %s, idle epochs: %s\n"
               (fnum steal_growth) (fnum idle_growth))
      | None -> ()));

  (* Metrics snapshot: last row per metric name wins (the file appends
     across runs), then sorted by name. *)
  if input.metrics <> [] then begin
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun row ->
        match str_member "metric" row with
        | Some name -> Hashtbl.replace tbl name (Json.member "value" row)
        | None -> ())
      input.metrics;
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    if rows <> [] then begin
      section buf "Metrics snapshot";
      table buf
        [ ("metric", "---"); ("value", "---") ]
        (List.map
           (fun (name, v) ->
             let rendered =
               match v with
               | Some (Json.Num n) -> fnum n
               | Some (Json.Obj _ as o) -> (
                   (* histogram: show the tail, not the buckets *)
                   match
                     ( num_member "count" o, num_member "p50" o,
                       num_member "p99" o, num_member "p999" o )
                   with
                   | Some c, Some p50, Some p99, Some p999 ->
                       Printf.sprintf "n=%s p50=%s p99=%s p999=%s" (fnum c)
                         (fnum p50) (fnum p99) (fnum p999)
                   | _ -> Json.to_string o)
               | Some j -> Json.to_string j
               | None -> "-"
             in
             [ name; rendered ])
           rows)
    end
  end;

  (* Scorecards *)
  if cells <> [] then begin
    section buf "Scorecards";
    table buf
      [
        ("cell", "---"); ("goodput", "--:"); ("vs best prior", "--:");
        ("p99 (ms)", "--:"); ("slo", "---"); ("drift", "---");
      ]
      (List.map
         (fun (key, last, best_prior) ->
           [
             key;
             fnum last.c_goodput;
             (if Float.is_nan best_prior then "-"
              else fpct ((last.c_goodput -. best_prior) /. best_prior));
             fnum (last.c_p99_ns /. 1e6);
             (match last.c_slo with
             | Some true -> "pass"
             | Some false -> "FAIL"
             | None -> "-");
             (if last.c_extra = [] then "-"
              else
                String.concat " "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) last.c_extra));
           ])
         cells)
  end;

  (* Trace *)
  if input.trace <> [] then begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun row ->
        let kind =
          match str_member "kind" row with Some k -> k | None -> "?"
        in
        Hashtbl.replace tbl kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl kind)))
      input.trace;
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    section buf "Trace events";
    table buf
      [ ("kind", "---"); ("events", "--:") ]
      (List.map (fun (k, v) -> [ k; string_of_int v ]) rows)
  end;
  Buffer.contents buf
