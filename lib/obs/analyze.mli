(** Online analyzers over flight-record series: drift detection for
    slowly-degrading tails, ETA estimation for bounded explorations,
    and shard-imbalance attribution.  All pure functions of the sample
    arrays, so the same record always yields the same findings. *)

(** {1 Drift} *)

type verdict =
  | Flat  (** no sustained direction *)
  | Rising  (** window means monotone up and the total change exceeds
                the threshold — e.g. p99 creep or heap growth *)
  | Falling
  | Insufficient  (** too few samples to split into windows *)

val verdict_to_string : verdict -> string
(** ["flat"], ["rising"], ["falling"], ["insufficient"]. *)

type drift = {
  metric : string;
  verdict : verdict;
  first : float;  (** mean of the first window ([nan] if insufficient) *)
  last : float;  (** mean of the last window *)
  change_frac : float;  (** (last - first) / |first|; [nan] if insufficient *)
}

val drift : ?windows:int -> ?threshold:float -> metric:string -> float array -> drift
(** Split the series into [windows] (default 4) equal contiguous
    windows and compare their means: {!Rising} iff the means are
    monotone non-decreasing (2% jitter tolerance) and the relative
    first-to-last change exceeds [threshold] (default 0.10); dually
    {!Falling}; {!Insufficient} below [2 * windows] samples.  Window
    means, not a line fit, so a single spike cannot fake a drift. *)

(** {1 Completion ETA} *)

type eta = {
  remaining_s : float;  (** point estimate to reach the target *)
  lo_s : float;  (** optimistic band edge (rate + 2 stderr) *)
  hi_s : float;  (** pessimistic band edge; [infinity] when the rate is
                     statistically indistinguishable from zero *)
  rate : float;  (** fitted progress per second *)
  samples : int;
}

val eta : target:float -> t:float array -> y:float array -> eta option
(** Least-squares rate of [y] over [t] and the time still needed for
    the last observation to reach [target].  Honest about uncertainty:
    the band comes from the slope's standard error, and the result is
    [None] when the fit fails or the fitted rate is non-positive —
    never a made-up number.  [remaining_s] is [0.] once the last
    observation passed the target. *)

(** {1 Shard balance} *)

val imbalance : occ_min:float array -> occ_max:float array -> float option
(** Worst max/min shard-occupancy ratio across paired samples
    (minimum occupancy clamped to 1 state).  [None] without data. *)

val starvation :
  steals:float array -> idle:float array -> (float * float) option
(** [(steal_growth, idle_growth)] over the record: the increase in the
    steals and idle-epochs counters from first to last sample.  Idle
    epochs climbing while steals stall is the signature of steal
    starvation (nothing left to take, shards still hungry).  [None]
    unless both series have at least two samples. *)
