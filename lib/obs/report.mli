(** The run-report renderer behind [bakery_cli report]: flight
    records, metric snapshots, trace events and bench rows in, one
    deterministic markdown document out.

    Determinism is the contract the golden tests enforce: the output
    is a pure function of {!input} — no clocks, no hostnames, no git
    revisions, keys always sorted, floats always formatted the same
    way — so the same files render byte-identically on any machine,
    and a report diff is a run diff. *)

type input = {
  flight_header : Telemetry.Json.t option;
  flight : Flight.sample list;
  metrics : Telemetry.Json.t list;
      (** [--metrics-out] JSONL rows ([{"metric": ..., "value": ...}]);
          when a name repeats across appended runs the last row wins *)
  trace : Telemetry.Json.t list;  (** trace JSONL events, headers excluded *)
  bench : Telemetry.Json.t list;  (** BENCH_*.json rows *)
}

val empty : input

val render : input -> string
(** Markdown: a summary with an overall verdict ([OK], or [ATTENTION]
    with the findings that earned it), per-series tables with unicode
    sparklines, drift verdicts on tail/heap series, a completion ETA
    when the flight record carries explorer progress against a known
    state-count target, shard-balance attribution, the metrics
    snapshot, scorecard cells diffed against their best prior rows,
    and trace-event counts.  Sections with no data are omitted. *)
