type t = {
  capacity : int;
  ring : Flight.sample option array;
  mutable next_seq : int;
  mutable n_dropped : int;
  born : float;
  sink : out_channel option;
  mutable sampler : Domain.id Domain.t option;
  mutable poll : (unit -> (string * float) list) option;
  stopping : bool Atomic.t;
  mutable stopped : bool;
  interval : float Atomic.t;
  mutex : Mutex.t;
}

let create ?(capacity = 4096) ?path () =
  let sink =
    match path with
    | None -> None
    | Some p ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
        output_string oc (Telemetry.Json.to_string (Flight.header_json ()));
        output_char oc '\n';
        flush oc;
        Some oc
  in
  {
    capacity = max 1 capacity;
    ring = Array.make (max 1 capacity) None;
    next_seq = 0;
    n_dropped = 0;
    born = Telemetry.Clock.now_s ();
    sink;
    sampler = None;
    poll = None;
    stopping = Atomic.make false;
    stopped = false;
    interval = Atomic.make 0.25;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_locked t values =
  if not t.stopped then begin
    let s =
      Flight.sample ~seq:t.next_seq
        ~at_s:(Telemetry.Clock.now_s () -. t.born)
        values
    in
    let slot = t.next_seq mod t.capacity in
    if t.ring.(slot) <> None then t.n_dropped <- t.n_dropped + 1;
    t.ring.(slot) <- Some s;
    t.next_seq <- t.next_seq + 1;
    match t.sink with
    | None -> ()
    | Some oc ->
        output_string oc (Telemetry.Json.to_string (Flight.sample_to_json s));
        output_char oc '\n';
        (* Per-line flush: the crash-forensics contract (a killed run
           leaves only whole lines) is the point of the sink. *)
        flush oc
  end

let record t values = locked t (fun () -> record_locked t values)

let start_sampler ?(interval_s = 0.25) t ~poll =
  locked t (fun () ->
      if t.sampler <> None then
        invalid_arg "Recorder.start_sampler: sampler already running";
      if t.stopped then invalid_arg "Recorder.start_sampler: stopped";
      Atomic.set t.interval interval_s;
      t.poll <- Some poll);
  let d =
    Domain.spawn (fun () ->
        (* Sleep in short slices so stop is honoured promptly even at
           multi-second cadences. *)
        let rec sleep_until deadline =
          if not (Atomic.get t.stopping) then begin
            let dt = deadline -. Telemetry.Clock.now_s () in
            if dt > 0. then begin
              Unix.sleepf (Float.min dt 0.02);
              sleep_until deadline
            end
          end
        in
        let rec loop () =
          if not (Atomic.get t.stopping) then begin
            let deadline =
              Telemetry.Clock.now_s () +. Atomic.get t.interval
            in
            record t (poll ());
            sleep_until deadline;
            loop ()
          end
        in
        loop ();
        Domain.self ())
  in
  locked t (fun () -> t.sampler <- Some d)

let stop t =
  (* Take the pieces under the lock, then join outside it: the sampler
     domain calls [record], which needs the same mutex. *)
  Atomic.set t.stopping true;
  let sampler, poll =
    locked t (fun () ->
        let s = t.sampler and p = t.poll in
        t.sampler <- None;
        (s, p))
  in
  (match sampler with Some d -> ignore (Domain.join d) | None -> ());
  locked t (fun () ->
      if not t.stopped then begin
        (* One last sample so short runs always record a final state. *)
        (match poll with
        | Some poll -> ( try record_locked t (poll ()) with _ -> ())
        | None -> ());
        t.stopped <- true;
        match t.sink with Some oc -> close_out_noerr oc | None -> ()
      end)

let samples t =
  locked t (fun () ->
      let n = min t.next_seq t.capacity in
      let first = t.next_seq - n in
      List.init n (fun i ->
          match t.ring.((first + i) mod t.capacity) with
          | Some s -> s
          | None -> assert false))

let dropped t = locked t (fun () -> t.n_dropped)

let of_metrics registry =
  List.concat_map
    (fun (name, v) ->
      match (v : Telemetry.Metrics.value) with
      | Telemetry.Metrics.Counter c -> [ (name, float_of_int c) ]
      | Telemetry.Metrics.Gauge g -> [ (name, g) ]
      | Telemetry.Metrics.Histogram h ->
          if h.count = 0 then []
          else
            [
              (name ^ ".count", float_of_int h.count);
              (name ^ ".p50", h.p50);
              (name ^ ".p99", h.p99);
              (name ^ ".p999", h.p999);
            ])
    (Telemetry.Metrics.snapshot registry)
