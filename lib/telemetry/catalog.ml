(* Keep the list sorted by namespace so diffs read as namespace
   evolution.  '*' matches any non-empty run of characters. *)
let all =
  [
    (* bench harness *)
    "bench.*.wall_s";
    (* sequential explorer (Explore.run); the same record_finish path
       serves Par_explore under its own prefix below *)
    "explore.depth";
    "explore.distinct";
    "explore.frontier_depth";
    "explore.generated";
    "explore.kstates_s";
    "explore.live_distinct";
    "explore.live_generated";
    "explore.live_kstates_s";
    "explore.max_states";
    "explore.runtime_s";
    "explore.wave_s";
    (* fuzz driver: one cases counter per oracle *)
    "fuzz.*.cases";
    "fuzz.failures";
    "fuzz.shrink_evals";
    (* GC gauges (Metrics.observe_gc) *)
    "gc.heap_mb";
    "gc.major_collections";
    "gc.minor_collections";
    (* lock zoo acquire-latency histograms (Locks.Latency.instrument) *)
    "lock.*.acquire_s";
    (* sharded parallel explorer *)
    "par_explore.depth";
    "par_explore.distinct";
    "par_explore.fp_collisions";
    "par_explore.frontier_depth";
    "par_explore.generated";
    "par_explore.handoff_batches";
    "par_explore.handoff_states";
    "par_explore.idle_epochs";
    "par_explore.kstates_s";
    "par_explore.live_distinct";
    "par_explore.live_generated";
    "par_explore.live_idle_epochs";
    "par_explore.live_kstates_s";
    "par_explore.live_steals";
    "par_explore.max_states";
    "par_explore.runtime_s";
    "par_explore.shard_occupancy_max";
    "par_explore.shard_occupancy_min";
    "par_explore.steal_items";
    "par_explore.steals";
    "par_explore.table_mb";
    (* schedsim runner *)
    "sim.crashes";
    "sim.cs_entries";
    "sim.fcfs_inversions";
    "sim.flickers";
    "sim.mutex_violations";
    "sim.overflow_events";
    "sim.steps";
  ]

(* Glob match where '*' is one-or-more characters.  Patterns are tiny
   (<= 3 segments), so naive backtracking is plenty. *)
let pattern_matches pat name =
  let np = String.length pat and nn = String.length name in
  let rec go i j =
    if i = np then j = nn
    else if pat.[i] = '*' then
      (* '*' must consume at least one character *)
      let rec try_len k = k <= nn && (go (i + 1) k || try_len (k + 1)) in
      try_len (j + 1)
    else j < nn && pat.[i] = name.[j] && go (i + 1) (j + 1)
  in
  go 0 0

let matches name = List.exists (fun p -> pattern_matches p name) all

(* A literal prefix fragment is covered if some pattern, truncated the
   same way, matches it — i.e. the pattern could generate a name that
   starts with the fragment.  Treating '*' as able to absorb the rest
   of the fragment keeps this a one-liner: match the fragment against
   every prefix of every pattern where the next pattern char (if any)
   is unconstrained. *)
let covers_prefix frag =
  let nf = String.length frag in
  List.exists
    (fun p ->
      let np = String.length p in
      let rec go i j =
        if j = nf then true
        else if i = np then false
        else if p.[i] = '*' then
          let rec try_len k = k <= nf && (go (i + 1) k || try_len (k + 1)) in
          try_len (j + 1)
        else p.[i] = frag.[j] && go (i + 1) (j + 1)
      in
      go 0 0)
    all

let covers_suffix frag =
  let rev s = String.init (String.length s) (fun i ->
      s.[String.length s - 1 - i])
  in
  let frag = rev frag in
  let nf = String.length frag in
  List.exists
    (fun p ->
      let p = rev p in
      let np = String.length p in
      let rec go i j =
        if j = nf then true
        else if i = np then false
        else if p.[i] = '*' then
          let rec try_len k = k <= nf && (go (i + 1) k || try_len (k + 1)) in
          try_len (j + 1)
        else p.[i] = frag.[j] && go (i + 1) (j + 1)
      in
      go 0 0)
    all
