(** Run metadata attached to benchmark datapoints and metric
    snapshots, so numbers recorded across PRs and machines stay
    comparable: the same (git_rev, host, nprocs) triple means the same
    experiment environment. *)

type t = {
  git_rev : string;  (** short commit hash, or ["unknown"] outside a checkout *)
  hostname : string;
  nprocs : int;  (** [Domain.recommended_domain_count ()] *)
  os : string;  (** [Sys.os_type] *)
  ocaml : string;  (** [Sys.ocaml_version] *)
}

val capture : unit -> t
(** Captured once per process and cached (the git rev is read from the
    [.git] directory found by walking up from the current directory —
    no subprocess is spawned). *)

val to_fields : t -> (string * Json.t) list
(** [git_rev], [host], [nprocs], [os], [ocaml]. *)

val trace_schema_version : int
(** Version of the JSONL trace-event shape.  Bumped on incompatible
    changes; readers refuse files with a different version. *)

val header_fields : unit -> (string * Json.t) list
(** [("schema", v)] followed by {!to_fields} of {!capture} — the payload
    of the self-describing header line every [--trace-out] JSONL file
    starts with. *)

val check_schema : Json.t -> (unit, string) result
(** Validate a parsed header line: [Error] with a human-readable reason
    when the schema field is missing, malformed, or from an
    incompatible version. *)
