(** Monotonic-clock span events: named durations with attached fields,
    emitted to a {!Sink} on completion. *)

type open_span

val start : name:string -> open_span
(** Stamp the start on the monotonised clock ({!Clock.now_s}). *)

val finish :
  ?fields:(string * Json.t) list -> Sink.t -> open_span -> unit
(** Emit a ["span"] event carrying [dur_s] (monotonic duration) plus
    the caller's fields. *)

val run :
  ?fields:(string * Json.t) list ->
  Sink.t ->
  name:string ->
  (unit -> 'a) ->
  'a
(** Time a callback; the span is emitted whether it returns or raises
    (with an [ok] boolean field). *)
