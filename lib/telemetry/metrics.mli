(** A process-local metrics registry: named counters, gauges and
    fixed-bucket histograms with percentile estimation.

    Instruments are registered once (by name) and then updated through
    their handle with one atomic operation — safe to hammer from any
    domain.  [snapshot] is the only traversal; it sorts by name, so two
    snapshots of the same registry state are structurally equal
    (deterministic output for tests and JSONL sinks). *)

type t

val create : unit -> t

(** {1 Counters} — monotone event counts. *)

type counter

val counter : t -> string -> counter
(** Register (or fetch, if the name exists) a counter.  Registering a
    name twice with different instrument kinds raises [Invalid_argument]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-written values. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — fixed upper-bound buckets plus an overflow bucket. *)

type histogram

val default_buckets : float array
(** {!Quantile.default_buckets} — a 1–2–5 ladder from 1e-6 to 10.0,
    microseconds to seconds when observations are latencies in
    seconds. *)

val histogram : t -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds (defaults to
    {!default_buckets}); values above the last bound land in the
    overflow bucket. *)

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0, 1]: {!Quantile.estimate} over the
    histogram's atomic buckets — the smallest bucket upper bound such
    that at least [q * count] observations are at or below it; the
    overflow bucket reports the maximum observation.  [nan] when
    empty. *)

(** {1 GC gauges} — allocation pathologies in long soak runs. *)

val observe_gc : t -> unit
(** Refresh three gauges from [Gc.quick_stat] (no heap traversal):
    [gc.minor_collections], [gc.major_collections] and [gc.heap_mb]
    (major-heap size in MB).  Call before {!snapshot} — typically once
    at the end of a run, or periodically from a sampling loop. *)

val gc_fields : unit -> (string * Json.t) list
(** The same three readings as JSON fields ([gc_minor], [gc_major],
    [gc_heap_mb]) for stamping progress lines and datapoints. *)

(** {1 Snapshots} *)

type histogram_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  buckets : (float * int) array;  (** (upper bound, count); last is [infinity] *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot

val snapshot : t -> (string * value) list
(** All instruments, sorted by name. *)

val value_to_json : value -> Json.t
(** Counters/gauges as numbers; histograms as an object with count,
    sum, min, max, p50/p95/p99/p999 and non-empty buckets. *)
