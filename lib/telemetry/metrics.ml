type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  bucket_counts : int Atomic.t array;  (* length bounds + 1: last = overflow *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;  (* nan when empty *)
  h_max : float Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { mutex : Mutex.t; instruments : (string, instrument) Hashtbl.t }

let create () = { mutex = Mutex.create (); instruments = Hashtbl.create 32 }

let register t name make match_existing =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.instruments name with
    | Some existing -> (
        match match_existing existing with
        | Some handle -> Ok handle
        | None -> Error name)
    | None ->
        let handle, instrument = make () in
        Hashtbl.add t.instruments name instrument;
        Ok handle
  in
  Mutex.unlock t.mutex;
  match r with
  | Ok handle -> handle
  | Error name ->
      invalid_arg
        (Printf.sprintf "Telemetry.Metrics: %S already registered with a \
                         different instrument kind" name)

(* ------------------------------------------------------------ counters *)

let counter t name =
  register t name
    (fun () ->
      let c = Atomic.make 0 in
      (c, C c))
    (function C c -> Some c | _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

(* -------------------------------------------------------------- gauges *)

let gauge t name =
  register t name
    (fun () ->
      let g = Atomic.make 0.0 in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

(* ---------------------------------------------------------- histograms *)

let default_buckets = Quantile.default_buckets

let make_histogram bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Telemetry.Metrics.histogram: empty buckets";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Telemetry.Metrics.histogram: buckets must be increasing"
  done;
  {
    bounds = Array.copy bounds;
    bucket_counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0.0;
    h_min = Atomic.make nan;
    h_max = Atomic.make nan;
  }

let histogram t ?(buckets = default_buckets) name =
  register t name
    (fun () ->
      let h = make_histogram buckets in
      (h, H h))
    (function H h -> Some h | _ -> None)

(* Atomic float fold via CAS: contention on a histogram is rare (waves,
   acquires), so the retry loop is effectively free. *)
let rec fold_float cell f v =
  let prev = Atomic.get cell in
  let next = f prev v in
  if not (Atomic.compare_and_set cell prev next) then fold_float cell f v

let observe h v =
  let n = Array.length h.bounds in
  (* Binary search for the first upper bound >= v. *)
  let rec find lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= h.bounds.(mid) then find lo mid else find (mid + 1) hi
  in
  let bucket = find 0 n in
  Atomic.incr h.bucket_counts.(bucket);
  Atomic.incr h.h_count;
  fold_float h.h_sum (fun a b -> a +. b) v;
  fold_float h.h_min (fun a b -> if Float.is_nan a || b < a then b else a) v;
  fold_float h.h_max (fun a b -> if Float.is_nan a || b > a then b else a) v

(* The estimator itself lives in {!Quantile}; this only snapshots the
   atomic cells into the plain arrays it expects. *)
let percentile h q =
  Quantile.estimate ~bounds:h.bounds
    ~counts:(Array.map Atomic.get h.bucket_counts)
    ~max:(Atomic.get h.h_max) ~q

(* ------------------------------------------------------------------ GC *)

(* [Gc.quick_stat] is the cheap variant: no heap traversal, safe to call
   from a sampling loop.  Its live/free word fields are zero by design,
   so the gauge set sticks to what it actually measures: collection
   counts and the major-heap size. *)

let words_to_mb w = float_of_int w *. float_of_int (Sys.word_size / 8) /. 1e6

let gc_fields () =
  let s = Gc.quick_stat () in
  [
    ("gc_minor", Json.Num (float_of_int s.Gc.minor_collections));
    ("gc_major", Json.Num (float_of_int s.Gc.major_collections));
    ("gc_heap_mb", Json.Num (words_to_mb s.Gc.heap_words));
  ]

let observe_gc t =
  let s = Gc.quick_stat () in
  set (gauge t "gc.minor_collections") (float_of_int s.Gc.minor_collections);
  set (gauge t "gc.major_collections") (float_of_int s.Gc.major_collections);
  set (gauge t "gc.heap_mb") (words_to_mb s.Gc.heap_words)

(* ----------------------------------------------------------- snapshots *)

type histogram_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  buckets : (float * int) array;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot

let snapshot_histogram h =
  let n = Array.length h.bounds in
  {
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
    min = Atomic.get h.h_min;
    max = Atomic.get h.h_max;
    p50 = percentile h 0.50;
    p95 = percentile h 0.95;
    p99 = percentile h 0.99;
    p999 = percentile h 0.999;
    buckets =
      Array.init (n + 1) (fun i ->
          ( (if i < n then h.bounds.(i) else infinity),
            Atomic.get h.bucket_counts.(i) ));
  }

let snapshot t =
  Mutex.lock t.mutex;
  let entries =
    Hashtbl.fold
      (fun name instrument acc ->
        let v =
          match instrument with
          | C c -> Counter (Atomic.get c)
          | G g -> Gauge (Atomic.get g)
          | H h -> Histogram (snapshot_histogram h)
        in
        (name, v) :: acc)
      t.instruments []
  in
  Mutex.unlock t.mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let value_to_json = function
  | Counter n -> Json.Num (float_of_int n)
  | Gauge v -> Json.Num v
  | Histogram s ->
      Json.Obj
        [
          ("count", Json.Num (float_of_int s.count));
          ("sum", Json.Num s.sum);
          ("min", Json.Num s.min);
          ("max", Json.Num s.max);
          ("p50", Json.Num s.p50);
          ("p95", Json.Num s.p95);
          ("p99", Json.Num s.p99);
          ("p999", Json.Num s.p999);
          ( "buckets",
            Json.Arr
              (Array.to_list s.buckets
              |> List.filter (fun (_, c) -> c > 0)
              |> List.map (fun (ub, c) ->
                     Json.Obj
                       [
                         ("le", Json.Num ub); ("count", Json.Num (float_of_int c));
                       ])) );
        ]
