type open_span = { span_name : string; started_wall : float; started_mono : float }

let start ~name =
  { span_name = name; started_wall = Clock.wall_s (); started_mono = Clock.now_s () }

let finish ?(fields = []) (sink : Sink.t) span =
  let dur = Clock.now_s () -. span.started_mono in
  sink.emit
    (Sink.event ~time:span.started_wall ~kind:"span" ~name:span.span_name
       (("dur_s", Json.Num dur) :: fields))

let run ?(fields = []) sink ~name f =
  let span = start ~name in
  match f () with
  | v ->
      finish ~fields:(fields @ [ ("ok", Json.Bool true) ]) sink span;
      v
  | exception e ->
      finish ~fields:(fields @ [ ("ok", Json.Bool false) ]) sink span;
      raise e
