type t = {
  sink : Sink.t;
  name : string;
  interval : float;
  batch : int;
  born : float;  (* monotonic *)
  mutable last_emit : float;  (* monotonic; 0 until the first emission *)
  mutable budget : int;
  mutable count : int;
}

let create ?(interval = 2.0) ?(batch = 512) ~name sink () =
  let born = Clock.now_s () in
  {
    sink;
    name;
    interval = Float.max 0.0 interval;
    batch = max 1 batch;
    born;
    last_emit = born;
    budget = 1;  (* first tick reads the clock, so short runs still report *)
    count = 0;
  }

let elapsed_s t = Clock.now_s () -. t.born
let emitted t = t.count

let emit t fields_of =
  let now = Clock.now_s () in
  t.last_emit <- now;
  t.count <- t.count + 1;
  t.sink.emit
    (Sink.event ~kind:"progress" ~name:t.name
       (("elapsed_s", Json.Num (now -. t.born)) :: fields_of ()))

let poll t fields_of =
  let now = Clock.now_s () in
  if now -. t.last_emit >= t.interval then emit t fields_of

let tick t fields_of =
  t.budget <- t.budget - 1;
  if t.budget <= 0 then begin
    t.budget <- t.batch;
    poll t fields_of
  end

let force t fields_of = emit t fields_of
