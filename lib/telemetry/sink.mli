(** Pluggable destinations for telemetry events.

    An event is a timestamped, named bag of JSON fields: progress
    ticks, span completions and metric snapshots all flow through the
    same type, so any component can be pointed at [null] (free),
    [stderr_human] (interactive runs) or [jsonl] (machine-readable,
    one event per line) without changing its instrumentation. *)

type event = {
  time : float;  (** wall-clock seconds since the epoch *)
  kind : string;  (** ["progress"], ["span"], ["snapshot"], ... *)
  name : string;  (** emitting component, e.g. ["explore"] *)
  fields : (string * Json.t) list;
}

type t = { emit : event -> unit; close : unit -> unit }

val event :
  ?time:float -> kind:string -> name:string -> (string * Json.t) list -> event
(** [time] defaults to the current wall clock. *)

val null : t
(** Drops everything; [close] is a no-op. *)

val stderr_human : unit -> t
(** One line per event on stderr:
    [\[kind name +12.3s\] key=value key=value ...] where the offset is
    seconds since the sink was created.  Numeric fields print
    compactly; strings print bare unless they contain spaces. *)

val jsonl : string -> t
(** Appends one JSON object per event to the file (created if
    missing): [{"t": ..., "kind": ..., "name": ..., <fields>}].
    Serialized by an internal mutex and flushed after every line, so a
    run killed mid-flight leaves a well-formed prefix; [close] flushes
    and closes. *)

val tee : t list -> t
(** Fan out to several sinks; [close] closes them all. *)
