(** Time sources for the telemetry subsystem.

    The stdlib exposes no monotonic clock, so {!now_s} monotonises the
    wall clock: it never goes backwards, even across NTP adjustments,
    by clamping each reading to the largest value any domain has
    observed.  Good enough for progress intervals and latency
    histograms; not a substitute for a hardware timestamp counter. *)

val wall_s : unit -> float
(** Wall-clock seconds since the Unix epoch (for run metadata and
    JSONL timestamps). *)

val now_s : unit -> float
(** Monotonised wall clock, seconds.  Never decreases between any two
    calls, across all domains. *)

val now_ns : unit -> int
(** {!now_s} scaled to integer nanoseconds (for latency arithmetic
    without float rounding surprises in stats counters). *)
