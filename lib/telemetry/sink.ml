type event = {
  time : float;
  kind : string;
  name : string;
  fields : (string * Json.t) list;
}

type t = { emit : event -> unit; close : unit -> unit }

let event ?time ~kind ~name fields =
  let time = match time with Some t -> t | None -> Clock.wall_s () in
  { time; kind; name; fields }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

(* Compact human scalar: integers without the decimal point, floats
   with just enough digits, strings bare when unambiguous. *)
let rec human_value (v : Json.t) =
  match v with
  | Json.Null -> "-"
  | Json.Bool b -> string_of_bool b
  | Json.Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v
  | Json.Str s ->
      if s <> "" && String.for_all (fun c -> c <> ' ' && c <> '=') s then s
      else Printf.sprintf "%S" s
  | Json.Arr l -> "[" ^ String.concat "," (List.map human_value l) ^ "]"
  | Json.Obj _ -> Json.to_string v

let stderr_human () =
  let born = Clock.wall_s () in
  let mutex = Mutex.create () in
  let emit e =
    let line =
      Printf.sprintf "[%s %s +%.1fs] %s" e.kind e.name (e.time -. born)
        (String.concat "  "
           (List.map (fun (k, v) -> k ^ "=" ^ human_value v) e.fields))
    in
    Mutex.lock mutex;
    Printf.eprintf "%s\n%!" line;
    Mutex.unlock mutex
  in
  { emit; close = (fun () -> ()) }

let jsonl path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let mutex = Mutex.create () in
  let closed = ref false in
  let emit e =
    let json =
      Json.Obj
        (("t", Json.Num e.time)
        :: ("kind", Json.Str e.kind)
        :: ("name", Json.Str e.name)
        :: e.fields)
    in
    let line = Json.to_string json in
    Mutex.lock mutex;
    if not !closed then begin
      output_string oc line;
      output_char oc '\n';
      (* One flush per event: telemetry cadence is coarse, and a run
         killed mid-flight must leave only whole lines behind — the
         flight recorder's crash-forensics contract. *)
      flush oc
    end;
    Mutex.unlock mutex
  in
  let close () =
    Mutex.lock mutex;
    if not !closed then begin
      closed := true;
      close_out oc
    end;
    Mutex.unlock mutex
  in
  { emit; close }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }
