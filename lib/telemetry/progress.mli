(** A rate-limited progress reporter, TLC-style.

    Long searches call {!tick} from their hot loop — once per dequeued
    state or wave — and the reporter emits at most one ["progress"]
    event per [interval] (default 2 s).  The field thunk runs only
    when a line is actually due, so an idle reporter costs a counter
    decrement most ticks and a clock read every [batch] ticks. *)

type t

val create :
  ?interval:float -> ?batch:int -> name:string -> Sink.t -> unit -> t
(** [interval] seconds between emissions (0 emits on every clock
    check); [batch] (default 512) is how many ticks share one clock
    read — use 1 for wave-grained callers. *)

val tick : t -> (unit -> (string * Json.t) list) -> unit

val poll : t -> (unit -> (string * Json.t) list) -> unit
(** {!tick} without the batching: always reads the clock.  For callers
    whose natural tick is already coarse (one BFS wave, one
    experiment). *)

val force : t -> (unit -> (string * Json.t) list) -> unit
(** Emit unconditionally (final summaries) and reset the interval. *)

val elapsed_s : t -> float
(** Monotonic seconds since the reporter was created. *)

val emitted : t -> int
(** Number of progress events emitted so far. *)
