(* Monotonised wall clock.

   [Unix.gettimeofday] can step backwards (NTP, VM migration); a span
   or rate computed across such a step would be negative.  We keep the
   largest reading ever returned in an [Atomic] holding the float's
   bit pattern and clamp every new reading to it with a CAS loop, so
   the published sequence is non-decreasing across domains. *)

let wall_s = Unix.gettimeofday

let high_water = Atomic.make (Int64.bits_of_float 0.0)

let now_s () =
  let t = Unix.gettimeofday () in
  let rec publish () =
    let prev = Atomic.get high_water in
    let prev_t = Int64.float_of_bits prev in
    if t <= prev_t then prev_t
    else if Atomic.compare_and_set high_water prev (Int64.bits_of_float t)
    then t
    else publish ()
  in
  publish ()

let now_ns () = int_of_float (now_s () *. 1e9)
