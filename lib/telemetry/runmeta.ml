type t = {
  git_rev : string;
  hostname : string;
  nprocs : int;
  os : string;
  ocaml : string;
}

let read_line_of path =
  match open_in path with
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
  | exception Sys_error _ -> None

(* Resolve HEAD by hand — telemetry must not fork a git subprocess from
   inside benchmarks.  Walks up from cwd (dune tests run in a _build
   sandbox below the repo root). *)
let git_rev_of_cwd () =
  let rec find_git dir =
    let candidate = Filename.concat dir ".git" in
    if Sys.file_exists candidate && Sys.is_directory candidate then
      Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git parent
  in
  match find_git (Sys.getcwd ()) with
  | None -> "unknown"
  | Some git -> (
      match read_line_of (Filename.concat git "HEAD") with
      | None | Some "" -> "unknown"
      | Some head ->
          let rev =
            match String.index_opt head ' ' with
            | None -> Some head (* detached HEAD: the hash itself *)
            | Some i -> (
                let refname =
                  String.sub head (i + 1) (String.length head - i - 1)
                in
                match read_line_of (Filename.concat git refname) with
                | Some h when h <> "" -> Some h
                | _ -> (
                    (* packed refs *)
                    match open_in (Filename.concat git "packed-refs") with
                    | exception Sys_error _ -> None
                    | ic ->
                        let found = ref None in
                        (try
                           while !found = None do
                             let line = input_line ic in
                             if
                               String.length line > 41
                               && String.sub line 41 (String.length line - 41)
                                  = refname
                             then found := Some (String.sub line 0 40)
                           done
                         with End_of_file -> ());
                        close_in ic;
                        !found))
          in
          (match rev with
          | Some h when String.length h >= 12 -> String.sub h 0 12
          | Some h when h <> "" -> h
          | _ -> "unknown"))

let cached = ref None

let capture () =
  match !cached with
  | Some m -> m
  | None ->
      let m =
        {
          git_rev = git_rev_of_cwd ();
          hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
          nprocs = Domain.recommended_domain_count ();
          os = Sys.os_type;
          ocaml = Sys.ocaml_version;
        }
      in
      cached := Some m;
      m

let to_fields m =
  [
    ("git_rev", Json.Str m.git_rev);
    ("host", Json.Str m.hostname);
    ("nprocs", Json.Num (float_of_int m.nprocs));
    ("os", Json.Str m.os);
    ("ocaml", Json.Str m.ocaml);
  ]

(* Trace files are long-lived artifacts (attached to issues, replayed
   months later); the schema version lets readers fail with a clear
   message instead of silently misparsing.  Bump on any incompatible
   change to the JSONL event shape. *)
let trace_schema_version = 1

let header_fields () =
  ("schema", Json.Num (float_of_int trace_schema_version))
  :: to_fields (capture ())

let check_schema line =
  match Json.member "schema" line with
  | None ->
      Error
        "first line carries no schema field: not a versioned trace \
         (produced by an older build?)"
  | Some (Json.Num v) when Float.is_integer v ->
      let v = int_of_float v in
      if v = trace_schema_version then Ok ()
      else
        Error
          (Printf.sprintf
             "trace schema %d is not readable by this build (it reads \
              schema %d)"
             v trace_schema_version)
  | Some j ->
      Error
        (Printf.sprintf "malformed schema field %s (expected an integer)"
           (Json.to_string j))
