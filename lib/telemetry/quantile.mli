(** The one fixed-bucket quantile estimator, shared by every histogram
    in the stack.

    Before this module existed the rank-walk lived in {!Metrics} and the
    latency ladder lived in [Locks.Latency]; both now live here so the
    checker's wave histograms, the lock zoo's acquire histograms and the
    flight recorder's series all agree on what "p99" means: the smallest
    bucket upper bound covering at least [ceil (q * count)] observations,
    with the overflow bucket reporting the maximum observation. *)

val default_buckets : float array
(** A 1–2–5 ladder from 1e-6 to 10.0 — microseconds to seconds when
    observations are latencies in seconds. *)

val latency_buckets_s : float array
(** The lock-acquire ladder: 100 ns to 5 s, 1–2–5 steps (seconds).  The
    top extends past 1 s because open-loop backlogs can legitimately
    accumulate multi-second queueing delays. *)

val rank : q:float -> count:int -> int
(** [ceil (q * count)], clamped to at least 1 — the exact rank the
    estimator resolves to bucket-bound resolution. *)

val estimate :
  bounds:float array -> counts:int array -> max:float -> q:float -> float
(** [estimate ~bounds ~counts ~max ~q]: [counts] has one entry per bound
    plus a final overflow bucket.  Returns the smallest bound whose
    cumulative count reaches {!rank}; ranks landing in the overflow
    bucket return [max].  [nan] when the total count is zero. *)

val of_samples : bounds:float array -> float array -> q:float -> float
(** Bucketize raw samples against [bounds] (first bound >= sample;
    larger samples overflow) and {!estimate} — the reference the
    differential tests pin the atomic histograms against. *)
