(** A minimal JSON tree, encoder and parser.

    The telemetry sinks, the bench driver's datapoint files and the
    tests that parse them back all speak this dialect; it is a strict
    subset of RFC 8259 (no surrogate-pair decoding: [\uXXXX] escapes
    outside ASCII are preserved byte-wise as UTF-8).  Kept here so the
    repo needs no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes): quotes,
    backslashes and control characters become escape sequences. *)

val to_string : t -> string
(** Compact one-line rendering.  Integral floats print without a
    fractional part ([3] not [3.]); NaN and infinities, which JSON
    cannot represent, render as [null]. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed); [Error]
    carries a byte offset and reason.  Trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other constructors. *)

val to_num : t -> float option
val to_str : t -> string option
