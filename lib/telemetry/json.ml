type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_num b v =
  if not (Float.is_finite v) then Buffer.add_string b "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.abs v >= 1e6 then
    (* epoch timestamps and friends: keep sub-second precision rather
       than collapsing to scientific notation *)
    Buffer.add_string b (Printf.sprintf "%.12g" v)
  else Buffer.add_string b (Printf.sprintf "%.6g" v)

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num v -> add_num b v
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ", ";
            go x)
          l;
        Buffer.add_char b ']'
    | Obj l ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go x)
          l;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* ASCII only; higher codepoints are re-encoded as
                      the raw escape to stay lossless without a full
                      UTF-8 encoder. *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else Buffer.add_string b ("\\u" ^ hex)
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
