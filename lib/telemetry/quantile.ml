let default_buckets =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0;
  |]

let latency_buckets_s =
  [|
    1e-7; 2e-7; 5e-7; 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4;
    1e-3; 2e-3; 5e-3; 1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
  |]

let rank ~q ~count =
  let r = int_of_float (ceil (q *. float_of_int count)) in
  if r < 1 then 1 else r

let estimate ~bounds ~counts ~max ~q =
  let n = Array.length bounds in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then nan
  else begin
    let r = rank ~q ~count:total in
    let rec walk i cum =
      if i > n then max
      else
        let cum = cum + counts.(i) in
        if cum >= r then if i < n then bounds.(i) else max else walk (i + 1) cum
    in
    walk 0 0
  end

let bucket_of bounds v =
  let n = Array.length bounds in
  let rec find lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then find lo mid else find (mid + 1) hi
  in
  find 0 n

let of_samples ~bounds samples ~q =
  let counts = Array.make (Array.length bounds + 1) 0 in
  let max_v = ref nan in
  Array.iter
    (fun v ->
      let b = bucket_of bounds v in
      counts.(b) <- counts.(b) + 1;
      if Float.is_nan !max_v || v > !max_v then max_v := v)
    samples;
  estimate ~bounds ~counts ~max:!max_v ~q
