(** The metric-name catalogue: every instrument name the stack may
    register, as literal names or patterns with ['*'] wildcards.

    Three producers now feed the same registries (the explorer engines,
    the lock/workload observatory, and the flight recorder), so name
    collisions and silent drift are real risks: a counter and a gauge
    sharing a name raises at runtime ({!Metrics}), but a typo'd or
    unregistered name would just mint a new series nobody reads.  The
    tier-1 metric-name lint scans the sources for registration sites
    and fails on any name this catalogue does not cover — adding a
    metric means adding a row here, which is also where reviewers see
    the namespace evolve. *)

val all : string list
(** Every allowed metric name; ['*'] matches any non-empty run of
    characters (e.g. ["lock.*.acquire_s"]). *)

val matches : string -> bool
(** Whether a concrete metric name is covered by some catalogue
    entry. *)

val covers_prefix : string -> bool
(** Whether some entry could produce a name starting with this literal
    fragment — used by the lint for ["lock." ^ name ^ ...]-style
    registration sites where only the prefix is a literal. *)

val covers_suffix : string -> bool
(** Dual of {!covers_prefix} for [prefix ^ ".generated"]-style
    sites. *)
