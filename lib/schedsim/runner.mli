(** Randomized execution of an mxlang algorithm under a chosen scheduler —
    the "run it for a long time on one machine" counterpart to the
    exhaustive model checker.

    The runner implements the paper's full failure model: processes may
    crash at any instant, a crashed process resets its own single-writer
    shared cells and its locals to their initial values, and restarts in
    its noncritical section after a delay (§1.2, condition 4).  It can
    also inject weak-register read anomalies ("flicker"): a read of a
    cell that another process is about to write may return a perturbed
    value, with the candidate set picked by a {!Regsem.Model} — the
    paper's "a read that overlaps a write may return any value" is the
    [Safe] case. *)

type crash_config = {
  crash_prob : float;  (** per-step probability that some process crashes *)
  restart_delay : int;  (** steps before the crashed process restarts *)
  only_outside_cs : bool;
      (** restrict crashes to processes outside both their critical
          section and their exit protocol (a process there still holds
          the resource) *)
}

type flicker_config = {
  flicker_prob : float;  (** probability a concurrently-written cell flickers *)
  flicker_model : Regsem.Model.t;
      (** value domain of a flickered read, shared with the exhaustive
          checker ({!Regsem}): [Regular] returns the value the
          overlapping write is about to store, [Safe] draws uniformly
          from the variable's range ({!Regsem.Domain.ceilings}), and
          [Atomic] disables perturbation entirely *)
  flicker_slack : int;
      (** extra headroom above each variable's ceiling for [Safe]
          flicker — the paper's "arbitrary natural value" reads return
          up to [ceiling + slack]; 0 keeps reads in range.  Ignored by
          [Regular] and [Atomic]. *)
}

type overflow_policy =
  | Detect  (** record the event and keep running with the too-large value *)
  | Stop  (** record and end the run (time-to-overflow measurements) *)
  | Wrap  (** record and store [v mod (M+1)] — a real register's behaviour *)

type config = {
  nprocs : int;
  bound : int;  (** the paper's M *)
  strategy : Scheduler.strategy;
  max_steps : int;
  stop_after_cs : int option;  (** stop once this many total CS entries occurred *)
  overflow_policy : overflow_policy;
  crash : crash_config option;
  flicker : flicker_config option;
  seed : int;  (** drives crash and flicker randomness *)
  record_events : bool;  (** keep the full event log (memory-heavy) *)
  record_rw : bool;
      (** additionally log every shared-register read and write
          ([Event.Read]/[Event.Write], with observed values, pre-write
          contents and pre-wrap raw values) — the raw material for causal
          traces.  Only effective together with [record_events]; off by
          default so existing event consumers see an unchanged stream. *)
  progress : Telemetry.Progress.t option;
      (** rate-limited step/crash/flicker progress plus a forced final
          summary; [None] (the default) leaves the step loop with one
          static no-op closure call *)
  metrics : Telemetry.Metrics.t option;
      (** end-of-run [sim.*] counters (steps, CS entries, crashes,
          flickers, overflows, mutex violations, FCFS inversions) *)
  trace : Telemetry.Sink.t option;
      (** receives one [sim.replay] span per run carrying everything
          needed to reproduce the schedule: strategy, seed, N, M, step
          budget, outcome *)
}

val default_config : nprocs:int -> bound:int -> config
(** Round-robin, 100_000 steps, no crashes, no flicker, [Detect],
    telemetry off. *)

type outcome = Completed | Steps_exhausted | Overflow_stop | Stuck
(** [Completed]: [stop_after_cs] reached.  [Stuck]: no process runnable
    and none will restart. *)

type result = {
  outcome : outcome;
  steps : int;  (** atomic steps executed *)
  cs_entries : int array;  (** per process *)
  label_counts : int array array;  (** [pid][pc]: executions of each step *)
  overflow_events : int;
  mutex_violations : int;
      (** entries into a state with >= 2 processes in their CS *)
  fcfs_inversions : int;
      (** CS entries that overtook a process with an earlier completed
          doorway (first-come-first-served violations) *)
  crashes : int;
  flickers : int;
  events : Event.t list;  (** chronological; empty unless [record_events] *)
  final_shared : int array;
}

val run : Mxlang.Ast.program -> config -> result

val total_cs : result -> int
