let schedule_of (r : Runner.result) =
  Array.of_list
    (List.filter_map
       (function Event.Step { pid; _ } -> Some pid | _ -> None)
       r.events)

let to_text (p : Mxlang.Ast.program) (r : Runner.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Event.to_string p e);
      Buffer.add_char buf '\n')
    r.events;
  Buffer.contents buf

let csv_row time kind pid detail =
  Printf.sprintf "%d,%s,%s,%s\n" time kind
    (if pid < 0 then "" else string_of_int pid)
    detail

let to_csv (p : Mxlang.Ast.program) (r : Runner.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time,event,pid,detail\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (match e with
        | Event.Step { time; pid; pc; _ } ->
            csv_row time "step" pid p.steps.(pc).step_name
        | Event.Read { time; pid; var; cell; value } ->
            csv_row time "read" pid
              (Printf.sprintf "%s[%d]=%d" p.var_names.(var) cell value)
        | Event.Write { time; pid; var; cell; value; prev; raw } ->
            csv_row time "write" pid
              (if raw = value then
                 Printf.sprintf "%s[%d]=%d (was %d)" p.var_names.(var) cell
                   value prev
               else
                 Printf.sprintf "%s[%d]=%d (was %d; raw %d)" p.var_names.(var)
                   cell value prev raw)
        | Event.Cs_enter { time; pid } -> csv_row time "cs_enter" pid ""
        | Event.Cs_exit { time; pid } -> csv_row time "cs_exit" pid ""
        | Event.Doorway_done { time; pid } -> csv_row time "doorway_done" pid ""
        | Event.Overflow { time; pid; var; cell; value } ->
            csv_row time "overflow" pid
              (Printf.sprintf "%s[%d]=%d" p.var_names.(var) cell value)
        | Event.Mutex_violation { time; pids } ->
            csv_row time "mutex_violation" (-1)
              (String.concat ";" (List.map string_of_int pids))
        | Event.Crash { time; pid } -> csv_row time "crash" pid ""
        | Event.Restart { time; pid } -> csv_row time "restart" pid ""
        | Event.Flicker { time; pid; cell; value } ->
            csv_row time "flicker" pid (Printf.sprintf "cell %d -> %d" cell value)))
    r.events;
  Buffer.contents buf
