type crash_config = {
  crash_prob : float;
  restart_delay : int;
  only_outside_cs : bool;
}

type flicker_config = {
  flicker_prob : float;
  flicker_model : Regsem.Model.t;
  flicker_slack : int;
}

type overflow_policy = Detect | Stop | Wrap

type config = {
  nprocs : int;
  bound : int;
  strategy : Scheduler.strategy;
  max_steps : int;
  stop_after_cs : int option;
  overflow_policy : overflow_policy;
  crash : crash_config option;
  flicker : flicker_config option;
  seed : int;
  record_events : bool;
  record_rw : bool;
  progress : Telemetry.Progress.t option;
  metrics : Telemetry.Metrics.t option;
  trace : Telemetry.Sink.t option;
}

let default_config ~nprocs ~bound =
  {
    nprocs;
    bound;
    strategy = Scheduler.Round_robin;
    max_steps = 100_000;
    stop_after_cs = None;
    overflow_policy = Detect;
    crash = None;
    flicker = None;
    seed = 1;
    record_events = false;
    record_rw = false;
    progress = None;
    metrics = None;
    trace = None;
  }

type outcome = Completed | Steps_exhausted | Overflow_stop | Stuck

type result = {
  outcome : outcome;
  steps : int;
  cs_entries : int array;
  label_counts : int array array;
  overflow_events : int;
  mutex_violations : int;
  fcfs_inversions : int;
  crashes : int;
  flickers : int;
  events : Event.t list;
  final_shared : int array;
}

let total_cs r = Array.fold_left ( + ) 0 r.cs_entries

type sim = {
  cfg : config;
  env : Mxlang.Eval.env;
  program : Mxlang.Ast.program;
  ceilings : int array;
      (* per-variable value ceilings for Safe flicker; [||] otherwise *)
  shared : int array;
  locals : int array array;
  pcs : int array;
  crashed_until : int array; (* -1 = alive *)
  rng : Prng.Rng.t;
  sched : Scheduler.t;
  mutable time : int;
  mutable evs : Event.t list; (* reversed *)
  cs_entries : int array;
  label_counts : int array array;
  doorway_start_at : int array; (* -1 = not pending *)
  doorway_done_at : int array; (* -1 = not pending *)
  mutable overflow_events : int;
  mutable mutex_violations : int;
  mutable fcfs_inversions : int;
  mutable crashes : int;
  mutable flickers : int;
  mutable in_cs_count : int; (* processes currently at a Critical step *)
}

let emit sim e = if sim.cfg.record_events then sim.evs <- e :: sim.evs

(* Register-level read/write events are an opt-in refinement of the
   event log: they only flow when both [record_events] and [record_rw]
   are set, so existing event consumers (E8, metrics, CSV exports of
   old runs) see an unchanged stream by default. *)
let emit_rw sim e =
  if sim.cfg.record_events && sim.cfg.record_rw then sim.evs <- e :: sim.evs

let kind_of sim pc = sim.program.steps.(pc).kind

let make_sim program cfg =
  let env = Mxlang.Eval.make_env program ~nprocs:cfg.nprocs ~bound:cfg.bound in
  let ceilings =
    match cfg.flicker with
    | Some { flicker_model = Regsem.Model.Safe; _ } ->
        Regsem.Domain.ceilings program ~nprocs:cfg.nprocs ~bound:cfg.bound
    | _ -> [||]
  in
  {
    cfg;
    env;
    program;
    ceilings;
    shared = Mxlang.Eval.init_shared env;
    locals = Array.init cfg.nprocs (fun _ -> Mxlang.Eval.init_locals env);
    pcs = Array.make cfg.nprocs program.init_pc;
    crashed_until = Array.make cfg.nprocs (-1);
    rng = Prng.Rng.create cfg.seed;
    sched = Scheduler.make ~nprocs:cfg.nprocs cfg.strategy;
    time = 0;
    evs = [];
    cs_entries = Array.make cfg.nprocs 0;
    label_counts =
      Array.init cfg.nprocs (fun _ -> Array.make (Array.length program.steps) 0);
    doorway_start_at = Array.make cfg.nprocs (-1);
    doorway_done_at = Array.make cfg.nprocs (-1);
    overflow_events = 0;
    mutex_violations = 0;
    fcfs_inversions = 0;
    crashes = 0;
    flickers = 0;
    in_cs_count = 0;
  }

let alive sim pid = sim.crashed_until.(pid) < 0

(* A process is runnable if it is alive and some action guard holds
   (evaluated on the real, unperturbed memory). *)
let runnable_vector sim buffer =
  for pid = 0 to sim.cfg.nprocs - 1 do
    buffer.(pid) <-
      alive sim pid
      && Mxlang.Eval.enabled_actions sim.env ~shared:sim.shared
           ~locals:sim.locals.(pid) ~pid ~pc:sim.pcs.(pid)
         <> []
  done

(* Weak-register anomaly: build a read view of shared memory in which
   each cell that another live process's current step could write has,
   with probability [flicker_prob], a perturbed value drawn from the
   register model's candidate set — the value the in-flight write will
   store for a regular register, anything in the variable's range
   ({!Regsem.Domain.ceilings}) for a safe one. *)
let perturbed_view sim fc ~reader =
  let view = Array.copy sim.shared in
  for other = 0 to sim.cfg.nprocs - 1 do
    if other <> reader && alive sim other then
      List.iter
        (fun (a : Mxlang.Ast.action) ->
          List.iter
            (fun (l, e) ->
              match l with
              | Mxlang.Ast.Lo _ -> ()
              | Mxlang.Ast.Sh (v, ix) -> (
                  match
                    Mxlang.Eval.eval sim.env ~shared:sim.shared
                      ~locals:sim.locals.(other) ~pid:other ix
                  with
                  | idx -> (
                      let cell = Mxlang.Eval.offset sim.env v + idx in
                      if
                        cell >= 0
                        && cell < Array.length view
                        && Prng.Rng.float sim.rng 1.0 < fc.flicker_prob
                      then
                        match
                          match fc.flicker_model with
                          | Regsem.Model.Atomic -> view.(cell)
                          | Regsem.Model.Regular ->
                              (* the overlapped read may see the value
                                 the write is about to store *)
                              Mxlang.Eval.eval sim.env ~shared:sim.shared
                                ~locals:sim.locals.(other) ~pid:other e
                          | Regsem.Model.Safe ->
                              Prng.Rng.int sim.rng
                                (sim.ceilings.(v) + fc.flicker_slack + 1)
                        with
                        | value when fc.flicker_model <> Regsem.Model.Atomic ->
                            view.(cell) <- value;
                            sim.flickers <- sim.flickers + 1;
                            emit sim
                              (Event.Flicker
                                 { time = sim.time; pid = reader; cell; value })
                        | _ -> ()
                        | exception Mxlang.Eval.Error _ -> ())
                  | exception Mxlang.Eval.Error _ -> ()))
            a.effects)
        sim.program.steps.(sim.pcs.(other)).actions
  done;

  view

(* Apply [action] for [pid], reading from [read_shared] (possibly a
   perturbed view) and writing into the real memory. *)
let apply_action sim ~read_shared ~pid (a : Mxlang.Ast.action) =
  let locals = sim.locals.(pid) in
  let writes =
    List.map
      (fun (l, e) ->
        let value =
          Mxlang.Eval.eval sim.env ~shared:read_shared ~locals ~pid e
        in
        match l with
        | Mxlang.Ast.Lo lv -> `Local (lv, value)
        | Mxlang.Ast.Sh (v, ix) ->
            let idx =
              Mxlang.Eval.eval sim.env ~shared:read_shared ~locals ~pid ix
            in
            `Shared (v, idx, value))
      a.effects
  in
  List.iter
    (function
      | `Local (lv, value) -> locals.(lv) <- value
      | `Shared (v, idx, raw) ->
          let cell = Mxlang.Eval.offset sim.env v + idx in
          let value =
            if sim.program.bounded.(v) && raw > sim.cfg.bound then begin
              sim.overflow_events <- sim.overflow_events + 1;
              emit sim
                (Event.Overflow
                   { time = sim.time; pid; var = v; cell = idx; value = raw });
              match sim.cfg.overflow_policy with
              | Wrap -> raw mod (sim.cfg.bound + 1)
              | Detect | Stop -> raw
            end
            else raw
          in
          emit_rw sim
            (Event.Write
               {
                 time = sim.time;
                 pid;
                 var = v;
                 cell = idx;
                 value;
                 prev = sim.shared.(cell);
                 raw;
               });
          sim.shared.(cell) <- value)
    writes

let crash_process sim pid =
  sim.crashes <- sim.crashes + 1;
  emit sim (Event.Crash { time = sim.time; pid });
  if kind_of sim sim.pcs.(pid) = Mxlang.Ast.Critical then
    sim.in_cs_count <- sim.in_cs_count - 1;
  (* Reset the process's own single-writer cells and locals (§1.2 cond 4). *)
  let p = sim.program in
  for v = 0 to p.nvars - 1 do
    if p.per_process.(v) then begin
      let cell = Mxlang.Eval.offset sim.env v + pid in
      emit_rw sim
        (Event.Write
           {
             time = sim.time;
             pid;
             var = v;
             cell = pid;
             value = p.init_shared.(v);
             prev = sim.shared.(cell);
             raw = p.init_shared.(v);
           });
      sim.shared.(cell) <- p.init_shared.(v)
    end
  done;
  Array.blit (Mxlang.Eval.init_locals sim.env) 0 sim.locals.(pid) 0
    (Array.length sim.locals.(pid));
  sim.pcs.(pid) <- p.init_pc;
  sim.doorway_start_at.(pid) <- -1;
  sim.doorway_done_at.(pid) <- -1;
  sim.crashed_until.(pid) <- sim.time + (match sim.cfg.crash with Some c -> c.restart_delay | None -> 0)

let maybe_crash sim =
  match sim.cfg.crash with
  | None -> ()
  | Some c ->
      if Prng.Rng.float sim.rng 1.0 < c.crash_prob then begin
        (* [only_outside_cs] also spares the exit protocol: a process
           there still holds the resource, and for algorithms with
           multi-writer state (e.g. a TAS bit) a crash would wedge the
           system rather than model the paper's benign failure. *)
        let eligible =
          List.filter
            (fun pid ->
              alive sim pid
              &&
              match kind_of sim sim.pcs.(pid) with
              | Mxlang.Ast.Critical | Mxlang.Ast.Exit -> not c.only_outside_cs
              | _ -> true)
            (List.init sim.cfg.nprocs Fun.id)
        in
        match eligible with
        | [] -> ()
        | l -> crash_process sim (List.nth l (Prng.Rng.int sim.rng (List.length l)))
      end

let maybe_restart sim =
  for pid = 0 to sim.cfg.nprocs - 1 do
    if sim.crashed_until.(pid) >= 0 && sim.time >= sim.crashed_until.(pid) then begin
      sim.crashed_until.(pid) <- -1;
      emit sim (Event.Restart { time = sim.time; pid })
    end
  done

(* Track CS entries/exits, doorway completion and FCFS inversions around a
   pc change of [pid]. *)
let note_transition sim pid ~from_pc ~to_pc =
  let from_kind = kind_of sim from_pc and to_kind = kind_of sim to_pc in
  if from_kind <> Mxlang.Ast.Doorway && to_kind = Mxlang.Ast.Doorway then
    sim.doorway_start_at.(pid) <- sim.time;
  (if from_kind = Mxlang.Ast.Doorway && to_kind <> Mxlang.Ast.Doorway then
     match to_kind with
     | Mxlang.Ast.Entry | Noncritical ->
         (* Abandoned doorway (e.g. Bakery++'s overflow reset): the
            process goes back behind the gate with no claim to a turn. *)
         sim.doorway_start_at.(pid) <- -1;
         sim.doorway_done_at.(pid) <- -1
     | Doorway | Waiting | Critical | Exit | Plain ->
         sim.doorway_done_at.(pid) <- sim.time;
         emit sim (Event.Doorway_done { time = sim.time; pid }));
  if from_kind <> Mxlang.Ast.Critical && to_kind = Mxlang.Ast.Critical then begin
    sim.cs_entries.(pid) <- sim.cs_entries.(pid) + 1;
    emit sim (Event.Cs_enter { time = sim.time; pid });
    (* First-come-first-served, in Lamport's sense: if another process
       finished its doorway before we *started* ours and it is still
       waiting, we have overtaken it.  (Processes whose doorways
       overlapped ours may legitimately enter in either order.) *)
    let my_start = sim.doorway_start_at.(pid) in
    if my_start >= 0 then
      for other = 0 to sim.cfg.nprocs - 1 do
        if
          other <> pid
          && sim.doorway_done_at.(other) >= 0
          && sim.doorway_done_at.(other) < my_start
          && kind_of sim sim.pcs.(other) <> Mxlang.Ast.Critical
        then sim.fcfs_inversions <- sim.fcfs_inversions + 1
      done;
    sim.doorway_start_at.(pid) <- -1;
    sim.doorway_done_at.(pid) <- -1;
    sim.in_cs_count <- sim.in_cs_count + 1;
    if sim.in_cs_count > 1 then begin
      sim.mutex_violations <- sim.mutex_violations + 1;
      let pids =
        List.filter
          (fun i -> kind_of sim sim.pcs.(i) = Mxlang.Ast.Critical)
          (List.init sim.cfg.nprocs Fun.id)
      in
      emit sim (Event.Mutex_violation { time = sim.time; pids })
    end
  end;
  if from_kind = Mxlang.Ast.Critical && to_kind <> Mxlang.Ast.Critical then begin
    sim.in_cs_count <- sim.in_cs_count - 1;
    emit sim (Event.Cs_exit { time = sim.time; pid })
  end

(* Step/crash/flicker telemetry around one simulator run: a per-step
   rate-limited progress tick, end-of-run registry counters, and one
   schedule-replay span (everything needed to reproduce the run:
   scheduler, seed, budget) on the trace sink. *)

let tick_of sim =
  match sim.cfg.progress with
  | None -> fun () -> ()
  | Some p ->
      let t0 = Unix.gettimeofday () in
      let fields () =
        let elapsed = Unix.gettimeofday () -. t0 in
        [
          ("steps", Telemetry.Json.Num (float_of_int sim.time));
          ( "cs_entries",
            Telemetry.Json.Num
              (float_of_int (Array.fold_left ( + ) 0 sim.cs_entries)) );
          ("crashes", Telemetry.Json.Num (float_of_int sim.crashes));
          ("flickers", Telemetry.Json.Num (float_of_int sim.flickers));
          ( "overflows",
            Telemetry.Json.Num (float_of_int sim.overflow_events) );
          ( "ksteps_s",
            Telemetry.Json.Num
              (if elapsed > 0.0 then
                 float_of_int sim.time /. elapsed /. 1e3
               else 0.0) );
        ]
      in
      fun () -> Telemetry.Progress.tick p fields

let outcome_tag = function
  | Completed -> "completed"
  | Steps_exhausted -> "steps_exhausted"
  | Overflow_stop -> "overflow_stop"
  | Stuck -> "stuck"

let record_finish sim outcome span =
  (match sim.cfg.metrics with
  | None -> ()
  | Some m ->
      let open Telemetry.Metrics in
      add (counter m "sim.steps") sim.time;
      add (counter m "sim.cs_entries") (Array.fold_left ( + ) 0 sim.cs_entries);
      add (counter m "sim.crashes") sim.crashes;
      add (counter m "sim.flickers") sim.flickers;
      add (counter m "sim.overflow_events") sim.overflow_events;
      add (counter m "sim.mutex_violations") sim.mutex_violations;
      add (counter m "sim.fcfs_inversions") sim.fcfs_inversions);
  (match sim.cfg.progress with
  | None -> ()
  | Some p ->
      Telemetry.Progress.force p (fun () ->
          [
            ("outcome", Telemetry.Json.Str (outcome_tag outcome));
            ("steps", Telemetry.Json.Num (float_of_int sim.time));
            ( "cs_entries",
              Telemetry.Json.Num
                (float_of_int (Array.fold_left ( + ) 0 sim.cs_entries)) );
            ("crashes", Telemetry.Json.Num (float_of_int sim.crashes));
            ("flickers", Telemetry.Json.Num (float_of_int sim.flickers));
            ( "overflows",
              Telemetry.Json.Num (float_of_int sim.overflow_events) );
          ]));
  match sim.cfg.trace with
  | None -> ()
  | Some sink ->
      Telemetry.Span.finish
        ~fields:
          [
            ("scheduler", Telemetry.Json.Str (Scheduler.describe sim.cfg.strategy));
            ("seed", Telemetry.Json.Num (float_of_int sim.cfg.seed));
            ("nprocs", Telemetry.Json.Num (float_of_int sim.cfg.nprocs));
            ("bound", Telemetry.Json.Num (float_of_int sim.cfg.bound));
            ("max_steps", Telemetry.Json.Num (float_of_int sim.cfg.max_steps));
            ("steps", Telemetry.Json.Num (float_of_int sim.time));
            ("outcome", Telemetry.Json.Str (outcome_tag outcome));
          ]
        sink span

let run program cfg =
  Mxlang.Validate.assert_valid program;
  let sim = make_sim program cfg in
  let span = Telemetry.Span.start ~name:"sim.replay" in
  let tick = tick_of sim in
  let runnable = Array.make cfg.nprocs false in
  let outcome = ref Steps_exhausted in
  let continue = ref true in
  while !continue && sim.time < cfg.max_steps do
    tick ();
    maybe_restart sim;
    maybe_crash sim;
    runnable_vector sim runnable;
    (match Scheduler.pick sim.sched ~runnable with
    | None ->
        if Array.exists (fun t -> t >= 0) sim.crashed_until then
          (* Everyone runnable is crashed; let time pass until a restart. *)
          ()
        else begin
          outcome := Stuck;
          continue := false
        end
    | Some pid ->
        let read_shared =
          match cfg.flicker with
          | None | Some { flicker_model = Regsem.Model.Atomic; _ } ->
              sim.shared
          | Some fc -> perturbed_view sim fc ~reader:pid
        in
        let actions =
          List.filter
            (fun (a : Mxlang.Ast.action) ->
              Mxlang.Eval.eval_b sim.env ~shared:read_shared
                ~locals:sim.locals.(pid) ~pid a.guard)
            program.steps.(sim.pcs.(pid)).actions
        in
        (match actions with
        | [] -> () (* flicker made the guard false: the step spins *)
        | a :: rest ->
            let a =
              if rest = [] then a
              else
                List.nth (a :: rest) (Prng.Rng.int sim.rng (1 + List.length rest))
            in
            let from_pc = sim.pcs.(pid) in
            if cfg.record_events && cfg.record_rw then
              List.iter
                (fun (r : Mxlang.Reads.read) ->
                  emit_rw sim
                    (Event.Read
                       {
                         time = sim.time;
                         pid;
                         var = r.rd_var;
                         cell = r.rd_cell;
                         value = r.rd_value;
                       }))
                (Mxlang.Reads.of_action sim.env ~shared:read_shared
                   ~locals:sim.locals.(pid) ~pid a);
            apply_action sim ~read_shared ~pid a;
            sim.pcs.(pid) <- a.target;
            sim.label_counts.(pid).(from_pc) <-
              sim.label_counts.(pid).(from_pc) + 1;
            emit sim
              (Event.Step { time = sim.time; pid; pc = from_pc; target = a.target });
            note_transition sim pid ~from_pc ~to_pc:a.target;
            if cfg.overflow_policy = Stop && sim.overflow_events > 0 then begin
              outcome := Overflow_stop;
              continue := false
            end;
            match cfg.stop_after_cs with
            | Some target
              when Array.fold_left ( + ) 0 sim.cs_entries >= target ->
                outcome := Completed;
                continue := false
            | _ -> ()));
    sim.time <- sim.time + 1
  done;
  record_finish sim !outcome span;
  {
    outcome = !outcome;
    steps = sim.time;
    cs_entries = sim.cs_entries;
    label_counts = sim.label_counts;
    overflow_events = sim.overflow_events;
    mutex_violations = sim.mutex_violations;
    fcfs_inversions = sim.fcfs_inversions;
    crashes = sim.crashes;
    flickers = sim.flickers;
    events = List.rev sim.evs;
    final_shared = Array.copy sim.shared;
  }
