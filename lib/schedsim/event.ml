(* Simulator events.  [time] is the global atomic-step counter. *)

type t =
  | Step of { time : int; pid : int; pc : int; target : int }
  | Read of { time : int; pid : int; var : int; cell : int; value : int }
  | Write of {
      time : int;
      pid : int;
      var : int;
      cell : int;
      value : int;  (* value actually stored (post wrap/saturate) *)
      prev : int;  (* cell content before the store *)
      raw : int;  (* computed value before the overflow policy; = value
                     unless the store wrapped or saturated *)
    }
  | Cs_enter of { time : int; pid : int }
  | Cs_exit of { time : int; pid : int }
  | Doorway_done of { time : int; pid : int }
  | Overflow of { time : int; pid : int; var : int; cell : int; value : int }
  | Mutex_violation of { time : int; pids : int list }
  | Crash of { time : int; pid : int }
  | Restart of { time : int; pid : int }
  | Flicker of { time : int; pid : int; cell : int; value : int }

let time = function
  | Step { time; _ }
  | Read { time; _ }
  | Write { time; _ }
  | Cs_enter { time; _ }
  | Cs_exit { time; _ }
  | Doorway_done { time; _ }
  | Overflow { time; _ }
  | Mutex_violation { time; _ }
  | Crash { time; _ }
  | Restart { time; _ }
  | Flicker { time; _ } ->
      time

let to_string (p : Mxlang.Ast.program) = function
  | Step { time; pid; pc; _ } ->
      Printf.sprintf "%8d p%d step %s" time pid p.steps.(pc).step_name
  | Read { time; pid; var; cell; value } ->
      Printf.sprintf "%8d p%d read %s[%d] = %d" time pid p.var_names.(var) cell
        value
  | Write { time; pid; var; cell; value; prev; raw } ->
      if raw = value then
        Printf.sprintf "%8d p%d write %s[%d] := %d (was %d)" time pid
          p.var_names.(var) cell value prev
      else
        Printf.sprintf "%8d p%d write %s[%d] := %d (was %d, wrapped from %d)"
          time pid p.var_names.(var) cell value prev raw
  | Cs_enter { time; pid } -> Printf.sprintf "%8d p%d ENTER CS" time pid
  | Cs_exit { time; pid } -> Printf.sprintf "%8d p%d exit CS" time pid
  | Doorway_done { time; pid } -> Printf.sprintf "%8d p%d doorway done" time pid
  | Overflow { time; pid; var; cell; value } ->
      Printf.sprintf "%8d p%d OVERFLOW %s[%d] = %d" time pid p.var_names.(var)
        cell value
  | Mutex_violation { time; pids } ->
      Printf.sprintf "%8d MUTEX VIOLATION: processes %s in CS" time
        (String.concat "," (List.map string_of_int pids))
  | Crash { time; pid } -> Printf.sprintf "%8d p%d crash" time pid
  | Restart { time; pid } -> Printf.sprintf "%8d p%d restart" time pid
  | Flicker { time; pid; cell; value } ->
      Printf.sprintf "%8d p%d flickered read cell %d -> %d" time pid cell value
