type t = {
  name : string;
  law : string;
  holds : System.t -> State.packed -> bool;
  prepare : (System.t -> State.packed -> bool) option;
  describe : (System.t -> State.packed -> string option) option;
  subs : t list;
}

let pc_name sys s pid =
  let p = System.program sys in
  let lay = System.layout sys in
  p.Mxlang.Ast.steps.(State.pc lay s pid).step_name

let mutex =
  {
    name = "mutual-exclusion";
    law = "at most one process is at a Critical-kind label";
    holds =
      (fun sys s ->
        let n = System.nprocs sys in
        let rec count i acc =
          if acc > 1 then acc
          else if i >= n then acc
          else count (i + 1) (if System.in_critical sys s i then acc + 1 else acc)
        in
        count 0 0 <= 1);
    (* Staged form: resolve "is pc critical?" once per run into a table
       indexed by pc, so the per-state check is [nprocs] array loads. *)
    prepare =
      Some
        (fun sys ->
          let p = System.program sys in
          let lay = System.layout sys in
          let n = System.nprocs sys in
          let critical =
            Array.map
              (fun (st : Mxlang.Ast.step) -> st.kind = Mxlang.Ast.Critical)
              p.steps
          in
          let pcs_off = lay.State.pcs_off in
          fun s ->
            let rec count i acc =
              if i >= n then acc
              else
                count (i + 1)
                  (if Array.unsafe_get critical (Array.unsafe_get s (pcs_off + i))
                   then acc + 1
                   else acc)
            in
            count 0 0 <= 1);
    describe =
      Some
        (fun sys s ->
          let n = System.nprocs sys in
          let culprits =
            List.filter
              (fun i -> System.in_critical sys s i)
              (List.init n Fun.id)
          in
          if List.length culprits < 2 then None
          else
            Some
              (Printf.sprintf "processes %s are all inside the critical section (%s)"
                 (String.concat ", "
                    (List.map (fun i -> "p" ^ string_of_int i) culprits))
                 (String.concat ", "
                    (List.map
                       (fun i ->
                         Printf.sprintf "p%d@%s" i (pc_name sys s i))
                       culprits))));
    subs = [];
  }

let no_overflow =
  {
    name = "no-overflow";
    law = "every cell of every register-bounded shared variable is <= M";
    holds =
      (fun sys s ->
        let p = System.program sys in
        let lay = System.layout sys in
        let m = System.bound sys in
        let rec var_ok v =
          v >= p.nvars
          || ((not p.bounded.(v))
             ||
             let cells = Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) p v in
             let rec cell_ok i =
               i >= cells || (State.shared_cell lay s v i <= m && cell_ok (i + 1))
             in
             cell_ok 0)
             && var_ok (v + 1)
        in
        var_ok 0);
    (* Staged form: the register-bounded variables occupy a fixed set of
       shared cells; collect their (first, last) cell ranges once, then
       scan those words directly. *)
    prepare =
      Some
        (fun sys ->
          let p = System.program sys in
          let lay = System.layout sys in
          let m = System.bound sys in
          let nprocs = System.nprocs sys in
          let ranges = ref [] in
          for v = p.nvars - 1 downto 0 do
            if p.bounded.(v) then begin
              let o = Mxlang.Eval.offset lay.State.env v in
              let cells = Mxlang.Ast.cells_of ~nprocs p v in
              ranges := (o, o + cells - 1) :: !ranges
            end
          done;
          let ranges = Array.of_list !ranges in
          fun s ->
            let rec range_ok r =
              r >= Array.length ranges
              ||
              let lo, hi = Array.unsafe_get ranges r in
              let rec cell_ok i =
                i > hi || (Array.unsafe_get s i <= m && cell_ok (i + 1))
              in
              cell_ok lo && range_ok (r + 1)
            in
            range_ok 0);
    describe =
      Some
        (fun sys s ->
          let p = System.program sys in
          let lay = System.layout sys in
          let m = System.bound sys in
          let offending = ref [] in
          for v = p.nvars - 1 downto 0 do
            if p.bounded.(v) then begin
              let cells = Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) p v in
              for i = cells - 1 downto 0 do
                let x = State.shared_cell lay s v i in
                if x > m then
                  offending :=
                    Printf.sprintf "%s[%d] = %d" p.var_names.(v) i x
                    :: !offending
              done
            end
          done;
          match !offending with
          | [] -> None
          | l ->
              Some
                (Printf.sprintf "%s exceed%s M = %d" (String.concat ", " l)
                   (if List.length l = 1 then "s" else "") m));
    subs = [];
  }

let bounded_by ~var ~limit =
  {
    name = Printf.sprintf "bounded(var %d <= %d)" var limit;
    law = Printf.sprintf "every cell of variable %d is <= %d" var limit;
    holds =
      (fun sys s ->
        let lay = System.layout sys in
        let cells =
          Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) (System.program sys) var
        in
        let rec ok i = i >= cells || (State.shared_cell lay s var i <= limit && ok (i + 1)) in
        ok 0);
    prepare = None;
    describe =
      Some
        (fun sys s ->
          let p = System.program sys in
          let lay = System.layout sys in
          let cells = Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) p var in
          let offending = ref [] in
          for i = cells - 1 downto 0 do
            let x = State.shared_cell lay s var i in
            if x > limit then
              offending :=
                Printf.sprintf "%s[%d] = %d" p.var_names.(var) i x :: !offending
          done;
          match !offending with
          | [] -> None
          | l ->
              Some
                (Printf.sprintf "%s exceed%s the limit %d" (String.concat ", " l)
                   (if List.length l = 1 then "s" else "") limit));
    subs = [];
  }

let custom name holds =
  { name; law = name; holds; prepare = None; describe = None; subs = [] }

let all invs =
  {
    name = String.concat " & " (List.map (fun i -> i.name) invs);
    law = String.concat " and " (List.map (fun i -> i.law) invs);
    holds = (fun sys s -> List.for_all (fun i -> i.holds sys s) invs);
    prepare = None;
    describe = None;
    subs = invs;
  }

let rec conjuncts inv =
  match inv.subs with [] -> [ inv ] | l -> List.concat_map conjuncts l

type failure = {
  f_name : string;  (* name of the failing conjunct *)
  f_law : string;  (* the conjunct as a human-readable law *)
  f_detail : string option;  (* register/pc values falsifying it *)
}

let explain_failure inv sys s =
  let rec find = function
    | [] -> None
    | c :: rest ->
        if c.holds sys s then find rest
        else
          Some
            {
              f_name = c.name;
              f_law = c.law;
              f_detail =
                (match c.describe with None -> None | Some d -> d sys s);
            }
  in
  find (conjuncts inv)

let check inv sys s = if inv.holds sys s then None else Some inv.name

(* Staged checker: specialize once per (invariant, system).  Falls back
   to the generic [holds] partially applied when no staged form exists;
   the two must agree on every state. *)
let stage inv sys =
  match inv.prepare with Some p -> p sys | None -> inv.holds sys
