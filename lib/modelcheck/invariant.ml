type t = {
  name : string;
  holds : System.t -> State.packed -> bool;
  prepare : (System.t -> State.packed -> bool) option;
}

let mutex =
  {
    name = "mutual-exclusion";
    holds =
      (fun sys s ->
        let n = System.nprocs sys in
        let rec count i acc =
          if acc > 1 then acc
          else if i >= n then acc
          else count (i + 1) (if System.in_critical sys s i then acc + 1 else acc)
        in
        count 0 0 <= 1);
    (* Staged form: resolve "is pc critical?" once per run into a table
       indexed by pc, so the per-state check is [nprocs] array loads. *)
    prepare =
      Some
        (fun sys ->
          let p = System.program sys in
          let lay = System.layout sys in
          let n = System.nprocs sys in
          let critical =
            Array.map
              (fun (st : Mxlang.Ast.step) -> st.kind = Mxlang.Ast.Critical)
              p.steps
          in
          let pcs_off = lay.State.pcs_off in
          fun s ->
            let rec count i acc =
              if i >= n then acc
              else
                count (i + 1)
                  (if Array.unsafe_get critical (Array.unsafe_get s (pcs_off + i))
                   then acc + 1
                   else acc)
            in
            count 0 0 <= 1);
  }

let no_overflow =
  {
    name = "no-overflow";
    holds =
      (fun sys s ->
        let p = System.program sys in
        let lay = System.layout sys in
        let m = System.bound sys in
        let rec var_ok v =
          v >= p.nvars
          || ((not p.bounded.(v))
             ||
             let cells = Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) p v in
             let rec cell_ok i =
               i >= cells || (State.shared_cell lay s v i <= m && cell_ok (i + 1))
             in
             cell_ok 0)
             && var_ok (v + 1)
        in
        var_ok 0);
    (* Staged form: the register-bounded variables occupy a fixed set of
       shared cells; collect their (first, last) cell ranges once, then
       scan those words directly. *)
    prepare =
      Some
        (fun sys ->
          let p = System.program sys in
          let lay = System.layout sys in
          let m = System.bound sys in
          let nprocs = System.nprocs sys in
          let ranges = ref [] in
          for v = p.nvars - 1 downto 0 do
            if p.bounded.(v) then begin
              let o = Mxlang.Eval.offset lay.State.env v in
              let cells = Mxlang.Ast.cells_of ~nprocs p v in
              ranges := (o, o + cells - 1) :: !ranges
            end
          done;
          let ranges = Array.of_list !ranges in
          fun s ->
            let rec range_ok r =
              r >= Array.length ranges
              ||
              let lo, hi = Array.unsafe_get ranges r in
              let rec cell_ok i =
                i > hi || (Array.unsafe_get s i <= m && cell_ok (i + 1))
              in
              cell_ok lo && range_ok (r + 1)
            in
            range_ok 0);
  }

let bounded_by ~var ~limit =
  {
    name = Printf.sprintf "bounded(var %d <= %d)" var limit;
    holds =
      (fun sys s ->
        let lay = System.layout sys in
        let cells =
          Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) (System.program sys) var
        in
        let rec ok i = i >= cells || (State.shared_cell lay s var i <= limit && ok (i + 1)) in
        ok 0);
    prepare = None;
  }

let custom name holds = { name; holds; prepare = None }

let all invs =
  {
    name = String.concat " & " (List.map (fun i -> i.name) invs);
    holds = (fun sys s -> List.for_all (fun i -> i.holds sys s) invs);
    prepare = None;
  }

let check inv sys s = if inv.holds sys s then None else Some inv.name

(* Staged checker: specialize once per (invariant, system).  Falls back
   to the generic [holds] partially applied when no staged form exists;
   the two must agree on every state. *)
let stage inv sys =
  match inv.prepare with Some p -> p sys | None -> inv.holds sys
