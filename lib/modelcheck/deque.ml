(* Per-domain work deque for the sharded explorer.

   The owner pushes and pops at the tail (LIFO keeps its cache warm
   within a wave — order inside a BFS level is semantically free);
   thieves steal a batch from the head, taking the oldest work.  A
   plain per-deque mutex guards both ends: the owner's lock is
   uncontended except while a thief is actually stealing, and stealing
   moves a batch per lock acquisition, not an item.

   Entries are (global id, packed state) pairs held in two parallel
   circular buffers, so neither push nor pop allocates. *)

type t = {
  mutex : Mutex.t;
  mutable gids : int array;
  mutable states : State.packed array;
  mutable head : int;  (* index of the first occupied slot *)
  mutable len : int;
}

let initial_cap = 256

let create () =
  {
    mutex = Mutex.create ();
    gids = Array.make initial_cap 0;
    states = Array.make initial_cap [||];
    head = 0;
    len = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.gids in
  let gids = Array.make (2 * cap) 0 in
  let states = Array.make (2 * cap) [||] in
  let first = min t.len (cap - t.head) in
  Array.blit t.gids t.head gids 0 first;
  Array.blit t.gids 0 gids first (t.len - first);
  Array.blit t.states t.head states 0 first;
  Array.blit t.states 0 states first (t.len - first);
  t.gids <- gids;
  t.states <- states;
  t.head <- 0

let push t gid (s : State.packed) =
  Mutex.lock t.mutex;
  let cap = Array.length t.gids in
  if t.len = cap then grow t;
  let cap = Array.length t.gids in
  let i = (t.head + t.len) land (cap - 1) in
  t.gids.(i) <- gid;
  t.states.(i) <- s;
  t.len <- t.len + 1;
  Mutex.unlock t.mutex

type slot = { mutable s_gid : int; mutable s_state : State.packed }

let slot () = { s_gid = -1; s_state = [||] }

let pop t out =
  Mutex.lock t.mutex;
  if t.len = 0 then begin
    Mutex.unlock t.mutex;
    false
  end
  else begin
    let cap = Array.length t.gids in
    let i = (t.head + t.len - 1) land (cap - 1) in
    out.s_gid <- t.gids.(i);
    out.s_state <- t.states.(i);
    t.states.(i) <- [||];
    t.len <- t.len - 1;
    Mutex.unlock t.mutex;
    true
  end

(* Steal up to [max] items (at most half the victim's load, at least
   one) from the head into the thief's scratch arrays.  Returns the
   number taken; 0 when the victim is empty. *)
let steal t ~gids ~states ~max =
  Mutex.lock t.mutex;
  let n = min max (min ((t.len + 1) / 2) (Array.length gids)) in
  let cap = Array.length t.gids in
  for k = 0 to n - 1 do
    let i = (t.head + k) land (cap - 1) in
    gids.(k) <- t.gids.(i);
    states.(k) <- t.states.(i);
    t.states.(i) <- [||]
  done;
  if n > 0 then begin
    t.head <- (t.head + n) land (cap - 1);
    t.len <- t.len - n
  end;
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  Array.fill t.states 0 (Array.length t.states) [||];
  t.head <- 0;
  t.len <- 0;
  Mutex.unlock t.mutex
