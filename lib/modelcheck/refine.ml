type obs = int array

type failure = { impl_trace : Trace.t; bad_obs : obs }

type result = {
  included : bool;
  failure : failure option;
  complete : bool;
  impl_pairs : int;
  spec_states : int;
}

let phase_of_kind = function
  | Mxlang.Ast.Noncritical -> 0
  | Entry | Doorway | Waiting | Plain -> 1
  | Critical -> 2
  | Exit -> 3

let phase_obs sys s =
  let lay = System.layout sys in
  Array.init (System.nprocs sys) (fun i ->
      phase_of_kind (System.kind_of_pc sys (State.pc lay s i)))

let obs_equal (a : obs) (b : obs) = a = b

module StateTbl = Hashtbl.Make (struct
  type t = State.packed

  let equal = State.equal
  let hash = State.hash
end)

(* Interned specification states: stable ids so that sets of spec states
   can be canonicalized as sorted id lists. *)
type spec_store = {
  sys : System.t;
  ids : int StateTbl.t;
  states : State.packed Vec.t;
  expandable : State.packed -> bool;
}

let intern st s =
  match StateTbl.find_opt st.ids s with
  | Some id -> id
  | None ->
      let id = Vec.push st.states s in
      StateTbl.add st.ids s id;
      id

(* All spec states reachable from [seeds] through transitions that keep
   the observation equal to [o] (stutter closure), as a sorted id list. *)
let closure st ~obs_fn ~o seeds =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      acc := id :: !acc;
      let s = Vec.get st.states id in
      if st.expandable s then
        List.iter
          (fun (m : System.move) ->
            if obs_equal (obs_fn st.sys m.dest) o then visit (intern st m.dest))
          (System.successors st.sys s)
    end
  in
  List.iter visit seeds;
  List.sort_uniq compare !acc

(* One visible move: spec states reachable from the set by a single
   transition whose destination observation is [next_o], then
   stutter-closed. *)
let visible_step st ~obs_fn ~next_o set =
  let seeds = ref [] in
  List.iter
    (fun id ->
      let s = Vec.get st.states id in
      if st.expandable s then
        List.iter
          (fun (m : System.move) ->
            if obs_equal (obs_fn st.sys m.dest) next_o then
              seeds := intern st m.dest :: !seeds)
          (System.successors st.sys s))
    set;
  closure st ~obs_fn ~o:next_o (List.sort_uniq compare !seeds)

let check ~impl ~spec ?(obs_impl = phase_obs) ?(obs_spec = phase_obs)
    ?spec_constraint ?(max_pairs = 2_000_000) () =
  let spec_store =
    {
      sys = spec;
      ids = StateTbl.create 4096;
      states = Vec.create ();
      expandable =
        (match spec_constraint with
        | None -> fun _ -> true
        | Some c -> fun s -> c spec s);
    }
  in
  (* Implementation store with parent pointers for counterexamples. *)
  let impl_ids = StateTbl.create 4096 in
  let impl_states = Vec.create () in
  let parent = Vec.create () and via_pid = Vec.create () and via_pc = Vec.create () in
  let intern_impl ~p ~pid ~pc s =
    match StateTbl.find_opt impl_ids s with
    | Some id -> (id, false)
    | None ->
        let id = Vec.push impl_states s in
        StateTbl.add impl_ids s id;
        ignore (Vec.push parent p);
        ignore (Vec.push via_pid pid);
        ignore (Vec.push via_pc pc);
        (id, true)
  in
  let impl_trace id =
    let p = System.program impl in
    let rec walk id acc =
      let pid = Vec.get via_pid id in
      let entry =
        {
          Trace.pid;
          step_name =
            (if pid < 0 then "<init>" else p.steps.(Vec.get via_pc id).step_name);
          state = Vec.get impl_states id;
        }
      in
      let par = Vec.get parent id in
      if par < 0 then entry :: acc else walk par (entry :: acc)
    in
    walk id []
  in
  (* Pairs (impl id, spec set) already visited. *)
  let pair_seen = Hashtbl.create 4096 in
  let pairs = ref 0 in
  let wave = Wave.create () in
  let exception Fail of failure in
  let exception Out_of_budget in
  let enqueue impl_id set o =
    let key = (impl_id, set) in
    if not (Hashtbl.mem pair_seen key) then begin
      Hashtbl.add pair_seen key ();
      incr pairs;
      if !pairs > max_pairs then raise Out_of_budget;
      Wave.push wave (impl_id, set, o)
    end
  in
  let result =
    try
      let i0 = System.initial impl in
      let o0 = obs_impl impl i0 in
      let s0 = System.initial spec in
      if not (obs_equal (obs_spec spec s0) o0) then
        raise
          (Fail
             {
               impl_trace =
                 [ { Trace.pid = -1; step_name = "<init>"; state = i0 } ];
               bad_obs = o0;
             });
      let set0 = closure spec_store ~obs_fn:obs_spec ~o:o0 [ intern spec_store s0 ] in
      let i0_id, _ = intern_impl ~p:(-1) ~pid:(-1) ~pc:(-1) i0 in
      enqueue i0_id set0 o0;
      Wave.drive wave (fun (impl_id, set, o) ->
          let s = Vec.get impl_states impl_id in
          List.iter
            (fun (m : System.move) ->
              let o' = obs_impl impl m.dest in
              let id', _ = intern_impl ~p:impl_id ~pid:m.pid ~pc:m.from_pc m.dest in
              if obs_equal o' o then enqueue id' set o
              else begin
                let set' =
                  visible_step spec_store ~obs_fn:obs_spec ~next_o:o' set
                in
                if set' = [] then
                  raise (Fail { impl_trace = impl_trace id'; bad_obs = o' });
                enqueue id' set' o'
              end)
            (System.successors impl s));
      {
        included = true;
        failure = None;
        complete = true;
        impl_pairs = !pairs;
        spec_states = Vec.length spec_store.states;
      }
    with
    | Fail f ->
        {
          included = false;
          failure = Some f;
          complete = true;
          impl_pairs = !pairs;
          spec_states = Vec.length spec_store.states;
        }
    | Out_of_budget ->
        {
          included = true;
          failure = None;
          complete = false;
          impl_pairs = !pairs;
          spec_states = Vec.length spec_store.states;
        }
  in
  result
