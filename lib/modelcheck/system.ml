type t = { env : Mxlang.Eval.env; lay : State.layout; comp : Mxlang.Compile.t }

type move = { pid : int; from_pc : int; alt : int; dest : State.packed }

let make program ~nprocs ~bound =
  Mxlang.Validate.assert_valid program;
  let env = Mxlang.Eval.make_env program ~nprocs ~bound in
  let lay = State.layout env in
  let comp =
    Mxlang.Compile.compile env ~local_base:(fun pid ->
        lay.locals_off + (pid * lay.locals_per))
  in
  { env; lay; comp }

let layout t = t.lay
let program t = t.env.program
let nprocs t = t.env.nprocs
let bound t = t.env.bound
let initial t = State.initial t.lay

(* The hot path: compiled guards run directly against the packed state
   (no [Array.sub] copies); the destination array is allocated only for
   an enabled action, and the compiled effects mutate it in place. *)
let successors_into t (s : State.packed) out =
  let lay = t.lay in
  let actions = t.comp.actions in
  for pid = 0 to t.env.nprocs - 1 do
    let pc = s.(lay.pcs_off + pid) in
    let alts = actions.(pc).(pid) in
    for alt = 0 to Array.length alts - 1 do
      let (a : Mxlang.Compile.caction) = alts.(alt) in
      if a.enabled s then begin
        let dest = Array.copy s in
        a.perform dest;
        dest.(lay.pcs_off + pid) <- a.target;
        ignore (Vec.push out { pid; from_pc = pc; alt; dest })
      end
    done
  done

(* Fused variant for the sequential explorer: each enabled action's
   destination is built in the caller's [scratch] buffer (blit + compiled
   effects), and [f] decides whether it is worth an allocation.  Over a
   big search most generated states are duplicates, so skipping the copy
   for them is the single largest allocation saving in the checker. *)
let iter_successors_scratch t (s : State.packed) ~scratch f =
  let lay = t.lay in
  let actions = t.comp.actions in
  for pid = 0 to t.env.nprocs - 1 do
    let pc = s.(lay.pcs_off + pid) in
    let alts = actions.(pc).(pid) in
    for alt = 0 to Array.length alts - 1 do
      let (a : Mxlang.Compile.caction) = alts.(alt) in
      if a.enabled s then begin
        (* Manual copy: a packed state is a couple dozen words, short
           enough that the loop beats [Array.blit]'s C stub call. *)
        for i = 0 to lay.words - 1 do
          Array.unsafe_set scratch i (Array.unsafe_get s i)
        done;
        a.perform scratch;
        scratch.(lay.pcs_off + pid) <- a.target;
        f ~pid ~from_pc:pc ~alt
      end
    done
  done

(* Re-execute one recorded move.  The sharded explorer's
   fingerprint-only mode stores no states, only (pid, pc, alt) triples
   along the parent chain; a counterexample trace is rebuilt by
   replaying them from the initial state. *)
let apply_move t (s : State.packed) ~pid ~pc ~alt =
  let (a : Mxlang.Compile.caction) = t.comp.actions.(pc).(pid).(alt) in
  let dest = Array.copy s in
  a.perform dest;
  dest.(t.lay.pcs_off + pid) <- a.target;
  dest

let successors_of_pid t (s : State.packed) pid =
  let lay = t.lay in
  let pc = s.(lay.pcs_off + pid) in
  let alts = t.comp.actions.(pc).(pid) in
  let moves = ref [] in
  for alt = Array.length alts - 1 downto 0 do
    let (a : Mxlang.Compile.caction) = alts.(alt) in
    if a.enabled s then begin
      let dest = Array.copy s in
      a.perform dest;
      dest.(lay.pcs_off + pid) <- a.target;
      moves := { pid; from_pc = pc; alt; dest } :: !moves
    end
  done;
  !moves

let successors t s =
  let rec all pid acc =
    if pid < 0 then acc else all (pid - 1) (successors_of_pid t s pid @ acc)
  in
  all (t.env.nprocs - 1) []

(* Reference implementation on the interpreter, kept as the differential
   baseline for the compiled path (and as the "before" engine in the
   throughput experiment).  Single linear pass; no quadratic append. *)
let successors_interpreted t s =
  let lay = t.lay in
  let moves = ref [] in
  for pid = t.env.nprocs - 1 downto 0 do
    let pc = State.pc lay s pid in
    let shared = State.shared_part lay s in
    let locals = State.locals_part lay s pid in
    let step = t.env.program.steps.(pc) in
    let rec alts alt = function
      | [] -> []
      | (a : Mxlang.Ast.action) :: rest ->
          if Mxlang.Eval.eval_b t.env ~shared ~locals ~pid a.guard then begin
            let shared' = Array.copy shared and locals' = Array.copy locals in
            Mxlang.Eval.apply t.env ~shared:shared' ~locals:locals' ~pid a;
            let dest = Array.copy s in
            State.write_back lay dest ~shared:shared' ~locals:locals' ~pid;
            State.set_pc lay dest pid a.target;
            { pid; from_pc = pc; alt; dest } :: alts (alt + 1) rest
          end
          else alts (alt + 1) rest
    in
    moves := alts 0 step.actions @ !moves
  done;
  !moves

let enabled t s pid =
  let pc = s.(t.lay.pcs_off + pid) in
  let alts = t.comp.actions.(pc).(pid) in
  let n = Array.length alts in
  let rec any alt = alt < n && (alts.(alt).enabled s || any (alt + 1)) in
  any 0

let kind_of_pc t pc = t.env.program.steps.(pc).kind

let in_critical t s pid = kind_of_pc t (State.pc t.lay s pid) = Mxlang.Ast.Critical
