(* A weak-register system runs the two-phase transform of the program
   ({!Regsem.Two_phase}) and enumerates flicker views for every action
   whose static read set overlaps another process's in-flight write.
   The atomic path is byte-for-byte today's engine: no transform, no
   view allocation, every move carries [flick = 0]. *)
type weak = {
  wk_model : Regsem.Model.t;
  wk_flick : Regsem.Flicker.ctx;
  wk_meta : Regsem.Two_phase.meta;
  wk_reads : int array array array array;
      (* wk_reads.(pc).(pid).(alt) = sorted static read cells *)
}

type t = {
  env : Mxlang.Eval.env;
  lay : State.layout;
  comp : Mxlang.Compile.t;
  source : Mxlang.Ast.program;
      (* the program as given, before any two-phase transform *)
  weak : weak option;
}

type move = { pid : int; from_pc : int; alt : int; flick : int; dest : State.packed }

let make ?(register_model = Regsem.Model.Atomic) program ~nprocs ~bound =
  Mxlang.Validate.assert_valid program;
  let source = program in
  let build program weak_of =
    let env = Mxlang.Eval.make_env program ~nprocs ~bound in
    let lay = State.layout env in
    let comp =
      Mxlang.Compile.compile env ~local_base:(fun pid ->
          lay.locals_off + (pid * lay.locals_per))
    in
    { env; lay; comp; source; weak = weak_of env lay }
  in
  match register_model with
  | Regsem.Model.Atomic -> build program (fun _ _ -> None)
  | model ->
      (* Value ranges come from the source program — the transform only
         relocates the same right-hand sides into pending locals. *)
      let ceil = Regsem.Domain.ceilings program ~nprocs ~bound in
      let tp, meta = Regsem.Two_phase.transform program in
      build tp (fun env lay ->
          let cell_ceil = Array.make env.shared_cells 0 in
          for v = 0 to program.nvars - 1 do
            let o = env.offsets.(v) in
            let n = Mxlang.Ast.cells_of ~nprocs program v in
            Array.fill cell_ceil o n ceil.(v)
          done;
          let wk_flick =
            Regsem.Flicker.make ~model ~nprocs ~locals_off:lay.State.locals_off
              ~locals_per:lay.State.locals_per ~var_off:env.offsets ~cell_ceil
              ~pend:meta.Regsem.Two_phase.tp_pend
          in
          let wk_reads =
            Array.map
              (fun (step : Mxlang.Ast.step) ->
                Array.init nprocs (fun pid ->
                    Array.of_list
                      (List.map
                         (fun a -> Mxlang.Reads.static_cells env ~pid a)
                         step.actions)))
              tp.steps
          in
          Some { wk_model = model; wk_flick; wk_meta = meta; wk_reads })

let layout t = t.lay
let program t = t.env.program
let source_program t = t.source

let two_phase_meta t =
  match t.weak with None -> None | Some wk -> Some wk.wk_meta
let nprocs t = t.env.nprocs
let bound t = t.env.bound
let initial t = State.initial t.lay
let register_model t =
  match t.weak with None -> Regsem.Model.Atomic | Some wk -> wk.wk_model

(* The hot path: compiled guards run directly against the packed state
   (no [Array.sub] copies); the destination array is allocated only for
   an enabled action, and the compiled effects mutate it in place. *)
let successors_into t (s : State.packed) out =
  let lay = t.lay in
  let actions = t.comp.actions in
  match t.weak with
  | None ->
      for pid = 0 to t.env.nprocs - 1 do
        let pc = s.(lay.pcs_off + pid) in
        let alts = actions.(pc).(pid) in
        for alt = 0 to Array.length alts - 1 do
          let (a : Mxlang.Compile.caction) = alts.(alt) in
          if a.enabled s then begin
            let dest = Array.copy s in
            a.perform dest;
            dest.(lay.pcs_off + pid) <- a.target;
            ignore (Vec.push out { pid; from_pc = pc; alt; flick = 0; dest })
          end
        done
      done
  | Some wk ->
      let view = Array.copy s in
      for pid = 0 to t.env.nprocs - 1 do
        let pc = s.(lay.pcs_off + pid) in
        let alts = actions.(pc).(pid) in
        for alt = 0 to Array.length alts - 1 do
          let (a : Mxlang.Compile.caction) = alts.(alt) in
          let cells = wk.wk_reads.(pc).(pid).(alt) in
          Regsem.Flicker.iter_views wk.wk_flick ~s ~view ~pid ~cells
            (fun ~flick ->
              if a.enabled view then begin
                let dest = Array.copy s in
                a.perform_rw ~read:view ~write:dest;
                dest.(lay.pcs_off + pid) <- a.target;
                ignore (Vec.push out { pid; from_pc = pc; alt; flick; dest })
              end)
        done
      done

(* Fused variant for the sequential explorer: each enabled action's
   destination is built in the caller's [scratch] buffer (blit + compiled
   effects), and [f] decides whether it is worth an allocation.  Over a
   big search most generated states are duplicates, so skipping the copy
   for them is the single largest allocation saving in the checker. *)
let iter_successors_scratch ?(only = -1) t (s : State.packed) ~scratch f =
  let lay = t.lay in
  let actions = t.comp.actions in
  (* [only >= 0] restricts expansion to that process — the ample-set
     reduction's single-process wave ({!Reduce.ample}). *)
  let pid_lo = if only >= 0 then only else 0
  and pid_hi = if only >= 0 then only else t.env.nprocs - 1 in
  match t.weak with
  | None ->
      for pid = pid_lo to pid_hi do
        let pc = s.(lay.pcs_off + pid) in
        let alts = actions.(pc).(pid) in
        for alt = 0 to Array.length alts - 1 do
          let (a : Mxlang.Compile.caction) = alts.(alt) in
          if a.enabled s then begin
            (* Manual copy: a packed state is a couple dozen words, short
               enough that the loop beats [Array.blit]'s C stub call. *)
            for i = 0 to lay.words - 1 do
              Array.unsafe_set scratch i (Array.unsafe_get s i)
            done;
            a.perform scratch;
            scratch.(lay.pcs_off + pid) <- a.target;
            f ~pid ~from_pc:pc ~alt ~flick:0
          end
        done
      done
  | Some wk ->
      let view = Array.copy s in
      for pid = pid_lo to pid_hi do
        let pc = s.(lay.pcs_off + pid) in
        let alts = actions.(pc).(pid) in
        for alt = 0 to Array.length alts - 1 do
          let (a : Mxlang.Compile.caction) = alts.(alt) in
          let cells = wk.wk_reads.(pc).(pid).(alt) in
          Regsem.Flicker.iter_views wk.wk_flick ~s ~view ~pid ~cells
            (fun ~flick ->
              if a.enabled view then begin
                for i = 0 to lay.words - 1 do
                  Array.unsafe_set scratch i (Array.unsafe_get s i)
                done;
                a.perform_rw ~read:view ~write:scratch;
                scratch.(lay.pcs_off + pid) <- a.target;
                f ~pid ~from_pc:pc ~alt ~flick
              end)
        done
      done

(* Re-execute one recorded move.  The sharded explorer's
   fingerprint-only mode stores no states, only (pid, pc, alt, flick)
   tuples along the parent chain; a counterexample trace is rebuilt by
   replaying them from the initial state.  Under a weak model the rank
   decodes (via the shared {!Regsem.Flicker} path) to the same view the
   search enumerated. *)
let apply_move t (s : State.packed) ~pid ~pc ~alt ~flick =
  let (a : Mxlang.Compile.caction) = t.comp.actions.(pc).(pid).(alt) in
  match t.weak with
  | None ->
      let dest = Array.copy s in
      a.perform dest;
      dest.(t.lay.pcs_off + pid) <- a.target;
      dest
  | Some wk ->
      let cells = wk.wk_reads.(pc).(pid).(alt) in
      let view = Array.copy s in
      List.iter
        (fun (cell, seen) -> view.(cell) <- seen)
        (Regsem.Flicker.assignment wk.wk_flick ~s ~pid ~cells ~flick);
      let dest = Array.copy s in
      a.perform_rw ~read:view ~write:dest;
      dest.(t.lay.pcs_off + pid) <- a.target;
      dest

(* The (flat cell, value seen) pairs move [flick] perturbed, for the
   re-walk forensics; empty under the atomic model or rank 0. *)
let flick_assignment t (s : State.packed) ~pid ~pc ~alt ~flick =
  match t.weak with
  | None -> []
  | Some wk ->
      let cells = wk.wk_reads.(pc).(pid).(alt) in
      List.filter
        (fun (cell, seen) -> seen <> s.(cell))
        (Regsem.Flicker.assignment wk.wk_flick ~s ~pid ~cells ~flick)

(* Map a flat shared offset back to (variable, cell index). *)
let var_of_cell t cell =
  let offsets = t.env.offsets in
  let v = ref (t.env.program.nvars - 1) in
  while offsets.(!v) > cell do
    decr v
  done;
  (!v, cell - offsets.(!v))

let successors_of_pid t (s : State.packed) pid =
  let lay = t.lay in
  let pc = s.(lay.pcs_off + pid) in
  let alts = t.comp.actions.(pc).(pid) in
  match t.weak with
  | None ->
      let moves = ref [] in
      for alt = Array.length alts - 1 downto 0 do
        let (a : Mxlang.Compile.caction) = alts.(alt) in
        if a.enabled s then begin
          let dest = Array.copy s in
          a.perform dest;
          dest.(lay.pcs_off + pid) <- a.target;
          moves := { pid; from_pc = pc; alt; flick = 0; dest } :: !moves
        end
      done;
      !moves
  | Some wk ->
      let view = Array.copy s in
      let moves = ref [] in
      for alt = 0 to Array.length alts - 1 do
        let (a : Mxlang.Compile.caction) = alts.(alt) in
        let cells = wk.wk_reads.(pc).(pid).(alt) in
        Regsem.Flicker.iter_views wk.wk_flick ~s ~view ~pid ~cells
          (fun ~flick ->
            if a.enabled view then begin
              let dest = Array.copy s in
              a.perform_rw ~read:view ~write:dest;
              dest.(lay.pcs_off + pid) <- a.target;
              moves := { pid; from_pc = pc; alt; flick; dest } :: !moves
            end)
      done;
      List.rev !moves

let successors t s =
  let rec all pid acc =
    if pid < 0 then acc else all (pid - 1) (successors_of_pid t s pid @ acc)
  in
  all (t.env.nprocs - 1) []

(* Reference implementation on the interpreter, kept as the differential
   baseline for the compiled path (and as the "before" engine in the
   throughput experiment).  Single linear pass; no quadratic append. *)
let successors_interpreted t s =
  let lay = t.lay in
  let moves = ref [] in
  (match t.weak with
  | None ->
      for pid = t.env.nprocs - 1 downto 0 do
        let pc = State.pc lay s pid in
        let shared = State.shared_part lay s in
        let locals = State.locals_part lay s pid in
        let step = t.env.program.steps.(pc) in
        let rec alts alt = function
          | [] -> []
          | (a : Mxlang.Ast.action) :: rest ->
              if Mxlang.Eval.eval_b t.env ~shared ~locals ~pid a.guard then begin
                let shared' = Array.copy shared and locals' = Array.copy locals in
                Mxlang.Eval.apply t.env ~shared:shared' ~locals:locals' ~pid a;
                let dest = Array.copy s in
                State.write_back lay dest ~shared:shared' ~locals:locals' ~pid;
                State.set_pc lay dest pid a.target;
                { pid; from_pc = pc; alt; flick = 0; dest } :: alts (alt + 1) rest
              end
              else alts (alt + 1) rest
        in
        moves := alts 0 step.actions @ !moves
      done
  | Some wk ->
      (* A packed state's first [shared_len] words ARE the shared cells,
         so the full copy doubles as the interpreter's flickered shared
         view.  Same (pid asc, alt asc, flick asc) order as the compiled
         engine — pinned by the regsem fuzz oracle. *)
      for pid = t.env.nprocs - 1 downto 0 do
        let pc = State.pc lay s pid in
        let locals = State.locals_part lay s pid in
        let step = t.env.program.steps.(pc) in
        let view = Array.copy s in
        let acc = ref [] in
        let rec alts alt = function
          | [] -> ()
          | (a : Mxlang.Ast.action) :: rest ->
              let cells = wk.wk_reads.(pc).(pid).(alt) in
              Regsem.Flicker.iter_views wk.wk_flick ~s ~view ~pid ~cells
                (fun ~flick ->
                  if Mxlang.Eval.eval_b t.env ~shared:view ~locals ~pid a.guard
                  then begin
                    let shared' = Array.sub s 0 lay.shared_len in
                    let locals' = Array.copy locals in
                    Mxlang.Eval.apply_split t.env ~rshared:view ~shared:shared'
                      ~locals:locals' ~pid a;
                    let dest = Array.copy s in
                    State.write_back lay dest ~shared:shared' ~locals:locals'
                      ~pid;
                    State.set_pc lay dest pid a.target;
                    acc := { pid; from_pc = pc; alt; flick; dest } :: !acc
                  end);
              alts (alt + 1) rest
        in
        alts 0 step.actions;
        moves := List.rev_append !acc !moves
      done);
  !moves

let enabled t s pid =
  let pc = s.(t.lay.pcs_off + pid) in
  let alts = t.comp.actions.(pc).(pid) in
  match t.weak with
  | None ->
      let n = Array.length alts in
      let rec any alt = alt < n && (alts.(alt).enabled s || any (alt + 1)) in
      any 0
  | Some wk ->
      (* A flicker view can enable a guard the true state disables, so a
         process counts as live if ANY view enables any alternative. *)
      let view = Array.copy s in
      let found = ref false in
      Array.iteri
        (fun alt (a : Mxlang.Compile.caction) ->
          if not !found then
            Regsem.Flicker.iter_views wk.wk_flick ~s ~view ~pid
              ~cells:wk.wk_reads.(pc).(pid).(alt) (fun ~flick:_ ->
                if a.enabled view then found := true))
        alts;
      !found

let kind_of_pc t pc = t.env.program.steps.(pc).kind

let in_critical t s pid = kind_of_pc t (State.pc t.lay s pid) = Mxlang.Ast.Critical
