(* Sharded visited set for the parallel explorer.

   A state's fingerprint picks its owning shard ([fp mod nshards]); each
   shard is an independent open-addressing table plus (in [Exact] mode)
   its own chunked state arena, so concurrent insertions never touch
   another shard's memory.  The single shared [Store] this replaces made
   every insertion serialize through one table — the measured reason
   pool4 ran slower than pool1.

   Two key representations:

   - [Exact] keeps the full packed state per entry.  Equal fingerprints
     with different contents are genuine collisions: both states are
     stored, the collision is counted, and the checker's answer is
     bit-identical to the sequential engine's.  This is the default and
     the "debug" mode that measures the fingerprint's collision rate.
   - [Fp_only] keeps nothing but the fingerprint (TLC's trick): an
     order of magnitude less memory per state, at the cost of treating
     fingerprint-equal states as identical.  With the splitmix
     fingerprint the expected loss at 10^8 states is ~3e-3 collisions
     per run; with a bad hash the answer degrades (see the
     collision-injection test).

   Concurrency contract: shard [k] accepts insertions from one domain
   at a time (the engine makes domain [k] the only writer); reads of
   other shards' counters are only done at wave barriers. *)

type mode = Exact | Fp_only

type shard = {
  mutable table : int array;
      (* slot -> 0 when empty, else (key high bits lsl 32) lor (local + 1) *)
  mutable mask : int;
  keys : int Vec.t;  (* local id -> full slot key, for growth + Fp_only probes *)
  mutable chunks : int array array;  (* Exact: state [local] in its chunk *)
  mutable count : int;
  mutable collisions : int;
}

type t = {
  mode : mode;
  nshards : int;
  words : int;
  hash : State.packed -> int;
  shards : shard array;
}

let initial_slots = 1024
let chunk_bits = 13
let chunk_states = 1 lsl chunk_bits
let chunk_mask = chunk_states - 1
let tag_of k = (k lsr 31) lsl 32
let entry_tag e = e land lnot 0xffff_ffff

let create ?(hash = Fingerprint.hash) ~mode ~nshards ~words () =
  if nshards < 1 then invalid_arg "Shard_table.create: nshards must be >= 1";
  {
    mode;
    nshards;
    words;
    hash;
    shards =
      Array.init nshards (fun _ ->
          {
            table = Array.make initial_slots 0;
            mask = initial_slots - 1;
            keys = Vec.create ();
            chunks = [||];
            count = 0;
            collisions = 0;
          });
  }

let mode t = t.mode
let nshards t = t.nshards
let fingerprint t s = t.hash s
let owner t fp = fp mod t.nshards

(* Global ids interleave shards so that parent links survive any mix of
   shard growth rates: gid = local * nshards + shard. *)
let gid t ~shard ~local = (local * t.nshards) + shard
let shard_of_gid t gid = gid mod t.nshards
let local_of_gid t gid = gid / t.nshards

let count t ~shard = t.shards.(shard).count
let total t = Array.fold_left (fun acc sh -> acc + sh.count) 0 t.shards
let collisions t = Array.fold_left (fun acc sh -> acc + sh.collisions) 0 t.shards

let equal_at t sh local (s : State.packed) =
  let words = t.words in
  let chunk = Array.unsafe_get sh.chunks (local lsr chunk_bits) in
  let base = (local land chunk_mask) * words in
  let rec loop i =
    i >= words
    || Array.unsafe_get chunk (base + i) = Array.unsafe_get s i && loop (i + 1)
  in
  loop 0

let read_into t ~shard local (dst : State.packed) =
  let sh = t.shards.(shard) in
  Array.blit sh.chunks.(local lsr chunk_bits)
    ((local land chunk_mask) * t.words)
    dst 0 t.words

let get t ~shard local =
  let sh = t.shards.(shard) in
  Array.sub sh.chunks.(local lsr chunk_bits)
    ((local land chunk_mask) * t.words)
    t.words

let grow_table sh =
  let old = sh.table in
  let n = (if Array.length old >= 1 lsl 18 then 4 else 2) * Array.length old in
  let table = Array.make n 0 in
  let mask = n - 1 in
  for i = 0 to Array.length old - 1 do
    let e = Array.unsafe_get old i in
    if e <> 0 then begin
      let k = Vec.get sh.keys ((e land 0xffff_ffff) - 1) in
      let j = ref (k land mask) in
      while Array.unsafe_get table !j <> 0 do
        j := (!j + 1) land mask
      done;
      Array.unsafe_set table !j e
    end
  done;
  sh.table <- table;
  sh.mask <- mask

let store_state t sh (s : State.packed) =
  let words = t.words in
  let local = sh.count in
  let cid = local lsr chunk_bits in
  if cid >= Array.length sh.chunks then begin
    let n = Array.length sh.chunks in
    let chunks = Array.make (max 4 (2 * n)) [||] in
    Array.blit sh.chunks 0 chunks 0 n;
    sh.chunks <- chunks
  end;
  if Array.length sh.chunks.(cid) = 0 then
    sh.chunks.(cid) <- Array.make (chunk_states * words) 0;
  Array.blit s 0 sh.chunks.(cid) ((local land chunk_mask) * words) words

(* Insert [s] (whose fingerprint is [fp], owned by [shard]) if absent.
   Returns the state's local id if it was inserted, -1 if it was
   already present.  The slot key strips the shard selector so shards
   never index on bits that are constant within the shard. *)
let insert t ~shard ~fp (s : State.packed) =
  let sh = t.shards.(shard) in
  let key = fp / t.nshards in
  let tag = tag_of key in
  let table = sh.table and mask = sh.mask in
  let collided = ref false in
  let rec scan i =
    let e = Array.unsafe_get table i in
    if e = 0 then begin
      (* free slot: the state is new; a key match seen on the way is a
         genuine fingerprint collision (two distinct states, one fp) *)
      if !collided then sh.collisions <- sh.collisions + 1;
      let local = sh.count in
      if t.mode = Exact then store_state t sh s;
      ignore (Vec.push sh.keys key);
      sh.table.(i) <- tag lor (local + 1);
      sh.count <- local + 1;
      if 3 * (local + 1) > 2 * (sh.mask + 1) then grow_table sh;
      local
    end
    else begin
      (if entry_tag e = tag then begin
         let local = (e land 0xffff_ffff) - 1 in
         if Vec.get sh.keys local = key then
           match t.mode with
           | Fp_only -> raise_notrace Exit (* fingerprint says: seen *)
           | Exact ->
               if equal_at t sh local s then raise_notrace Exit
               else collided := true
       end);
      scan ((i + 1) land mask)
    end
  in
  match scan (key land mask) with local -> local | exception Exit -> -1

let word_bytes = Sys.word_size / 8

let memory_bytes t =
  Array.fold_left
    (fun acc sh ->
      let chunk_words =
        Array.fold_left (fun a c -> a + Array.length c) 0 sh.chunks
      in
      acc + ((chunk_words + sh.mask + 1 + Vec.length sh.keys) * word_bytes))
    0 t.shards

let occupancy t =
  if t.nshards = 0 then (0, 0)
  else
    Array.fold_left
      (fun (mn, mx) sh -> (min mn sh.count, max mx sh.count))
      (max_int, 0) t.shards
