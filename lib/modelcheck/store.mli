(** The checker's state store: packed states in insertion order in one
    flat int arena, plus an allocation-free open-addressing index from
    state contents to id.

    Every stored state's hash is computed exactly once — a hash tag is
    packed into the one-word index entry and the full hash kept in an
    id-indexed side vector — so dedup lookups and table growth never
    rehash a stored state.  Probing allocates nothing and touches one
    word per step; storing a new state is an arena blit, not a boxed
    allocation — at millions of states the GC otherwise spends more time
    tracing state arrays than the search spends exploring.

    All states in one store must have the same length (the packed layout
    of one system).  Single-writer: only one thread may call
    {!add_probed}/{!add}. *)

type t

val create : unit -> t
val length : t -> int

val probe : t -> State.packed -> int
(** Id of an equal stored state, or [-1].  Remembers the final probe
    position; a following {!add_probed} reuses it (and the hash) instead
    of probing again. *)

val add_probed : t -> State.packed -> int
(** Insert a state known absent — immediately after a missed {!probe}
    for an equal state — by copying it into the arena.  The caller keeps
    ownership of [s] (scratch buffers can be inserted directly).
    Returns the new id. *)

val get : t -> int -> State.packed
(** Materialize a fresh boxed copy of a stored state. *)

val read_into : t -> int -> State.packed -> unit
(** Copy a stored state into a caller-owned buffer of the right length
    (the allocation-free {!get}). *)

val find_opt : t -> State.packed -> int option
(** Allocating convenience wrapper around {!probe}. *)

val load_factor : t -> float
(** Occupied fraction of the open-addressing index (kept at or below
    2/3 by growth); 0 when empty.  For progress telemetry. *)

val arena_bytes : t -> int
(** Bytes held by allocated arena chunks plus the index table — the
    store's resident memory, for progress telemetry. *)

val add : t -> State.packed -> int option
(** [probe] + [add_probed]: [Some id] if the state was new. *)
