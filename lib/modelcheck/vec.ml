type 'a t = { mutable data : 'a array; mutable len : int }

let create ?capacity:_ () = { data = [||]; len = 0 }

let length v = v.len

(* The new slots are filled with [x], so no unsafe placeholder value is
   ever observable. *)
let grow v x =
  let cap = max 16 (2 * Array.length v.data) in
  let data = Array.make cap x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let check v i = if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

(* Capacity is retained so a cleared vector can be refilled without
   reallocating — the successor buffers are cleared once per state. *)
let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v = List.init v.len (fun i -> v.data.(i))
