type layout = {
  env : Mxlang.Eval.env;
  nprocs : int;
  shared_len : int;
  pcs_off : int;
  locals_off : int;
  locals_per : int;
  words : int;
}

type packed = int array

let layout (env : Mxlang.Eval.env) =
  let nprocs = env.nprocs in
  let shared_len = env.shared_cells in
  let locals_per = env.program.nlocals in
  {
    env;
    nprocs;
    shared_len;
    pcs_off = shared_len;
    locals_off = shared_len + nprocs;
    locals_per;
    words = shared_len + nprocs + (nprocs * locals_per);
  }

let initial l =
  let s = Array.make l.words 0 in
  Array.blit (Mxlang.Eval.init_shared l.env) 0 s 0 l.shared_len;
  Array.fill s l.pcs_off l.nprocs l.env.program.init_pc;
  let il = Mxlang.Eval.init_locals l.env in
  for p = 0 to l.nprocs - 1 do
    Array.blit il 0 s (l.locals_off + (p * l.locals_per)) l.locals_per
  done;
  s

let pc l s i = s.(l.pcs_off + i)
let set_pc l s i v = s.(l.pcs_off + i) <- v
let shared_part l s = Array.sub s 0 l.shared_len
let locals_part l s i = Array.sub s (l.locals_off + (i * l.locals_per)) l.locals_per

let write_back l s ~shared ~locals ~pid =
  Array.blit shared 0 s 0 l.shared_len;
  Array.blit locals 0 s (l.locals_off + (pid * l.locals_per)) l.locals_per

let shared_cell l s v i = s.(Mxlang.Eval.offset l.env v + i)

let hash (s : packed) =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Array.length s - 1 do
    (* Mix all 63 bits of each word through FNV-1a, one byte at a time
       being unnecessary for ints: a full-word xor-multiply mixes well. *)
    h := (!h lxor Array.unsafe_get s i) * 0x100000001b3
  done;
  !h land max_int

let equal (a : packed) (b : packed) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i >= n || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

let pp l ppf (s : packed) =
  let p = l.env.program in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "pc: %s@,"
    (String.concat ", "
       (List.init l.nprocs (fun i ->
            Printf.sprintf "%d@%s" i p.steps.(pc l s i).step_name)));
  for v = 0 to p.nvars - 1 do
    let n = Mxlang.Ast.cells_of ~nprocs:l.nprocs p v in
    let o = Mxlang.Eval.offset l.env v in
    Format.fprintf ppf "%s = [%s]@," p.var_names.(v)
      (String.concat "; "
         (List.init n (fun i -> string_of_int s.(o + i))))
  done;
  if l.locals_per > 0 then
    for i = 0 to l.nprocs - 1 do
      Format.fprintf ppf "locals(%d) = [%s]@," i
        (String.concat "; "
           (List.init l.locals_per (fun k ->
                Printf.sprintf "%s=%d" p.local_names.(k)
                  s.(l.locals_off + (i * l.locals_per) + k))))
    done;
  Format.fprintf ppf "@]"
