(** Breadth-first exhaustive exploration with invariant checking —
    the core of the TLC-replacement checker.

    BFS guarantees that a reported invariant violation comes with a
    shortest-possible counterexample trace, matching TLC's behaviour. *)

type stats = {
  generated : int;  (** successor states generated (with duplicates) *)
  distinct : int;  (** distinct states stored *)
  depth : int;  (** BFS depth reached *)
  runtime : float;  (** seconds *)
}

type outcome =
  | Pass
  | Violation of { invariant : string; trace : Trace.t }
  | Deadlock of { trace : Trace.t }
      (** a reachable state has no successor for any process *)
  | Capacity
      (** the [max_states] budget was exhausted before the frontier emptied *)

type result = { outcome : outcome; stats : stats }

(** Stored search graph, reusable by the SCC/lasso analyses. *)
type graph = {
  sys : System.t;
  states : State.packed Vec.t;
  parent : int Vec.t;  (** parent state id; -1 for the root *)
  via_pid : int Vec.t;
  via_pc : int Vec.t;
  id_of : State.packed -> int option;
}

val run :
  ?invariants:Invariant.t list ->
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  ?check_deadlock:bool ->
  ?interpreted:bool ->
  ?reduce:Reduce.mode ->
  ?progress:Telemetry.Progress.t ->
  ?metrics:Telemetry.Metrics.t ->
  System.t ->
  result
(** Explore all states reachable from the initial state.

    [invariants] default to [[Invariant.mutex; Invariant.no_overflow]].
    [constraint_] is TLC's state constraint: states violating it are
    still checked against the invariants but not expanded, closing
    otherwise-infinite state spaces (needed for the original, unbounded
    Bakery).  [max_states] (default 5_000_000) bounds memory.
    [interpreted] (default [false]) generates successors with the AST
    interpreter instead of the compiled closures — the reference engine
    for differential tests and the throughput experiment's baseline;
    outcome, traces, and state counts are identical either way.

    [reduce] (default [Off]) enables state-space reduction ({!Reduce}):
    [Sym] canonicalizes states under pid permutation when the program
    passes the static symmetry certificate (silently runs unreduced —
    with the reason available via {!Reduce.asymmetry_reason} — when it
    does not), [Sym_por] additionally expands only an ample process
    where one exists.  Verdicts agree with the unreduced search;
    [generated]/[distinct] counts are of the quotient.  Counterexample
    traces are always returned in original process coordinates.  If any
    invariant is not one of the built-in pc/shared-cell family, the
    reduction disables itself entirely.

    [progress] enables TLC-style rate-limited reporting (wave depth,
    states generated/distinct, queue length, kstates/s, store load
    factor, arena bytes) plus one forced summary line when the search
    ends; [metrics] accumulates the final stats and a wave-duration
    histogram into a registry ([explore.*]).  Both default to off, in
    which case the hot loop runs exactly one static no-op closure call
    per dequeued state — the search itself is unchanged either way. *)

val run_graph :
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  System.t ->
  graph * stats
(** Exploration that keeps the whole reachable graph (no invariant
    checking, no early exit); used by {!Lasso} and {!Refine}. *)

val trace_to : graph -> int -> Trace.t
(** Reconstruct the BFS path from the root to a stored state id. *)

val outcome_tag : outcome -> string
(** Short machine tag: ["pass"], ["violation:<invariant>"],
    ["deadlock"], ["capacity"]. *)

val record_finish :
  ?progress:Telemetry.Progress.t ->
  ?metrics:Telemetry.Metrics.t ->
  prefix:string ->
  outcome ->
  stats ->
  unit
(** Final telemetry for a finished search: one forced progress line and
    [<prefix>.*] registry entries.  Shared with {!Par_explore}. *)

val trace_of :
  System.t ->
  state_of:(int -> State.packed) ->
  parent:int Vec.t ->
  via_pid:int Vec.t ->
  via_pc:int Vec.t ->
  int ->
  Trace.t
(** {!trace_to} over any id-indexed representation of the search —
    {!Par_explore} stores states in a {!Store} arena rather than a
    boxed-state graph and materializes only the trace path. *)
