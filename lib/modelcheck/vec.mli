(** Minimal growable array, used by the checker's state store.
    (OCaml 5.1 predates [Dynarray].) *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Append and return the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit
(** Reset the length to zero, keeping the capacity (reused buffers). *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
