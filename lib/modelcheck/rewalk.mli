(** Counterexample re-walker: replay a checker trace through the AST
    interpreter to recover per-step forensics — which action fired,
    which shared cells it read (with the values observed), and its
    writes as (previous -> new) diffs.

    The walk uses {!System.successors_interpreted}, the engine that is
    {e not} the optimised one under test, so an explanation is also an
    independent re-derivation of the counterexample. *)

type write = {
  wr_var : Mxlang.Ast.var;
  wr_cell : int;
  wr_prev : int;  (** cell content before the store *)
  wr_value : int;  (** value stored (the checker never wraps) *)
}

type flick = {
  fl_var : Mxlang.Ast.var;
  fl_cell : int;
  fl_seen : int;  (** value the flickered read returned *)
  fl_actual : int;  (** value the register actually held *)
}
(** One read that overlapped another process's in-flight write and
    returned a perturbed value (weak register models only). *)

type step = {
  rw_pid : int;
  rw_from_pc : int;
  rw_to_pc : int;
  rw_step_name : string;  (** label fired, i.e. the name of [rw_from_pc] *)
  rw_reads : Mxlang.Reads.read list;
      (** shared cells the guard and effects observed, in evaluation
          order (see {!Mxlang.Reads.of_action}); under a weak register
          model the values are the ones the flickered view returned *)
  rw_writes : write list;
  rw_flicks : flick list;
      (** the reads that flickered in this step; empty under [Atomic] *)
  rw_post : State.packed;  (** state after the step *)
}

type t = {
  rw_sys : System.t;
  rw_init : State.packed;
  rw_steps : step list;
}

val of_trace : System.t -> Trace.t -> (t, string) result
(** Replay a trace (first entry = initial state, as produced by
    {!Explore}).  [Error] if some recorded state is not reachable from
    its predecessor by the recorded process — a stale or hand-edited
    trace. *)
