(** Named state predicates checked on every reachable state. *)

type t = {
  name : string;
  law : string;
      (** the predicate as a one-line human-readable law, e.g. "at most
          one process is at a Critical-kind label" — quoted verbatim by
          the counterexample explainer *)
  holds : System.t -> State.packed -> bool;
  prepare : (System.t -> State.packed -> bool) option;
      (** Optional staged form: specialize the check against one system
          (resolve layouts, step kinds, cell offsets) and return a
          per-state closure.  Must agree with [holds] on every state. *)
  describe : (System.t -> State.packed -> string option) option;
      (** Optional forensics: on a state where [holds] is false, name the
          concrete registers / program counters falsifying the law
          (e.g. "number[1] = 4 exceeds M = 3").  [None] on states where
          the invariant holds. *)
  subs : t list;
      (** conjuncts for compound invariants built with {!all}; [[]] for
          atomic ones *)
}

val mutex : t
(** At most one process is at a [Critical]-kind step — the paper's
    mutual-exclusion property (§6.2). *)

val no_overflow : t
(** Every cell of every register-bounded shared variable is [<= M] — the
    paper's overflow-freedom property (§6.1).  A value of [M] itself is
    legal (it is the largest storable value); [M + 1] is an overflow. *)

val bounded_by : var:Mxlang.Ast.var -> limit:int -> t
(** All cells of one variable stay [<= limit]. *)

val custom : string -> (System.t -> State.packed -> bool) -> t

val all : t list -> t
(** Conjunction, reported under the name of the first failing conjunct. *)

val conjuncts : t -> t list
(** Flatten a (possibly nested) conjunction into its atomic conjuncts;
    an atomic invariant is its own single conjunct. *)

type failure = {
  f_name : string;  (** name of the failing conjunct *)
  f_law : string;  (** the conjunct as a human-readable law *)
  f_detail : string option;  (** register/pc values falsifying it *)
}

val explain_failure : t -> System.t -> State.packed -> failure option
(** Reduce a violation to the first failing atomic conjunct and the
    concrete values falsifying it.  [None] if the invariant holds. *)

val check : t -> System.t -> State.packed -> string option
(** [None] if the invariant holds, [Some name] of the violated
    (sub-)invariant otherwise. *)

val stage : t -> System.t -> State.packed -> bool
(** Specialize an invariant for one system: uses [prepare] when present
    (paying layout/offset resolution once, not per state), otherwise
    partially applies [holds].  Used by the compiled explorer's hot
    loop. *)
