(** Named state predicates checked on every reachable state. *)

type t = {
  name : string;
  holds : System.t -> State.packed -> bool;
  prepare : (System.t -> State.packed -> bool) option;
      (** Optional staged form: specialize the check against one system
          (resolve layouts, step kinds, cell offsets) and return a
          per-state closure.  Must agree with [holds] on every state. *)
}

val mutex : t
(** At most one process is at a [Critical]-kind step — the paper's
    mutual-exclusion property (§6.2). *)

val no_overflow : t
(** Every cell of every register-bounded shared variable is [<= M] — the
    paper's overflow-freedom property (§6.1).  A value of [M] itself is
    legal (it is the largest storable value); [M + 1] is an overflow. *)

val bounded_by : var:Mxlang.Ast.var -> limit:int -> t
(** All cells of one variable stay [<= limit]. *)

val custom : string -> (System.t -> State.packed -> bool) -> t

val all : t list -> t
(** Conjunction, reported under the name of the first failing conjunct. *)

val check : t -> System.t -> State.packed -> string option
(** [None] if the invariant holds, [Some name] of the violated
    (sub-)invariant otherwise. *)

val stage : t -> System.t -> State.packed -> bool
(** Specialize an invariant for one system: uses [prepare] when present
    (paying layout/offset resolution once, not per state), otherwise
    partially applies [holds].  Used by the compiled explorer's hot
    loop. *)
