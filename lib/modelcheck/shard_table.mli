(** Sharded, fingerprint-keyed visited set for the parallel explorer.

    A state's {!Fingerprint.hash} picks its owning shard; each shard is
    an independent open-addressing table (plus, in [Exact] mode, its own
    chunked state arena), so per-shard single-writer insertion never
    contends on shared memory — the replacement for the one global
    {!Store} that made parallel BFS scale negatively.

    Concurrency contract: at most one domain inserts into a given shard
    at a time; cross-shard reads of counters and stored states are only
    meaningful at a synchronization point (the engine's wave barrier). *)

type mode =
  | Exact
      (** Keep full packed states: fingerprint-equal but distinct states
          are both stored and counted as collisions; answers are
          bit-identical to the sequential engine.  The default, and the
          debug mode that measures the fingerprint collision rate. *)
  | Fp_only
      (** Keep only fingerprints (TLC's space-saving mode): ~10x less
          memory per state, but fingerprint-equal states are conflated
          — a collision can silently drop states. *)

type t

val create :
  ?hash:(State.packed -> int) ->
  mode:mode ->
  nshards:int ->
  words:int ->
  unit ->
  t
(** [hash] defaults to {!Fingerprint.hash}; it is injectable so tests
    can force collisions.  [words] is the packed-state width. *)

val mode : t -> mode
val nshards : t -> int

val fingerprint : t -> State.packed -> int
val owner : t -> int -> int
(** Owning shard of a fingerprint. *)

val gid : t -> shard:int -> local:int -> int
(** Global state id from a shard-local one (interleaved encoding). *)

val shard_of_gid : t -> int -> int
val local_of_gid : t -> int -> int

val insert : t -> shard:int -> fp:int -> State.packed -> int
(** [insert t ~shard ~fp s] adds [s] to its owning [shard] if absent:
    the new local id, or [-1] when already present.  [fp] must be
    [fingerprint t s] and [shard] its owner; only the shard's owning
    domain may call this. *)

val count : t -> shard:int -> int
val total : t -> int

val collisions : t -> int
(** Distinct-state/equal-fingerprint pairs detected ([Exact] mode only;
    [Fp_only] cannot see them — that is its trade-off). *)

val get : t -> shard:int -> int -> State.packed
(** Materialize a stored state ([Exact] mode only). *)

val read_into : t -> shard:int -> int -> State.packed -> unit

val memory_bytes : t -> int
val occupancy : t -> int * int
(** [(min, max)] shard population — balance telemetry. *)
