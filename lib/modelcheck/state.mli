(** Packed system states.

    A state of an [N]-process mxlang program is the shared memory, the
    per-process program counters, and the per-process locals.  The checker
    stores states packed into flat [int array]s — layout
    [shared cells | pcs | locals(p0) | locals(p1) | ...] — which hash and
    compare quickly and keep the store compact. *)

type layout = {
  env : Mxlang.Eval.env;
  nprocs : int;
  shared_len : int;
  pcs_off : int;
  locals_off : int;
  locals_per : int;  (** locals per process *)
  words : int;  (** total packed length *)
}

type packed = int array

val layout : Mxlang.Eval.env -> layout
val initial : layout -> packed

val pc : layout -> packed -> int -> int
(** Program counter of process [i]. *)

val set_pc : layout -> packed -> int -> int -> unit

val shared_part : layout -> packed -> int array
(** Copy of the shared-memory region. *)

val locals_part : layout -> packed -> int -> int array
(** Copy of process [i]'s locals. *)

val write_back : layout -> packed -> shared:int array -> locals:int array -> pid:int -> unit
(** Store mutated shared memory and one process's locals into the packed
    state (used after {!Mxlang.Eval.apply}). *)

val shared_cell : layout -> packed -> Mxlang.Ast.var -> int -> int
(** Read one cell of a shared variable directly from the packed state. *)

val hash : packed -> int
(** FNV-1a over all words (the polymorphic hash only samples a prefix). *)

val equal : packed -> packed -> bool
(** Hashes are cached per stored state by {!Store}; dedup probes compare
    cached codes first and arrays only on a code match. *)

val pp : layout -> Format.formatter -> packed -> unit
(** Human-readable rendering: pcs by label name plus all shared cells. *)
