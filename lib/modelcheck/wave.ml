(* The BFS wave driver shared by the sequential engines.

   [Explore.run] (both engines), [Explore.run_graph] and [Refine.check]
   all used to carry their own copy of the same loop: a FIFO of work
   items, a boundary index marking where the current BFS level ends,
   and a depth counter bumped when the cursor crosses it.  One
   parameterized driver keeps the wave accounting (and the per-wave
   telemetry hook) in one place — and gives the planned
   symmetry/partial-order reduction a single seam to hook into.

   Items enter in discovery order, so the boundary invariant holds by
   construction: everything before it is at depth <= d, everything at
   or after it was discovered while processing depth d. *)

type 'a t = {
  items : 'a Vec.t;
  mutable head : int;
  mutable depth : int;
}

let create () = { items = Vec.create (); head = 0; depth = 0 }
let push t x = ignore (Vec.push t.items x)
let depth t = t.depth
let pending t = Vec.length t.items - t.head

let drive ?on_wave t f =
  let boundary = ref (Vec.length t.items) in
  while t.head < Vec.length t.items do
    if t.head = !boundary then begin
      t.depth <- t.depth + 1;
      boundary := Vec.length t.items;
      match on_wave with
      | None -> ()
      | Some g -> g ~depth:t.depth ~frontier:(!boundary - t.head)
    end;
    let x = Vec.get t.items t.head in
    t.head <- t.head + 1;
    f x
  done
