(* Sequential BFS over the induced transition system.

   Two engines share this file and produce bit-identical results:

   - the default path ([interpreted = false]) runs the compiled actions
     fused with dedup: each candidate successor is built in one reusable
     scratch buffer, probed against the allocation-free arena-backed
     {!Store}, and blitted into the arena only if genuinely new.  Most
     generated states of a big search are duplicates, so the steady
     state allocates nothing at all;
   - [interpreted = true] is the seed engine, kept verbatim as the
     measured baseline and differential reference: list-of-moves
     successors from the AST interpreter, one boxed array per generated
     state, a generic [Hashtbl] keyed on packed arrays, a [Queue.t]
     frontier. *)

module Tbl = Hashtbl.Make (struct
  type t = State.packed

  let equal = State.equal
  let hash = State.hash
end)

type stats = { generated : int; distinct : int; depth : int; runtime : float }

type outcome =
  | Pass
  | Violation of { invariant : string; trace : Trace.t }
  | Deadlock of { trace : Trace.t }
  | Capacity

type result = { outcome : outcome; stats : stats }

type graph = {
  sys : System.t;
  states : State.packed Vec.t;
  parent : int Vec.t;
  via_pid : int Vec.t;
  via_pc : int Vec.t;
  id_of : State.packed -> int option;
}

let now () = Unix.gettimeofday ()

let trace_of sys ~state_of ~parent ~via_pid ~via_pc id =
  let p = System.program sys in
  let rec walk id acc =
    let pid = Vec.get via_pid id in
    let entry =
      {
        Trace.pid;
        step_name =
          (if pid < 0 then "<init>" else p.steps.(Vec.get via_pc id).step_name);
        state = state_of id;
      }
    in
    let par = Vec.get parent id in
    if par < 0 then entry :: acc else walk par (entry :: acc)
  in
  walk id []

let trace_to (g : graph) id =
  trace_of g.sys ~state_of:(Vec.get g.states) ~parent:g.parent
    ~via_pid:g.via_pid ~via_pc:g.via_pc id

let default_invariants = lazy [ Invariant.mutex; Invariant.no_overflow ]

let outcome_tag = function
  | Pass -> "pass"
  | Violation { invariant; _ } -> "violation:" ^ invariant
  | Deadlock _ -> "deadlock"
  | Capacity -> "capacity"

(* Final telemetry for a finished search: one forced TLC-style progress
   line plus registry counters.  Off the hot path — called once. *)
let record_finish ?progress ?metrics ~prefix outcome (stats : stats) =
  (match progress with
  | None -> ()
  | Some p ->
      Telemetry.Progress.force p (fun () ->
          [
            ("outcome", Telemetry.Json.Str (outcome_tag outcome));
            ("depth", Telemetry.Json.Num (float_of_int stats.depth));
            ("generated", Telemetry.Json.Num (float_of_int stats.generated));
            ("distinct", Telemetry.Json.Num (float_of_int stats.distinct));
            ( "kstates_s",
              Telemetry.Json.Num
                (if stats.runtime > 0.0 then
                   float_of_int stats.generated /. stats.runtime /. 1e3
                 else 0.0) );
            ("runtime_s", Telemetry.Json.Num stats.runtime);
          ]));
  match metrics with
  | None -> ()
  | Some m ->
      let open Telemetry.Metrics in
      add (counter m (prefix ^ ".generated")) stats.generated;
      add (counter m (prefix ^ ".distinct")) stats.distinct;
      set (gauge m (prefix ^ ".depth")) (float_of_int stats.depth);
      set (gauge m (prefix ^ ".runtime_s")) stats.runtime;
      set (gauge m (prefix ^ ".kstates_s"))
        (if stats.runtime > 0.0 then
           float_of_int stats.generated /. stats.runtime /. 1e3
         else 0.0)

let run ?invariants ?constraint_ ?(max_states = 5_000_000) ?(check_deadlock = true)
    ?(interpreted = false) ?(reduce = Reduce.Off) ?progress ?metrics sys =
  let invariants =
    match invariants with Some l -> l | None -> Lazy.force default_invariants
  in
  (* Both reductions are only sound when every checked invariant reads
     nothing but pcs and shared cells; a pid- or local-sensitive custom
     invariant silently turns the whole reduction off. *)
  let red =
    if reduce = Reduce.Off || Reduce.invariants_reducible invariants then
      Reduce.make reduce sys
    else Reduce.make Reduce.Off sys
  in
  let canon = Reduce.canonizer red in
  let t0 = now () in
  let parent = Vec.create () in
  let via_pid = Vec.create () in
  let via_pc = Vec.create () in
  let generated = ref 0 in
  let max_depth = ref 0 in
  let finish ~distinct outcome =
    let stats =
      {
        generated = !generated;
        distinct;
        depth = !max_depth;
        runtime = now () -. t0;
      }
    in
    record_finish ?progress ?metrics ~prefix:"explore" outcome stats;
    { outcome; stats }
  in
  let first_violated s =
    let rec go = function
      | [] -> None
      | inv :: rest ->
          (match Invariant.check inv sys s with
          | Some name -> Some name
          | None -> go rest)
    in
    go invariants
  in
  let expand s =
    match constraint_ with None -> true | Some c -> c sys s
  in
  let push_meta ~parent:par ~pid ~pc =
    ignore (Vec.push parent par);
    ignore (Vec.push via_pid pid);
    ignore (Vec.push via_pc pc)
  in
  let exception Stop of result in
  (* The compiled engine: dedup-before-copy BFS on the arena store,
     frontier as a cursor over an int vector. *)
  let run_compiled () =
    let idx = Store.create () in
    let finish outcome = finish ~distinct:(Store.length idx) outcome in
    let trace id =
      Reduce.decanonicalize red
        (trace_of sys ~state_of:(Store.get idx) ~parent ~via_pid ~via_pc id)
    in
    let lay = System.layout sys in
    let scratch = Array.make lay.State.words 0 in
    let current = Array.make lay.State.words 0 in
    let wave = Wave.create () in
    (* One tick per dequeued state; a disabled reporter costs one call
       to a static no-op closure, nothing else (E11 must not move). *)
    let tick =
      match progress with
      | None -> fun () -> ()
      | Some p ->
          let fields () =
            let elapsed = now () -. t0 in
            [
              ("depth", Telemetry.Json.Num (float_of_int !max_depth));
              ("generated", Telemetry.Json.Num (float_of_int !generated));
              ( "distinct",
                Telemetry.Json.Num (float_of_int (Store.length idx)) );
              ( "queue",
                Telemetry.Json.Num (float_of_int (Wave.pending wave)) );
              ( "kstates_s",
                Telemetry.Json.Num
                  (if elapsed > 0.0 then
                     float_of_int !generated /. elapsed /. 1e3
                   else 0.0) );
              ("store_load", Telemetry.Json.Num (Store.load_factor idx));
              ( "arena_mb",
                Telemetry.Json.Num
                  (float_of_int (Store.arena_bytes idx) /. 1048576.0) );
            ]
          in
          fun () -> Telemetry.Progress.tick p fields
    in
    let wave_hist =
      match metrics with
      | None -> None
      | Some m ->
          Some (Telemetry.Metrics.histogram m "explore.wave_s")
    in
    let wave_t0 = ref (now ()) in
    (* Live gauges feed the flight-recorder sampler: refreshed once per
       wave (never per state), and registered only when a registry was
       asked for, so an uninstrumented run stays bit-identical.  Named
       live_* because record_finish registers the bare names as
       counters. *)
    let live =
      match metrics with
      | None -> None
      | Some m ->
          Telemetry.Metrics.set
            (Telemetry.Metrics.gauge m "explore.max_states")
            (float_of_int max_states);
          Some
            ( Telemetry.Metrics.gauge m "explore.frontier_depth",
              Telemetry.Metrics.gauge m "explore.live_generated",
              Telemetry.Metrics.gauge m "explore.live_distinct",
              Telemetry.Metrics.gauge m "explore.live_kstates_s" )
    in
    let on_wave ~depth ~frontier =
      max_depth := depth;
      (match live with
      | None -> ()
      | Some (g_frontier, g_gen, g_dist, g_rate) ->
          Telemetry.Metrics.set g_frontier (float_of_int frontier);
          Telemetry.Metrics.set g_gen (float_of_int !generated);
          Telemetry.Metrics.set g_dist (float_of_int (Store.length idx));
          let elapsed = now () -. t0 in
          Telemetry.Metrics.set g_rate
            (if elapsed > 0.0 then float_of_int !generated /. elapsed /. 1e3
             else 0.0));
      match wave_hist with
      | None -> ()
      | Some h ->
          let t = now () in
          Telemetry.Metrics.observe h (t -. !wave_t0);
          wave_t0 := t
    in
    (* Invariants are staged once per run (layouts and step kinds
       resolved up front); they and the state constraint run on the
       scratch buffer (identical contents to what was just stored). *)
    let staged =
      Array.of_list
        (List.map (fun inv -> (inv.Invariant.name, Invariant.stage inv sys)) invariants)
    in
    let nstaged = Array.length staged in
    let first_violated_staged buf =
      let rec go k =
        if k >= nstaged then None
        else
          let name, holds = Array.unsafe_get staged k in
          if holds buf then go (k + 1) else Some name
      in
      go 0
    in
    let vet id' buf =
      if Store.length idx > max_states then raise (Stop (finish Capacity));
      match first_violated_staged buf with
      | Some invariant ->
          raise (Stop (finish (Violation { invariant; trace = trace id' })))
      | None -> if expand buf then Wave.push wave id'
    in
    let init = System.initial sys in
    canon init;
    incr generated;
    (match Store.add idx init with
    | Some id ->
        push_meta ~parent:(-1) ~pid:(-1) ~pc:(-1);
        vet id init
    | None -> assert false);
    (* BFS depth by wave boundary: ids enter the driver in depth order,
       so no per-state depth needs storing. *)
    Wave.drive ~on_wave wave (fun id ->
        tick ();
        Store.read_into idx id current;
        let only = Reduce.ample red current in
        let any = ref false in
        System.iter_successors_scratch ~only sys current ~scratch
          (fun ~pid ~from_pc ~alt:_ ~flick:_ ->
            any := true;
            incr generated;
            canon scratch;
            if Store.probe idx scratch = -1 then begin
              let id' = Store.add_probed idx scratch in
              push_meta ~parent:id ~pid ~pc:from_pc;
              vet id' scratch
            end);
        (* An ample process is enabled by construction, so [only >= 0]
           never masks a deadlock. *)
        if check_deadlock && not !any then
          raise (Stop (finish (Deadlock { trace = trace id }))));
    finish Pass
  in
  (* The seed engine, preserved as baseline: one hash to probe, a second
     to insert, a move list per state, a fresh array per candidate. *)
  let run_interpreted () =
    let tbl = Tbl.create 4096 in
    let states = Vec.create () in
    let finish outcome = finish ~distinct:(Vec.length states) outcome in
    let trace id =
      Reduce.decanonicalize red
        (trace_of sys ~state_of:(Vec.get states) ~parent ~via_pid ~via_pc id)
    in
    let wave = Wave.create () in
    let tick =
      match progress with
      | None -> fun () -> ()
      | Some p ->
          let fields () =
            let elapsed = now () -. t0 in
            [
              ("depth", Telemetry.Json.Num (float_of_int !max_depth));
              ("generated", Telemetry.Json.Num (float_of_int !generated));
              ( "distinct",
                Telemetry.Json.Num (float_of_int (Vec.length states)) );
              ("queue", Telemetry.Json.Num (float_of_int (Wave.pending wave)));
              ( "kstates_s",
                Telemetry.Json.Num
                  (if elapsed > 0.0 then
                     float_of_int !generated /. elapsed /. 1e3
                   else 0.0) );
            ]
          in
          fun () -> Telemetry.Progress.tick p fields
    in
    let add ~parent ~pid ~pc s =
      match Tbl.find_opt tbl s with
      | Some _ -> None
      | None ->
          let id = Vec.push states s in
          Tbl.add tbl s id;
          push_meta ~parent ~pid ~pc;
          Some id
    in
    let check_state id s =
      match first_violated s with
      | Some invariant -> Some (Violation { invariant; trace = trace id })
      | None -> None
    in
    let init = System.initial sys in
    canon init;
    incr generated;
    (match add ~parent:(-1) ~pid:(-1) ~pc:(-1) init with
    | Some id -> (
        match check_state id init with
        | Some bad -> raise (Stop (finish bad))
        | None -> if expand init then Wave.push wave id)
    | None -> assert false);
    Wave.drive
      ~on_wave:(fun ~depth ~frontier:_ -> max_depth := depth)
      wave
      (fun id ->
        tick ();
        let s = Vec.get states id in
        let moves = System.successors_interpreted sys s in
        if check_deadlock && moves = [] then
          raise (Stop (finish (Deadlock { trace = trace id })));
        let only = Reduce.ample red s in
        let moves =
          if only < 0 then moves
          else List.filter (fun (m : System.move) -> m.pid = only) moves
        in
        List.iter
          (fun (m : System.move) ->
            incr generated;
            canon m.dest;
            match add ~parent:id ~pid:m.pid ~pc:m.from_pc m.dest with
            | None -> ()
            | Some id' -> (
                if Vec.length states > max_states then
                  raise (Stop (finish Capacity));
                match check_state id' m.dest with
                | Some bad -> raise (Stop (finish bad))
                | None -> if expand m.dest then Wave.push wave id'))
          moves);
    finish Pass
  in
  try if interpreted then run_interpreted () else run_compiled ()
  with Stop r -> r

let run_graph ?constraint_ ?(max_states = 5_000_000) sys =
  let t0 = now () in
  let idx = Store.create () in
  let parent = Vec.create () in
  let via_pid = Vec.create () in
  let via_pc = Vec.create () in
  let generated = ref 0 in
  let max_depth = ref 0 in
  let expand s = match constraint_ with None -> true | Some c -> c sys s in
  let push_meta ~parent:par ~pid ~pc =
    ignore (Vec.push parent par);
    ignore (Vec.push via_pid pid);
    ignore (Vec.push via_pc pc)
  in
  let lay = System.layout sys in
  let scratch = Array.make lay.State.words 0 in
  let current = Array.make lay.State.words 0 in
  let wave = Wave.create () in
  let init = System.initial sys in
  incr generated;
  (match Store.add idx init with
  | Some id ->
      push_meta ~parent:(-1) ~pid:(-1) ~pc:(-1);
      if expand init then Wave.push wave id
  | None -> assert false);
  let exception Full in
  (try
     Wave.drive
       ~on_wave:(fun ~depth ~frontier:_ -> max_depth := depth)
       wave
       (fun id ->
         Store.read_into idx id current;
         System.iter_successors_scratch sys current ~scratch
           (fun ~pid ~from_pc ~alt:_ ~flick:_ ->
             incr generated;
             if Store.probe idx scratch = -1 then begin
               let id' = Store.add_probed idx scratch in
               push_meta ~parent:id ~pid ~pc:from_pc;
               if Store.length idx > max_states then raise Full;
               if expand scratch then Wave.push wave id'
             end))
   with Full -> ());
  (* Materialize boxed states for the graph consumers (lassos, coverage,
     dot rendering): one pass, outside the search loop. *)
  let states = Vec.create () in
  for id = 0 to Store.length idx - 1 do
    ignore (Vec.push states (Store.get idx id))
  done;
  ( { sys; states; parent; via_pid; via_pc; id_of = (fun s -> Store.find_opt idx s) },
    {
      generated = !generated;
      distinct = Store.length idx;
      depth = !max_depth;
      runtime = now () -. t0;
    } )
