(** Shared BFS wave driver: a FIFO of work items with depth tracked at
    level boundaries.  One implementation of the loop that
    {!Explore.run}, {!Explore.run_graph} and {!Refine.check} all used
    to duplicate. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue a work item at the back (discovery order = BFS order). *)

val depth : 'a t -> int
(** Depth of the level currently being processed (0 until the first
    boundary is crossed); after {!drive} returns, the maximum BFS
    depth reached — the exact value the engines report. *)

val pending : 'a t -> int

val drive : ?on_wave:(depth:int -> frontier:int -> unit) -> 'a t -> ('a -> unit) -> unit
(** [drive t f] pops items in FIFO order and hands each to [f] (which
    may {!push} newly discovered work).  [on_wave] fires once per
    completed level with the new depth and the size of the frontier
    about to be processed — the hook behind the per-wave
    [*.frontier_depth] telemetry gauge.  Exceptions from [f] propagate
    (the engines' stop-with-result idiom). *)
