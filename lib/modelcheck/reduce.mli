(** State-space reduction: pid-symmetry canonicalization and a
    conservative ample-set partial-order filter.

    {2 Symmetry}

    A program is {e pid-symmetric} when renaming process ids maps runs
    to runs: for every permutation [π] of [0..N-1], applying [π] to a
    reachable state (permute the pc vector, the per-process local
    blocks, and every per-process shared array, all by the same [π])
    yields a reachable state, and the checked invariants cannot tell the
    two apart.  For such programs the explorer may keep one canonical
    representative per orbit, cutting the reachable set by up to [N!].

    Bakery-style id tie-breaks ([Lex_lt] over [(ticket, pid)] pairs)
    break this symmetry — a quotient search over such a program can
    lose counterexamples — so canonicalization is gated on a {e static
    certificate}: {!certify} sorts every expression as pid-valued or
    data-valued and accepts only programs where pids are never ordered,
    stored, or mixed into arithmetic, and per-process arrays are indexed
    only by [Pid]/[Qidx].  Programs that fail the certificate (all
    bakery variants — the tie-break) run with the identity
    canonicalizer and an honest {!asymmetry_reason}.

    The certificate is judged on {!System.source_program}: symmetry is a
    property of the algorithm, and the two-phase weak-register transform
    preserves it (pending slots latch data values and a per-process
    write index that canonicalization renames along with the block).

    {2 Counterexample coordinates}

    The quotient search stores canonical states, so a raw trace walks
    canonical coordinates where the acting pid is a slot name, not a
    process.  {!decanonicalize} replays the trace forward, maintaining
    the slot→process renaming at every step, and returns a genuine run
    of the unreduced system in original coordinates — {!Rewalk} and the
    [explain] forensics consume it unchanged.

    {2 Partial order}

    {!ample} implements a conservative ample-set filter: in states where
    some process's next step is invisible and commutes with every other
    process's moves, only that process is expanded.  A step qualifies
    only if every alternative (a) reads no shared cell (statically, per
    {!Mxlang.Reads.static_cells}) and writes no shared cell or pending
    slot, (b) is not at and does not enter a [Critical]-kind step, and
    (c) strictly increases the pc — which rules out ignoring-problem
    cycles, since an ample-only path strictly increases the acting
    process's pc and touches no other.  POR needs no symmetry
    certificate, but it does require every checked invariant to be
    insensitive to local variables ({!invariants_reducible}). *)

type mode = Off | Sym | Sym_por

val mode_of_string : string -> mode option
(** ["none"], ["sym"], ["sym+por"]. *)

val mode_to_string : mode -> string

val mode_values : (string * mode) list
(** CLI enumeration for [--reduce], in display order. *)

val certify : Mxlang.Ast.program -> (unit, string) result
(** Static pid-symmetry certificate.  [Error reason] names the first
    symmetry-breaking construct (e.g. the bakery id tie-break). *)

type t

val make : mode -> System.t -> t
(** Judge the certificate and precompute the ample tables for [sys].
    Cheap; read-only (and thus domain-shareable) afterwards. *)

val mode : t -> mode

val symmetry_active : t -> bool
(** True iff the mode requests symmetry and the program is certified. *)

val asymmetry_reason : t -> string option
(** Why canonicalization is inactive under [Sym]/[Sym_por]; [None] when
    certified (or when the mode is [Off]). *)

val describe : t -> string
(** One human-readable status line, e.g.
    ["sym: pid-symmetry certified; ample-set POR on"]. *)

val canonizer : t -> State.packed -> unit
(** A canonicalization closure with its own scratch buffers (one per
    call to [canonizer] — make one per domain).  Rewrites the state in
    place to its orbit representative; the identity when symmetry is
    inactive. *)

val canon : t -> State.packed -> State.packed * int array
(** Allocating variant: the canonical representative plus the slot map
    [perm], where canonical block [j] is original process [perm.(j)]'s
    block.  [perm] is the identity when symmetry is inactive. *)

val permute : t -> perm:int array -> State.packed -> State.packed
(** Apply a slot map: result block [j] := source block [perm.(j)], with
    per-process shared arrays and live pending-slot indices renamed
    consistently.  [permute t ~perm:(snd (canon t s))] applied to [s]
    reproduces [fst (canon t s)]; with {!invert} it undoes it. *)

val invert : int array -> int array
(** Inverse permutation: [(invert p).(p.(j)) = j]. *)

val invariants_reducible : Invariant.t list -> bool
(** Every atomic conjunct reads only pcs and shared cells (the built-in
    mutex / no-overflow / bounded family) — the visibility condition for
    both reductions.  Custom invariants are conservatively refused. *)

val ample : t -> State.packed -> int
(** The ample process for this state, or [-1] to expand all processes.
    Only ever [>= 0] when the mode is [Sym_por]. *)

val decanonicalize : t -> Trace.t -> Trace.t
(** Rewrite a trace of the quotient search into a genuine run of the
    unreduced system in original process coordinates (see above).  The
    identity when symmetry is inactive.

    @raise Invalid_argument if the trace cannot be replayed — which
    would mean the quotient search reached a state the full system
    cannot, i.e. an unsoundness bug worth crashing on. *)
