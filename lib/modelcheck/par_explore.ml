let now () = Unix.gettimeofday ()

(* Per-worker wave output, allocated once per run and reused: the move
   buffer plus, for each move, the frontier index it came from (needed
   for parent ids and deadlock detection).  Workers write only their own
   buffers; the main domain reads them after the pool barrier. *)
type wave_out = { owners : int Vec.t; moves : System.move Vec.t }

let expand_slice sys (frontier : State.packed array) ~lo ~hi out =
  Vec.clear out.owners;
  Vec.clear out.moves;
  for k = lo to hi - 1 do
    let before = Vec.length out.moves in
    System.successors_into sys frontier.(k) out.moves;
    for _ = before to Vec.length out.moves - 1 do
      ignore (Vec.push out.owners k)
    done
  done

let run ?invariants ?constraint_ ?(max_states = 5_000_000) ?domains ?pool
    ?progress ?metrics sys =
  let invariants =
    match invariants with
    | Some l -> l
    | None -> [ Invariant.mutex; Invariant.no_overflow ]
  in
  let ndomains =
    match (pool, domains) with
    | Some p, _ -> Pool.size p
    | None, Some d when d >= 1 -> d
    | None, Some _ -> invalid_arg "Par_explore.run: domains must be >= 1"
    | None, None -> min 8 (Domain.recommended_domain_count ())
  in
  let t0 = now () in
  let idx = Store.create () in
  let parent = Vec.create () in
  let via_pid = Vec.create () in
  let via_pc = Vec.create () in
  (* Only the trace path is ever materialized out of the arena. *)
  let trace id =
    Explore.trace_of sys ~state_of:(Store.get idx) ~parent ~via_pid ~via_pc id
  in
  let generated = ref 0 in
  let depth = ref 0 in
  let finish outcome =
    let stats =
      {
        Explore.generated = !generated;
        distinct = Store.length idx;
        depth = !depth;
        runtime = now () -. t0;
      }
    in
    Explore.record_finish ?progress ?metrics ~prefix:"par_explore" outcome
      stats;
    { Explore.outcome; stats }
  in
  let expand s =
    match constraint_ with None -> true | Some c -> c sys s
  in
  let exception Stop of Explore.result in
  let staged =
    Array.of_list
      (List.map (fun inv -> (inv.Invariant.name, Invariant.stage inv sys)) invariants)
  in
  let check id s =
    let rec first k =
      if k >= Array.length staged then None
      else
        let name, holds = staged.(k) in
        if holds s then first (k + 1) else Some name
    in
    match first 0 with
    | Some invariant ->
        raise (Stop (finish (Explore.Violation { invariant; trace = trace id })))
    | None -> ()
  in
  (* Insert a state discovered from [parent_id]; returns the new id if it
     was unseen.  The workers' dest arrays are blitted into the arena;
     duplicates pay only the index probe. *)
  let insert ~parent_id ~pid ~pc s =
    match Store.probe idx s with
    | i when i >= 0 -> None
    | _ ->
        let id = Store.add_probed idx s in
        ignore (Vec.push parent parent_id);
        ignore (Vec.push via_pid pid);
        ignore (Vec.push via_pc pc);
        if Store.length idx > max_states then
          raise (Stop (finish Explore.Capacity));
        check id s;
        Some id
  in
  let outs =
    Array.init ndomains (fun _ -> { owners = Vec.create (); moves = Vec.create () })
  in
  let next_ids = Vec.create () in
  let next_states = Vec.create () in
  (* Per-wave telemetry: progress is polled once per BFS level (waves
     are the engine's natural heartbeat), reporting search rates plus
     each pool domain's busy fraction since the previous report. *)
  let wave_tick pool_for_stats frontier_size =
    match progress with
    | None -> ()
    | Some p ->
        let fields () =
          let elapsed = now () -. t0 in
          let base =
            [
              ("depth", Telemetry.Json.Num (float_of_int !depth));
              ("generated", Telemetry.Json.Num (float_of_int !generated));
              ( "distinct",
                Telemetry.Json.Num (float_of_int (Store.length idx)) );
              ("frontier", Telemetry.Json.Num (float_of_int frontier_size));
              ("domains", Telemetry.Json.Num (float_of_int ndomains));
              ( "kstates_s",
                Telemetry.Json.Num
                  (if elapsed > 0.0 then
                     float_of_int !generated /. elapsed /. 1e3
                   else 0.0) );
              ("store_load", Telemetry.Json.Num (Store.load_factor idx));
              ( "arena_mb",
                Telemetry.Json.Num
                  (float_of_int (Store.arena_bytes idx) /. 1048576.0) );
            ]
          in
          match pool_for_stats with
          | None -> base
          | Some (pl, last_busy, last_wall) ->
              let busy = Pool.busy_ns pl in
              let wall = now () in
              let dt = wall -. !last_wall in
              let fractions =
                Array.mapi
                  (fun i b ->
                    let frac =
                      if dt > 0.0 then
                        float_of_int (b - !last_busy.(i)) /. (dt *. 1e9)
                      else 0.0
                    in
                    Telemetry.Json.Num (Float.min 1.0 (Float.max 0.0 frac)))
                  busy
              in
              last_busy := busy;
              last_wall := wall;
              let total =
                Array.fold_left
                  (fun acc v ->
                    match v with Telemetry.Json.Num f -> acc +. f | _ -> acc)
                  0.0 fractions
              in
              base
              @ [
                  ( "pool_busy",
                    Telemetry.Json.Num
                      (total /. float_of_int (Array.length fractions)) );
                  ("domain_busy", Telemetry.Json.Arr (Array.to_list fractions));
                ]
        in
        Telemetry.Progress.poll p fields
  in
  (* The search itself, parameterized by how a wave's slices are run:
     through a persistent pool, or inline when there is one worker. *)
  let search ?stats_pool run_wave =
    let pool_for_stats =
      match stats_pool with
      | None -> None
      | Some pl -> Some (pl, ref (Pool.busy_ns pl), ref (now ()))
    in
    let init = System.initial sys in
    incr generated;
    let fr = ref [||] in
    let ids = ref [||] in
    (match insert ~parent_id:(-1) ~pid:(-1) ~pc:(-1) init with
    | Some id ->
        if expand init then begin
          fr := [| init |];
          ids := [| id |]
        end
    | None -> assert false);
    while Array.length !fr > 0 do
      let frontier = !fr and fids = !ids in
      let n = Array.length frontier in
      (* Contiguous slices keep each worker's output in ascending
         frontier order, so the sequential merge below visits moves in
         exactly the order the sequential engine would generate them. *)
      let slice d = (n * d / ndomains, n * (d + 1) / ndomains) in
      run_wave ~n (fun w ->
          let lo, hi = slice w in
          expand_slice sys frontier ~lo ~hi outs.(w));
      Vec.clear next_ids;
      Vec.clear next_states;
      let had_successor = Array.make n false in
      for w = 0 to ndomains - 1 do
        let out = outs.(w) in
        for j = 0 to Vec.length out.moves - 1 do
          let k = Vec.get out.owners j in
          let (m : System.move) = Vec.get out.moves j in
          had_successor.(k) <- true;
          incr generated;
          match insert ~parent_id:fids.(k) ~pid:m.pid ~pc:m.from_pc m.dest with
          | None -> ()
          | Some id ->
              if expand m.dest then begin
                ignore (Vec.push next_ids id);
                ignore (Vec.push next_states m.dest)
              end
        done
      done;
      (* Deadlock: a frontier state with no successors at all. *)
      Array.iteri
        (fun k alive ->
          if not alive then
            raise
              (Stop
                 (finish (Explore.Deadlock { trace = trace fids.(k) }))))
        had_successor;
      let nnext = Vec.length next_ids in
      if nnext > 0 then incr depth;
      wave_tick pool_for_stats nnext;
      fr := Array.init nnext (Vec.get next_states);
      ids := Array.init nnext (Vec.get next_ids)
    done;
    finish Explore.Pass
  in
  let inline_wave ~n:_ job =
    for w = 0 to ndomains - 1 do
      job w
    done
  in
  let pooled_wave p ~n job =
    (* A one-state wave is cheaper expanded in place than handed over
       the barrier; every worker's buffers still get reset. *)
    if n < 2 then inline_wave ~n job else Pool.run p job
  in
  try
    match pool with
    | Some p -> search ~stats_pool:p (pooled_wave p)
    | None ->
        if ndomains = 1 then search inline_wave
        else
          Pool.with_pool ndomains (fun p -> search ~stats_pool:p (pooled_wave p))
  with Stop r -> r
